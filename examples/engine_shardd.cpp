// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// engine_shardd — the standalone shard daemon: a TcpShardHost
// (src/engine/tcp_transport.h) serving the engine's wire protocol on a real
// TCP listener. Shard state arrives with each dialer's kReqHello handshake
// (sketch group + resolved config), so one daemon hosts any number of
// shards from any number of engines without configuration.
//
// Two-terminal demo:
//
//   terminal 1: ./examples/engine_shardd --port=7841
//   terminal 2: ./examples/engine_server --connect=127.0.0.1:7841
//
// Prints "LISTENING <port>" on stdout once ready (launchers and the kill -9
// recovery test block on this line), then serves until SIGTERM/SIGINT.

#include "engine/tcp_transport.h"

int main(int argc, char** argv) {
  return wbs::engine::ShardDaemonMain(argc, argv);
}
