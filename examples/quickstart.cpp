// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Quickstart: the white-box robust heavy hitter algorithm served through
// the typed engine API in ~50 lines.
//
//   $ ./examples/quickstart
//
// Streams a skewed workload into the engine's robust_hh sketch (Algorithm 2
// of the paper, Theorem 1.1) via an async submit ticket, then reads the
// heavy hitter list back through a typed TopK query and spot-checks one
// item with a PointEstimate. Everything that makes this library different
// from an ordinary sketch library survives the serving surface: all
// randomness flows through seeded tapes the adversary can read (white-box
// model), every run is replayable from the config seed, and space is
// measured in bits.

#include <cstdio>

#include "engine/client.h"
#include "stream/workload.h"

int main() {
  // Per-family option blocks compose into one config expression; the seed
  // drives every tape in the engine, so this run is bit-reproducible.
  wbs::engine::ClientOptions opts;
  opts.ingest.num_shards = 4;
  opts.ingest.num_threads = 2;
  opts.ingest.sketches = {"robust_hh"};
  opts.ingest.config =
      wbs::engine::SketchConfig{}
          .WithUniverse(uint64_t{1} << 30)
          .WithSeed(2022)
          .With(wbs::engine::HeavyHitterOptions{}.WithEps(0.05).WithDelta(
              0.25));
  auto client_or = wbs::engine::Client::Create(opts);
  if (!client_or.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(client_or).value();

  // Resolve the handle once; queries below never look the name up again.
  wbs::engine::SketchHandle hh = client->Handle("robust_hh").value();

  // A Zipf-distributed stream of one million updates, submitted in one
  // asynchronous batch: Submit returns a sequence-numbered ticket
  // immediately and the workers ingest behind it.
  wbs::RandomTape tape(2022);
  auto workload =
      wbs::stream::ZipfStream(uint64_t{1} << 30, 1'000'000, 1.2, &tape);
  auto ticket = client->SubmitItems(workload);
  if (!ticket.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 ticket.status().ToString().c_str());
    return 1;
  }
  // Wait(ticket) = "everything up to this ticket is ingested"; Flush also
  // publishes the final shard snapshots so the query below is exact.
  if (!client->Wait(ticket.value()).ok() || !client->Flush().ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }

  auto top = client->QueryTopK(hh, 10);
  if (!top.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 top.status().ToString().c_str());
    return 1;
  }
  std::printf("top heavy hitters (eps = 0.05, %llu updates ingested):\n",
              (unsigned long long)top.value().updates);
  for (const auto& wi : top.value().items) {
    std::printf("  item %12llu  ~%.0f occurrences\n",
                static_cast<unsigned long long>(wi.item), wi.estimate);
  }

  if (!top.value().items.empty()) {
    // Typed point lookup: binary search over the summary's by-item index.
    auto point = client->QueryPoint(hh, top.value().items.front().item);
    if (point.ok()) {
      std::printf("\npoint estimate for item %llu: ~%.0f (tracked: %s)\n",
                  static_cast<unsigned long long>(point.value().item),
                  point.value().estimate,
                  point.value().tracked ? "yes" : "no");
    }
  }

  std::printf("engine state: %llu bits across %zu shards\n",
              (unsigned long long)client->ingestor().SpaceBits(),
              client->ingestor().num_shards());
  (void)client->Finish();
  return 0;
}
