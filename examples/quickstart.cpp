// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Quickstart: the white-box robust heavy hitter algorithm in ~40 lines.
//
//   $ ./examples/quickstart
//
// Streams a skewed workload into Algorithm 2 of the paper (Theorem 1.1),
// prints the heavy hitter list with frequency estimates, and shows the two
// things that make this library different from an ordinary sketch library:
// the algorithm's *entire* state is inspectable (white-box model), and its
// space is measured in bits.

#include <cstdio>

#include "common/random.h"
#include "core/state_view.h"
#include "heavyhitters/robust_hh.h"
#include "stream/workload.h"

int main() {
  // All randomness flows through a seeded tape; the seed and every random
  // word drawn are visible to the adversary — there is no secret key.
  wbs::RandomTape tape(/*seed=*/2022);

  const uint64_t universe = uint64_t{1} << 30;
  const double eps = 0.05;  // report items with frequency > eps * L1
  wbs::hh::RobustL1HeavyHitters hh(universe, eps, /*delta=*/0.25, &tape);

  // A Zipf-distributed stream of one million updates.
  auto workload = wbs::stream::ZipfStream(universe, 1'000'000, 1.2, &tape);
  for (const auto& u : workload) {
    if (auto s = hh.Update({u.item}); !s.ok()) {
      std::fprintf(stderr, "update failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::printf("heavy hitters (eps = %.2f):\n", eps);
  for (const auto& wi : hh.Query()) {
    std::printf("  item %12llu  ~%.0f occurrences\n",
                static_cast<unsigned long long>(wi.item), wi.estimate);
  }

  // White-box exposure: serialize the full internal state the adversary
  // would see, and report the information-theoretic footprint.
  wbs::core::StateWriter w;
  hh.SerializeState(&w);
  std::printf("\nexposed state: %zu words; randomness consumed: %llu words\n",
              w.words().size(),
              static_cast<unsigned long long>(tape.words_consumed()));
  std::printf("space: %llu bits (Misra-Gries worst case at this eps/m: "
              "%llu bits)\n",
              static_cast<unsigned long long>(hh.SpaceBits()),
              static_cast<unsigned long long>(
                  wbs::hh::MisraGries::WorstCaseSpaceBits(
                      size_t(2 / eps), universe, workload.size())));
  return 0;
}
