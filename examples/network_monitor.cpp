// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Network monitoring with hierarchical heavy hitters (the DDoS-detection
// scenario of Section 2.2, [ZSS+04]/[SDS+06]): a router summarizes source
// IPv4 traffic at every prefix granularity while an *insider* who can read
// the monitor's memory (the white-box adversary — the paper's motivating
// systems-administration example from [MMNW11]) shapes traffic adaptively.
//
//   $ ./examples/network_monitor
//
// The robust HHH algorithm (Algorithm 4, Theorem 2.14) still surfaces the
// attacking /16 subnet. Alongside it, the same packet stream is mirrored
// into the typed engine API (engine::Client): an async ticketed Submit
// feeds a sharded misra_gries sketch keyed by /16 prefix, and a typed
// TopK query independently flags the hottest subnets — the serving-path
// view of the same incident.

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/client.h"
#include "hhh/hhh.h"
#include "stream/frequency_oracle.h"

namespace {

// Renders a level-l prefix of a 32-bit address as CIDR.
std::string Cidr(const wbs::hhh::Hierarchy& h, const wbs::hhh::Prefix& p) {
  int kept_bits = 32 - p.level * h.bits_per_level();
  uint64_t addr = p.value << (p.level * h.bits_per_level());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu.%llu.%llu.%llu/%d",
                (unsigned long long)((addr >> 24) & 0xff),
                (unsigned long long)((addr >> 16) & 0xff),
                (unsigned long long)((addr >> 8) & 0xff),
                (unsigned long long)(addr & 0xff), kept_bits);
  return std::string(buf);
}

std::string Cidr16(uint64_t prefix16) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%llu.0.0/16",
                (unsigned long long)((prefix16 >> 8) & 0xff),
                (unsigned long long)(prefix16 & 0xff));
  return std::string(buf);
}

}  // namespace

int main() {
  wbs::RandomTape tape(7);
  const wbs::hhh::Hierarchy hierarchy = wbs::hhh::Hierarchy::Bytes(32);
  const uint64_t universe = uint64_t{1} << 32;
  const double eps = 0.02, gamma = 0.1;

  wbs::hhh::RobustHhh monitor(hierarchy, universe, eps, gamma, 0.25, &tape);
  wbs::stream::FrequencyOracle truth(universe);

  // The engine-side mirror: /16 prefixes (2^16 ids) into a sharded
  // misra_gries group behind the typed Client surface. Packets are
  // buffered per batch and submitted asynchronously — the router's
  // fast path never blocks on the summarization backend.
  wbs::engine::ClientOptions eopts;
  eopts.ingest.num_shards = 4;
  eopts.ingest.num_threads = 2;
  eopts.ingest.sketches = {"misra_gries"};
  eopts.ingest.config =
      wbs::engine::SketchConfig{}
          .WithUniverse(uint64_t{1} << 16)
          .WithSeed(7)
          .With(wbs::engine::MisraGriesOptions{}.WithCounters(128));
  auto client_or = wbs::engine::Client::Create(eopts);
  if (!client_or.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(client_or).value();
  auto subnet_handle = client->Handle("misra_gries").value();
  std::vector<wbs::stream::ItemUpdate> packet_buffer;
  const size_t kFlushEvery = 4096;

  // Botnet: 30% of traffic from 10.66.0.0/16, spread across 256 hosts so no
  // single source is heavy. The insider watches the monitor's exposed
  // state (sampling counters) and routes each attack packet through the
  // bot the monitor currently estimates LOWEST — the adaptive evasion the
  // white-box model captures.
  const uint64_t botnet_base = (10ULL << 24) | (66ULL << 16);
  const uint64_t packets = 300'000;
  for (uint64_t i = 0; i < packets; ++i) {
    uint64_t src;
    if (i % 10 < 3) {
      // Adaptive bot selection: pick the least-estimated bot (white-box!).
      uint64_t best_bot = 0;
      double best_est = 1e300;
      for (uint64_t b = 0; b < 256; b += 17) {  // subsample for speed
        // The insider can compute any estimate the monitor could — it sees
        // the full state. We model it via the public query interface on
        // leaf prefixes through the active sampled summary.
        double est = 0;
        for (const auto& e : monitor.Query()) {
          if (e.prefix.level == 0 && e.prefix.value == botnet_base + b) {
            est = e.estimate;
          }
        }
        if (est < best_est) {
          best_est = est;
          best_bot = b;
        }
      }
      src = botnet_base + best_bot;
    } else {
      // Benign background: uniform sources.
      src = tape.NextWord() & 0xffffffffULL;
    }
    truth.Add(src);
    if (auto s = monitor.Update({src}); !s.ok()) {
      std::fprintf(stderr, "monitor error: %s\n", s.ToString().c_str());
      return 1;
    }
    // Mirror the packet's /16 prefix into the engine, batched + async.
    packet_buffer.push_back({src >> 16});
    if (packet_buffer.size() >= kFlushEvery || i + 1 == packets) {
      auto ticket =
          client->SubmitItems(packet_buffer.data(), packet_buffer.size());
      if (!ticket.ok()) {
        std::fprintf(stderr, "engine submit: %s\n",
                     ticket.status().ToString().c_str());
        return 1;
      }
      packet_buffer.clear();
    }
  }

  std::printf("hierarchical heavy hitters (gamma = %.2f, %llu packets):\n",
              gamma, (unsigned long long)packets);
  bool subnet_flagged = false;
  for (const auto& e : monitor.Query()) {
    std::printf("  %-20s ~%.0f packets\n",
                Cidr(hierarchy, e.prefix).c_str(), e.estimate);
    // The botnet occupies 10.66.0.0/24; HHH reports it at the deepest
    // prefix that aggregates the (individually light) bots.
    if (e.prefix.level >= 1 && e.prefix.level <= 2 &&
        hierarchy.IsAncestorOrSelf(e.prefix,
                                   hierarchy.PrefixOf(botnet_base, 0)) &&
        e.prefix.value != 0) {
      subnet_flagged = true;
    }
  }

  // The engine-side verdict: flush the mirrored stream, then one typed
  // TopK query over the /16 sketch. The attacking subnet (30% of all
  // packets) must dominate the candidate list.
  bool engine_flagged = false;
  if (!client->Flush().ok()) {
    std::fprintf(stderr, "engine flush failed\n");
    return 1;
  }
  auto top = client->QueryTopK(subnet_handle, 5);
  if (!top.ok()) {
    std::fprintf(stderr, "engine query: %s\n",
                 top.status().ToString().c_str());
    return 1;
  }
  std::printf("\nengine view — top /16 subnets (typed TopK over %llu "
              "mirrored packets):\n",
              (unsigned long long)top.value().updates);
  for (const auto& wi : top.value().items) {
    std::printf("  %-20s ~%.0f packets\n", Cidr16(wi.item).c_str(),
                wi.estimate);
  }
  if (!top.value().items.empty() &&
      top.value().items.front().item == (botnet_base >> 16)) {
    engine_flagged = true;
  }
  (void)client->Finish();

  std::printf("\nattacking botnet prefix (10.66.0.0/24) flagged by HHH: %s\n",
              subnet_flagged ? "YES" : "no");
  std::printf("attacking /16 is the engine's top subnet: %s\n",
              engine_flagged ? "YES" : "no");
  std::printf("monitor space: %llu bits for a 2^32 address space\n",
              (unsigned long long)monitor.SpaceBits());
  return (subnet_flagged && engine_flagged) ? 0 : 1;
}
