// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Network monitoring with hierarchical heavy hitters (the DDoS-detection
// scenario of Section 2.2, [ZSS+04]/[SDS+06]): a router summarizes source
// IPv4 traffic at every prefix granularity while an *insider* who can read
// the monitor's memory (the white-box adversary — the paper's motivating
// systems-administration example from [MMNW11]) shapes traffic adaptively.
//
//   $ ./examples/network_monitor
//
// The robust HHH algorithm (Algorithm 4, Theorem 2.14) still surfaces the
// attacking /16 subnet.

#include <cstdio>
#include <string>

#include "common/random.h"
#include "hhh/hhh.h"
#include "stream/frequency_oracle.h"

namespace {

// Renders a level-l prefix of a 32-bit address as CIDR.
std::string Cidr(const wbs::hhh::Hierarchy& h, const wbs::hhh::Prefix& p) {
  int kept_bits = 32 - p.level * h.bits_per_level();
  uint64_t addr = p.value << (p.level * h.bits_per_level());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu.%llu.%llu.%llu/%d",
                (unsigned long long)((addr >> 24) & 0xff),
                (unsigned long long)((addr >> 16) & 0xff),
                (unsigned long long)((addr >> 8) & 0xff),
                (unsigned long long)(addr & 0xff), kept_bits);
  return std::string(buf);
}

}  // namespace

int main() {
  wbs::RandomTape tape(7);
  const wbs::hhh::Hierarchy hierarchy = wbs::hhh::Hierarchy::Bytes(32);
  const uint64_t universe = uint64_t{1} << 32;
  const double eps = 0.02, gamma = 0.1;

  wbs::hhh::RobustHhh monitor(hierarchy, universe, eps, gamma, 0.25, &tape);
  wbs::stream::FrequencyOracle truth(universe);

  // Botnet: 30% of traffic from 10.66.0.0/16, spread across 256 hosts so no
  // single source is heavy. The insider watches the monitor's exposed
  // state (sampling counters) and routes each attack packet through the
  // bot the monitor currently estimates LOWEST — the adaptive evasion the
  // white-box model captures.
  const uint64_t botnet_base = (10ULL << 24) | (66ULL << 16);
  const uint64_t packets = 300'000;
  for (uint64_t i = 0; i < packets; ++i) {
    uint64_t src;
    if (i % 10 < 3) {
      // Adaptive bot selection: pick the least-estimated bot (white-box!).
      uint64_t best_bot = 0;
      double best_est = 1e300;
      for (uint64_t b = 0; b < 256; b += 17) {  // subsample for speed
        // The insider can compute any estimate the monitor could — it sees
        // the full state. We model it via the public query interface on
        // leaf prefixes through the active sampled summary.
        double est = 0;
        for (const auto& e : monitor.Query()) {
          if (e.prefix.level == 0 && e.prefix.value == botnet_base + b) {
            est = e.estimate;
          }
        }
        if (est < best_est) {
          best_est = est;
          best_bot = b;
        }
      }
      src = botnet_base + best_bot;
    } else {
      // Benign background: uniform sources.
      src = tape.NextWord() & 0xffffffffULL;
    }
    truth.Add(src);
    if (auto s = monitor.Update({src}); !s.ok()) {
      std::fprintf(stderr, "monitor error: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::printf("hierarchical heavy hitters (gamma = %.2f, %llu packets):\n",
              gamma, (unsigned long long)packets);
  bool subnet_flagged = false;
  for (const auto& e : monitor.Query()) {
    std::printf("  %-20s ~%.0f packets\n",
                Cidr(hierarchy, e.prefix).c_str(), e.estimate);
    // The botnet occupies 10.66.0.0/24; HHH reports it at the deepest
    // prefix that aggregates the (individually light) bots.
    if (e.prefix.level >= 1 && e.prefix.level <= 2 &&
        hierarchy.IsAncestorOrSelf(e.prefix,
                                   hierarchy.PrefixOf(botnet_base, 0)) &&
        e.prefix.value != 0) {
      subnet_flagged = true;
    }
  }
  std::printf("\nattacking botnet prefix (10.66.0.0/24) flagged: %s\n",
              subnet_flagged ? "YES" : "no");
  std::printf("monitor space: %llu bits for a 2^32 address space\n",
              (unsigned long long)monitor.SpaceBits());
  return subnet_flagged ? 0 : 1;
}
