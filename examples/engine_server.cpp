// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The sharded ingestion engine serving three concurrent client workloads —
// the multi-tenant traffic shape the ROADMAP's production north star needs:
//
//   client A  Zipfian product traffic (insert-only, heavy skew),
//   client B  turnstile churn (a cache layer inserting and deleting
//             short-lived keys; its net contribution must cancel exactly),
//   client C  an adversarial tenant mounting the classic linear-counter
//             attack: +1/-1 across two coordinates of the same chunk, so
//             each touched chunk has live keys but net sum zero.
//
// The engine multiplexes all three through one ShardedIngestor (4 shards,
// 2 worker threads, batched updates), then merges shard-local sketches into
// global answers and scores them against exact FrequencyOracle ground
// truth. The SIS-backed L0 sketch keeps client C's chunks visibly nonzero —
// cancelling it would require a short SIS kernel vector (Assumption 2.17) —
// while a naive per-chunk sum counter (the broken baseline from
// src/distinct/l0_estimator.h) reports every attacked chunk empty.
//
//   $ ./examples/engine_server

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "distinct/l0_estimator.h"
#include "engine/sharded_ingestor.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

int main() {
  const uint64_t universe = uint64_t{1} << 14;
  wbs::RandomTape tape(2026);
  tape.set_logging(false);

  // ---- client workloads -------------------------------------------------
  // Clients A and B live in the bottom half of the universe; client C
  // attacks the chunks of the top half so the damage is attributable.
  const uint64_t half = universe / 2;
  const auto params = wbs::distinct::SisL0Params::Derive(universe, 0.5, 0.25,
                                                         uint64_t{1} << 20);

  auto zipf_items = wbs::stream::ZipfStream(half, 60'000, 1.2, &tape);
  wbs::stream::TurnstileStream zipf;
  zipf.reserve(zipf_items.size());
  for (const auto& u : zipf_items) zipf.push_back({u.item, 1});

  auto churn =
      wbs::stream::InsertDeleteChurnStream(half, /*live=*/400,
                                           /*churn=*/20'000, &tape);

  // Client C: for every top-half chunk, stream +1/-1 across PAIRS of
  // coordinates. Each pair leaves two live keys whose chunk-sum is zero —
  // the one-shot kill for any per-chunk sum counter, and exactly the
  // update pattern a white-box adversary would use against a non-crypto
  // linear sketch.
  wbs::stream::TurnstileStream adversarial;
  for (uint64_t base = half; base + params.chunk_width <= universe;
       base += params.chunk_width) {
    for (uint64_t pair = 0; pair + 1 < params.chunk_width && pair < 20;
         pair += 2) {
      adversarial.push_back({base + pair, +1});
      adversarial.push_back({base + pair + 1, -1});
    }
  }

  // ---- the engine -------------------------------------------------------
  wbs::engine::IngestorOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 2;
  opts.sketches = {"ams_f2", "sis_l0"};  // turnstile-capable sketch group
  opts.config.universe = universe;
  opts.config.seed = 7;
  auto ingestor_or = wbs::engine::ShardedIngestor::Create(opts);
  if (!ingestor_or.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 ingestor_or.status().ToString().c_str());
    return 1;
  }
  auto ingestor = std::move(ingestor_or).value();

  wbs::stream::FrequencyOracle truth(universe);

  // Interleave the three clients round-robin in slices, the way a server
  // drains per-connection buffers; every slice is one batched submission.
  const size_t slice = 2048;
  size_t pos[3] = {0, 0, 0};
  const wbs::stream::TurnstileStream* clients[3] = {&zipf, &churn,
                                                    &adversarial};
  bool drained = false;
  while (!drained) {
    drained = true;
    for (int c = 0; c < 3; ++c) {
      const auto& s = *clients[c];
      size_t n = std::min(slice, s.size() - pos[c]);
      if (n == 0) continue;
      drained = false;
      for (size_t i = 0; i < n; ++i) {
        truth.Add(s[pos[c] + i].item, s[pos[c] + i].delta);
      }
      wbs::Status st = ingestor->Submit(s.data() + pos[c], n);
      if (!st.ok()) {
        std::fprintf(stderr, "submit: %s\n", st.ToString().c_str());
        return 1;
      }
      pos[c] += n;
    }
  }
  if (!ingestor->Finish().ok()) {
    std::fprintf(stderr, "engine finish failed\n");
    return 1;
  }

  // ---- merged answers vs ground truth -----------------------------------
  wbs::bench::Banner("engine_server",
                     "sharded engine serving Zipf + churn + adversarial "
                     "tenants concurrently (4 shards, 2 workers)");

  auto l0 = ingestor->MergedSummary("sis_l0");
  auto f2 = ingestor->MergedSummary("ams_f2");
  if (!l0.ok() || !f2.ok()) {
    std::fprintf(stderr, "summary failed\n");
    return 1;
  }

  // The broken baseline: per-chunk sum counters with the same chunking as
  // SIS-L0. Every attacked chunk sums to zero, so the naive counter misses
  // all of client C's live keys; the SIS sketch keeps them visible.
  wbs::distinct::NaiveSumL0 naive(universe, params.chunk_width);
  for (const auto* s : clients) {
    for (const auto& u : *s) naive.Update(u);
  }

  wbs::bench::Table table({"metric", "truth", "engine", "naive_sum"});
  table.Row()
      .Cell(std::string("L0 (distinct)"))
      .Cell(double(truth.L0()))
      .Cell(l0.value().scalar)
      .Cell(naive.Query());
  table.Row()
      .Cell(std::string("F2 moment"))
      .Cell(truth.Fp(2))
      .Cell(f2.value().scalar)
      .Cell(std::string("-"));

  std::printf(
      "\nupdates ingested: %llu across %zu shards (%zu worker threads)\n",
      (unsigned long long)ingestor->updates_submitted(),
      ingestor->num_shards(), ingestor->num_threads());
  std::printf(
      "engine state: %llu bits across all shard sketches\n",
      (unsigned long long)ingestor->SpaceBits());
  std::printf(
      "client C streamed %zu cancellation updates: the naive sum counter\n"
      "reports its chunks empty, the SIS-backed engine answer does not.\n",
      adversarial.size());
  return 0;
}
