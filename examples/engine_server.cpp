// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The typed multi-producer engine API serving three concurrent client
// workloads — the multi-tenant traffic shape the ROADMAP's production
// north star needs:
//
//   client A  Zipfian product traffic (insert-only, heavy skew),
//   client B  turnstile churn (a cache layer inserting and deleting
//             short-lived keys; its net contribution must cancel exactly),
//   client C  an adversarial tenant mounting the classic linear-counter
//             attack: +1/-1 across two coordinates of the same chunk, so
//             each touched chunk has live keys but net sum zero.
//
// Each client is its own PRODUCER THREAD calling engine::Client::Submit —
// the MPSC ticket path; no external serialization, no blocking on
// backpressure. A monitoring thread concurrently issues typed queries
// through handles resolved once at startup (quiescence-free snapshot
// reads). At the end the merged answers are scored against exact
// FrequencyOracle ground truth. The SIS-backed L0 sketch keeps client C's
// chunks visibly nonzero — cancelling it would require a short SIS kernel
// vector (Assumption 2.17) — while a naive per-chunk sum counter (the
// broken baseline from src/distinct/l0_estimator.h) reports every attacked
// chunk empty.
//
// The shard backend is selectable: --backend=inprocess (default) keeps the
// shards in this process; --backend=loopback runs every shard behind a
// socketpair server speaking the engine wire format; --backend=mixed
// alternates the two — same Client code, same answers, shard state
// crossing a process-style boundary where placed.
//
// While the tenants ingest, the main thread RESHARDS THE ENGINE LIVE:
// AddShards(2) grows the topology mid-traffic (slots rebalance onto the
// new shards) and MoveShard(0) hands shard 0 off to the OTHER kind of
// placement via the serialized-state transfer — producers never pause
// longer than one batch barrier, the monitor keeps querying throughout,
// and the final answers still match exact ground truth (the linear
// sketches are partition-independent, so the answer tables stay
// byte-identical across runs no matter where the barrier lands; only the
// information-theoretic space line varies, since per-shard counter
// magnitudes depend on how the suffix traffic split).
//
// Observability: --stats-interval=<ms> starts a live monitor that renders
// the engine's metric table to stderr every interval (and once more at
// shutdown); --stats-jsonl=<path> additionally appends every sample of
// every tick as one JSON object per line, stamped with a `t_us` offset —
// the machine-diffable stats stream CI validates. Both leave stdout
// untouched: the examples double as determinism probes and their stdout
// must stay byte-identical across runs.
//
// Autoscaling demo: --workload=step replays a Zipf stream whose paced
// submission rate jumps 4x halfway through (a traffic spike);
// --workload=diurnal modulates the rate sinusoidally while ROTATING the
// hot-key set every phase (the heavy head migrates across the hash
// slots). With --autoscale the engine runs its own control plane: the
// controller samples per-shard rates and valve pressure, scales out
// under the spike, and peels hot slots off imbalanced shards — no
// operator calls AddShards anywhere in the workload path. stdout stays a
// determinism probe (the linear families' merged answers are partition-
// independent, so they are byte-identical no matter when or how the
// controller reshards); everything timing-dependent (decisions taken,
// final shard count) goes to stderr.
//
//   $ ./examples/engine_server
//   $ ./examples/engine_server --backend=loopback
//   $ ./examples/engine_server --stats-interval=250 --stats-jsonl=stats.jsonl
//   $ ./examples/engine_server --workload=step --autoscale

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "distinct/l0_estimator.h"
#include "engine/client.h"
#include "engine/metrics.h"
#include "engine/remote_backend.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

namespace {

/// One stats tick: table to stderr, and (when `jsonl` is open) every sample
/// as a JSON line with a `t_us` run-offset field spliced in.
void EmitStats(const wbs::engine::Client& client, uint64_t t_us,
               std::ofstream* jsonl) {
  wbs::engine::MetricsSnapshot snap = client.Metrics();
  std::ostringstream table;
  table << "---- engine stats @ " << t_us << " us ----\n";
  snap.WriteTable(table);
  std::fputs(table.str().c_str(), stderr);
  if (jsonl != nullptr && jsonl->is_open()) {
    std::string line;
    for (const auto& sample : snap.samples) {
      line.clear();
      wbs::engine::AppendSampleJson(sample, &line);
      // The sample renders as {"metric":...}; stamp the tick's run offset
      // as the first field so every stream row is self-describing.
      line.insert(1, "\"t_us\":" + std::to_string(t_us) + ",");
      *jsonl << line << "\n";
    }
    jsonl->flush();
  }
}

/// The --workload=step|diurnal autoscaling demo. The stream CONTENT is
/// deterministic (fixed tape seed, fixed phase plan); only the submission
/// PACING shapes the load the controller sees. Returns the process exit
/// code: nonzero when ingest fails, any acked update is lost, or the
/// merged answers fail their query path — "converged" means the paced
/// stream fully ingested through whatever topology the controller chose
/// and the final answers still match the static ground truth.
int RunShapedWorkload(const std::string& workload, bool autoscale,
                      wbs::engine::BackendFactory backend,
                      uint64_t stats_interval_ms,
                      const std::string& stats_jsonl_path) {
  const uint64_t universe = uint64_t{1} << 14;
  wbs::RandomTape tape(2026);
  tape.set_logging(false);

  // ---- the phase plan ---------------------------------------------------
  // 8 phases of Zipf traffic. step: base pacing for the first half, then
  // a 4x rate spike. diurnal: sinusoidal pacing, and each phase ROTATES
  // the hot-key set by an eighth of the universe so the heavy head (and
  // its hash slots) migrates — the load-imbalance shape slot-level
  // migration exists for.
  const size_t kPhases = 8;
  const size_t kSlice = 512;          // updates per paced submission
  const uint64_t kBaseSleepUs = 2000;  // base pacing between slices
  std::vector<wbs::stream::TurnstileStream> phases(kPhases);
  std::vector<uint64_t> sleep_us(kPhases, kBaseSleepUs);
  for (size_t p = 0; p < kPhases; ++p) {
    auto items = wbs::stream::ZipfStream(universe, 12'000, 1.2, &tape);
    const uint64_t rotate =
        workload == "diurnal" ? (p * universe) / kPhases : 0;
    phases[p].reserve(items.size());
    for (const auto& u : items) {
      phases[p].push_back({(u.item + rotate) % universe, 1});
    }
    if (workload == "step") {
      if (p >= kPhases / 2) sleep_us[p] = kBaseSleepUs / 4;  // the 4x spike
    } else {
      // Rate swings sinusoidally between ~0.57x and 4x of base.
      const double m = 1.0 + 0.75 * std::sin((2.0 * M_PI * double(p)) /
                                             double(kPhases));
      sleep_us[p] = uint64_t(double(kBaseSleepUs) / (m * m));
    }
  }

  // ---- the engine, control plane included -------------------------------
  wbs::engine::ClientOptions opts;
  opts.ingest.num_shards = 2;
  opts.ingest.num_threads = 2;
  opts.ingest.sketches = {"ams_f2", "sis_l0"};
  opts.ingest.config =
      wbs::engine::SketchConfig{}.WithUniverse(universe).WithSeed(7);
  opts.ingest.backend = std::move(backend);
  opts.ingest.slot_sample_shift = 5;  // slot heat visible to the controller
  if (autoscale) {
    opts.ingest.autoscale.enabled = true;
    opts.ingest.autoscale.evaluation_interval_ms = 20;
    // The base phase paces ~128k updates/sec across 2 shards (~64k mean);
    // the 4x spike clears the watermark, the base rate never does. Valve
    // pressure (producers blocked on the inflight valve) also triggers,
    // so a machine too slow to hit the paced rate still scales.
    opts.ingest.autoscale.high_watermark_updates_per_sec = 120'000.0;
    opts.ingest.autoscale.low_watermark_updates_per_sec = 5'000.0;
    opts.ingest.autoscale.imbalance_ratio = 2.0;
    opts.ingest.autoscale.cooldown_ms = 150;
    opts.ingest.autoscale.max_shards = 6;
    opts.ingest.autoscale.ewma_alpha = 0.5;
  }
  auto client_or = wbs::engine::Client::Create(opts);
  if (!client_or.ok()) {
    std::fprintf(stderr, "engine: %s\n", client_or.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(client_or).value();
  auto l0_handle = client->Handle("sis_l0").value();
  auto f2_handle = client->Handle("ams_f2").value();

  wbs::stream::FrequencyOracle truth(universe);
  for (const auto& phase : phases) {
    for (const auto& u : phase) truth.Add(u.item, u.delta);
  }

  std::ofstream stats_jsonl;
  if (stats_interval_ms > 0 && !stats_jsonl_path.empty()) {
    stats_jsonl.open(stats_jsonl_path, std::ios::trunc);
    if (!stats_jsonl.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", stats_jsonl_path.c_str());
      return 2;
    }
  }
  const auto run_start = std::chrono::steady_clock::now();
  std::atomic<bool> stop{false};
  std::thread stats_thread;
  if (stats_interval_ms > 0) {
    stats_thread = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stats_interval_ms));
        const uint64_t t_us =
            uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - run_start)
                         .count());
        EmitStats(*client, t_us, &stats_jsonl);
      }
    });
  }

  // ---- paced ingest ------------------------------------------------------
  uint64_t submit_failures = 0;
  wbs::engine::IngestTicket last{};
  for (size_t p = 0; p < kPhases; ++p) {
    const auto& phase = phases[p];
    for (size_t off = 0; off < phase.size(); off += kSlice) {
      auto t = client->Submit(phase.data() + off,
                              std::min(kSlice, phase.size() - off));
      if (!t.ok()) {
        ++submit_failures;
        break;
      }
      last = t.value();
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us[p]));
    }
  }
  if (!client->Wait(last).ok()) ++submit_failures;

  stop.store(true, std::memory_order_relaxed);
  if (stats_thread.joinable()) {
    stats_thread.join();
    const uint64_t t_us =
        uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - run_start)
                     .count());
    EmitStats(*client, t_us, &stats_jsonl);
  }

  // Everything timing-dependent goes to stderr: how often the controller
  // acted, and the topology it converged to, depend on machine speed.
  wbs::engine::MetricsSnapshot snap = client->Metrics();
  auto topo = client->Topology();
  std::fprintf(
      stderr,
      "autoscale: %llu evaluations, %llu scale-outs (+%llu shards), "
      "%llu slot moves (%llu slots), %llu suppressed by cooldown; "
      "final topology: %zu shards over %zu slots (generation %llu)\n",
      (unsigned long long)snap.Value("engine.autoscaler.evaluations_total"),
      (unsigned long long)snap.Value("engine.autoscaler.scaleouts_total"),
      (unsigned long long)snap.Value("engine.autoscaler.shards_added_total"),
      (unsigned long long)snap.Value("engine.autoscaler.slot_moves_total"),
      (unsigned long long)snap.Value("engine.autoscaler.slots_moved_total"),
      (unsigned long long)
          snap.Value("engine.autoscaler.cooldown_suppressed_total"),
      topo.num_shards, topo.num_slots, (unsigned long long)topo.generation);
  for (const auto& span : client->TraceSpans()) {
    if (span.name != "autoscale.decision") continue;
    std::fprintf(stderr,
                 "autoscale.decision: kind=%llu mean=%llu max=%llu "
                 "generation=%llu\n",
                 (unsigned long long)span.Attr("kind"),
                 (unsigned long long)span.Attr("mean_rate"),
                 (unsigned long long)span.Attr("max_rate"),
                 (unsigned long long)span.Attr("generation"));
  }

  // Convergence gate: full ingest, clean Finish, zero lost acked updates.
  const uint64_t lost = snap.Value("engine.failover.updates_lost_total");
  if (submit_failures > 0 || lost > 0 || !client->Finish().ok()) {
    std::fprintf(stderr, "engine ingest failed (%llu submit failures, "
                 "%llu updates lost)\n",
                 (unsigned long long)submit_failures,
                 (unsigned long long)lost);
    return 1;
  }

  // ---- deterministic stdout: merged answers vs static ground truth ------
  // The linear families' merged state is partition-independent, so these
  // numbers are byte-identical no matter what topology the controller
  // chose or when its barriers landed.
  wbs::bench::Banner("engine_server",
                     workload == "step"
                         ? "step workload: paced Zipf traffic with a 4x "
                           "mid-stream rate spike"
                         : "diurnal workload: sinusoidal rate with a "
                           "rotating hot-key set");
  auto l0 = client->QueryScalar(l0_handle);
  auto f2 = client->QueryScalar(f2_handle);
  if (!l0.ok() || !f2.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  wbs::bench::Table table({"metric", "truth", "engine"});
  table.Row()
      .Cell(std::string("L0 (distinct)"))
      .Cell(double(truth.L0()))
      .Cell(l0.value().value);
  table.Row().Cell(std::string("F2 moment")).Cell(truth.Fp(2)).Cell(
      f2.value().value);
  std::printf("\nworkload=%s autoscale=%s: %llu updates ingested across 8 "
              "phases; zero acked updates lost; answers above are "
              "partition-independent (identical for ANY topology the "
              "controller picked)\n",
              workload.c_str(), autoscale ? "on" : "off",
              (unsigned long long)client->updates_submitted());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string backend_name = "inprocess";
  uint64_t stats_interval_ms = 0;  // 0 = stats monitor off
  std::string stats_jsonl_path;
  std::string workload;  // "" = the default 3-tenant demo
  bool autoscale = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      backend_name = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      // Endpoint(s) of running engine_shardd daemons; implies --backend=tcp.
      // Two-terminal demo:
      //   terminal 1: ./examples/engine_shardd --port=7841
      //   terminal 2: ./examples/engine_server --connect=127.0.0.1:7841
      backend_name = std::string("tcp:") + (argv[i] + 10);
    } else if (std::strncmp(argv[i], "--stats-interval=", 17) == 0) {
      stats_interval_ms = std::strtoull(argv[i] + 17, nullptr, 10);
    } else if (std::strncmp(argv[i], "--stats-jsonl=", 14) == 0) {
      stats_jsonl_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--workload=", 11) == 0) {
      workload = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--autoscale") == 0) {
      autoscale = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--backend=inprocess|loopback|mixed|tcp]"
                   " [--connect=<host:port>[,<host:port>...]]"
                   " [--stats-interval=<ms>] [--stats-jsonl=<path>]"
                   " [--workload=step|diurnal] [--autoscale]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!workload.empty() && workload != "step" && workload != "diurnal") {
    std::fprintf(stderr, "unknown --workload=%s (step|diurnal)\n",
                 workload.c_str());
    return 2;
  }
  auto backend = wbs::engine::BackendFactoryByName(backend_name);
  if (!backend.ok()) {
    std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
    return 2;
  }
  if (!workload.empty()) {
    return RunShapedWorkload(workload, autoscale, std::move(backend).value(),
                             stats_interval_ms, stats_jsonl_path);
  }

  const uint64_t universe = uint64_t{1} << 14;
  wbs::RandomTape tape(2026);
  tape.set_logging(false);

  // ---- client workloads -------------------------------------------------
  // Clients A and B live in the bottom half of the universe; client C
  // attacks the chunks of the top half so the damage is attributable.
  const uint64_t half = universe / 2;
  const auto params = wbs::distinct::SisL0Params::Derive(universe, 0.5, 0.25,
                                                         uint64_t{1} << 20);

  auto zipf_items = wbs::stream::ZipfStream(half, 60'000, 1.2, &tape);
  wbs::stream::TurnstileStream zipf;
  zipf.reserve(zipf_items.size());
  for (const auto& u : zipf_items) zipf.push_back({u.item, 1});

  // live + churn must fit in the half-universe (the generator's
  // precondition: churned items are distinct from live ones).
  auto churn =
      wbs::stream::InsertDeleteChurnStream(half, /*live=*/400,
                                           /*churn=*/7'000, &tape);

  // Client C: for every top-half chunk, stream +1/-1 across PAIRS of
  // coordinates. Each pair leaves two live keys whose chunk-sum is zero —
  // the one-shot kill for any per-chunk sum counter, and exactly the
  // update pattern a white-box adversary would use against a non-crypto
  // linear sketch.
  wbs::stream::TurnstileStream adversarial;
  for (uint64_t base = half; base + params.chunk_width <= universe;
       base += params.chunk_width) {
    for (uint64_t pair = 0; pair + 1 < params.chunk_width && pair < 20;
         pair += 2) {
      adversarial.push_back({base + pair, +1});
      adversarial.push_back({base + pair + 1, -1});
    }
  }

  // ---- the engine -------------------------------------------------------
  wbs::engine::ClientOptions opts;
  opts.ingest.num_shards = 4;
  opts.ingest.num_threads = 2;
  opts.ingest.sketches = {"ams_f2", "sis_l0"};  // turnstile-capable group
  opts.ingest.config =
      wbs::engine::SketchConfig{}.WithUniverse(universe).WithSeed(7);
  opts.ingest.backend = std::move(backend).value();
  auto client_or = wbs::engine::Client::Create(opts);
  if (!client_or.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(client_or).value();

  // Handles are resolved once; every query below is an index lookup.
  auto l0_handle = client->Handle("sis_l0").value();
  auto f2_handle = client->Handle("ams_f2").value();

  wbs::stream::FrequencyOracle truth(universe);
  for (const wbs::stream::TurnstileStream* s :
       {&zipf, &churn, &adversarial}) {
    for (const auto& u : *s) truth.Add(u.item, u.delta);
  }

  // ---- three producers + one monitor, all concurrent --------------------
  // Each tenant drains its own buffer into the engine: Submit returns a
  // ticket immediately, so a slow worker never stalls a client thread. The
  // last ticket per tenant is Wait()ed at the end — by the monotone
  // completion watermark that covers everything the tenant submitted.
  const size_t slice = 2048;
  std::atomic<uint64_t> submit_failures{0};
  auto producer = [&](const wbs::stream::TurnstileStream& s) {
    wbs::engine::IngestTicket last{};
    for (size_t off = 0; off < s.size(); off += slice) {
      auto t = client->Submit(s.data() + off,
                              std::min(slice, s.size() - off));
      if (!t.ok()) {
        ++submit_failures;
        return;
      }
      last = t.value();
    }
    if (!client->Wait(last).ok()) ++submit_failures;
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> monitor_failures{0};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!client->QueryScalar(l0_handle).ok() ||
          !client->QueryScalar(f2_handle).ok()) {
        ++monitor_failures;
      }
    }
  });

  // Live stats monitor: metric table to stderr each tick, samples to the
  // JSONL stream. Runs concurrently with the producers and the reshard —
  // Metrics() needs no quiescence.
  std::ofstream stats_jsonl;
  if (stats_interval_ms > 0 && !stats_jsonl_path.empty()) {
    stats_jsonl.open(stats_jsonl_path, std::ios::trunc);
    if (!stats_jsonl.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", stats_jsonl_path.c_str());
      return 2;
    }
  }
  const auto run_start = std::chrono::steady_clock::now();
  std::thread stats_thread;
  if (stats_interval_ms > 0) {
    stats_thread = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stats_interval_ms));
        const uint64_t t_us =
            uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - run_start)
                         .count());
        EmitStats(*client, t_us, &stats_jsonl);
      }
    });
  }

  std::thread ta(producer, std::cref(zipf));
  std::thread tb(producer, std::cref(churn));
  std::thread tc(producer, std::cref(adversarial));

  // ---- live reshard while the tenants hammer the engine ------------------
  // Scale out by two shards, then hand shard 0 off to the other kind of
  // placement (in-process <-> loopback). Both ops linearize at a batch
  // barrier through the router; the racing producers and the monitor never
  // see an error, and the linear sketches make the final answers
  // independent of where in the interleaving the barrier lands.
  uint64_t reshard_failures = 0;
  if (!client->AddShards(2).ok()) ++reshard_failures;
  auto handoff_target = backend_name == "loopback"
                            ? wbs::engine::InProcessBackendFactory()
                            : wbs::engine::LoopbackBackendFactory();
  if (!client->MoveShard(0, handoff_target).ok()) {
    ++reshard_failures;
  }
  // Handoff phase timings come from the recorded trace spans (the single
  // source of truth for control-op phase timings).
  // Timing is scheduling-dependent, so it goes to stderr, not the
  // determinism-probed stdout.
  for (const auto& span : client->TraceSpans()) {
    if (span.name != "move_shard") continue;
    std::fprintf(stderr,
                 "move_shard: %llu us total, %llu bytes handed off\n",
                 (unsigned long long)span.duration_us,
                 (unsigned long long)span.Attr("state_bytes"));
  }

  ta.join();
  tb.join();
  tc.join();
  stop.store(true, std::memory_order_relaxed);
  monitor.join();
  if (stats_thread.joinable()) {
    stats_thread.join();
    // One final tick so short runs still produce a stream and the table
    // reflects the complete ingest.
    const uint64_t t_us =
        uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - run_start)
                     .count());
    EmitStats(*client, t_us, &stats_jsonl);
  }
  if (submit_failures.load() > 0 || reshard_failures > 0 ||
      !client->Finish().ok()) {
    std::fprintf(stderr, "engine ingest failed\n");
    return 1;
  }

  // ---- merged answers vs ground truth -----------------------------------
  wbs::bench::Banner("engine_server",
                     "typed engine API serving Zipf + churn + adversarial "
                     "tenants as 3 concurrent producers (4 shards, 2 "
                     "workers, quiescence-free monitor thread)");

  auto l0 = client->QueryScalar(l0_handle);
  auto f2 = client->QueryScalar(f2_handle);
  if (!l0.ok() || !f2.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }

  // The broken baseline: per-chunk sum counters with the same chunking as
  // SIS-L0. Every attacked chunk sums to zero, so the naive counter misses
  // all of client C's live keys; the SIS sketch keeps them visible.
  wbs::distinct::NaiveSumL0 naive(universe, params.chunk_width);
  for (const wbs::stream::TurnstileStream* s :
       {&zipf, &churn, &adversarial}) {
    for (const auto& u : *s) naive.Update(u);
  }

  wbs::bench::Table table({"metric", "truth", "engine", "naive_sum"});
  table.Row()
      .Cell(std::string("L0 (distinct)"))
      .Cell(double(truth.L0()))
      .Cell(l0.value().value)
      .Cell(naive.Query());
  table.Row()
      .Cell(std::string("F2 moment"))
      .Cell(truth.Fp(2))
      .Cell(f2.value().value)
      .Cell(std::string("-"));

  std::printf(
      "\nupdates ingested: %llu across %zu shards (%zu worker threads, "
      "3 producer threads, %s backend)\n",
      (unsigned long long)client->updates_submitted(),
      client->ingestor().num_shards(), client->ingestor().num_threads(),
      client->ingestor().backend().name().c_str());
  auto topo = client->Topology();
  std::printf(
      "live reshard: AddShards(2) + MoveShard(0 -> %s cell) mid-traffic; "
      "topology generation %llu, %zu shards over %zu slots\n",
      backend_name == "loopback" ? "inprocess" : "loopback",
      (unsigned long long)topo.generation, topo.num_shards, topo.num_slots);
  // A raw query COUNT would be scheduling-dependent and the examples
  // double as determinism probes (byte-identical output across runs), so
  // report only the failure count — deterministically 0 when healthy.
  std::printf("quiescence-free monitor thread: %llu query failures "
              "(no Flush anywhere)\n",
              (unsigned long long)monitor_failures.load());
  // Space depends on where the live-reshard barrier landed in the racing
  // producers' interleavings (AMS counter magnitudes are per-shard), so
  // report it coarsely to keep the rest of the output a determinism probe.
  std::printf("engine state: ~%llu KiB across all shard sketches\n",
              (unsigned long long)(client->ingestor().SpaceBits() / 8192));
  std::printf(
      "client C streamed %zu cancellation updates: the naive sum counter\n"
      "reports its chunks empty, the SIS-backed engine answer does not.\n",
      adversarial.size());
  return 0;
}
