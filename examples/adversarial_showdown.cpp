// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Adversarial showdown: three classic sketches vs their white-box attacks,
// side by side with the paper's robust replacements.
//
//   $ ./examples/adversarial_showdown
//
//   round 1 — Karp-Rabin fingerprints vs the Fermat attack (Section 2.6),
//             and the discrete-log fingerprint that resists it (Thm 2.5);
//   round 2 — the AMS F2 sketch vs the kernel attack (the Theorem 1.9
//             phenomenon), and the Omega(n) exact baseline that survives;
//   round 3 — KMV distinct-counting vs hash-blinding, and Algorithm 5's
//             SIS sketch that keeps its n^eps guarantee on the same stream.

#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "core/game.h"
#include "crypto/random_oracle.h"
#include "distinct/l0_estimator.h"
#include "moments/ams.h"
#include "stream/frequency_oracle.h"
#include "strings/fingerprint.h"

namespace {

void Round1Fingerprints() {
  std::printf("== round 1: string fingerprints =========================\n");
  wbs::RandomTape tape(1);
  auto kr = wbs::strings::KarpRabinParams::Generate(12, &tape);
  auto [u, v] = wbs::strings::FermatCollision(kr, size_t(kr.p) + 16);
  wbs::strings::KarpRabin fu(kr), fv(kr);
  for (char c : u) fu.Append(uint64_t(uint8_t(c)));
  for (char c : v) fv.Append(uint64_t(uint8_t(c)));
  std::printf("Karp-Rabin (p = %llu): distinct strings, fingerprints %s\n",
              (unsigned long long)kr.p,
              fu.value() == fv.value() ? "COLLIDE — broken" : "differ");

  auto g = wbs::crypto::DlogParams::Generate(48, &tape);
  wbs::crypto::DlogFingerprint du(g), dv(g);
  for (char c : u) du.AppendChar(uint64_t(uint8_t(c)), 1);
  for (char c : v) dv.AppendChar(uint64_t(uint8_t(c)), 1);
  std::printf("dlog fingerprint (48-bit group): same attack, fingerprints "
              "%s\n\n",
              du.value() == dv.value() ? "collide" : "DIFFER — robust");
}

void Round2Moments() {
  std::printf("== round 2: F2 moment estimation ========================\n");
  wbs::RandomTape tape(2);
  wbs::moments::AmsF2Sketch ams(1 << 16, 18, &tape);
  wbs::moments::AmsKernelAdversary adversary(&ams);
  wbs::stream::FrequencyOracle truth(1 << 16);
  auto result = wbs::core::RunGame<wbs::stream::TurnstileUpdate, double>(
      &ams, &adversary, 10000,
      [&](const wbs::stream::TurnstileUpdate& up) {
        truth.Add(up.item, up.delta);
      },
      [&](uint64_t, const double& answer) {
        double f2 = truth.Fp(2);
        return f2 == 0 || (answer >= f2 / 3 && answer <= 3 * f2);
      },
      /*stop_at_first_failure=*/false);
  std::printf("AMS sketch (18 rows, %llu bits): kernel attack -> estimate "
              "%.0f, true F2 %.0f -> %s\n",
              (unsigned long long)ams.SpaceBits(), ams.Query(),
              truth.Fp(2), result.algorithm_survived ? "survived" : "BROKEN");

  wbs::moments::AmsF2Sketch victim2(1 << 16, 18, &tape);
  wbs::moments::AmsKernelAdversary adversary2(&victim2);
  wbs::moments::ExactF2Stream exact(1 << 16);
  wbs::stream::FrequencyOracle truth2(1 << 16);
  auto exact_result =
      wbs::core::RunGame<wbs::stream::TurnstileUpdate, double>(
          &exact, &adversary2, 10000,
          [&](const wbs::stream::TurnstileUpdate& up) {
            truth2.Add(up.item, up.delta);
          },
          [&](uint64_t, const double& answer) {
            return answer == truth2.Fp(2);
          });
  std::printf("exact F2 (%llu bits, Omega(n)): same attack -> %s\n\n",
              (unsigned long long)exact.SpaceBits(),
              exact_result.algorithm_survived ? "SURVIVED — matches Thm 1.9"
                                              : "broken");
}

void Round3Distinct() {
  std::printf("== round 3: distinct elements ===========================\n");
  const uint64_t universe = uint64_t{1} << 22;
  wbs::RandomTape tape(3);
  wbs::distinct::KmvDistinct kmv(32, &tape);
  for (uint64_t i = 0; i < 32; ++i) (void)kmv.Update({universe - 1 - i});
  wbs::distinct::KmvBlindingAdversary adversary(&kmv, universe);

  wbs::crypto::RandomOracle oracle(9);
  auto params = wbs::distinct::SisL0Params::Derive(universe, 0.5, 0.25, 64);
  wbs::distinct::SisL0Estimator sis(params, oracle, 1);
  for (uint64_t i = 0; i < 32; ++i) (void)sis.Update({universe - 1 - i, 1});

  wbs::stream::FrequencyOracle truth(universe);
  for (uint64_t i = 0; i < 32; ++i) truth.Add(universe - 1 - i);
  auto result = wbs::core::RunGame<wbs::stream::ItemUpdate, double>(
      &kmv, &adversary, 4000,
      [&](const wbs::stream::ItemUpdate& up) {
        truth.Add(up.item);
        (void)sis.Update({up.item, 1});
      },
      [&](uint64_t round, const double& answer) {
        if (round < 2000) return true;
        return answer >= double(truth.L0()) / 4;
      });
  std::printf("KMV (k = 32): blinding adversary -> estimate %.0f with true "
              "L0 = %llu -> %s\n",
              kmv.Query(), (unsigned long long)truth.L0(),
              result.algorithm_survived ? "survived" : "BROKEN");
  std::printf("Algorithm 5 (SIS, %llu bits): same stream -> answer %.0f in "
              "[L0/n^eps, L0] = [%.0f, %llu] -> %s\n",
              (unsigned long long)sis.SpaceBits(), sis.Query(),
              std::ceil(double(truth.L0()) / double(params.chunk_width)),
              (unsigned long long)truth.L0(),
              sis.Query() <= double(truth.L0()) &&
                      sis.Query() * double(params.chunk_width) >=
                          double(truth.L0())
                  ? "SANDWICHED — robust"
                  : "violated");
}

}  // namespace

int main() {
  Round1Fingerprints();
  Round2Moments();
  Round3Distinct();
  return 0;
}
