// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E11 (Theorem 1.8 / Section 3.3): the white-box-to-deterministic
// reduction as a measurable object. For Equality and GapEquality at small n
// we execute the exact derandomization and tabulate: whether a universally
// correct seed exists, the per-seed success mass (the p of Section 3.3's
// communication matrix), and the communication (= shipped state bits).

#include "bench/bench_util.h"
#include "commlb/problems.h"
#include "commlb/reduction.h"
#include "commlb/toy_sketch.h"
#include "common/bits.h"
#include "common/random.h"
#include "counter/branching.h"
#include "counter/morris.h"

namespace wbs {
namespace {

void GapEqReduction() {
  bench::Banner(
      "E11a: exact derandomization for GapEquality (Def 3.1)",
      "Thm 1.8: robust alg with S bits -> deterministic protocol with S "
      "bits of communication; det GapEq = Omega(n) [Thm 3.2]");
  bench::Table t({"n", "rows", "bob_inputs", "found", "p(seed)",
                  "comm_bits"});
  for (size_t n : {6u, 8u, 10u, 12u}) {
    for (size_t rows : {8u, 24u, 48u}) {
      wbs::RandomTape tape(n * 100 + rows);
      commlb::BitString x = commlb::RandomBalanced(n, &tape);
      std::vector<commlb::BitString> ys = {x};
      for (const auto& y : commlb::AllBalancedStrings(n)) {
        if (commlb::Ham(x, y) * 2 >= n && !(y == x)) ys.push_back(y);
      }
      auto outcome = commlb::DerandomizeOneWay<commlb::GapEqF2Sketch, bool>(
          x, ys,
          [&](uint64_t seed) {
            return commlb::GapEqF2Sketch::Make(seed, rows, n);
          },
          [](commlb::GapEqF2Sketch* a, const commlb::BitString& ax) {
            a->Feed(ax);
          },
          [](commlb::GapEqF2Sketch* a, const commlb::BitString& by) {
            a->Feed(by);
          },
          [](const commlb::GapEqF2Sketch& a) { return a.DecidesEqual(); },
          [](const bool& says_equal, const commlb::BitString& ax,
             const commlb::BitString& by) {
            return says_equal == (ax == by);
          },
          [](const commlb::GapEqF2Sketch& a) { return a.StateBits(); },
          /*max_seeds=*/64);
      t.Row()
          .Cell(uint64_t(n))
          .Cell(uint64_t(rows))
          .Cell(uint64_t(ys.size()))
          .Cell(outcome.found)
          .Cell(outcome.per_seed_success, 3)
          .Cell(outcome.communication_bits);
    }
  }
  std::printf(
      "reading: wider sketches push p(seed) -> 1 and a universal seed "
      "appears; its state (comm_bits) is what Thm 3.2 lower-bounds by "
      "Omega(n).\n");
}

void ExactEqualityStates() {
  bench::Banner(
      "E11b: plain Equality needs one state per input (det. Omega(n))",
      "Sec 1.1.2: det. Equality complexity Theta(n) vs randomized "
      "Theta(log n) — white-box robustness forces the deterministic rate");
  bench::Table t({"n", "inputs", "states_exact", "bits=log2(states)"});
  for (size_t n : {6u, 8u, 10u, 12u, 14u}) {
    auto xs = commlb::AllBalancedStrings(n);
    struct ExactAlg {
      commlb::BitString stored;
    };
    uint64_t states = commlb::CountDistinctStates<ExactAlg>(
        xs, 0, [](uint64_t) { return ExactAlg{}; },
        [](ExactAlg* a, const commlb::BitString& x) { a->stored = x; },
        [](const ExactAlg& a) {
          std::vector<uint64_t> w;
          for (uint8_t b : a.stored) w.push_back(b);
          return w;
        });
    t.Row()
        .Cell(uint64_t(n))
        .Cell(uint64_t(xs.size()))
        .Cell(states)
        .Cell(wbs::CeilLog2(states));
  }
  std::printf("expected: states == inputs; bits ~ n - O(log n).\n");
}

void MultiplayerCounterexample() {
  bench::Banner(
      "E11c: why the reduction stops at two players (Thm 1.11)",
      "n-player counting: max per-player deterministic communication is "
      "Omega(log n), yet the white-box Morris counter uses O(log log n) — "
      "so Thm 1.8 cannot generalize to multiplayer games");
  bench::Table t({"log2(n)", "det_player_bits(LB)", "morris_bits"});
  for (int logn = 10; logn <= 22; logn += 4) {
    const uint64_t n = uint64_t{1} << logn;
    auto det = counter::TheoreticalStateLowerBound(
        n, counter::MultiplicativeError(1.0));
    wbs::RandomTape tape{uint64_t(logn)};
    tape.set_logging(false);
    counter::MorrisCounter morris(0.9, 0.25, &tape);
    for (uint64_t i = 0; i < n; ++i) (void)morris.Update({1});
    t.Row().Cell(logn).Cell(det.min_bits).Cell(morris.SpaceBits());
  }
  std::printf(
      "expected: det_player_bits grows with log n while morris_bits stays "
      "~log log n — the separation that kills the multiplayer extension.\n");
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::GapEqReduction();
  wbs::ExactEqualityStates();
  wbs::MultiplayerCounterexample();
  return 0;
}
