// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E3 (Theorem 2.14 / Algorithm 4 vs Theorem 2.11 / TMS12):
// hierarchical heavy hitters on IP-style traffic. Reports (a) detection of
// planted heavy prefixes by both algorithms, (b) the space-vs-m growth
// separation: TMS12 pays O(h/eps log m), Algorithm 4 is flat in m.

#include <cmath>

#include "bench/bench_util.h"
#include "common/random.h"
#include "hhh/hhh.h"
#include "stream/frequency_oracle.h"

namespace wbs {
namespace {

uint64_t TrafficItem(uint64_t i) {
  // 40% of traffic under the /8 prefix 0xAB, spread over 16 /16 leaves;
  // the rest uniform-ish.
  if (i % 5 < 2) return 0xAB00 + (i % 16);
  return (i * 2654435761ULL) % 0x8000;
}

void Detection() {
  bench::Banner(
      "E3a: planted heavy-prefix detection (byte hierarchy, h = 2)",
      "Thm 2.14 / Thm 2.11: both report the 40%-heavy /8 prefix; leaves at "
      "2.5% each are below the gamma = 0.2 threshold");
  bench::Table t({"algorithm", "m", "found_prefix", "reports", "space_bits"});
  const hhh::Hierarchy h = hhh::Hierarchy::Bytes(16);
  const uint64_t m = 50000;
  {
    hhh::Tms12Hhh det(h, 0.05);
    for (uint64_t i = 0; i < m; ++i) det.Add(TrafficItem(i));
    auto out = det.Query(0.2);
    bool found = false;
    for (const auto& e : out) {
      found |= e.prefix.level == 1 && e.prefix.value == 0xAB;
    }
    t.Row()
        .Cell(std::string("TMS12 (det.)"))
        .Cell(m)
        .Cell(found)
        .Cell(uint64_t(out.size()))
        .Cell(det.SpaceBits());
  }
  {
    wbs::RandomTape tape(1);
    hhh::RobustHhh robust(h, 1 << 16, 0.05, 0.2, 0.25, &tape);
    tape.set_logging(false);
    for (uint64_t i = 0; i < m; ++i) (void)robust.Update({TrafficItem(i)});
    auto out = robust.Query();
    bool found = false;
    for (const auto& e : out) {
      found |= e.prefix.level == 1 && e.prefix.value == 0xAB;
    }
    t.Row()
        .Cell(std::string("Alg 4 (robust)"))
        .Cell(m)
        .Cell(found)
        .Cell(uint64_t(out.size()))
        .Cell(robust.SpaceBits());
  }
}

void SpaceGrowth() {
  bench::Banner(
      "E3b: space vs m on a concentrated stream",
      "Thm 2.14: O(h/eps(log n + log 1/eps + ...) + log log m) — flat in m; "
      "TMS12 pays O(h/eps(log m + log n))");
  bench::Table t({"log2(m)", "tms12_bits", "robust_bits"});
  const hhh::Hierarchy h = hhh::Hierarchy::Bytes(16);
  const double eps = 0.1;
  for (int logm = 10; logm <= 20; logm += 2) {
    const uint64_t m = uint64_t{1} << logm;
    hhh::Tms12Hhh det(h, eps);
    wbs::RandomTape tape{uint64_t(logm)};
    hhh::RobustHhh robust(h, 1 << 16, eps, 0.25, 0.25, &tape);
    tape.set_logging(false);
    for (uint64_t i = 0; i < m; ++i) {
      det.Add(i % 5);
      (void)robust.Update({i % 5});
    }
    t.Row().Cell(logm).Cell(det.SpaceBits()).Cell(robust.SpaceBits());
  }
  std::printf(
      "expected shape: tms12_bits grows ~(h+1)*counters bits per doubling; "
      "robust_bits levels off.\n");
}

void HeightSweep() {
  bench::Banner(
      "E3c: space vs hierarchy height h (m = 2^16)",
      "Thm 2.14: space linear in h (one summary level per hierarchy level)");
  bench::Table t({"hierarchy", "height", "robust_bits", "tms12_bits"});
  struct Config {
    const char* name;
    hhh::Hierarchy h;
    uint64_t universe;
  };
  const Config configs[] = {
      {"bytes/16", hhh::Hierarchy::Bytes(16), uint64_t{1} << 16},
      {"bytes/32", hhh::Hierarchy::Bytes(32), uint64_t{1} << 32},
      {"binary/2^10", hhh::Hierarchy::Binary(1 << 10), uint64_t{1} << 10},
      {"binary/2^16", hhh::Hierarchy::Binary(1 << 16), uint64_t{1} << 16},
  };
  for (const auto& cfg : configs) {
    wbs::RandomTape tape{uint64_t(cfg.h.height())};
    hhh::RobustHhh robust(cfg.h, cfg.universe, 0.1, 0.25, 0.25, &tape);
    tape.set_logging(false);
    hhh::Tms12Hhh det(cfg.h, 0.1);
    const uint64_t m = 1 << 16;
    for (uint64_t i = 0; i < m; ++i) {
      uint64_t item = (i * 2654435761ULL) % cfg.universe;
      (void)robust.Update({item});
      det.Add(item % cfg.universe);
    }
    t.Row()
        .Cell(std::string(cfg.name))
        .Cell(cfg.h.height())
        .Cell(robust.SpaceBits())
        .Cell(det.SpaceBits());
  }
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::Detection();
  wbs::SpaceGrowth();
  wbs::HeightSweep();
  return 0;
}
