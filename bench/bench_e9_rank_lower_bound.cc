// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E9 (Theorem 1.10 vs Theorem 1.6): constant-factor rank
// estimation needs Omega(n) against unbounded white-box adversaries, yet the
// SIS-backed sketch survives bounded ones. The attack: the adversary reads
// H from the (public) oracle, computes k independent mod-q kernel vectors,
// and streams them as columns of A — then HA = 0 while rank(A) = k.
//   * With a small modulus q the kernel entries are <= q - 1 = poly(n):
//     the attack is ADMISSIBLE under the entry-bound promise and the sketch
//     is fooled — this is the unbounded/low-entropy regime of Thm 1.10.
//   * With a large modulus the mod-q kernel vectors violate the poly(n)
//     entry bound; an admissible attack needs SHORT kernel vectors, i.e.
//     solves SIS — the bounded adversary's search explodes (Thm 1.6 holds).

#include "bench/bench_util.h"
#include "common/bits.h"
#include "common/random.h"
#include "crypto/random_oracle.h"
#include "crypto/sis.h"
#include "linalg/matrix_zq.h"
#include "linalg/rank_sketch.h"

namespace wbs {
namespace {

// Builds the attack matrix: its columns span ker(H) (dimension n - k >= k),
// so HA = 0 while rank(A) >= k when enough independent kernel vectors exist.
struct AttackOutcome {
  bool fooled = false;
  uint64_t max_entry = 0;
  size_t planted_rank = 0;
};

AttackOutcome RunKernelAttack(size_t n, size_t k, uint64_t q,
                              uint64_t domain) {
  crypto::RandomOracle oracle(17);
  linalg::RankDecisionSketch alg(n, k, q, oracle, domain);
  // White-box step: reconstruct H and find kernel vectors mod q.
  linalg::MatrixZq h_mat(k, n, q);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < n; ++j) h_mat.At(i, j) = alg.HEntry(i, j);
  }
  AttackOutcome out;
  // Collect up to k independent kernel vectors by restricting columns.
  std::vector<std::vector<uint64_t>> kernel_cols;
  for (size_t shift = 0; shift < n && kernel_cols.size() < k; ++shift) {
    // Zero out `shift` leading coordinates to diversify the kernel vectors.
    linalg::MatrixZq sub(k, n - shift, q);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < n - shift; ++j) {
        sub.At(i, j) = h_mat.At(i, j + shift);
      }
    }
    auto x = sub.KernelVector();
    if (!x.has_value()) continue;
    std::vector<uint64_t> full(n, 0);
    for (size_t j = 0; j < n - shift; ++j) full[j + shift] = (*x)[j];
    kernel_cols.push_back(full);
  }
  // Stream A whose columns are the kernel vectors.
  linalg::MatrixZq a(n, n, q);
  for (size_t c = 0; c < kernel_cols.size(); ++c) {
    for (size_t i = 0; i < n; ++i) {
      uint64_t v = kernel_cols[c][i];
      if (v == 0) continue;
      out.max_entry = std::max(out.max_entry, v);
      a.At(i, c) = v;
      (void)alg.Update({i, c, int64_t(v)});
    }
  }
  out.planted_rank = a.Rank();
  // Fooled iff the true rank reaches k but the sketch says "rank < k".
  out.fooled = out.planted_rank >= k && !alg.Query();
  return out;
}

void AttackVsModulus() {
  bench::Banner(
      "E9a: mod-q kernel attack vs modulus size (n = 24, k = 6)",
      "Thm 1.10: admissible attack fools any small sketch when kernel "
      "entries fit the poly(n) promise; Thm 1.6: large q forces SIS");
  bench::Table t({"log2(q)", "entry_bound", "max_entry", "admissible",
                  "fooled"});
  const size_t n = 24, k = 6;
  const uint64_t promise = n * n * n;  // the poly(n) entry-bound promise
  for (uint64_t q : {251ULL, 65537ULL, 1000003ULL, 2305843009213693951ULL}) {
    auto out = RunKernelAttack(n, k, q, q % 1000);
    bool admissible = out.max_entry <= promise;
    t.Row()
        .Cell(wbs::BitsForValue(q))
        .Cell(promise)
        .Cell(double(out.max_entry), 0)
        .Cell(admissible)
        .Cell(out.fooled && admissible);
  }
  std::printf(
      "reading: the sketch is always 'fooled' algebraically, but only the "
      "small-q attacks respect the poly(n) entry promise. With q >> poly(n) "
      "an admissible attack must find a SHORT kernel vector = solve SIS.\n");
}

void ShortVectorSearch() {
  bench::Banner(
      "E9b: the admissible (short-vector) attack is a SIS search",
      "Asm 2.17: exhaustive short-kernel search explodes with n");
  bench::Table t({"cols", "beta", "found", "ops", "budget_hit"});
  crypto::RandomOracle oracle(18);
  for (size_t cols : {4u, 6u, 8u, 10u}) {
    crypto::SisParams p;
    p.q = 2305843009213693951ULL;  // 2^61 - 1
    p.rows = 4;
    p.cols = cols;
    p.beta_inf = 3;
    crypto::SisMatrix m(p, oracle, cols);
    m.Materialize();
    auto r = crypto::MeetInMiddleSisAttack(m, 2'000'000);
    t.Row()
        .Cell(uint64_t(cols))
        .Cell(p.beta_inf)
        .Cell(r.found)
        .Cell(r.operations_used)
        .Cell(r.budget_exhausted);
  }
  std::printf("expected: not found; ops ~7^(cols/2) until the budget "
              "wall.\n");
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::AttackVsModulus();
  wbs::ShortVectorSearch();
  return 0;
}
