// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E8 (Theorem 1.9 / Section 3.1): constant-factor Fp estimation
// against white-box adversaries needs Omega(n) space. Demonstrated two ways:
// (a) the kernel attack kills EVERY o(n)-row linear sketch (AMS) regardless
// of width, while the Omega(n)-space exact algorithm survives; (b) the
// Theorem 1.8 derandomization turns the robust algorithm into a
// deterministic GapEquality protocol whose communication is the state size.

#include "bench/bench_util.h"
#include "commlb/problems.h"
#include "commlb/reduction.h"
#include "commlb/toy_sketch.h"
#include "common/random.h"
#include "core/game.h"
#include "moments/ams.h"
#include "stream/frequency_oracle.h"

namespace wbs {
namespace {

void KernelAttack() {
  bench::Banner(
      "E8a: the white-box kernel attack vs AMS (any approximation factor)",
      "Thm 1.9: every o(n)-space linear sketch is driven to estimate 0 "
      "while F2 > 0");
  bench::Table t({"sketch_rows", "sketch_bits", "survived", "final_est",
                  "true_F2"});
  for (size_t rows : {6u, 12u, 18u, 24u, 30u}) {
    wbs::RandomTape tape(rows);
    moments::AmsF2Sketch alg(1 << 16, rows, &tape);
    tape.set_logging(false);
    moments::AmsKernelAdversary adv(&alg);
    if (!adv.armed()) {
      t.Row().Cell(uint64_t(rows)).Cell(alg.SpaceBits())
          .Cell(std::string("n/a")).Cell(std::string("overflow"))
          .Cell(std::string("-"));
      continue;
    }
    stream::FrequencyOracle truth(1 << 16);
    auto result = core::RunGame<stream::TurnstileUpdate, double>(
        &alg, &adv, 100000,
        [&](const stream::TurnstileUpdate& u) { truth.Add(u.item, u.delta); },
        [&](uint64_t, const double& answer) {
          double f2 = truth.Fp(2);
          if (f2 == 0) return true;
          return answer >= f2 / 3 && answer <= 3 * f2;
        },
        /*stop_at_first_failure=*/false);
    t.Row()
        .Cell(uint64_t(rows))
        .Cell(alg.SpaceBits())
        .Cell(result.algorithm_survived)
        .Cell(alg.Query(), 1)
        .Cell(truth.Fp(2), 1);
  }
  std::printf("expected: survived = no at every width; final_est = 0.\n");

  bench::Table t2({"algorithm", "space_bits", "survived"});
  {
    wbs::RandomTape tape(99);
    moments::AmsF2Sketch victim(1 << 16, 12, &tape);
    moments::AmsKernelAdversary adv(&victim);
    moments::ExactF2Stream exact(1 << 16);
    stream::FrequencyOracle truth(1 << 16);
    auto result = core::RunGame<stream::TurnstileUpdate, double>(
        &exact, &adv, 100000,
        [&](const stream::TurnstileUpdate& u) { truth.Add(u.item, u.delta); },
        [&](uint64_t, const double& answer) { return answer == truth.Fp(2); });
    t2.Row()
        .Cell(std::string("exact (Omega(n))"))
        .Cell(exact.SpaceBits())
        .Cell(result.algorithm_survived);
  }
}

void Derandomization() {
  bench::Banner(
      "E8b: the Theorem 1.8 reduction, executed exactly",
      "robust streaming alg with S bits => deterministic one-way GapEq "
      "protocol with S bits; det. GapEq needs Omega(n) [Thm 3.2]");
  bench::Table t({"n", "bob_inputs", "found_seed", "seeds_tried",
                  "comm_bits", "n_bits(LB)"});
  for (size_t n : {6u, 8u, 10u, 12u}) {
    wbs::RandomTape tape(n);
    commlb::BitString x = commlb::RandomBalanced(n, &tape);
    std::vector<commlb::BitString> ys = {x};
    for (const auto& y : commlb::AllBalancedStrings(n)) {
      if (commlb::Ham(x, y) * 2 >= n && !(y == x)) ys.push_back(y);
    }
    auto outcome = commlb::DerandomizeOneWay<commlb::GapEqF2Sketch, bool>(
        x, ys,
        [&](uint64_t seed) {
          return commlb::GapEqF2Sketch::Make(seed, 24, n);
        },
        [](commlb::GapEqF2Sketch* a, const commlb::BitString& ax) {
          a->Feed(ax);
        },
        [](commlb::GapEqF2Sketch* a, const commlb::BitString& by) {
          a->Feed(by);
        },
        [](const commlb::GapEqF2Sketch& a) { return a.DecidesEqual(); },
        [](const bool& says_equal, const commlb::BitString& ax,
           const commlb::BitString& by) { return says_equal == (ax == by); },
        [](const commlb::GapEqF2Sketch& a) { return a.StateBits(); },
        /*max_seeds=*/128);
    t.Row()
        .Cell(uint64_t(n))
        .Cell(uint64_t(ys.size()))
        .Cell(outcome.found)
        .Cell(outcome.seeds_tried)
        .Cell(outcome.communication_bits)
        .Cell(uint64_t(n));
  }
  std::printf(
      "reading: a correct-for-all-y robust algorithm exists only with "
      "comm_bits = Omega(n); the sketch's state indeed grows with n.\n");
}

void PigeonholeStates() {
  bench::Banner(
      "E8c: distinct Alice states vs number of inputs (pigeonhole)",
      "an o(n)-bit state cannot distinguish all C(n, n/2) inputs -> "
      "collisions -> some GapEq instance is answered wrongly");
  bench::Table t({"n", "inputs", "sketch_states", "exact_states"});
  for (size_t n : {8u, 10u, 12u}) {
    auto xs = commlb::AllBalancedStrings(n);
    uint64_t sketch_states =
        commlb::CountDistinctStates<commlb::GapEqF2Sketch>(
            xs, 7,
            [&](uint64_t seed) {
              return commlb::GapEqF2Sketch::Make(seed, 2, n);
            },
            [](commlb::GapEqF2Sketch* a, const commlb::BitString& ax) {
              a->Feed(ax);
            },
            [](const commlb::GapEqF2Sketch& a) {
              std::vector<uint64_t> w;
              for (int64_t c : a.counters) w.push_back(uint64_t(c));
              return w;
            });
    struct ExactAlg {
      commlb::BitString stored;
    };
    uint64_t exact_states = commlb::CountDistinctStates<ExactAlg>(
        xs, 0, [](uint64_t) { return ExactAlg{}; },
        [](ExactAlg* a, const commlb::BitString& ax) { a->stored = ax; },
        [](const ExactAlg& a) {
          std::vector<uint64_t> w;
          for (uint8_t b : a.stored) w.push_back(b);
          return w;
        });
    t.Row()
        .Cell(uint64_t(n))
        .Cell(uint64_t(xs.size()))
        .Cell(sketch_states)
        .Cell(exact_states);
  }
  std::printf(
      "expected: sketch_states < inputs (pigeonhole collisions), "
      "exact_states == inputs.\n");
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::KernelAttack();
  wbs::Derandomization();
  wbs::PigeonholeStates();
  return 0;
}
