// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E10 (Theorem 1.11 vs Lemma 2.1): deterministic approximate
// counting with a timer needs Omega(log n) bits, while Morris counters use
// O(log log m). We regenerate: (a) the interval-family state lower bound
// (simulated minimal program + the Lemma 3.9/3.10 closed form); (b) Morris
// accuracy/space at the same scales; (c) the concrete stall point of a
// b-bit deterministic counter.

#include <cmath>

#include "bench/bench_util.h"
#include "common/random.h"
#include "counter/branching.h"
#include "counter/morris.h"

namespace wbs {
namespace {

void StateLowerBound() {
  bench::Banner(
      "E10a: deterministic states lower bound vs n (2-approximation)",
      "Thm 1.11: poly(n) states => Omega(log n) bits; closed form h = "
      "Theta(n^{1/3}) [Lemma 3.9]");
  bench::Table t({"log2(n)", "sim_states", "sim_bits", "closed_h",
                  "closed_bits"});
  for (int logn = 8; logn <= 24; logn += 2) {
    const uint64_t n = uint64_t{1} << logn;
    auto closed = counter::TheoreticalStateLowerBound(
        n, counter::MultiplicativeError(1.0));
    // The explicit family simulation costs ~n^{3/2}; run it where feasible
    // and report the closed form beyond.
    if (logn <= 14) {
      auto sim = counter::SimulateMinimalIntervalFamily(
          n, counter::MultiplicativeError(1.0));
      t.Row()
          .Cell(logn)
          .Cell(uint64_t(sim.peak_states))
          .Cell(sim.bits_lower_bound)
          .Cell(closed.h)
          .Cell(closed.min_bits);
    } else {
      t.Row()
          .Cell(logn)
          .Cell(std::string("-"))
          .Cell(std::string("-"))
          .Cell(closed.h)
          .Cell(closed.min_bits);
    }
  }
  std::printf(
      "expected shape: sim_states ~ n/2 (max-width intervals provably "
      "persist, so the exact minimum is even Omega(n) states), always >= "
      "the closed-form h+1 = Theta(n^{1/3}); either way bits = Omega(log "
      "n).\n");
}

void MorrisSide() {
  bench::Banner(
      "E10b: Morris counters at the same scales",
      "Lemma 2.1: (1+eps)-approximation in O(log log m + log 1/eps) bits, "
      "white-box robust");
  bench::Table t({"log2(n)", "morris_bits", "det_LB_bits", "rel_err"});
  for (int logn = 10; logn <= 22; logn += 4) {
    const uint64_t n = uint64_t{1} << logn;
    wbs::RandomTape tape{uint64_t(logn)};
    tape.set_logging(false);
    counter::MorrisCounter morris(0.5, 0.25, &tape);
    for (uint64_t i = 0; i < n; ++i) (void)morris.Update({1});
    auto det = counter::TheoreticalStateLowerBound(
        n, counter::MultiplicativeError(0.5));
    t.Row()
        .Cell(logn)
        .Cell(morris.SpaceBits())
        .Cell(det.min_bits)
        .Cell(std::abs(morris.Query() - double(n)) / double(n), 3);
  }
  std::printf(
      "expected shape: morris_bits ~ log log n + const (flat-ish), "
      "det_LB_bits grows linearly in log n; rel_err <= 0.5.\n");
}

void TruncatedStall() {
  bench::Banner(
      "E10c: where a b-bit deterministic counter dies",
      "Thm 1.11 concretely: a counter with b mantissa bits stalls at ~2^b "
      "and violates any constant-factor guarantee soon after");
  bench::Table t({"mantissa_bits", "space_bits", "last_good_n",
                  "est_at_2^16"});
  for (int bits : {4, 6, 8, 10, 12}) {
    counter::TruncatedCounter c(bits);
    uint64_t last_good = 0;
    const uint64_t n = 1 << 16;
    for (uint64_t i = 1; i <= n; ++i) {
      (void)c.Update({1});
      if (std::abs(c.Query() - double(i)) <= 0.5 * double(i)) last_good = i;
    }
    t.Row()
        .Cell(bits)
        .Cell(c.SpaceBits())
        .Cell(last_good)
        .Cell(c.Query(), 0);
  }
  std::printf("expected shape: last_good_n ~ 2^mantissa_bits — surviving "
              "n demands b = Omega(log n) bits.\n");
}

void MorrisAdaptiveGame() {
  bench::Banner(
      "E10d: Morris under a white-box adaptive adversary",
      "Lemma 2.1 robustness: the adversary sees the register and still "
      "cannot force a wrong estimate");
  bench::Table t({"trials", "rounds", "survived", "survival_rate"});
  int survived = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    wbs::RandomTape tape(4200 + uint64_t(trial));
    counter::MorrisCounter alg(0.5, 0.2, &tape);
    // Adversary: keeps incrementing while watching the register (the
    // strongest bit-stream strategy — stopping early only helps the
    // algorithm).
    uint64_t truth = 0;
    bool alive = true;
    for (uint64_t round = 1; round <= 30000 && alive; ++round) {
      (void)alg.Update({1});
      ++truth;
      if (round >= 1000) {
        double est = alg.Query();
        if (std::abs(est - double(truth)) > 0.5 * double(truth)) {
          alive = false;
        }
      }
    }
    survived += alive ? 1 : 0;
  }
  t.Row().Cell(trials).Cell(30000).Cell(survived)
      .Cell(double(survived) / trials, 2);
  std::printf("expected: survival_rate >= 0.8 (delta = 0.2).\n");
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::StateLowerBound();
  wbs::MorrisSide();
  wbs::TruncatedStall();
  wbs::MorrisAdaptiveGame();
  return 0;
}
