// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Google-benchmark microbenchmarks: per-update cost of every streaming
// structure in the library. Not a paper experiment — an engineering
// companion that quantifies the price of white-box robustness in
// nanoseconds rather than bits.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "counter/morris.h"
#include "crypto/crhf.h"
#include "crypto/sha256.h"
#include "distinct/l0_estimator.h"
#include "engine/driver.h"
#include "heavyhitters/misra_gries.h"
#include "heavyhitters/robust_hh.h"
#include "hhh/hhh.h"
#include "linalg/rank_sketch.h"
#include "moments/ams.h"
#include "strings/fingerprint.h"
#include "stream/workload.h"

namespace {

void BM_Sha256_64B(benchmark::State& state) {
  uint8_t buf[64] = {0};
  uint64_t i = 0;
  for (auto _ : state) {
    buf[0] = uint8_t(i++);
    benchmark::DoNotOptimize(wbs::crypto::Sha256::Hash64(buf, sizeof(buf)));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_MorrisIncrement(benchmark::State& state) {
  wbs::RandomTape tape(1);
  tape.set_logging(false);
  wbs::counter::MorrisRegister reg(0.01, &tape);
  for (auto _ : state) {
    reg.Increment();
    benchmark::DoNotOptimize(reg.register_value());
  }
}
BENCHMARK(BM_MorrisIncrement);

void BM_MisraGriesAdd(benchmark::State& state) {
  wbs::hh::MisraGries mg(size_t(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    mg.Add((i++ * 0x9e3779b97f4a7c15ULL) >> 44);
  }
}
BENCHMARK(BM_MisraGriesAdd)->Arg(16)->Arg(128);

void BM_RobustHhUpdate(benchmark::State& state) {
  wbs::RandomTape tape(2);
  tape.set_logging(false);
  wbs::hh::RobustL1HeavyHitters alg(uint64_t{1} << 20, 0.1, 0.25, &tape);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 20)}));
  }
}
BENCHMARK(BM_RobustHhUpdate);

void BM_RobustHhhUpdate(benchmark::State& state) {
  wbs::RandomTape tape(3);
  tape.set_logging(false);
  wbs::hhh::Hierarchy h = wbs::hhh::Hierarchy::Bytes(16);
  wbs::hhh::RobustHhh alg(h, 1 << 16, 0.1, 0.25, 0.25, &tape);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 16)}));
  }
}
BENCHMARK(BM_RobustHhhUpdate);

void BM_AmsUpdate(benchmark::State& state) {
  wbs::RandomTape tape(4);
  tape.set_logging(false);
  wbs::moments::AmsF2Sketch alg(uint64_t{1} << 20,
                                size_t(state.range(0)), &tape);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 20), 1}));
  }
}
BENCHMARK(BM_AmsUpdate)->Arg(12)->Arg(48);

void BM_SisL0Update(benchmark::State& state) {
  wbs::crypto::RandomOracle oracle(5);
  auto params = wbs::distinct::SisL0Params::Derive(1 << 14, 0.5, 0.25, 100);
  wbs::distinct::SisL0Estimator alg(params, oracle, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 14), 1}));
  }
}
BENCHMARK(BM_SisL0Update);

void BM_RankSketchUpdate(benchmark::State& state) {
  wbs::crypto::RandomOracle oracle(6);
  wbs::linalg::RankDecisionSketch alg(64, size_t(state.range(0)), 1000003,
                                      oracle, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alg.Update({size_t(i % 64), size_t((i / 64) % 64), 1}));
    ++i;
  }
}
BENCHMARK(BM_RankSketchUpdate)->Arg(4)->Arg(16);

void BM_DlogFingerprintAppendChar(benchmark::State& state) {
  wbs::RandomTape tape(7);
  wbs::crypto::DlogParams g = wbs::crypto::DlogParams::Generate(40, &tape);
  wbs::crypto::DlogFingerprint f(g);
  uint64_t i = 0;
  for (auto _ : state) {
    f.AppendChar(i++ & 0xff, 8);
    benchmark::DoNotOptimize(f.value());
  }
}
BENCHMARK(BM_DlogFingerprintAppendChar);

void BM_KarpRabinAppend(benchmark::State& state) {
  wbs::RandomTape tape(8);
  wbs::strings::KarpRabinParams p =
      wbs::strings::KarpRabinParams::Generate(40, &tape);
  wbs::strings::KarpRabin kr(p);
  uint64_t i = 0;
  for (auto _ : state) {
    kr.Append(i++ & 0xff);
    benchmark::DoNotOptimize(kr.value());
  }
}
BENCHMARK(BM_KarpRabinAppend);

// ------------------------------------------------------- engine throughput --
//
// The perf-trajectory baseline for the sharded ingestion engine: updates/sec
// of the full sketch group {misra_gries, ams_f2, sis_l0} on a Zipf workload,
// across the unbatched single-threaded path (the seed's behaviour, routed
// through the engine), the batched single-shard path, and the sharded
// batched path at 1/2/4/8 worker threads. Each mode emits one JSONL row
// (bench_util.h JsonRow) so CI logs can be scraped for regressions.
//
// The batched speedup comes from (a) amortizing per-update queue/dispatch
// costs over the batch and (b) pre-aggregating duplicate items before the
// linear/weighted sketches see them — on Zipfian traffic most of a batch is
// duplicates, so the expensive AMS row-loop and SIS column-add run once per
// distinct item instead of once per update. Sharding adds parallelism on
// multi-core hosts on top.

double RunEngineMode(const char* mode, const wbs::stream::ItemStream& zipf,
                     uint64_t universe, size_t shards, size_t threads,
                     size_t batch, double baseline_ups) {
  wbs::engine::DriverOptions opts;
  opts.ingest.num_shards = shards;
  opts.ingest.num_threads = threads;
  opts.ingest.sketches = {"misra_gries", "ams_f2", "sis_l0"};
  opts.ingest.config.universe = universe;
  opts.ingest.config.seed = 2025;
  opts.batch_size = batch;
  auto driver = wbs::engine::Driver::Create(opts);
  if (!driver.ok()) {
    std::fprintf(stderr, "engine driver: %s\n",
                 driver.status().ToString().c_str());
    return 0;
  }
  const auto t0 = std::chrono::steady_clock::now();
  wbs::Status s = driver.value()->Replay(zipf);
  if (s.ok()) s = driver.value()->Finish();
  const auto t1 = std::chrono::steady_clock::now();
  if (!s.ok()) {
    std::fprintf(stderr, "engine replay: %s\n", s.ToString().c_str());
    return 0;
  }
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double ups = double(zipf.size()) / seconds;
  wbs::bench::JsonRow row;
  row.Field("bench", "engine_throughput")
      .Field("mode", mode)
      .Field("shards", uint64_t(shards))
      .Field("threads", uint64_t(threads))
      .Field("batch", uint64_t(batch))
      .Field("updates", uint64_t(zipf.size()))
      .Field("seconds", seconds)
      .Field("updates_per_sec", ups);
  if (baseline_ups > 0) {
    row.Field("speedup_vs_unbatched", ups / baseline_ups);
  }
  row.Emit();
  return ups;
}

void RunEngineThroughput(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_throughput",
      "sharded ingestion engine: batched + sharded updates/sec on Zipf "
      "traffic through {misra_gries, ams_f2, sis_l0}");
  const uint64_t universe = 4096;
  wbs::RandomTape tape(101);
  tape.set_logging(false);
  auto zipf = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);
  const double base =
      RunEngineMode("single_unbatched", zipf, universe, 1, 0, 1, 0);
  RunEngineMode("engine_batched", zipf, universe, 1, 0, 32768, base);
  for (size_t threads : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    RunEngineMode("sharded_batched", zipf, universe, 8, threads, 32768, base);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool engine_only = false;
  bool benchmark_flags_present = false;
  uint64_t engine_updates = uint64_t{1} << 20;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine_only") == 0) {
      engine_only = true;
    } else if (std::strncmp(argv[i], "--engine_updates=", 17) == 0) {
      engine_updates = std::strtoull(argv[i] + 17, nullptr, 10);
    } else {
      benchmark_flags_present |=
          std::strncmp(argv[i], "--benchmark", 11) == 0;
      passthrough.push_back(argv[i]);
    }
  }
  // The multi-second engine sweep runs by default and with --engine_only,
  // but stays out of the way when the caller is targeting specific
  // microbenchmarks (--benchmark_filter, --benchmark_list_tests, ...).
  if (engine_only || !benchmark_flags_present) {
    RunEngineThroughput(engine_updates);
  }
  if (engine_only) return 0;
  int pargc = int(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
