// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Google-benchmark microbenchmarks: per-update cost of every streaming
// structure in the library. Not a paper experiment — an engineering
// companion that quantifies the price of white-box robustness in
// nanoseconds rather than bits.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/modmath.h"
#include "common/numa.h"
#include "common/random.h"
#include "common/simd.h"
#include "counter/morris.h"
#include "crypto/crhf.h"
#include "crypto/sha256.h"
#include "distinct/l0_estimator.h"
#include "engine/backend.h"
#include "engine/client.h"
#include "engine/registry.h"
#include "engine/remote_backend.h"
#include "engine/wire.h"
#include "heavyhitters/misra_gries.h"
#include "heavyhitters/robust_hh.h"
#include "hhh/hhh.h"
#include "linalg/rank_sketch.h"
#include "moments/ams.h"
#include "strings/fingerprint.h"
#include "stream/workload.h"

namespace {

void BM_Sha256_64B(benchmark::State& state) {
  uint8_t buf[64] = {0};
  uint64_t i = 0;
  for (auto _ : state) {
    buf[0] = uint8_t(i++);
    benchmark::DoNotOptimize(wbs::crypto::Sha256::Hash64(buf, sizeof(buf)));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_MorrisIncrement(benchmark::State& state) {
  wbs::RandomTape tape(1);
  tape.set_logging(false);
  wbs::counter::MorrisRegister reg(0.01, &tape);
  for (auto _ : state) {
    reg.Increment();
    benchmark::DoNotOptimize(reg.register_value());
  }
}
BENCHMARK(BM_MorrisIncrement);

void BM_MisraGriesAdd(benchmark::State& state) {
  wbs::hh::MisraGries mg(size_t(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    mg.Add((i++ * 0x9e3779b97f4a7c15ULL) >> 44);
  }
}
BENCHMARK(BM_MisraGriesAdd)->Arg(16)->Arg(128);

void BM_RobustHhUpdate(benchmark::State& state) {
  wbs::RandomTape tape(2);
  tape.set_logging(false);
  wbs::hh::RobustL1HeavyHitters alg(uint64_t{1} << 20, 0.1, 0.25, &tape);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 20)}));
  }
}
BENCHMARK(BM_RobustHhUpdate);

void BM_RobustHhhUpdate(benchmark::State& state) {
  wbs::RandomTape tape(3);
  tape.set_logging(false);
  wbs::hhh::Hierarchy h = wbs::hhh::Hierarchy::Bytes(16);
  wbs::hhh::RobustHhh alg(h, 1 << 16, 0.1, 0.25, 0.25, &tape);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 16)}));
  }
}
BENCHMARK(BM_RobustHhhUpdate);

void BM_AmsUpdate(benchmark::State& state) {
  wbs::RandomTape tape(4);
  tape.set_logging(false);
  wbs::moments::AmsF2Sketch alg(uint64_t{1} << 20,
                                size_t(state.range(0)), &tape);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 20), 1}));
  }
}
BENCHMARK(BM_AmsUpdate)->Arg(12)->Arg(48);

void BM_SisL0Update(benchmark::State& state) {
  wbs::crypto::RandomOracle oracle(5);
  auto params = wbs::distinct::SisL0Params::Derive(1 << 14, 0.5, 0.25, 100);
  wbs::distinct::SisL0Estimator alg(params, oracle, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 14), 1}));
  }
}
BENCHMARK(BM_SisL0Update);

void BM_RankSketchUpdate(benchmark::State& state) {
  wbs::crypto::RandomOracle oracle(6);
  wbs::linalg::RankDecisionSketch alg(64, size_t(state.range(0)), 1000003,
                                      oracle, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alg.Update({size_t(i % 64), size_t((i / 64) % 64), 1}));
    ++i;
  }
}
BENCHMARK(BM_RankSketchUpdate)->Arg(4)->Arg(16);

void BM_DlogFingerprintAppendChar(benchmark::State& state) {
  wbs::RandomTape tape(7);
  wbs::crypto::DlogParams g = wbs::crypto::DlogParams::Generate(40, &tape);
  wbs::crypto::DlogFingerprint f(g);
  uint64_t i = 0;
  for (auto _ : state) {
    f.AppendChar(i++ & 0xff, 8);
    benchmark::DoNotOptimize(f.value());
  }
}
BENCHMARK(BM_DlogFingerprintAppendChar);

void BM_KarpRabinAppend(benchmark::State& state) {
  wbs::RandomTape tape(8);
  wbs::strings::KarpRabinParams p =
      wbs::strings::KarpRabinParams::Generate(40, &tape);
  wbs::strings::KarpRabin kr(p);
  uint64_t i = 0;
  for (auto _ : state) {
    kr.Append(i++ & 0xff);
    benchmark::DoNotOptimize(kr.value());
  }
}
BENCHMARK(BM_KarpRabinAppend);

// ------------------------------------------------------- engine throughput --
//
// The perf-trajectory baseline for the sharded ingestion engine: updates/sec
// of the full sketch group {misra_gries, ams_f2, sis_l0} on a Zipf workload,
// across the unbatched single-threaded path (the seed's behaviour, routed
// through the engine), the batched single-shard path, and the sharded
// batched path at 1/2/4/8 worker threads. Each mode emits one JSONL row
// (bench_util.h JsonRow) so CI logs can be scraped for regressions.
//
// The batched speedup comes from (a) amortizing per-update queue/dispatch
// costs over the batch and (b) pre-aggregating duplicate items before the
// linear/weighted sketches see them — on Zipfian traffic most of a batch is
// duplicates, so the expensive AMS row-loop and SIS column-add run once per
// distinct item instead of once per update. Sharding adds parallelism on
// multi-core hosts on top.

wbs::engine::ClientOptions EngineClientOptions(uint64_t universe,
                                               size_t shards,
                                               size_t threads) {
  wbs::engine::ClientOptions opts;
  opts.ingest.num_shards = shards;
  opts.ingest.num_threads = threads;
  opts.ingest.sketches = {"misra_gries", "ams_f2", "sis_l0"};
  opts.ingest.config.universe = universe;
  opts.ingest.config.seed = 2025;
  return opts;
}

wbs::Status ReplayItems(wbs::engine::Client* client,
                        const wbs::stream::ItemStream& s, size_t batch) {
  for (size_t off = 0; off < s.size(); off += batch) {
    auto t = client->SubmitItems(s.data() + off,
                                 std::min(batch, s.size() - off));
    if (!t.ok()) return t.status();
  }
  return wbs::Status::OK();
}

double RunEngineMode(const char* mode, const wbs::stream::ItemStream& zipf,
                     uint64_t universe, size_t shards, size_t threads,
                     size_t batch, double baseline_ups) {
  auto client = wbs::engine::Client::Create(
      EngineClientOptions(universe, shards, threads));
  if (!client.ok()) {
    std::fprintf(stderr, "engine client: %s\n",
                 client.status().ToString().c_str());
    return 0;
  }
  const auto t0 = std::chrono::steady_clock::now();
  wbs::Status s = ReplayItems(client.value().get(), zipf, batch);
  if (s.ok()) s = client.value()->Finish();
  const auto t1 = std::chrono::steady_clock::now();
  if (!s.ok()) {
    std::fprintf(stderr, "engine replay: %s\n", s.ToString().c_str());
    return 0;
  }
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double ups = double(zipf.size()) / seconds;
  wbs::bench::JsonRow row;
  row.Field("bench", "engine_throughput")
      .Field("mode", mode)
      .Field("cpu_features", wbs::simd::DetectedCpuFeatures())
      .Field("kernel", wbs::simd::Kernels().name)
      .Field("shards", uint64_t(shards))
      .Field("threads", uint64_t(threads))
      .Field("batch", uint64_t(batch))
      .Field("updates", uint64_t(zipf.size()))
      .Field("seconds", seconds)
      .Field("updates_per_sec", ups);
  if (baseline_ups > 0) {
    row.Field("speedup_vs_unbatched", ups / baseline_ups);
  }
  row.Emit();
  return ups;
}

void RunEngineThroughput(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_throughput",
      "sharded ingestion engine: batched + sharded updates/sec on Zipf "
      "traffic through {misra_gries, ams_f2, sis_l0}");
  const uint64_t universe = 4096;
  wbs::RandomTape tape(101);
  tape.set_logging(false);
  auto zipf = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);
  const double base =
      RunEngineMode("single_unbatched", zipf, universe, 1, 0, 1, 0);
  RunEngineMode("engine_batched", zipf, universe, 1, 0, 32768, base);
  for (size_t threads : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    RunEngineMode("sharded_batched", zipf, universe, 8, threads, 32768, base);
  }
}

// --------------------------------------------------- mixed read/write mode --
//
// One producer replays Zipf traffic through worker threads while a second
// thread hammers the typed queries — no Flush() anywhere. This exercises the
// epoch-snapshot path end to end and reports query latency percentiles
// taken *during* ingestion, the number the quiescence-free redesign exists
// for.

void RunEngineMixed(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_mixed",
      "typed snapshot queries served mid-ingest (no Flush): updates/sec "
      "with a concurrent query thread, query latency p50/p99");
  const uint64_t universe = 4096;
  const size_t shards = 8, threads = 4, batch = 32768;
  wbs::RandomTape tape(102);
  tape.set_logging(false);
  auto zipf = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);

  auto client = wbs::engine::Client::Create(
      EngineClientOptions(universe, shards, threads));
  if (!client.ok()) {
    std::fprintf(stderr, "engine client: %s\n",
                 client.status().ToString().c_str());
    return;
  }
  // Handles resolved once — the query loop below never hashes a name.
  auto f2 = client.value()->Handle("ams_f2").value();
  auto l0 = client.value()->Handle("sis_l0").value();
  auto mg = client.value()->Handle("misra_gries").value();

  std::atomic<bool> stop{false};
  std::vector<double> latencies_us;
  uint64_t query_errors = 0;
  std::thread querier([&] {
    size_t qi = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto q0 = std::chrono::steady_clock::now();
      bool ok = false;
      switch (qi++ % 3) {
        case 0:
          ok = client.value()->QueryScalar(f2).ok();
          break;
        case 1:
          ok = client.value()->QueryScalar(l0).ok();
          break;
        default:
          ok = client.value()->QueryTopK(mg, 16).ok();
          break;
      }
      const auto q1 = std::chrono::steady_clock::now();
      if (ok) {
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(q1 - q0).count());
      } else {
        ++query_errors;
      }
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  wbs::Status s = ReplayItems(client.value().get(), zipf, batch);
  if (s.ok()) s = client.value()->Flush();
  const auto t1 = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  if (s.ok()) s = client.value()->Finish();
  if (!s.ok()) {
    std::fprintf(stderr, "engine mixed replay: %s\n", s.ToString().c_str());
    return;
  }
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  std::sort(latencies_us.begin(), latencies_us.end());
  const size_t n = latencies_us.size();
  const double p50 = n ? latencies_us[n / 2] : 0;
  const double p99 = n ? latencies_us[std::min(n - 1, n * 99 / 100)] : 0;
  wbs::bench::JsonRow()
      .Field("bench", "engine_mixed")
      .Field("shards", uint64_t(shards))
      .Field("threads", uint64_t(threads))
      .Field("batch", uint64_t(batch))
      .Field("updates", uint64_t(zipf.size()))
      .Field("updates_per_sec", double(zipf.size()) / seconds)
      .Field("mid_ingest_queries", uint64_t(n))
      .Field("queries_per_sec", seconds > 0 ? double(n) / seconds : 0)
      .Field("query_p50_us", p50)
      .Field("query_p99_us", p99)
      .Field("query_errors", query_errors)
      .Field("flush_free", true)
      .Emit();
}

// ------------------------------------------------------- multi-producer --
//
// P producer threads split the Zipf stream into interleaved batches and
// push them through Client::Submit concurrently (the MPSC submission path:
// scatter on the producer threads, sequence assignment under a short
// mutex, worker backpressure absorbed by the router) while one thread
// issues typed queries through pre-resolved handles. P = 1 is the
// single-producer regression guard for the async path; P > 1 shows submit
// scaling (bounded by free cores once the workers saturate).

double RunEngineMultiProducer(size_t producers,
                              const wbs::stream::TurnstileStream& s,
                              uint64_t universe, double one_producer_ups) {
  const size_t shards = 8, threads = 4, batch = 32768;
  auto client = wbs::engine::Client::Create(
      EngineClientOptions(universe, shards, threads));
  if (!client.ok()) {
    std::fprintf(stderr, "engine client: %s\n",
                 client.status().ToString().c_str());
    return 0;
  }
  auto f2 = client.value()->Handle("ams_f2").value();
  auto mg = client.value()->Handle("misra_gries").value();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0}, query_errors{0};
  std::thread querier([&] {
    size_t qi = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const bool ok = (qi++ % 2 == 0)
                          ? client.value()->QueryScalar(f2).ok()
                          : client.value()->QueryTopK(mg, 16).ok();
      ok ? ++queries : ++query_errors;
    }
  });

  std::atomic<uint64_t> submit_errors{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pthreads;
  pthreads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    pthreads.emplace_back([&, p] {
      // Producer p owns every producers-th batch; tickets are fire-and-
      // forget here (Flush below waits for everything at once).
      for (size_t off = p * batch; off < s.size();
           off += producers * batch) {
        const size_t n = std::min(batch, s.size() - off);
        auto t = client.value()->Submit(s.data() + off, n);
        if (!t.ok()) {
          ++submit_errors;
          return;
        }
      }
    });
  }
  for (auto& t : pthreads) t.join();
  wbs::Status st = client.value()->Flush();
  const auto t1 = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  if (st.ok()) st = client.value()->Finish();
  if (!st.ok() || submit_errors.load() > 0) {
    std::fprintf(stderr, "engine multi-producer: %s\n",
                 st.ToString().c_str());
    return 0;
  }
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double ups = double(s.size()) / seconds;
  wbs::bench::JsonRow row;
  row.Field("bench", "engine_multi_producer")
      .Field("producers", uint64_t(producers))
      .Field("shards", uint64_t(shards))
      .Field("threads", uint64_t(threads))
      .Field("batch", uint64_t(batch))
      .Field("updates", uint64_t(s.size()))
      .Field("seconds", seconds)
      .Field("updates_per_sec", ups)
      .Field("mid_ingest_queries", queries.load())
      .Field("query_errors", query_errors.load());
  if (one_producer_ups > 0) {
    row.Field("speedup_vs_one_producer", ups / one_producer_ups);
  }
  row.Emit();
  return ups;
}

void RunEngineMultiProducerSweep(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_multi_producer",
      "MPSC async submit (IngestTicket path): updates/sec with 1/2/4 "
      "producer threads submitting concurrently, typed queries mid-ingest");
  const uint64_t universe = 4096;
  wbs::RandomTape tape(104);
  tape.set_logging(false);
  auto items = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);
  wbs::stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  const double base = RunEngineMultiProducer(1, s, universe, 0);
  for (size_t producers : {size_t(2), size_t(4)}) {
    RunEngineMultiProducer(producers, s, universe, base);
  }
}

// -------------------------------------------------------- shard backends --
//
// The pluggable ShardBackend boundary priced end to end: the same
// multi-producer workload through the in-process backend (zero-copy apply,
// the engine's original path) and the loopback-remote backend (every shard
// behind a socketpair speaking the wire format — per-batch encode, two
// socket hops, server-side apply, serialized snapshots on the query path).
// The gap between the two rows is the cost of a process boundary per se;
// a real network would add latency on top of exactly the same protocol.

double RunEngineBackendMode(const char* backend_name,
                            const wbs::engine::BackendFactory& factory,
                            size_t producers,
                            const wbs::stream::TurnstileStream& s,
                            uint64_t universe) {
  const size_t shards = 8, threads = 4, batch = 32768;
  wbs::engine::ClientOptions opts =
      EngineClientOptions(universe, shards, threads);
  opts.ingest.backend = factory;
  auto client = wbs::engine::Client::Create(opts);
  if (!client.ok()) {
    std::fprintf(stderr, "engine backend client: %s\n",
                 client.status().ToString().c_str());
    return 0;
  }
  auto f2 = client.value()->Handle("ams_f2").value();
  auto mg = client.value()->Handle("misra_gries").value();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0}, query_errors{0};
  std::thread querier([&] {
    size_t qi = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const bool ok = (qi++ % 2 == 0)
                          ? client.value()->QueryScalar(f2).ok()
                          : client.value()->QueryTopK(mg, 16).ok();
      ok ? ++queries : ++query_errors;
    }
  });

  std::atomic<uint64_t> submit_errors{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pthreads;
  pthreads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    pthreads.emplace_back([&, p] {
      for (size_t off = p * batch; off < s.size();
           off += producers * batch) {
        const size_t n = std::min(batch, s.size() - off);
        if (!client.value()->Submit(s.data() + off, n).ok()) {
          ++submit_errors;
          return;
        }
      }
    });
  }
  for (auto& t : pthreads) t.join();
  wbs::Status st = client.value()->Flush();
  const auto t1 = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  if (st.ok()) st = client.value()->Finish();
  if (!st.ok() || submit_errors.load() > 0) {
    std::fprintf(stderr, "engine backend bench (%s): %s\n", backend_name,
                 st.ToString().c_str());
    return 0;
  }
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double ups = double(s.size()) / seconds;
  wbs::bench::JsonRow()
      .Field("bench", "engine_backend")
      .Field("backend", backend_name)
      .Field("producers", uint64_t(producers))
      .Field("shards", uint64_t(shards))
      .Field("threads", uint64_t(threads))
      .Field("batch", uint64_t(batch))
      .Field("updates", uint64_t(s.size()))
      .Field("seconds", seconds)
      .Field("updates_per_sec", ups)
      .Field("mid_ingest_queries", queries.load())
      .Field("queries_per_sec", seconds > 0 ? double(queries.load()) / seconds
                                            : 0)
      .Field("query_errors", query_errors.load())
      .Emit();
  return ups;
}

void RunEngineBackendSweep(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_backend",
      "pluggable ShardBackend boundary: inprocess (zero-copy) vs loopback "
      "(socketpair + wire format) vs tcp (localhost sockets + handshake) at "
      "1/2/4 producers, typed queries mid-ingest");
  const uint64_t universe = 4096;
  wbs::RandomTape tape(105);
  tape.set_logging(false);
  auto items = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);
  wbs::stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  for (size_t producers : {size_t(1), size_t(2), size_t(4)}) {
    RunEngineBackendMode("inprocess", wbs::engine::InProcessBackendFactory(),
                         producers, s, universe);
    RunEngineBackendMode("loopback", wbs::engine::LoopbackBackendFactory(),
                         producers, s, universe);
    RunEngineBackendMode("tcp", wbs::engine::TcpBackendFactory(),
                         producers, s, universe);
  }
}

// ------------------------------------------------------------ tcp transport --
//
// The TCP transport's own price sheet (tcp_transport.h): query and control
// round-trip latency over real localhost sockets vs the loopback
// socketpair, and the cost of the reconnect-resync path (a severed
// connection redialed + handshaken, state intact) vs a full MoveShard
// re-home (state serialized and transferred) — the number that justifies
// distinguishing transient partitions from dead peers.

void RunEngineTcpBench(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_tcp",
      "TCP transport: query p50/p99 and heartbeat RTT vs loopback; "
      "reconnect-resync cost vs full MoveShard re-home");
  using clock = std::chrono::steady_clock;
  const uint64_t universe = 4096;
  const size_t ingest = size_t(std::min<uint64_t>(num_updates, 100000));
  wbs::RandomTape tape(113);
  tape.set_logging(false);
  auto items = wbs::stream::ZipfStream(universe, ingest, 1.2, &tape);
  wbs::stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});

  // Query + heartbeat latency, one client per transport over an identical
  // ingested state. Queries are served from merged snapshots, so each
  // sample pays the transport only when a shard's epoch moved — Flush()
  // first, then the steady-state samples measure the wire floor.
  for (const char* transport : {"loopback", "tcp"}) {
    wbs::engine::ClientOptions opts =
        EngineClientOptions(universe, /*shards=*/4, /*threads=*/2);
    opts.ingest.backend = std::strcmp(transport, "tcp") == 0
                              ? wbs::engine::TcpBackendFactory()
                              : wbs::engine::LoopbackBackendFactory();
    auto client = wbs::engine::Client::Create(opts);
    if (!client.ok()) return;
    if (!client.value()->Submit(s).ok() || !client.value()->Flush().ok()) {
      return;
    }

    const size_t kQueries = 2000;
    std::vector<double> query_us;
    query_us.reserve(kQueries);
    for (size_t i = 0; i < kQueries; ++i) {
      // Touch one shard's live summary per sample so the transport is on
      // the measured path (merged-snapshot queries would be memory reads).
      const auto t0 = clock::now();
      auto est = client.value()->ingestor().ShardSummary(i % 4, "ams_f2");
      const auto t1 = clock::now();
      if (!est.ok()) return;
      query_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    std::sort(query_us.begin(), query_us.end());
    auto pct = [&](double q) {
      return query_us[std::min(query_us.size() - 1,
                               size_t(q * double(query_us.size())))];
    };
    // Control-plane RTT: a bare heartbeat probe against shard 0.
    auto probe = opts.ingest.backend(wbs::engine::BackendOptions{
        1, opts.ingest.sketches, opts.ingest.config, 1024, false});
    if (!probe.ok()) return;
    const size_t kProbes = 2000;
    const auto h0 = clock::now();
    for (size_t i = 0; i < kProbes; ++i) {
      if (!probe.value()->Heartbeat(0, 1000).ok()) return;
    }
    const auto h1 = clock::now();
    const double heartbeat_us =
        std::chrono::duration<double, std::micro>(h1 - h0).count() /
        double(kProbes);
    wbs::bench::JsonRow()
        .Field("bench", "engine_tcp")
        .Field("mode", "latency")
        .Field("transport", transport)
        .Field("queries", uint64_t(kQueries))
        .Field("query_p50_us", pct(0.50))
        .Field("query_p99_us", pct(0.99))
        .Field("heartbeat_rtt_us", heartbeat_us)
        .Emit();
    (void)client.value()->Finish();
  }

  // Reconnect-resync vs full re-home, on one tcp engine with real state.
  {
    wbs::engine::ClientOptions opts =
        EngineClientOptions(universe, /*shards=*/4, /*threads=*/2);
    opts.ingest.backend = wbs::engine::TcpBackendFactory();
    auto client = wbs::engine::Client::Create(opts);
    if (!client.ok()) return;
    if (!client.value()->Submit(s).ok() || !client.value()->Flush().ok()) {
      return;
    }
    // Transient partition: sever shard 0's connections, then the next
    // operation pays dial + handshake + resync. Session state never moves.
    const auto r0 = clock::now();
    if (!client.value()->InjectShardPartition(0).ok()) return;
    if (!client.value()->ingestor().ShardSummary(0, "ams_f2").ok()) return;
    const auto r1 = clock::now();
    const double resync_us =
        std::chrono::duration<double, std::micro>(r1 - r0).count();
    // Full re-home: serialize every sketch of shard 0, ship it into a
    // fresh tcp placement, flip the routing table at a barrier.
    const auto m0 = clock::now();
    if (!client.value()->MoveShard(0, wbs::engine::TcpBackendFactory()).ok()) {
      return;
    }
    const auto m1 = clock::now();
    const double rehome_us =
        std::chrono::duration<double, std::micro>(m1 - m0).count();
    wbs::bench::JsonRow()
        .Field("bench", "engine_tcp")
        .Field("mode", "partition_recovery")
        .Field("ingested_updates", uint64_t(s.size()))
        .Field("resync_us", resync_us)
        .Field("rehome_us", rehome_us)
        .Field("rehome_over_resync", resync_us > 0 ? rehome_us / resync_us
                                                   : 0)
        .Emit();
    (void)client.value()->Finish();
  }
}

// -------------------------------------------------------- wire serialize --
//
// The serialization wire format itself: bytes and microseconds to
// serialize / deserialize one snapshot per sketch family, on state built
// from a Zipf ingest. This is the per-snapshot price a remote backend pays
// on the query path (amortized by the merge cache's epoch dirty-checks).

void RunWireSerializeBench(uint64_t num_updates) {
  wbs::bench::Banner(
      "wire_serialize",
      "sketch-state wire format: serialize/deserialize cost and snapshot "
      "bytes per family (checksummed kSketchState frames)");
  const uint64_t universe = 4096;
  wbs::engine::SketchConfig cfg;
  cfg.universe = universe;
  cfg.seed = 2025;
  cfg.shard_seed = 77;
  cfg.rank.n = 64;
  cfg.rank.k = 8;

  wbs::RandomTape tape(106);
  tape.set_logging(false);
  const size_t ingest = size_t(std::min<uint64_t>(num_updates, 200000));
  auto items = wbs::stream::ZipfStream(universe, ingest, 1.2, &tape);
  wbs::stream::TurnstileStream zipf;
  zipf.reserve(items.size());
  for (const auto& u : items) zipf.push_back({u.item, 1});
  // rank_decision streams matrix entries, not universe items.
  wbs::stream::TurnstileStream rank_stream;
  for (size_t i = 0; i < cfg.rank.k; ++i) {
    rank_stream.push_back({uint64_t(i) * cfg.rank.n + i, 1});
  }

  for (const char* name : {"misra_gries", "ams_f2", "sis_l0",
                           "rank_decision", "robust_hh", "crhf_hh"}) {
    auto sketch = wbs::engine::SketchRegistry::Global().Create(name, cfg);
    if (!sketch.ok()) continue;
    const auto& stream_for =
        std::strcmp(name, "rank_decision") == 0 ? rank_stream : zipf;
    for (size_t off = 0; off < stream_for.size(); off += 4096) {
      wbs::engine::UpdateBatch b;
      b.data = stream_for.data() + off;
      b.size = std::min<size_t>(4096, stream_for.size() - off);
      if (!sketch.value()->ApplyBatch(b).ok()) break;
    }

    const int kReps = 50;
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    std::string frame;
    for (int i = 0; i < kReps; ++i) {
      auto f = wbs::engine::SerializeSketch(*sketch.value());
      if (!f.ok()) {
        frame.clear();
        break;
      }
      frame = std::move(f).value();
    }
    auto t1 = clock::now();
    if (frame.empty()) continue;
    bool restored_ok = true;
    for (int i = 0; i < kReps; ++i) {
      auto restored = wbs::engine::DeserializeSketch(name, cfg, frame);
      restored_ok &= restored.ok();
    }
    auto t2 = clock::now();
    const double ser_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;
    const double deser_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() / kReps;
    wbs::bench::JsonRow()
        .Field("bench", "wire_serialize")
        .Field("sketch", name)
        .Field("ingested_updates", uint64_t(stream_for.size()))
        .Field("state_bytes", uint64_t(frame.size()))
        .Field("serialize_us", ser_us)
        .Field("deserialize_us", deser_us)
        .Field("round_trip_ok", restored_ok)
        .Emit();
  }
}

// ------------------------------------------------------------ resharding --
//
// The dynamic topology priced end to end: (a) MoveShard handoff latency
// per sketch family — drain, source publish, state serialization, and
// destination import (in-process and loopback targets; the serialized
// snapshot states are the transfer format), and (b) ingest throughput
// around a live AddShards step: updates/sec before the step, the barrier
// latency of the step itself (the only window ingest pauses), and
// updates/sec after, on the grown topology.

void RunEngineReshardBench(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_reshard",
      "live topology ops: MoveShard handoff latency per family "
      "(drain/flush/serialize/import + state bytes) and updates/sec "
      "before/during/after a mid-ingest AddShards step");
  using clock = std::chrono::steady_clock;
  const uint64_t universe = 4096;

  // ---- (a) handoff latency per family -----------------------------------
  const size_t ingest = size_t(std::min<uint64_t>(num_updates, 200000));
  for (const char* name : {"misra_gries", "ams_f2", "sis_l0",
                           "rank_decision", "robust_hh", "crhf_hh"}) {
    for (const char* target : {"inprocess", "loopback"}) {
      wbs::engine::ClientOptions opts;
      opts.ingest.num_shards = 2;
      opts.ingest.num_threads = 2;
      opts.ingest.sketches = {name};
      opts.ingest.config.universe = universe;
      opts.ingest.config.seed = 2025;
      if (std::strcmp(name, "rank_decision") == 0) {
        opts.ingest.config.rank.n = 64;
        opts.ingest.config.rank.k = 8;
      }
      auto client = wbs::engine::Client::Create(opts);
      if (!client.ok()) continue;

      wbs::stream::TurnstileStream s;
      if (std::strcmp(name, "rank_decision") == 0) {
        for (size_t i = 0; i < opts.ingest.config.rank.k; ++i) {
          s.push_back({uint64_t(i) * opts.ingest.config.rank.n + i, 1});
        }
      } else {
        wbs::RandomTape tape(107);
        tape.set_logging(false);
        auto items = wbs::stream::ZipfStream(universe, ingest, 1.2, &tape);
        s.reserve(items.size());
        for (const auto& u : items) s.push_back({u.item, 1});
      }
      for (size_t off = 0; off < s.size(); off += 32768) {
        if (!client.value()
                 ->Submit(s.data() + off, std::min<size_t>(32768,
                                                           s.size() - off))
                 .ok()) {
          break;
        }
      }
      if (!client.value()->Flush().ok()) continue;

      auto factory = std::strcmp(target, "loopback") == 0
                         ? wbs::engine::LoopbackBackendFactory()
                         : wbs::engine::InProcessBackendFactory();
      const auto t0 = clock::now();
      wbs::Status moved = client.value()->MoveShard(0, factory);
      const auto t1 = clock::now();
      // Phase timings come from the engine's recorded trace spans — the
      // single source of truth, no external re-measurement that could
      // disagree with what the tracer reports. The externally-timed total
      // stays, because it additionally covers the router barrier drain.
      uint64_t flush_us = 0, serialize_us = 0, import_us = 0, state_bytes = 0;
      {
        const auto spans = client.value()->TraceSpans();
        uint64_t move_id = 0;
        for (const auto& span : spans) {
          if (span.name == "move_shard") {
            move_id = span.id;
            state_bytes = span.Attr("state_bytes");
          }
        }
        for (const auto& span : spans) {
          if (span.parent != move_id) continue;
          if (span.name == "move_shard.flush") flush_us = span.duration_us;
          if (span.name == "move_shard.serialize") {
            serialize_us = span.duration_us;
          }
          if (span.name == "move_shard.import") import_us = span.duration_us;
        }
      }
      (void)client.value()->Finish();
      if (!moved.ok()) continue;
      const double total_us =
          std::chrono::duration<double, std::micro>(t1 - t0).count();
      const double phases_us =
          double(flush_us) + double(serialize_us) + double(import_us);
      wbs::bench::JsonRow()
          .Field("bench", "engine_reshard")
          .Field("op", "move_shard")
          .Field("sketch", name)
          .Field("target", target)
          .Field("ingested_updates", uint64_t(s.size()))
          .Field("state_bytes", state_bytes)
          .Field("flush_us", flush_us)
          .Field("serialize_us", serialize_us)
          .Field("import_us", import_us)
          .Field("drain_us", total_us > phases_us ? total_us - phases_us : 0)
          .Field("total_us", total_us)
          .Emit();
    }
  }

  // ---- (b) throughput around a live AddShards step -----------------------
  {
    wbs::RandomTape tape(108);
    tape.set_logging(false);
    auto items = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);
    wbs::stream::TurnstileStream s;
    s.reserve(items.size());
    for (const auto& u : items) s.push_back({u.item, 1});

    wbs::engine::ClientOptions opts =
        EngineClientOptions(universe, /*shards=*/4, /*threads=*/4);
    auto client = wbs::engine::Client::Create(opts);
    if (!client.ok()) return;
    const size_t batch = 32768;
    const size_t half = (s.size() / 2 / batch) * batch;

    auto replay_window = [&](size_t begin, size_t end) -> double {
      const auto w0 = clock::now();
      for (size_t off = begin; off < end; off += batch) {
        if (!client.value()
                 ->Submit(s.data() + off, std::min(batch, end - off))
                 .ok()) {
          return 0;
        }
      }
      if (!client.value()->Flush().ok()) return 0;
      const auto w1 = clock::now();
      const double seconds =
          std::chrono::duration<double>(w1 - w0).count();
      return seconds > 0 ? double(end - begin) / seconds : 0;
    };

    const double ups_before = replay_window(0, half);
    const auto a0 = clock::now();
    wbs::Status grown = client.value()->AddShards(4);
    const auto a1 = clock::now();
    const double ups_after = replay_window(half, s.size());
    (void)client.value()->Finish();
    if (!grown.ok() || ups_before == 0 || ups_after == 0) return;
    auto info = client.value()->Topology();
    wbs::bench::JsonRow()
        .Field("bench", "engine_reshard")
        .Field("op", "add_shards")
        .Field("shards_before", uint64_t(4))
        .Field("shards_after", uint64_t(info.num_shards))
        .Field("topology_generation", info.generation)
        .Field("updates", uint64_t(s.size()))
        .Field("updates_per_sec_before", ups_before)
        .Field("add_shards_barrier_us",
               std::chrono::duration<double, std::micro>(a1 - a0).count())
        .Field("updates_per_sec_after", ups_after)
        .Emit();
  }
}

// ------------------------------------------------------------- failover --
//
// The availability contract as a number: a supervised loopback shard is
// killed mid-stream (clean death and torn-frame death), and the row reports
// how long each recovery phase took — heartbeat detection (crash ->
// kDead), MoveShard re-home from the last checkpoint (kDead -> recovered),
// and the headline crash -> first correct answer latency, where "correct"
// means a non-stale merged estimate equal to a never-crashed in-process
// reference (ams_f2 is state-exact across recovery, so equality is exact).
void RunEngineFailoverBench(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_failover",
      "supervised loopback shard killed mid-stream: heartbeat detection, "
      "MoveShard re-home from the last checkpoint, and crash-to-first-"
      "correct-answer latency, with exact bounded-loss accounting");
  using clock = std::chrono::steady_clock;
  const uint64_t universe = 4096;
  const size_t ingest = size_t(std::min<uint64_t>(num_updates, 200000));

  wbs::RandomTape tape(109);
  tape.set_logging(false);
  auto items = wbs::stream::ZipfStream(universe, ingest, 1.2, &tape);
  wbs::stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});

  // Reference answer from a plain in-process engine over the same stream:
  // the recovered engine must reproduce this bit-for-bit once loss is zero.
  double want = 0;
  {
    auto ref = wbs::engine::Client::Create(
        EngineClientOptions(universe, /*shards=*/4, /*threads=*/0));
    if (!ref.ok()) return;
    auto handle = ref.value()->Handle("ams_f2");
    if (!handle.ok() || !ref.value()->Submit(s).ok() ||
        !ref.value()->Flush().ok()) {
      return;
    }
    auto est = ref.value()->QueryScalar(handle.value());
    if (!est.ok()) return;
    want = est.value().value;
    (void)ref.value()->Finish();
  }

  for (const bool torn : {false, true}) {
    wbs::engine::ClientOptions opts;
    opts.ingest.num_shards = 4;
    opts.ingest.num_threads = 2;
    opts.ingest.sketches = {"ams_f2"};
    opts.ingest.config.universe = universe;
    opts.ingest.config.seed = 2025;
    opts.ingest.backend = wbs::engine::LoopbackBackendFactory();
    opts.ingest.failover.heartbeat_interval_ms = 5;
    opts.ingest.failover.heartbeat_timeout_ms = 25;
    opts.ingest.failover.dead_after_misses = 2;
    opts.ingest.failover.auto_recover = true;
    opts.ingest.failover.recovery_backend =
        wbs::engine::LoopbackBackendFactory();
    auto client = wbs::engine::Client::Create(opts);
    if (!client.ok()) continue;
    auto handle = client.value()->Handle("ams_f2");
    if (!handle.ok()) continue;

    // Full stream, then an explicit checkpoint at the barrier: the
    // exposure window is empty, so the measured recovery is loss-free and
    // the post-recovery answer must equal the reference exactly.
    bool fed = true;
    for (size_t off = 0; off < s.size() && fed; off += 32768) {
      fed = client.value()
                ->Submit(s.data() + off,
                         std::min<size_t>(32768, s.size() - off))
                .ok();
    }
    if (!fed || !client.value()->Flush().ok() ||
        !client.value()->Checkpoint().ok()) {
      continue;
    }

    const auto poll_until = [](const std::function<bool()>& pred) {
      const auto deadline =
          clock::now() + std::chrono::seconds(30);
      while (clock::now() < deadline) {
        if (pred()) return true;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      return pred();
    };

    const auto t_crash = clock::now();
    if (!client.value()->InjectShardCrash(0, torn).ok()) continue;
    // Detection and re-home can both complete inside ONE supervisor sweep,
    // faster than an external poll can observe the transient kSuspect /
    // kDead states — so the wait condition is the monotone recovery
    // counter, and the phase timeline comes from the recorded trace spans:
    // the explicit checkpoint above ends microseconds before the crash
    // (its end anchors t=0), shard_dead marks detection, recover_shard
    // times the re-home.
    const bool rehomed = poll_until([&] {
      return client.value()->Health(0).recoveries >= 1;
    });
    double first_correct_us = 0;
    const bool correct = rehomed && poll_until([&] {
      auto est = client.value()->QueryScalar(handle.value());
      if (!est.ok() || est.value().stale || est.value().value != want) {
        return false;
      }
      first_correct_us = std::chrono::duration<double, std::micro>(
                             clock::now() - t_crash)
                             .count();
      return true;
    });
    const auto health = client.value()->Health(0);
    uint64_t ckpt_end_us = 0, dead_at_us = 0, rehome_us = 0;
    for (const auto& span : client.value()->TraceSpans()) {
      if (span.name == "checkpoint") {
        ckpt_end_us = span.start_us + span.duration_us;
      } else if (span.name == "shard_dead" && dead_at_us == 0) {
        dead_at_us = span.start_us;
      } else if (span.name == "recover_shard" && rehome_us == 0) {
        rehome_us = span.duration_us;
      }
    }
    (void)client.value()->Finish();
    if (!correct || dead_at_us < ckpt_end_us) continue;
    wbs::bench::JsonRow()
        .Field("bench", "engine_failover")
        .Field("death", torn ? "torn" : "clean")
        .Field("shards", uint64_t(4))
        .Field("ingested_updates", uint64_t(s.size()))
        .Field("detection_us", dead_at_us - ckpt_end_us)
        .Field("rehome_us", rehome_us)
        .Field("first_correct_answer_us", first_correct_us)
        .Field("updates_lost", health.updates_lost_total)
        .Field("recoveries", health.recoveries)
        .Emit();
  }
}

// ------------------------------------------------------------ autoscale --
//
// The control plane's reaction as a number. A 2-shard engine with the live
// controller (tight evaluation period, watermark below the offered load)
// ingests a full-speed Zipf stream; the rows report how long the engine
// took to rebalance itself (first topology-generation change after the
// load began), the p99 per-batch submit latency while the controller was
// resharding under the stream, how many decisions it took, and that the
// final answer still equals a static reference (ams_f2 is linear, so
// equality is exact) with zero lost acked updates. A second row prices the
// slot-heat sampling the slot-move decisions feed on (contract: <= 2%
// throughput overhead at shift=6).

double RunEngineSlotSamplingMode(size_t slot_sample_shift,
                                 const wbs::stream::TurnstileStream& s,
                                 uint64_t universe) {
  const size_t shards = 4, threads = 2, batch = 32768, producers = 4;
  wbs::engine::ClientOptions opts =
      EngineClientOptions(universe, shards, threads);
  opts.ingest.slot_sample_shift = slot_sample_shift;
  auto client = wbs::engine::Client::Create(opts);
  if (!client.ok()) return 0;
  std::atomic<uint64_t> submit_errors{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pthreads;
  pthreads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    pthreads.emplace_back([&, p] {
      for (size_t off = p * batch; off < s.size();
           off += producers * batch) {
        const size_t n = std::min(batch, s.size() - off);
        if (!client.value()->Submit(s.data() + off, n).ok()) {
          ++submit_errors;
          return;
        }
      }
    });
  }
  for (auto& t : pthreads) t.join();
  wbs::Status st = client.value()->Flush();
  const auto t1 = std::chrono::steady_clock::now();
  if (st.ok()) st = client.value()->Finish();
  if (!st.ok() || submit_errors.load() > 0) return 0;
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  return seconds > 0 ? double(s.size()) / seconds : 0;
}

void RunEngineAutoscaleBench(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_autoscale",
      "live controller under a full-speed Zipf stream: time to the first "
      "self-issued rebalance, p99 submit latency during it, and the "
      "slot-heat sampling overhead (contract: <= 2%)");
  using clock = std::chrono::steady_clock;
  const uint64_t universe = 4096;
  const size_t ingest = size_t(std::min<uint64_t>(num_updates, 500000));

  wbs::RandomTape tape(113);
  tape.set_logging(false);
  auto items = wbs::stream::ZipfStream(universe, ingest, 1.2, &tape);
  wbs::stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});

  // Reference answer: any topology history must reproduce this exactly.
  double want = 0;
  {
    auto ref = wbs::engine::Client::Create(
        EngineClientOptions(universe, /*shards=*/4, /*threads=*/0));
    if (!ref.ok()) return;
    auto handle = ref.value()->Handle("ams_f2");
    if (!handle.ok() || !ref.value()->Submit(s).ok() ||
        !ref.value()->Flush().ok()) {
      return;
    }
    auto est = ref.value()->QueryScalar(handle.value());
    if (!est.ok()) return;
    want = est.value().value;
    (void)ref.value()->Finish();
  }

  {
    wbs::engine::ClientOptions opts =
        EngineClientOptions(universe, /*shards=*/2, /*threads=*/2);
    opts.ingest.slot_sample_shift = 6;
    opts.ingest.autoscale.enabled = true;
    opts.ingest.autoscale.evaluation_interval_ms = 2;
    opts.ingest.autoscale.high_watermark_updates_per_sec = 50'000.0;
    opts.ingest.autoscale.cooldown_ms = 20;
    opts.ingest.autoscale.max_shards = 8;
    opts.ingest.autoscale.scale_step = 2;
    auto client = wbs::engine::Client::Create(opts);
    if (!client.ok()) return;
    auto handle = client.value()->Handle("ams_f2");
    if (!handle.ok()) return;

    const uint64_t gen0 = client.value()->Topology().generation;
    const size_t batch = 8192;
    std::vector<double> submit_us;
    submit_us.reserve(s.size() / batch + 1);
    double rebalance_us = 0;
    bool fed = true;
    const auto t_start = clock::now();
    for (size_t off = 0; off < s.size() && fed; off += batch) {
      const auto t0 = clock::now();
      fed = client.value()
                ->Submit(s.data() + off, std::min(batch, s.size() - off))
                .ok();
      submit_us.push_back(
          std::chrono::duration<double, std::micro>(clock::now() - t0)
              .count());
      if (rebalance_us == 0 &&
          client.value()->Topology().generation > gen0) {
        rebalance_us = std::chrono::duration<double, std::micro>(
                           clock::now() - t_start)
                           .count();
      }
    }
    if (!fed || !client.value()->Flush().ok()) return;
    // A short stream can outrun the controller's first period; give it one
    // more tick so the row always reports a rebalance.
    const auto deadline = clock::now() + std::chrono::seconds(5);
    while (rebalance_us == 0 && clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (client.value()->Topology().generation > gen0) {
        rebalance_us = std::chrono::duration<double, std::micro>(
                           clock::now() - t_start)
                           .count();
      }
    }
    // Finish first: it stops the controller, so the decision counters, the
    // final topology, and the answer are one consistent cut.
    (void)client.value()->Finish();
    wbs::engine::MetricsSnapshot snap = client.value()->Metrics();
    const auto topo = client.value()->Topology();
    auto est = client.value()->QueryScalar(handle.value());
    if (!est.ok()) return;
    std::sort(submit_us.begin(), submit_us.end());
    const double p99 =
        submit_us.empty()
            ? 0
            : submit_us[size_t(0.99 * double(submit_us.size() - 1))];
    wbs::bench::JsonRow()
        .Field("bench", "engine_autoscale")
        .Field("mode", "step_scaleout")
        .Field("ingested_updates", uint64_t(s.size()))
        .Field("shards_before", uint64_t(2))
        .Field("shards_after", uint64_t(topo.num_shards))
        .Field("time_to_rebalance_us", rebalance_us)
        .Field("p99_submit_us_during_rebalance", p99)
        .Field("decisions",
               snap.Value("engine.autoscaler.scaleouts_total") +
                   snap.Value("engine.autoscaler.slot_moves_total"))
        .Field("cooldown_suppressed",
               snap.Value("engine.autoscaler.cooldown_suppressed_total"))
        .Field("updates_lost",
               snap.Value("engine.failover.updates_lost_total"))
        .Field("answer_exact", est.value().value == want ? 1 : 0)
        .Emit();
  }

  // Slot-heat sampling overhead: interleaved best-of repetitions, same
  // damping as the metrics-overhead row.
  double ups_off = 0, ups_on = 0;
  for (int rep = 0; rep < 3; ++rep) {
    ups_off = std::max(ups_off, RunEngineSlotSamplingMode(0, s, universe));
    ups_on = std::max(ups_on, RunEngineSlotSamplingMode(6, s, universe));
  }
  if (ups_on == 0 || ups_off == 0) return;
  wbs::bench::JsonRow()
      .Field("bench", "engine_autoscale")
      .Field("mode", "slot_sampling_overhead")
      .Field("slot_sample_shift", uint64_t(6))
      .Field("updates", uint64_t(s.size()))
      .Field("updates_per_sec_sampled", ups_on)
      .Field("updates_per_sec_unsampled", ups_off)
      .Field("overhead_pct", (ups_off - ups_on) / ups_off * 100.0)
      .Emit();
}

// ---------------------------------------------------------- merge cache --
//
// Cold rebuild vs cached re-query vs incremental single-shard refold of the
// merged summary, on an engine holding a replayed Zipf stream.

void RunMergeCacheBench(uint64_t num_updates) {
  wbs::bench::Banner(
      "merge_cache",
      "incremental merged-summary cache: cold rebuild vs cache hit vs "
      "single-dirty-shard refold");
  const uint64_t universe = 4096;
  wbs::RandomTape tape(103);
  tape.set_logging(false);
  auto zipf = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);

  auto client = wbs::engine::Client::Create(
      EngineClientOptions(universe, /*shards=*/8, /*threads=*/0));
  if (!client.ok() || !ReplayItems(client.value().get(), zipf, 32768).ok() ||
      !client.value()->Flush().ok()) {
    std::fprintf(stderr, "merge cache bench setup failed\n");
    return;
  }

  for (const char* name : {"ams_f2", "sis_l0"}) {
    auto handle = client.value()->Handle(name).value();
    auto t0 = std::chrono::steady_clock::now();
    auto cold = client.value()->QueryScalar(handle);
    auto t1 = std::chrono::steady_clock::now();
    const double cold_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    const int kWarm = 1000;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kWarm; ++i) {
      auto warm = client.value()->QueryScalar(handle);
      if (!warm.ok()) return;
    }
    t1 = std::chrono::steady_clock::now();
    const double warm_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kWarm;

    // Dirty exactly one shard, then refold: linear sketches take the
    // UnmergeFrom/MergeFrom path instead of an all-shards rebuild.
    wbs::stream::TurnstileStream one{{7, 1}};
    if (!client.value()->Submit(one).ok() || !client.value()->Flush().ok()) {
      return;
    }
    t0 = std::chrono::steady_clock::now();
    auto inc = client.value()->QueryScalar(handle);
    t1 = std::chrono::steady_clock::now();
    const double inc_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    // Cache effectiveness counters come off the engine's metrics surface.
    const auto metrics = client.value()->Metrics();
    const std::string prefix =
        std::string("engine.sketch.") + name + ".merge_cache.";
    wbs::bench::JsonRow row;
    row.Field("bench", "merge_cache")
        .Field("sketch", name)
        .Field("cold_us", cold_us)
        .Field("cached_us", warm_us)
        .Field("cached_speedup", warm_us > 0 ? cold_us / warm_us : 0)
        .Field("one_dirty_shard_us", inc_us)
        .Field("summary_ok", cold.ok() && inc.ok())
        .Field("cache_hits", metrics.Value(prefix + "hits_total"))
        .Field("cache_incremental", metrics.Value(prefix + "incremental_total"))
        .Field("cache_rebuilds", metrics.Value(prefix + "rebuilds_total"));
    row.Emit();
  }
  (void)client.value()->Finish();
}

// ------------------------------------------------------ metrics overhead --
//
// The observability overhead contract, priced: the same multi-producer Zipf
// workload with the engine.* instruments live (the default) vs
// IngestorOptions::metrics_enabled=false (every instrumentation site and
// its clock reads skipped — the runtime stand-in for the
// WBS_ENGINE_METRICS_DISABLED compile-out, measurable in one binary). The
// row guards the contract that instrumentation costs <= 2% updates/sec.

double RunEngineMetricsMode(bool metrics_enabled,
                            const wbs::stream::TurnstileStream& s,
                            uint64_t universe) {
  const size_t shards = 8, threads = 4, batch = 32768, producers = 4;
  wbs::engine::ClientOptions opts =
      EngineClientOptions(universe, shards, threads);
  opts.ingest.metrics_enabled = metrics_enabled;
  auto client = wbs::engine::Client::Create(opts);
  if (!client.ok()) {
    std::fprintf(stderr, "engine client: %s\n",
                 client.status().ToString().c_str());
    return 0;
  }
  std::atomic<uint64_t> submit_errors{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pthreads;
  pthreads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    pthreads.emplace_back([&, p] {
      for (size_t off = p * batch; off < s.size();
           off += producers * batch) {
        const size_t n = std::min(batch, s.size() - off);
        if (!client.value()->Submit(s.data() + off, n).ok()) {
          ++submit_errors;
          return;
        }
      }
    });
  }
  for (auto& t : pthreads) t.join();
  wbs::Status st = client.value()->Flush();
  const auto t1 = std::chrono::steady_clock::now();
  if (st.ok()) st = client.value()->Finish();
  if (!st.ok() || submit_errors.load() > 0) {
    std::fprintf(stderr, "engine metrics overhead: %s\n",
                 st.ToString().c_str());
    return 0;
  }
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  return seconds > 0 ? double(s.size()) / seconds : 0;
}

void RunEngineMetricsOverhead(uint64_t num_updates) {
  wbs::bench::Banner(
      "engine_metrics_overhead",
      "observability cost: multi-producer Zipf updates/sec with engine.* "
      "instruments live vs metrics_enabled=false (contract: <= 2%)");
  const uint64_t universe = 4096;
  wbs::RandomTape tape(109);
  tape.set_logging(false);
  auto items = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);
  wbs::stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});

  // Interleave repetitions and take each mode's best run, damping scheduler
  // noise that would otherwise dwarf a low-single-digit-percent effect.
  double ups_on = 0, ups_off = 0;
  for (int rep = 0; rep < 3; ++rep) {
    ups_off = std::max(ups_off, RunEngineMetricsMode(false, s, universe));
    ups_on = std::max(ups_on, RunEngineMetricsMode(true, s, universe));
  }
  if (ups_on == 0 || ups_off == 0) return;
  const double overhead_pct = (ups_off - ups_on) / ups_off * 100.0;
  wbs::bench::JsonRow()
      .Field("bench", "engine_metrics_overhead")
      .Field("shards", uint64_t(8))
      .Field("threads", uint64_t(4))
      .Field("producers", uint64_t(4))
      .Field("batch", uint64_t(32768))
      .Field("updates", uint64_t(s.size()))
      .Field("updates_per_sec_instrumented", ups_on)
      .Field("updates_per_sec_disabled", ups_off)
      .Field("overhead_pct", overhead_pct)
      .Field("metrics_compiled", wbs::engine::kMetricsCompiled)
      .Emit();
}

// ------------------------------------------------------- Barrett kernels --
//
// The Barrett-reduced Z_q kernels against the __int128 `% q` baselines, on
// the same data, with bit-identity asserted inline: (1) scalar MulMod,
// (2) the SIS column update (old row-major Entry()+MulMod loop vs the
// production contiguous-column Barrett kernel), (3) the AMS update (per-
// update row loop vs ApplyRun).

void RunBarrettKernels() {
  wbs::bench::Banner(
      "kernel_barrett",
      "Barrett-reduced linear-sketch kernels vs the MulMod baseline "
      "(bit-identical by construction, asserted on the same inputs)");
  using clock = std::chrono::steady_clock;

  // --- scalar MulMod vs BarrettQ::MulMod, q just above 2^61.
  {
    const uint64_t q = wbs::NextPrime(uint64_t{1} << 61);
    const wbs::BarrettQ bq(q);
    const size_t kN = 1 << 16;
    std::vector<uint64_t> b(kN);
    uint64_t s = 42;
    for (size_t i = 0; i < kN; ++i) b[i] = wbs::SplitMix64(&s) % q;
    // Serial dependency chain: each product feeds the next multiplicand, so
    // the compiler cannot hoist the (rep-invariant) loop body; both paths
    // run the identical operation sequence.
    const int kReps = 20;
    uint64_t acc_base = 1, acc_barrett = 1;
    auto t0 = clock::now();
    for (int r = 0; r < kReps; ++r) {
      for (size_t i = 0; i < kN; ++i) {
        acc_base = wbs::MulMod(acc_base | 1, b[i], q);
      }
    }
    auto t1 = clock::now();
    for (int r = 0; r < kReps; ++r) {
      for (size_t i = 0; i < kN; ++i) {
        acc_barrett = bq.MulMod(acc_barrett | 1, b[i]);
      }
    }
    auto t2 = clock::now();
    const double ops = double(kN) * kReps;
    const double base_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
    const double barrett_ns =
        std::chrono::duration<double, std::nano>(t2 - t1).count() / ops;
    wbs::bench::JsonRow()
        .Field("bench", "kernel_barrett")
        .Field("kernel", "mulmod_scalar")
        .Field("q", q)
        .Field("baseline_ns_per_op", base_ns)
        .Field("barrett_ns_per_op", barrett_ns)
        .Field("speedup", barrett_ns > 0 ? base_ns / barrett_ns : 0)
        .Field("bit_identical", acc_base == acc_barrett)
        .Emit();
  }

  // --- SIS column update: old kernel (row-major cache walk, generic
  // MulMod/AddMod per entry) vs SisSketchVector::Update on a materialized
  // matrix (contiguous column, Barrett).
  {
    wbs::crypto::RandomOracle oracle(7);
    wbs::crypto::SisParams params{wbs::NextPrime(uint64_t{1} << 61), 64, 64,
                                  100};
    wbs::crypto::SisMatrix matrix(params, oracle, 1);
    matrix.Materialize();
    std::vector<uint64_t> row_major(params.rows * params.cols);
    for (size_t i = 0; i < params.rows; ++i) {
      for (size_t j = 0; j < params.cols; ++j) {
        row_major[i * params.cols + j] = matrix.Entry(i, j);
      }
    }
    const uint64_t q = params.q;
    const size_t kUpdates = 200000;
    std::vector<uint64_t> v_base(params.rows, 0);
    wbs::crypto::SisSketchVector v_new(&matrix);
    uint64_t s = 7;
    std::vector<std::pair<size_t, int64_t>> updates(kUpdates);
    for (auto& u : updates) {
      u.first = size_t(wbs::SplitMix64(&s) % params.cols);
      u.second = int64_t(wbs::SplitMix64(&s) % 2001) - 1000;
    }
    auto t0 = clock::now();
    for (const auto& [col, delta] : updates) {
      const uint64_t d = wbs::ReduceSigned(delta, q);
      for (size_t i = 0; i < params.rows; ++i) {
        v_base[i] = wbs::AddMod(
            v_base[i], wbs::MulMod(d, row_major[i * params.cols + col], q), q);
      }
    }
    auto t1 = clock::now();
    for (const auto& [col, delta] : updates) {
      (void)v_new.Update(col, delta);
    }
    auto t2 = clock::now();
    const double base_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kUpdates;
    const double barrett_ns =
        std::chrono::duration<double, std::nano>(t2 - t1).count() / kUpdates;
    wbs::bench::JsonRow()
        .Field("bench", "kernel_barrett")
        .Field("kernel", "sis_column_update")
        .Field("q", q)
        .Field("rows", uint64_t(params.rows))
        .Field("baseline_ns_per_update", base_ns)
        .Field("barrett_ns_per_update", barrett_ns)
        .Field("speedup", barrett_ns > 0 ? base_ns / barrett_ns : 0)
        .Field("bit_identical", v_base == v_new.value())
        .Emit();
  }

  // --- AMS update: per-update Update() vs the batched ApplyRun kernel.
  {
    const uint64_t universe = uint64_t{1} << 20;
    wbs::RandomTape tape_a(9), tape_b(9);
    tape_a.set_logging(false);
    tape_b.set_logging(false);
    wbs::moments::AmsF2Sketch ams_base(universe, 48, &tape_a);
    wbs::moments::AmsF2Sketch ams_run(universe, 48, &tape_b);
    const size_t kUpdates = 500000;
    std::vector<wbs::stream::TurnstileUpdate> ups(kUpdates);
    uint64_t s = 11;
    for (auto& u : ups) {
      u.item = wbs::SplitMix64(&s) % universe;
      u.delta = int64_t(wbs::SplitMix64(&s) % 5) - 2;
    }
    auto t0 = clock::now();
    for (const auto& u : ups) (void)ams_base.Update(u);
    auto t1 = clock::now();
    (void)ams_run.ApplyRun(ups.data(), ups.size());
    auto t2 = clock::now();
    const double base_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kUpdates;
    const double run_ns =
        std::chrono::duration<double, std::nano>(t2 - t1).count() / kUpdates;
    wbs::bench::JsonRow()
        .Field("bench", "kernel_barrett")
        .Field("kernel", "ams_apply_run")
        .Field("rows", uint64_t(48))
        .Field("baseline_ns_per_update", base_ns)
        .Field("batched_ns_per_update", run_ns)
        .Field("speedup", run_ns > 0 ? base_ns / run_ns : 0)
        .Field("bit_identical", ams_base.Query() == ams_run.Query())
        .Emit();
  }
}

// ----------------------------------------------------------- SIMD kernels --
//
// Every runnable dispatch table (common/simd.h) against the scalar table on
// identical inputs: the two mod-q kernels, the AMS row mix, and the 8-wide
// SHA-256 batch. One row per (kernel, op) with ns/op for both paths, the
// speedup, the lane utilization (speedup / vector lanes — how much of the
// theoretical lane win survives memory traffic and tails), and an inline
// bit-identity check on the outputs. updates_per_sec_per_core is the
// single-threaded kernel rate, the number NUMA placement multiplies.

void EmitKernelRow(const char* op, const wbs::simd::KernelDispatch& k,
                   double scalar_ns, double simd_ns, bool identical) {
  const double speedup = simd_ns > 0 ? scalar_ns / simd_ns : 0;
  wbs::bench::JsonRow()
      .Field("bench", "kernel_simd")
      .Field("op", op)
      .Field("kernel", k.name)
      .Field("lanes", uint64_t(k.lanes))
      .Field("cpu_features", wbs::simd::DetectedCpuFeatures())
      .Field("scalar_ns_per_op", scalar_ns)
      .Field("simd_ns_per_op", simd_ns)
      .Field("speedup", speedup)
      .Field("lane_utilization", k.lanes > 0 ? speedup / k.lanes : 0)
      .Field("updates_per_sec_per_core", simd_ns > 0 ? 1e9 / simd_ns : 0)
      .Field("bit_identical", identical)
      .Emit();
}

void RunKernelSimd() {
  wbs::bench::Banner("kernel_simd",
                     "runtime-dispatched SIMD kernels vs the scalar table "
                     "(bit-identity asserted on the same inputs)");
  using clock = std::chrono::steady_clock;
  const auto kernels = wbs::simd::AvailableKernels();
  const wbs::simd::KernelDispatch* scalar = kernels.back();
  const uint64_t q = wbs::NextPrime(uint64_t{1} << 61);
  const wbs::BarrettQ bq(q);
  const size_t kN = 1 << 12;
  const int kReps = 400;
  uint64_t s = 42;
  std::vector<uint64_t> a0(kN), add(kN);
  for (auto& x : a0) x = wbs::SplitMix64(&s) % q;
  for (auto& x : add) x = wbs::SplitMix64(&s) % q;

  for (const auto* k : kernels) {
    // accumulate_mod: acc[i] = (acc[i] + add[i]) mod q over kN entries.
    {
      std::vector<uint64_t> acc_s = a0, acc_k = a0;
      auto t0 = clock::now();
      for (int r = 0; r < kReps; ++r) {
        scalar->accumulate_mod(acc_s.data(), add.data(), kN, q);
      }
      auto t1 = clock::now();
      for (int r = 0; r < kReps; ++r) {
        k->accumulate_mod(acc_k.data(), add.data(), kN, q);
      }
      auto t2 = clock::now();
      const double ops = double(kN) * kReps;
      EmitKernelRow(
          "accumulate_mod", *k,
          std::chrono::duration<double, std::nano>(t1 - t0).count() / ops,
          std::chrono::duration<double, std::nano>(t2 - t1).count() / ops,
          acc_s == acc_k);
    }
    // sis_column_update: v += d * col (mod q), the SIS hot loop. ns/op is
    // per column ENTRY (one Shoup multiply-add); the ISSUE's >= 2x-on-AVX2
    // acceptance bar reads off this row's speedup.
    {
      std::vector<uint64_t> col(kN), shoup(kN);
      for (size_t i = 0; i < kN; ++i) {
        col[i] = wbs::SplitMix64(&s) % q;
        shoup[i] = uint64_t((wbs::u128(col[i]) << 64) / q);
      }
      std::vector<uint64_t> v_s = a0, v_k = a0;
      uint64_t d = 1;
      auto t0 = clock::now();
      for (int r = 0; r < kReps; ++r) {
        scalar->sis_column_update(v_s.data(), col.data(), shoup.data(), kN,
                                  d | 1, bq);
      }
      auto t1 = clock::now();
      for (int r = 0; r < kReps; ++r) {
        k->sis_column_update(v_k.data(), col.data(), shoup.data(), kN, d | 1,
                             bq);
      }
      auto t2 = clock::now();
      const double ops = double(kN) * kReps;
      EmitKernelRow(
          "sis_column_update", *k,
          std::chrono::duration<double, std::nano>(t1 - t0).count() / ops,
          std::chrono::duration<double, std::nano>(t2 - t1).count() / ops,
          v_s == v_k);
    }
    // ams_row_mix: 48 counters x kN-update run (ns/op = per (row, update)
    // sign-and-add).
    {
      const size_t kRows = 48;
      std::vector<uint64_t> mix(kN);
      std::vector<int64_t> deltas(kN);
      for (size_t i = 0; i < kN; ++i) {
        mix[i] = wbs::SplitMix64(&s);
        deltas[i] = int64_t(wbs::SplitMix64(&s) % 5) - 2;
      }
      std::vector<int64_t> c_s(kRows, 0), c_k(kRows, 0);
      const int kMixReps = 40;
      auto t0 = clock::now();
      for (int r = 0; r < kMixReps; ++r) {
        scalar->ams_row_mix(c_s.data(), kRows, mix.data(), deltas.data(), kN);
      }
      auto t1 = clock::now();
      for (int r = 0; r < kMixReps; ++r) {
        k->ams_row_mix(c_k.data(), kRows, mix.data(), deltas.data(), kN);
      }
      auto t2 = clock::now();
      const double ops = double(kN) * kRows * kMixReps;
      EmitKernelRow(
          "ams_row_mix", *k,
          std::chrono::duration<double, std::nano>(t1 - t0).count() / ops,
          std::chrono::duration<double, std::nano>(t2 - t1).count() / ops,
          c_s == c_k);
    }
    // sha256_salted8: eight one-block compressions per call (ns/op = per
    // message).
    {
      const size_t kBatches = 4096;
      uint64_t items[8], out_s[8], out_k[8];
      bool identical = true;
      uint64_t sink = 0;
      auto fill = [&](uint64_t base) {
        for (int i = 0; i < 8; ++i) items[i] = base + uint64_t(i);
      };
      auto t0 = clock::now();
      for (size_t b = 0; b < kBatches; ++b) {
        fill(b * 8);
        scalar->sha256_salted8(7, items, out_s);
        sink ^= out_s[0];
      }
      auto t1 = clock::now();
      for (size_t b = 0; b < kBatches; ++b) {
        fill(b * 8);
        k->sha256_salted8(7, items, out_k);
        sink ^= out_k[0];
      }
      auto t2 = clock::now();
      fill(123456);
      scalar->sha256_salted8(7, items, out_s);
      k->sha256_salted8(7, items, out_k);
      for (int i = 0; i < 8; ++i) identical &= out_s[i] == out_k[i];
      const double ops = double(kBatches) * 8;
      EmitKernelRow(
          "sha256_salted8", *k,
          std::chrono::duration<double, std::nano>(t1 - t0).count() / ops,
          std::chrono::duration<double, std::nano>(t2 - t1).count() / ops,
          identical && sink != 1);  // sink: keep the loops alive
    }
  }
}

// ---------------------------------------------------------- scatter kernel --
//
// The ingestion scatter step: (a) micro — the per-item hash+bucket cost of
// the scalar TopologyView::SlotOf loop vs the 8-wide hash_items kernel, and
// (b) end-to-end — full-engine ingest forced to the scalar table vs the
// auto-selected one, so the row shows how much of the kernel win survives
// the rest of the pipeline.

void ForceKernelEnv(const char* name) {
  if (name == nullptr) {
    ::unsetenv("WBS_ENGINE_KERNEL");
  } else {
    ::setenv("WBS_ENGINE_KERNEL", name, 1);
  }
  wbs::simd::internal::ReselectKernels();
}

void RunKernelScatter(uint64_t num_updates) {
  wbs::bench::Banner("kernel_scatter",
                     "8-wide hash+bucket scatter vs the scalar SlotOf loop, "
                     "micro and end-to-end");
  using clock = std::chrono::steady_clock;
  const auto& kern = wbs::simd::Kernels();
  const size_t kItems = 1 << 16;
  const size_t kSlots = 64;  // 4 shards x 16 slots, the default topology
  uint64_t s = 5;
  std::vector<uint64_t> items(kItems);
  for (auto& it : items) it = wbs::SplitMix64(&s);

  // Each computed slot is consumed through DoNotOptimize in BOTH loops:
  // the real scatter interleaves every slot with a push_back and a heat
  // sample, so neither path gets to auto-vectorize across items — without
  // the barrier the compiler SIMD-izes the inline SlotOf loop and the
  // micro measures codegen luck instead of the kernel.
  std::vector<uint32_t> slot_scalar(kItems), slot_simd(kItems);
  const int kReps = 64;
  auto t0 = clock::now();
  for (int r = 0; r < kReps; ++r) {
    for (size_t i = 0; i < kItems; ++i) {
      slot_scalar[i] =
          uint32_t(wbs::engine::TopologyView::SlotOf(items[i], kSlots));
      benchmark::DoNotOptimize(slot_scalar[i]);
    }
  }
  auto t1 = clock::now();
  uint64_t hashes[8];
  for (int r = 0; r < kReps; ++r) {
    for (size_t base = 0; base < kItems; base += 8) {
      const size_t chunk = std::min<size_t>(8, kItems - base);
      kern.hash_items(items.data() + base, chunk, hashes);
      for (size_t j = 0; j < chunk; ++j) {
        slot_simd[base + j] = uint32_t(hashes[j] % kSlots);
        benchmark::DoNotOptimize(slot_simd[base + j]);
      }
    }
  }
  auto t2 = clock::now();
  const double ops = double(kItems) * kReps;
  const double scalar_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
  const double simd_ns =
      std::chrono::duration<double, std::nano>(t2 - t1).count() / ops;
  wbs::bench::JsonRow()
      .Field("bench", "kernel_scatter")
      .Field("op", "hash_slot_micro")
      .Field("kernel", kern.name)
      .Field("cpu_features", wbs::simd::DetectedCpuFeatures())
      .Field("num_slots", uint64_t(kSlots))
      .Field("scalar_ns_per_item", scalar_ns)
      .Field("simd_ns_per_item", simd_ns)
      .Field("speedup", simd_ns > 0 ? scalar_ns / simd_ns : 0)
      .Field("bit_identical", slot_scalar == slot_simd)
      .Emit();

  // End-to-end: same sharded inline ingest, scalar-forced vs auto kernels.
  const uint64_t universe = uint64_t{1} << 20;
  wbs::RandomTape tape(31);
  auto zipf = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);
  auto run = [&](const char* forced) -> double {
    ForceKernelEnv(forced);
    auto client = wbs::engine::Client::Create(
        EngineClientOptions(universe, /*shards=*/4, /*threads=*/0));
    if (!client.ok()) return 0;
    const auto e0 = clock::now();
    wbs::Status st = ReplayItems(client.value().get(), zipf, 32768);
    if (st.ok()) st = client.value()->Finish();
    const auto e1 = clock::now();
    if (!st.ok()) return 0;
    return double(zipf.size()) /
           std::chrono::duration<double>(e1 - e0).count();
  };
  const double ups_scalar = run("scalar");
  const double ups_auto = run(nullptr);  // restores auto-selection
  wbs::bench::JsonRow()
      .Field("bench", "kernel_scatter")
      .Field("op", "engine_ingest_e2e")
      .Field("kernel", wbs::simd::Kernels().name)
      .Field("cpu_features", wbs::simd::DetectedCpuFeatures())
      .Field("shards", uint64_t(4))
      .Field("updates", uint64_t(zipf.size()))
      .Field("updates_per_sec_scalar", ups_scalar)
      .Field("updates_per_sec_auto", ups_auto)
      .Field("speedup", ups_scalar > 0 ? ups_auto / ups_scalar : 0)
      .Emit();
}

// ---------------------------------------------------------- NUMA placement --
//
// Reports the discovered topology and A/Bs worker-thread ingest with NUMA
// pinning on vs off. On single-node machines (most CI boxes) pinning is a
// no-op by design and the row documents exactly that (nodes=1,
// pinning_active=false) rather than claiming a win that cannot exist.

void RunNumaPlacement(uint64_t num_updates) {
  wbs::bench::Banner("numa_placement",
                     "NUMA topology and pinned vs unpinned worker ingest");
  using clock = std::chrono::steady_clock;
  const auto& nodes = wbs::numa::Topology();
  size_t cpus = 0;
  for (const auto& n : nodes) cpus += n.cpus.size();

  const uint64_t universe = uint64_t{1} << 20;
  wbs::RandomTape tape(47);
  auto zipf = wbs::stream::ZipfStream(universe, num_updates, 1.2, &tape);
  auto run = [&](bool pin) -> double {
    auto opts = EngineClientOptions(universe, /*shards=*/4, /*threads=*/2);
    opts.ingest.numa_pin_workers = pin;
    auto client = wbs::engine::Client::Create(opts);
    if (!client.ok()) return 0;
    const auto t0 = clock::now();
    wbs::Status st = ReplayItems(client.value().get(), zipf, 32768);
    if (st.ok()) st = client.value()->Finish();
    const auto t1 = clock::now();
    if (!st.ok()) return 0;
    return double(zipf.size()) / std::chrono::duration<double>(t1 - t0).count();
  };
  const double ups_pinned = run(true);
  const double ups_unpinned = run(false);
  wbs::bench::JsonRow()
      .Field("bench", "numa_placement")
      .Field("nodes", uint64_t(nodes.size()))
      .Field("cpus", uint64_t(cpus))
      .Field("pinning_active", nodes.size() > 1)
      .Field("threads", uint64_t(2))
      .Field("updates", uint64_t(zipf.size()))
      .Field("updates_per_sec_pinned", ups_pinned)
      .Field("updates_per_sec_unpinned", ups_unpinned)
      .Field("speedup", ups_unpinned > 0 ? ups_pinned / ups_unpinned : 0)
      .Emit();
}

}  // namespace

int main(int argc, char** argv) {
  bool engine_only = false;
  bool benchmark_flags_present = false;
  uint64_t engine_updates = uint64_t{1} << 20;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine_only") == 0) {
      engine_only = true;
    } else if (std::strncmp(argv[i], "--engine_updates=", 17) == 0) {
      engine_updates = std::strtoull(argv[i] + 17, nullptr, 10);
    } else {
      benchmark_flags_present |=
          std::strncmp(argv[i], "--benchmark", 11) == 0;
      passthrough.push_back(argv[i]);
    }
  }
  // The multi-second engine sweep runs by default and with --engine_only,
  // but stays out of the way when the caller is targeting specific
  // microbenchmarks (--benchmark_filter, --benchmark_list_tests, ...).
  if (engine_only || !benchmark_flags_present) {
    RunEngineThroughput(engine_updates);
    RunEngineMixed(engine_updates);
    RunEngineMultiProducerSweep(engine_updates);
    RunEngineBackendSweep(engine_updates);
    RunEngineTcpBench(engine_updates);
    RunEngineReshardBench(engine_updates);
    RunEngineFailoverBench(engine_updates);
    RunEngineAutoscaleBench(engine_updates);
    RunWireSerializeBench(engine_updates);
    RunMergeCacheBench(engine_updates);
    RunEngineMetricsOverhead(engine_updates);
    RunBarrettKernels();
    RunKernelSimd();
    RunKernelScatter(engine_updates);
    RunNumaPlacement(engine_updates);
  }
  if (engine_only) return 0;
  int pargc = int(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
