// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Google-benchmark microbenchmarks: per-update cost of every streaming
// structure in the library. Not a paper experiment — an engineering
// companion that quantifies the price of white-box robustness in
// nanoseconds rather than bits.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "counter/morris.h"
#include "crypto/crhf.h"
#include "crypto/sha256.h"
#include "distinct/l0_estimator.h"
#include "heavyhitters/misra_gries.h"
#include "heavyhitters/robust_hh.h"
#include "hhh/hhh.h"
#include "linalg/rank_sketch.h"
#include "moments/ams.h"
#include "strings/fingerprint.h"

namespace {

void BM_Sha256_64B(benchmark::State& state) {
  uint8_t buf[64] = {0};
  uint64_t i = 0;
  for (auto _ : state) {
    buf[0] = uint8_t(i++);
    benchmark::DoNotOptimize(wbs::crypto::Sha256::Hash64(buf, sizeof(buf)));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_MorrisIncrement(benchmark::State& state) {
  wbs::RandomTape tape(1);
  tape.set_logging(false);
  wbs::counter::MorrisRegister reg(0.01, &tape);
  for (auto _ : state) {
    reg.Increment();
    benchmark::DoNotOptimize(reg.register_value());
  }
}
BENCHMARK(BM_MorrisIncrement);

void BM_MisraGriesAdd(benchmark::State& state) {
  wbs::hh::MisraGries mg(size_t(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    mg.Add((i++ * 0x9e3779b97f4a7c15ULL) >> 44);
  }
}
BENCHMARK(BM_MisraGriesAdd)->Arg(16)->Arg(128);

void BM_RobustHhUpdate(benchmark::State& state) {
  wbs::RandomTape tape(2);
  tape.set_logging(false);
  wbs::hh::RobustL1HeavyHitters alg(uint64_t{1} << 20, 0.1, 0.25, &tape);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 20)}));
  }
}
BENCHMARK(BM_RobustHhUpdate);

void BM_RobustHhhUpdate(benchmark::State& state) {
  wbs::RandomTape tape(3);
  tape.set_logging(false);
  wbs::hhh::Hierarchy h = wbs::hhh::Hierarchy::Bytes(16);
  wbs::hhh::RobustHhh alg(h, 1 << 16, 0.1, 0.25, 0.25, &tape);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 16)}));
  }
}
BENCHMARK(BM_RobustHhhUpdate);

void BM_AmsUpdate(benchmark::State& state) {
  wbs::RandomTape tape(4);
  tape.set_logging(false);
  wbs::moments::AmsF2Sketch alg(uint64_t{1} << 20,
                                size_t(state.range(0)), &tape);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 20), 1}));
  }
}
BENCHMARK(BM_AmsUpdate)->Arg(12)->Arg(48);

void BM_SisL0Update(benchmark::State& state) {
  wbs::crypto::RandomOracle oracle(5);
  auto params = wbs::distinct::SisL0Params::Derive(1 << 14, 0.5, 0.25, 100);
  wbs::distinct::SisL0Estimator alg(params, oracle, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Update({(i++ * 48271) % (1 << 14), 1}));
  }
}
BENCHMARK(BM_SisL0Update);

void BM_RankSketchUpdate(benchmark::State& state) {
  wbs::crypto::RandomOracle oracle(6);
  wbs::linalg::RankDecisionSketch alg(64, size_t(state.range(0)), 1000003,
                                      oracle, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alg.Update({size_t(i % 64), size_t((i / 64) % 64), 1}));
    ++i;
  }
}
BENCHMARK(BM_RankSketchUpdate)->Arg(4)->Arg(16);

void BM_DlogFingerprintAppendChar(benchmark::State& state) {
  wbs::RandomTape tape(7);
  wbs::crypto::DlogParams g = wbs::crypto::DlogParams::Generate(40, &tape);
  wbs::crypto::DlogFingerprint f(g);
  uint64_t i = 0;
  for (auto _ : state) {
    f.AppendChar(i++ & 0xff, 8);
    benchmark::DoNotOptimize(f.value());
  }
}
BENCHMARK(BM_DlogFingerprintAppendChar);

void BM_KarpRabinAppend(benchmark::State& state) {
  wbs::RandomTape tape(8);
  wbs::strings::KarpRabinParams p =
      wbs::strings::KarpRabinParams::Generate(40, &tape);
  wbs::strings::KarpRabin kr(p);
  uint64_t i = 0;
  for (auto _ : state) {
    kr.Append(i++ & 0xff);
    benchmark::DoNotOptimize(kr.value());
  }
}
BENCHMARK(BM_KarpRabinAppend);

}  // namespace

BENCHMARK_MAIN();
