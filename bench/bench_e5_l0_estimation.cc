// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E5 (Theorem 1.5 / Algorithm 5): L0 estimation on turnstile
// streams with SIS chunk sketches. (a) the n^eps multiplicative sandwich
// across (eps, c) and support sizes; (b) space ~O(n^{1-eps+c eps}) in the
// random-oracle model; (c) the computational separation: the bounded
// adversary's short-vector search succeeds at toy chunk widths and times
// out as the width grows, while the naive (non-SIS) baseline is broken by
// a two-update attack.

#include <cmath>

#include "bench/bench_util.h"
#include "common/bits.h"
#include "common/random.h"
#include "crypto/sis.h"
#include "distinct/l0_estimator.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

namespace wbs {
namespace {

void Sandwich() {
  bench::Banner(
      "E5a: n^eps multiplicative approximation (n = 2^14)",
      "Thm 1.5: L0/n^eps <= answer <= L0 on turnstile streams");
  bench::Table t(
      {"eps", "c", "live_L0", "answer", "ratio", "bound_n^eps"});
  const uint64_t n = 1 << 14;
  crypto::RandomOracle oracle(5);
  for (double eps : {0.3, 0.5, 0.7}) {
    for (double c : {0.15, 0.3}) {
      for (uint64_t live : {100u, 4000u}) {
        auto params = distinct::SisL0Params::Derive(n, eps, c, 1000);
        distinct::SisL0Estimator alg(params, oracle,
                                     uint64_t(eps * 100 + c * 10) + live);
        wbs::RandomTape tape(live + uint64_t(100 * eps));
        auto s = stream::InsertDeleteChurnStream(n, live, 500, &tape);
        stream::FrequencyOracle truth(n);
        for (const auto& u : s) {
          truth.Add(u.item, u.delta);
          (void)alg.Update(u);
        }
        double l0 = double(truth.L0());
        double ans = alg.Query();
        t.Row()
            .Cell(eps, 2)
            .Cell(c, 2)
            .Cell(uint64_t(l0))
            .Cell(ans, 0)
            .Cell(l0 / std::max(ans, 1.0), 2)
            .Cell(double(params.chunk_width), 0);
      }
    }
  }
  std::printf("expected: answer <= L0 and ratio <= bound (n^eps).\n");
}

void Space() {
  bench::Banner(
      "E5b: space vs (eps, c) in the random-oracle model",
      "Thm 1.5: ~O(n^{1-eps+c*eps}) bits (the matrix itself is free)");
  bench::Table t({"eps", "c", "chunks", "rows", "space_bits",
                  "n*logq (dense)"});
  const uint64_t n = 1 << 16;
  crypto::RandomOracle oracle(6);
  for (double eps : {0.3, 0.5, 0.7}) {
    for (double c : {0.15, 0.3, 0.45}) {
      auto params = distinct::SisL0Params::Derive(n, eps, c, 1000);
      distinct::SisL0Estimator alg(params, oracle, 77);
      t.Row()
          .Cell(eps, 2)
          .Cell(c, 2)
          .Cell(params.num_chunks)
          .Cell(uint64_t(params.sketch_rows))
          .Cell(alg.SpaceBits())
          .Cell(n * wbs::BitsForUniverse(params.q));
    }
  }
  std::printf(
      "expected shape: space falls as eps grows (fewer chunks) and rises "
      "with c (more sketch rows); always << dense storage.\n");
}

void ComputationalSeparation() {
  bench::Banner(
      "E5c: the bounded adversary's SIS search frontier",
      "Asm 2.17 scaled down: breaking Algorithm 5 = solving SIS; exhaustive "
      "search succeeds on toy widths, explodes exponentially after");
  bench::Table t({"chunk_w", "rows", "log2(q)", "found", "ops_used",
                  "budget_hit"});
  crypto::RandomOracle oracle(7);
  // Two regimes: a toy modulus where short kernel vectors exist and the
  // bounded search FINDS them (the sketch is breakable), and the production
  // modulus where the search only burns its budget.
  for (uint64_t q : {31ULL, 1000003ULL}) {
    for (size_t w : {4u, 6u, 8u, 10u, 12u}) {
      crypto::SisParams p;
      p.q = q;
      p.rows = 3;
      p.cols = w;
      p.beta_inf = 2;
      crypto::SisMatrix matrix(p, oracle, q + w);
      matrix.Materialize();
      auto r = crypto::MeetInMiddleSisAttack(matrix, 3'000'000);
      t.Row()
          .Cell(uint64_t(w))
          .Cell(uint64_t(p.rows))
          .Cell(wbs::BitsForUniverse(p.q))
          .Cell(r.found)
          .Cell(r.operations_used)
          .Cell(r.budget_exhausted);
    }
  }
  std::printf(
      "expected shape: toy modulus (5 bits): found once the search box "
      "exceeds q^rows; "
      "production modulus (20 bits): never found, ops grow ~5^(w/2) until "
      "the budget wall — the computational separation of Asm 2.17.\n");
}

void BaselineBreak() {
  bench::Banner(
      "E5d: naive linear baseline vs the same white-box attack",
      "Sec 2.3 motivation: without SIS hardness a 2-update cancellation "
      "zeroes the sketch while L0 = 2");
  bench::Table t({"algorithm", "updates", "true_L0", "answer", "fooled"});
  {
    distinct::NaiveSumL0 naive(1 << 10, 32);
    (void)naive.Update({3, 1});
    (void)naive.Update({7, -1});
    t.Row()
        .Cell(std::string("naive-sum"))
        .Cell(2)
        .Cell(2)
        .Cell(naive.Query(), 0)
        .Cell(naive.Query() == 0.0);
  }
  {
    crypto::RandomOracle oracle(8);
    auto params = distinct::SisL0Params::Derive(1 << 10, 0.5, 0.3, 10);
    distinct::SisL0Estimator sis(params, oracle, 9);
    (void)sis.Update({3, 1});
    (void)sis.Update({7, -1});
    t.Row()
        .Cell(std::string("Alg 5 (SIS)"))
        .Cell(2)
        .Cell(2)
        .Cell(sis.Query(), 0)
        .Cell(sis.Query() == 0.0);
  }
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::Sandwich();
  wbs::Space();
  wbs::ComputationalSeparation();
  wbs::BaselineBreak();
  return 0;
}
