// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E1 (Theorem 1.1 / Algorithm 2 vs Theorem 2.2):
//   (a) space of the robust eps-L1 heavy hitter algorithm vs Misra-Gries as
//       the stream length m grows — the robust curve must be flat in m while
//       MG grows like (1/eps) log m;
//   (b) recall/precision of both on planted-heavy-hitter workloads;
//   (c) robustness of Algorithm 2 under an adaptive white-box adversary.

#include <cmath>
#include <set>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/game.h"
#include "heavyhitters/misra_gries.h"
#include "heavyhitters/robust_hh.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

namespace wbs {
namespace {

constexpr double kEps = 0.1;
constexpr uint64_t kUniverse = uint64_t{1} << 20;

void SpaceVsStreamLength() {
  bench::Banner(
      "E1a: space vs stream length m (eps = 0.1, n = 2^20)",
      "Thm 1.1: O(1/eps(log n + log 1/eps) + log log m) bits vs "
      "Misra-Gries O(1/eps(log m + log n)) [Thm 2.2]");
  bench::Table t({"log2(m)", "robust_bits", "mg_bits", "mg_worst_bits",
                  "robust/mg_wc"});
  const size_t mg_k = size_t(std::ceil(2.0 / kEps));
  for (int logm = 12; logm <= 22; logm += 2) {
    const uint64_t m = uint64_t{1} << logm;
    // Average the robust footprint over seeds: the instantaneous value
    // oscillates with the Morris-clocked instance rotations.
    uint64_t robust_sum = 0;
    const int seeds = 5;
    for (int seed = 0; seed < seeds; ++seed) {
      wbs::RandomTape tape{uint64_t(logm * 10 + seed)};
      tape.set_logging(false);
      hh::RobustL1HeavyHitters robust(kUniverse, kEps, 0.25, &tape);
      for (uint64_t i = 0; i < m; ++i) (void)robust.Update({i % 16});
      robust_sum += robust.SpaceBits();
    }
    const uint64_t robust_bits = robust_sum / seeds;
    hh::MisraGries mg(mg_k);
    // Concentrated workload (few hot items): the regime where MG counters
    // genuinely grow with m.
    for (uint64_t i = 0; i < m; ++i) mg.Add(i % 16);
    uint64_t mg_worst =
        hh::MisraGries::WorstCaseSpaceBits(mg_k, kUniverse, m);
    t.Row()
        .Cell(logm)
        .Cell(robust_bits)
        .Cell(mg.SpaceBits(kUniverse))
        .Cell(mg_worst)
        .Cell(double(robust_bits) / double(mg_worst), 2);
  }
  std::printf(
      "expected shape: robust_bits ~flat in m; mg columns grow ~%zu bits "
      "per doubling of m (one bit per counter).\n", size_t(16));
}

void RecallPrecision() {
  bench::Banner("E1b: recall of planted eps-heavy hitters (eps = 0.1)",
                "Thm 1.1: all eps-L1-heavy items reported w.p. >= 3/4, "
                "estimates within eps*L1");
  bench::Table t({"log2(m)", "trials", "recall", "est_err/L1"});
  for (int logm = 12; logm <= 18; logm += 2) {
    const uint64_t m = uint64_t{1} << logm;
    int planted_total = 0, found_total = 0;
    double worst_err = 0;
    for (int trial = 0; trial < 5; ++trial) {
      wbs::RandomTape tape{uint64_t(logm * 100 + trial)};
      std::vector<uint64_t> planted;
      auto s = stream::PlantedHeavyHitterStream(kUniverse, m, 3, 2 * kEps,
                                                &tape, &planted);
      hh::RobustL1HeavyHitters alg(kUniverse, kEps, 0.25, &tape);
      tape.set_logging(false);
      stream::FrequencyOracle truth(kUniverse);
      for (const auto& u : s) {
        truth.Add(u.item);
        (void)alg.Update({u.item});
      }
      std::set<uint64_t> listed;
      for (const auto& wi : alg.Query()) listed.insert(wi.item);
      for (uint64_t id : planted) {
        ++planted_total;
        if (listed.count(id)) {
          ++found_total;
          double err = std::abs(alg.Estimate(id) -
                                double(truth.Frequency(id))) /
                       double(truth.L1());
          worst_err = std::max(worst_err, err);
        }
      }
    }
    t.Row()
        .Cell(logm)
        .Cell(5)
        .Cell(double(found_total) / double(planted_total), 3)
        .Cell(worst_err, 4);
  }
}

class AdaptiveLowAdversary final
    : public core::Adversary<stream::ItemUpdate, hh::HhList> {
 public:
  AdaptiveLowAdversary(const hh::RobustL1HeavyHitters* victim,
                       uint64_t rounds)
      : victim_(victim), rounds_(rounds) {}
  std::optional<stream::ItemUpdate> NextUpdate(const core::StateView& view,
                                               const hh::HhList&) override {
    if (view.round >= rounds_) return std::nullopt;
    if (view.round % 3 == 0) return stream::ItemUpdate{999};
    uint64_t best = 1;
    double best_est = 1e300;
    for (uint64_t c = 1; c <= 16; ++c) {
      double e = victim_->Estimate(c);
      if (e < best_est) {
        best_est = e;
        best = c;
      }
    }
    return stream::ItemUpdate{best};
  }

 private:
  const hh::RobustL1HeavyHitters* victim_;
  uint64_t rounds_;
};

void AdaptiveGame() {
  bench::Banner("E1c: white-box adaptive adversary vs Algorithm 2",
                "Thm 1.1: robust w.p. >= 3/4 against a white-box adversary "
                "(here: estimate-minimizing adaptive strategy)");
  bench::Table t({"trial", "rounds", "survived", "space_bits"});
  int survived_count = 0;
  const int trials = 8;
  for (int trial = 0; trial < trials; ++trial) {
    wbs::RandomTape tape(9100 + uint64_t(trial));
    hh::RobustL1HeavyHitters alg(1 << 10, 0.2, 0.25, &tape);
    AdaptiveLowAdversary adv(&alg, 30000);
    stream::FrequencyOracle truth(1 << 10);
    auto result = core::RunGame<stream::ItemUpdate, hh::HhList>(
        &alg, &adv, 30000,
        [&](const stream::ItemUpdate& u) { truth.Add(u.item); },
        [&](uint64_t round, const hh::HhList& answer) {
          if (round < 5000) return true;
          for (const auto& wi : answer) {
            if (wi.item == 999) return true;  // the 1/3-heavy item
          }
          return false;
        });
    survived_count += result.algorithm_survived ? 1 : 0;
    t.Row()
        .Cell(trial)
        .Cell(result.rounds_played)
        .Cell(result.algorithm_survived)
        .Cell(result.max_space_bits);
  }
  std::printf("survival rate: %d/%d (paper guarantee: >= 3/4)\n",
              survived_count, trials);
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::SpaceVsStreamLength();
  wbs::RecallPrecision();
  wbs::AdaptiveGame();
  return 0;
}
