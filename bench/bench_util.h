// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Shared helpers for the experiment harness: fixed-width table printing in
// the style of the paper-claim tables indexed in EXPERIMENTS.md (which also
// documents the JSONL row schema JsonRow emits and how CI scrapes it).

#ifndef WBS_BENCH_BENCH_UTIL_H_
#define WBS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

namespace wbs::bench {

/// Prints a banner naming the experiment and the paper claim it regenerates.
inline void Banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Minimal fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {
    for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  /// Starts a new row.
  Table& Row() {
    if (in_row_) std::printf("\n");  // defensive: close a short row
    in_row_ = true;
    col_ = 0;
    return *this;
  }

  Table& Cell(const std::string& s) {
    std::printf("%*s", width_, s.c_str());
    ++col_;
    if (col_ == headers_.size()) {
      std::printf("\n");
      in_row_ = false;
      col_ = 0;
    }
    return *this;
  }
  Table& Cell(uint64_t v) { return Cell(std::to_string(v)); }
  Table& Cell(int v) { return Cell(std::to_string(v)); }
  Table& Cell(double v, int precision = 3) {
    char buf[64];
    if (v >= 1e9 || v <= -1e9) {
      std::snprintf(buf, sizeof(buf), "%.3e", v);
    } else {
      std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    }
    return Cell(std::string(buf));
  }
  Table& Cell(bool b) { return Cell(std::string(b ? "yes" : "no")); }

  ~Table() {
    if (in_row_) std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
  bool in_row_ = false;
  size_t col_ = 0;
};

/// One machine-readable benchmark row, emitted as a single JSON object per
/// line (JSONL) so CI logs can be scraped for perf-trajectory tracking.
/// Usage: JsonRow().Field("bench", "x").Field("updates_per_sec", 1e7).Emit();
class JsonRow {
 public:
  JsonRow& Field(const std::string& key, const std::string& value) {
    Key(key);
    buf_ += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') buf_ += '\\';
      buf_ += c;
    }
    buf_ += '"';
    return *this;
  }
  JsonRow& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonRow& Field(const std::string& key, uint64_t value) {
    Key(key);
    buf_ += std::to_string(value);
    return *this;
  }
  JsonRow& Field(const std::string& key, int value) {
    Key(key);
    buf_ += std::to_string(value);
    return *this;
  }
  JsonRow& Field(const std::string& key, double value) {
    Key(key);
    char num[64];
    std::snprintf(num, sizeof(num), "%.6g", value);
    buf_ += num;
    return *this;
  }
  JsonRow& Field(const std::string& key, bool value) {
    Key(key);
    buf_ += value ? "true" : "false";
    return *this;
  }

  /// Prints the row and resets the builder.
  void Emit() {
    std::printf("{%s}\n", buf_.c_str());
    std::fflush(stdout);
    buf_.clear();
    first_ = true;
  }

 private:
  void Key(const std::string& key) {
    if (!first_) buf_ += ',';
    first_ = false;
    buf_ += '"';
    buf_ += key;
    buf_ += "\":";
  }

  std::string buf_;
  bool first_ = true;
};

}  // namespace wbs::bench

#endif  // WBS_BENCH_BENCH_UTIL_H_
