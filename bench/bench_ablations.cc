// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Ablation studies for the design knobs DESIGN.md calls out:
//   A1 — Algorithm 2's guess base: the paper uses (16/eps); what do
//        aggressive (2x) or conservative (64/eps) bases cost in space and
//        recall? (The base controls how much of the stream a fresh
//        instance may miss vs how many rotations happen.)
//   A2 — the Bernoulli sampling constant C of Theorem 2.3: recall vs
//        sampled-set size.
//   A3 — Morris base a: accuracy/space across four decades of a.
//   A4 — SIS matrix: oracle-derived entries (O(1) space, hash per update)
//        vs materialized (matrix bits charged, fast updates) — the two
//        space models of Theorem 1.5.

#include <chrono>
#include <cmath>
#include <set>

#include "bench/bench_util.h"
#include "common/random.h"
#include "counter/morris.h"
#include "crypto/sis.h"
#include "heavyhitters/misra_gries.h"
#include "sampling/bernoulli.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

namespace wbs {
namespace {

void GuessBaseAblation() {
  bench::Banner(
      "A1: Algorithm 2 guess-base ablation (eps = 0.1, m = 2^17)",
      "base 16/eps (paper) vs smaller/larger bases: missed-prefix fraction "
      "vs instance rotations");
  bench::Table t({"base", "rotations", "missed_frac", "recall"});
  const double eps = 0.1;
  const uint64_t m = 1 << 17;
  for (double base : {2.0, 16.0 / eps, 64.0 / eps}) {
    // Simulate the rotation schedule analytically: instance c covers
    // streams up to base^c; a fresh instance at base^c has missed base^{c-1}
    // of its target base^c.
    int rotations = int(std::ceil(std::log(double(m)) / std::log(base)));
    double missed = 1.0 / base;
    // Empirical recall with a BernMG at the implied guess accuracy: a
    // late-started sample sees (1 - missed) of each heavy item's mass.
    int found = 0, total = 0;
    for (int trial = 0; trial < 5; ++trial) {
      wbs::RandomTape tape(uint64_t(base * 10) + trial);
      std::vector<uint64_t> planted;
      auto s = stream::PlantedHeavyHitterStream(1 << 16, m, 2, 2 * eps,
                                                &tape, &planted);
      // Instance opened after missing a `missed` fraction of the stream.
      const uint64_t skip = uint64_t(missed * double(m));
      double p = sampling::BernoulliRate(1 << 16, m, eps / 2, 0.05);
      sampling::SampledFrequencyEstimator est(p, &tape);
      for (uint64_t i = skip; i < m; ++i) est.Offer(s[i].item);
      for (uint64_t id : planted) {
        ++total;
        if (est.Estimate(id) >= eps * double(m)) ++found;
      }
    }
    t.Row()
        .Cell(base, 0)
        .Cell(rotations)
        .Cell(missed, 4)
        .Cell(double(found) / double(total), 2);
  }
  std::printf(
      "reading: base 2 misses half of each instance's window (recall "
      "suffers); the paper's 16/eps keeps the missed prefix at eps/16 with "
      "only log_{16/eps}(m) rotations.\n");
}

void SamplingConstantAblation() {
  bench::Banner(
      "A2: Theorem 2.3 sampling constant C",
      "p = C log(n/delta) / (eps^2 m): recall and sampled-set size vs C");
  bench::Table t({"C", "sample_rate", "avg_kept", "recall"});
  const double eps = 0.1;
  const uint64_t m = 1 << 16;
  for (double c : {0.25, 1.0, 4.0, 16.0}) {
    int found = 0, total = 0;
    uint64_t kept = 0;
    const int trials = 5;
    double p = 0;
    for (int trial = 0; trial < trials; ++trial) {
      wbs::RandomTape tape(uint64_t(c * 100) + trial);
      std::vector<uint64_t> planted;
      auto s = stream::PlantedHeavyHitterStream(1 << 16, m, 2, 2 * eps,
                                                &tape, &planted);
      p = sampling::BernoulliRate(1 << 16, m, eps, 0.1, c);
      sampling::SampledFrequencyEstimator est(p, &tape);
      for (const auto& u : s) est.Offer(u.item);
      kept += est.sampler().kept();
      for (uint64_t id : planted) {
        ++total;
        if (std::abs(est.Estimate(id) - 2 * eps * double(m)) <=
            eps * double(m)) {
          ++found;
        }
      }
    }
    t.Row()
        .Cell(c, 2)
        .Cell(p, 5)
        .Cell(kept / trials)
        .Cell(double(found) / double(total), 2);
  }
  std::printf(
      "reading: C < 1 under-samples (recall drops); C = 4 is safe; larger "
      "C buys nothing but space.\n");
}

void MorrisBaseAblation() {
  bench::Banner(
      "A3: Morris base a (n = 2^18 increments)",
      "register bits ~ log(log(n)/a); relative error ~ sqrt(a/2)");
  bench::Table t({"a", "avg_bits", "avg_rel_err", "pred_err"});
  const uint64_t n = 1 << 18;
  for (double a : {1.0, 0.1, 0.01, 0.001}) {
    double err_sum = 0;
    uint64_t bits_sum = 0;
    const int trials = 8;
    for (int trial = 0; trial < trials; ++trial) {
      wbs::RandomTape tape(uint64_t(a * 10000) + trial);
      tape.set_logging(false);
      counter::MorrisRegister reg(a, &tape);
      for (uint64_t i = 0; i < n; ++i) reg.Increment();
      err_sum += std::abs(reg.Estimate() - double(n)) / double(n);
      bits_sum += reg.SpaceBits();
    }
    t.Row()
        .Cell(a, 3)
        .Cell(bits_sum / trials)
        .Cell(err_sum / trials, 4)
        .Cell(std::sqrt(a / 2), 4);
  }
  std::printf(
      "reading: each 10x reduction of a buys ~sqrt(10)x accuracy for ~3 "
      "extra register bits — the Lemma 2.1 trade.\n");
}

void SisStorageAblation() {
  bench::Banner(
      "A4: SIS matrix storage model (Theorem 1.5's two space bounds)",
      "oracle-derived: 0 matrix bits, SHA per update; materialized: "
      "matrix bits charged, fast updates");
  bench::Table t({"model", "matrix_bits", "us_per_update"});
  crypto::SisParams p;
  p.q = 1000003;
  p.rows = 8;
  p.cols = 64;
  p.beta_inf = 100;
  crypto::RandomOracle oracle(1);
  for (bool materialize : {false, true}) {
    crypto::SisMatrix m(p, oracle, 1);
    if (materialize) m.Materialize();
    crypto::SisSketchVector v(&m);
    const int updates = materialize ? 20000 : 2000;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < updates; ++i) {
      (void)v.Update(size_t(i) % p.cols, 1);
    }
    auto end = std::chrono::steady_clock::now();
    double us =
        std::chrono::duration<double, std::micro>(end - start).count() /
        updates;
    t.Row()
        .Cell(std::string(materialize ? "materialized" : "random-oracle"))
        .Cell(materialize ? p.MatrixBits() : 0)
        .Cell(us, 2);
  }
  std::printf(
      "reading: the random-oracle model trades ~%llu matrix bits for a "
      "SHA-256 evaluation per (row, update) — both bounds of Thm 1.5.\n",
      (unsigned long long)p.MatrixBits());
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::GuessBaseAblation();
  wbs::SamplingConstantAblation();
  wbs::MorrisBaseAblation();
  wbs::SisStorageAblation();
  return 0;
}
