// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E6 (Theorem 1.6): the streaming rank decision problem.
// (a) correctness across (n, k, true rank) in the random-oracle model;
// (b) space ~O(n k log q) vs the dense Theta(n^2 log q) baseline;
// (c) the streaming linearly-independent-basis corollary.

#include "bench/bench_util.h"
#include "common/bits.h"
#include "common/random.h"
#include "crypto/random_oracle.h"
#include "linalg/matrix_zq.h"
#include "linalg/rank_sketch.h"

namespace wbs {
namespace {

constexpr uint64_t kQ = 1000003;

linalg::MatrixZq KnownRank(size_t n, size_t r, wbs::RandomTape* tape) {
  linalg::MatrixZq a(n, r, kQ), b(r, n, kQ);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < r; ++j) a.At(i, j) = tape->UniformInt(kQ);
  }
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < n; ++j) b.At(i, j) = tape->UniformInt(kQ);
  }
  return a.Multiply(b);
}

void Correctness() {
  bench::Banner(
      "E6a: rank decision correctness (random oracle model)",
      "Thm 1.6: 'rank >= k?' decided exactly against a bounded adversary");
  bench::Table t({"n", "k", "true_rank", "trials", "correct"});
  crypto::RandomOracle oracle(1);
  for (size_t n : {16u, 32u, 64u}) {
    for (size_t k : {2u, 4u, 8u}) {
      for (long dr : {-1, 0, +3}) {
        size_t true_rank = size_t(long(k) + dr);
        if (true_rank < 1 || true_rank > n) continue;
        int correct = 0;
        const int trials = 5;
        for (int trial = 0; trial < trials; ++trial) {
          wbs::RandomTape tape(n * 1000 + k * 10 + uint64_t(trial));
          linalg::RankDecisionSketch alg(n, k, kQ, oracle,
                                         n * 100 + k + true_rank * 7 +
                                             uint64_t(trial));
          linalg::MatrixZq a = KnownRank(n, true_rank, &tape);
          for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < n; ++j) {
              if (a.At(i, j) != 0) {
                (void)alg.Update({i, j, int64_t(a.At(i, j))});
              }
            }
          }
          if (alg.Query() == (true_rank >= k)) ++correct;
        }
        t.Row()
            .Cell(uint64_t(n))
            .Cell(uint64_t(k))
            .Cell(uint64_t(true_rank))
            .Cell(trials)
            .Cell(correct);
      }
    }
  }
  std::printf("expected: correct == trials everywhere.\n");
}

void Space() {
  bench::Banner("E6b: sketch space vs dense storage",
                "Thm 1.6: ~O(n k^2) bits (with log q ~ k) vs n^2 log q");
  bench::Table t({"n", "k", "sketch_bits", "dense_bits", "ratio"});
  crypto::RandomOracle oracle(2);
  for (size_t n : {64u, 128u, 256u}) {
    for (size_t k : {2u, 4u, 8u, 16u}) {
      linalg::RankDecisionSketch alg(n, k, kQ, oracle, 1);
      uint64_t dense = n * n * wbs::BitsForUniverse(kQ);
      t.Row()
          .Cell(uint64_t(n))
          .Cell(uint64_t(k))
          .Cell(alg.SpaceBits())
          .Cell(dense)
          .Cell(double(dense) / double(alg.SpaceBits()), 1);
    }
  }
  std::printf("expected shape: ratio ~ n/k.\n");
}

void BasisTracking() {
  bench::Banner(
      "E6c: streaming linearly-independent basis (corollary of Thm 1.6)",
      "compressed rows of d = 2k+2 field elements recover the true rank");
  bench::Table t({"n", "true_rank", "tracked_rank", "space_bits",
                  "dense_bits"});
  crypto::RandomOracle oracle(3);
  wbs::RandomTape tape(4);
  for (size_t n : {32u, 128u}) {
    for (size_t r : {2u, 5u, 8u}) {
      linalg::StreamingBasisTracker tracker(n, r + 2, kQ, oracle,
                                            n * 10 + r);
      // Stream 3r rows from a rank-r row space.
      std::vector<std::vector<int64_t>> basis(r, std::vector<int64_t>(n));
      for (auto& row : basis) {
        for (auto& v : row) v = int64_t(tape.UniformInt(9)) - 4;
      }
      for (size_t rows = 0; rows < 3 * r; ++rows) {
        std::vector<int64_t> row(n, 0);
        for (size_t b = 0; b < r; ++b) {
          int64_t coef = int64_t(tape.UniformInt(7)) - 3;
          for (size_t j = 0; j < n; ++j) row[j] += coef * basis[b][j];
        }
        tracker.OfferRow(row);
      }
      t.Row()
          .Cell(uint64_t(n))
          .Cell(uint64_t(r))
          .Cell(uint64_t(tracker.rank()))
          .Cell(tracker.SpaceBits())
          .Cell(uint64_t(tracker.rank()) * n * wbs::BitsForUniverse(kQ));
    }
  }
  std::printf("expected: tracked_rank == true_rank (w.h.p.), compressed "
              "space << dense basis storage.\n");
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::Correctness();
  wbs::Space();
  wbs::BasisTracking();
  return 0;
}
