// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E12 (Corollary 2.8 / Lemmas 2.6, 2.7): white-box robust
// inner-product estimation. Sweeps eps and workload correlation and reports
// the observed error against the eps * ||f||_1 ||g||_1 budget, plus space.

#include <cmath>

#include "bench/bench_util.h"
#include "common/random.h"
#include "heavyhitters/inner_product.h"
#include "stream/frequency_oracle.h"

namespace wbs {
namespace {

enum class Shape { kOverlapping, kDisjoint, kIdentical };

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kOverlapping: return "overlapping";
    case Shape::kDisjoint: return "disjoint";
    case Shape::kIdentical: return "identical";
  }
  return "?";
}

void Accuracy() {
  bench::Banner(
      "E12a: inner product accuracy vs eps and correlation",
      "Cor 2.8: |<f', g'> - <f, g>| <= eps ||f||_1 ||g||_1 w.p. >= 3/4 in "
      "O(1/eps(log n + log 1/eps) + log log m) bits");
  bench::Table t({"eps", "shape", "true_ip", "estimate", "err/budget",
                  "space_bits"});
  const uint64_t m = 30000;
  for (double eps : {0.05, 0.1, 0.2}) {
    for (Shape shape :
         {Shape::kOverlapping, Shape::kDisjoint, Shape::kIdentical}) {
      wbs::RandomTape tape{uint64_t(eps * 1000) + uint64_t(shape)};
      hh::InnerProductEstimator est(1 << 14, m, m, eps, &tape);
      stream::FrequencyOracle f(1 << 14), g(1 << 14);
      for (uint64_t i = 0; i < m; ++i) {
        uint64_t a = tape.UniformInt(64);
        uint64_t b;
        switch (shape) {
          case Shape::kOverlapping: b = tape.UniformInt(64); break;
          case Shape::kDisjoint: b = 4000 + tape.UniformInt(64); break;
          case Shape::kIdentical: b = a; break;
        }
        est.AddF(a);
        est.AddG(b);
        f.Add(a);
        g.Add(b);
      }
      double budget = 12 * eps * double(f.L1()) * double(g.L1());
      double err = std::abs(est.Estimate() - double(f.InnerProduct(g)));
      t.Row()
          .Cell(eps, 2)
          .Cell(std::string(ShapeName(shape)))
          .Cell(double(f.InnerProduct(g)), 0)
          .Cell(est.Estimate(), 0)
          .Cell(err / budget, 3)
          .Cell(est.SpaceBits());
    }
  }
  std::printf("expected: err/budget <= 1 (usually << 1).\n");
}

void SpaceVsEps() {
  bench::Banner("E12b: space vs eps",
                "Cor 2.8: sample size ~1/eps^2 -> space grows as eps "
                "shrinks, independent of m");
  bench::Table t({"eps", "log2(m)", "space_bits"});
  for (double eps : {0.05, 0.1, 0.2, 0.4}) {
    for (int logm : {14, 18}) {
      const uint64_t m = uint64_t{1} << logm;
      wbs::RandomTape tape{uint64_t(eps * 1000) + uint64_t(logm)};
      hh::InnerProductEstimator est(1 << 14, m, m, eps, &tape);
      for (uint64_t i = 0; i < m; ++i) {
        est.AddF(tape.UniformInt(256));
        est.AddG(tape.UniformInt(256));
      }
      t.Row().Cell(eps, 2).Cell(logm).Cell(est.SpaceBits());
    }
  }
  std::printf(
      "expected shape: space ~1/eps^2 scaling; near-flat across log m "
      "(the sample, not the stream, is stored).\n");
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::Accuracy();
  wbs::SpaceVsEps();
  return 0;
}
