// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E2 (Theorem 1.2): the (phi, eps)-L1 heavy hitter problem
// against T-time bounded white-box adversaries. The CRHF identity
// compression makes the O(1/eps) counter keys cost ~min(log n, 2 log T)
// bits; only the O(1/phi) reportable items pay log n. We sweep the
// adversary budget T and the universe size n and report hash widths, total
// space, and correctness.

#include <cmath>
#include <set>

#include "bench/bench_util.h"
#include "common/random.h"
#include "heavyhitters/crhf_hh.h"
#include "heavyhitters/robust_hh.h"

namespace wbs {
namespace {

void SpaceVsBudget() {
  bench::Banner(
      "E2a: space vs adversary time budget T (n = 2^56, phi=0.3, eps=0.05)",
      "Thm 1.2: space O(1/eps * min(log n, log T) + 1/phi log n + ...)");
  bench::Table t({"log2(T)", "hash_bits", "crhf_bits", "plain_bits",
                  "saving"});
  const uint64_t universe = uint64_t{1} << 56;
  const double phi = 0.3, eps = 0.05;
  const uint64_t m = 60000;
  for (int logt = 5; logt <= 40; logt += 7) {
    uint64_t crhf_sum = 0, plain_sum = 0;
    int hash_bits = 0;
    const int seeds = 5;
    for (int seed = 0; seed < seeds; ++seed) {
      wbs::RandomTape tape1{uint64_t(logt * 10 + seed)};
      wbs::RandomTape tape2{uint64_t(logt * 10 + seed) + 1000};
      tape1.set_logging(false);
      tape2.set_logging(false);
      hh::CrhfHeavyHitters crhf_alg(universe, phi, eps,
                                    uint64_t{1} << logt, &tape1);
      hh::RobustL1HeavyHitters plain_alg(universe, eps, 0.25, &tape2);
      for (uint64_t i = 0; i < m; ++i) {
        uint64_t item = (i * 0x9e3779b97f4a7c15ULL) % universe;
        (void)crhf_alg.Update({item});
        (void)plain_alg.Update({item});
      }
      crhf_sum += crhf_alg.SpaceBits();
      plain_sum += plain_alg.SpaceBits();
      hash_bits = crhf_alg.hash_bits();
    }
    double saving = 1.0 - double(crhf_sum) / double(plain_sum);
    t.Row()
        .Cell(logt)
        .Cell(hash_bits)
        .Cell(crhf_sum / seeds)
        .Cell(plain_sum / seeds)
        .Cell(saving, 3);
  }
  std::printf(
      "expected shape: hash_bits grows ~2 bits per +1 of log T until it\n"
      "clamps at log n = 56. The saving is positive while 2 log T << log n\n"
      "and crosses zero near the clamp — past the crossover a deployment\n"
      "uses plain identities, which is exactly the min(log n, log T) in\n"
      "Theorem 1.2.\n");
}

void CorrectnessUnderBudget() {
  bench::Banner(
      "E2b: (phi, eps) separation quality (phi = 0.2, eps = 0.1)",
      "Thm 1.2: report all phi-heavy, never report below (phi - eps)");
  bench::Table t({"log2(T)", "trials", "heavy_found", "light_reported"});
  const double phi = 0.2, eps = 0.1;
  for (int logt = 10; logt <= 30; logt += 10) {
    int heavy_found = 0, light_reported = 0;
    const int trials = 6;
    for (int trial = 0; trial < trials; ++trial) {
      wbs::RandomTape tape(2200 + uint64_t(100 * logt + trial));
      hh::CrhfHeavyHitters alg(uint64_t{1} << 40, phi, eps,
                               uint64_t{1} << logt, &tape);
      tape.set_logging(false);
      const uint64_t m = 40000;
      for (uint64_t i = 0; i < m; ++i) {
        uint64_t item;
        if (i % 10 < 3) {
          item = 111111;  // 30% of the stream
        } else if (i % 50 == 7) {
          item = 222222;  // 2%
        } else {
          item = 1000000 + (i * 2654435761ULL) % 1000000;
        }
        (void)alg.Update({item});
      }
      for (const auto& wi : alg.Query()) {
        heavy_found += wi.item == 111111 ? 1 : 0;
        light_reported += wi.item == 222222 ? 1 : 0;
      }
    }
    t.Row().Cell(logt).Cell(trials).Cell(heavy_found).Cell(light_reported);
  }
  std::printf("expected: heavy_found == trials, light_reported == 0.\n");
}

void BirthdayAttackFrontier() {
  bench::Banner(
      "E2c: collision cost vs hash width (the 2 log T rule)",
      "Sec 1.2: a T-time adversary cannot find CRHF collisions when the "
      "output width is ~2 log T");
  bench::Table t({"hash_bits", "birthday_work", "collided"});
  for (int bits : {12, 16, 20, 24}) {
    crypto::Sha256Crhf h(7, bits);
    std::set<uint64_t> seen;
    uint64_t work = 0;
    bool collided = false;
    const uint64_t cap = uint64_t{1} << 14;  // the "adversary budget"
    for (uint64_t i = 0; i < cap; ++i) {
      ++work;
      if (!seen.insert(h.HashU64(i)).second) {
        collided = true;
        break;
      }
    }
    t.Row().Cell(bits).Cell(work).Cell(collided);
  }
  std::printf(
      "expected: collisions at ~2^(bits/2) work; none within budget once "
      "bits >= 2 log2(budget).\n");
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::SpaceVsBudget();
  wbs::CorrectnessUnderBudget();
  wbs::BirthdayAttackFrontier();
  return 0;
}
