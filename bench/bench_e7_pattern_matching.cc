// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E7 (Theorem 1.7 / Lemmas 2.24, 2.26 and the Section 2.6
// Karp-Rabin break): (a) the Fermat attack fools Karp-Rabin at every
// poly-size modulus while the discrete-log fingerprint resists; (b) the
// streaming pattern matcher agrees with the exact matcher on adversarial
// and random texts; (c) fingerprint space grows with log T (the group
// modulus), not with the text length.

#include "bench/bench_util.h"
#include "common/random.h"
#include "stream/workload.h"
#include "strings/fingerprint.h"
#include "strings/pattern_match.h"

namespace wbs {
namespace {

void FermatAttack() {
  bench::Banner(
      "E7a: the Fermat attack (Section 2.6)",
      "KR fingerprint is fooled by x^{p-1} = 1; the dlog fingerprint of "
      "Thm 2.5 is not");
  bench::Table t({"kr_mod_bits", "stream_len", "kr_fooled", "dlog_fooled"});
  for (int bits : {8, 10, 12, 14, 16}) {
    wbs::RandomTape tape{uint64_t(bits)};
    strings::KarpRabinParams kr =
        strings::KarpRabinParams::Generate(bits, &tape);
    const size_t len = size_t(kr.p) + 8;
    auto [u, v] = strings::FermatCollision(kr, len);
    strings::KarpRabin fu(kr), fv(kr);
    for (char c : u) fu.Append(uint64_t(uint8_t(c)));
    for (char c : v) fv.Append(uint64_t(uint8_t(c)));
    crypto::DlogParams g = crypto::DlogParams::Generate(40, &tape);
    crypto::DlogFingerprint du(g), dv(g);
    for (char c : u) du.AppendChar(uint64_t(uint8_t(c)), 1);
    for (char c : v) dv.AppendChar(uint64_t(uint8_t(c)), 1);
    t.Row()
        .Cell(bits)
        .Cell(uint64_t(len))
        .Cell(fu.value() == fv.value())
        .Cell(du.value() == dv.value());
  }
  std::printf("expected: kr_fooled always, dlog_fooled never.\n");
}

void MatcherAccuracy() {
  bench::Banner(
      "E7b: Algorithm 6 vs exact matching",
      "Lemma 2.26: all occurrences found w.p. 1 - 1/poly(n)");
  bench::Table t({"pat_len", "period", "text_len", "trials", "exact_match"});
  for (auto [plen, period] : std::vector<std::pair<size_t, size_t>>{
           {4, 2}, {8, 4}, {9, 3}, {12, 6}, {16, 16}}) {
    int agree = 0;
    const int trials = 10;
    for (int trial = 0; trial < trials; ++trial) {
      wbs::RandomTape tape(plen * 131 + period * 7 + uint64_t(trial));
      std::string pattern = stream::PeriodicString(plen, period, 2, &tape);
      size_t true_period = strings::SmallestPeriod(pattern);
      std::vector<size_t> planted;
      for (size_t pos = trial % 3; pos + plen <= 400; pos += plen + 5) {
        planted.push_back(pos);
      }
      std::string text =
          stream::TextWithPlantedOccurrences(400, pattern, planted, 2, &tape);
      crypto::DlogParams g = crypto::DlogParams::Generate(40, &tape);
      strings::PeriodicPatternMatcher alg(pattern, true_period, g, 8);
      for (char c : text) (void)alg.Update({uint64_t(uint8_t(c)), 8});
      auto naive = strings::NaiveFindAll(text, pattern);
      std::vector<uint64_t> expect(naive.begin(), naive.end());
      agree += alg.Query() == expect ? 1 : 0;
    }
    t.Row()
        .Cell(uint64_t(plen))
        .Cell(uint64_t(period))
        .Cell(400)
        .Cell(trials)
        .Cell(agree);
  }
  std::printf("expected: exact_match == trials everywhere.\n");
}

void SpaceVsBudget() {
  bench::Banner(
      "E7c: fingerprint space vs security parameter (log T)",
      "Thm 1.7: O(log T) bits per fingerprint; independent of text length");
  bench::Table t({"group_bits", "text_len", "matcher_bits"});
  for (int gbits : {24, 32, 40, 48}) {
    for (size_t text_len : {1000UL, 100000UL}) {
      wbs::RandomTape tape{uint64_t(gbits)};
      crypto::DlogParams g = crypto::DlogParams::Generate(gbits, &tape);
      strings::PeriodicPatternMatcher alg("abcabcabc", 3, g, 8);
      for (size_t i = 0; i < text_len; ++i) {
        (void)alg.Update({uint64_t('a' + (i % 3)), 8});
      }
      t.Row().Cell(gbits).Cell(uint64_t(text_len)).Cell(alg.SpaceBits());
    }
  }
  std::printf(
      "expected shape: bits scale with group_bits (the log T knob), and "
      "only additively with text length via pending anchors.\n");
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::FermatAttack();
  wbs::MatcherAccuracy();
  wbs::SpaceVsBudget();
  return 0;
}
