// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Experiment E4 (Theorem 1.3 vs Theorem 1.4): vertex neighborhood
// identification. (a) O(n log n) bits for the CRHF algorithm vs Theta(n^2)
// for the deterministic baseline — the randomized-vs-deterministic
// separation; (b) exact agreement of the two on random graphs; (c) the
// OR-Equality reduction instances of the Omega(n^2/log n) lower bound.

#include "bench/bench_util.h"
#include "common/bits.h"
#include "common/random.h"
#include "graph/neighborhood.h"

namespace wbs {
namespace {

void SpaceSeparation() {
  bench::Banner(
      "E4a: space vs n",
      "Thm 1.3: O(n log nT) bits randomized; Thm 1.4: Omega(n^2/log n) "
      "deterministic — quadratic separation");
  bench::Table t({"n", "crhf_bits", "exact_bits", "n^2", "exact/crhf"});
  for (int logn = 6; logn <= 11; ++logn) {
    const uint64_t n = uint64_t{1} << logn;
    wbs::RandomTape tape{uint64_t(logn)};
    graph::CrhfNeighborhoodId crhf_alg(n, 1 << 20, &tape);
    tape.set_logging(false);
    graph::ExactNeighborhoodId exact_alg(n);
    for (uint64_t v = 0; v < n; ++v) {
      std::vector<uint64_t> nbrs;
      uint64_t s = (v % 7 == 0 ? 0 : v) * 0x9e3779b97f4a7c15ULL + 5;
      for (int d = 0; d < 8; ++d) nbrs.push_back(wbs::SplitMix64(&s) % n);
      (void)crhf_alg.Update({v, nbrs});
      (void)exact_alg.Update({v, nbrs});
    }
    t.Row()
        .Cell(n)
        .Cell(crhf_alg.SpaceBits())
        .Cell(exact_alg.SpaceBits())
        .Cell(n * n)
        .Cell(double(exact_alg.SpaceBits()) / double(crhf_alg.SpaceBits()),
              1);
  }
  std::printf(
      "expected shape: exact/crhf ratio grows ~n/log n (factor ~2x per "
      "doubling of n).\n");
}

void Agreement() {
  bench::Banner(
      "E4b: grouping agreement (CRHF vs exact)",
      "Thm 1.3: all identical-neighborhood groups reported w.p. >= 3/4 "
      "(here: exact agreement on every trial)");
  bench::Table t({"n", "trials", "agreements", "groups_found"});
  for (uint64_t n : {64u, 256u, 1024u}) {
    int agreements = 0;
    uint64_t groups = 0;
    const int trials = 5;
    for (int trial = 0; trial < trials; ++trial) {
      wbs::RandomTape tape(n + uint64_t(trial));
      graph::CrhfNeighborhoodId crhf_alg(n, 1 << 20, &tape);
      graph::ExactNeighborhoodId exact_alg(n);
      for (uint64_t v = 0; v < n; ++v) {
        std::vector<uint64_t> nbrs;
        uint64_t pattern = v % 5 == 0 ? 0 : v;
        uint64_t s = pattern * 0x9e3779b97f4a7c15ULL + uint64_t(trial);
        for (int d = 0; d < 6; ++d) nbrs.push_back(wbs::SplitMix64(&s) % n);
        (void)crhf_alg.Update({v, nbrs});
        (void)exact_alg.Update({v, nbrs});
      }
      auto a = crhf_alg.Query();
      auto b = exact_alg.Query();
      agreements += (a == b) ? 1 : 0;
      groups += a.size();
    }
    t.Row().Cell(n).Cell(trials).Cell(agreements).Cell(groups);
  }
}

void OrEqReduction() {
  bench::Banner(
      "E4c: the Theorem 1.4 OR-Equality reduction instance",
      "k = n/log n parallel equalities embed into one neighborhood-id "
      "instance; deterministic algorithms must pay Omega(nk) = "
      "Omega(n^2/log n)");
  bench::Table t({"n", "k", "pairs_equal", "pairs_reported", "correct"});
  for (uint64_t n : {32u, 64u, 128u}) {
    const size_t k = size_t(n / wbs::CeilLog2(n));
    wbs::RandomTape tape(n);
    // Build an instance with exactly one equal pair (the hard regime).
    std::vector<std::vector<uint8_t>> x, y;
    for (size_t i = 0; i < k; ++i) {
      std::vector<uint8_t> xi(n);
      for (auto& b : xi) b = uint8_t(tape.NextWord() & 1);
      std::vector<uint8_t> yi = xi;
      if (i != 0) yi[tape.UniformInt(n)] ^= 1;  // only pair 0 equal
      x.push_back(xi);
      y.push_back(yi);
    }
    auto updates = graph::BuildOrEqualityGraph(x, y, n);
    graph::CrhfNeighborhoodId alg(3 * n, 1 << 20, &tape);
    tape.set_logging(false);
    for (const auto& u : updates) (void)alg.Update(u);
    auto groups = alg.Query();
    // Count reported (u_i, v_i) pairs.
    int reported = 0;
    bool correct = true;
    for (const auto& g : groups) {
      for (uint64_t a : g) {
        if (a < n) {
          for (uint64_t b : g) {
            if (b == a + n) {
              ++reported;
              if (a != 0) correct = false;  // only pair 0 is equal
            }
          }
        }
      }
    }
    if (reported != 1) correct = false;
    t.Row()
        .Cell(n)
        .Cell(uint64_t(k))
        .Cell(1)
        .Cell(reported)
        .Cell(correct);
  }
}

}  // namespace
}  // namespace wbs

int main() {
  wbs::SpaceSeparation();
  wbs::Agreement();
  wbs::OrEqReduction();
  return 0;
}
