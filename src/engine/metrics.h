// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// engine::metrics — the engine's observability primitives: monotonic
// counters, gauges, and fixed-bucket latency histograms, all built on
// relaxed atomics so instrumenting the ingest hot path costs one
// uncontended cache-line RMW per event and never takes a lock.
//
// Naming convention: dotted lowercase paths, unit-suffixed where a unit
// applies — `engine.shard.3.updates_total`, `engine.session.1.valve_wait_us`,
// `engine.worker.0.queue_depth`. Backends report UNPREFIXED per-shard names
// ("epoch", "wire.bytes_out_total"); the engine prefixes them with
// `engine.shard.<id>.` when it assembles a snapshot, so a metric's full name
// always identifies the GLOBAL shard id regardless of where the shard lives.
//
// Snapshot model: `MetricsRegistry::Snapshot()` reads every instrument once
// (relaxed loads; each value is individually atomic, the set is a consistent
// point-in-time sample up to in-flight increments) into plain-value
// `MetricSample`s, collected in a `MetricsSnapshot` that renders as JSONL
// (one object per metric, machine-diffable) or a human-readable table.
//
// Overhead contract: instruments are single relaxed atomic ops. Defining
// WBS_ENGINE_METRICS_DISABLED compiles every mutating instrument method to a
// no-op (the registry still exists, values read as zero) — the baseline the
// `engine_metrics_overhead` bench row compares against. At runtime,
// IngestorOptions::metrics_enabled=false skips instrumentation sites (and
// their clock reads) entirely via a predicted branch.

#ifndef WBS_ENGINE_METRICS_H_
#define WBS_ENGINE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wbs::engine {

/// True unless this build compiled the instruments to no-ops.
#ifdef WBS_ENGINE_METRICS_DISABLED
inline constexpr bool kMetricsCompiled = false;
#else
inline constexpr bool kMetricsCompiled = true;
#endif

/// How DumpMetrics renders a snapshot.
enum class MetricsDumpFormat { kTable = 0, kJsonl = 1 };

// Instruments are hammered from many threads with relaxed RMWs, and sibling
// instruments in a metrics struct are typically updated by DIFFERENT threads
// (e.g. per-worker counters declared side by side). Padding each live
// instrument out to its own cache line trades a few bytes per instrument for
// the elimination of false sharing between neighbours. The no-op build keeps
// empty one-byte classes.
#ifdef WBS_ENGINE_METRICS_DISABLED
#define WBS_ENGINE_METRICS_ALIGN
#else
#define WBS_ENGINE_METRICS_ALIGN alignas(64)
#endif

enum class MetricKind : uint8_t {
  kCounter = 0,   ///< monotonic event count
  kGauge = 1,     ///< instantaneous level (may go down)
  kHistogram = 2  ///< value distribution in power-of-two buckets
};

/// Monotonic event counter. Inc() from any thread, relaxed.
class WBS_ENGINE_METRICS_ALIGN Counter {
 public:
#ifdef WBS_ENGINE_METRICS_DISABLED
  void Inc(uint64_t n = 1) { (void)n; }
  uint64_t Value() const { return 0; }
#else
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
#endif
};

/// Instantaneous level. Set/Add from any thread, relaxed.
class WBS_ENGINE_METRICS_ALIGN Gauge {
 public:
#ifdef WBS_ENGINE_METRICS_DISABLED
  void Set(int64_t v) { (void)v; }
  void Add(int64_t d) { (void)d; }
  int64_t Value() const { return 0; }
#else
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
#endif
};

/// Fixed-bucket histogram over uint64 values (latencies in microseconds,
/// batch sizes, frame bytes). Bucket i counts values of bit width i: bucket
/// 0 holds exactly 0, bucket i >= 1 holds [2^(i-1), 2^i), and the last
/// bucket absorbs everything wider. Record() is three relaxed RMWs and no
/// branches beyond the bit-width computation — cheap enough for per-batch
/// hot-path use.
class WBS_ENGINE_METRICS_ALIGN Histogram {
 public:
  /// 33 buckets: 0, then [1,2), [2,4), ... [2^30, 2^31), then >= 2^31 —
  /// microsecond latencies up to ~36 minutes resolve to a real bucket.
  static constexpr size_t kBuckets = 33;

  /// Upper bound (exclusive) of bucket `i`; ~0 for the overflow bucket.
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 1;
    if (i >= kBuckets - 1) return ~uint64_t{0};
    return uint64_t{1} << i;
  }

#ifdef WBS_ENGINE_METRICS_DISABLED
  void Record(uint64_t v) { (void)v; }
  uint64_t Count() const { return 0; }
  uint64_t Sum() const { return 0; }
  uint64_t BucketCount(size_t) const { return 0; }
#else
  void Record(uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  static size_t BucketOf(uint64_t v) {
    size_t w = 0;
    while (v != 0) {
      ++w;
      v >>= 1;
    }
    return w < kBuckets ? w : kBuckets - 1;
  }

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
#endif
};

/// One metric read out as plain values — what snapshots, the wire codec,
/// and the dump formats all carry. For counters `value` holds the count;
/// for gauges, the level (as int64 in disguise); histograms fill `count`,
/// `sum`, and the per-bucket counts instead.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t value = 0;   ///< counter count / gauge level (bit-cast int64)
  uint64_t count = 0;   ///< histogram: number of recorded values
  uint64_t sum = 0;     ///< histogram: sum of recorded values
  std::vector<uint64_t> buckets;  ///< histogram: per-bucket counts

  int64_t gauge_value() const { return int64_t(value); }

  /// Histogram quantile estimate (q in [0,1]): the upper bound of the
  /// bucket where the cumulative count crosses q. 0 when empty.
  uint64_t ApproxQuantile(double q) const;
};

MetricSample CounterSample(std::string name, const Counter& c);
MetricSample GaugeSample(std::string name, int64_t value);
MetricSample GaugeSample(std::string name, const Gauge& g);
MetricSample HistogramSample(std::string name, const Histogram& h);

/// A point-in-time read of a set of metrics, renderable as JSONL (one
/// object per line: {"metric":...,"type":"counter","value":N} /
/// {"metric":...,"type":"histogram","count":N,"sum":S,"p50":...,
/// "p99":...,"buckets":[...]}) or as an aligned human-readable table.
struct MetricsSnapshot {
  uint64_t uptime_us = 0;
  std::vector<MetricSample> samples;

  /// The sample named exactly `name`, or nullptr.
  const MetricSample* Find(const std::string& name) const;
  /// Counter/gauge value of `name`, or `fallback` when absent.
  uint64_t Value(const std::string& name, uint64_t fallback = 0) const;

  void WriteJsonl(std::ostream& os) const;
  void WriteTable(std::ostream& os) const;
};

/// Appends one sample as a JSON object (no trailing newline) — shared by
/// WriteJsonl and the engine_server stats stream, which adds its own
/// timestamp field before closing the object.
void AppendSampleJson(const MetricSample& sample, std::string* out);

/// Owns named instruments with stable addresses: New* hands out pointers
/// that stay valid for the registry's lifetime (instruments live in deques
/// and are never removed). Registration takes a mutex — do it at setup, not
/// on the hot path; the instruments themselves are lock-free.
class MetricsRegistry {
 public:
  Counter* NewCounter(std::string name);
  Gauge* NewGauge(std::string name);
  Histogram* NewHistogram(std::string name);

  /// Reads every registered instrument into samples (relaxed loads),
  /// name-ordered by registration sequence.
  std::vector<MetricSample> Snapshot() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    T instrument;
  };
  /// Registration order, so Snapshot interleaves kinds as they were
  /// created (keeps per-shard bundles adjacent in dumps).
  struct Slot {
    MetricKind kind;
    const void* instrument;
    const std::string* name;
  };

  mutable std::mutex mu_;
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<Histogram>> histograms_;
  std::vector<Slot> order_;
};

// ---- typed engine wiring ---------------------------------------------------
//
// The per-entity instrument bundles the ingestor hot paths touch. Bundles
// are created lazily (first access registers the instruments under the
// registry mutex) and have stable addresses, so hot paths cache raw
// pointers: the router caches shard bundles per dispatch loop, sessions
// cache their bundle in the session struct.

/// Per-shard ingest instruments (keyed by GLOBAL shard id — they survive
/// a MoveShard re-homing, so updates_total counts the shard's whole life).
struct ShardIngestMetrics {
  Counter* updates_total;
  Counter* batches_total;
  Histogram* apply_us;
  Histogram* batch_size;
};

/// Per-producer-session instruments.
struct SessionMetrics {
  Counter* submits_total;
  Counter* try_rejections_total;
  Counter* valve_waits_total;
  Histogram* valve_wait_us;
  Gauge* tickets_outstanding;
};

/// Router instruments (single router thread).
struct RouterMetrics {
  Counter* dispatches_total;
  Counter* rescatters_total;
  Counter* parked_rounds_total;
  Counter* barriers_total;
  Histogram* barrier_us;
};

/// Per-worker instruments.
struct WorkerMetrics {
  Gauge* queue_depth;
};

/// The engine's registry plus lazily-built bundles. Thread-safe; bundle
/// accessors lock only on first creation path (and a short map lookup
/// after), so call them from setup or slow paths and cache the pointer.
class EngineMetrics {
 public:
  EngineMetrics();

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  RouterMetrics* router() { return &router_; }
  ShardIngestMetrics* shard(size_t id);
  SessionMetrics* session(size_t id);
  WorkerMetrics* worker(size_t id);

  /// How many shard bundles exist (= highest shard id touched + 1).
  size_t shard_count() const;

 private:
  MetricsRegistry registry_;
  RouterMetrics router_;
  mutable std::mutex mu_;
  std::deque<ShardIngestMetrics> shards_;
  std::deque<SessionMetrics> sessions_;
  std::deque<WorkerMetrics> workers_;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_METRICS_H_
