// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/sharded_ingestor.h"

#include <algorithm>

#include "engine/backend.h"
#include "engine/registry.h"

namespace wbs::engine {

Result<std::unique_ptr<ShardedIngestor>> ShardedIngestor::Create(
    const IngestorOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ShardedIngestor: num_shards must be > 0");
  }
  if (options.sketches.empty()) {
    return Status::InvalidArgument(
        "ShardedIngestor: at least one sketch name required");
  }
  if (options.max_queue_batches == 0) {
    return Status::InvalidArgument(
        "ShardedIngestor: max_queue_batches must be > 0");
  }
  for (const std::string& name : options.sketches) {
    if (!SketchRegistry::Global().Has(name)) {
      return Status::NotFound("ShardedIngestor: unknown sketch " + name);
    }
  }
  IngestorOptions opts = options;
  if (opts.num_threads > opts.num_shards) opts.num_threads = opts.num_shards;
  std::unique_ptr<ShardedIngestor> ingestor(
      new ShardedIngestor(std::move(opts)));
  Status s = ingestor->Init();
  if (!s.ok()) return s;
  return ingestor;
}

ShardedIngestor::ShardedIngestor(IngestorOptions options)
    : options_(std::move(options)) {}

Status ShardedIngestor::Init() {
  scatter_.resize(options_.num_shards);
  BackendOptions bopts;
  bopts.num_shards = options_.num_shards;
  bopts.sketches = options_.sketches;
  bopts.config = options_.config;
  bopts.snapshot_min_updates = options_.snapshot_min_updates;
  BackendFactory factory =
      options_.backend ? options_.backend : InProcessBackendFactory();
  auto backend = factory(bopts);
  if (!backend.ok()) return backend.status();
  backend_ = std::move(backend).value();
  if (backend_ == nullptr || backend_->num_shards() != options_.num_shards) {
    return Status::Internal(
        "ShardedIngestor: backend factory returned a mismatched backend");
  }
  caches_.reserve(options_.sketches.size());
  for (size_t i = 0; i < options_.sketches.size(); ++i) {
    auto cache = std::make_unique<MergeCache>();
    cache->folded.resize(options_.num_shards);
    cache->epochs.assign(options_.num_shards, 0);
    caches_.push_back(std::move(cache));
  }
  workers_.reserve(options_.num_threads);
  for (size_t w = 0; w < options_.num_threads; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t w = 0; w < options_.num_threads; ++w) {
    Worker* worker = workers_[w].get();
    worker->thread = std::thread([this, worker] { WorkerLoop(worker); });
  }
  if (!workers_.empty()) {
    router_ = std::thread([this] { RouterLoop(); });
  }
  return Status::OK();
}

ShardedIngestor::~ShardedIngestor() { Finish(); }

void ShardedIngestor::RecordError(const Status& s) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = s;
  has_error_.store(true, std::memory_order_release);
}

Status ShardedIngestor::FirstError() const {
  if (!has_error_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

size_t ShardedIngestor::SketchIndex(const std::string& sketch) const {
  for (size_t i = 0; i < options_.sketches.size(); ++i) {
    if (options_.sketches[i] == sketch) return i;
  }
  return options_.sketches.size();
}

Status ShardedIngestor::ApplyToShard(size_t shard_index,
                                     const stream::TurnstileUpdate* data,
                                     size_t count) {
  return backend_->ApplyBatch(shard_index, data, count);
}

void ShardedIngestor::CompleteTicket(const TicketState& state) {
  std::lock_guard<std::mutex> lock(ticket_mu_);
  // The ticket's sub-batch buffers are freed once applied, so its bytes
  // leave the valve here (physical completion) rather than at the
  // watermark, which may lag behind an out-of-order finisher.
  inflight_bytes_ -= state.bytes;
  done_out_of_order_.push(state.seq);
  while (!done_out_of_order_.empty() &&
         done_out_of_order_.top() == completed_seq_ + 1) {
    done_out_of_order_.pop();
    ++completed_seq_;
    --inflight_tickets_;
  }
  ticket_cv_.notify_all();
}

void ShardedIngestor::RouterLoop() {
  for (;;) {
    PendingTicket ticket;
    {
      std::unique_lock<std::mutex> lock(submit_mu_);
      router_cv_.wait(
          lock, [&] { return router_stop_ || !submit_queue_.empty(); });
      if (submit_queue_.empty()) {
        if (router_stop_) return;
        continue;
      }
      ticket = std::move(submit_queue_.front());
      submit_queue_.pop_front();
    }
    // Forward the pre-scattered sub-batches to their owning workers in
    // shard order. A full worker queue blocks *here* — the router is the
    // thread that absorbs backpressure, so producers never stall in
    // SubmitAsync and the pressure shows up as a later ticket completion.
    size_t dispatched = 0;
    for (size_t shard = 0; shard < ticket.sub.size(); ++shard) {
      if (ticket.sub[shard].empty()) continue;
      Worker* worker = workers_[shard % workers_.size()].get();
      {
        std::unique_lock<std::mutex> lock(worker->mu);
        worker->cv_space.wait(lock, [&] {
          return worker->queue.size() < options_.max_queue_batches;
        });
        worker->queue.push_back(
            Job{shard, std::move(ticket.sub[shard]), ticket.state});
        ++worker->pending;
      }
      worker->cv_work.notify_one();
      ++dispatched;
    }
    if (dispatched == 0) {
      // Nothing to apply (all sub-batches empty): complete directly.
      CompleteTicket(*ticket.state);
    }
  }
}

void ShardedIngestor::WorkerLoop(Worker* worker) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv_work.wait(
          lock, [&] { return worker->stop || !worker->queue.empty(); });
      if (worker->queue.empty()) {
        if (worker->stop) return;
        continue;
      }
      job = std::move(worker->queue.front());
      worker->queue.pop_front();
    }
    worker->cv_space.notify_one();
    // Once a shard sketch has errored, keep draining (so the router never
    // deadlocks on backpressure and every ticket still completes) but stop
    // mutating state.
    if (!has_error_.load(std::memory_order_acquire)) {
      Status s = ApplyToShard(job.shard, job.updates.data(),
                              job.updates.size());
      if (!s.ok()) RecordError(s);
    }
    if (job.ticket != nullptr &&
        job.ticket->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      CompleteTicket(*job.ticket);
    }
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      --worker->pending;
      if (worker->pending == 0) worker->cv_drained.notify_all();
    }
  }
}

Status ShardedIngestor::PreSubmit() const {
  if (finished_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ShardedIngestor: already finished");
  }
  return FirstError();
}

Result<IngestTicket> ShardedIngestor::ApplyInline(size_t count) {
  // Inline mode (no workers): scatter_ already holds the sub-batches; apply
  // them synchronously under submit_mu_ (held by the caller via
  // inline_lock), so concurrent producers serialize and apply order is
  // their arrival order. The returned ticket is the always-complete seq 0 —
  // by the time SubmitAsync returns, the batch IS ingested, and errors
  // surface synchronously. No ticket state is allocated: the unbatched
  // single-producer path stays as cheap as the pre-ticket engine.
  updates_submitted_.fetch_add(count, std::memory_order_acq_rel);
  for (size_t shard = 0; shard < scatter_.size(); ++shard) {
    if (scatter_[shard].empty()) continue;
    Status s = ApplyToShard(shard, scatter_[shard].data(),
                            scatter_[shard].size());
    if (!s.ok()) {
      RecordError(s);
      return s;
    }
  }
  return IngestTicket{};
}

Result<IngestTicket> ShardedIngestor::EnqueueScattered(
    std::vector<std::vector<stream::TurnstileUpdate>> sub, size_t count,
    bool blocking) {
  size_t nonempty = 0;
  for (const auto& v : sub) nonempty += v.empty() ? 0 : 1;
  const uint64_t bytes = uint64_t(count) * sizeof(stream::TurnstileUpdate);

  // Flow-control valves: a ticket-count cap (memory safety, far above the
  // worker-queue backpressure point) and a total-bytes cap on the queued
  // update data. An oversized batch is admitted when nothing is in flight
  // so it can never deadlock the valve. Admission and the reservation of
  // the counters happen under ONE continuous hold of ticket_mu_, so
  // concurrent producers cannot both pass a nearly-full valve on stale
  // counters and collectively overshoot the cap.
  const auto admissible = [&] {
    if (options_.max_inflight_tickets > 0 &&
        inflight_tickets_ >= options_.max_inflight_tickets) {
      return false;
    }
    if (options_.max_inflight_bytes > 0 && inflight_tickets_ > 0 &&
        inflight_bytes_ + bytes > options_.max_inflight_bytes) {
      return false;
    }
    return true;
  };
  {
    std::unique_lock<std::mutex> lock(ticket_mu_);
    if (blocking) {
      ticket_cv_.wait(lock, admissible);
    } else if (!admissible()) {
      return Status::ResourceExhausted(
          "ShardedIngestor: inflight valve full (max_inflight_tickets / "
          "max_inflight_bytes)");
    }
    ++inflight_tickets_;
    inflight_bytes_ += bytes;
  }

  auto state = std::make_shared<TicketState>();
  state->bytes = bytes;
  state->remaining.store(nonempty, std::memory_order_relaxed);

  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    Status pre = PreSubmit();  // recheck: Finish may have won the race
    if (!pre.ok()) {
      // Release the reservation: this ticket will never exist.
      {
        std::lock_guard<std::mutex> tlock(ticket_mu_);
        --inflight_tickets_;
        inflight_bytes_ -= bytes;
      }
      ticket_cv_.notify_all();
      return pre;
    }
    state->seq = seq = ++next_seq_;
    updates_submitted_.fetch_add(count, std::memory_order_acq_rel);
    submit_queue_.push_back(PendingTicket{state, std::move(sub)});
  }
  router_cv_.notify_one();
  return IngestTicket{seq};
}

Result<IngestTicket> ShardedIngestor::SubmitAsync(
    const stream::TurnstileUpdate* updates, size_t count) {
  return SubmitScattered(updates, count, /*blocking=*/true);
}

Result<IngestTicket> ShardedIngestor::TrySubmitAsync(
    const stream::TurnstileUpdate* updates, size_t count) {
  return SubmitScattered(updates, count, /*blocking=*/false);
}

Result<IngestTicket> ShardedIngestor::SubmitScattered(
    const stream::TurnstileUpdate* updates, size_t count, bool blocking) {
  Status pre = PreSubmit();
  if (!pre.ok()) return pre;
  if (count == 0) return IngestTicket{};  // seq 0: always complete

  const size_t num_shards = options_.num_shards;
  if (workers_.empty()) {
    std::lock_guard<std::mutex> lock(submit_mu_);
    Status recheck = PreSubmit();
    if (!recheck.ok()) return recheck;
    if (num_shards == 1) {
      scatter_[0].assign(updates, updates + count);
    } else {
      for (auto& v : scatter_) v.clear();
      for (size_t i = 0; i < count; ++i) {
        scatter_[ShardOf(updates[i].item, num_shards)].push_back(updates[i]);
      }
    }
    return ApplyInline(count);
  }

  // Scatter on the producer's thread — the parallelizable part of
  // submission, and the reason multiple producers scale: hashing `count`
  // items happens outside every engine lock.
  std::vector<std::vector<stream::TurnstileUpdate>> sub(num_shards);
  if (num_shards == 1) {
    sub[0].assign(updates, updates + count);
  } else {
    for (size_t i = 0; i < count; ++i) {
      sub[ShardOf(updates[i].item, num_shards)].push_back(updates[i]);
    }
  }
  return EnqueueScattered(std::move(sub), count, blocking);
}

Result<IngestTicket> ShardedIngestor::SubmitItemsAsync(
    const stream::ItemUpdate* items, size_t count) {
  Status pre = PreSubmit();
  if (!pre.ok()) return pre;
  if (count == 0) return IngestTicket{};

  // Fused conversion + scatter: each item becomes a delta-1 turnstile
  // update directly in its shard's sub-batch (no intermediate copy).
  const size_t num_shards = options_.num_shards;
  if (workers_.empty()) {
    std::lock_guard<std::mutex> lock(submit_mu_);
    Status recheck = PreSubmit();
    if (!recheck.ok()) return recheck;
    for (auto& v : scatter_) v.clear();
    if (num_shards == 1) {
      scatter_[0].reserve(count);
      for (size_t i = 0; i < count; ++i) {
        scatter_[0].push_back({items[i].item, 1});
      }
    } else {
      for (size_t i = 0; i < count; ++i) {
        scatter_[ShardOf(items[i].item, num_shards)].push_back(
            {items[i].item, 1});
      }
    }
    return ApplyInline(count);
  }

  std::vector<std::vector<stream::TurnstileUpdate>> sub(num_shards);
  if (num_shards == 1) {
    sub[0].reserve(count);
    for (size_t i = 0; i < count; ++i) {
      sub[0].push_back({items[i].item, 1});
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      sub[ShardOf(items[i].item, num_shards)].push_back({items[i].item, 1});
    }
  }
  return EnqueueScattered(std::move(sub), count, /*blocking=*/true);
}

Status ShardedIngestor::Wait(const IngestTicket& ticket) const {
  {
    std::unique_lock<std::mutex> lock(ticket_mu_);
    ticket_cv_.wait(lock, [&] { return completed_seq_ >= ticket.seq; });
  }
  return FirstError();
}

Result<bool> ShardedIngestor::TryWait(const IngestTicket& ticket) const {
  bool done;
  {
    std::lock_guard<std::mutex> lock(ticket_mu_);
    done = completed_seq_ >= ticket.seq;
  }
  if (done) {
    Status err = FirstError();
    if (!err.ok()) return err;
  }
  return done;
}

Status ShardedIngestor::Flush() {
  // Wait for every assigned ticket to finish — that drains the submission
  // queue, the router, and the worker queues in one condition (workers even
  // drain after an error, so this terminates).
  {
    std::unique_lock<std::mutex> lock(ticket_mu_);
    ticket_cv_.wait(lock, [&] { return inflight_tickets_ == 0; });
  }
  for (auto& worker : workers_) {
    std::unique_lock<std::mutex> lock(worker->mu);
    worker->cv_drained.wait(lock, [&] { return worker->pending == 0; });
  }
  // Quiescent now (no in-flight tickets, empty queues): catch up any shard
  // whose snapshot lags its live state, so post-Flush queries are exact.
  for (size_t shard = 0; shard < options_.num_shards; ++shard) {
    Status s = backend_->Flush(shard);
    if (!s.ok()) RecordError(s);
  }
  return FirstError();
}

Status ShardedIngestor::Finish() {
  // Close the submission window FIRST, then drain. The CAS makes Finish
  // idempotent; the empty submit_mu_ critical section is a barrier: any
  // producer that passed the finished_ recheck inside EnqueueScattered
  // (or the inline path) holds submit_mu_ until its ticket is enqueued /
  // applied, so after this lock round-trip every accepted ticket is
  // visible to Flush and every later SubmitAsync is rejected — no batch
  // can slip in behind Flush's final snapshot publish.
  bool expected = false;
  if (!finished_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return FirstError();
  }
  { std::lock_guard<std::mutex> lock(submit_mu_); }
  Status s = Flush();
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    router_stop_ = true;
  }
  router_cv_.notify_all();
  if (router_.joinable()) router_.join();
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->stop = true;
    }
    worker->cv_work.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  return s;
}

Status ShardedIngestor::CheckQuiescent() const {
  if (finished_.load(std::memory_order_acquire)) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(ticket_mu_);
    if (inflight_tickets_ != 0) {
      return Status::FailedPrecondition(
          "ShardedIngestor: Flush() before querying shard state");
    }
  }
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    if (worker->pending != 0) {
      return Status::FailedPrecondition(
          "ShardedIngestor: Flush() before querying shard state");
    }
  }
  return Status::OK();
}

Result<SketchSummary> ShardedIngestor::MergedSummary(
    const std::string& sketch) const {
  const size_t index = SketchIndex(sketch);
  if (index == options_.sketches.size()) {
    return Status::NotFound("ShardedIngestor: sketch not configured: " +
                            sketch);
  }
  std::unique_lock<std::mutex> lock;
  auto view = MergedSummaryView(index, &lock);
  if (!view.ok()) return view.status();
  return *view.value();  // copy out while the cache lock is held
}

Result<const SketchSummary*> ShardedIngestor::MergedSummaryView(
    size_t sketch_index, std::unique_lock<std::mutex>* lock) const {
  // A dead pipeline must be visible on the query path, not only at the
  // next Submit/Flush: workers stop mutating state after the first error,
  // so answers would otherwise freeze silently (and a mid-batch failure
  // can leave a shard's sketch group inconsistently applied).
  Status err = FirstError();
  if (!err.ok()) return err;
  if (sketch_index >= options_.sketches.size()) {
    return Status::OutOfRange("ShardedIngestor: sketch index out of range");
  }
  MergeCache& cache = *caches_[sketch_index];
  *lock = std::unique_lock<std::mutex>(cache.mu);

  // Dirty scan: backend epoch reads (an atomic load in process, one small
  // frame over a remote transport) against the epochs the cache folded.
  const size_t num_shards = options_.num_shards;
  std::vector<size_t> dirty;
  for (size_t s = 0; s < num_shards; ++s) {
    auto epoch = backend_->Epoch(s);
    if (!epoch.ok()) return epoch.status();
    if (epoch.value() != cache.epochs[s]) dirty.push_back(s);
  }
  if (dirty.empty() && cache.valid) {
    ++cache.stats.hits;
    return &cache.summary;
  }

  // Grab consistent (snapshot, epoch) pairs for the dirty shards.
  std::vector<std::shared_ptr<const Sketch>> fresh(dirty.size());
  std::vector<uint64_t> fresh_epochs(dirty.size());
  for (size_t d = 0; d < dirty.size(); ++d) {
    auto snap = backend_->Snapshot(dirty[d], sketch_index);
    if (!snap.ok()) return snap.status();
    fresh[d] = snap.value().sketch;
    fresh_epochs[d] = snap.value().epoch;
  }

  // Incremental path: subtract each dirty shard's stale contribution and
  // add the fresh one. Worth it only when most shards are clean; the first
  // Unimplemented disables it for this sketch permanently (completed
  // shard pairs leave `merged` consistent, so falling through to a full
  // rebuild — which ignores `merged` — is always safe).
  bool incremental = cache.valid && cache.merged && cache.try_unmerge &&
                     !dirty.empty() && dirty.size() < num_shards;
  if (incremental) {
    for (size_t d = 0; d < dirty.size() && incremental; ++d) {
      const size_t s = dirty[d];
      if (cache.folded[s] != nullptr) {
        Status st = cache.merged->UnmergeFrom(*cache.folded[s]);
        if (st.code() == Status::Code::kUnimplemented) {
          cache.try_unmerge = false;
          incremental = false;
          break;
        }
        if (!st.ok()) {
          cache.valid = false;
          cache.merged.reset();
          return st;
        }
      }
      if (fresh[d] != nullptr) {
        Status st = cache.merged->MergeFrom(*fresh[d]);
        if (!st.ok()) {
          cache.valid = false;
          cache.merged.reset();
          return st;
        }
      }
      cache.folded[s] = fresh[d];
      cache.epochs[s] = fresh_epochs[d];
    }
  }

  if (!incremental) {
    for (size_t d = 0; d < dirty.size(); ++d) {
      cache.folded[dirty[d]] = fresh[d];
      cache.epochs[dirty[d]] = fresh_epochs[d];
    }
    SketchConfig cfg = options_.config;
    cfg.shard_seed = MergeSeedFor(options_.config);
    auto target =
        SketchRegistry::Global().Create(options_.sketches[sketch_index], cfg);
    if (!target.ok()) return target.status();
    cache.merged = std::move(target).value();
    for (const auto& snap : cache.folded) {
      if (snap == nullptr) continue;
      Status st = cache.merged->MergeFrom(*snap);
      if (!st.ok()) {
        cache.valid = false;
        cache.merged.reset();
        return st;
      }
    }
    ++cache.stats.rebuilds;
  } else {
    ++cache.stats.incremental;
  }

  cache.summary = cache.merged->Summary();
  cache.valid = true;
  return &cache.summary;
}

Result<MergeCacheStats> ShardedIngestor::CacheStats(
    const std::string& sketch) const {
  const size_t index = SketchIndex(sketch);
  if (index == options_.sketches.size()) {
    return Status::NotFound("ShardedIngestor: sketch not configured: " +
                            sketch);
  }
  MergeCache& cache = *caches_[index];
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.stats;
}

uint64_t ShardedIngestor::ShardEpoch(size_t shard) const {
  if (shard >= options_.num_shards) return 0;
  auto epoch = backend_->Epoch(shard);
  return epoch.ok() ? epoch.value() : 0;
}

Result<SketchSummary> ShardedIngestor::ShardSummary(
    size_t shard, const std::string& sketch) const {
  Status quiescent = CheckQuiescent();
  if (!quiescent.ok()) return quiescent;
  if (shard >= options_.num_shards) {
    return Status::OutOfRange("ShardedIngestor: shard index out of range");
  }
  const size_t index = SketchIndex(sketch);
  if (index == options_.sketches.size()) {
    return Status::NotFound("ShardedIngestor: sketch not configured: " +
                            sketch);
  }
  return backend_->LiveSummary(shard, index);
}

uint64_t ShardedIngestor::SpaceBits() const { return backend_->SpaceBits(); }

}  // namespace wbs::engine
