// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/sharded_ingestor.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <limits>

#include "common/numa.h"
#include "common/simd.h"
#include "engine/backend.h"
#include "engine/registry.h"

namespace wbs::engine {

Result<std::unique_ptr<ShardedIngestor>> ShardedIngestor::Create(
    const IngestorOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ShardedIngestor: num_shards must be > 0");
  }
  if (options.sketches.empty()) {
    return Status::InvalidArgument(
        "ShardedIngestor: at least one sketch name required");
  }
  if (options.max_queue_batches == 0) {
    return Status::InvalidArgument(
        "ShardedIngestor: max_queue_batches must be > 0");
  }
  for (const std::string& name : options.sketches) {
    if (!SketchRegistry::Global().Has(name)) {
      return Status::NotFound("ShardedIngestor: unknown sketch " + name);
    }
  }
  if (options.autoscale.enabled && !options.metrics_enabled) {
    return Status::InvalidArgument(
        "ShardedIngestor: autoscaling needs metrics_enabled (the controller "
        "samples per-shard load from the metrics surface)");
  }
  IngestorOptions opts = options;
  if (opts.num_threads > opts.num_shards) opts.num_threads = opts.num_shards;
  if (opts.slots_per_shard == 0) opts.slots_per_shard = 1;
  std::unique_ptr<ShardedIngestor> ingestor(
      new ShardedIngestor(std::move(opts)));
  Status s = ingestor->Init();
  if (!s.ok()) return s;
  return ingestor;
}

ShardedIngestor::ShardedIngestor(IngestorOptions options)
    : options_(std::move(options)) {}

namespace {

using MonoClock = std::chrono::steady_clock;

uint64_t ElapsedUs(MonoClock::time_point t0) {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      MonoClock::now() - t0)
                      .count());
}

}  // namespace

Status ShardedIngestor::Init() {
  start_time_ = MonoClock::now();
  tracer_ = std::make_unique<Tracer>(options_.trace_capacity);
  if (options_.metrics_enabled) {
    metrics_ = std::make_unique<EngineMetrics>();
  }
  BackendOptions bopts;
  bopts.num_shards = options_.num_shards;
  bopts.sketches = options_.sketches;
  bopts.config = options_.config;
  bopts.snapshot_min_updates = options_.snapshot_min_updates;
  BackendFactory factory =
      options_.backend ? options_.backend : InProcessBackendFactory();
  auto backend = factory(bopts);
  if (!backend.ok()) return backend.status();
  backend_ = std::move(backend).value();
  if (backend_ == nullptr || backend_->num_shards() != options_.num_shards) {
    return Status::Internal(
        "ShardedIngestor: backend factory returned a mismatched backend");
  }
  topology_ = std::make_unique<ShardTopology>(ShardTopology::MakeInitial(
      options_.num_shards, options_.slots_per_shard, backend_));
  if (options_.slot_sample_shift > 0) {
    // num_slots is fixed for the engine's lifetime (topology ops only
    // reassign slot owners), so one flat atomic array suffices forever.
    slot_heat_slots_ = topology_->View()->num_slots();
    slot_heat_ = std::make_unique<std::atomic<uint64_t>[]>(slot_heat_slots_);
    slot_sample_mask_ =
        (uint64_t{1} << std::min<size_t>(options_.slot_sample_shift, 63)) - 1;
  }
  caches_.reserve(options_.sketches.size());
  for (size_t i = 0; i < options_.sketches.size(); ++i) {
    caches_.push_back(std::make_unique<MergeCache>());
  }
  sessions_.push_back(std::make_unique<Session>());  // the shared session 0
  if (metrics_ != nullptr) sessions_[0]->metrics = metrics_->session(0);
  session_count_.store(1, std::memory_order_release);
  workers_.reserve(options_.num_threads);
  for (size_t w = 0; w < options_.num_threads; ++w) {
    workers_.push_back(std::make_unique<Worker>());
    if (metrics_ != nullptr) workers_[w]->metrics = metrics_->worker(w);
  }
  // Workers pin to NUMA nodes round-robin INSIDE the thread body, before
  // WorkerLoop allocates or touches any per-worker state, so first-touch
  // places that state on the worker's node. Single-node machines skip the
  // syscall entirely.
  const bool pin_workers =
      options_.numa_pin_workers && wbs::numa::NodeCount() > 1;
  for (size_t w = 0; w < options_.num_threads; ++w) {
    Worker* worker = workers_[w].get();
    worker->thread = std::thread([this, worker, w, pin_workers] {
      if (pin_workers) wbs::numa::PinSelfToNode(w % wbs::numa::NodeCount());
      WorkerLoop(worker);
    });
  }
  if (!workers_.empty()) {
    router_ = std::thread([this] { RouterLoop(); });
  }
  if (supervision_enabled() || options_.failover.checkpoint_interval_ms > 0) {
    supervisor_ = std::thread([this] { SupervisorLoop(); });
  }
  if (options_.autoscale.enabled) {
    autoscaler_ = std::make_unique<Autoscaler>(this, options_.autoscale);
    autoscaler_->Start();  // no-op in manual mode (interval 0)
  }
  return Status::OK();
}

ShardedIngestor::~ShardedIngestor() { Finish(); }

void ShardedIngestor::RecordError(const Status& s) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = s;
  has_error_.store(true, std::memory_order_release);
}

Status ShardedIngestor::FirstError() const {
  if (!has_error_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

size_t ShardedIngestor::SketchIndex(const std::string& sketch) const {
  for (size_t i = 0; i < options_.sketches.size(); ++i) {
    if (options_.sketches[i] == sketch) return i;
  }
  return options_.sketches.size();
}

size_t ShardedIngestor::num_shards() const {
  return topology_->View()->num_shards();
}

Result<ProducerSession> ShardedIngestor::OpenSession() {
  std::lock_guard<std::mutex> lock(submit_mu_);
  Status pre = PreSubmit();
  if (!pre.ok()) return pre;
  sessions_.push_back(std::make_unique<Session>());
  if (metrics_ != nullptr) {
    sessions_.back()->metrics = metrics_->session(sessions_.size() - 1);
  }
  session_count_.store(sessions_.size(), std::memory_order_release);
  return ProducerSession{sessions_.size() - 1};
}

void ShardedIngestor::CompleteTicket(const TicketState& state) {
  if (state.session_metrics != nullptr) {
    state.session_metrics->tickets_outstanding->Add(-1);
  }
  std::lock_guard<std::mutex> lock(ticket_mu_);
  // The ticket's sub-batch buffers are freed once applied, so its bytes
  // leave the valve here (physical completion) rather than at the
  // watermark, which may lag behind an out-of-order finisher.
  inflight_bytes_ -= state.bytes;
  done_out_of_order_.push(state.seq);
  while (!done_out_of_order_.empty() &&
         done_out_of_order_.top() == completed_seq_ + 1) {
    done_out_of_order_.pop();
    ++completed_seq_;
    --inflight_tickets_;
  }
  ticket_cv_.notify_all();
}

void ShardedIngestor::DrainWorkers() {
  for (auto& worker : workers_) {
    std::unique_lock<std::mutex> lock(worker->mu);
    worker->cv_drained.wait(lock, [&] { return worker->pending == 0; });
  }
}

void ShardedIngestor::ReScatter(PendingTicket* ticket,
                                const TopologyView& view) {
  // The ticket was scattered under an older table (its producer raced a
  // topology change). Re-scatter so dispatch always matches the installed
  // topology — a batch must never land on a placement that was handed off.
  // Within-shard order follows the old shards' concatenation, which is a
  // fixed permutation of the producer's batch.
  std::vector<std::vector<stream::TurnstileUpdate>> fresh(view.num_shards());
  for (const auto& old : ticket->sub) {
    for (const stream::TurnstileUpdate& u : old) {
      fresh[view.ShardFor(u.item)].push_back(u);
    }
  }
  ticket->sub = std::move(fresh);
  ticket->routing_generation = view.routing_generation;
  size_t nonempty = 0;
  for (const auto& v : ticket->sub) nonempty += v.empty() ? 0 : 1;
  // Safe: the router owns the ticket and no worker has seen it yet.
  ticket->state->remaining.store(nonempty, std::memory_order_relaxed);
}

void ShardedIngestor::RefreshShardMetricsCache(
    std::vector<ShardIngestMetrics*>* cache, size_t num_shards) {
  if (metrics_ == nullptr) return;
  while (cache->size() < num_shards) {
    cache->push_back(metrics_->shard(cache->size()));
  }
}

void ShardedIngestor::RecordApply(ShardIngestMetrics* m, size_t count,
                                  uint64_t elapsed_us) {
  if (m == nullptr) return;
  m->updates_total->Inc(count);
  m->batches_total->Inc();
  m->apply_us->Record(elapsed_us);
  m->batch_size->Record(count);
}

void ShardedIngestor::RouterLoop() {
  RouterMetrics* rm = metrics_ == nullptr ? nullptr : metrics_->router();
  // Shard-id -> instrument bundle cache, refreshed when the topology grows
  // (router-thread local, so no lock on the dispatch path). shard_health
  // mirrors it for the supervision accounting pointers.
  std::vector<ShardIngestMetrics*> shard_metrics;
  std::vector<ShardHealthState*> shard_health;
  for (;;) {
    PendingTicket ticket;
    {
      std::unique_lock<std::mutex> lock(submit_mu_);
      router_cv_.wait(lock,
                      [&] { return router_stop_ || queued_total_ > 0; });
      if (queued_total_ == 0) {
        if (router_stop_) return;
        continue;
      }
      // Control barriers linearize topology changes at batch boundaries:
      // every data ticket with a smaller sequence number is dispatched
      // first, and none with a larger one before the barrier completes.
      // Fencing on control_seqs_ (not on lane fronts) matters: a barrier
      // parked behind earlier data in its own lane must still hold back
      // later-seq tickets queued in OTHER lanes.
      const uint64_t control_seq =
          control_seqs_.empty() ? std::numeric_limits<uint64_t>::max()
                                : control_seqs_.front();
      // Round-robin across session lanes (fairness: a hot producer's lane
      // cannot monopolize dispatch), FIFO within a lane.
      const size_t n = sessions_.size();
      size_t chosen = n;
      for (size_t k = 0; k < n && chosen == n; ++k) {
        const size_t i = (rr_cursor_ + k) % n;
        const auto& q = sessions_[i]->queue;
        if (q.empty() || q.front().control != nullptr) continue;
        if (q.front().state->seq < control_seq) chosen = i;
      }
      if (chosen == n) {
        for (size_t i = 0; i < n && chosen == n; ++i) {
          const auto& q = sessions_[i]->queue;
          if (!q.empty() && q.front().control != nullptr &&
              q.front().state->seq == control_seq) {
            chosen = i;
          }
        }
      }
      if (chosen == n) {
        // Work is queued but nothing is dispatchable this round — every
        // eligible lane is fenced behind a pending barrier.
        if (rm != nullptr) rm->parked_rounds_total->Inc();
        continue;
      }
      rr_cursor_ = (chosen + 1) % n;
      ticket = std::move(sessions_[chosen]->queue.front());
      sessions_[chosen]->queue.pop_front();
      --queued_total_;
      if (ticket.control != nullptr) control_seqs_.pop_front();
    }

    if (ticket.control != nullptr) {
      // Barrier: everything dispatched so far must be applied before the
      // topology mutates (MoveShard serializes a quiescent shard). The
      // barrier latency includes the worker drain — that wait IS the cost
      // a control op imposes on the pipeline.
      const auto t0 = rm == nullptr ? MonoClock::time_point{}
                                    : MonoClock::now();
      DrainWorkers();
      ticket.control->result = ticket.control->op();
      if (rm != nullptr) {
        rm->barriers_total->Inc();
        rm->barrier_us->Record(ElapsedUs(t0));
      }
      CompleteTicket(*ticket.state);
      continue;
    }

    std::shared_ptr<const TopologyView> view = topology_->View();
    if (ticket.routing_generation != view->routing_generation) {
      if (rm != nullptr) rm->rescatters_total->Inc();
      ReScatter(&ticket, *view);
    }
    RefreshShardMetricsCache(&shard_metrics, view->num_shards());
    // Health state rides on every job regardless of supervision: the
    // applied counters are what make checkpoint exposure windows and
    // recovery loss accounting exact, and explicit Checkpoint()/
    // RecoverShard() work on unsupervised engines too.
    while (shard_health.size() < view->num_shards()) {
      shard_health.push_back(&HealthFor(shard_health.size()));
    }

    // Forward the sub-batches to their owning workers in shard order,
    // placements resolved against the installed table. A full worker queue
    // blocks *here* — the router is the thread that absorbs backpressure,
    // so producers never stall in SubmitAsync and the pressure shows up as
    // a later ticket completion.
    size_t dispatched = 0;
    for (size_t shard = 0; shard < ticket.sub.size(); ++shard) {
      if (ticket.sub[shard].empty()) continue;
      const ShardPlacement placement = view->placements[shard];
      Worker* worker = workers_[shard % workers_.size()].get();
      {
        std::unique_lock<std::mutex> lock(worker->mu);
        worker->cv_space.wait(lock, [&] {
          return worker->queue.size() < options_.max_queue_batches;
        });
        worker->queue.push_back(
            Job{placement.backend, placement.local,
                std::move(ticket.sub[shard]), ticket.state,
                rm == nullptr ? nullptr : shard_metrics[shard],
                shard_health[shard]});
        if (worker->metrics != nullptr) {
          worker->metrics->queue_depth->Set(int64_t(worker->queue.size()));
        }
        ++worker->pending;
      }
      worker->cv_work.notify_one();
      ++dispatched;
    }
    if (rm != nullptr) rm->dispatches_total->Inc();
    if (dispatched == 0) {
      // Nothing to apply (all sub-batches empty): complete directly.
      CompleteTicket(*ticket.state);
    }
  }
}

void ShardedIngestor::WorkerLoop(Worker* worker) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv_work.wait(
          lock, [&] { return worker->stop || !worker->queue.empty(); });
      if (worker->queue.empty()) {
        if (worker->stop) return;
        continue;
      }
      job = std::move(worker->queue.front());
      worker->queue.pop_front();
      if (worker->metrics != nullptr) {
        worker->metrics->queue_depth->Set(int64_t(worker->queue.size()));
      }
    }
    worker->cv_space.notify_one();
    // Once a shard sketch has errored, keep draining (so the router never
    // deadlocks on backpressure and every ticket still completes) but stop
    // mutating state.
    if (!has_error_.load(std::memory_order_acquire)) {
      // Degraded mode: a shard already declared dead drops its sub-batches
      // without touching the backend (fast, and a poisoned loopback channel
      // would only fail again). The drops are counted — they become
      // updates_lost_total at the next recovery.
      if (job.health != nullptr &&
          job.health->health.load(std::memory_order_acquire) ==
              uint8_t(ShardHealth::kDead)) {
        job.health->dropped.fetch_add(job.updates.size(),
                                      std::memory_order_relaxed);
      } else {
        const auto t0 = job.metrics == nullptr ? MonoClock::time_point{}
                                               : MonoClock::now();
        Status s = job.backend->ApplyBatch(job.local, job.updates.data(),
                                           job.updates.size());
        if (s.ok()) {
          if (job.health != nullptr) {
            job.health->applied.fetch_add(job.updates.size(),
                                          std::memory_order_relaxed);
          }
          if (job.metrics != nullptr) {
            RecordApply(job.metrics, job.updates.size(), ElapsedUs(t0));
          }
        } else if (job.health != nullptr && supervision_enabled() &&
                   s.code() == Status::Code::kUnavailable) {
          // Supervised engines degrade instead of poisoning the pipeline:
          // the placement is unreachable, so this batch is dropped (counted)
          // and the shard flagged for the supervisor to confirm and re-home.
          job.health->dropped.fetch_add(job.updates.size(),
                                        std::memory_order_relaxed);
          uint8_t healthy = uint8_t(ShardHealth::kHealthy);
          job.health->health.compare_exchange_strong(
              healthy, uint8_t(ShardHealth::kSuspect),
              std::memory_order_acq_rel);
        } else {
          RecordError(s);
        }
      }
    }
    if (job.ticket != nullptr &&
        job.ticket->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      CompleteTicket(*job.ticket);
    }
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      --worker->pending;
      if (worker->pending == 0) worker->cv_drained.notify_all();
    }
  }
}

Status ShardedIngestor::PreSubmit() const {
  if (finished_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ShardedIngestor: already finished");
  }
  return FirstError();
}

Result<IngestTicket> ShardedIngestor::ApplyInline(const TopologyView& view,
                                                  size_t count) {
  // Inline mode (no workers): scatter_ already holds the sub-batches; apply
  // them synchronously under submit_mu_ (held by the caller), so concurrent
  // producers serialize and apply order is their arrival order. The
  // returned ticket is the always-complete seq 0 — by the time SubmitAsync
  // returns, the batch IS ingested, and errors surface synchronously. No
  // ticket state is allocated: the unbatched single-producer path stays as
  // cheap as the pre-ticket engine.
  updates_submitted_.fetch_add(count, std::memory_order_acq_rel);
  RefreshShardMetricsCache(&inline_shard_metrics_, scatter_.size());
  for (size_t shard = 0; shard < scatter_.size(); ++shard) {
    if (scatter_[shard].empty()) continue;
    const ShardPlacement placement = view.placements[shard];
    ShardHealthState* health = &HealthFor(shard);
    if (health->health.load(std::memory_order_acquire) ==
        uint8_t(ShardHealth::kDead)) {
      health->dropped.fetch_add(scatter_[shard].size(),
                                std::memory_order_relaxed);
      continue;  // degraded: drop, count, keep the other shards flowing
    }
    ShardIngestMetrics* m =
        metrics_ == nullptr ? nullptr : inline_shard_metrics_[shard];
    const auto t0 = m == nullptr ? MonoClock::time_point{} : MonoClock::now();
    Status s = placement.backend->ApplyBatch(
        placement.local, scatter_[shard].data(), scatter_[shard].size());
    if (!s.ok()) {
      if (supervision_enabled() && s.code() == Status::Code::kUnavailable) {
        health->dropped.fetch_add(scatter_[shard].size(),
                                  std::memory_order_relaxed);
        uint8_t healthy = uint8_t(ShardHealth::kHealthy);
        health->health.compare_exchange_strong(healthy,
                                               uint8_t(ShardHealth::kSuspect),
                                               std::memory_order_acq_rel);
        continue;
      }
      RecordError(s);
      return s;
    }
    health->applied.fetch_add(scatter_[shard].size(),
                              std::memory_order_relaxed);
    if (m != nullptr) RecordApply(m, scatter_[shard].size(), ElapsedUs(t0));
  }
  return IngestTicket{};
}

Result<IngestTicket> ShardedIngestor::EnqueueScattered(
    const ProducerSession& session,
    std::vector<std::vector<stream::TurnstileUpdate>> sub, size_t count,
    bool blocking, uint64_t routing_generation) {
  size_t nonempty = 0;
  for (const auto& v : sub) nonempty += v.empty() ? 0 : 1;
  const uint64_t bytes = uint64_t(count) * sizeof(stream::TurnstileUpdate);

  // Validate the session BEFORE the valve: a bad id must fail immediately,
  // not block in the turnstile (holding a FIFO turn) until the backlog
  // drains. Sessions are never removed, so the lock-free count is safe.
  if (session.id >= session_count_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "ShardedIngestor: unknown producer session");
  }
  // Graceful-degradation fail-fast: a NON-BLOCKING submission touching a
  // dead shard is rejected with Unavailable before it takes a valve turn —
  // the producer owns the retry/route-around policy. (Blocking submissions
  // are accepted; the dead shard's share is dropped and counted as loss,
  // matching what happens to batches already in flight when a shard dies.)
  if (!blocking && supervision_enabled()) {
    for (size_t shard = 0; shard < sub.size(); ++shard) {
      if (sub[shard].empty()) continue;
      if (HealthFor(shard).health.load(std::memory_order_acquire) ==
          uint8_t(ShardHealth::kDead)) {
        return Status::Unavailable("ShardedIngestor: shard " +
                                   std::to_string(shard) +
                                   " is dead (awaiting recovery)");
      }
    }
  }
  // Bundle lookup before the valve so the wait itself can be timed. This
  // is per SUBMIT (not per update) and the bundle accessor's lock is a
  // short uncontended index — noise next to the valve + seq mutexes the
  // submit path already takes; the instruments behind it are lock-free.
  SessionMetrics* sm =
      metrics_ == nullptr ? nullptr : metrics_->session(session.id);

  // Flow-control valves: a ticket-count cap (memory safety, far above the
  // worker-queue backpressure point) and a total-bytes cap on the queued
  // update data. An oversized batch is admitted when nothing is in flight
  // so it can never deadlock the valve. Admission is FAIR: blocked
  // producers take a turnstile number and are admitted in arrival order,
  // so a hot producer looping on Submit cannot starve a parked one (its
  // next submission queues behind every earlier waiter). Admission and
  // counter reservation happen under ONE continuous hold of ticket_mu_.
  const auto admissible = [&] {
    if (options_.max_inflight_tickets > 0 &&
        inflight_tickets_ >= options_.max_inflight_tickets) {
      return false;
    }
    if (options_.max_inflight_bytes > 0 && inflight_tickets_ > 0 &&
        inflight_bytes_ + bytes > options_.max_inflight_bytes) {
      return false;
    }
    return true;
  };
  {
    std::unique_lock<std::mutex> lock(ticket_mu_);
    if (blocking) {
      const uint64_t turn = valve_next_++;
      if (valve_serving_ == turn && admissible()) {
        ++valve_serving_;
      } else {
        // Valve pressure: this producer parks. Count the wait and time it
        // (the clock reads happen only on this already-blocking path).
        const auto t0 = sm == nullptr ? MonoClock::time_point{}
                                      : MonoClock::now();
        if (sm != nullptr) sm->valve_waits_total->Inc();
        ticket_cv_.wait(
            lock, [&] { return valve_serving_ == turn && admissible(); });
        ++valve_serving_;
        if (sm != nullptr) sm->valve_wait_us->Record(ElapsedUs(t0));
      }
    } else if (valve_next_ != valve_serving_ || !admissible()) {
      // Fail fast on a full valve — or on queued waiters, which a
      // non-blocking submission must not barge past.
      if (sm != nullptr) sm->try_rejections_total->Inc();
      return Status::ResourceExhausted(
          "ShardedIngestor: inflight valve full (max_inflight_tickets / "
          "max_inflight_bytes)");
    }
    ++inflight_tickets_;
    inflight_bytes_ += bytes;
  }
  // Hand the turnstile to the next waiter (its turn predicate re-checks).
  ticket_cv_.notify_all();

  auto state = std::make_shared<TicketState>();
  state->bytes = bytes;
  state->remaining.store(nonempty, std::memory_order_relaxed);
  state->session_metrics = sm;
  if (sm != nullptr) sm->tickets_outstanding->Add(1);

  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    Status pre = PreSubmit();  // recheck: Finish may have won the race
    if (pre.ok() && session.id >= sessions_.size()) {
      pre = Status::InvalidArgument(
          "ShardedIngestor: unknown producer session");
    }
    if (!pre.ok()) {
      // Release the reservation: this ticket will never exist.
      if (sm != nullptr) sm->tickets_outstanding->Add(-1);
      {
        std::lock_guard<std::mutex> tlock(ticket_mu_);
        --inflight_tickets_;
        inflight_bytes_ -= bytes;
      }
      ticket_cv_.notify_all();
      return pre;
    }
    state->seq = seq = ++next_seq_;
    updates_submitted_.fetch_add(count, std::memory_order_acq_rel);
    // Counted here — not before the valve — so submits_total is exactly
    // the tickets that got a sequence number (rejections and races with
    // Finish have their own accounting).
    if (sm != nullptr) sm->submits_total->Inc();
    PendingTicket ticket;
    ticket.state = state;
    ticket.sub = std::move(sub);
    ticket.routing_generation = routing_generation;
    sessions_[session.id]->queue.push_back(std::move(ticket));
    ++queued_total_;
  }
  router_cv_.notify_one();
  return IngestTicket{seq};
}

Result<IngestTicket> ShardedIngestor::SubmitAsync(
    const ProducerSession& session, const stream::TurnstileUpdate* updates,
    size_t count) {
  return SubmitScattered(session, updates, count, /*blocking=*/true);
}

Result<IngestTicket> ShardedIngestor::TrySubmitAsync(
    const ProducerSession& session, const stream::TurnstileUpdate* updates,
    size_t count) {
  return SubmitScattered(session, updates, count, /*blocking=*/false);
}

void ShardedIngestor::ScatterUpdates(
    const TopologyView& view, const stream::TurnstileUpdate* updates,
    size_t count, std::vector<std::vector<stream::TurnstileUpdate>>* out) {
  std::vector<std::vector<stream::TurnstileUpdate>>& buckets = *out;
  const size_t num_slots = view.num_slots();
  const uint32_t* slot_to_shard = view.slot_to_shard.data();
  const bool pow2 = (num_slots & (num_slots - 1)) == 0;
  const uint64_t mask = uint64_t(num_slots) - 1;
  const simd::KernelDispatch& kern = simd::Kernels();
  uint64_t items8[8];
  uint64_t hashes8[8];
  for (size_t base = 0; base < count; base += 8) {
    const size_t chunk = std::min<size_t>(8, count - base);
    for (size_t k = 0; k < chunk; ++k) items8[k] = updates[base + k].item;
    kern.hash_items(items8, chunk, hashes8);
    for (size_t k = 0; k < chunk; ++k) {
      const size_t slot = pow2 ? size_t(hashes8[k] & mask)
                               : size_t(hashes8[k] % num_slots);
      assert(slot == TopologyView::SlotOf(updates[base + k].item, num_slots) &&
             "SIMD scatter slot diverged from TopologyView::SlotOf");
      buckets[slot_to_shard[slot]].push_back(updates[base + k]);
      SampleSlotHeat(slot);
    }
  }
}

void ShardedIngestor::ScatterItems(
    const TopologyView& view, const stream::ItemUpdate* items, size_t count,
    std::vector<std::vector<stream::TurnstileUpdate>>* out) {
  std::vector<std::vector<stream::TurnstileUpdate>>& buckets = *out;
  const size_t num_slots = view.num_slots();
  const uint32_t* slot_to_shard = view.slot_to_shard.data();
  const bool pow2 = (num_slots & (num_slots - 1)) == 0;
  const uint64_t mask = uint64_t(num_slots) - 1;
  const simd::KernelDispatch& kern = simd::Kernels();
  uint64_t items8[8];
  uint64_t hashes8[8];
  for (size_t base = 0; base < count; base += 8) {
    const size_t chunk = std::min<size_t>(8, count - base);
    for (size_t k = 0; k < chunk; ++k) items8[k] = items[base + k].item;
    kern.hash_items(items8, chunk, hashes8);
    for (size_t k = 0; k < chunk; ++k) {
      const size_t slot = pow2 ? size_t(hashes8[k] & mask)
                               : size_t(hashes8[k] % num_slots);
      assert(slot == TopologyView::SlotOf(items[base + k].item, num_slots) &&
             "SIMD scatter slot diverged from TopologyView::SlotOf");
      buckets[slot_to_shard[slot]].push_back({items[base + k].item, 1});
      SampleSlotHeat(slot);
    }
  }
}

Result<IngestTicket> ShardedIngestor::SubmitScattered(
    const ProducerSession& session, const stream::TurnstileUpdate* updates,
    size_t count, bool blocking) {
  Status pre = PreSubmit();
  if (!pre.ok()) return pre;
  if (count == 0) return IngestTicket{};  // seq 0: always complete

  if (workers_.empty()) {
    std::lock_guard<std::mutex> lock(submit_mu_);
    Status recheck = PreSubmit();
    if (recheck.ok() && session.id >= sessions_.size()) {
      recheck = Status::InvalidArgument(
          "ShardedIngestor: unknown producer session");
    }
    if (!recheck.ok()) return recheck;
    if (metrics_ != nullptr) {
      metrics_->session(session.id)->submits_total->Inc();
    }
    std::shared_ptr<const TopologyView> view = topology_->View();
    scatter_.resize(view->num_shards());
    for (auto& v : scatter_) v.clear();
    if (view->num_shards() == 1) {
      // Power-of-two capacity rounding keeps steadily growing batch sizes
      // from reallocating the reused scratch on every submission (assign
      // grows capacity to exactly n otherwise).
      if (scatter_[0].capacity() < count) {
        scatter_[0].reserve(std::bit_ceil(count));
      }
      scatter_[0].assign(updates, updates + count);
    } else {
      ScatterUpdates(*view, updates, count, &scatter_);
    }
    return ApplyInline(*view, count);
  }

  // Scatter on the producer's thread — the parallelizable part of
  // submission, and the reason multiple producers scale: hashing `count`
  // items happens outside every engine lock. The view's generation rides
  // along so the router can re-scatter if a topology change races us.
  std::shared_ptr<const TopologyView> view = topology_->View();
  const size_t num_shards = view->num_shards();
  std::vector<std::vector<stream::TurnstileUpdate>> sub(num_shards);
  if (num_shards == 1) {
    sub[0].assign(updates, updates + count);
  } else {
    ScatterUpdates(*view, updates, count, &sub);
  }
  return EnqueueScattered(session, std::move(sub), count, blocking,
                          view->routing_generation);
}

Result<IngestTicket> ShardedIngestor::SubmitItemsAsync(
    const ProducerSession& session, const stream::ItemUpdate* items,
    size_t count) {
  Status pre = PreSubmit();
  if (!pre.ok()) return pre;
  if (count == 0) return IngestTicket{};

  // Fused conversion + scatter: each item becomes a delta-1 turnstile
  // update directly in its shard's sub-batch (no intermediate copy).
  if (workers_.empty()) {
    std::lock_guard<std::mutex> lock(submit_mu_);
    Status recheck = PreSubmit();
    if (recheck.ok() && session.id >= sessions_.size()) {
      recheck = Status::InvalidArgument(
          "ShardedIngestor: unknown producer session");
    }
    if (!recheck.ok()) return recheck;
    if (metrics_ != nullptr) {
      metrics_->session(session.id)->submits_total->Inc();
    }
    std::shared_ptr<const TopologyView> view = topology_->View();
    scatter_.resize(view->num_shards());
    for (auto& v : scatter_) v.clear();
    if (view->num_shards() == 1) {
      if (scatter_[0].capacity() < count) {
        scatter_[0].reserve(std::bit_ceil(count));
      }
      for (size_t i = 0; i < count; ++i) {
        scatter_[0].push_back({items[i].item, 1});
      }
    } else {
      ScatterItems(*view, items, count, &scatter_);
    }
    return ApplyInline(*view, count);
  }

  std::shared_ptr<const TopologyView> view = topology_->View();
  const size_t num_shards = view->num_shards();
  std::vector<std::vector<stream::TurnstileUpdate>> sub(num_shards);
  if (num_shards == 1) {
    sub[0].reserve(count);
    for (size_t i = 0; i < count; ++i) {
      sub[0].push_back({items[i].item, 1});
    }
  } else {
    ScatterItems(*view, items, count, &sub);
  }
  return EnqueueScattered(session, std::move(sub), count, /*blocking=*/true,
                          view->routing_generation);
}

// ---- topology operations ---------------------------------------------------

BackendOptions ShardedIngestor::CellOptions(size_t shard) const {
  BackendOptions bopts;
  bopts.num_shards = 1;
  bopts.sketches = options_.sketches;
  // The cell receives the seed derived for the GLOBAL shard id, so the
  // shard samples identically no matter where (or how often) it is homed.
  bopts.config = ShardConfigFor(options_.config, shard);
  bopts.snapshot_min_updates = options_.snapshot_min_updates;
  bopts.shard_seeds_resolved = true;
  return bopts;
}

Status ShardedIngestor::RunAtBarrier(std::function<Status()> op) {
  if (workers_.empty()) {
    // Inline mode: submit_mu_ serializes against every inline apply, so
    // holding it IS the batch barrier.
    std::lock_guard<std::mutex> lock(submit_mu_);
    Status pre = PreSubmit();
    if (!pre.ok()) return pre;
    RouterMetrics* rm = metrics_ == nullptr ? nullptr : metrics_->router();
    const auto t0 = rm == nullptr ? MonoClock::time_point{} : MonoClock::now();
    Status s = op();
    if (rm != nullptr) {
      rm->barriers_total->Inc();
      rm->barrier_us->Record(ElapsedUs(t0));
    }
    return s;
  }
  auto state = std::make_shared<TicketState>();
  auto control = std::make_shared<ControlState>();
  control->op = std::move(op);
  {
    // Barriers bypass the valves (a barrier must never deadlock behind a
    // full valve it is about to help drain) but still count in flight so
    // Flush and the watermark see them.
    std::lock_guard<std::mutex> tlock(ticket_mu_);
    ++inflight_tickets_;
  }
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    Status pre = PreSubmit();
    if (!pre.ok()) {
      {
        std::lock_guard<std::mutex> tlock(ticket_mu_);
        --inflight_tickets_;
      }
      ticket_cv_.notify_all();
      return pre;
    }
    state->seq = seq = ++next_seq_;
    PendingTicket ticket;
    ticket.state = state;
    ticket.control = control;
    sessions_[0]->queue.push_back(std::move(ticket));
    control_seqs_.push_back(seq);
    ++queued_total_;
  }
  router_cv_.notify_one();
  Status wait = Wait(IngestTicket{seq});
  if (!control->result.ok()) return control->result;
  return wait;
}

Status ShardedIngestor::AddShards(size_t n, BackendFactory factory) {
  if (n == 0) return Status::OK();
  return RunAtBarrier([this, n, factory = std::move(factory)] {
    return DoAddShards(n, factory);
  });
}

Status ShardedIngestor::MoveShard(size_t shard, BackendFactory factory) {
  return RunAtBarrier([this, shard, factory = std::move(factory)] {
    return DoMoveShard(shard, factory);
  });
}

Status ShardedIngestor::MoveSlots(size_t source, std::vector<uint32_t> slots,
                                  size_t dest) {
  return RunAtBarrier([this, source, slots = std::move(slots), dest] {
    return DoMoveSlots(source, slots, dest);
  });
}

std::vector<uint64_t> ShardedIngestor::SlotHeat() const {
  std::vector<uint64_t> heat(slot_heat_slots_);
  // Scale sampled counts back to estimated update counts.
  const size_t shift = std::min<size_t>(options_.slot_sample_shift, 63);
  for (size_t slot = 0; slot < slot_heat_slots_; ++slot) {
    heat[slot] = slot_heat_[slot].load(std::memory_order_relaxed) << shift;
  }
  return heat;
}

Status ShardedIngestor::DoAddShards(size_t n, const BackendFactory& factory) {
  Tracer::Span span = tracer_->StartSpan("add_shards");
  span.Attr("count", n);
  std::shared_ptr<const TopologyView> view = topology_->View();
  const BackendFactory f = factory ? factory : InProcessBackendFactory();
  std::vector<ShardPlacement> added;
  for (size_t k = 0; k < n; ++k) {
    const size_t shard = view->num_shards() + k;
    auto cell = f(CellOptions(shard));
    if (!cell.ok()) return cell.status();
    if (cell.value() == nullptr || cell.value()->num_shards() != 1) {
      return Status::Internal(
          "ShardedIngestor: AddShards factory returned a mismatched cell");
    }
    // The views are the cells' only owners (see ShardPlacement).
    std::unique_ptr<ShardBackend> owned = std::move(cell).value();
    std::string endpoint = owned->Endpoint(0);
    added.push_back(ShardPlacement{std::move(owned), 0, std::move(endpoint)});
  }
  std::shared_ptr<const TopologyView> next =
      ShardTopology::WithAddedShards(*view, added);
  topology_->Install(std::move(next));
  span.Attr("generation", topology_->View()->generation);
  span.End();
  return Status::OK();
}

Status ShardedIngestor::DoMoveShard(size_t shard,
                                    const BackendFactory& factory) {
  std::shared_ptr<const TopologyView> view = topology_->View();
  if (shard >= view->num_shards()) {
    return Status::OutOfRange("ShardedIngestor: MoveShard id out of range");
  }
  const ShardPlacement source = view->placements[shard];

  // Each phase runs under its own child span; the span durations (see
  // TraceSpans()) are the single source of timing truth for the handoff.
  Tracer::Span move = tracer_->StartSpan("move_shard");
  move.Attr("shard", shard);

  // 1. The barrier already drained in-flight batches; publish the source's
  //    snapshot so the serialized state is its exact live state.
  Tracer::Span flush = tracer_->StartSpan("move_shard.flush", move.id());
  Status flushed = source.backend->Flush(source.local);
  if (!flushed.ok()) return flushed;
  flush.End();

  // 2. Serialize the shard's sketch group — the wire snapshot states ARE
  //    the handoff transfer format. A shard that never ingested has no
  //    published state; it moves as a fresh cell.
  Tracer::Span serialize = tracer_->StartSpan("move_shard.serialize", move.id());
  std::vector<std::string> frames;
  frames.reserve(options_.sketches.size());
  uint64_t state_bytes = 0;
  bool published = false;
  for (size_t i = 0; i < options_.sketches.size(); ++i) {
    auto snap = source.backend->SnapshotSerialized(source.local, i);
    if (!snap.ok()) return snap.status();
    published |= !snap.value().state.empty();
    state_bytes += snap.value().state.size();
    frames.push_back(std::move(snap.value().state));
  }
  serialize.Attr("state_bytes", state_bytes);
  serialize.End();

  // 3. Build the destination cell and import. Any failure leaves the
  //    topology (and the source placement) exactly as it was.
  Tracer::Span import = tracer_->StartSpan("move_shard.import", move.id());
  const BackendFactory f = factory ? factory : InProcessBackendFactory();
  auto cell = f(CellOptions(shard));
  if (!cell.ok()) return cell.status();
  if (cell.value() == nullptr || cell.value()->num_shards() != 1) {
    return Status::Internal(
        "ShardedIngestor: MoveShard factory returned a mismatched cell");
  }
  if (published) {
    Status imported = cell.value()->ImportShardState(0, frames);
    if (!imported.ok()) return imported;
  }
  import.End();

  // 4. Re-point the shard id. The source cell's state is left in place —
  //    readers holding an older topology view keep folding it until they
  //    re-acquire; new views fold the destination, which now carries the
  //    full history. The retired placement is reclaimed when the last view
  //    referencing it drops (shared ownership, see ShardPlacement).
  std::unique_ptr<ShardBackend> dest = std::move(cell).value();
  std::string endpoint = dest->Endpoint(0);
  auto next = ShardTopology::WithMovedShard(
      *view, shard, ShardPlacement{std::move(dest), 0, std::move(endpoint)});
  if (!next.ok()) return next.status();
  topology_->Install(std::move(next).value());

  move.Attr("state_bytes", state_bytes);
  move.Attr("generation", topology_->View()->generation);
  move.End();
  return Status::OK();
}

Status ShardedIngestor::DoMoveSlots(size_t source,
                                    const std::vector<uint32_t>& slots,
                                    size_t dest) {
  std::shared_ptr<const TopologyView> view = topology_->View();
  if (source >= view->num_shards()) {
    return Status::OutOfRange("ShardedIngestor: MoveSlots source out of range");
  }
  if (dest >= view->num_shards()) {
    return Status::OutOfRange("ShardedIngestor: MoveSlots dest out of range");
  }
  // A migration must never target a shard that cannot serve: the moved
  // slots' traffic would drop into the hole the supervisor is about to
  // (or already did) declare dead. The autoscaler filters destinations by
  // health before deciding; this guard covers direct callers too.
  if (HealthFor(dest).health.load(std::memory_order_acquire) !=
      uint8_t(ShardHealth::kHealthy)) {
    return Status::Unavailable(
        "ShardedIngestor: MoveSlots destination shard is not healthy");
  }

  Tracer::Span move = tracer_->StartSpan("move_slots");
  move.Attr("source", source);
  move.Attr("dest", dest);
  move.Attr("slots", slots.size());

  // Publish the source's exact live state before re-pointing: the barrier
  // already drained its in-flight batches, and the flush pushes its
  // snapshot (the SerializeState path for remote cells) so the frozen
  // prefix of the moved slots' substreams is merge-visible from the first
  // post-move query. No state crosses cells — the source keeps its full
  // history and the destination accumulates the suffix; the merged answer
  // covers every update ever, bit-identically for the linear families.
  const ShardPlacement placement = view->placements[source];
  Tracer::Span flush = tracer_->StartSpan("move_slots.flush", move.id());
  Status flushed = placement.backend->Flush(placement.local);
  if (!flushed.ok()) return flushed;
  flush.End();

  auto next = ShardTopology::WithMovedSlots(*view, slots, dest);
  if (!next.ok()) return next.status();
  topology_->Install(std::move(next).value());

  move.Attr("generation", topology_->View()->generation);
  move.End();
  return Status::OK();
}

// ---- fault tolerance -------------------------------------------------------

ShardedIngestor::ShardHealthState& ShardedIngestor::HealthFor(
    size_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  while (health_.size() <= shard) health_.emplace_back();
  return health_[shard];  // deque: stable for the ingestor's lifetime
}

ShardHealthInfo ShardedIngestor::Health(size_t shard) const {
  ShardHealthState& h = HealthFor(shard);
  ShardHealthInfo info;
  info.health = ShardHealth(h.health.load(std::memory_order_acquire));
  info.missed_heartbeats = h.missed.load(std::memory_order_relaxed);
  const uint64_t applied = h.applied.load(std::memory_order_relaxed);
  const uint64_t at_ckpt =
      h.applied_at_checkpoint.load(std::memory_order_relaxed);
  info.updates_acked_unsnapshotted = applied > at_ckpt ? applied - at_ckpt : 0;
  info.dropped_updates = h.dropped.load(std::memory_order_relaxed);
  info.recoveries = h.recoveries.load(std::memory_order_relaxed);
  info.updates_lost_total = h.lost_total.load(std::memory_order_relaxed);
  return info;
}

Status ShardedIngestor::Checkpoint() {
  return RunAtBarrier([this] { return DoCheckpoint(); });
}

Status ShardedIngestor::DoCheckpoint() {
  Tracer::Span span = tracer_->StartSpan("checkpoint");
  std::shared_ptr<const TopologyView> view = topology_->View();
  size_t snapshotted = 0;
  for (size_t shard = 0; shard < view->num_shards(); ++shard) {
    Status s = DoCheckpointShard(shard, *view);
    if (s.ok()) {
      ++snapshotted;
      continue;
    }
    // An unreachable shard keeps its previous checkpoint — skipping it is
    // the point of checkpointing the others; any non-transport failure
    // aborts (the cut would be inconsistent).
    if (s.code() != Status::Code::kUnavailable) return s;
  }
  span.Attr("shards_snapshotted", snapshotted);
  span.End();
  return Status::OK();
}

Status ShardedIngestor::DoCheckpointShard(size_t shard,
                                          const TopologyView& view) {
  ShardHealthState& h = HealthFor(shard);
  // kSuspect is an unconfirmed verdict (one missed probe, possibly against
  // a just-retired placement) — attempt the cut and let the transport
  // decide; only a confirmed-dead shard is skipped outright.
  if (h.health.load(std::memory_order_acquire) ==
      uint8_t(ShardHealth::kDead)) {
    return Status::Unavailable(
        "ShardedIngestor: shard unreachable; previous checkpoint kept");
  }
  const ShardPlacement placement = view.placements[shard];
  // Publish first so the serialized frames are the shard's exact live
  // state — the caller is at a barrier, so the state is quiescent and the
  // applied counter read below is exactly the cut the frames capture.
  Status flushed = placement.backend->Flush(placement.local);
  if (!flushed.ok()) return flushed;
  ShardCheckpoint ckpt;
  ckpt.frames.reserve(options_.sketches.size());
  for (size_t i = 0; i < options_.sketches.size(); ++i) {
    auto snap = placement.backend->SnapshotSerialized(placement.local, i);
    if (!snap.ok()) return snap.status();
    ckpt.frames.push_back(std::move(snap.value().state));
  }
  const uint64_t applied = h.applied.load(std::memory_order_acquire);
  ckpt.applied = applied;
  ckpt.valid = true;
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    if (checkpoints_.size() <= shard) checkpoints_.resize(shard + 1);
    checkpoints_[shard] = std::move(ckpt);
  }
  h.applied_at_checkpoint.store(applied, std::memory_order_release);
  return Status::OK();
}

Status ShardedIngestor::RecoverShard(size_t shard, BackendFactory factory) {
  return RunAtBarrier([this, shard, factory = std::move(factory)] {
    return DoRecoverShard(shard, factory);
  });
}

Status ShardedIngestor::DoRecoverShard(size_t shard,
                                       const BackendFactory& factory,
                                       const ShardBackend* expected) {
  std::shared_ptr<const TopologyView> view = topology_->View();
  if (shard >= view->num_shards()) {
    return Status::OutOfRange("ShardedIngestor: RecoverShard id out of range");
  }
  if (expected != nullptr &&
      view->placements[shard].backend.get() != expected) {
    // The placement this death verdict referred to was already re-homed by
    // a concurrent drill or manual rescue — recovering again would roll the
    // NEW cell back to an older checkpoint, discarding acked updates. Undo
    // the stale verdict instead: the current placement was never observed
    // unhealthy.
    ShardHealthState& h = HealthFor(shard);
    h.missed.store(0, std::memory_order_release);
    uint8_t dead = uint8_t(ShardHealth::kDead);
    h.health.compare_exchange_strong(dead, uint8_t(ShardHealth::kHealthy),
                                     std::memory_order_acq_rel);
    return Status::OK();
  }
  Tracer::Span span = tracer_->StartSpan("recover_shard");
  span.Attr("shard", shard);

  ShardCheckpoint ckpt;
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    if (shard < checkpoints_.size()) ckpt = checkpoints_[shard];
  }

  // Build the replacement cell and restore the checkpointed cut into it —
  // the MoveShard transfer format, with the dead placement's role played
  // by its last checkpoint. No checkpoint = an empty (but correctly
  // seeded) cell: the shard restarts its history rather than blocking.
  const BackendFactory f =
      factory ? factory
              : (options_.failover.recovery_backend
                     ? options_.failover.recovery_backend
                     : InProcessBackendFactory());
  auto cell = f(CellOptions(shard));
  if (!cell.ok()) return cell.status();
  if (cell.value() == nullptr || cell.value()->num_shards() != 1) {
    return Status::Internal(
        "ShardedIngestor: recovery factory returned a mismatched cell");
  }
  bool restored = false;
  if (ckpt.valid) {
    for (const std::string& frame : ckpt.frames) restored |= !frame.empty();
    if (restored) {
      Status imported = cell.value()->ImportShardState(0, ckpt.frames);
      if (!imported.ok()) return imported;
    }
  }
  std::unique_ptr<ShardBackend> fresh = std::move(cell).value();
  std::string endpoint = fresh->Endpoint(0);
  auto next = ShardTopology::WithMovedShard(
      *view, shard, ShardPlacement{std::move(fresh), 0, std::move(endpoint)});
  if (!next.ok()) return next.status();
  topology_->Install(std::move(next).value());

  // Exact bounded-loss accounting: every update acked after the restored
  // cut, plus everything dropped while degraded, is gone. The baseline
  // resets to the checkpoint the new cell actually carries.
  ShardHealthState& h = HealthFor(shard);
  const uint64_t base = ckpt.valid ? ckpt.applied : 0;
  const uint64_t applied = h.applied.load(std::memory_order_acquire);
  const uint64_t lost = (applied > base ? applied - base : 0) +
                        h.dropped.exchange(0, std::memory_order_acq_rel);
  h.lost_total.fetch_add(lost, std::memory_order_relaxed);
  h.recoveries.fetch_add(1, std::memory_order_relaxed);
  h.applied.store(base, std::memory_order_release);
  h.applied_at_checkpoint.store(base, std::memory_order_release);
  h.missed.store(0, std::memory_order_release);
  h.health.store(uint8_t(ShardHealth::kHealthy), std::memory_order_release);

  span.Attr("updates_lost", lost);
  span.Attr("restored", restored ? 1 : 0);
  span.Attr("generation", topology_->View()->generation);
  span.End();
  return Status::OK();
}

Status ShardedIngestor::FailoverDrill(size_t shard, bool torn,
                                      BackendFactory factory) {
  return RunAtBarrier([this, shard, torn, factory = std::move(factory)] {
    std::shared_ptr<const TopologyView> view = topology_->View();
    if (shard >= view->num_shards()) {
      return Status::OutOfRange(
          "ShardedIngestor: FailoverDrill id out of range");
    }
    Tracer::Span span = tracer_->StartSpan("failover_drill");
    span.Attr("shard", shard);
    // Checkpoint and crash share this one barrier, so the crash loses
    // exactly nothing: the recovery below restores the cut taken here and
    // queued producer batches only dispatch after the drill completes.
    Status ck = DoCheckpointShard(shard, *view);
    if (!ck.ok()) return ck;
    const ShardPlacement placement = view->placements[shard];
    Status crash = placement.backend->InjectCrash(placement.local, torn);
    if (!crash.ok()) return crash;  // Unimplemented for in-process cells
    // Observe the death the way live traffic would: a torn frame must be
    // rejected by the data channel's CRC check (wire.crc_rejects_total), a
    // clean crash by a failed control-channel heartbeat.
    if (torn) {
      (void)placement.backend->ApplyBatch(placement.local, nullptr, 0);
    } else {
      (void)placement.backend->Heartbeat(
          placement.local, options_.failover.heartbeat_timeout_ms);
    }
    HealthFor(shard).health.store(uint8_t(ShardHealth::kDead),
                                  std::memory_order_release);
    Status rec = DoRecoverShard(shard, factory);
    span.End();
    return rec;
  });
}

Status ShardedIngestor::InjectShardCrash(size_t shard, bool torn) {
  std::shared_ptr<const TopologyView> view = topology_->View();
  if (shard >= view->num_shards()) {
    return Status::OutOfRange(
        "ShardedIngestor: InjectShardCrash id out of range");
  }
  const ShardPlacement placement = view->placements[shard];
  return placement.backend->InjectCrash(placement.local, torn);
}

Status ShardedIngestor::InjectShardPartition(size_t shard) {
  std::shared_ptr<const TopologyView> view = topology_->View();
  if (shard >= view->num_shards()) {
    return Status::OutOfRange(
        "ShardedIngestor: InjectShardPartition id out of range");
  }
  const ShardPlacement placement = view->placements[shard];
  return placement.backend->InjectPartition(placement.local);
}

void ShardedIngestor::SupervisorLoop() {
  const FailoverOptions& fo = options_.failover;
  const auto interval = std::chrono::milliseconds(
      fo.heartbeat_interval_ms > 0 ? fo.heartbeat_interval_ms
                                   : fo.checkpoint_interval_ms);
  auto next_checkpoint =
      MonoClock::now() + std::chrono::milliseconds(fo.checkpoint_interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(sup_mu_);
      sup_cv_.wait_for(lock, interval, [&] { return supervisor_stop_; });
      if (supervisor_stop_) return;
    }
    if (has_error_.load(std::memory_order_acquire)) continue;
    const auto now = MonoClock::now();
    if (supervision_enabled()) {
      std::shared_ptr<const TopologyView> view = topology_->View();
      for (size_t shard = 0; shard < view->num_shards(); ++shard) {
        ShardHealthState& h = HealthFor(shard);
        const uint8_t state = h.health.load(std::memory_order_acquire);
        if (state == uint8_t(ShardHealth::kDead)) continue;  // awaiting rescue
        if (now < h.next_probe) continue;  // exponential backoff in effect
        const ShardPlacement placement = view->placements[shard];
        Status hb = placement.backend->Heartbeat(placement.local,
                                                 fo.heartbeat_timeout_ms);
        if (hb.ok()) {
          h.missed.store(0, std::memory_order_release);
          h.backoff_misses = 0;
          h.next_probe = now;
          uint8_t suspect = uint8_t(ShardHealth::kSuspect);
          h.health.compare_exchange_strong(suspect,
                                           uint8_t(ShardHealth::kHealthy),
                                           std::memory_order_acq_rel);
          continue;
        }
        if (topology_->View()->generation != view->generation) {
          // The topology moved under this sweep: the probe may have hit a
          // placement that was retired (and legitimately crashed by a
          // drill) while the sweep ran. The verdict is void — the next
          // sweep re-probes the shard's CURRENT placement.
          continue;
        }
        const uint64_t missed =
            1 + h.missed.fetch_add(1, std::memory_order_acq_rel);
        h.backoff_misses = missed;
        const uint64_t cap = std::max<uint64_t>(1, fo.backoff_max_multiplier);
        const uint64_t mult =
            std::min<uint64_t>(missed < 63 ? uint64_t(1) << missed : cap, cap);
        h.next_probe = now + interval * mult;
        if (!placement.endpoint.empty()) {
          // Per-host failure domain: one missed probe on an endpoint
          // implicates every placement it hosts — a dead machine takes all
          // its shards down together, so they all go suspect now instead
          // of one probe victim per sweep. Each still earns its own death
          // verdict (dead_after_misses consecutive misses of ITS probes).
          for (size_t other = 0; other < view->num_shards(); ++other) {
            if (other == shard) continue;
            if (view->placements[other].endpoint != placement.endpoint) {
              continue;
            }
            uint8_t healthy = uint8_t(ShardHealth::kHealthy);
            if (HealthFor(other).health.compare_exchange_strong(
                    healthy, uint8_t(ShardHealth::kSuspect),
                    std::memory_order_acq_rel)) {
              Tracer::Span hs = tracer_->StartSpan("host_suspect");
              hs.Attr("shard", other);
              hs.Attr("via_shard", shard);
              hs.End();
            }
          }
        }
        if (missed >= fo.dead_after_misses) {
          const uint8_t prev = h.health.exchange(uint8_t(ShardHealth::kDead),
                                                 std::memory_order_acq_rel);
          if (prev != uint8_t(ShardHealth::kDead)) {
            Tracer::Span dead = tracer_->StartSpan("shard_dead");
            dead.Attr("shard", shard);
            dead.Attr("missed_heartbeats", missed);
            dead.End();
            if (fo.auto_recover) {
              // Pin the recovery to the placement that was observed dead:
              // if someone re-homes the shard before the barrier admits
              // this op, it must not roll the fresh cell back. The
              // observed placement's shared_ptr (`placement`) outlives the
              // blocking call, so the pointer cannot be recycled.
              const ShardBackend* observed = placement.backend.get();
              Status rec = RunAtBarrier([this, shard, observed, &fo] {
                return DoRecoverShard(shard, fo.recovery_backend, observed);
              });
              // FailedPrecondition = the engine is finishing; not an error.
              if (!rec.ok() &&
                  rec.code() != Status::Code::kFailedPrecondition) {
                RecordError(rec);
              }
            }
          }
        } else {
          uint8_t healthy = uint8_t(ShardHealth::kHealthy);
          if (h.health.compare_exchange_strong(healthy,
                                               uint8_t(ShardHealth::kSuspect),
                                               std::memory_order_acq_rel)) {
            Tracer::Span sus = tracer_->StartSpan("shard_suspect");
            sus.Attr("shard", shard);
            sus.Attr("missed_heartbeats", missed);
            sus.End();
          }
        }
      }
    }
    if (fo.checkpoint_interval_ms > 0 && MonoClock::now() >= next_checkpoint) {
      Status ck = Checkpoint();
      if (!ck.ok() && ck.code() != Status::Code::kFailedPrecondition) {
        RecordError(ck);
      }
      next_checkpoint = MonoClock::now() +
                        std::chrono::milliseconds(fo.checkpoint_interval_ms);
    }
  }
}

void ShardedIngestor::StopSupervisor() {
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    supervisor_stop_ = true;
  }
  sup_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
}

// ---- completion / flush ----------------------------------------------------

Status ShardedIngestor::Wait(const IngestTicket& ticket) const {
  {
    std::unique_lock<std::mutex> lock(ticket_mu_);
    ticket_cv_.wait(lock, [&] { return completed_seq_ >= ticket.seq; });
  }
  return FirstError();
}

Status ShardedIngestor::WaitFor(const IngestTicket& ticket,
                                uint64_t timeout_ms) const {
  {
    std::unique_lock<std::mutex> lock(ticket_mu_);
    if (!ticket_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [&] { return completed_seq_ >= ticket.seq; })) {
      return Status::DeadlineExceeded(
          "ShardedIngestor: ticket not complete within deadline");
    }
  }
  return FirstError();
}

Result<bool> ShardedIngestor::TryWait(const IngestTicket& ticket) const {
  bool done;
  {
    std::lock_guard<std::mutex> lock(ticket_mu_);
    done = completed_seq_ >= ticket.seq;
  }
  if (done) {
    Status err = FirstError();
    if (!err.ok()) return err;
  }
  return done;
}

Status ShardedIngestor::Flush() {
  // Wait for every assigned ticket to finish — that drains the session
  // queues, the router, and the worker queues in one condition (workers
  // even drain after an error, so this terminates).
  {
    std::unique_lock<std::mutex> lock(ticket_mu_);
    ticket_cv_.wait(lock, [&] { return inflight_tickets_ == 0; });
  }
  DrainWorkers();
  // Quiescent now (no in-flight tickets, empty queues): catch up any shard
  // whose snapshot lags its live state, so post-Flush queries are exact.
  std::shared_ptr<const TopologyView> view = topology_->View();
  for (size_t shard = 0; shard < view->num_shards(); ++shard) {
    const ShardPlacement placement = view->placements[shard];
    Status s = placement.backend->Flush(placement.local);
    if (!s.ok()) {
      // Degraded mode: an unreachable shard's last published snapshot
      // keeps serving (stale-flagged); it must not poison the pipeline.
      if (supervision_enabled() && s.code() == Status::Code::kUnavailable) {
        continue;
      }
      RecordError(s);
    }
  }
  return FirstError();
}

Status ShardedIngestor::Finish() {
  // Close the submission window FIRST, then drain. The CAS makes Finish
  // idempotent; the empty submit_mu_ critical section is a barrier: any
  // producer that passed the finished_ recheck inside EnqueueScattered
  // (or the inline path) holds submit_mu_ until its ticket is enqueued /
  // applied, so after this lock round-trip every accepted ticket is
  // visible to Flush and every later SubmitAsync is rejected — no batch
  // can slip in behind Flush's final snapshot publish.
  bool expected = false;
  if (!finished_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return FirstError();
  }
  // The control threads go first: they must not start new barrier
  // operations while the pipeline tears down. An in-flight one (a reshard
  // decision, auto-recovery, or a periodic checkpoint) drains through the
  // still-running router before the join returns; one attempted after the
  // CAS fails PreSubmit cleanly.
  if (autoscaler_ != nullptr) autoscaler_->Stop();
  StopSupervisor();
  { std::lock_guard<std::mutex> lock(submit_mu_); }
  Status s = Flush();
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    router_stop_ = true;
  }
  router_cv_.notify_all();
  if (router_.joinable()) router_.join();
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->stop = true;
    }
    worker->cv_work.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  return s;
}

Status ShardedIngestor::CheckQuiescent() const {
  if (finished_.load(std::memory_order_acquire)) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(ticket_mu_);
    if (inflight_tickets_ != 0) {
      return Status::FailedPrecondition(
          "ShardedIngestor: Flush() before querying shard state");
    }
  }
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    if (worker->pending != 0) {
      return Status::FailedPrecondition(
          "ShardedIngestor: Flush() before querying shard state");
    }
  }
  return Status::OK();
}

// ---- queries ---------------------------------------------------------------

Result<SketchSummary> ShardedIngestor::MergedSummary(
    const std::string& sketch) const {
  const size_t index = SketchIndex(sketch);
  if (index == options_.sketches.size()) {
    return Status::NotFound("ShardedIngestor: sketch not configured: " +
                            sketch);
  }
  std::unique_lock<std::mutex> lock;
  auto view = MergedSummaryView(index, &lock);
  if (!view.ok()) return view.status();
  return *view.value();  // copy out while the cache lock is held
}

Result<const SketchSummary*> ShardedIngestor::MergedSummaryView(
    size_t sketch_index, std::unique_lock<std::mutex>* lock) const {
  // A dead pipeline must be visible on the query path, not only at the
  // next Submit/Flush: workers stop mutating state after the first error,
  // so answers would otherwise freeze silently (and a mid-batch failure
  // can leave a shard's sketch group inconsistently applied).
  Status err = FirstError();
  if (!err.ok()) return err;
  if (sketch_index >= options_.sketches.size()) {
    return Status::OutOfRange("ShardedIngestor: sketch index out of range");
  }
  // The fold targets one consistent topology view; a change racing this
  // query is picked up on the next call (the generation stamp below makes
  // the cache notice).
  std::shared_ptr<const TopologyView> view = topology_->View();
  MergeCache& cache = *caches_[sketch_index];
  *lock = std::unique_lock<std::mutex>(cache.mu);

  // A stale view (loaded before a change another query already folded)
  // must not roll the cache BACK a generation — reload instead; installs
  // are monotone, so the reloaded view is at least the cache's generation.
  if (view->generation < cache.generation) view = topology_->View();

  // Topology changes invalidate wholesale: the shard count or a placement
  // changed under the cache, so per-shard epoch bookkeeping from the old
  // generation is meaningless (a handoff destination restarts its epochs).
  const size_t num_shards = view->num_shards();
  if (cache.generation != view->generation) {
    cache.generation = view->generation;
    cache.folded.assign(num_shards, nullptr);
    cache.epochs.assign(num_shards, 0);
    cache.valid = false;
    cache.merged.reset();
  }

  // Dirty scan: backend epoch reads (an atomic load in process, one small
  // frame over a remote transport) against the epochs the cache folded.
  // With supervision on, an unreachable shard does NOT fail the query —
  // its last folded snapshot keeps answering and the summary is flagged
  // stale until the shard recovers (the recovery's generation bump then
  // forces a fresh fold, which clears the flag).
  bool unreachable = false;
  std::vector<size_t> dirty;
  for (size_t s = 0; s < num_shards; ++s) {
    const ShardPlacement placement = view->placements[s];
    auto epoch = placement.backend->Epoch(placement.local);
    if (!epoch.ok()) {
      if (supervision_enabled() &&
          epoch.status().code() == Status::Code::kUnavailable) {
        unreachable = true;
        continue;  // serve the shard's last folded state
      }
      return epoch.status();
    }
    if (epoch.value() != cache.epochs[s]) dirty.push_back(s);
  }
  if (dirty.empty() && cache.valid) {
    ++cache.hits;
    cache.summary.stale = unreachable;  // recomputed on every serve
    return &cache.summary;
  }

  // Grab consistent (snapshot, epoch) pairs for the dirty shards.
  std::vector<std::shared_ptr<const Sketch>> fresh(dirty.size());
  std::vector<uint64_t> fresh_epochs(dirty.size());
  for (size_t d = 0; d < dirty.size(); ++d) {
    const ShardPlacement placement = view->placements[dirty[d]];
    auto snap = placement.backend->Snapshot(placement.local, sketch_index);
    if (!snap.ok()) {
      if (supervision_enabled() &&
          snap.status().code() == Status::Code::kUnavailable) {
        // The shard died between the epoch read and the snapshot fetch:
        // keep its previous fold (a no-op refold below) and flag staleness.
        unreachable = true;
        fresh[d] = cache.folded[dirty[d]];
        fresh_epochs[d] = cache.epochs[dirty[d]];
        continue;
      }
      return snap.status();
    }
    fresh[d] = snap.value().sketch;
    fresh_epochs[d] = snap.value().epoch;
  }

  // Incremental path: subtract each dirty shard's stale contribution and
  // add the fresh one. Worth it only when most shards are clean; the first
  // Unimplemented disables it for this sketch permanently (completed
  // shard pairs leave `merged` consistent, so falling through to a full
  // rebuild — which ignores `merged` — is always safe).
  bool incremental = cache.valid && cache.merged && cache.try_unmerge &&
                     !dirty.empty() && dirty.size() < num_shards;
  if (incremental) {
    for (size_t d = 0; d < dirty.size() && incremental; ++d) {
      const size_t s = dirty[d];
      if (cache.folded[s] != nullptr) {
        Status st = cache.merged->UnmergeFrom(*cache.folded[s]);
        if (st.code() == Status::Code::kUnimplemented) {
          cache.try_unmerge = false;
          incremental = false;
          break;
        }
        if (!st.ok()) {
          cache.valid = false;
          cache.merged.reset();
          return st;
        }
      }
      if (fresh[d] != nullptr) {
        Status st = cache.merged->MergeFrom(*fresh[d]);
        if (!st.ok()) {
          cache.valid = false;
          cache.merged.reset();
          return st;
        }
      }
      cache.folded[s] = fresh[d];
      cache.epochs[s] = fresh_epochs[d];
    }
  }

  if (!incremental) {
    for (size_t d = 0; d < dirty.size(); ++d) {
      cache.folded[dirty[d]] = fresh[d];
      cache.epochs[dirty[d]] = fresh_epochs[d];
    }
    SketchConfig cfg = options_.config;
    cfg.shard_seed = MergeSeedFor(options_.config);
    auto target =
        SketchRegistry::Global().Create(options_.sketches[sketch_index], cfg);
    if (!target.ok()) return target.status();
    cache.merged = std::move(target).value();
    for (const auto& snap : cache.folded) {
      if (snap == nullptr) continue;
      Status st = cache.merged->MergeFrom(*snap);
      if (!st.ok()) {
        cache.valid = false;
        cache.merged.reset();
        return st;
      }
    }
    ++cache.rebuilds;
  } else {
    ++cache.incremental;
  }

  cache.summary = cache.merged->Summary();
  cache.summary.stale = unreachable;
  cache.valid = true;
  return &cache.summary;
}

namespace {

MetricSample RawCounter(std::string name, uint64_t value) {
  MetricSample s;
  s.name = std::move(name);
  s.kind = MetricKind::kCounter;
  s.value = value;
  return s;
}

}  // namespace

MetricsSnapshot ShardedIngestor::Metrics() const {
  MetricsSnapshot snap;
  snap.uptime_us = ElapsedUs(start_time_);

  // 1. The registered engine.* instruments (relaxed loads, no locks).
  if (metrics_ != nullptr) {
    snap.samples = metrics_->registry().Snapshot();
  }

  // 2. Derived health gauges. The valve/inflight levels live under
  //    ticket_mu_ (they are the turnstile's bookkeeping, not instruments);
  //    one short lock reads them consistently.
  snap.samples.push_back(
      GaugeSample("engine.uptime_us", int64_t(snap.uptime_us)));
  snap.samples.push_back(
      RawCounter("engine.updates_submitted_total", updates_submitted()));
  {
    std::lock_guard<std::mutex> lock(ticket_mu_);
    snap.samples.push_back(
        GaugeSample("engine.inflight_tickets", int64_t(inflight_tickets_)));
    snap.samples.push_back(
        GaugeSample("engine.inflight_bytes", int64_t(inflight_bytes_)));
    snap.samples.push_back(GaugeSample(
        "engine.valve.waiters", int64_t(valve_next_ - valve_serving_)));
  }
  std::shared_ptr<const TopologyView> view = topology_->View();
  snap.samples.push_back(
      GaugeSample("engine.topology.generation", int64_t(view->generation)));
  snap.samples.push_back(
      GaugeSample("engine.topology.num_shards", int64_t(view->num_shards())));

  // 3. Per-shard ingest rate, derived from the shard counters and uptime.
  if (metrics_ != nullptr && snap.uptime_us > 0) {
    const size_t tracked = metrics_->shard_count();
    for (size_t s = 0; s < tracked; ++s) {
      const uint64_t updates = metrics_->shard(s)->updates_total->Value();
      const uint64_t per_sec = updates * 1000000 / snap.uptime_us;
      snap.samples.push_back(
          GaugeSample("engine.shard." + std::to_string(s) + ".updates_per_sec",
                      int64_t(per_sec)));
    }
  }

  // 4. Per-shard backend samples (epoch, snapshot lag, serialize latency;
  //    wire traffic for remote cells), prefixed with the GLOBAL shard id,
  //    plus the health/failover surface. A shard whose backend cannot
  //    report (e.g. a torn-down remote channel) is skipped rather than
  //    failing the whole snapshot — observability must degrade, not block —
  //    but the failed poll is COUNTED (metrics_errors_total): a placement
  //    that stops reporting is itself a signal.
  uint64_t recoveries_total = 0;
  uint64_t updates_lost_total = 0;
  for (size_t s = 0; s < view->num_shards(); ++s) {
    const ShardPlacement placement = view->placements[s];
    const std::string prefix = "engine.shard." + std::to_string(s) + ".";
    auto samples = placement.backend->Metrics(placement.local);
    if (!samples.ok()) {
      HealthFor(s).metrics_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      for (MetricSample& sample : samples.value()) {
        sample.name = prefix + sample.name;
        snap.samples.push_back(std::move(sample));
      }
    }
    const ShardHealthInfo info = Health(s);
    recoveries_total += info.recoveries;
    updates_lost_total += info.updates_lost_total;
    snap.samples.push_back(
        GaugeSample(prefix + "health", int64_t(info.health)));
    snap.samples.push_back(GaugeSample(prefix + "missed_heartbeats",
                                       int64_t(info.missed_heartbeats)));
    snap.samples.push_back(
        GaugeSample(prefix + "updates_acked_unsnapshotted",
                    int64_t(info.updates_acked_unsnapshotted)));
    snap.samples.push_back(GaugeSample(prefix + "dropped_updates",
                                       int64_t(info.dropped_updates)));
    snap.samples.push_back(
        RawCounter(prefix + "recoveries_total", info.recoveries));
    snap.samples.push_back(
        RawCounter(prefix + "updates_lost_total", info.updates_lost_total));
    snap.samples.push_back(RawCounter(
        prefix + "metrics_errors_total",
        HealthFor(s).metrics_errors.load(std::memory_order_relaxed)));
  }
  snap.samples.push_back(
      RawCounter("engine.failover.recoveries_total", recoveries_total));
  snap.samples.push_back(
      RawCounter("engine.failover.updates_lost_total", updates_lost_total));

  // 5. Per-sketch merge-cache counters — read from the caches' own
  //    bookkeeping under their mutexes (the query path maintains them; no
  //    double accounting).
  for (size_t i = 0; i < options_.sketches.size(); ++i) {
    uint64_t hits = 0;
    uint64_t incremental = 0;
    uint64_t rebuilds = 0;
    {
      MergeCache& cache = *caches_[i];
      std::lock_guard<std::mutex> lock(cache.mu);
      hits = cache.hits;
      incremental = cache.incremental;
      rebuilds = cache.rebuilds;
    }
    const std::string prefix =
        "engine.sketch." + options_.sketches[i] + ".merge_cache.";
    snap.samples.push_back(RawCounter(prefix + "hits_total", hits));
    snap.samples.push_back(
        RawCounter(prefix + "incremental_total", incremental));
    snap.samples.push_back(RawCounter(prefix + "rebuilds_total", rebuilds));
  }
  return snap;
}

void ShardedIngestor::DumpMetrics(std::ostream& os,
                                  MetricsDumpFormat format) const {
  MetricsSnapshot snap = Metrics();
  if (format == MetricsDumpFormat::kJsonl) {
    snap.WriteJsonl(os);
  } else {
    snap.WriteTable(os);
  }
}

uint64_t ShardedIngestor::ShardEpoch(size_t shard) const {
  std::shared_ptr<const TopologyView> view = topology_->View();
  if (shard >= view->num_shards()) return 0;
  const ShardPlacement placement = view->placements[shard];
  auto epoch = placement.backend->Epoch(placement.local);
  return epoch.ok() ? epoch.value() : 0;
}

Result<SketchSummary> ShardedIngestor::ShardSummary(
    size_t shard, const std::string& sketch) const {
  Status quiescent = CheckQuiescent();
  if (!quiescent.ok()) return quiescent;
  std::shared_ptr<const TopologyView> view = topology_->View();
  if (shard >= view->num_shards()) {
    return Status::OutOfRange("ShardedIngestor: shard index out of range");
  }
  const size_t index = SketchIndex(sketch);
  if (index == options_.sketches.size()) {
    return Status::NotFound("ShardedIngestor: sketch not configured: " +
                            sketch);
  }
  const ShardPlacement placement = view->placements[shard];
  return placement.backend->LiveSummary(placement.local, index);
}

uint64_t ShardedIngestor::SpaceBits() const {
  // Sum each backend hosting the current topology once. A monolithic
  // backend retains (and counts) the state of shards that were moved out
  // of it — that state stays merge-visible to readers of older views.
  std::shared_ptr<const TopologyView> view = topology_->View();
  std::vector<const ShardBackend*> seen;
  uint64_t bits = 0;
  for (const ShardPlacement& placement : view->placements) {
    if (std::find(seen.begin(), seen.end(), placement.backend.get()) !=
        seen.end()) {
      continue;
    }
    seen.push_back(placement.backend.get());
    bits += placement.backend->SpaceBits();
  }
  return bits;
}

}  // namespace wbs::engine
