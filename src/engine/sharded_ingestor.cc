// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/sharded_ingestor.h"

#include "engine/registry.h"

namespace wbs::engine {
namespace {

constexpr uint64_t kShardSeedSalt = 0x5ea5ea5ea5ea5ea5ULL;
constexpr uint64_t kMergeSeedSalt = 0x3e63e63e63e63e63ULL;

uint64_t DeriveSeed(uint64_t seed, uint64_t salt, uint64_t index) {
  uint64_t s = seed ^ salt ^ (index * 0xd1342543de82ef95ULL);
  return SplitMix64(&s);
}

}  // namespace

Result<std::unique_ptr<ShardedIngestor>> ShardedIngestor::Create(
    const IngestorOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ShardedIngestor: num_shards must be > 0");
  }
  if (options.sketches.empty()) {
    return Status::InvalidArgument(
        "ShardedIngestor: at least one sketch name required");
  }
  if (options.max_queue_batches == 0) {
    return Status::InvalidArgument(
        "ShardedIngestor: max_queue_batches must be > 0");
  }
  for (const std::string& name : options.sketches) {
    if (!SketchRegistry::Global().Has(name)) {
      return Status::NotFound("ShardedIngestor: unknown sketch " + name);
    }
  }
  IngestorOptions opts = options;
  if (opts.num_threads > opts.num_shards) opts.num_threads = opts.num_shards;
  std::unique_ptr<ShardedIngestor> ingestor(
      new ShardedIngestor(std::move(opts)));
  Status s = ingestor->Init();
  if (!s.ok()) return s;
  return ingestor;
}

ShardedIngestor::ShardedIngestor(IngestorOptions options)
    : options_(std::move(options)) {}

Status ShardedIngestor::Init() {
  shards_.resize(options_.num_shards);
  scatter_.resize(options_.num_shards);
  for (size_t shard = 0; shard < options_.num_shards; ++shard) {
    SketchConfig cfg = options_.config;
    cfg.shard_seed = DeriveSeed(options_.config.seed, kShardSeedSalt, shard);
    for (const std::string& name : options_.sketches) {
      auto sketch = SketchRegistry::Global().Create(name, cfg);
      if (!sketch.ok()) return sketch.status();
      shards_[shard].sketches.push_back(std::move(sketch).value());
    }
  }
  workers_.reserve(options_.num_threads);
  for (size_t w = 0; w < options_.num_threads; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t w = 0; w < options_.num_threads; ++w) {
    Worker* worker = workers_[w].get();
    worker->thread = std::thread([this, worker] { WorkerLoop(worker); });
  }
  return Status::OK();
}

ShardedIngestor::~ShardedIngestor() { Finish(); }

void ShardedIngestor::RecordError(const Status& s) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = s;
  has_error_.store(true, std::memory_order_release);
}

Status ShardedIngestor::FirstError() const {
  if (!has_error_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

Status ShardedIngestor::ApplyToShard(size_t shard_index,
                                     const stream::TurnstileUpdate* data,
                                     size_t count) {
  Shard& shard = shards_[shard_index];
  // Aggregate once per shard batch; every weight-equivalent sketch in the
  // shard's group consumes the shared result instead of re-hashing the
  // batch, which is where most of the engine's batching win comes from.
  auto [effective, has_negative] =
      AggregateUpdates(data, count, &shard.agg, &shard.agg_index);
  UpdateBatch batch{data,           count,     shard.agg.data(),
                    shard.agg.size(), effective, has_negative};
  for (auto& sketch : shard.sketches) {
    Status s = sketch->ApplyBatch(batch);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void ShardedIngestor::WorkerLoop(Worker* worker) {
  for (;;) {
    std::pair<size_t, std::vector<stream::TurnstileUpdate>> job;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv_work.wait(
          lock, [&] { return worker->stop || !worker->queue.empty(); });
      if (worker->queue.empty()) {
        if (worker->stop) return;
        continue;
      }
      job = std::move(worker->queue.front());
      worker->queue.pop_front();
    }
    worker->cv_space.notify_one();
    // Once a shard sketch has errored, keep draining (so the producer never
    // deadlocks on backpressure) but stop mutating state.
    if (!has_error_.load(std::memory_order_acquire)) {
      Status s = ApplyToShard(job.first, job.second.data(), job.second.size());
      if (!s.ok()) RecordError(s);
    }
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      --worker->pending;
      if (worker->pending == 0) worker->cv_drained.notify_all();
    }
  }
}

Status ShardedIngestor::PreSubmit() const {
  if (finished_) {
    return Status::FailedPrecondition("ShardedIngestor: already finished");
  }
  return FirstError();
}

Status ShardedIngestor::Dispatch(size_t count) {
  updates_submitted_ += count;
  const size_t num_shards = options_.num_shards;

  if (workers_.empty()) {
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (scatter_[shard].empty()) continue;
      Status s =
          ApplyToShard(shard, scatter_[shard].data(), scatter_[shard].size());
      if (!s.ok()) {
        RecordError(s);
        return s;
      }
    }
    return Status::OK();
  }

  for (size_t shard = 0; shard < num_shards; ++shard) {
    if (scatter_[shard].empty()) continue;
    Worker* worker = workers_[shard % workers_.size()].get();
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv_space.wait(lock, [&] {
        return worker->queue.size() < options_.max_queue_batches;
      });
      worker->queue.emplace_back(shard, std::move(scatter_[shard]));
      ++worker->pending;
    }
    worker->cv_work.notify_one();
    scatter_[shard] = {};
  }
  return Status::OK();
}

Status ShardedIngestor::Submit(const stream::TurnstileUpdate* updates,
                               size_t count) {
  Status pre = PreSubmit();
  if (!pre.ok()) return pre;
  if (count == 0) return Status::OK();

  const size_t num_shards = options_.num_shards;
  if (num_shards == 1) {
    scatter_[0].assign(updates, updates + count);
  } else {
    for (auto& v : scatter_) v.clear();
    for (size_t i = 0; i < count; ++i) {
      scatter_[ShardOf(updates[i].item, num_shards)].push_back(updates[i]);
    }
  }
  return Dispatch(count);
}

Status ShardedIngestor::SubmitItems(const stream::ItemUpdate* items,
                                    size_t count) {
  Status pre = PreSubmit();
  if (!pre.ok()) return pre;
  if (count == 0) return Status::OK();

  // Fused conversion + scatter: each item becomes a delta-1 turnstile
  // update directly in its shard's sub-batch (no intermediate copy).
  const size_t num_shards = options_.num_shards;
  for (auto& v : scatter_) v.clear();
  if (num_shards == 1) {
    scatter_[0].reserve(count);
    for (size_t i = 0; i < count; ++i) {
      scatter_[0].push_back({items[i].item, 1});
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      scatter_[ShardOf(items[i].item, num_shards)].push_back(
          {items[i].item, 1});
    }
  }
  return Dispatch(count);
}

Status ShardedIngestor::Flush() {
  for (auto& worker : workers_) {
    std::unique_lock<std::mutex> lock(worker->mu);
    worker->cv_drained.wait(lock, [&] { return worker->pending == 0; });
  }
  return FirstError();
}

Status ShardedIngestor::Finish() {
  if (finished_) return FirstError();
  Status s = Flush();
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->stop = true;
    }
    worker->cv_work.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  finished_ = true;
  return s;
}

Status ShardedIngestor::CheckQuiescent() const {
  if (finished_) return Status::OK();
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    if (worker->pending != 0) {
      return Status::FailedPrecondition(
          "ShardedIngestor: Flush() before querying summaries");
    }
  }
  return Status::OK();
}

Result<SketchSummary> ShardedIngestor::MergedSummary(
    const std::string& sketch) const {
  Status quiescent = CheckQuiescent();
  if (!quiescent.ok()) return quiescent;
  size_t index = options_.sketches.size();
  for (size_t i = 0; i < options_.sketches.size(); ++i) {
    if (options_.sketches[i] == sketch) {
      index = i;
      break;
    }
  }
  if (index == options_.sketches.size()) {
    return Status::NotFound("ShardedIngestor: sketch not configured: " +
                            sketch);
  }
  SketchConfig cfg = options_.config;
  cfg.shard_seed = DeriveSeed(options_.config.seed, kMergeSeedSalt, 0);
  auto target = SketchRegistry::Global().Create(sketch, cfg);
  if (!target.ok()) return target.status();
  std::unique_ptr<Sketch> merged = std::move(target).value();
  for (const Shard& shard : shards_) {
    Status s = merged->MergeFrom(*shard.sketches[index]);
    if (!s.ok()) return s;
  }
  return merged->Summary();
}

Result<SketchSummary> ShardedIngestor::ShardSummary(
    size_t shard, const std::string& sketch) const {
  Status quiescent = CheckQuiescent();
  if (!quiescent.ok()) return quiescent;
  if (shard >= shards_.size()) {
    return Status::OutOfRange("ShardedIngestor: shard index out of range");
  }
  for (size_t i = 0; i < options_.sketches.size(); ++i) {
    if (options_.sketches[i] == sketch) {
      return shards_[shard].sketches[i]->Summary();
    }
  }
  return Status::NotFound("ShardedIngestor: sketch not configured: " + sketch);
}

uint64_t ShardedIngestor::SpaceBits() const {
  uint64_t bits = 0;
  for (const Shard& shard : shards_) {
    for (const auto& sketch : shard.sketches) bits += sketch->SpaceBits();
  }
  return bits;
}

}  // namespace wbs::engine
