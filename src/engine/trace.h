// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// engine::Tracer — a lightweight span tracer for the engine's CONTROL
// plane: topology operations (AddShards, MoveShard and its flush /
// serialize / import phases), barriers, and anything else that happens at
// per-operation rather than per-batch rate. Spans carry a name, wall-clock
// offsets relative to the tracer's creation, a parent id (so an operation's
// phases nest), and integer attributes (shard ids, byte counts,
// generations).
//
// Completed spans land in a bounded in-memory ring buffer (oldest evicted
// first) guarded by a mutex — deliberately NOT lock-free, because spans
// fire at control-plane rate and a mutex keeps the ring trivially
// consistent for concurrent Snapshot() readers. Never put a span on the
// per-batch ingest path; that is what the relaxed-atomic metrics
// (metrics.h) are for.
//
// Spans are the engine's single source of truth for control-op phase
// timings: benches and examples read the recorded spans instead of
// re-measuring phases externally.

#ifndef WBS_ENGINE_TRACE_H_
#define WBS_ENGINE_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wbs::engine {

/// A completed span, as read back from the ring.
struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root
  std::string name;
  uint64_t start_us = 0;     ///< offset from tracer creation
  uint64_t duration_us = 0;  ///< End() - start
  std::vector<std::pair<std::string, uint64_t>> attrs;

  /// Value of attribute `key`, or `fallback` when absent.
  uint64_t Attr(const std::string& key, uint64_t fallback = 0) const;
};

class Tracer {
 public:
  /// `capacity`: spans retained before the oldest is evicted.
  explicit Tracer(size_t capacity = 256);

  /// RAII span handle: records into the tracer's ring on End() (or
  /// destruction). Movable, not copyable; a default-constructed or
  /// moved-from span is inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    /// Attaches an integer attribute. Chainable.
    Span& Attr(std::string key, uint64_t value);

    /// Completes the span and records it; idempotent. Returns the span's
    /// duration in microseconds (0 on repeat calls / inert spans).
    uint64_t End();

    uint64_t id() const { return id_; }
    bool active() const { return tracer_ != nullptr; }

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    uint64_t id_ = 0;
    uint64_t parent_ = 0;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    std::vector<std::pair<std::string, uint64_t>> attrs_;
  };

  /// Starts a span; `parent` is another span's id() for nesting (0 = root).
  Span StartSpan(std::string name, uint64_t parent = 0);

  /// The retained spans, oldest first. Spans are recorded at End() time,
  /// so a parent appears AFTER the phases it encloses.
  std::vector<TraceSpan> Snapshot() const;

  /// One JSON object per span:
  /// {"span":"move_shard","id":3,"parent":0,"start_us":...,"duration_us":...,
  ///  "attrs":{"shard":1,...}}
  void WriteJsonl(std::ostream& os) const;

  size_t capacity() const { return capacity_; }

 private:
  void Record(TraceSpan span);
  uint64_t SinceEpochUs(std::chrono::steady_clock::time_point t) const;

  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::deque<TraceSpan> ring_;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_TRACE_H_
