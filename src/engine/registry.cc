// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/registry.h"

namespace wbs::engine {

SketchRegistry& SketchRegistry::Global() {
  static SketchRegistry* instance = [] {
    auto* r = new SketchRegistry();
    RegisterBuiltinSketches(r);
    return r;
  }();
  return *instance;
}

Status SketchRegistry::Register(const std::string& name, Factory factory,
                                SketchFamily family) {
  if (name.empty()) {
    return Status::InvalidArgument("SketchRegistry: empty sketch name");
  }
  if (!factory) {
    return Status::InvalidArgument("SketchRegistry: null factory for " + name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      factories_.emplace(name, Entry{std::move(factory), family});
  (void)it;
  if (!inserted) {
    return Status::FailedPrecondition("SketchRegistry: duplicate name " + name);
  }
  return Status::OK();
}

Result<std::unique_ptr<Sketch>> SketchRegistry::Create(
    const std::string& name, const SketchConfig& config) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::NotFound("SketchRegistry: unknown sketch " + name);
    }
    factory = it->second.factory;
  }
  std::unique_ptr<Sketch> sketch = factory(config);
  if (sketch == nullptr) {
    return Status::Internal("SketchRegistry: factory for " + name +
                            " returned null");
  }
  return sketch;
}

bool SketchRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) > 0;
}

Result<SketchFamily> SketchRegistry::FamilyOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("SketchRegistry: unknown sketch " + name);
  }
  return it->second.family;
}

std::vector<std::string> SketchRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, entry] : factories_) names.push_back(name);
  return names;
}

}  // namespace wbs::engine
