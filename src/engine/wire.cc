// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/wire.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "engine/metrics.h"
#include "engine/sketch.h"

namespace wbs::engine::wire {
namespace {

constexpr size_t kLenBytes = 4;
constexpr size_t kCrcBytes = 4;
constexpr size_t kBodyHeaderBytes = 2;  // version + type
/// Hard cap on one frame's body (64 MiB): a corrupted length field must not
/// drive a gigabyte allocation before the checksum gets a chance to reject.
constexpr uint32_t kMaxBodyLen = 64u << 20;

uint32_t ReadU32Le(const char* p) {
  return uint32_t(uint8_t(p[0])) | uint32_t(uint8_t(p[1])) << 8 |
         uint32_t(uint8_t(p[2])) << 16 | uint32_t(uint8_t(p[3])) << 24;
}

}  // namespace

void Writer::U32(uint32_t v) {
  char b[4] = {char(v), char(v >> 8), char(v >> 16), char(v >> 24)};
  buf_.append(b, 4);
}

void Writer::U64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = char(v >> (8 * i));
  buf_.append(b, 8);
}

void Writer::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Bytes(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

void Writer::Str(std::string_view s) {
  U32(uint32_t(s.size()));
  buf_.append(s.data(), s.size());
}

Status Reader::Need(size_t n) const {
  if (buf_.size() - pos_ < n) {
    return Status::InvalidArgument("wire: truncated buffer");
  }
  return Status::OK();
}

Status Reader::U8(uint8_t* v) {
  Status s = Need(1);
  if (!s.ok()) return s;
  *v = uint8_t(buf_[pos_++]);
  return Status::OK();
}

Status Reader::U32(uint32_t* v) {
  Status s = Need(4);
  if (!s.ok()) return s;
  *v = ReadU32Le(buf_.data() + pos_);
  pos_ += 4;
  return Status::OK();
}

Status Reader::U64(uint64_t* v) {
  Status s = Need(8);
  if (!s.ok()) return s;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= uint64_t(uint8_t(buf_[pos_ + i])) << (8 * i);
  }
  *v = out;
  pos_ += 8;
  return Status::OK();
}

Status Reader::I64(int64_t* v) {
  uint64_t u;
  Status s = U64(&u);
  if (!s.ok()) return s;
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status Reader::F64(double* v) {
  uint64_t bits;
  Status s = U64(&bits);
  if (!s.ok()) return s;
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Reader::Str(std::string_view* out) {
  uint32_t len;
  Status s = U32(&len);
  if (!s.ok()) return s;
  s = Need(len);
  if (!s.ok()) return s;
  *out = buf_.substr(pos_, len);
  pos_ += len;
  return Status::OK();
}

Status Reader::Str(std::string* out) {
  std::string_view v;
  Status s = Str(&v);
  if (!s.ok()) return s;
  out->assign(v);
  return Status::OK();
}

Status Reader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument("wire: trailing bytes after payload");
  }
  return Status::OK();
}

uint32_t Crc32(const void* data, size_t len) {
  // Software CRC-32 (IEEE, reflected), table built on first use.
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string EncodeFrame(uint8_t type, std::string_view payload) {
  Writer w;
  w.U32(uint32_t(kBodyHeaderBytes + payload.size()));
  w.U8(kFormatVersion);
  w.U8(type);
  w.Bytes(payload.data(), payload.size());
  const std::string& buf = w.data();
  uint32_t crc = Crc32(buf.data() + kLenBytes, buf.size() - kLenBytes);
  w.U32(crc);
  return w.Take();
}

Status DecodeFrame(std::string_view frame, uint8_t* type,
                   std::string_view* payload) {
  if (frame.size() < kLenBytes + kBodyHeaderBytes + kCrcBytes) {
    return Status::InvalidArgument("wire: truncated frame");
  }
  const uint32_t body_len = ReadU32Le(frame.data());
  if (body_len < kBodyHeaderBytes || body_len > kMaxBodyLen ||
      frame.size() != kLenBytes + size_t(body_len) + kCrcBytes) {
    return Status::InvalidArgument("wire: frame length mismatch");
  }
  const uint32_t want_crc = ReadU32Le(frame.data() + kLenBytes + body_len);
  const uint32_t got_crc = Crc32(frame.data() + kLenBytes, body_len);
  if (want_crc != got_crc) {
    return Status::InvalidArgument("wire: frame checksum mismatch");
  }
  const uint8_t version = uint8_t(frame[kLenBytes]);
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "wire: unsupported format version " + std::to_string(int(version)) +
        " (this build speaks " + std::to_string(int(kFormatVersion)) + ")");
  }
  *type = uint8_t(frame[kLenBytes + 1]);
  *payload = frame.substr(kLenBytes + kBodyHeaderBytes,
                          body_len - kBodyHeaderBytes);
  return Status::OK();
}

void EncodeUpdates(const stream::TurnstileUpdate* data, size_t count,
                   Writer* w) {
  w->U64(uint64_t(count));
  for (size_t i = 0; i < count; ++i) {
    w->U64(data[i].item);
    w->I64(data[i].delta);
  }
}

Status DecodeUpdates(Reader* r, std::vector<stream::TurnstileUpdate>* out) {
  uint64_t count;
  Status s = r->U64(&count);
  if (!s.ok()) return s;
  // Divide, don't multiply: a hostile count must not overflow past the
  // guard and reach reserve() (the no-crash contract).
  if (count > r->remaining() / 16) {
    return Status::InvalidArgument("wire: update batch length mismatch");
  }
  out->clear();
  out->reserve(size_t(count));
  for (uint64_t i = 0; i < count; ++i) {
    stream::TurnstileUpdate u;
    if (Status su = r->U64(&u.item); !su.ok()) return su;
    if (Status sd = r->I64(&u.delta); !sd.ok()) return sd;
    out->push_back(u);
  }
  return Status::OK();
}

void EncodeSummary(const SketchSummary& s, Writer* w) {
  w->Str(s.sketch);
  w->U8(s.stale ? 1 : 0);
  w->U8(s.has_scalar ? 1 : 0);
  w->F64(s.scalar);
  w->U64(s.updates);
  w->U8(s.item_index.size() == s.items.size() && !s.items.empty() ? 1 : 0);
  w->U64(uint64_t(s.items.size()));
  for (const auto& wi : s.items) {
    w->U64(wi.item);
    w->F64(wi.estimate);
  }
}

Status DecodeSummary(Reader* r, SketchSummary* out) {
  *out = SketchSummary{};
  uint8_t stale = 0, has_scalar = 0, has_index = 0;
  uint64_t count = 0;
  if (Status s = r->Str(&out->sketch); !s.ok()) return s;
  if (Status s = r->U8(&stale); !s.ok()) return s;
  if (stale > 1) {
    return Status::InvalidArgument("wire: summary stale not boolean");
  }
  out->stale = stale != 0;
  if (Status s = r->U8(&has_scalar); !s.ok()) return s;
  if (has_scalar > 1) {
    return Status::InvalidArgument("wire: summary has_scalar not boolean");
  }
  out->has_scalar = has_scalar != 0;
  if (Status s = r->F64(&out->scalar); !s.ok()) return s;
  if (Status s = r->U64(&out->updates); !s.ok()) return s;
  if (Status s = r->U8(&has_index); !s.ok()) return s;
  if (Status s = r->U64(&count); !s.ok()) return s;
  if (count > r->remaining() / 16) {
    return Status::InvalidArgument("wire: summary item list length mismatch");
  }
  out->items.reserve(size_t(count));
  for (uint64_t i = 0; i < count; ++i) {
    hh::WeightedItem wi;
    if (Status s = r->U64(&wi.item); !s.ok()) return s;
    if (Status s = r->F64(&wi.estimate); !s.ok()) return s;
    out->items.push_back(wi);
  }
  // The producer's items were already in SortItems() order; re-sorting is
  // idempotent and rebuilds the by-item index locally.
  if (has_index != 0) out->SortItems();
  return Status::OK();
}

void EncodeStatus(const Status& s, Writer* w) {
  w->U8(uint8_t(s.code()));
  w->Str(s.message());
}

Status DecodeStatus(Reader* r, Status* out) {
  uint8_t code;
  std::string message;
  if (Status s = r->U8(&code); !s.ok()) return s;
  if (Status s = r->Str(&message); !s.ok()) return s;
  switch (Status::Code(code)) {
    case Status::Code::kOk:
      *out = Status::OK();
      return Status::OK();
    case Status::Code::kInvalidArgument:
      *out = Status::InvalidArgument(std::move(message));
      return Status::OK();
    case Status::Code::kOutOfRange:
      *out = Status::OutOfRange(std::move(message));
      return Status::OK();
    case Status::Code::kNotFound:
      *out = Status::NotFound(std::move(message));
      return Status::OK();
    case Status::Code::kFailedPrecondition:
      *out = Status::FailedPrecondition(std::move(message));
      return Status::OK();
    case Status::Code::kResourceExhausted:
      *out = Status::ResourceExhausted(std::move(message));
      return Status::OK();
    case Status::Code::kInternal:
      *out = Status::Internal(std::move(message));
      return Status::OK();
    case Status::Code::kUnimplemented:
      *out = Status::Unimplemented(std::move(message));
      return Status::OK();
    case Status::Code::kUnavailable:
      *out = Status::Unavailable(std::move(message));
      return Status::OK();
    case Status::Code::kDeadlineExceeded:
      *out = Status::DeadlineExceeded(std::move(message));
      return Status::OK();
  }
  return Status::InvalidArgument("wire: unknown status code");
}

void EncodeMetricSamples(const std::vector<MetricSample>& samples, Writer* w) {
  w->U32(uint32_t(samples.size()));
  for (const MetricSample& s : samples) {
    w->Str(s.name);
    w->U8(uint8_t(s.kind));
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        w->U64(s.value);
        break;
      case MetricKind::kHistogram: {
        w->U64(s.count);
        w->U64(s.sum);
        // Trailing zero buckets are elided; the decoder zero-pads.
        size_t last = s.buckets.size();
        while (last > 0 && s.buckets[last - 1] == 0) --last;
        w->U32(uint32_t(last));
        for (size_t i = 0; i < last; ++i) w->U64(s.buckets[i]);
        break;
      }
    }
  }
}

Status DecodeMetricSamples(Reader* r, std::vector<MetricSample>* out) {
  uint32_t count = 0;
  if (Status s = r->U32(&count); !s.ok()) return s;
  // Each sample is at least name-length (4) + kind (1) + one u64.
  if (count > r->remaining() / 13) {
    return Status::InvalidArgument("wire: metric sample count mismatch");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MetricSample sample;
    uint8_t kind = 0;
    if (Status s = r->Str(&sample.name); !s.ok()) return s;
    if (Status s = r->U8(&kind); !s.ok()) return s;
    if (kind > uint8_t(MetricKind::kHistogram)) {
      return Status::InvalidArgument("wire: unknown metric kind");
    }
    sample.kind = MetricKind(kind);
    switch (sample.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        if (Status s = r->U64(&sample.value); !s.ok()) return s;
        break;
      case MetricKind::kHistogram: {
        uint32_t buckets = 0;
        if (Status s = r->U64(&sample.count); !s.ok()) return s;
        if (Status s = r->U64(&sample.sum); !s.ok()) return s;
        if (Status s = r->U32(&buckets); !s.ok()) return s;
        if (buckets > Histogram::kBuckets || buckets > r->remaining() / 8) {
          return Status::InvalidArgument(
              "wire: metric histogram bucket count mismatch");
        }
        sample.buckets.assign(Histogram::kBuckets, 0);
        for (uint32_t b = 0; b < buckets; ++b) {
          if (Status s = r->U64(&sample.buckets[b]); !s.ok()) return s;
        }
        break;
      }
    }
    out->push_back(std::move(sample));
  }
  return Status::OK();
}

namespace {

using WireClock = std::chrono::steady_clock;

/// Polls `fd` for `events`. With a deadline, the wait is bounded by the
/// time remaining (DeadlineExceeded once it has passed); without one the
/// wait is unbounded. Returning OK means the fd is ready — for POLLIN that
/// guarantees the next read() will not block (data, EOF, or an error).
Status WaitFd(int fd, short events, const WireClock::time_point* deadline) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  for (;;) {
    int timeout_ms = -1;
    if (deadline != nullptr) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(*deadline - WireClock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded("wire: read timed out");
      }
      timeout_ms = int(remaining.count());
    }
    int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wire: poll failed: ") +
                              std::strerror(errno));
    }
    if (rc == 0) return Status::DeadlineExceeded("wire: read timed out");
    return Status::OK();  // ready, hung up, or errored — the I/O classifies
  }
}

Status WriteFull(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    // MSG_NOSIGNAL: writing to a peer that died (a crashed shard cell)
    // must surface as EPIPE for the failover layer to classify — never as
    // a process-killing SIGPIPE.
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Nonblocking fd with a full socket buffer: wait for space. Frame
        // writes stay all-or-error either way.
        Status w = WaitFd(fd, POLLOUT, nullptr);
        if (!w.ok()) return w;
        continue;
      }
      return Status::Internal(std::string("wire: write failed: ") +
                              std::strerror(errno));
    }
    off += size_t(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. `*eof` is set (and OK returned) only when the
/// peer closed before the FIRST byte — mid-frame EOF is an error. With a
/// deadline the fd is polled before every chunk, so the WHOLE read is
/// bounded: a peer that stalls mid-frame surfaces DeadlineExceeded instead
/// of wedging the caller (works on blocking fds too — POLLIN guarantees the
/// following read() returns without blocking).
Status ReadFull(int fd, char* data, size_t len, bool* eof,
                const WireClock::time_point* deadline) {
  size_t off = 0;
  while (off < len) {
    if (deadline != nullptr) {
      Status w = WaitFd(fd, POLLIN, deadline);
      if (!w.ok()) return w;
    }
    ssize_t n = ::read(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (deadline == nullptr) {
          Status w = WaitFd(fd, POLLIN, nullptr);
          if (!w.ok()) return w;
        }
        continue;
      }
      return Status::Internal(std::string("wire: read failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0 && eof != nullptr) {
        *eof = true;
        return Status::OK();
      }
      return Status::Internal("wire: connection closed mid-frame");
    }
    off += size_t(n);
  }
  return Status::OK();
}

/// Shared body of ReadFrameFd / ReadFrameFdTimeout; `deadline` == nullptr
/// means wait forever.
Status ReadFrameFdInternal(int fd, std::string* frame_buf, uint8_t* type,
                           std::string_view* payload,
                           const WireClock::time_point* deadline) {
  char len_bytes[kLenBytes];
  bool eof = false;
  Status s = ReadFull(fd, len_bytes, kLenBytes, &eof, deadline);
  if (!s.ok()) return s;
  if (eof) return Status::FailedPrecondition("wire: connection closed");
  const uint32_t body_len = ReadU32Le(len_bytes);
  if (body_len < kBodyHeaderBytes || body_len > kMaxBodyLen) {
    return Status::InvalidArgument("wire: frame length mismatch");
  }
  frame_buf->resize(kLenBytes + size_t(body_len) + kCrcBytes);
  std::memcpy(frame_buf->data(), len_bytes, kLenBytes);
  s = ReadFull(fd, frame_buf->data() + kLenBytes, body_len + kCrcBytes,
               nullptr, deadline);
  if (!s.ok()) return s;
  return DecodeFrame(*frame_buf, type, payload);
}

}  // namespace

Status WriteFrameFd(int fd, uint8_t type, std::string_view payload) {
  // Enforce the frame size cap on the SENDING side: an oversized payload
  // (e.g. a single multi-million-update sub-batch) gets a Status here
  // instead of a frame the peer must reject and kill the connection over.
  if (payload.size() > kMaxBodyLen - kBodyHeaderBytes) {
    return Status::InvalidArgument(
        "wire: frame payload exceeds the 64 MiB body cap");
  }
  std::string frame = EncodeFrame(type, payload);
  return WriteFull(fd, frame.data(), frame.size());
}

Status ReadFrameFd(int fd, std::string* frame_buf, uint8_t* type,
                   std::string_view* payload) {
  return ReadFrameFdInternal(fd, frame_buf, type, payload, nullptr);
}

Status ReadFrameFdTimeout(int fd, int timeout_ms, std::string* frame_buf,
                          uint8_t* type, std::string_view* payload) {
  // One absolute deadline across the whole frame: header and body reads
  // each poll with whatever budget remains, so a half-open peer that
  // dribbles a partial frame cannot stretch the wait past `timeout_ms`.
  const WireClock::time_point deadline =
      WireClock::now() + std::chrono::milliseconds(timeout_ms);
  return ReadFrameFdInternal(fd, frame_buf, type, payload, &deadline);
}

}  // namespace wbs::engine::wire
