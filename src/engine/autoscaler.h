// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Autoscaler — the engine's load-driven control plane.
//
// PR 5 gave the engine live topology operations (AddShards, MoveShard,
// and now MoveSlots); PR 6 gave it a metrics surface that sees per-shard
// load. Nothing connected the two: scaling was an operator decision. The
// autoscaler closes that loop — a controller that samples per-shard
// updates/sec, worker queue depth, and valve pressure from the engine's
// own Metrics() snapshot, scores utilization against configurable
// targets, and issues the reshard operations itself:
//
//   sample ──▶ EWMA-smooth ──▶ score vs watermarks ──▶ decide ──▶ act
//     │                                                  │
//     └── engine.autoscaler.* counters                   └── AddShards /
//         autoscale.decision trace spans                     MoveSlots
//
// Decisions (evaluated in priority order, at most ONE action per cycle):
//
//   * SCALE-OUT: the mean smoothed per-shard rate exceeds the high
//     watermark (or the submit valve has blocked waiters) and the shard
//     count is below max_shards — AddShards(scale_step).
//   * SLOT MOVE: the hottest shard runs more than imbalance_ratio times
//     the mean (and the mean clears the low watermark, so quiet engines
//     are never churned), it owns more than one slot, and slot-heat
//     sampling is on — peel its hottest slots off to the least-loaded
//     HEALTHY shard via MoveSlots. A kDead/kSuspect shard is never
//     selected as a destination.
//
// Anti-flap hysteresis is built in twice over: every per-shard rate is
// EWMA-smoothed (one spiky sample cannot trigger anything), and any
// action arms a shared cooldown window during which further actions are
// suppressed (and counted as suppressions). A flapping load signal
// therefore produces at most one reshard per cooldown window.
//
// Determinism for tests: evaluation_interval_ms == 0 runs NO thread —
// the caller drives the controller with EvaluateOnce(), which makes
// every decision reproducible from the submitted load alone.

#ifndef WBS_ENGINE_AUTOSCALER_H_
#define WBS_ENGINE_AUTOSCALER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/backend.h"

namespace wbs::engine {

class ShardedIngestor;
class MetricsRegistry;
class Tracer;
class Counter;
class Gauge;

/// Controller targets and pacing. Embedded in IngestorOptions::autoscale;
/// the controller starts with the engine when `enabled` is true.
struct AutoscaleOptions {
  /// Master switch. Off by default: engines that never asked for a
  /// control plane pay nothing (no thread, no instruments).
  bool enabled = false;
  /// Controller thread period. 0 = MANUAL mode: no thread is started and
  /// the owner drives evaluation via Autoscaler::EvaluateOnce() — the
  /// deterministic mode the tests use.
  uint64_t evaluation_interval_ms = 0;
  /// Scale out when the smoothed MEAN per-shard updates/sec exceeds this.
  /// 0 disables rate-triggered scale-out (valve pressure still triggers).
  double high_watermark_updates_per_sec = 0.0;
  /// Rebalance only when the smoothed mean clears this floor — a nearly
  /// idle engine is never churned just because its ratios look skewed.
  double low_watermark_updates_per_sec = 0.0;
  /// Scale out when producers are blocked on the submission valve.
  bool scale_on_valve_pressure = true;
  /// Slot move when hottest-shard rate > imbalance_ratio * mean rate.
  double imbalance_ratio = 2.0;
  /// Shared cooldown armed by ANY action; decisions during it are
  /// suppressed (and counted). The anti-flap window.
  uint64_t cooldown_ms = 1000;
  /// Topology bounds the controller never crosses.
  size_t min_shards = 1;
  size_t max_shards = 64;
  /// EWMA smoothing factor for per-shard rates, in (0, 1]: smoothed =
  /// alpha * sample + (1 - alpha) * smoothed. 1.0 = no smoothing.
  double ewma_alpha = 0.5;
  /// Shards added per scale-out decision.
  size_t scale_step = 1;
  /// At most this many slots peeled per slot-move decision (never all of
  /// a shard's slots — the source always keeps at least one).
  size_t max_slots_per_move = 4;
  /// Cell factory for shards added by scale-out; empty = in-process.
  BackendFactory backend;
};

/// What one evaluation cycle decided. Returned by EvaluateOnce so tests
/// and the soak driver can assert on decisions without parsing spans.
struct AutoscaleDecision {
  enum class Kind : uint8_t {
    kNone = 0,       ///< signals below every threshold
    kCooldown = 1,   ///< an action was due but the cooldown suppressed it
    kScaleOut = 2,   ///< AddShards issued
    kMoveSlots = 3,  ///< MoveSlots issued
  };
  Kind kind = Kind::kNone;
  /// Source / destination shard for kMoveSlots; source == hottest shard.
  size_t source = 0;
  size_t dest = 0;
  /// Slots moved (kMoveSlots) — or shards added (kScaleOut) in size().
  std::vector<uint32_t> slots;
  /// The smoothed mean and max per-shard updates/sec behind the decision.
  double mean_rate = 0.0;
  double max_rate = 0.0;
  /// Status of the issued topology op (OK for kNone/kCooldown).
  Status status = Status::OK();
};

/// The controller. Owned by ShardedIngestor (constructed in Init when
/// options.autoscale.enabled, stopped in Finish before the router goes
/// down); tests construct it manually against a live ingestor.
class Autoscaler {
 public:
  /// `ingestor` must outlive the controller. Registers the
  /// engine.autoscaler.* instruments in the ingestor's registry.
  Autoscaler(ShardedIngestor* ingestor, AutoscaleOptions options);
  ~Autoscaler();

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  /// Starts the controller thread (no-op in manual mode or if running).
  void Start();
  /// Stops and joins the controller thread. Idempotent; safe if never
  /// started. Called by ShardedIngestor::Finish before router teardown.
  void Stop();

  /// One full control cycle: sample → smooth → decide → act. Thread-safe
  /// against the controller thread (they share one mutex), but intended
  /// either-or: manual mode for tests, thread mode for serving.
  AutoscaleDecision EvaluateOnce();

  const AutoscaleOptions& options() const { return options_; }

 private:
  struct ShardSample {
    uint64_t updates_total = 0;  ///< last raw counter reading
    double rate = 0.0;           ///< EWMA-smoothed updates/sec
    bool seen = false;           ///< had a prior sample to diff against
  };

  void ControllerLoop();
  /// The decision body; caller holds mu_.
  AutoscaleDecision DecideLocked();
  /// Picks the healthiest, least-loaded destination != source; returns
  /// num_shards when no healthy destination exists.
  size_t PickDestinationLocked(size_t source, size_t num_shards);

  ShardedIngestor* const ingestor_;
  const AutoscaleOptions options_;

  std::mutex mu_;
  std::vector<ShardSample> samples_;
  /// Previous SlotHeat() reading, for per-slot heat deltas.
  std::vector<uint64_t> prev_heat_;
  /// Monotonic microseconds of the previous evaluation / last action.
  uint64_t last_eval_us_ = 0;
  uint64_t last_action_us_ = 0;
  bool has_acted_ = false;

  /// engine.autoscaler.* instruments (null when metrics are disabled).
  Counter* evaluations_total_ = nullptr;
  Counter* scaleouts_total_ = nullptr;
  Counter* slot_moves_total_ = nullptr;
  Counter* cooldown_suppressed_total_ = nullptr;
  Counter* shards_added_total_ = nullptr;
  Counter* slots_moved_total_ = nullptr;
  Counter* op_failures_total_ = nullptr;
  Gauge* mean_rate_gauge_ = nullptr;
  Gauge* max_rate_gauge_ = nullptr;
  Gauge* max_queue_depth_gauge_ = nullptr;

  std::thread controller_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_AUTOSCALER_H_
