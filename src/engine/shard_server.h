// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// ShardServer — one engine shard served behind a socket, speaking the wire
// format of wire.h. This is the server half of LoopbackRemoteBackend: the
// shard's sketch group, aggregation scratch, and snapshot slot live on the
// server side of a socketpair, and everything that crosses — update
// batches, epochs, serialized snapshot states, summaries — crosses as
// checksummed frames. In-process it proves the process-boundary protocol;
// the same loop would serve a real TCP listener unchanged.
//
// Each server exposes TWO connections, mirroring how the ingestor drives a
// shard:
//
//   * the DATA channel carries kReqApply — called by the shard's single
//     owning worker, strictly request/response;
//   * the CONTROL channel carries kReqFlush/kReqEpoch/kReqSnapshot/
//     kReqSummary/kReqSpaceBits — called by query threads at any time.
//
// Both channels are served by their own thread against one shared shard
// state under a mutex, so a snapshot request racing an apply sees either
// the pre- or post-batch published state, never a torn one — the same
// guarantee the in-process snap_mu gives. Internally the shard state IS an
// InProcessBackend with a single shard, so apply/publish/epoch semantics
// are identical to local shards by construction.
//
// Response frames carry a Status first; a request that fails (bad frame,
// unknown sketch index, serialization error) answers with that Status and
// the connection stays usable. The server exits its loops when the client
// closes the socket or sends kReqShutdown.

#ifndef WBS_ENGINE_SHARD_SERVER_H_
#define WBS_ENGINE_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/backend.h"

namespace wbs::engine {

namespace wire {
class Writer;
}  // namespace wire

/// Handles one shard request frame against a 1-shard cell and appends the
/// response payload (Status first, then request-specific data) to `w`. This
/// is the transport-agnostic half of the shard protocol: ShardServer calls
/// it behind its socketpairs, TcpShardHost (tcp_transport.h) behind real
/// TCP connections. The caller owns serialization — requests against one
/// cell must not run concurrently (both servers hold a per-shard mutex).
void DispatchShardRequest(ShardBackend& shard, size_t num_sketches,
                          uint8_t type, std::string_view payload,
                          wire::Writer* w);

/// Parses a WBS_ENGINE_CRASH value of the form "after=N[,torn]" into an
/// armed crash spec. Returns false (outputs untouched) for any other value
/// — e.g. "replay", which the test util consumes to drive failover drills.
bool ParseCrashEnvSpec(const char* value, int64_t* after, bool* torn);

/// Emits a length-valid frame whose body was corrupted AFTER the checksum
/// was computed — the `torn` crash flavor. The receiver MUST reject it via
/// CRC32, not via framing.
void WriteTornFrameFd(int fd);

struct ShardServerOptions {
  std::vector<std::string> sketches;  ///< registry names of the shard group
  /// Shard config with `shard_seed` ALREADY resolved by the client (via
  /// ShardConfigFor) — the server must not re-derive it, or a relocated
  /// shard would sample differently than its local twin.
  SketchConfig config;
  size_t snapshot_min_updates = 1024;
};

class ShardServer {
 public:
  /// Builds the shard state, creates the two socketpairs, and starts the
  /// serving threads. The returned server owns the server-side ends.
  static Result<std::unique_ptr<ShardServer>> Start(
      const ShardServerOptions& options);

  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Client-side fds (owned by the server object; closed on destruction).
  int data_fd() const { return client_data_fd_; }
  int control_fd() const { return client_control_fd_; }

  /// Closes every fd and joins the serving threads. Idempotent.
  void Stop();

  // ---- fault injection -----------------------------------------------------
  //
  // Crash modes kill the SERVING loops mid-stream — the request that crosses
  // the threshold is read but never answered, exactly what a process death
  // between recv and send looks like to the client. With `torn` set, the
  // server first emits a frame whose body no longer matches its checksum, so
  // the client's CRC32 check (not just EOF detection) is exercised. The
  // server object stays alive and Stop() still reclaims fds and threads.
  //
  // Also armable at birth via env WBS_ENGINE_CRASH="after=N[,torn]" (other
  // values of the variable are ignored here; the test util consumes them).

  /// Arms a crash after `n_frames` more request frames, counted across both
  /// channels. n_frames == 0 crashes on the next frame.
  void CrashAfter(int64_t n_frames, bool torn = false);

  /// Crashes immediately, callable from any thread. No-op after Stop().
  void CrashNow(bool torn = false);

  /// True once a crash mode has fired (never reset).
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

 private:
  ShardServer() = default;

  void Serve(int fd);
  /// Emits the torn frame of the `torn` crash flavor onto `fd`.
  static void WriteTornFrame(int fd);
  /// Handles one request frame; fills the response payload (Status first).
  void Dispatch(uint8_t type, std::string_view payload, std::string* resp);

  std::unique_ptr<ShardBackend> shard_;  // 1-shard InProcessBackend
  size_t num_sketches_ = 0;
  std::mutex mu_;  // serializes Dispatch across the two channel threads

  int server_data_fd_ = -1;
  int server_control_fd_ = -1;
  int client_data_fd_ = -1;
  int client_control_fd_ = -1;
  std::thread data_thread_;
  std::thread control_thread_;
  bool stopped_ = false;
  std::mutex stop_mu_;

  // Fault injection state. crash_after_ is an absolute frames_served_
  // threshold (-1 = disarmed); the serving loop that crosses it dies.
  std::atomic<int64_t> crash_after_{-1};
  std::atomic<int64_t> frames_served_{0};
  std::atomic<bool> crash_torn_{false};
  std::atomic<bool> crashed_{false};
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_SHARD_SERVER_H_
