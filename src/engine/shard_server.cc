// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/shard_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#include "engine/wire.h"

namespace wbs::engine {
namespace {

/// Builds the standard response payload prefix: an encoded Status.
void PutStatus(const Status& s, wire::Writer* w) { wire::EncodeStatus(s, w); }

}  // namespace

bool ParseCrashEnvSpec(const char* value, int64_t* after, bool* torn) {
  if (value == nullptr) return false;
  std::string_view spec(value);
  if (spec.rfind("after=", 0) != 0) return false;
  spec.remove_prefix(6);
  bool torn_flag = false;
  if (size_t pos = spec.find(','); pos != std::string_view::npos) {
    torn_flag = spec.substr(pos + 1) == "torn";
    spec = spec.substr(0, pos);
  }
  int64_t n = -1;
  auto [ptr, ec] = std::from_chars(spec.data(), spec.data() + spec.size(), n);
  if (ec != std::errc() || ptr != spec.data() + spec.size() || n < 0) {
    return false;
  }
  *after = n;
  *torn = torn_flag;
  return true;
}

void WriteTornFrameFd(int fd) {
  // A length-valid frame whose body was corrupted after the checksum was
  // computed — the client MUST reject it via CRC32, not via framing. A
  // short write only makes the tear more realistic.
  std::string frame = wire::EncodeFrame(wire::kResp, "torn");
  frame[frame.size() - 5] ^= 0x5a;  // flip a payload byte, keep the CRC
  // MSG_NOSIGNAL: the client may already have hung up; EPIPE is fine here,
  // SIGPIPE is not.
  (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
}

Result<std::unique_ptr<ShardServer>> ShardServer::Start(
    const ShardServerOptions& options) {
  std::unique_ptr<ShardServer> server(new ShardServer());

  BackendOptions bopts;
  bopts.num_shards = 1;
  bopts.sketches = options.sketches;
  bopts.config = options.config;
  bopts.snapshot_min_updates = options.snapshot_min_updates;
  bopts.shard_seeds_resolved = true;  // the client derived the seed already
  auto shard = InProcessBackendFactory()(bopts);
  if (!shard.ok()) return shard.status();
  server->shard_ = std::move(shard).value();
  server->num_sketches_ = options.sketches.size();

  int data[2], control[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, data) != 0) {
    return Status::Internal(std::string("ShardServer: socketpair: ") +
                            std::strerror(errno));
  }
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, control) != 0) {
    ::close(data[0]);
    ::close(data[1]);
    return Status::Internal(std::string("ShardServer: socketpair: ") +
                            std::strerror(errno));
  }
  server->server_data_fd_ = data[0];
  server->client_data_fd_ = data[1];
  server->server_control_fd_ = control[0];
  server->client_control_fd_ = control[1];

  // Crash injection armed at birth: WBS_ENGINE_CRASH="after=N[,torn]".
  // Any other value of the variable (e.g. "replay", which the test util
  // consumes to drive failover drills) leaves the server healthy.
  int64_t crash_after = -1;
  bool crash_torn = false;
  if (ParseCrashEnvSpec(std::getenv("WBS_ENGINE_CRASH"), &crash_after,
                        &crash_torn)) {
    server->crash_torn_.store(crash_torn, std::memory_order_relaxed);
    server->crash_after_.store(crash_after, std::memory_order_relaxed);
  }

  ShardServer* raw = server.get();
  server->data_thread_ =
      std::thread([raw] { raw->Serve(raw->server_data_fd_); });
  server->control_thread_ =
      std::thread([raw] { raw->Serve(raw->server_control_fd_); });
  return server;
}

ShardServer::~ShardServer() { Stop(); }

void ShardServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Closing the client ends makes the serving loops' reads fail cleanly.
  for (int* fd : {&client_data_fd_, &client_control_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  if (data_thread_.joinable()) data_thread_.join();
  if (control_thread_.joinable()) control_thread_.join();
  for (int* fd : {&server_data_fd_, &server_control_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void ShardServer::CrashAfter(int64_t n_frames, bool torn) {
  if (n_frames < 0) n_frames = 0;
  crash_torn_.store(torn, std::memory_order_relaxed);
  crash_after_.store(frames_served_.load(std::memory_order_relaxed) + n_frames,
                     std::memory_order_relaxed);
}

void ShardServer::CrashNow(bool torn) {
  // stop_mu_ keeps this safe against a concurrent Stop(): once stopped_,
  // the fds may already be closed (or reused) and must not be touched.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  crashed_.store(true, std::memory_order_release);
  if (torn && server_data_fd_ >= 0) WriteTornFrame(server_data_fd_);
  for (int fd : {server_data_fd_, server_control_fd_}) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

void ShardServer::WriteTornFrame(int fd) { WriteTornFrameFd(fd); }

void ShardServer::Serve(int fd) {
  std::string frame_buf;
  std::string resp;
  for (;;) {
    uint8_t type = 0;
    std::string_view payload;
    Status s = wire::ReadFrameFd(fd, &frame_buf, &type, &payload);
    if (s.ok()) {
      const int64_t served =
          1 + frames_served_.fetch_add(1, std::memory_order_relaxed);
      const int64_t crash_at = crash_after_.load(std::memory_order_relaxed);
      if (crash_at >= 0 && served >= crash_at) {
        // Mid-stream death: the request that crossed the threshold was
        // read but is never answered — exactly the window a real process
        // crash between recv and send leaves behind. Both channels die so
        // the control plane (heartbeats) sees it too.
        crashed_.store(true, std::memory_order_release);
        if (crash_torn_.load(std::memory_order_relaxed)) WriteTornFrame(fd);
        ::shutdown(server_data_fd_, SHUT_RDWR);
        ::shutdown(server_control_fd_, SHUT_RDWR);
        return;
      }
    }
    if (!s.ok()) {
      // Peer closed (orderly shutdown), unrecoverable I/O error, or an
      // unreadable frame (bad length / checksum / version — after which
      // stream alignment cannot be trusted): kill the connection. The
      // shutdown() makes a client blocked in its response read see EOF
      // immediately and turn it into a Status, instead of hanging forever
      // on a connection nobody will write to again; Stop() still owns the
      // close().
      ::shutdown(fd, SHUT_RDWR);
      return;
    }
    if (type == wire::kReqShutdown) {
      (void)wire::WriteFrameFd(fd, wire::kResp, {});
      ::shutdown(fd, SHUT_RDWR);
      return;
    }
    resp.clear();
    Dispatch(type, payload, &resp);
    if (!wire::WriteFrameFd(fd, wire::kResp, resp).ok()) {
      ::shutdown(fd, SHUT_RDWR);
      return;
    }
  }
}

void ShardServer::Dispatch(uint8_t type, std::string_view payload,
                           std::string* resp) {
  wire::Writer w;
  // One mutex across both channels: an apply and a snapshot request are
  // serialized exactly like worker-vs-query access to a local shard slot.
  std::lock_guard<std::mutex> lock(mu_);
  DispatchShardRequest(*shard_, num_sketches_, type, payload, &w);
  *resp = w.Take();
}

void DispatchShardRequest(ShardBackend& shard, size_t num_sketches,
                          uint8_t type, std::string_view payload,
                          wire::Writer* resp_writer) {
  ShardBackend* const shard_ = &shard;
  const size_t num_sketches_ = num_sketches;
  wire::Writer& w = *resp_writer;
  switch (type) {
    case wire::kReqApply: {
      wire::Reader r(payload);
      std::vector<stream::TurnstileUpdate> updates;
      Status s = wire::DecodeUpdates(&r, &updates);
      if (s.ok()) s = r.ExpectEnd();
      if (s.ok()) s = shard_->ApplyBatch(0, updates.data(), updates.size());
      PutStatus(s, &w);
      w.U64(shard_->Epoch(0).value_or(0));
      break;
    }
    case wire::kReqFlush: {
      Status s = shard_->Flush(0);
      PutStatus(s, &w);
      w.U64(shard_->Epoch(0).value_or(0));
      break;
    }
    case wire::kReqEpoch: {
      PutStatus(Status::OK(), &w);
      w.U64(shard_->Epoch(0).value_or(0));
      break;
    }
    case wire::kReqSnapshot: {
      wire::Reader r(payload);
      uint32_t sketch_index = 0;
      Status s = r.U32(&sketch_index);
      if (s.ok()) s = r.ExpectEnd();
      if (s.ok() && sketch_index >= num_sketches_) {
        s = Status::OutOfRange("ShardServer: sketch index out of range");
      }
      if (!s.ok()) {
        PutStatus(s, &w);
        break;
      }
      auto snap = shard_->SnapshotSerialized(0, sketch_index);
      if (!snap.ok()) {
        PutStatus(snap.status(), &w);
        break;
      }
      PutStatus(Status::OK(), &w);
      w.U64(snap.value().epoch);
      w.Str(snap.value().state);  // empty = never published
      break;
    }
    case wire::kReqSummary: {
      wire::Reader r(payload);
      uint32_t sketch_index = 0;
      Status s = r.U32(&sketch_index);
      if (s.ok()) s = r.ExpectEnd();
      if (!s.ok()) {
        PutStatus(s, &w);
        break;
      }
      auto summary = shard_->LiveSummary(0, sketch_index);
      if (!summary.ok()) {
        PutStatus(summary.status(), &w);
        break;
      }
      PutStatus(Status::OK(), &w);
      wire::EncodeSummary(summary.value(), &w);
      break;
    }
    case wire::kReqSpaceBits: {
      PutStatus(Status::OK(), &w);
      w.U64(shard_->SpaceBits());
      break;
    }
    case wire::kReqHeartbeat: {
      // Liveness probe: answering at all is the signal; the epoch rides
      // along so supervisors can watch progress for free. Deliberately
      // served through the same mutex as every other request — a shard
      // wedged inside Dispatch fails its heartbeat deadline too.
      PutStatus(Status::OK(), &w);
      w.U64(shard_->Epoch(0).value_or(0));
      break;
    }
    case wire::kReqMetrics: {
      // Observability: the inner in-process cell's per-shard samples
      // (epoch, snapshot lag, serialize latency) ship to the client, which
      // prefixes them with the global shard id and appends its own wire
      // counters for the channel.
      auto samples = shard_->Metrics(0);
      if (!samples.ok()) {
        PutStatus(samples.status(), &w);
        break;
      }
      PutStatus(Status::OK(), &w);
      wire::EncodeMetricSamples(samples.value(), &w);
      break;
    }
    case wire::kReqImport: {
      // Shard handoff: install the serialized sketch states shipped from
      // the retiring placement, then publish (ImportShardState does both).
      wire::Reader r(payload);
      uint32_t count = 0;
      Status s = r.U32(&count);
      std::vector<std::string> frames;
      if (s.ok() && count != num_sketches_) {
        s = Status::InvalidArgument(
            "ShardServer: handoff frame count does not match the sketch "
            "group");
      }
      for (uint32_t i = 0; s.ok() && i < count; ++i) {
        std::string frame;
        s = r.Str(&frame);
        if (s.ok()) frames.push_back(std::move(frame));
      }
      if (s.ok()) s = r.ExpectEnd();
      if (s.ok()) s = shard_->ImportShardState(0, frames);
      PutStatus(s, &w);
      w.U64(shard_->Epoch(0).value_or(0));
      break;
    }
    default:
      PutStatus(Status::InvalidArgument("ShardServer: unknown request type " +
                                        std::to_string(int(type))),
                &w);
      break;
  }
}

}  // namespace wbs::engine
