// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The type-erased sketch interface of the sharded ingestion engine.
//
// The per-algorithm classes under src/heavyhitters, src/distinct,
// src/moments and src/linalg each expose their own update and query types —
// exactly right for the white-box game harness, but unusable as a uniform
// serving surface. The engine wraps each of them behind `Sketch`:
//
//   * every sketch ingests TurnstileUpdate batches (an ItemUpdate is a
//     turnstile update with delta == 1; insertion-only sketches reject
//     negative deltas with InvalidArgument);
//   * every sketch answers queries through a `SketchSummary` — a scalar
//     (L0, F2, rank verdicts) and/or a weighted candidate list (heavy
//     hitters);
//   * every sketch can merge: shard-local instances combine into one global
//     answer. Linear sketches (AMS, SIS-L0, rank) merge at the state level
//     and the merged state is bit-identical to a single-instance run;
//     Misra-Gries merges with the mergeable-summaries guarantee; sampling
//     sketches (robust/CRHF HH) merge at the answer level, which is exact
//     for the engine because the ingestor partitions the universe across
//     shards (every item's entire substream lives in exactly one shard).
//
// The adversarial-game semantics of the wrapped algorithms are untouched:
// the engine only changes the plumbing around them, and every shard's
// randomness is derived deterministically from (config seed, shard index),
// so a sharded run is replayable bit-for-bit.

#ifndef WBS_ENGINE_SKETCH_H_
#define WBS_ENGINE_SKETCH_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "heavyhitters/misra_gries.h"
#include "stream/updates.h"

namespace wbs::engine {

namespace wire {
class Writer;
class Reader;
}  // namespace wire

/// Per-family configuration blocks. Each sketch family reads exactly one of
/// these (plus the shared fields of SketchConfig), so a caller tuning the
/// rank sketch never has to learn what `l0_c` means. Every block carries
/// fluent `With*` setters so configs compose as one expression:
///
///   SketchConfig cfg = SketchConfig{}
///       .WithUniverse(1 << 20)
///       .WithSeed(7)
///       .With(MisraGriesOptions{}.WithCounters(256))
///       .With(AmsOptions{}.WithRows(64));
struct MisraGriesOptions {
  size_t counters = 64;  ///< Misra-Gries capacity k
  MisraGriesOptions& WithCounters(size_t k) {
    counters = k;
    return *this;
  }
};

struct AmsOptions {
  size_t rows = 48;  ///< AMS sign projections
  AmsOptions& WithRows(size_t r) {
    rows = r;
    return *this;
  }
};

struct SisL0Options {
  double eps = 0.5;   ///< chunking exponent
  double c = 0.25;    ///< sketch-rows exponent
  uint64_t f_inf_bound = uint64_t{1} << 20;  ///< promised ||f||_inf bound
  SisL0Options& WithEps(double e) {
    eps = e;
    return *this;
  }
  SisL0Options& WithC(double v) {
    c = v;
    return *this;
  }
  SisL0Options& WithFInfBound(uint64_t b) {
    f_inf_bound = b;
    return *this;
  }
};

struct RankOptions {
  size_t n = 64;          ///< matrix dimension
  size_t k = 8;           ///< decision threshold
  uint64_t q = 1000003;   ///< field modulus
  RankOptions& WithN(size_t v) {
    n = v;
    return *this;
  }
  RankOptions& WithK(size_t v) {
    k = v;
    return *this;
  }
  RankOptions& WithQ(uint64_t v) {
    q = v;
    return *this;
  }
};

/// Shared by the sampling heavy hitter families (robust_hh, crhf_hh) and
/// the Misra-Gries report threshold.
struct HeavyHitterOptions {
  double eps = 0.1;     ///< heavy hitter threshold / accuracy knob
  double phi = 0.2;     ///< report threshold for (phi, eps)-HH
  double delta = 0.25;  ///< failure probability budget
  uint64_t time_budget_t = uint64_t{1} << 20;  ///< CRHF adversary budget T
  HeavyHitterOptions& WithEps(double e) {
    eps = e;
    return *this;
  }
  HeavyHitterOptions& WithPhi(double p) {
    phi = p;
    return *this;
  }
  HeavyHitterOptions& WithDelta(double d) {
    delta = d;
    return *this;
  }
  HeavyHitterOptions& WithTimeBudget(uint64_t t) {
    time_budget_t = t;
    return *this;
  }
};

/// Configuration handed to a sketch factory. `seed` drives *shared*
/// randomness (sign matrices, random oracles) and must be identical across
/// the shard copies of one logical sketch so state-level merges line up;
/// `shard_seed` drives *private* randomness (sampling tapes) and is
/// overwritten per shard by the ingestor. Family-specific knobs live in the
/// per-family option blocks above (defaults are sensible test-scale values).
struct SketchConfig {
  uint64_t universe = uint64_t{1} << 16;
  uint64_t seed = 1;       ///< shared randomness (see above)
  uint64_t shard_seed = 1; ///< per-shard randomness (set by the ingestor)

  HeavyHitterOptions hh;
  MisraGriesOptions misra_gries;
  AmsOptions ams;
  SisL0Options sis_l0;
  RankOptions rank;

  SketchConfig& WithUniverse(uint64_t u) {
    universe = u;
    return *this;
  }
  SketchConfig& WithSeed(uint64_t s) {
    seed = s;
    return *this;
  }
  SketchConfig& With(const HeavyHitterOptions& o) {
    hh = o;
    return *this;
  }
  SketchConfig& With(const MisraGriesOptions& o) {
    misra_gries = o;
    return *this;
  }
  SketchConfig& With(const AmsOptions& o) {
    ams = o;
    return *this;
  }
  SketchConfig& With(const SisL0Options& o) {
    sis_l0 = o;
    return *this;
  }
  SketchConfig& With(const RankOptions& o) {
    rank = o;
    return *this;
  }
};

/// A non-owning view of a run of turnstile updates.
///
/// The ingestor additionally attaches a *shared pre-aggregation* of the
/// batch — duplicate items combined in first-occurrence order, zero-delta
/// entries dropped — computed once per shard batch so that every
/// weight-equivalent sketch (linear sketches, weighted Misra-Gries) can
/// consume it without re-aggregating. Sampling sketches always read the raw
/// `data` (a Bernoulli sample of w unit updates is not one weighted
/// update).
struct UpdateBatch {
  const stream::TurnstileUpdate* data = nullptr;
  size_t size = 0;

  // Optional shared pre-aggregation (null when the caller did not build
  // one; wrappers then aggregate locally if they want to).
  const stream::TurnstileUpdate* aggregated = nullptr;
  size_t aggregated_size = 0;
  uint64_t effective_updates = 0;   ///< nonzero-delta entries in `data`
  bool has_negative_delta = false;  ///< any raw delta < 0 (insertion guard)
};

/// Aggregates `count` updates into `out` (first-occurrence order, zero
/// deltas dropped), reusing `index` as scratch. Returns {effective updates,
/// any-negative-delta}. A duplicate whose accumulation would overflow
/// int64_t is kept as its own entry instead (the view is then only mostly
/// deduplicated — consumers must apply entries sequentially, never assume
/// item uniqueness). Shared by the ingestor's per-shard aggregation and the
/// wrappers' local fallback so the two paths cannot diverge.
inline std::pair<uint64_t, bool> AggregateUpdates(
    const stream::TurnstileUpdate* data, size_t count,
    std::vector<stream::TurnstileUpdate>* out,
    std::unordered_map<uint64_t, size_t>* index) {
  out->clear();
  index->clear();
  uint64_t effective = 0;
  bool has_negative = false;
  for (size_t i = 0; i < count; ++i) {
    const auto& u = data[i];
    if (u.delta == 0) continue;
    ++effective;
    has_negative |= u.delta < 0;
    auto [it, inserted] = index->emplace(u.item, out->size());
    if (inserted) {
      out->push_back(u);
    } else {
      int64_t& acc = (*out)[it->second].delta;
      int64_t sum;
      if (__builtin_add_overflow(acc, u.delta, &sum)) {
        out->push_back(u);  // overflow: keep as a separate entry
      } else {
        acc = sum;
      }
    }
  }
  return {effective, has_negative};
}

/// The mergeable query answer of a sketch: a scalar and/or a candidate list.
struct SketchSummary {
  std::string sketch;        ///< registry name of the producing sketch
  bool has_scalar = false;
  double scalar = 0;         ///< L0 / F2 estimate, rank verdict (0/1), ...
  std::vector<hh::WeightedItem> items;  ///< HH candidates, estimate-descending
  /// Positions of `items` sorted by item id; built by SortItems() so point
  /// lookups are O(log n) instead of a linear scan. Empty when the producer
  /// never called SortItems() (Estimate then falls back to scanning).
  std::vector<uint32_t> item_index;
  uint64_t updates = 0;      ///< effective (nonzero-delta) updates summarized
  /// Degradation marker: true when one or more shards were unreachable and
  /// the answer was served from the last successfully folded state instead
  /// of the live epochs (see ShardedIngestor failover docs). Always false
  /// for healthy engines; propagated onto the typed query results.
  bool stale = false;

  /// Estimated frequency of `item` from the candidate list (0 if absent).
  double Estimate(uint64_t item) const {
    if (item_index.size() == items.size() && !items.empty()) {
      auto it = std::lower_bound(
          item_index.begin(), item_index.end(), item,
          [this](uint32_t pos, uint64_t v) { return items[pos].item < v; });
      if (it != item_index.end() && items[*it].item == item) {
        return items[*it].estimate;
      }
      return 0;
    }
    for (const auto& wi : items) {
      if (wi.item == item) return wi.estimate;
    }
    return 0;
  }

  /// Sorts the candidate list estimate-descending (the TopK order) and
  /// rebuilds the by-item lookup index over it.
  void SortItems() {
    std::sort(items.begin(), items.end(),
              [](const hh::WeightedItem& a, const hh::WeightedItem& b) {
                return a.estimate > b.estimate ||
                       (a.estimate == b.estimate && a.item < b.item);
              });
    item_index.resize(items.size());
    for (uint32_t i = 0; i < item_index.size(); ++i) item_index[i] = i;
    std::sort(item_index.begin(), item_index.end(),
              [this](uint32_t a, uint32_t b) {
                return items[a].item < items[b].item;
              });
  }
};

/// Type-erased streaming sketch: batched turnstile ingestion, summary
/// queries, and merging. Instances are NOT thread-safe; the ingestor gives
/// each shard-local instance to exactly one worker.
class Sketch {
 public:
  virtual ~Sketch() = default;

  /// Registry name of this sketch ("misra_gries", "ams_f2", ...).
  virtual const std::string& name() const = 0;

  /// Applies a single turnstile update.
  virtual Status Update(const stream::TurnstileUpdate& u) = 0;

  /// Applies a whole batch. The default loops over Update(); wrappers of
  /// linear or weighted sketches override it to pre-aggregate duplicate
  /// items, amortizing per-update virtual-dispatch, hashing and RNG costs —
  /// on skewed (Zipfian) traffic this is the engine's main throughput lever.
  virtual Status ApplyBatch(const UpdateBatch& batch) {
    for (size_t i = 0; i < batch.size; ++i) {
      Status s = Update(batch.data[i]);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  /// The current queryable answer.
  virtual SketchSummary Summary() const = 0;

  /// Merges another shard-local instance of the same sketch (same name and
  /// config) into this one. Sketches that merge at the answer level require
  /// `this` to be a *fresh* instance (no updates ingested) used purely as a
  /// merge accumulator; state-mergeable sketches accept any target. The
  /// engine always merges into fresh instances, which is valid for every
  /// sketch kind.
  virtual Status MergeFrom(const Sketch& other) = 0;

  /// Exact inverse of MergeFrom, where one exists: removes `other`'s
  /// previously merged contribution from this accumulator. Linear sketches
  /// (AMS, SIS-L0, rank) implement it — their state is a sum, so a stale
  /// shard term can be subtracted out. The default returns Unimplemented,
  /// which the engine's merge cache treats as "refold from scratch".
  virtual Status UnmergeFrom(const Sketch& other) {
    (void)other;
    return Status::Unimplemented(name() + ": UnmergeFrom not supported");
  }

  /// Serializes the sketch's state into the engine wire format (see
  /// wire.h) so it can cross a process boundary and be restored by
  /// DeserializeState on a peer constructed with the SAME SketchConfig.
  /// Every builtin family implements the pair; the payload starts with the
  /// registry name and a per-family state-version byte, and restoring it
  /// must reproduce Summary() bit-identically (state-level for the linear
  /// families and Misra-Gries; answer-level for the sampling heavy hitters,
  /// whose deserialized form is a read-only merge accumulator — exactly
  /// what the engine's snapshot/merge path consumes). The default returns
  /// Unimplemented, which remote backends surface at snapshot time.
  virtual Status SerializeState(wire::Writer& w) const {
    (void)w;
    return Status::Unimplemented(name() + ": SerializeState not supported");
  }

  /// Inverse of SerializeState. Only valid on a freshly constructed
  /// instance (no updates, no merges); implementations validate the payload
  /// against their configuration (name, dimensions, shared-randomness
  /// fingerprints) and fail with a Status — never crash, never silently
  /// accept — on any mismatch, truncation, or unknown state version.
  virtual Status DeserializeState(wire::Reader& r) {
    (void)r;
    return Status::Unimplemented(name() + ": DeserializeState not supported");
  }

  /// Information-theoretic size of the wrapped state, in bits.
  virtual uint64_t SpaceBits() const = 0;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_SKETCH_H_
