// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The type-erased sketch interface of the sharded ingestion engine.
//
// The per-algorithm classes under src/heavyhitters, src/distinct,
// src/moments and src/linalg each expose their own update and query types —
// exactly right for the white-box game harness, but unusable as a uniform
// serving surface. The engine wraps each of them behind `Sketch`:
//
//   * every sketch ingests TurnstileUpdate batches (an ItemUpdate is a
//     turnstile update with delta == 1; insertion-only sketches reject
//     negative deltas with InvalidArgument);
//   * every sketch answers queries through a `SketchSummary` — a scalar
//     (L0, F2, rank verdicts) and/or a weighted candidate list (heavy
//     hitters);
//   * every sketch can merge: shard-local instances combine into one global
//     answer. Linear sketches (AMS, SIS-L0, rank) merge at the state level
//     and the merged state is bit-identical to a single-instance run;
//     Misra-Gries merges with the mergeable-summaries guarantee; sampling
//     sketches (robust/CRHF HH) merge at the answer level, which is exact
//     for the engine because the ingestor partitions the universe across
//     shards (every item's entire substream lives in exactly one shard).
//
// The adversarial-game semantics of the wrapped algorithms are untouched:
// the engine only changes the plumbing around them, and every shard's
// randomness is derived deterministically from (config seed, shard index),
// so a sharded run is replayable bit-for-bit.

#ifndef WBS_ENGINE_SKETCH_H_
#define WBS_ENGINE_SKETCH_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "heavyhitters/misra_gries.h"
#include "stream/updates.h"

namespace wbs::engine {

/// Configuration handed to a sketch factory. `seed` drives *shared*
/// randomness (sign matrices, random oracles) and must be identical across
/// the shard copies of one logical sketch so state-level merges line up;
/// `shard_seed` drives *private* randomness (sampling tapes) and is
/// overwritten per shard by the ingestor.
struct SketchConfig {
  uint64_t universe = uint64_t{1} << 16;
  double eps = 0.1;    ///< heavy hitter threshold / accuracy knob
  double phi = 0.2;    ///< report threshold for (phi, eps)-HH
  double delta = 0.25; ///< failure probability budget
  uint64_t seed = 1;       ///< shared randomness (see above)
  uint64_t shard_seed = 1; ///< per-shard randomness (set by the ingestor)

  // Family-specific knobs (defaults are sensible test-scale values).
  size_t mg_counters = 64;        ///< Misra-Gries capacity k
  size_t ams_rows = 48;           ///< AMS sign projections
  double l0_eps = 0.5;            ///< SIS-L0 chunking exponent
  double l0_c = 0.25;             ///< SIS-L0 sketch-rows exponent
  uint64_t l0_f_inf_bound = uint64_t{1} << 20;  ///< promised ||f||_inf bound
  uint64_t time_budget_t = uint64_t{1} << 20;   ///< CRHF adversary budget T
  size_t rank_n = 64;             ///< rank sketch: matrix dimension
  size_t rank_k = 8;              ///< rank sketch: decision threshold
  uint64_t rank_q = 1000003;      ///< rank sketch: field modulus
};

/// A non-owning view of a run of turnstile updates.
///
/// The ingestor additionally attaches a *shared pre-aggregation* of the
/// batch — duplicate items combined in first-occurrence order, zero-delta
/// entries dropped — computed once per shard batch so that every
/// weight-equivalent sketch (linear sketches, weighted Misra-Gries) can
/// consume it without re-aggregating. Sampling sketches always read the raw
/// `data` (a Bernoulli sample of w unit updates is not one weighted
/// update).
struct UpdateBatch {
  const stream::TurnstileUpdate* data = nullptr;
  size_t size = 0;

  // Optional shared pre-aggregation (null when the caller did not build
  // one; wrappers then aggregate locally if they want to).
  const stream::TurnstileUpdate* aggregated = nullptr;
  size_t aggregated_size = 0;
  uint64_t effective_updates = 0;   ///< nonzero-delta entries in `data`
  bool has_negative_delta = false;  ///< any raw delta < 0 (insertion guard)
};

/// Aggregates `count` updates into `out` (first-occurrence order, zero
/// deltas dropped), reusing `index` as scratch. Returns {effective updates,
/// any-negative-delta}. A duplicate whose accumulation would overflow
/// int64_t is kept as its own entry instead (the view is then only mostly
/// deduplicated — consumers must apply entries sequentially, never assume
/// item uniqueness). Shared by the ingestor's per-shard aggregation and the
/// wrappers' local fallback so the two paths cannot diverge.
inline std::pair<uint64_t, bool> AggregateUpdates(
    const stream::TurnstileUpdate* data, size_t count,
    std::vector<stream::TurnstileUpdate>* out,
    std::unordered_map<uint64_t, size_t>* index) {
  out->clear();
  index->clear();
  uint64_t effective = 0;
  bool has_negative = false;
  for (size_t i = 0; i < count; ++i) {
    const auto& u = data[i];
    if (u.delta == 0) continue;
    ++effective;
    has_negative |= u.delta < 0;
    auto [it, inserted] = index->emplace(u.item, out->size());
    if (inserted) {
      out->push_back(u);
    } else {
      int64_t& acc = (*out)[it->second].delta;
      int64_t sum;
      if (__builtin_add_overflow(acc, u.delta, &sum)) {
        out->push_back(u);  // overflow: keep as a separate entry
      } else {
        acc = sum;
      }
    }
  }
  return {effective, has_negative};
}

/// The mergeable query answer of a sketch: a scalar and/or a candidate list.
struct SketchSummary {
  std::string sketch;        ///< registry name of the producing sketch
  bool has_scalar = false;
  double scalar = 0;         ///< L0 / F2 estimate, rank verdict (0/1), ...
  std::vector<hh::WeightedItem> items;  ///< HH candidates, estimate-descending
  uint64_t updates = 0;      ///< effective (nonzero-delta) updates summarized

  /// Estimated frequency of `item` from the candidate list (0 if absent).
  double Estimate(uint64_t item) const {
    for (const auto& wi : items) {
      if (wi.item == item) return wi.estimate;
    }
    return 0;
  }

  void SortItems() {
    std::sort(items.begin(), items.end(),
              [](const hh::WeightedItem& a, const hh::WeightedItem& b) {
                return a.estimate > b.estimate ||
                       (a.estimate == b.estimate && a.item < b.item);
              });
  }
};

/// Type-erased streaming sketch: batched turnstile ingestion, summary
/// queries, and merging. Instances are NOT thread-safe; the ingestor gives
/// each shard-local instance to exactly one worker.
class Sketch {
 public:
  virtual ~Sketch() = default;

  /// Registry name of this sketch ("misra_gries", "ams_f2", ...).
  virtual const std::string& name() const = 0;

  /// Applies a single turnstile update.
  virtual Status Update(const stream::TurnstileUpdate& u) = 0;

  /// Applies a whole batch. The default loops over Update(); wrappers of
  /// linear or weighted sketches override it to pre-aggregate duplicate
  /// items, amortizing per-update virtual-dispatch, hashing and RNG costs —
  /// on skewed (Zipfian) traffic this is the engine's main throughput lever.
  virtual Status ApplyBatch(const UpdateBatch& batch) {
    for (size_t i = 0; i < batch.size; ++i) {
      Status s = Update(batch.data[i]);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  /// The current queryable answer.
  virtual SketchSummary Summary() const = 0;

  /// Merges another shard-local instance of the same sketch (same name and
  /// config) into this one. Sketches that merge at the answer level require
  /// `this` to be a *fresh* instance (no updates ingested) used purely as a
  /// merge accumulator; state-mergeable sketches accept any target. The
  /// engine always merges into fresh instances, which is valid for every
  /// sketch kind.
  virtual Status MergeFrom(const Sketch& other) = 0;

  /// Exact inverse of MergeFrom, where one exists: removes `other`'s
  /// previously merged contribution from this accumulator. Linear sketches
  /// (AMS, SIS-L0, rank) implement it — their state is a sum, so a stale
  /// shard term can be subtracted out. The default returns Unimplemented,
  /// which the engine's merge cache treats as "refold from scratch".
  virtual Status UnmergeFrom(const Sketch& other) {
    (void)other;
    return Status::Unimplemented(name() + ": UnmergeFrom not supported");
  }

  /// Information-theoretic size of the wrapped state, in bits.
  virtual uint64_t SpaceBits() const = 0;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_SKETCH_H_
