// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// LoopbackRemoteBackend — a ShardBackend whose shards each live behind a
// socketpair served by a ShardServer (shard_server.h), speaking the engine
// wire format. Nothing engine-side touches shard memory: update batches are
// encoded as kUpdateBatch payloads, snapshots come back as serialized
// kSketchState frames and are reconstructed through the registry, and
// epochs/summaries are request/response frames.
//
// This is the proof that the Client facade, merge cache, and snapshot/epoch
// protocol survive a process-style boundary: for the state-mergeable
// families (ams_f2, sis_l0, rank_decision, misra_gries) a loopback engine
// answers BIT-IDENTICALLY to an in-process engine over the same
// submissions, because the server applies the same batches in the same
// order with the same derived shard seeds, and the wire format round-trips
// state exactly. Sampling heavy hitters cross answer-level, like their
// in-process snapshot clones. Swapping the socketpair for a TCP connection
// to another machine changes none of the protocol — that is the point.
//
// Per shard, the backend holds the server plus two client channels (data
// for ApplyBatch, control for queries), each guarded by its own mutex so
// concurrent query threads serialize per shard without blocking ingest.

#ifndef WBS_ENGINE_REMOTE_BACKEND_H_
#define WBS_ENGINE_REMOTE_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/backend.h"

namespace wbs::engine {

/// Factory for the loopback remote backend; plug into
/// IngestorOptions::backend. Spawns one ShardServer (two serving threads)
/// per shard.
BackendFactory LoopbackBackendFactory();

/// Reconnection policy of the TCP dialer. Unlike the loopback channels —
/// which poison on the first transport failure, forcing a MoveShard re-home
/// — a TCP channel that breaks is redialed WITHIN the failing call's
/// deadline: connect, kReqHello handshake, resync from the host's
/// last_applied_seq, retransmit. Only a peer that stays unreachable past
/// `op_deadline_ms` (or actively refuses — its listener is gone) surfaces
/// Unavailable and feeds the supervision/re-home path.
struct TcpDialerOptions {
  int connect_timeout_ms = 1000;  ///< per connect() attempt
  int op_deadline_ms = 1000;      ///< whole-call budget incl. redials
  int backoff_initial_ms = 1;     ///< doubles per failed redial...
  int backoff_max_ms = 50;        ///< ...up to this cap
};

struct TcpBackendOptions {
  /// Daemon endpoints ("host:port"); shard i is homed on endpoint
  /// i % endpoints.size(). EMPTY = self-host: the backend starts one
  /// in-process TcpShardHost per shard on an ephemeral 127.0.0.1 port and
  /// dials it over real sockets — the full handshake/resync stack with no
  /// external daemon, which is how tests and CI run it.
  std::vector<std::string> endpoints;
  TcpDialerOptions dialer;
};

/// Factory for the TCP remote backend (TcpRemoteBackend): each shard lives
/// behind a TcpShardHost session (tcp_transport.h), created via the
/// kReqHello spec on first contact. Bit-identical to loopback/in-process
/// for the state-mergeable families by the same argument — same batches,
/// same order, same resolved seeds, exact wire round-trip.
BackendFactory TcpBackendFactory(TcpBackendOptions options = {});

/// Resolves a backend factory by name: "inprocess" (or ""), "loopback",
/// "mixed" (alternating in-process / loopback placement via
/// CompositeBackendFactory), "tcp" (self-hosted TCP sockets), and
/// "tcp:HOST:PORT[,HOST:PORT...]" (external engine_shardd daemons).
/// Unknown names are InvalidArgument — this backs --backend= flags and the
/// WBS_ENGINE_BACKEND environment selection in tests and CI.
Result<BackendFactory> BackendFactoryByName(const std::string& name);

}  // namespace wbs::engine

#endif  // WBS_ENGINE_REMOTE_BACKEND_H_
