// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// LoopbackRemoteBackend — a ShardBackend whose shards each live behind a
// socketpair served by a ShardServer (shard_server.h), speaking the engine
// wire format. Nothing engine-side touches shard memory: update batches are
// encoded as kUpdateBatch payloads, snapshots come back as serialized
// kSketchState frames and are reconstructed through the registry, and
// epochs/summaries are request/response frames.
//
// This is the proof that the Client facade, merge cache, and snapshot/epoch
// protocol survive a process-style boundary: for the state-mergeable
// families (ams_f2, sis_l0, rank_decision, misra_gries) a loopback engine
// answers BIT-IDENTICALLY to an in-process engine over the same
// submissions, because the server applies the same batches in the same
// order with the same derived shard seeds, and the wire format round-trips
// state exactly. Sampling heavy hitters cross answer-level, like their
// in-process snapshot clones. Swapping the socketpair for a TCP connection
// to another machine changes none of the protocol — that is the point.
//
// Per shard, the backend holds the server plus two client channels (data
// for ApplyBatch, control for queries), each guarded by its own mutex so
// concurrent query threads serialize per shard without blocking ingest.

#ifndef WBS_ENGINE_REMOTE_BACKEND_H_
#define WBS_ENGINE_REMOTE_BACKEND_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "engine/backend.h"

namespace wbs::engine {

/// Factory for the loopback remote backend; plug into
/// IngestorOptions::backend. Spawns one ShardServer (two serving threads)
/// per shard.
BackendFactory LoopbackBackendFactory();

/// Resolves a backend factory by name: "inprocess" (or ""), "loopback",
/// and "mixed" (alternating in-process / loopback placement via
/// CompositeBackendFactory). Unknown names are InvalidArgument — this
/// backs --backend= flags and the WBS_ENGINE_BACKEND environment
/// selection in tests and CI.
Result<BackendFactory> BackendFactoryByName(const std::string& name);

}  // namespace wbs::engine

#endif  // WBS_ENGINE_REMOTE_BACKEND_H_
