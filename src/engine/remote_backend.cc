// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/remote_backend.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/shard_server.h"
#include "engine/wire.h"

namespace wbs::engine {
namespace {

class LoopbackRemoteBackend final : public ShardBackend {
 public:
  static Result<std::unique_ptr<ShardBackend>> Create(
      const BackendOptions& options) {
    std::unique_ptr<LoopbackRemoteBackend> backend(
        new LoopbackRemoteBackend(options));
    for (size_t shard = 0; shard < options.num_shards; ++shard) {
      auto rs = std::make_unique<RemoteShard>();
      rs->cfg = options.shard_seeds_resolved
                    ? options.config
                    : ShardConfigFor(options.config, shard);
      ShardServerOptions sopts;
      sopts.sketches = options.sketches;
      sopts.config = rs->cfg;
      sopts.snapshot_min_updates = options.snapshot_min_updates;
      auto server = ShardServer::Start(sopts);
      if (!server.ok()) return server.status();
      rs->server = std::move(server).value();
      backend->shards_.push_back(std::move(rs));
    }
    return Result<std::unique_ptr<ShardBackend>>(std::move(backend));
  }

  const std::string& name() const override {
    static const std::string kName = "loopback";
    return kName;
  }

  BackendCapabilities capabilities() const override {
    return BackendCapabilities{/*zero_copy=*/false,
                               /*crosses_process_boundary=*/true,
                               wire::kFormatVersion};
  }

  size_t num_shards() const override { return shards_.size(); }

  Status ApplyBatch(size_t shard, const stream::TurnstileUpdate* data,
                    size_t count) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    wire::Writer w;
    wire::EncodeUpdates(data, count, &w);
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/true,
                         wire::kReqApply, w.data(), &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;  // trailing epoch is advisory; the dirty scan polls it
  }

  Result<uint64_t> Epoch(size_t shard) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/false,
                         wire::kReqEpoch, {}, &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    uint64_t epoch = 0;
    if (Status se = r.U64(&epoch); !se.ok()) return se;
    return epoch;
  }

  Result<ShardSnapshot> Snapshot(size_t shard,
                                 size_t sketch_index) const override {
    auto serialized = SnapshotSerialized(shard, sketch_index);
    if (!serialized.ok()) return serialized.status();
    ShardSnapshot snap;
    snap.epoch = serialized.value().epoch;
    if (serialized.value().state.empty()) return snap;  // never published
    const auto t0 = std::chrono::steady_clock::now();
    auto sketch =
        DeserializeSketch(options_.sketches[sketch_index],
                          shards_[shard]->cfg, serialized.value().state);
    if (!sketch.ok()) return sketch.status();
    shards_[shard]->deserialize_us.Record(ElapsedUs(t0));
    snap.sketch = std::shared_ptr<const Sketch>(std::move(sketch).value());
    return snap;
  }

  Result<SerializedSnapshot> SnapshotSerialized(
      size_t shard, size_t sketch_index) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    if (sketch_index >= options_.sketches.size()) {
      return Status::OutOfRange("loopback backend: sketch out of range");
    }
    wire::Writer req;
    req.U32(uint32_t(sketch_index));
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/false,
                         wire::kReqSnapshot, req.data(), &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    SerializedSnapshot out;
    if (Status se = r.U64(&out.epoch); !se.ok()) return se;
    if (Status ss = r.Str(&out.state); !ss.ok()) return ss;
    return out;
  }

  Status Flush(size_t shard) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/false,
                         wire::kReqFlush, {}, &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Status ImportShardState(size_t shard,
                          const std::vector<std::string>& frames) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    if (frames.size() != options_.sketches.size()) {
      return Status::InvalidArgument(
          "loopback backend: handoff frame count does not match the "
          "configured sketch group");
    }
    // The handoff frame: a kReqImport whose payload is the sketch-state
    // frames, length-prefixed in sketch order. The server decodes and
    // installs them atomically, then publishes, so the imported history is
    // merge-visible on the first post-handoff query.
    wire::Writer req;
    req.U32(uint32_t(frames.size()));
    for (const std::string& frame : frames) req.Str(frame);
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/true,
                         wire::kReqImport, req.data(), &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Status Heartbeat(size_t shard, uint64_t timeout_ms) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    const RemoteShard& rs = *shards_[shard];
    if (rs.poisoned.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "loopback shard unreachable (poisoned channel)");
    }
    std::lock_guard<std::mutex> lock(rs.control_mu);
    const int fd = rs.server->control_fd();
    Status s = wire::WriteFrameFd(fd, wire::kReqHeartbeat, {});
    if (!s.ok()) return TransportFailure(rs, s);
    rs.frames_out.Inc();
    rs.bytes_out.Inc(FramedBytes(0));
    uint8_t resp_type = 0;
    std::string_view resp_payload;
    s = wire::ReadFrameFdTimeout(fd, int(timeout_ms), &frame_scratch(),
                                 &resp_type, &resp_payload);
    if (s.code() == Status::Code::kDeadlineExceeded) {
      // The deadline passed with no answer. A LATE answer arriving after we
      // give up would desync the channel framing for the next caller, so
      // the shard's channels are poisoned — every later call fails fast as
      // Unavailable until the placement is re-homed.
      rs.recv_errors.Inc();
      rs.poisoned.store(true, std::memory_order_release);
      return s;
    }
    if (!s.ok()) return TransportFailure(rs, s);
    rs.frames_in.Inc();
    rs.bytes_in.Inc(FramedBytes(resp_payload.size()));
    if (resp_type != wire::kResp) {
      return TransportFailure(
          rs, Status::Internal("loopback backend: unexpected response type"));
    }
    wire::Reader r(resp_payload);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Status InjectCrash(size_t shard, bool torn) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    shards_[shard]->server->CrashNow(torn);
    return Status::OK();
  }

  Result<SketchSummary> LiveSummary(size_t shard,
                                    size_t sketch_index) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    wire::Writer req;
    req.U32(uint32_t(sketch_index));
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/false,
                         wire::kReqSummary, req.data(), &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    SketchSummary summary;
    if (Status ss = wire::DecodeSummary(&r, &summary); !ss.ok()) return ss;
    return summary;
  }

  Result<std::vector<MetricSample>> Metrics(size_t shard) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    const RemoteShard& rs = *shards_[shard];
    // The shard's own samples (epoch, snapshot lag, serialize latency)
    // report THROUGH the control channel — the remote cell is the source
    // of truth for its state, exactly like every other query.
    std::string resp;
    Status s = RoundTrip(rs, /*data_channel=*/false, wire::kReqMetrics, {},
                         &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    std::vector<MetricSample> out;
    if (Status sm = wire::DecodeMetricSamples(&r, &out); !sm.ok()) return sm;
    // Client-side channel counters ride along under the wire.* prefix.
    out.push_back(CounterSample("wire.frames_out_total", rs.frames_out));
    out.push_back(CounterSample("wire.frames_in_total", rs.frames_in));
    out.push_back(CounterSample("wire.bytes_out_total", rs.bytes_out));
    out.push_back(CounterSample("wire.bytes_in_total", rs.bytes_in));
    out.push_back(CounterSample("wire.crc_rejects_total", rs.crc_rejects));
    out.push_back(CounterSample("wire.recv_errors_total", rs.recv_errors));
    out.push_back(HistogramSample("wire.roundtrip_us", rs.roundtrip_us));
    out.push_back(HistogramSample("wire.deserialize_us", rs.deserialize_us));
    return out;
  }

  uint64_t SpaceBits() const override {
    uint64_t bits = 0;
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
      std::string resp;
      if (!RoundTrip(*shards_[shard], false, wire::kReqSpaceBits, {}, &resp)
               .ok()) {
        return 0;
      }
      wire::Reader r(resp);
      Status remote = Status::OK();
      uint64_t shard_bits = 0;
      if (!wire::DecodeStatus(&r, &remote).ok() || !remote.ok() ||
          !r.U64(&shard_bits).ok()) {
        return 0;
      }
      bits += shard_bits;
    }
    return bits;
  }

 private:
  struct RemoteShard {
    std::unique_ptr<ShardServer> server;
    SketchConfig cfg;  ///< resolved shard config (for deserialization)
    // The data channel has a single caller by the backend contract, but the
    // mutex also covers inline mode and keeps the channel framing safe by
    // construction; the control channel is shared by query threads.
    mutable std::mutex data_mu;
    mutable std::mutex control_mu;
    // Client-side channel observability (relaxed atomics, safe from both
    // channels at once). Counted per round trip in RoundTrip().
    mutable Counter frames_out;
    mutable Counter frames_in;
    mutable Counter bytes_out;  ///< framed bytes written (incl. headers/CRC)
    mutable Counter bytes_in;
    mutable Counter crc_rejects;  ///< responses rejected for a bad checksum
    mutable Counter recv_errors;  ///< other failed response reads
    mutable Histogram roundtrip_us;
    mutable Histogram deserialize_us;  ///< snapshot state decode latency
    /// Sticky failure flag: set on the first transport-level failure
    /// (failed write, failed/corrupt read, heartbeat timeout). Once the
    /// stream alignment cannot be trusted, every later call on the shard
    /// fails fast with Unavailable instead of reading a stale frame.
    mutable std::atomic<bool> poisoned{false};
  };

  explicit LoopbackRemoteBackend(BackendOptions options)
      : options_(std::move(options)) {}

  static uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }

  /// Bytes one frame occupies on the wire for a payload of `n` bytes:
  /// u32 length + version + type + payload + u32 crc.
  static uint64_t FramedBytes(size_t n) { return uint64_t(n) + 10; }

  /// Classifies and records a transport-level failure, poisons the shard's
  /// channels, and maps it to Unavailable — the code the engine's failover
  /// layer keys off to distinguish "the placement is unreachable" (degrade,
  /// recover) from "the sketch rejected the request" (poison the pipeline).
  Status TransportFailure(const RemoteShard& shard, const Status& s) const {
    // A checksum reject means the bytes arrived but failed validation —
    // the corruption counter the health surface watches. Everything else
    // (EOF, EPIPE, short frame, protocol desync) is a receive error.
    if (s.message().find("checksum") != std::string::npos) {
      shard.crc_rejects.Inc();
    } else {
      shard.recv_errors.Inc();
    }
    shard.poisoned.store(true, std::memory_order_release);
    return Status::Unavailable("loopback shard unreachable: " + s.ToString());
  }

  /// One request/response exchange on the shard's chosen channel. The
  /// response payload (after frame validation) lands in `resp`.
  Status RoundTrip(const RemoteShard& shard, bool data_channel, uint8_t type,
                   std::string_view payload, std::string* resp) const {
    if (shard.poisoned.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "loopback shard unreachable (poisoned channel)");
    }
    std::mutex& mu = data_channel ? shard.data_mu : shard.control_mu;
    const int fd = data_channel ? shard.server->data_fd()
                                : shard.server->control_fd();
    const auto t0 = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu);
    Status s = wire::WriteFrameFd(fd, type, payload);
    if (!s.ok()) return TransportFailure(shard, s);
    shard.frames_out.Inc();
    shard.bytes_out.Inc(FramedBytes(payload.size()));
    uint8_t resp_type = 0;
    std::string_view resp_payload;
    s = wire::ReadFrameFd(fd, &frame_scratch(), &resp_type, &resp_payload);
    if (!s.ok()) return TransportFailure(shard, s);
    shard.frames_in.Inc();
    shard.bytes_in.Inc(FramedBytes(resp_payload.size()));
    shard.roundtrip_us.Record(ElapsedUs(t0));
    if (resp_type != wire::kResp) {
      return TransportFailure(
          shard, Status::Internal("loopback backend: unexpected response type"));
    }
    resp->assign(resp_payload);
    return Status::OK();
  }

  /// Per-thread frame buffer so concurrent round trips (different shards /
  /// channels) do not share scratch.
  static std::string& frame_scratch() {
    thread_local std::string buf;
    return buf;
  }

  BackendOptions options_;
  std::vector<std::unique_ptr<RemoteShard>> shards_;
};

}  // namespace

BackendFactory LoopbackBackendFactory() {
  return [](const BackendOptions& options) {
    return LoopbackRemoteBackend::Create(options);
  };
}

Result<BackendFactory> BackendFactoryByName(const std::string& name) {
  if (name.empty() || name == "inprocess") return InProcessBackendFactory();
  if (name == "loopback") return LoopbackBackendFactory();
  if (name == "mixed") {
    // Alternating placement: even shards in-process, odd shards behind the
    // loopback wire — one engine spanning both worlds at once.
    return CompositeBackendFactory(
        {InProcessBackendFactory(), LoopbackBackendFactory()});
  }
  return Status::InvalidArgument("unknown shard backend \"" + name +
                                 "\" (want inprocess | loopback | mixed)");
}

}  // namespace wbs::engine
