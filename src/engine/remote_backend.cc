// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/remote_backend.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "engine/shard_server.h"
#include "engine/tcp_transport.h"
#include "engine/wire.h"

namespace wbs::engine {
namespace {

class LoopbackRemoteBackend final : public ShardBackend {
 public:
  static Result<std::unique_ptr<ShardBackend>> Create(
      const BackendOptions& options) {
    std::unique_ptr<LoopbackRemoteBackend> backend(
        new LoopbackRemoteBackend(options));
    for (size_t shard = 0; shard < options.num_shards; ++shard) {
      auto rs = std::make_unique<RemoteShard>();
      rs->cfg = options.shard_seeds_resolved
                    ? options.config
                    : ShardConfigFor(options.config, shard);
      ShardServerOptions sopts;
      sopts.sketches = options.sketches;
      sopts.config = rs->cfg;
      sopts.snapshot_min_updates = options.snapshot_min_updates;
      auto server = ShardServer::Start(sopts);
      if (!server.ok()) return server.status();
      rs->server = std::move(server).value();
      backend->shards_.push_back(std::move(rs));
    }
    return Result<std::unique_ptr<ShardBackend>>(std::move(backend));
  }

  const std::string& name() const override {
    static const std::string kName = "loopback";
    return kName;
  }

  BackendCapabilities capabilities() const override {
    return BackendCapabilities{/*zero_copy=*/false,
                               /*crosses_process_boundary=*/true,
                               wire::kFormatVersion};
  }

  size_t num_shards() const override { return shards_.size(); }

  Status ApplyBatch(size_t shard, const stream::TurnstileUpdate* data,
                    size_t count) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    wire::Writer w;
    wire::EncodeUpdates(data, count, &w);
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/true,
                         wire::kReqApply, w.data(), &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;  // trailing epoch is advisory; the dirty scan polls it
  }

  Result<uint64_t> Epoch(size_t shard) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/false,
                         wire::kReqEpoch, {}, &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    uint64_t epoch = 0;
    if (Status se = r.U64(&epoch); !se.ok()) return se;
    return epoch;
  }

  Result<ShardSnapshot> Snapshot(size_t shard,
                                 size_t sketch_index) const override {
    auto serialized = SnapshotSerialized(shard, sketch_index);
    if (!serialized.ok()) return serialized.status();
    ShardSnapshot snap;
    snap.epoch = serialized.value().epoch;
    if (serialized.value().state.empty()) return snap;  // never published
    const auto t0 = std::chrono::steady_clock::now();
    auto sketch =
        DeserializeSketch(options_.sketches[sketch_index],
                          shards_[shard]->cfg, serialized.value().state);
    if (!sketch.ok()) return sketch.status();
    shards_[shard]->deserialize_us.Record(ElapsedUs(t0));
    snap.sketch = std::shared_ptr<const Sketch>(std::move(sketch).value());
    return snap;
  }

  Result<SerializedSnapshot> SnapshotSerialized(
      size_t shard, size_t sketch_index) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    if (sketch_index >= options_.sketches.size()) {
      return Status::OutOfRange("loopback backend: sketch out of range");
    }
    wire::Writer req;
    req.U32(uint32_t(sketch_index));
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/false,
                         wire::kReqSnapshot, req.data(), &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    SerializedSnapshot out;
    if (Status se = r.U64(&out.epoch); !se.ok()) return se;
    if (Status ss = r.Str(&out.state); !ss.ok()) return ss;
    return out;
  }

  Status Flush(size_t shard) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/false,
                         wire::kReqFlush, {}, &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Status ImportShardState(size_t shard,
                          const std::vector<std::string>& frames) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    if (frames.size() != options_.sketches.size()) {
      return Status::InvalidArgument(
          "loopback backend: handoff frame count does not match the "
          "configured sketch group");
    }
    // The handoff frame: a kReqImport whose payload is the sketch-state
    // frames, length-prefixed in sketch order. The server decodes and
    // installs them atomically, then publishes, so the imported history is
    // merge-visible on the first post-handoff query.
    wire::Writer req;
    req.U32(uint32_t(frames.size()));
    for (const std::string& frame : frames) req.Str(frame);
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/true,
                         wire::kReqImport, req.data(), &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Status Heartbeat(size_t shard, uint64_t timeout_ms) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    const RemoteShard& rs = *shards_[shard];
    if (rs.poisoned.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "loopback shard unreachable (poisoned channel)");
    }
    std::lock_guard<std::mutex> lock(rs.control_mu);
    const int fd = rs.server->control_fd();
    Status s = wire::WriteFrameFd(fd, wire::kReqHeartbeat, {});
    if (!s.ok()) return TransportFailure(rs, s);
    rs.frames_out.Inc();
    rs.bytes_out.Inc(FramedBytes(0));
    uint8_t resp_type = 0;
    std::string_view resp_payload;
    s = wire::ReadFrameFdTimeout(fd, int(timeout_ms), &frame_scratch(),
                                 &resp_type, &resp_payload);
    if (s.code() == Status::Code::kDeadlineExceeded) {
      // The deadline passed with no answer. A LATE answer arriving after we
      // give up would desync the channel framing for the next caller, so
      // the shard's channels are poisoned — every later call fails fast as
      // Unavailable until the placement is re-homed.
      rs.recv_errors.Inc();
      rs.poisoned.store(true, std::memory_order_release);
      return s;
    }
    if (!s.ok()) return TransportFailure(rs, s);
    rs.frames_in.Inc();
    rs.bytes_in.Inc(FramedBytes(resp_payload.size()));
    if (resp_type != wire::kResp) {
      return TransportFailure(
          rs, Status::Internal("loopback backend: unexpected response type"));
    }
    wire::Reader r(resp_payload);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Status InjectCrash(size_t shard, bool torn) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    shards_[shard]->server->CrashNow(torn);
    return Status::OK();
  }

  Result<SketchSummary> LiveSummary(size_t shard,
                                    size_t sketch_index) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    wire::Writer req;
    req.U32(uint32_t(sketch_index));
    std::string resp;
    Status s = RoundTrip(*shards_[shard], /*data_channel=*/false,
                         wire::kReqSummary, req.data(), &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    SketchSummary summary;
    if (Status ss = wire::DecodeSummary(&r, &summary); !ss.ok()) return ss;
    return summary;
  }

  Result<std::vector<MetricSample>> Metrics(size_t shard) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("loopback backend: shard out of range");
    }
    const RemoteShard& rs = *shards_[shard];
    // The shard's own samples (epoch, snapshot lag, serialize latency)
    // report THROUGH the control channel — the remote cell is the source
    // of truth for its state, exactly like every other query.
    std::string resp;
    Status s = RoundTrip(rs, /*data_channel=*/false, wire::kReqMetrics, {},
                         &resp);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    std::vector<MetricSample> out;
    if (Status sm = wire::DecodeMetricSamples(&r, &out); !sm.ok()) return sm;
    // Client-side channel counters ride along under the wire.* prefix.
    out.push_back(CounterSample("wire.frames_out_total", rs.frames_out));
    out.push_back(CounterSample("wire.frames_in_total", rs.frames_in));
    out.push_back(CounterSample("wire.bytes_out_total", rs.bytes_out));
    out.push_back(CounterSample("wire.bytes_in_total", rs.bytes_in));
    out.push_back(CounterSample("wire.crc_rejects_total", rs.crc_rejects));
    out.push_back(CounterSample("wire.recv_errors_total", rs.recv_errors));
    out.push_back(HistogramSample("wire.roundtrip_us", rs.roundtrip_us));
    out.push_back(HistogramSample("wire.deserialize_us", rs.deserialize_us));
    return out;
  }

  uint64_t SpaceBits() const override {
    uint64_t bits = 0;
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
      std::string resp;
      if (!RoundTrip(*shards_[shard], false, wire::kReqSpaceBits, {}, &resp)
               .ok()) {
        return 0;
      }
      wire::Reader r(resp);
      Status remote = Status::OK();
      uint64_t shard_bits = 0;
      if (!wire::DecodeStatus(&r, &remote).ok() || !remote.ok() ||
          !r.U64(&shard_bits).ok()) {
        return 0;
      }
      bits += shard_bits;
    }
    return bits;
  }

 private:
  struct RemoteShard {
    std::unique_ptr<ShardServer> server;
    SketchConfig cfg;  ///< resolved shard config (for deserialization)
    // The data channel has a single caller by the backend contract, but the
    // mutex also covers inline mode and keeps the channel framing safe by
    // construction; the control channel is shared by query threads.
    mutable std::mutex data_mu;
    mutable std::mutex control_mu;
    // Client-side channel observability (relaxed atomics, safe from both
    // channels at once). Counted per round trip in RoundTrip().
    mutable Counter frames_out;
    mutable Counter frames_in;
    mutable Counter bytes_out;  ///< framed bytes written (incl. headers/CRC)
    mutable Counter bytes_in;
    mutable Counter crc_rejects;  ///< responses rejected for a bad checksum
    mutable Counter recv_errors;  ///< other failed response reads
    mutable Histogram roundtrip_us;
    mutable Histogram deserialize_us;  ///< snapshot state decode latency
    /// Sticky failure flag: set on the first transport-level failure
    /// (failed write, failed/corrupt read, heartbeat timeout). Once the
    /// stream alignment cannot be trusted, every later call on the shard
    /// fails fast with Unavailable instead of reading a stale frame.
    mutable std::atomic<bool> poisoned{false};
  };

  explicit LoopbackRemoteBackend(BackendOptions options)
      : options_(std::move(options)) {}

  static uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }

  /// Bytes one frame occupies on the wire for a payload of `n` bytes:
  /// u32 length + version + type + payload + u32 crc.
  static uint64_t FramedBytes(size_t n) { return uint64_t(n) + 10; }

  /// Classifies and records a transport-level failure, poisons the shard's
  /// channels, and maps it to Unavailable — the code the engine's failover
  /// layer keys off to distinguish "the placement is unreachable" (degrade,
  /// recover) from "the sketch rejected the request" (poison the pipeline).
  Status TransportFailure(const RemoteShard& shard, const Status& s) const {
    // A checksum reject means the bytes arrived but failed validation —
    // the corruption counter the health surface watches. Everything else
    // (EOF, EPIPE, short frame, protocol desync) is a receive error.
    if (s.message().find("checksum") != std::string::npos) {
      shard.crc_rejects.Inc();
    } else {
      shard.recv_errors.Inc();
    }
    shard.poisoned.store(true, std::memory_order_release);
    return Status::Unavailable("loopback shard unreachable: " + s.ToString());
  }

  /// One request/response exchange on the shard's chosen channel. The
  /// response payload (after frame validation) lands in `resp`.
  Status RoundTrip(const RemoteShard& shard, bool data_channel, uint8_t type,
                   std::string_view payload, std::string* resp) const {
    if (shard.poisoned.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "loopback shard unreachable (poisoned channel)");
    }
    std::mutex& mu = data_channel ? shard.data_mu : shard.control_mu;
    const int fd = data_channel ? shard.server->data_fd()
                                : shard.server->control_fd();
    const auto t0 = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu);
    Status s = wire::WriteFrameFd(fd, type, payload);
    if (!s.ok()) return TransportFailure(shard, s);
    shard.frames_out.Inc();
    shard.bytes_out.Inc(FramedBytes(payload.size()));
    uint8_t resp_type = 0;
    std::string_view resp_payload;
    s = wire::ReadFrameFd(fd, &frame_scratch(), &resp_type, &resp_payload);
    if (!s.ok()) return TransportFailure(shard, s);
    shard.frames_in.Inc();
    shard.bytes_in.Inc(FramedBytes(resp_payload.size()));
    shard.roundtrip_us.Record(ElapsedUs(t0));
    if (resp_type != wire::kResp) {
      return TransportFailure(
          shard, Status::Internal("loopback backend: unexpected response type"));
    }
    resp->assign(resp_payload);
    return Status::OK();
  }

  /// Per-thread frame buffer so concurrent round trips (different shards /
  /// channels) do not share scratch.
  static std::string& frame_scratch() {
    thread_local std::string buf;
    return buf;
  }

  BackendOptions options_;
  std::vector<std::unique_ptr<RemoteShard>> shards_;
};

// ---- TCP backend -----------------------------------------------------------

/// Session tokens must be unique per (process, shard instance): a daemon
/// keyed on a colliding token would hand a foreign session to the dialer.
uint64_t NewSessionToken() {
  static std::atomic<uint64_t> counter{1};
  uint64_t state = (uint64_t(::getpid()) << 32) ^
                   counter.fetch_add(1, std::memory_order_relaxed);
  const uint64_t token = SplitMix64(&state);
  return token == 0 ? 1 : token;
}

/// A ShardBackend whose shards live behind TCP sessions (tcp_transport.h).
/// The channel discipline mirrors loopback (data channel for applies and
/// handoff imports, control channel for queries, one mutex each), but a
/// broken connection is REDIALED inside the failing call's deadline and the
/// handshake's last_applied_seq resyncs in-flight applies exactly-once —
/// transient partitions heal with no re-home and no topology churn.
class TcpRemoteBackend final : public ShardBackend {
 public:
  static Result<std::unique_ptr<ShardBackend>> Create(
      const BackendOptions& options, const TcpBackendOptions& topts) {
    std::unique_ptr<TcpRemoteBackend> backend(
        new TcpRemoteBackend(options, topts.dialer));
    for (size_t shard = 0; shard < options.num_shards; ++shard) {
      auto ts = std::make_unique<TcpShard>();
      ts->cfg = options.shard_seeds_resolved
                    ? options.config
                    : ShardConfigFor(options.config, shard);
      ts->shard_id = shard;
      ts->token = NewSessionToken();
      ts->spec.sketches = options.sketches;
      ts->spec.config = ts->cfg;
      ts->spec.snapshot_min_updates = options.snapshot_min_updates;
      if (topts.endpoints.empty()) {
        auto host = TcpShardHost::Start(TcpShardHostOptions{});
        if (!host.ok()) return host.status();
        ts->self_host = std::move(host).value();
        ts->host = "127.0.0.1";
        ts->port = ts->self_host->port();
        ts->endpoint_str = ts->self_host->endpoint();
      } else {
        ts->endpoint_str = topts.endpoints[shard % topts.endpoints.size()];
        Status s = SplitEndpoint(ts->endpoint_str, &ts->host, &ts->port);
        if (!s.ok()) return s;
      }
      backend->shards_.push_back(std::move(ts));
    }
    return Result<std::unique_ptr<ShardBackend>>(std::move(backend));
  }

  const std::string& name() const override {
    static const std::string kName = "tcp";
    return kName;
  }

  BackendCapabilities capabilities() const override {
    return BackendCapabilities{/*zero_copy=*/false,
                               /*crosses_process_boundary=*/true,
                               wire::kFormatVersion};
  }

  size_t num_shards() const override { return shards_.size(); }

  Status ApplyBatch(size_t shard, const stream::TurnstileUpdate* data,
                    size_t count) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    TcpShard& ts = *shards_[shard];
    // Single caller per shard by the backend contract, so the sequence
    // counter needs no lock; consumed even when the call fails, so an
    // abandoned batch leaves a GAP — the host never sees its sequence, and
    // the dropped-update accounting of the supervision layer owns the loss.
    const uint64_t seq = ts.next_apply_seq++;
    wire::Writer w;
    w.U64(seq);
    wire::EncodeUpdates(data, count, &w);
    std::string resp;
    Status s = Call(ts, /*data_channel=*/true, wire::kReqApplySeq, w.data(),
                    &resp, dialer_.op_deadline_ms, seq);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Result<uint64_t> Epoch(size_t shard) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    std::string resp;
    Status s = Call(*shards_[shard], /*data_channel=*/false, wire::kReqEpoch,
                    {}, &resp, dialer_.op_deadline_ms);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    uint64_t epoch = 0;
    if (Status se = r.U64(&epoch); !se.ok()) return se;
    shards_[shard]->last_epoch.store(epoch, std::memory_order_relaxed);
    return epoch;
  }

  Result<ShardSnapshot> Snapshot(size_t shard,
                                 size_t sketch_index) const override {
    auto serialized = SnapshotSerialized(shard, sketch_index);
    if (!serialized.ok()) return serialized.status();
    ShardSnapshot snap;
    snap.epoch = serialized.value().epoch;
    if (serialized.value().state.empty()) return snap;  // never published
    const auto t0 = std::chrono::steady_clock::now();
    auto sketch =
        DeserializeSketch(options_.sketches[sketch_index],
                          shards_[shard]->cfg, serialized.value().state);
    if (!sketch.ok()) return sketch.status();
    shards_[shard]->deserialize_us.Record(ElapsedUs(t0));
    snap.sketch = std::shared_ptr<const Sketch>(std::move(sketch).value());
    return snap;
  }

  Result<SerializedSnapshot> SnapshotSerialized(
      size_t shard, size_t sketch_index) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    if (sketch_index >= options_.sketches.size()) {
      return Status::OutOfRange("tcp backend: sketch out of range");
    }
    wire::Writer req;
    req.U32(uint32_t(sketch_index));
    std::string resp;
    Status s = Call(*shards_[shard], /*data_channel=*/false,
                    wire::kReqSnapshot, req.data(), &resp,
                    dialer_.op_deadline_ms);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    SerializedSnapshot out;
    if (Status se = r.U64(&out.epoch); !se.ok()) return se;
    if (Status ss = r.Str(&out.state); !ss.ok()) return ss;
    return out;
  }

  Status Flush(size_t shard) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    std::string resp;
    Status s = Call(*shards_[shard], /*data_channel=*/false, wire::kReqFlush,
                    {}, &resp, dialer_.op_deadline_ms);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Status ImportShardState(size_t shard,
                          const std::vector<std::string>& frames) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    if (frames.size() != options_.sketches.size()) {
      return Status::InvalidArgument(
          "tcp backend: handoff frame count does not match the configured "
          "sketch group");
    }
    wire::Writer req;
    req.U32(uint32_t(frames.size()));
    for (const std::string& frame : frames) req.Str(frame);
    std::string resp;
    Status s = Call(*shards_[shard], /*data_channel=*/true, wire::kReqImport,
                    req.data(), &resp, dialer_.op_deadline_ms);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Status Heartbeat(size_t shard, uint64_t timeout_ms) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    std::string resp;
    // The probe's timeout IS the call deadline: a dead peer costs exactly
    // the supervisor's probe budget, never the full op deadline.
    Status s = Call(*shards_[shard], /*data_channel=*/false,
                    wire::kReqHeartbeat, {}, &resp, int(timeout_ms));
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    return remote;
  }

  Status InjectCrash(size_t shard, bool torn) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    if (shards_[shard]->self_host == nullptr) {
      return Status::Unimplemented(
          "tcp backend: InjectCrash requires self-hosted shards (kill the "
          "external daemon instead)");
    }
    shards_[shard]->self_host->CrashNow(torn);
    return Status::OK();
  }

  Status InjectPartition(size_t shard) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    TcpShard& ts = *shards_[shard];
    if (ts.self_host != nullptr) {
      // Server-side severance: the host kills the sockets but keeps the
      // listener and all session state — the dialer notices on its next
      // call and resyncs.
      ts.self_host->DropConnections();
      return Status::OK();
    }
    for (TcpChannel* ch : {&ts.data, &ts.control}) {
      std::lock_guard<std::mutex> lock(ch->mu);
      if (ch->fd >= 0) {
        ::shutdown(ch->fd, SHUT_RDWR);
        ::close(ch->fd);
        ch->fd = -1;
      }
    }
    return Status::OK();
  }

  std::string Endpoint(size_t shard) const override {
    if (shard >= shards_.size()) return std::string();
    return shards_[shard]->endpoint_str;
  }

  Result<SketchSummary> LiveSummary(size_t shard,
                                    size_t sketch_index) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    wire::Writer req;
    req.U32(uint32_t(sketch_index));
    std::string resp;
    Status s = Call(*shards_[shard], /*data_channel=*/false, wire::kReqSummary,
                    req.data(), &resp, dialer_.op_deadline_ms);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    SketchSummary summary;
    if (Status ss = wire::DecodeSummary(&r, &summary); !ss.ok()) return ss;
    return summary;
  }

  Result<std::vector<MetricSample>> Metrics(size_t shard) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("tcp backend: shard out of range");
    }
    const TcpShard& ts = *shards_[shard];
    std::string resp;
    Status s = Call(ts, /*data_channel=*/false, wire::kReqMetrics, {}, &resp,
                    dialer_.op_deadline_ms);
    if (!s.ok()) return s;
    wire::Reader r(resp);
    Status remote = Status::OK();
    if (Status sd = wire::DecodeStatus(&r, &remote); !sd.ok()) return sd;
    if (!remote.ok()) return remote;
    std::vector<MetricSample> out;
    if (Status sm = wire::DecodeMetricSamples(&r, &out); !sm.ok()) return sm;
    out.push_back(CounterSample("wire.frames_out_total", ts.frames_out));
    out.push_back(CounterSample("wire.frames_in_total", ts.frames_in));
    out.push_back(CounterSample("wire.bytes_out_total", ts.bytes_out));
    out.push_back(CounterSample("wire.bytes_in_total", ts.bytes_in));
    out.push_back(CounterSample("wire.crc_rejects_total", ts.crc_rejects));
    out.push_back(CounterSample("wire.recv_errors_total", ts.recv_errors));
    out.push_back(CounterSample("tcp.reconnects_total", ts.reconnects));
    out.push_back(CounterSample("tcp.resyncs_total", ts.resyncs));
    out.push_back(HistogramSample("wire.roundtrip_us", ts.roundtrip_us));
    out.push_back(HistogramSample("wire.deserialize_us", ts.deserialize_us));
    return out;
  }

  uint64_t SpaceBits() const override {
    uint64_t bits = 0;
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
      std::string resp;
      if (!Call(*shards_[shard], false, wire::kReqSpaceBits, {}, &resp,
                dialer_.op_deadline_ms)
               .ok()) {
        return 0;
      }
      wire::Reader r(resp);
      Status remote = Status::OK();
      uint64_t shard_bits = 0;
      if (!wire::DecodeStatus(&r, &remote).ok() || !remote.ok() ||
          !r.U64(&shard_bits).ok()) {
        return 0;
      }
      bits += shard_bits;
    }
    return bits;
  }

 private:
  struct TcpChannel {
    mutable std::mutex mu;
    int fd = -1;  ///< -1 = not connected (dialed lazily / after failure)
  };

  struct TcpShard {
    std::string host;
    uint16_t port = 0;
    std::string endpoint_str;  ///< "host:port" for placement failure domains
    uint64_t token = 0;
    uint64_t shard_id = 0;
    SketchConfig cfg;   ///< resolved shard config (for deserialization)
    TcpShardSpec spec;  ///< shipped with the FIRST hello only
    std::unique_ptr<TcpShardHost> self_host;  ///< null in endpoint mode

    TcpChannel data;
    TcpChannel control;
    /// Set once any channel's hello succeeded: from then on hellos carry no
    /// spec, so a host that lost the session answers NotFound instead of
    /// silently recreating an empty shard.
    mutable std::atomic<bool> established{false};
    uint64_t next_apply_seq = 1;  ///< single caller per the backend contract
    mutable std::atomic<uint64_t> last_epoch{0};

    mutable Counter frames_out;
    mutable Counter frames_in;
    mutable Counter bytes_out;
    mutable Counter bytes_in;
    mutable Counter crc_rejects;
    mutable Counter recv_errors;
    mutable Counter reconnects;  ///< successful REdials (not first connects)
    mutable Counter resyncs;     ///< applies acked from the hello's seq cursor
    mutable Histogram roundtrip_us;
    mutable Histogram deserialize_us;

    ~TcpShard() {
      for (TcpChannel* ch : {&data, &control}) {
        std::lock_guard<std::mutex> lock(ch->mu);
        if (ch->fd >= 0) ::close(ch->fd);
      }
    }
  };

  TcpRemoteBackend(BackendOptions options, TcpDialerOptions dialer)
      : options_(std::move(options)), dialer_(dialer) {}

  static uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }

  static uint64_t FramedBytes(size_t n) { return uint64_t(n) + 10; }

  static int RemainingMs(std::chrono::steady_clock::time_point deadline) {
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
    return ms <= 0 ? 0 : int(ms);
  }

  /// A connect/handshake failure that retrying inside the deadline can fix:
  /// timeouts, resets, dropped sockets. NOT a refused connection (the
  /// listener is GONE — retrying burns the caller's deadline for nothing)
  /// and NOT a handshake rejection (NotFound/InvalidArgument from the host
  /// is authoritative).
  static bool RetryableConnectFailure(const Status& s) {
    switch (s.code()) {
      case Status::Code::kUnavailable:
        return s.message().find("connection refused") == std::string::npos;
      case Status::Code::kDeadlineExceeded:
      case Status::Code::kInternal:
        return true;
      default:
        return false;
    }
  }

  /// Dials and handshakes the channel. ch.mu must be held. On success the
  /// channel fd is connected and `reply` holds the host's epoch + apply
  /// cursor (the resync decision inputs).
  Status ConnectLocked(const TcpShard& ts, TcpChannel& ch, bool data_channel,
                       std::chrono::steady_clock::time_point deadline,
                       TcpHelloReply* reply) const {
    const int remaining = RemainingMs(deadline);
    if (remaining <= 0) {
      return Status::DeadlineExceeded("tcp: no deadline left to connect");
    }
    auto fd = TcpConnectFd(ts.host, ts.port,
                           std::min(dialer_.connect_timeout_ms, remaining));
    if (!fd.ok()) return fd.status();
    TcpHello hello;
    hello.channel = data_channel ? 0 : 1;
    hello.session_token = ts.token;
    hello.shard_id = ts.shard_id;
    hello.last_acked_epoch = ts.last_epoch.load(std::memory_order_relaxed);
    hello.has_spec = !ts.established.load(std::memory_order_acquire);
    if (hello.has_spec) hello.spec = ts.spec;
    wire::Writer w;
    EncodeHello(hello, &w);
    Status s = wire::WriteFrameFd(fd.value(), wire::kReqHello, w.data());
    uint8_t type = 0;
    std::string_view payload;
    if (s.ok()) {
      s = wire::ReadFrameFdTimeout(fd.value(),
                                   std::max(1, RemainingMs(deadline)),
                                   &frame_scratch(), &type, &payload);
    }
    if (s.ok() && type != wire::kResp) {
      s = Status::Internal("tcp: unexpected handshake response type");
    }
    Status remote = Status::OK();
    if (s.ok()) {
      wire::Reader r(payload);
      s = wire::DecodeStatus(&r, &remote);
      if (s.ok() && remote.ok()) {
        if (!(s = r.U64(&reply->epoch)).ok() ||
            !(s = r.U64(&reply->last_applied_seq)).ok()) {
          s = Status::Internal("tcp: truncated handshake response");
        }
      }
    }
    if (!s.ok()) {
      ::close(fd.value());
      return s;  // transport-level → retryable by classification above
    }
    if (!remote.ok()) {
      ::close(fd.value());
      return remote;  // host rejection → authoritative, not retryable
    }
    ts.established.store(true, std::memory_order_release);
    ts.last_epoch.store(reply->epoch, std::memory_order_relaxed);
    ch.fd = fd.value();
    return Status::OK();
  }

  /// One request/response on the shard's chosen channel, with reconnect —
  /// the channel is (re)dialed and handshaken inside `deadline_ms`, with
  /// exponential backoff between attempts. For kReqApplySeq calls,
  /// `apply_seq` lets a reconnect detect that the host already applied the
  /// batch (its ack was lost) and synthesize the ack instead of resending.
  Status Call(const TcpShard& ts, bool data_channel, uint8_t type,
              std::string_view payload, std::string* resp, int deadline_ms,
              uint64_t apply_seq = 0) const {
    TcpChannel& ch =
        const_cast<TcpChannel&>(data_channel ? ts.data : ts.control);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    std::lock_guard<std::mutex> lock(ch.mu);
    int backoff_ms = dialer_.backoff_initial_ms;
    bool redialing = false;
    for (;;) {
      if (ch.fd < 0) {
        TcpHelloReply reply;
        Status c = ConnectLocked(ts, ch, data_channel, deadline, &reply);
        if (!c.ok()) {
          if (!RetryableConnectFailure(c) || RemainingMs(deadline) <= 0) {
            return Status::Unavailable("tcp shard unreachable: " +
                                       c.ToString());
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min(backoff_ms, std::max(1, RemainingMs(deadline)))));
          backoff_ms = std::min(backoff_ms * 2, dialer_.backoff_max_ms);
          continue;
        }
        if (redialing) ts.reconnects.Inc();
        if (apply_seq != 0 && reply.last_applied_seq >= apply_seq) {
          // The host applied this batch before the connection broke — the
          // ack was lost, not the update. Synthesize it; resending would be
          // answered from the host's cache anyway.
          ts.resyncs.Inc();
          wire::Writer w;
          wire::EncodeStatus(Status::OK(), &w);
          w.U64(reply.epoch);
          *resp = w.Take();
          return Status::OK();
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      Status s = wire::WriteFrameFd(ch.fd, type, payload);
      uint8_t resp_type = 0;
      std::string_view resp_payload;
      if (s.ok()) {
        ts.frames_out.Inc();
        ts.bytes_out.Inc(FramedBytes(payload.size()));
        s = wire::ReadFrameFdTimeout(ch.fd, std::max(1, RemainingMs(deadline)),
                                     &frame_scratch(), &resp_type,
                                     &resp_payload);
      }
      if (s.ok() && resp_type != wire::kResp) {
        s = Status::Internal("tcp backend: unexpected response type");
      }
      if (!s.ok()) {
        if (s.message().find("checksum") != std::string::npos) {
          ts.crc_rejects.Inc();
        } else {
          ts.recv_errors.Inc();
        }
        ::close(ch.fd);
        ch.fd = -1;
        redialing = true;
        if (RemainingMs(deadline) <= 0) {
          return Status::Unavailable("tcp shard unreachable: " + s.ToString());
        }
        continue;  // redial + handshake resync within the same call
      }
      ts.frames_in.Inc();
      ts.bytes_in.Inc(FramedBytes(resp_payload.size()));
      ts.roundtrip_us.Record(ElapsedUs(t0));
      resp->assign(resp_payload);
      return Status::OK();
    }
  }

  static std::string& frame_scratch() {
    thread_local std::string buf;
    return buf;
  }

  BackendOptions options_;
  TcpDialerOptions dialer_;
  std::vector<std::unique_ptr<TcpShard>> shards_;
};

}  // namespace

BackendFactory LoopbackBackendFactory() {
  return [](const BackendOptions& options) {
    return LoopbackRemoteBackend::Create(options);
  };
}

BackendFactory TcpBackendFactory(TcpBackendOptions topts) {
  return [topts](const BackendOptions& options) {
    return TcpRemoteBackend::Create(options, topts);
  };
}

Result<BackendFactory> BackendFactoryByName(const std::string& name) {
  if (name.empty() || name == "inprocess") return InProcessBackendFactory();
  if (name == "loopback") return LoopbackBackendFactory();
  if (name == "mixed") {
    // Alternating placement: even shards in-process, odd shards behind the
    // loopback wire — one engine spanning both worlds at once.
    return CompositeBackendFactory(
        {InProcessBackendFactory(), LoopbackBackendFactory()});
  }
  if (name == "tcp") return TcpBackendFactory();
  if (name.rfind("tcp:", 0) == 0) {
    // "tcp:HOST:PORT[,HOST:PORT...]" — external engine_shardd daemons,
    // shard i homed on endpoint i % n.
    TcpBackendOptions topts;
    std::string rest = name.substr(4);
    size_t pos = 0;
    while (pos <= rest.size()) {
      const size_t comma = rest.find(',', pos);
      const std::string ep = rest.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      std::string host;
      uint16_t port = 0;
      if (Status s = SplitEndpoint(ep, &host, &port); !s.ok()) return s;
      topts.endpoints.push_back(ep);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return TcpBackendFactory(std::move(topts));
  }
  return Status::InvalidArgument(
      "unknown shard backend \"" + name +
      "\" (want inprocess | loopback | mixed | tcp | tcp:HOST:PORT,...)");
}

}  // namespace wbs::engine
