// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/trace.h"

#include <ostream>

namespace wbs::engine {

uint64_t TraceSpan::Attr(const std::string& key, uint64_t fallback) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return fallback;
}

Tracer::Tracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

uint64_t Tracer::SinceEpochUs(std::chrono::steady_clock::time_point t) const {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      t - epoch_)
                      .count());
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    id_ = other.id_;
    parent_ = other.parent_;
    name_ = std::move(other.name_);
    start_ = other.start_;
    attrs_ = std::move(other.attrs_);
    other.tracer_ = nullptr;
  }
  return *this;
}

Tracer::Span& Tracer::Span::Attr(std::string key, uint64_t value) {
  if (tracer_ != nullptr) {
    attrs_.emplace_back(std::move(key), value);
  }
  return *this;
}

uint64_t Tracer::Span::End() {
  if (tracer_ == nullptr) return 0;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  const auto end = std::chrono::steady_clock::now();
  TraceSpan span;
  span.id = id_;
  span.parent = parent_;
  span.name = std::move(name_);
  span.start_us = tracer->SinceEpochUs(start_);
  span.duration_us = uint64_t(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count());
  span.attrs = std::move(attrs_);
  const uint64_t duration = span.duration_us;
  tracer->Record(std::move(span));
  return duration;
}

Tracer::Span Tracer::StartSpan(std::string name, uint64_t parent) {
  Span span;
  span.tracer_ = this;
  span.id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent_ = parent;
  span.name_ = std::move(name);
  span.start_ = std::chrono::steady_clock::now();
  return span;
}

void Tracer::Record(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= capacity_) ring_.pop_front();
  ring_.push_back(std::move(span));
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceSpan>(ring_.begin(), ring_.end());
}

void Tracer::WriteJsonl(std::ostream& os) const {
  for (const TraceSpan& s : Snapshot()) {
    os << "{\"span\":\"" << s.name << "\",\"id\":" << s.id
       << ",\"parent\":" << s.parent << ",\"start_us\":" << s.start_us
       << ",\"duration_us\":" << s.duration_us << ",\"attrs\":{";
    for (size_t i = 0; i < s.attrs.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << s.attrs[i].first << "\":" << s.attrs[i].second;
    }
    os << "}}\n";
  }
}

}  // namespace wbs::engine
