// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/topology.h"

#include <algorithm>
#include <utility>

#include "engine/backend.h"

namespace wbs::engine {

std::shared_ptr<const TopologyView> ShardTopology::MakeInitial(
    size_t num_shards, size_t slots_per_shard,
    std::shared_ptr<ShardBackend> primary) {
  auto view = std::make_shared<TopologyView>();
  view->generation = 1;
  view->routing_generation = 1;
  const size_t num_slots = num_shards * std::max<size_t>(1, slots_per_shard);
  view->slot_to_shard.resize(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot) {
    // slot % num_shards makes slot routing reproduce the legacy
    // hash-mod-shards partition bit-for-bit (see topology.h).
    view->slot_to_shard[slot] = uint32_t(slot % num_shards);
  }
  view->placements.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    // Routing-only views (tests) pass a null primary; no endpoint then.
    view->placements[s] = ShardPlacement{
        primary, uint32_t(s), primary ? primary->Endpoint(s) : std::string()};
  }
  view->owned_slots.assign(num_shards, 0);
  for (uint32_t owner : view->slot_to_shard) ++view->owned_slots[owner];
  return view;  // every placement shares ownership of the primary cell
}

std::shared_ptr<const TopologyView> ShardTopology::WithAddedShards(
    const TopologyView& base, const std::vector<ShardPlacement>& added) {
  auto view = std::make_shared<TopologyView>(base);
  view->generation = base.generation + 1;
  view->routing_generation = base.routing_generation + 1;  // slots move
  const size_t first_new = view->placements.size();
  for (const ShardPlacement& p : added) view->placements.push_back(p);

  // Steal slots for the new shards: each should own ~num_slots/num_shards.
  // Deterministic greedy — repeatedly take the highest-index slot from the
  // currently most-loaded owner (ties: lowest shard id). With more shards
  // than slots the late shards own zero slots; they are still merge-visible
  // and still valid handoff targets.
  std::vector<uint32_t>& owned = view->owned_slots;
  owned.resize(view->placements.size(), 0);
  const size_t target = view->num_slots() / view->num_shards();
  for (size_t b = first_new; b < view->placements.size(); ++b) {
    for (size_t take = 0; take < target; ++take) {
      size_t donor = view->placements.size();
      for (size_t s = 0; s < owned.size(); ++s) {
        if (donor == view->placements.size() || owned[s] > owned[donor]) {
          donor = s;
        }
      }
      if (donor == view->placements.size() || owned[donor] <= target) break;
      for (size_t slot = view->num_slots(); slot-- > 0;) {
        if (view->slot_to_shard[slot] == donor) {
          view->slot_to_shard[slot] = uint32_t(b);
          --owned[donor];
          ++owned[b];
          break;
        }
      }
    }
  }
  return view;
}

Result<std::shared_ptr<const TopologyView>> ShardTopology::WithMovedShard(
    const TopologyView& base, size_t shard, ShardPlacement target) {
  if (shard >= base.num_shards()) {
    return Status::OutOfRange("ShardTopology: shard id out of range");
  }
  if (target.backend == nullptr) {
    return Status::InvalidArgument("ShardTopology: null target placement");
  }
  auto view = std::make_shared<TopologyView>(base);
  view->generation = base.generation + 1;
  view->placements[shard] = target;
  return Result<std::shared_ptr<const TopologyView>>(std::move(view));
}

Result<std::shared_ptr<const TopologyView>> ShardTopology::WithMovedSlots(
    const TopologyView& base, const std::vector<uint32_t>& slots,
    size_t dest) {
  if (dest >= base.num_shards()) {
    return Status::OutOfRange("ShardTopology: dest shard id out of range");
  }
  if (slots.empty()) {
    return Status::InvalidArgument("ShardTopology: no slots to move");
  }
  // All slots must share one source owner, distinct from dest — a slot
  // move is a handoff FROM a shard, not an arbitrary table rewrite.
  size_t source = base.num_shards();
  for (uint32_t slot : slots) {
    if (slot >= base.num_slots()) {
      return Status::OutOfRange("ShardTopology: slot id out of range");
    }
    const size_t owner = base.slot_to_shard[slot];
    if (source == base.num_shards()) source = owner;
    if (owner != source) {
      return Status::InvalidArgument(
          "ShardTopology: slots span multiple source shards");
    }
  }
  if (source == dest) {
    return Status::InvalidArgument(
        "ShardTopology: slot already owned by dest shard");
  }
  auto view = std::make_shared<TopologyView>(base);
  view->generation = base.generation + 1;
  view->routing_generation = base.routing_generation + 1;  // slots move
  for (uint32_t slot : slots) {
    if (view->slot_to_shard[slot] == dest) continue;  // duplicate in `slots`
    view->slot_to_shard[slot] = uint32_t(dest);
    --view->owned_slots[source];
    ++view->owned_slots[dest];
  }
  return Result<std::shared_ptr<const TopologyView>>(std::move(view));
}

TopologyInfo ShardTopology::Describe() const {
  std::shared_ptr<const TopologyView> view = View();
  TopologyInfo info;
  info.generation = view->generation;
  info.num_shards = view->num_shards();
  info.num_slots = view->num_slots();
  info.slots_per_shard.assign(view->owned_slots.begin(),
                              view->owned_slots.end());
  return info;
}

}  // namespace wbs::engine
