// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "engine/shard_server.h"

namespace wbs::engine {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string("tcp: ") + what + " failed: " +
                          std::strerror(errno));
}

/// Numeric-only resolution: the engine's endpoints are operator-provided
/// IPv4 literals (plus the "localhost" convenience) — no DNS in the data
/// path.
Status FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* ip = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr->sin_addr) != 1) {
    return Status::InvalidArgument("tcp: bad host (IPv4 literal expected): " +
                                   host);
  }
  return Status::OK();
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---- endpoint / socket helpers ---------------------------------------------

Status SplitEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("tcp: endpoint must be host:port, got \"" +
                                   endpoint + "\"");
  }
  unsigned long p = 0;
  const char* begin = endpoint.c_str() + colon + 1;
  const char* end = endpoint.c_str() + endpoint.size();
  auto [ptr, ec] = std::from_chars(begin, end, p);
  if (ec != std::errc() || ptr != end || p == 0 || p > 65535) {
    return Status::InvalidArgument("tcp: bad port in endpoint \"" + endpoint +
                                   "\"");
  }
  *host = endpoint.substr(0, colon);
  *port = uint16_t(p);
  return Status::OK();
}

Result<int> TcpConnectFd(const std::string& host, uint16_t port,
                         int timeout_ms) {
  sockaddr_in addr;
  Status s = FillAddr(host, port, &addr);
  if (!s.ok()) return s;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  s = SetNonBlocking(fd, true);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    if (err == ECONNREFUSED) {
      // Distinguished message: a refusing peer has no listener — the dialer
      // fails fast instead of burning its deadline on retries.
      return Status::Unavailable("tcp: connection refused by " + host + ":" +
                                 std::to_string(port));
    }
    return Status::Unavailable(std::string("tcp: connect failed: ") +
                               std::strerror(err));
  }
  if (rc != 0) {
    struct pollfd p;
    p.fd = fd;
    p.events = POLLOUT;
    for (;;) {
      rc = ::poll(&p, 1, timeout_ms);
      if (rc < 0 && errno == EINTR) continue;
      break;
    }
    if (rc < 0) {
      ::close(fd);
      return Errno("poll");
    }
    if (rc == 0) {
      ::close(fd);
      return Status::Unavailable("tcp: connect timed out to " + host + ":" +
                                 std::to_string(port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      if (err == ECONNREFUSED) {
        return Status::Unavailable("tcp: connection refused by " + host + ":" +
                                   std::to_string(port));
      }
      return Status::Unavailable(std::string("tcp: connect failed: ") +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  s = SetNonBlocking(fd, false);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  SetNoDelay(fd);
  return fd;
}

// ---- handshake codecs ------------------------------------------------------

void EncodeShardSpec(const TcpShardSpec& spec, wire::Writer* w) {
  w->U32(uint32_t(spec.sketches.size()));
  for (const std::string& name : spec.sketches) w->Str(name);
  const SketchConfig& c = spec.config;
  w->U64(c.universe);
  w->U64(c.seed);
  w->U64(c.shard_seed);
  w->F64(c.hh.eps);
  w->F64(c.hh.phi);
  w->F64(c.hh.delta);
  w->U64(c.hh.time_budget_t);
  w->U64(c.misra_gries.counters);
  w->U64(c.ams.rows);
  w->F64(c.sis_l0.eps);
  w->F64(c.sis_l0.c);
  w->U64(c.sis_l0.f_inf_bound);
  w->U64(c.rank.n);
  w->U64(c.rank.k);
  w->U64(c.rank.q);
  w->U64(spec.snapshot_min_updates);
}

Status DecodeShardSpec(wire::Reader* r, TcpShardSpec* out) {
  uint32_t n = 0;
  Status s = r->U32(&n);
  if (!s.ok()) return s;
  if (n > r->remaining()) {
    return Status::InvalidArgument("tcp: shard spec sketch count exceeds body");
  }
  out->sketches.clear();
  out->sketches.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    s = r->Str(&name);
    if (!s.ok()) return s;
    out->sketches.push_back(std::move(name));
  }
  SketchConfig& c = out->config;
  uint64_t u64 = 0;
  if (!(s = r->U64(&c.universe)).ok()) return s;
  if (!(s = r->U64(&c.seed)).ok()) return s;
  if (!(s = r->U64(&c.shard_seed)).ok()) return s;
  if (!(s = r->F64(&c.hh.eps)).ok()) return s;
  if (!(s = r->F64(&c.hh.phi)).ok()) return s;
  if (!(s = r->F64(&c.hh.delta)).ok()) return s;
  if (!(s = r->U64(&c.hh.time_budget_t)).ok()) return s;
  if (!(s = r->U64(&u64)).ok()) return s;
  c.misra_gries.counters = size_t(u64);
  if (!(s = r->U64(&u64)).ok()) return s;
  c.ams.rows = size_t(u64);
  if (!(s = r->F64(&c.sis_l0.eps)).ok()) return s;
  if (!(s = r->F64(&c.sis_l0.c)).ok()) return s;
  if (!(s = r->U64(&c.sis_l0.f_inf_bound)).ok()) return s;
  if (!(s = r->U64(&u64)).ok()) return s;
  c.rank.n = size_t(u64);
  if (!(s = r->U64(&u64)).ok()) return s;
  c.rank.k = size_t(u64);
  if (!(s = r->U64(&c.rank.q)).ok()) return s;
  if (!(s = r->U64(&out->snapshot_min_updates)).ok()) return s;
  return Status::OK();
}

void EncodeHello(const TcpHello& hello, wire::Writer* w) {
  w->U32(kTcpMagic);
  w->U8(kTcpProtocolVersion);
  w->U8(hello.channel);
  w->U64(hello.session_token);
  w->U64(hello.shard_id);
  w->U64(hello.last_acked_epoch);
  w->U8(hello.has_spec ? 1 : 0);
  if (hello.has_spec) EncodeShardSpec(hello.spec, w);
}

Status DecodeHello(wire::Reader* r, TcpHello* out) {
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t has_spec = 0;
  Status s = r->U32(&magic);
  if (!s.ok()) return s;
  if (magic != kTcpMagic) {
    return Status::InvalidArgument(
        "tcp handshake: bad magic (not a wbs shard session)");
  }
  if (!(s = r->U8(&version)).ok()) return s;
  if (version != kTcpProtocolVersion) {
    return Status::InvalidArgument(
        "tcp handshake: unsupported protocol version " +
        std::to_string(int(version)) + " (host speaks " +
        std::to_string(int(kTcpProtocolVersion)) + ")");
  }
  if (!(s = r->U8(&out->channel)).ok()) return s;
  if (out->channel > 1) {
    return Status::InvalidArgument("tcp handshake: bad channel byte");
  }
  if (!(s = r->U64(&out->session_token)).ok()) return s;
  if (!(s = r->U64(&out->shard_id)).ok()) return s;
  if (!(s = r->U64(&out->last_acked_epoch)).ok()) return s;
  if (!(s = r->U8(&has_spec)).ok()) return s;
  if (has_spec > 1) {
    return Status::InvalidArgument("tcp handshake: bad has_spec byte");
  }
  out->has_spec = has_spec == 1;
  if (out->has_spec) {
    s = DecodeShardSpec(r, &out->spec);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// ---- TcpShardHost ----------------------------------------------------------

Result<std::unique_ptr<TcpShardHost>> TcpShardHost::Start(
    const TcpShardHostOptions& options) {
  std::unique_ptr<TcpShardHost> host(new TcpShardHost());
  host->bind_host_ =
      options.bind_host.empty() ? std::string("127.0.0.1") : options.bind_host;
  host->shard_seed_override_ = options.shard_seed_override;

  sockaddr_in addr;
  Status s = FillAddr(host->bind_host_, options.port, &addr);
  if (!s.ok()) return s;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    s = Errno("listen");
    ::close(fd);
    return s;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  host->listen_fd_ = fd;
  host->port_ = ntohs(bound.sin_port);

  // Same birth-armed crash spec as ShardServer, so env-driven crash drills
  // cover the TCP transport without test changes.
  int64_t crash_after = -1;
  bool crash_torn = false;
  if (ParseCrashEnvSpec(std::getenv("WBS_ENGINE_CRASH"), &crash_after,
                        &crash_torn)) {
    host->crash_torn_.store(crash_torn, std::memory_order_relaxed);
    host->crash_after_.store(crash_after, std::memory_order_relaxed);
  }

  TcpShardHost* raw = host.get();
  host->accept_thread_ = std::thread([raw] { raw->AcceptLoop(); });
  return host;
}

TcpShardHost::~TcpShardHost() { Stop(); }

std::string TcpShardHost::endpoint() const {
  return bind_host_ + ":" + std::to_string(port_);
}

void TcpShardHost::AcceptLoop() {
  for (;;) {
    struct pollfd p;
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_ || crashed_.load(std::memory_order_acquire)) return;
      ReapFinishedConns();
    }
    if (rc <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return;  // listener shut down
    }
    SetNoDelay(fd);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || crashed_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conns_.emplace_back();
    Conn* conn = &conns_.back();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { ServeConn(conn); });
  }
}

void TcpShardHost::ServeConn(Conn* conn) {
  const int fd = conn->fd;
  std::string frame_buf;
  Session* session = nullptr;
  for (;;) {
    uint8_t type = 0;
    std::string_view payload;
    Status s = wire::ReadFrameFd(fd, &frame_buf, &type, &payload);
    if (!s.ok()) break;

    // Crash threshold accounting, mirroring ShardServer: the frame that
    // crosses the threshold is read but never answered, and the whole host
    // (listener included) goes dark.
    const int64_t served = 1 + frames_served_.fetch_add(1);
    const int64_t crash_at = crash_after_.load(std::memory_order_acquire);
    if (crash_at >= 0 && served >= crash_at &&
        !crashed_.load(std::memory_order_acquire)) {
      SeverConnections(/*kill_listener=*/true,
                       crash_torn_.load(std::memory_order_relaxed) ? fd : -1);
      break;
    }
    if (crashed_.load(std::memory_order_acquire)) break;

    if (type == wire::kReqShutdown) {
      (void)wire::WriteFrameFd(fd, wire::kResp, {});
      break;
    }
    std::string resp;
    if (type == wire::kReqHello) {
      bool close_conn = false;
      resp = HandleHello(payload, &session, &close_conn);
      const Status ws = wire::WriteFrameFd(fd, wire::kResp, resp);
      if (close_conn || !ws.ok()) break;
      continue;
    }
    if (session == nullptr) {
      wire::Writer w;
      wire::EncodeStatus(
          Status::FailedPrecondition("tcp shard host: request before kReqHello"),
          &w);
      (void)wire::WriteFrameFd(fd, wire::kResp, w.data());
      break;
    }
    {
      std::lock_guard<std::mutex> lock(session->mu);
      wire::Writer w;
      if (type == wire::kReqApplySeq) {
        wire::Reader r(payload);
        uint64_t seq = 0;
        const Status rs = r.U64(&seq);
        if (!rs.ok()) {
          wire::EncodeStatus(rs, &w);
        } else if (seq <= session->last_applied_seq) {
          // Replay of an already-applied batch — its ack was lost in a
          // partition. Answer from cache; re-applying would double count.
          wire::EncodeStatus(session->last_apply_status, &w);
          w.U64(session->cell->Epoch(0).value_or(0));
        } else {
          DispatchShardRequest(*session->cell, session->num_sketches,
                               wire::kReqApply, payload.substr(8), &w);
          wire::Reader resp_r(w.data());
          Status applied;
          (void)wire::DecodeStatus(&resp_r, &applied);
          session->last_applied_seq = seq;
          session->last_apply_status = applied;
        }
      } else {
        DispatchShardRequest(*session->cell, session->num_sketches, type,
                             payload, &w);
      }
      resp = w.Take();
    }
    if (!wire::WriteFrameFd(fd, wire::kResp, resp).ok()) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

std::string TcpShardHost::HandleHello(std::string_view payload,
                                      Session** session, bool* close_conn) {
  *session = nullptr;
  *close_conn = true;
  wire::Writer w;
  wire::Reader r(payload);
  TcpHello hello;
  Status s = DecodeHello(&r, &hello);
  if (s.ok()) s = r.ExpectEnd();
  if (!s.ok()) {
    wire::EncodeStatus(s, &w);
    return w.Take();
  }
  Session* sess = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(hello.session_token);
    if (it != sessions_.end()) {
      sess = it->second.get();
    } else if (hello.has_spec) {
      BackendOptions bopts;
      bopts.num_shards = 1;
      bopts.sketches = hello.spec.sketches;
      bopts.config = hello.spec.config;
      if (shard_seed_override_ != 0) {
        bopts.config.shard_seed = shard_seed_override_;
      }
      bopts.snapshot_min_updates = size_t(hello.spec.snapshot_min_updates);
      bopts.shard_seeds_resolved = true;
      auto cell = InProcessBackendFactory()(bopts);
      if (!cell.ok()) {
        wire::EncodeStatus(cell.status(), &w);
        return w.Take();
      }
      auto owned = std::make_unique<Session>();
      owned->cell = std::move(cell).value();
      owned->num_sketches = hello.spec.sketches.size();
      sess = owned.get();
      sessions_.emplace(hello.session_token, std::move(owned));
    } else {
      // A reconnecting dialer never re-sends its spec, so an unknown token
      // without one means the session is GONE (host restarted): the shard
      // must be re-homed from its checkpoint, not silently served empty.
      wire::EncodeStatus(
          Status::NotFound("tcp shard host: unknown session token " +
                           std::to_string(hello.session_token) +
                           " (session lost; shard must be re-homed)"),
          &w);
      return w.Take();
    }
  }
  *session = sess;
  *close_conn = false;
  wire::EncodeStatus(Status::OK(), &w);
  std::lock_guard<std::mutex> lock(sess->mu);
  w.U64(sess->cell->Epoch(0).value_or(0));
  w.U64(sess->last_applied_seq);
  return w.Take();
}

void TcpShardHost::SeverConnections(bool kill_listener, int torn_fd) {
  std::lock_guard<std::mutex> lock(mu_);
  if (kill_listener) {
    crashed_.store(true, std::memory_order_release);
    if (torn_fd >= 0) WriteTornFrameFd(torn_fd);
    // shutdown() (not close) takes the socket out of LISTEN so redials are
    // REFUSED immediately, while the fd number stays ours until Stop() —
    // the accept thread may still be polling it.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  for (Conn& conn : conns_) {
    if (conn.fd >= 0 && !conn.done.load(std::memory_order_acquire)) {
      ::shutdown(conn.fd, SHUT_RDWR);
    }
  }
}

void TcpShardHost::DropConnections() {
  SeverConnections(/*kill_listener=*/false, /*torn_fd=*/-1);
}

void TcpShardHost::CrashAfter(int64_t n_frames, bool torn) {
  crash_torn_.store(torn, std::memory_order_relaxed);
  crash_after_.store(frames_served_.load(std::memory_order_acquire) + n_frames,
                     std::memory_order_release);
}

void TcpShardHost::CrashNow(bool torn) {
  int torn_fd = -1;
  if (torn) {
    // Best effort: corrupt whatever connection is live so the dialer's CRC
    // check (not just EOF) observes the crash.
    std::lock_guard<std::mutex> lock(mu_);
    for (Conn& conn : conns_) {
      if (conn.fd >= 0 && !conn.done.load(std::memory_order_acquire)) {
        torn_fd = conn.fd;
        break;
      }
    }
  }
  SeverConnections(/*kill_listener=*/true, torn_fd);
}

size_t TcpShardHost::sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void TcpShardHost::ReapFinishedConns() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      if (it->fd >= 0) ::close(it->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpShardHost::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (Conn& conn : conns_) {
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // With the accept thread gone no new conns appear; drain the list.
  for (;;) {
    Conn* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conns_.empty()) break;
      conn = &conns_.front();
    }
    if (conn->thread.joinable()) conn->thread.join();
    std::lock_guard<std::mutex> lock(mu_);
    if (conn->fd >= 0) ::close(conn->fd);
    conns_.pop_front();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// ---- engine_shardd ---------------------------------------------------------

int ShardDaemonMain(int argc, char** argv) {
  TcpShardHostOptions options;
  uint64_t shard_seed_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    auto number_after = [&arg](std::string_view prefix, uint64_t* out) {
      const std::string_view v = arg.substr(prefix.size());
      auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
      return ec == std::errc() && ptr == v.data() + v.size();
    };
    if (arg.rfind("--port=", 0) == 0) {
      uint64_t p = 0;
      if (!number_after("--port=", &p) || p > 65535) {
        std::fprintf(stderr, "engine_shardd: bad --port value\n");
        return 2;
      }
      options.port = uint16_t(p);
    } else if (arg.rfind("--listen=", 0) == 0) {
      const Status s = SplitEndpoint(std::string(arg.substr(9)),
                                     &options.bind_host, &options.port);
      if (!s.ok()) {
        std::fprintf(stderr, "engine_shardd: %s\n", s.ToString().c_str());
        return 2;
      }
    } else if (arg.rfind("--shard-seed=", 0) == 0) {
      if (!number_after("--shard-seed=", &shard_seed_override) ||
          shard_seed_override == 0) {
        std::fprintf(stderr,
                     "engine_shardd: bad --shard-seed value (nonzero "
                     "integer expected)\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "engine_shardd — standalone wbs shard daemon\n"
          "\n"
          "Serves the engine's TCP shard protocol: shard state (sketch\n"
          "group + config) arrives with each client's kReqHello handshake,\n"
          "so one daemon hosts any number of shards from any number of\n"
          "engines.\n"
          "\n"
          "  --port=N           listen port on 127.0.0.1 (0 = ephemeral)\n"
          "  --listen=HOST:PORT bind address (IPv4 literal)\n"
          "  --shard-seed=N     override the shard seed of every hosted\n"
          "                     shard (standalone experimentation only —\n"
          "                     breaks bit-identity with local shards)\n"
          "\n"
          "Prints \"LISTENING <port>\" on stdout once ready; serves until\n"
          "SIGTERM/SIGINT.\n");
      return 0;
    } else {
      std::fprintf(stderr, "engine_shardd: unknown flag %s (try --help)\n",
                   std::string(arg).c_str());
      return 2;
    }
  }

  // Block the shutdown signals BEFORE spawning serving threads so sigwait
  // below is the only consumer.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  options.shard_seed_override = shard_seed_override;
  auto host = TcpShardHost::Start(options);
  if (!host.ok()) {
    std::fprintf(stderr, "engine_shardd: %s\n",
                 host.status().ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", unsigned(host.value()->port()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);
  host.value()->Stop();
  return 0;
}

}  // namespace wbs::engine
