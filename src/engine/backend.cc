// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/backend.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/random.h"
#include "engine/registry.h"

namespace wbs::engine {
namespace {

// The engine's fixed seed schedule — unchanged from the pre-backend
// ingestor so existing runs replay bit-for-bit.
constexpr uint64_t kShardSeedSalt = 0x5ea5ea5ea5ea5ea5ULL;
constexpr uint64_t kMergeSeedSalt = 0x3e63e63e63e63e63ULL;

uint64_t DeriveSeed(uint64_t seed, uint64_t salt, uint64_t index) {
  uint64_t s = seed ^ salt ^ (index * 0xd1342543de82ef95ULL);
  return SplitMix64(&s);
}

/// The engine's original process-local shard code behind the ShardBackend
/// interface: raw-pointer apply, shared per-shard aggregation scratch,
/// clone-based snapshot slots with an atomic epoch.
class InProcessBackend final : public ShardBackend {
 public:
  static Result<std::unique_ptr<ShardBackend>> Create(
      const BackendOptions& options) {
    std::unique_ptr<InProcessBackend> backend(new InProcessBackend(options));
    for (size_t shard = 0; shard < options.num_shards; ++shard) {
      auto sh = std::make_unique<Shard>();
      sh->cfg = options.shard_seeds_resolved
                    ? options.config
                    : ShardConfigFor(options.config, shard);
      for (const std::string& name : options.sketches) {
        auto sketch = SketchRegistry::Global().Create(name, sh->cfg);
        if (!sketch.ok()) return sketch.status();
        sh->sketches.push_back(std::move(sketch).value());
      }
      backend->shards_.push_back(std::move(sh));
    }
    return Result<std::unique_ptr<ShardBackend>>(std::move(backend));
  }

  const std::string& name() const override {
    static const std::string kName = "inprocess";
    return kName;
  }

  BackendCapabilities capabilities() const override {
    return BackendCapabilities{/*zero_copy=*/true,
                               /*crosses_process_boundary=*/false,
                               wire::kFormatVersion};
  }

  size_t num_shards() const override { return shards_.size(); }

  Status ApplyBatch(size_t shard_index, const stream::TurnstileUpdate* data,
                    size_t count) override {
    if (shard_index >= shards_.size()) {
      return Status::OutOfRange("inprocess backend: shard out of range");
    }
    Shard& shard = *shards_[shard_index];
    // Aggregate once per shard batch; every weight-equivalent sketch in the
    // shard's group consumes the shared result instead of re-hashing the
    // batch, which is where most of the engine's batching win comes from.
    auto [effective, has_negative] =
        AggregateUpdates(data, count, &shard.agg, &shard.agg_index);
    UpdateBatch batch{data,           count,     shard.agg.data(),
                      shard.agg.size(), effective, has_negative};
    for (auto& sketch : shard.sketches) {
      Status s = sketch->ApplyBatch(batch);
      if (!s.ok()) return s;
    }
    // Relaxed: the applier is the only writer; concurrent Metrics() readers
    // just want a recent value for the snapshot-lag gauge.
    const uint64_t since =
        shard.updates_since_publish.load(std::memory_order_relaxed) + count;
    shard.updates_since_publish.store(since, std::memory_order_relaxed);
    if (since >= options_.snapshot_min_updates) {
      PublishShard(shard);
    }
    return Status::OK();
  }

  Result<uint64_t> Epoch(size_t shard) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("inprocess backend: shard out of range");
    }
    return shards_[shard]->epoch.load(std::memory_order_acquire);
  }

  Result<ShardSnapshot> Snapshot(size_t shard_index,
                                 size_t sketch_index) const override {
    if (shard_index >= shards_.size()) {
      return Status::OutOfRange("inprocess backend: shard out of range");
    }
    if (sketch_index >= options_.sketches.size()) {
      return Status::OutOfRange("inprocess backend: sketch out of range");
    }
    Shard& shard = *shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.snap_mu);
    if (!shard.snap_error.ok()) return shard.snap_error;
    ShardSnapshot snap;
    snap.sketch = shard.snaps.empty() ? nullptr : shard.snaps[sketch_index];
    snap.epoch = shard.epoch.load(std::memory_order_relaxed);
    return snap;
  }

  Result<SerializedSnapshot> SnapshotSerialized(
      size_t shard, size_t sketch_index) const override {
    auto snap = Snapshot(shard, sketch_index);
    if (!snap.ok()) return snap.status();
    SerializedSnapshot out;
    out.epoch = snap.value().epoch;
    if (snap.value().sketch == nullptr) return out;  // never published
    const auto t0 = std::chrono::steady_clock::now();
    auto frame = SerializeSketch(*snap.value().sketch);
    if (!frame.ok()) return frame.status();
    shards_[shard]->serialize_us.Record(uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    out.state = std::move(frame).value();
    return out;
  }

  Status Flush(size_t shard) override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("inprocess backend: shard out of range");
    }
    if (shards_[shard]->updates_since_publish.load(
            std::memory_order_relaxed) > 0) {
      PublishShard(*shards_[shard]);
    }
    return Status::OK();
  }

  Status ImportShardState(size_t shard_index,
                          const std::vector<std::string>& frames) override {
    if (shard_index >= shards_.size()) {
      return Status::OutOfRange("inprocess backend: shard out of range");
    }
    if (frames.size() != options_.sketches.size()) {
      return Status::InvalidArgument(
          "inprocess backend: handoff frame count does not match the "
          "configured sketch group");
    }
    Shard& shard = *shards_[shard_index];
    // Decode everything into fresh instances BEFORE touching the live
    // group, so a bad frame leaves the shard exactly as it was.
    std::vector<std::unique_ptr<Sketch>> imported;
    imported.reserve(frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      auto sketch =
          DeserializeSketch(options_.sketches[i], shard.cfg, frames[i]);
      if (!sketch.ok()) return sketch.status();
      imported.push_back(std::move(sketch).value());
    }
    shard.sketches = std::move(imported);
    shard.updates_since_publish.store(0, std::memory_order_relaxed);
    // Publish immediately: the imported history must be merge-visible the
    // moment the new placement is routed to, or the shard's entire past
    // would vanish from answers until its first post-handoff batch.
    PublishShard(shard);
    std::lock_guard<std::mutex> lock(shard.snap_mu);
    return shard.snap_error;
  }

  Result<std::vector<MetricSample>> Metrics(size_t shard) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("inprocess backend: shard out of range");
    }
    const Shard& sh = *shards_[shard];
    std::vector<MetricSample> out;
    out.push_back(GaugeSample(
        "epoch", int64_t(sh.epoch.load(std::memory_order_relaxed))));
    out.push_back(GaugeSample(
        "snapshot_lag_updates",
        int64_t(sh.updates_since_publish.load(std::memory_order_relaxed))));
    out.push_back(HistogramSample("serialize_us", sh.serialize_us));
    return out;
  }

  Result<SketchSummary> LiveSummary(size_t shard,
                                    size_t sketch_index) const override {
    if (shard >= shards_.size()) {
      return Status::OutOfRange("inprocess backend: shard out of range");
    }
    if (sketch_index >= options_.sketches.size()) {
      return Status::OutOfRange("inprocess backend: sketch out of range");
    }
    return shards_[shard]->sketches[sketch_index]->Summary();
  }

  uint64_t SpaceBits() const override {
    uint64_t bits = 0;
    for (const auto& shard : shards_) {
      for (const auto& sketch : shard->sketches) bits += sketch->SpaceBits();
    }
    return bits;
  }

 private:
  struct Shard {
    std::vector<std::unique_ptr<Sketch>> sketches;
    SketchConfig cfg;  ///< per-shard config (shard_seed resolved)
    // Aggregation scratch, computed once per shard batch and shared with
    // every weight-equivalent sketch via UpdateBatch. Touched only by the
    // shard's single applier (see the ShardBackend contract).
    std::vector<stream::TurnstileUpdate> agg;
    std::unordered_map<uint64_t, size_t> agg_index;

    // Snapshot slot. `snaps` are clones published at batch boundaries;
    // `epoch` counts publications and is bumped (release) inside snap_mu,
    // so (snaps, epoch) always read as a consistent pair under the mutex
    // while lock-free epoch loads give cheap dirty checks.
    // updates_since_publish is written only by the applier thread; the
    // atomic exists so the snapshot-lag gauge can read it from any thread.
    // Both hot atomics live on their own cache lines: updates_since_publish
    // is bumped by the applier on every batch while epoch is polled by
    // reader threads for dirty checks, and letting them (or the cold
    // members around them) share a line puts the applier's RMW traffic on
    // the readers' line.
    alignas(64) std::atomic<uint64_t> updates_since_publish{0};
    alignas(64) std::atomic<uint64_t> epoch{0};
    mutable Histogram serialize_us;  ///< SnapshotSerialized encode latency
    mutable std::mutex snap_mu;
    std::vector<std::shared_ptr<const Sketch>> snaps;  // per sketch index
    Status snap_error;  // first failed publish, under snap_mu
  };

  explicit InProcessBackend(BackendOptions options)
      : options_(std::move(options)) {}

  /// Clones every sketch of the shard into its snapshot slot and bumps the
  /// epoch. Called by the shard's applier (or Flush at quiescence);
  /// failures are stashed in the slot (they poison snapshot queries, not
  /// ingestion).
  void PublishShard(Shard& shard) {
    // Clone = fresh registry instance + MergeFrom(live). State-mergeable
    // sketches copy their state; answer-level sketches fold their current
    // summary — exactly the representation the merge path consumes. Cloning
    // happens outside the lock so readers are never blocked on it.
    std::vector<std::shared_ptr<const Sketch>> snaps(shard.sketches.size());
    for (size_t i = 0; i < shard.sketches.size(); ++i) {
      auto fresh =
          SketchRegistry::Global().Create(options_.sketches[i], shard.cfg);
      Status s = fresh.ok() ? fresh.value()->MergeFrom(*shard.sketches[i])
                            : fresh.status();
      if (!s.ok()) {
        // Bump the epoch so queries see the shard as dirty and surface the
        // stashed error rather than silently serving the stale snapshot; a
        // later successful publish clears it and recovers.
        std::lock_guard<std::mutex> lock(shard.snap_mu);
        shard.snap_error = s;
        shard.epoch.fetch_add(1, std::memory_order_release);
        return;
      }
      snaps[i] = std::move(fresh).value();
    }
    {
      std::lock_guard<std::mutex> lock(shard.snap_mu);
      shard.snaps = std::move(snaps);
      shard.snap_error = Status::OK();
      shard.epoch.fetch_add(1, std::memory_order_release);
    }
    shard.updates_since_publish.store(0, std::memory_order_relaxed);
  }

  BackendOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Mixed placement behind one ShardBackend: shard i delegates to a
/// single-shard child built from the i-th placement factory (cycled). Each
/// child receives the shard seed resolved for the GLOBAL shard id, so a
/// shard's sampling is independent of which placement pattern hosts it —
/// the composite engine's answers match a homogeneous engine exactly
/// (bit-identically for the state-mergeable families).
class CompositeBackend final : public ShardBackend {
 public:
  static Result<std::unique_ptr<ShardBackend>> Create(
      const BackendOptions& options, std::vector<BackendFactory> placements) {
    if (placements.empty()) {
      return Status::InvalidArgument(
          "composite backend: at least one placement factory required");
    }
    std::unique_ptr<CompositeBackend> backend(new CompositeBackend());
    for (size_t shard = 0; shard < options.num_shards; ++shard) {
      BackendOptions child_opts = options;
      child_opts.num_shards = 1;
      child_opts.config = options.shard_seeds_resolved
                              ? options.config
                              : ShardConfigFor(options.config, shard);
      child_opts.shard_seeds_resolved = true;
      auto child = placements[shard % placements.size()](child_opts);
      if (!child.ok()) return child.status();
      if (child.value() == nullptr || child.value()->num_shards() != 1) {
        return Status::Internal(
            "composite backend: placement factory returned a mismatched "
            "child");
      }
      backend->children_.push_back(std::move(child).value());
    }
    return Result<std::unique_ptr<ShardBackend>>(std::move(backend));
  }

  const std::string& name() const override {
    static const std::string kName = "composite";
    return kName;
  }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps{/*zero_copy=*/true,
                             /*crosses_process_boundary=*/false,
                             wire::kFormatVersion};
    for (const auto& child : children_) {
      const BackendCapabilities c = child->capabilities();
      caps.zero_copy &= c.zero_copy;
      caps.crosses_process_boundary |= c.crosses_process_boundary;
    }
    return caps;
  }

  size_t num_shards() const override { return children_.size(); }

  Status ApplyBatch(size_t shard, const stream::TurnstileUpdate* data,
                    size_t count) override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->ApplyBatch(0, data, count);
  }

  Result<uint64_t> Epoch(size_t shard) const override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->Epoch(0);
  }

  Result<ShardSnapshot> Snapshot(size_t shard,
                                 size_t sketch_index) const override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->Snapshot(0, sketch_index);
  }

  Result<SerializedSnapshot> SnapshotSerialized(
      size_t shard, size_t sketch_index) const override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->SnapshotSerialized(0, sketch_index);
  }

  Status Flush(size_t shard) override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->Flush(0);
  }

  Status ImportShardState(size_t shard,
                          const std::vector<std::string>& frames) override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->ImportShardState(0, frames);
  }

  Result<std::vector<MetricSample>> Metrics(size_t shard) const override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->Metrics(0);
  }

  Status Heartbeat(size_t shard, uint64_t timeout_ms) override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->Heartbeat(0, timeout_ms);
  }

  Status InjectCrash(size_t shard, bool torn) override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->InjectCrash(0, torn);
  }

  Status InjectPartition(size_t shard) override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->InjectPartition(0);
  }

  std::string Endpoint(size_t shard) const override {
    if (shard >= children_.size()) return std::string();
    return children_[shard]->Endpoint(0);
  }

  Result<SketchSummary> LiveSummary(size_t shard,
                                    size_t sketch_index) const override {
    if (shard >= children_.size()) {
      return Status::OutOfRange("composite backend: shard out of range");
    }
    return children_[shard]->LiveSummary(0, sketch_index);
  }

  uint64_t SpaceBits() const override {
    uint64_t bits = 0;
    for (const auto& child : children_) bits += child->SpaceBits();
    return bits;
  }

 private:
  CompositeBackend() = default;

  std::vector<std::unique_ptr<ShardBackend>> children_;
};

}  // namespace

BackendFactory InProcessBackendFactory() {
  return [](const BackendOptions& options) {
    return InProcessBackend::Create(options);
  };
}

BackendFactory CompositeBackendFactory(
    std::vector<BackendFactory> placements) {
  return [placements = std::move(placements)](const BackendOptions& options) {
    return CompositeBackend::Create(options, placements);
  };
}

SketchConfig ShardConfigFor(const SketchConfig& base, size_t shard) {
  SketchConfig cfg = base;
  cfg.shard_seed = DeriveSeed(base.seed, kShardSeedSalt, shard);
  return cfg;
}

uint64_t MergeSeedFor(const SketchConfig& base) {
  return DeriveSeed(base.seed, kMergeSeedSalt, 0);
}

Result<std::string> SerializeSketch(const Sketch& sketch) {
  wire::Writer w;
  Status s = sketch.SerializeState(w);
  if (!s.ok()) return s;
  return wire::EncodeFrame(wire::kSketchState, w.data());
}

Result<std::unique_ptr<Sketch>> DeserializeSketch(const std::string& name,
                                                  const SketchConfig& config,
                                                  const std::string& frame) {
  uint8_t type = 0;
  std::string_view payload;
  Status s = wire::DecodeFrame(frame, &type, &payload);
  if (!s.ok()) return s;
  if (type != wire::kSketchState) {
    return Status::InvalidArgument("DeserializeSketch: not a state frame");
  }
  auto sketch = SketchRegistry::Global().Create(name, config);
  if (!sketch.ok()) return sketch.status();
  wire::Reader r(payload);
  s = sketch.value()->DeserializeState(r);
  if (!s.ok()) return s;
  s = r.ExpectEnd();
  if (!s.ok()) return s;
  return sketch;
}

}  // namespace wbs::engine
