// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The built-in engine wrappers around the library's streaming algorithms.
//
// Merge semantics per family (see src/engine/README.md):
//   misra_gries    state merge (mergeable summaries, deterministic bound)
//   ams_f2         state merge (linear; bit-identical to single-instance)
//   sis_l0         state merge (linear; bit-identical to single-instance)
//   rank_decision  state merge (linear; bit-identical to single-instance)
//   robust_hh      answer merge (candidate-list union; exact under the
//   crhf_hh        ingestor's universe partitioning)
//
// Shared randomness (sign matrices, random oracles) derives from
// SketchConfig::seed so shard copies agree; private randomness (sampling
// tapes) derives from SketchConfig::shard_seed so shards sample
// independently but reproducibly.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "crypto/random_oracle.h"
#include "distinct/l0_estimator.h"
#include "engine/registry.h"
#include "engine/sketch.h"
#include "heavyhitters/crhf_hh.h"
#include "heavyhitters/misra_gries.h"
#include "heavyhitters/robust_hh.h"
#include "linalg/rank_sketch.h"
#include "moments/ams.h"

namespace wbs::engine {
namespace {

uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t s = seed ^ salt;
  return SplitMix64(&s);
}

constexpr uint64_t kAmsSalt = 0xa35f2000a35f2000ULL;
constexpr uint64_t kRobustSalt = 0x20b05700720b0577ULL;
constexpr uint64_t kCrhfSalt = 0xc12f00c12f00c12fULL;
constexpr uint64_t kL0OracleDomain = 0x10e57;
constexpr uint64_t kRankOracleDomain = 0x2a4c;

// Sampling sketches replay a weighted update as delta unit updates (a
// Bernoulli sample of w units is not one weighted add). Cap the expansion
// so a single adversarial delta cannot stall a worker thread forever.
constexpr int64_t kMaxSamplingDeltaExpansion = int64_t{1} << 20;

/// Shared wrapper plumbing: name, effective-update accounting, and a
/// first-seen-order batch aggregator for weight-equivalent sketches.
class SketchBase : public Sketch {
 public:
  explicit SketchBase(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }

 protected:
  /// The aggregated form of a batch: duplicate items combined in
  /// first-occurrence order. Only valid for sketches where one weighted
  /// update is equivalent to the corresponding run of unit updates.
  struct AggregatedView {
    const stream::TurnstileUpdate* data;
    size_t size;
    uint64_t effective;  ///< nonzero-delta raw updates represented
    bool has_negative;   ///< any raw delta < 0
  };

  /// Returns the batch's shared pre-aggregation when the ingestor attached
  /// one, otherwise aggregates locally into scratch_.
  AggregatedView GetAggregated(const UpdateBatch& batch) {
    if (batch.aggregated != nullptr) {
      return {batch.aggregated, batch.aggregated_size, batch.effective_updates,
              batch.has_negative_delta};
    }
    auto [effective, has_negative] =
        AggregateUpdates(batch.data, batch.size, &scratch_, &index_);
    return {scratch_.data(), scratch_.size(), effective, has_negative};
  }

  std::string name_;
  uint64_t updates_applied_ = 0;
  std::vector<stream::TurnstileUpdate> scratch_;
  std::unordered_map<uint64_t, size_t> index_;
};

/// Answer-level merge accumulator for sampling sketches: sums candidate
/// estimates item-wise across shard summaries. Because the ingestor assigns
/// each item to exactly one shard, the union *is* the global candidate list.
struct AnswerAccumulator {
  bool active = false;
  uint64_t updates = 0;
  std::map<uint64_t, double> estimates;  // ordered => deterministic output

  void Fold(const SketchSummary& s) {
    active = true;
    updates += s.updates;
    for (const auto& wi : s.items) estimates[wi.item] += wi.estimate;
  }

  std::vector<hh::WeightedItem> Items() const {
    std::vector<hh::WeightedItem> out;
    out.reserve(estimates.size());
    for (const auto& [item, est] : estimates) out.push_back({item, est});
    return out;
  }
};

// ------------------------------------------------------------ misra_gries --

class MisraGriesSketch final : public SketchBase {
 public:
  explicit MisraGriesSketch(const SketchConfig& cfg)
      : SketchBase("misra_gries"), cfg_(cfg), mg_(cfg.misra_gries.counters) {}

  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.delta < 0) {
      return Status::InvalidArgument("misra_gries is insertion-only");
    }
    if (u.item >= cfg_.universe) {
      return Status::OutOfRange("misra_gries: item out of universe");
    }
    if (u.delta == 0) return Status::OK();
    mg_.Add(u.item, uint64_t(u.delta));
    ++updates_applied_;
    return Status::OK();
  }

  Status ApplyBatch(const UpdateBatch& batch) override {
    const AggregatedView agg = GetAggregated(batch);
    if (agg.has_negative) {
      return Status::InvalidArgument("misra_gries is insertion-only");
    }
    for (size_t i = 0; i < agg.size; ++i) {
      const auto& u = agg.data[i];
      if (u.delta == 0) continue;
      if (u.item >= cfg_.universe) {
        return Status::OutOfRange("misra_gries: item out of universe");
      }
      mg_.Add(u.item, uint64_t(u.delta));
    }
    updates_applied_ += agg.effective;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    s.items = mg_.List();
    s.updates = updates_applied_;
    s.SortItems();
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const MisraGriesSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("misra_gries: merge type mismatch");
    }
    Status s = mg_.MergeFrom(o->mg_);
    if (!s.ok()) return s;
    updates_applied_ += o->updates_applied_;
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return mg_.SpaceBits(cfg_.universe); }

 private:
  SketchConfig cfg_;
  hh::MisraGries mg_;
};

// ----------------------------------------------------------------- ams_f2 --

class AmsF2EngineSketch final : public SketchBase {
 public:
  explicit AmsF2EngineSketch(const SketchConfig& cfg)
      : SketchBase("ams_f2"),
        tape_(MixSeed(cfg.seed, kAmsSalt)),
        ams_(cfg.universe, cfg.ams.rows, &tape_) {
    tape_.set_logging(false);  // serving engine, not the game harness
  }

  Status Update(const stream::TurnstileUpdate& u) override {
    Status s = ams_.Update(u);
    if (s.ok() && u.delta != 0) ++updates_applied_;
    return s;
  }

  Status ApplyBatch(const UpdateBatch& batch) override {
    const AggregatedView agg = GetAggregated(batch);
    // Row-major batched kernel: per-item sign mixes computed once, each
    // counter register-resident across the aggregated run.
    Status s = ams_.ApplyRun(agg.data, agg.size);
    if (!s.ok()) return s;
    updates_applied_ += agg.effective;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    s.has_scalar = true;
    s.scalar = ams_.Query();
    s.updates = updates_applied_;
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const AmsF2EngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("ams_f2: merge type mismatch");
    }
    Status s = ams_.MergeFrom(o->ams_);
    if (!s.ok()) return s;
    updates_applied_ += o->updates_applied_;
    return Status::OK();
  }

  Status UnmergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const AmsF2EngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("ams_f2: unmerge type mismatch");
    }
    Status s = ams_.UnmergeFrom(o->ams_);
    if (!s.ok()) return s;
    updates_applied_ -= o->updates_applied_;
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return ams_.SpaceBits(); }

 private:
  wbs::RandomTape tape_;
  moments::AmsF2Sketch ams_;
};

// ----------------------------------------------------------------- sis_l0 --

class SisL0EngineSketch final : public SketchBase {
 public:
  explicit SisL0EngineSketch(const SketchConfig& cfg)
      : SketchBase("sis_l0"),
        oracle_(cfg.seed),
        est_(distinct::SisL0Params::Derive(cfg.universe, cfg.sis_l0.eps,
                                           cfg.sis_l0.c,
                                           cfg.sis_l0.f_inf_bound),
             oracle_, kL0OracleDomain) {}

  Status Update(const stream::TurnstileUpdate& u) override {
    EnsureMaterialized();
    Status s = est_.Update(u);
    if (s.ok() && u.delta != 0) ++updates_applied_;
    return s;
  }

  Status ApplyBatch(const UpdateBatch& batch) override {
    EnsureMaterialized();
    const AggregatedView agg = GetAggregated(batch);
    for (size_t i = 0; i < agg.size; ++i) {
      if (agg.data[i].delta == 0) continue;
      Status s = est_.Update(agg.data[i]);
      if (!s.ok()) return s;
    }
    updates_applied_ += agg.effective;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    s.has_scalar = true;
    s.scalar = est_.Query();
    s.updates = updates_applied_;
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const SisL0EngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("sis_l0: merge type mismatch");
    }
    if (oracle_.instance_id() != o->oracle_.instance_id()) {
      return Status::FailedPrecondition("sis_l0: oracle mismatch");
    }
    Status s = est_.MergeFrom(o->est_);
    if (!s.ok()) return s;
    updates_applied_ += o->updates_applied_;
    return Status::OK();
  }

  Status UnmergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const SisL0EngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("sis_l0: unmerge type mismatch");
    }
    if (oracle_.instance_id() != o->oracle_.instance_id()) {
      return Status::FailedPrecondition("sis_l0: oracle mismatch");
    }
    Status s = est_.UnmergeFrom(o->est_);
    if (!s.ok()) return s;
    updates_applied_ -= o->updates_applied_;
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return est_.SpaceBits(); }

 private:
  /// The oracle-derived A costs one SHA-256 per entry; cache it before the
  /// first ingest, but never for merge-only targets (MergeFrom/Query touch
  /// only the chunk vectors, so fresh accumulators skip the cost).
  void EnsureMaterialized() {
    if (!materialized_) {
      est_.MaterializeMatrix();
      materialized_ = true;
    }
  }

  crypto::RandomOracle oracle_;
  distinct::SisL0Estimator est_;
  bool materialized_ = false;
};

// ---------------------------------------------------------- rank_decision --

class RankDecisionEngineSketch final : public SketchBase {
 public:
  explicit RankDecisionEngineSketch(const SketchConfig& cfg)
      : SketchBase("rank_decision"),
        n_(cfg.rank.n),
        oracle_(cfg.seed),
        sketch_(cfg.rank.n, cfg.rank.k, cfg.rank.q, oracle_,
                kRankOracleDomain) {}

  /// Items index the n x n matrix row-major: item = row * n + col.
  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.item >= uint64_t(n_) * n_) {
      return Status::OutOfRange("rank_decision: item out of matrix");
    }
    if (u.delta == 0) return Status::OK();
    Status s = sketch_.Update(
        {size_t(u.item / n_), size_t(u.item % n_), u.delta});
    if (s.ok()) ++updates_applied_;
    return s;
  }

  Status ApplyBatch(const UpdateBatch& batch) override {
    const AggregatedView agg = GetAggregated(batch);
    for (size_t i = 0; i < agg.size; ++i) {
      const auto& u = agg.data[i];
      if (u.delta == 0) continue;
      if (u.item >= uint64_t(n_) * n_) {
        return Status::OutOfRange("rank_decision: item out of matrix");
      }
      Status s = sketch_.Update(
          {size_t(u.item / n_), size_t(u.item % n_), u.delta});
      if (!s.ok()) return s;
    }
    updates_applied_ += agg.effective;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    s.has_scalar = true;
    s.scalar = sketch_.Query() ? 1.0 : 0.0;
    s.updates = updates_applied_;
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const RankDecisionEngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("rank_decision: merge type mismatch");
    }
    if (oracle_.instance_id() != o->oracle_.instance_id()) {
      return Status::FailedPrecondition("rank_decision: oracle mismatch");
    }
    Status s = sketch_.MergeFrom(o->sketch_);
    if (!s.ok()) return s;
    updates_applied_ += o->updates_applied_;
    return Status::OK();
  }

  Status UnmergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const RankDecisionEngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("rank_decision: unmerge type mismatch");
    }
    if (oracle_.instance_id() != o->oracle_.instance_id()) {
      return Status::FailedPrecondition("rank_decision: oracle mismatch");
    }
    Status s = sketch_.UnmergeFrom(o->sketch_);
    if (!s.ok()) return s;
    updates_applied_ -= o->updates_applied_;
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return sketch_.SpaceBits(); }

 private:
  size_t n_;
  crypto::RandomOracle oracle_;
  linalg::RankDecisionSketch sketch_;
};

// -------------------------------------------------- robust_hh / crhf_hh --
//
// Sampling-based heavy hitters: Bernoulli samples are not equivalent to
// weighted adds, so batches are applied update-by-update (the batch still
// amortizes queueing and dispatch). Merging is answer-level and requires a
// fresh target, which the ingestor's merge path always provides.

class RobustHhEngineSketch final : public SketchBase {
 public:
  explicit RobustHhEngineSketch(const SketchConfig& cfg)
      : SketchBase("robust_hh"),
        tape_(MixSeed(cfg.shard_seed, kRobustSalt)),
        alg_(cfg.universe, cfg.hh.eps, cfg.hh.delta, &tape_) {
    tape_.set_logging(false);
  }

  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.delta < 0) {
      return Status::InvalidArgument("robust_hh is insertion-only");
    }
    if (u.delta > kMaxSamplingDeltaExpansion) {
      return Status::InvalidArgument(
          "robust_hh: weighted delta exceeds the unit-expansion cap");
    }
    if (merged_.active) {
      return Status::FailedPrecondition(
          "robust_hh: merge accumulator is read-only");
    }
    for (int64_t i = 0; i < u.delta; ++i) {
      Status s = alg_.Update({u.item});
      if (!s.ok()) return s;
    }
    if (u.delta != 0) ++updates_applied_;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    if (merged_.active) {
      s.items = merged_.Items();
      s.updates = merged_.updates;
    } else {
      s.items = alg_.Query();
      s.updates = updates_applied_;
    }
    s.SortItems();
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const RobustHhEngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("robust_hh: merge type mismatch");
    }
    if (updates_applied_ > 0) {
      return Status::FailedPrecondition(
          "robust_hh: answer-level merge requires a fresh target");
    }
    merged_.Fold(o->Summary());
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return alg_.SpaceBits(); }

 private:
  wbs::RandomTape tape_;
  hh::RobustL1HeavyHitters alg_;
  AnswerAccumulator merged_;
};

class CrhfHhEngineSketch final : public SketchBase {
 public:
  explicit CrhfHhEngineSketch(const SketchConfig& cfg)
      : SketchBase("crhf_hh"),
        tape_(MixSeed(cfg.shard_seed, kCrhfSalt)),
        alg_(cfg.universe, cfg.hh.phi, cfg.hh.eps, cfg.hh.time_budget_t, &tape_) {
    tape_.set_logging(false);
  }

  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.delta < 0) {
      return Status::InvalidArgument("crhf_hh is insertion-only");
    }
    if (u.delta > kMaxSamplingDeltaExpansion) {
      return Status::InvalidArgument(
          "crhf_hh: weighted delta exceeds the unit-expansion cap");
    }
    if (merged_.active) {
      return Status::FailedPrecondition(
          "crhf_hh: merge accumulator is read-only");
    }
    for (int64_t i = 0; i < u.delta; ++i) {
      Status s = alg_.Update({u.item});
      if (!s.ok()) return s;
    }
    if (u.delta != 0) ++updates_applied_;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    if (merged_.active) {
      s.items = merged_.Items();
      s.updates = merged_.updates;
    } else {
      s.items = alg_.Query();
      s.updates = updates_applied_;
    }
    s.SortItems();
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const CrhfHhEngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("crhf_hh: merge type mismatch");
    }
    if (updates_applied_ > 0) {
      return Status::FailedPrecondition(
          "crhf_hh: answer-level merge requires a fresh target");
    }
    merged_.Fold(o->Summary());
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return alg_.SpaceBits(); }

 private:
  wbs::RandomTape tape_;
  hh::CrhfHeavyHitters alg_;
  AnswerAccumulator merged_;
};

}  // namespace

void RegisterBuiltinSketches(SketchRegistry* registry) {
  auto must = [](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "builtin sketch registration failed: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
  };
  must(registry->Register(
      "misra_gries",
      [](const SketchConfig& cfg) {
        return std::make_unique<MisraGriesSketch>(cfg);
      },
      SketchFamily::kHeavyHitter));
  must(registry->Register(
      "ams_f2",
      [](const SketchConfig& cfg) {
        return std::make_unique<AmsF2EngineSketch>(cfg);
      },
      SketchFamily::kScalarEstimate));
  must(registry->Register(
      "sis_l0",
      [](const SketchConfig& cfg) {
        return std::make_unique<SisL0EngineSketch>(cfg);
      },
      SketchFamily::kScalarEstimate));
  must(registry->Register(
      "rank_decision",
      [](const SketchConfig& cfg) {
        return std::make_unique<RankDecisionEngineSketch>(cfg);
      },
      SketchFamily::kRankVerdict));
  must(registry->Register(
      "robust_hh",
      [](const SketchConfig& cfg) {
        return std::make_unique<RobustHhEngineSketch>(cfg);
      },
      SketchFamily::kHeavyHitter));
  must(registry->Register(
      "crhf_hh",
      [](const SketchConfig& cfg) {
        return std::make_unique<CrhfHhEngineSketch>(cfg);
      },
      SketchFamily::kHeavyHitter));
}

}  // namespace wbs::engine
