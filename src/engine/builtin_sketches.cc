// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The built-in engine wrappers around the library's streaming algorithms.
//
// Merge semantics per family (see src/engine/README.md):
//   misra_gries    state merge (mergeable summaries, deterministic bound)
//   ams_f2         state merge (linear; bit-identical to single-instance)
//   sis_l0         state merge (linear; bit-identical to single-instance)
//   rank_decision  state merge (linear; bit-identical to single-instance)
//   robust_hh      answer merge (candidate-list union; exact under the
//   crhf_hh        ingestor's universe partitioning)
//
// Shared randomness (sign matrices, random oracles) derives from
// SketchConfig::seed so shard copies agree; private randomness (sampling
// tapes) derives from SketchConfig::shard_seed so shards sample
// independently but reproducibly.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "crypto/random_oracle.h"
#include "distinct/l0_estimator.h"
#include "engine/registry.h"
#include "engine/sketch.h"
#include "engine/wire.h"
#include "heavyhitters/crhf_hh.h"
#include "heavyhitters/misra_gries.h"
#include "heavyhitters/robust_hh.h"
#include "linalg/rank_sketch.h"
#include "moments/ams.h"

namespace wbs::engine {
namespace {

uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t s = seed ^ salt;
  return SplitMix64(&s);
}

constexpr uint64_t kAmsSalt = 0xa35f2000a35f2000ULL;
constexpr uint64_t kRobustSalt = 0x20b05700720b0577ULL;
constexpr uint64_t kCrhfSalt = 0xc12f00c12f00c12fULL;
constexpr uint64_t kL0OracleDomain = 0x10e57;
constexpr uint64_t kRankOracleDomain = 0x2a4c;

// Sampling sketches replay a weighted update as delta unit updates (a
// Bernoulli sample of w units is not one weighted add). Cap the expansion
// so a single adversarial delta cannot stall a worker thread forever.
constexpr int64_t kMaxSamplingDeltaExpansion = int64_t{1} << 20;

// Every builtin wire payload opens with the registry name and a per-family
// state-version byte, so a peer can reject a foreign sketch or a layout it
// does not speak before touching any state.
constexpr uint8_t kStateVersion = 1;

/// Shared wrapper plumbing: name, effective-update accounting, and a
/// first-seen-order batch aggregator for weight-equivalent sketches.
class SketchBase : public Sketch {
 public:
  explicit SketchBase(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }

 protected:
  /// Emits the common payload header.
  void PutStateHeader(wire::Writer& w) const {
    w.Str(name_);
    w.U8(kStateVersion);
  }

  /// Consumes and validates the common payload header.
  Status CheckStateHeader(wire::Reader& r) const {
    std::string_view got_name;
    uint8_t version = 0;
    if (Status s = r.Str(&got_name); !s.ok()) return s;
    if (got_name != name_) {
      return Status::InvalidArgument(name_ + ": state is for sketch \"" +
                                     std::string(got_name) + "\"");
    }
    if (Status s = r.U8(&version); !s.ok()) return s;
    if (version != kStateVersion) {
      return Status::InvalidArgument(
          name_ + ": unsupported state version " +
          std::to_string(int(version)));
    }
    return Status::OK();
  }
  /// The aggregated form of a batch: duplicate items combined in
  /// first-occurrence order. Only valid for sketches where one weighted
  /// update is equivalent to the corresponding run of unit updates.
  struct AggregatedView {
    const stream::TurnstileUpdate* data;
    size_t size;
    uint64_t effective;  ///< nonzero-delta raw updates represented
    bool has_negative;   ///< any raw delta < 0
  };

  /// Returns the batch's shared pre-aggregation when the ingestor attached
  /// one, otherwise aggregates locally into scratch_.
  AggregatedView GetAggregated(const UpdateBatch& batch) {
    if (batch.aggregated != nullptr) {
      return {batch.aggregated, batch.aggregated_size, batch.effective_updates,
              batch.has_negative_delta};
    }
    auto [effective, has_negative] =
        AggregateUpdates(batch.data, batch.size, &scratch_, &index_);
    return {scratch_.data(), scratch_.size(), effective, has_negative};
  }

  std::string name_;
  uint64_t updates_applied_ = 0;
  std::vector<stream::TurnstileUpdate> scratch_;
  std::unordered_map<uint64_t, size_t> index_;
};

/// Answer-level merge accumulator for sampling sketches: sums candidate
/// estimates item-wise across shard summaries. Because the ingestor assigns
/// each item to exactly one shard, the union *is* the global candidate list.
struct AnswerAccumulator {
  bool active = false;
  uint64_t updates = 0;
  std::map<uint64_t, double> estimates;  // ordered => deterministic output

  void Fold(const SketchSummary& s) {
    active = true;
    updates += s.updates;
    for (const auto& wi : s.items) estimates[wi.item] += wi.estimate;
  }

  std::vector<hh::WeightedItem> Items() const {
    std::vector<hh::WeightedItem> out;
    out.reserve(estimates.size());
    for (const auto& [item, est] : estimates) out.push_back({item, est});
    return out;
  }
};

/// Answer-level wire state shared by the sampling heavy hitters: the
/// candidate list with exact f64 estimates plus the update count. Sampling
/// state (tapes, Morris clocks) never crosses the boundary — a snapshot is
/// an answer, exactly like the in-process clone's merge accumulator.
void SerializeAnswerState(const SketchSummary& summary, wire::Writer& w) {
  w.U64(summary.updates);
  w.U64(summary.items.size());
  for (const auto& wi : summary.items) {
    w.U64(wi.item);
    w.F64(wi.estimate);
  }
}

/// The sampling families' summary in every life stage: a pure live sampler
/// (no accumulator), a pure merge accumulator (fresh target / snapshot
/// clone, no updates), or the post-handoff hybrid — frozen prefix answer
/// folded with the live suffix sample.
SketchSummary SamplingSummary(const std::string& name,
                              const AnswerAccumulator& merged,
                              uint64_t updates_applied,
                              std::vector<hh::WeightedItem> live_items) {
  SketchSummary s;
  s.sketch = name;
  if (merged.active && updates_applied == 0) {
    s.items = merged.Items();
    s.updates = merged.updates;
  } else if (!merged.active) {
    s.items = std::move(live_items);
    s.updates = updates_applied;
  } else {
    AnswerAccumulator combined = merged;
    SketchSummary live;
    live.items = std::move(live_items);
    live.updates = updates_applied;
    combined.Fold(live);
    s.items = combined.Items();
    s.updates = combined.updates;
  }
  s.SortItems();
  return s;
}

Status DeserializeAnswerState(const std::string& name, wire::Reader& r,
                              AnswerAccumulator* out) {
  uint64_t updates = 0, count = 0;
  if (Status s = r.U64(&updates); !s.ok()) return s;
  if (Status s = r.U64(&count); !s.ok()) return s;
  std::map<uint64_t, double> estimates;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t item = 0;
    double estimate = 0;
    if (Status s = r.U64(&item); !s.ok()) return s;
    if (Status s = r.F64(&estimate); !s.ok()) return s;
    if (!estimates.emplace(item, estimate).second) {
      return Status::InvalidArgument(name + ": duplicate candidate item");
    }
  }
  out->active = true;
  out->updates = updates;
  out->estimates = std::move(estimates);
  return Status::OK();
}

// ------------------------------------------------------------ misra_gries --

class MisraGriesSketch final : public SketchBase {
 public:
  explicit MisraGriesSketch(const SketchConfig& cfg)
      : SketchBase("misra_gries"), cfg_(cfg), mg_(cfg.misra_gries.counters) {}

  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.delta < 0) {
      return Status::InvalidArgument("misra_gries is insertion-only");
    }
    if (u.item >= cfg_.universe) {
      return Status::OutOfRange("misra_gries: item out of universe");
    }
    if (u.delta == 0) return Status::OK();
    mg_.Add(u.item, uint64_t(u.delta));
    ++updates_applied_;
    return Status::OK();
  }

  Status ApplyBatch(const UpdateBatch& batch) override {
    const AggregatedView agg = GetAggregated(batch);
    if (agg.has_negative) {
      return Status::InvalidArgument("misra_gries is insertion-only");
    }
    for (size_t i = 0; i < agg.size; ++i) {
      const auto& u = agg.data[i];
      if (u.delta == 0) continue;
      if (u.item >= cfg_.universe) {
        return Status::OutOfRange("misra_gries: item out of universe");
      }
      mg_.Add(u.item, uint64_t(u.delta));
    }
    updates_applied_ += agg.effective;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    s.items = mg_.List();
    s.updates = updates_applied_;
    s.SortItems();
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const MisraGriesSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("misra_gries: merge type mismatch");
    }
    Status s = mg_.MergeFrom(o->mg_);
    if (!s.ok()) return s;
    updates_applied_ += o->updates_applied_;
    return Status::OK();
  }

  /// State: k, updates, processed weight, and the exact uint64 counters in
  /// internal iteration order (so a restored summary replays merges in the
  /// same order as an in-process clone).
  Status SerializeState(wire::Writer& w) const override {
    PutStateHeader(w);
    w.U64(mg_.k());
    w.U64(updates_applied_);
    w.U64(mg_.processed());
    const auto entries = mg_.CounterEntries();
    w.U64(entries.size());
    for (const auto& [item, c] : entries) {
      w.U64(item);
      w.U64(c);
    }
    return Status::OK();
  }

  Status DeserializeState(wire::Reader& r) override {
    if (Status s = CheckStateHeader(r); !s.ok()) return s;
    uint64_t k = 0, updates = 0, processed = 0, count = 0;
    if (Status s = r.U64(&k); !s.ok()) return s;
    if (k != mg_.k()) {
      return Status::InvalidArgument("misra_gries: counter capacity mismatch");
    }
    if (Status s = r.U64(&updates); !s.ok()) return s;
    if (Status s = r.U64(&processed); !s.ok()) return s;
    if (Status s = r.U64(&count); !s.ok()) return s;
    std::vector<std::pair<uint64_t, uint64_t>> entries;
    if (count > k) {
      return Status::InvalidArgument("misra_gries: more entries than k");
    }
    entries.reserve(size_t(count));
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t item = 0, c = 0;
      if (Status s = r.U64(&item); !s.ok()) return s;
      if (Status s = r.U64(&c); !s.ok()) return s;
      if (item >= cfg_.universe) {
        return Status::OutOfRange("misra_gries: item out of universe");
      }
      entries.emplace_back(item, c);
    }
    if (Status s = mg_.RestoreState(processed, entries); !s.ok()) return s;
    updates_applied_ = updates;
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return mg_.SpaceBits(cfg_.universe); }

 private:
  SketchConfig cfg_;
  hh::MisraGries mg_;
};

// ----------------------------------------------------------------- ams_f2 --

class AmsF2EngineSketch final : public SketchBase {
 public:
  explicit AmsF2EngineSketch(const SketchConfig& cfg)
      : SketchBase("ams_f2"),
        tape_(MixSeed(cfg.seed, kAmsSalt)),
        ams_(cfg.universe, cfg.ams.rows, &tape_) {
    tape_.set_logging(false);  // serving engine, not the game harness
  }

  Status Update(const stream::TurnstileUpdate& u) override {
    Status s = ams_.Update(u);
    if (s.ok() && u.delta != 0) ++updates_applied_;
    return s;
  }

  Status ApplyBatch(const UpdateBatch& batch) override {
    const AggregatedView agg = GetAggregated(batch);
    // Row-major batched kernel: per-item sign mixes computed once, each
    // counter register-resident across the aggregated run.
    Status s = ams_.ApplyRun(agg.data, agg.size);
    if (!s.ok()) return s;
    updates_applied_ += agg.effective;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    s.has_scalar = true;
    s.scalar = ams_.Query();
    s.updates = updates_applied_;
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const AmsF2EngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("ams_f2: merge type mismatch");
    }
    Status s = ams_.MergeFrom(o->ams_);
    if (!s.ok()) return s;
    updates_applied_ += o->updates_applied_;
    return Status::OK();
  }

  Status UnmergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const AmsF2EngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("ams_f2: unmerge type mismatch");
    }
    Status s = ams_.UnmergeFrom(o->ams_);
    if (!s.ok()) return s;
    updates_applied_ -= o->updates_applied_;
    return Status::OK();
  }

  /// State: the sign-seed fingerprint (shared randomness must agree or the
  /// counters mean nothing) plus the raw counter vector.
  Status SerializeState(wire::Writer& w) const override {
    PutStateHeader(w);
    w.U64(ams_.sign_seed());
    w.U64(updates_applied_);
    const auto& counters = ams_.counters();
    w.U64(counters.size());
    for (int64_t c : counters) w.I64(c);
    return Status::OK();
  }

  Status DeserializeState(wire::Reader& r) override {
    if (Status s = CheckStateHeader(r); !s.ok()) return s;
    uint64_t sign_seed = 0, updates = 0, rows = 0;
    if (Status s = r.U64(&sign_seed); !s.ok()) return s;
    if (sign_seed != ams_.sign_seed()) {
      return Status::FailedPrecondition(
          "ams_f2: sign matrix mismatch (different config seed)");
    }
    if (Status s = r.U64(&updates); !s.ok()) return s;
    if (Status s = r.U64(&rows); !s.ok()) return s;
    if (rows != ams_.rows()) {
      return Status::InvalidArgument("ams_f2: row count mismatch");
    }
    std::vector<int64_t> counters(static_cast<size_t>(rows));
    for (auto& c : counters) {
      if (Status s = r.I64(&c); !s.ok()) return s;
    }
    if (Status s = ams_.RestoreCounters(counters); !s.ok()) return s;
    updates_applied_ = updates;
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return ams_.SpaceBits(); }

 private:
  wbs::RandomTape tape_;
  moments::AmsF2Sketch ams_;
};

// ----------------------------------------------------------------- sis_l0 --

class SisL0EngineSketch final : public SketchBase {
 public:
  explicit SisL0EngineSketch(const SketchConfig& cfg)
      : SketchBase("sis_l0"),
        oracle_(cfg.seed),
        est_(distinct::SisL0Params::Derive(cfg.universe, cfg.sis_l0.eps,
                                           cfg.sis_l0.c,
                                           cfg.sis_l0.f_inf_bound),
             oracle_, kL0OracleDomain) {}

  Status Update(const stream::TurnstileUpdate& u) override {
    EnsureMaterialized();
    Status s = est_.Update(u);
    if (s.ok() && u.delta != 0) ++updates_applied_;
    return s;
  }

  Status ApplyBatch(const UpdateBatch& batch) override {
    EnsureMaterialized();
    const AggregatedView agg = GetAggregated(batch);
    for (size_t i = 0; i < agg.size; ++i) {
      if (agg.data[i].delta == 0) continue;
      Status s = est_.Update(agg.data[i]);
      if (!s.ok()) return s;
    }
    updates_applied_ += agg.effective;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    s.has_scalar = true;
    s.scalar = est_.Query();
    s.updates = updates_applied_;
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const SisL0EngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("sis_l0: merge type mismatch");
    }
    if (oracle_.instance_id() != o->oracle_.instance_id()) {
      return Status::FailedPrecondition("sis_l0: oracle mismatch");
    }
    Status s = est_.MergeFrom(o->est_);
    if (!s.ok()) return s;
    updates_applied_ += o->updates_applied_;
    return Status::OK();
  }

  Status UnmergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const SisL0EngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("sis_l0: unmerge type mismatch");
    }
    if (oracle_.instance_id() != o->oracle_.instance_id()) {
      return Status::FailedPrecondition("sis_l0: oracle mismatch");
    }
    Status s = est_.UnmergeFrom(o->est_);
    if (!s.ok()) return s;
    updates_applied_ -= o->updates_applied_;
    return Status::OK();
  }

  /// State: derived chunking/modulus parameters (checked, since both sides
  /// re-derive them from the config) plus every chunk's sketch vector.
  Status SerializeState(wire::Writer& w) const override {
    PutStateHeader(w);
    const auto& p = est_.params();
    w.U64(p.num_chunks);
    w.U64(p.sketch_rows);
    w.U64(p.q);
    w.U64(oracle_.instance_id());
    w.U64(updates_applied_);
    for (const auto& chunk : est_.chunks()) {
      for (uint64_t v : chunk.value()) w.U64(v);
    }
    return Status::OK();
  }

  Status DeserializeState(wire::Reader& r) override {
    if (Status s = CheckStateHeader(r); !s.ok()) return s;
    const auto& p = est_.params();
    uint64_t chunks = 0, rows = 0, q = 0, oracle_id = 0, updates = 0;
    if (Status s = r.U64(&chunks); !s.ok()) return s;
    if (Status s = r.U64(&rows); !s.ok()) return s;
    if (Status s = r.U64(&q); !s.ok()) return s;
    if (chunks != p.num_chunks || rows != p.sketch_rows || q != p.q) {
      return Status::InvalidArgument("sis_l0: derived parameter mismatch");
    }
    if (Status s = r.U64(&oracle_id); !s.ok()) return s;
    if (oracle_id != oracle_.instance_id()) {
      return Status::FailedPrecondition(
          "sis_l0: oracle mismatch (different config seed)");
    }
    if (Status s = r.U64(&updates); !s.ok()) return s;
    std::vector<uint64_t> value(static_cast<size_t>(rows));
    for (uint64_t c = 0; c < chunks; ++c) {
      for (auto& v : value) {
        if (Status s = r.U64(&v); !s.ok()) return s;
      }
      if (Status s = est_.RestoreChunk(size_t(c), value); !s.ok()) return s;
    }
    updates_applied_ = updates;
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return est_.SpaceBits(); }

 private:
  /// The oracle-derived A costs one SHA-256 per entry; cache it before the
  /// first ingest, but never for merge-only targets (MergeFrom/Query touch
  /// only the chunk vectors, so fresh accumulators skip the cost).
  void EnsureMaterialized() {
    if (!materialized_) {
      est_.MaterializeMatrix();
      materialized_ = true;
    }
  }

  crypto::RandomOracle oracle_;
  distinct::SisL0Estimator est_;
  bool materialized_ = false;
};

// ---------------------------------------------------------- rank_decision --

class RankDecisionEngineSketch final : public SketchBase {
 public:
  explicit RankDecisionEngineSketch(const SketchConfig& cfg)
      : SketchBase("rank_decision"),
        n_(cfg.rank.n),
        oracle_(cfg.seed),
        sketch_(cfg.rank.n, cfg.rank.k, cfg.rank.q, oracle_,
                kRankOracleDomain) {}

  /// Items index the n x n matrix row-major: item = row * n + col.
  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.item >= uint64_t(n_) * n_) {
      return Status::OutOfRange("rank_decision: item out of matrix");
    }
    if (u.delta == 0) return Status::OK();
    Status s = sketch_.Update(
        {size_t(u.item / n_), size_t(u.item % n_), u.delta});
    if (s.ok()) ++updates_applied_;
    return s;
  }

  Status ApplyBatch(const UpdateBatch& batch) override {
    const AggregatedView agg = GetAggregated(batch);
    for (size_t i = 0; i < agg.size; ++i) {
      const auto& u = agg.data[i];
      if (u.delta == 0) continue;
      if (u.item >= uint64_t(n_) * n_) {
        return Status::OutOfRange("rank_decision: item out of matrix");
      }
      Status s = sketch_.Update(
          {size_t(u.item / n_), size_t(u.item % n_), u.delta});
      if (!s.ok()) return s;
    }
    updates_applied_ += agg.effective;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name_;
    s.has_scalar = true;
    s.scalar = sketch_.Query() ? 1.0 : 0.0;
    s.updates = updates_applied_;
    return s;
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const RankDecisionEngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("rank_decision: merge type mismatch");
    }
    if (oracle_.instance_id() != o->oracle_.instance_id()) {
      return Status::FailedPrecondition("rank_decision: oracle mismatch");
    }
    Status s = sketch_.MergeFrom(o->sketch_);
    if (!s.ok()) return s;
    updates_applied_ += o->updates_applied_;
    return Status::OK();
  }

  Status UnmergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const RankDecisionEngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("rank_decision: unmerge type mismatch");
    }
    if (oracle_.instance_id() != o->oracle_.instance_id()) {
      return Status::FailedPrecondition("rank_decision: oracle mismatch");
    }
    Status s = sketch_.UnmergeFrom(o->sketch_);
    if (!s.ok()) return s;
    updates_applied_ -= o->updates_applied_;
    return Status::OK();
  }

  /// State: (n, k, q) and the oracle fingerprint (H must agree), then the
  /// k x n sketch S row-major.
  Status SerializeState(wire::Writer& w) const override {
    PutStateHeader(w);
    const auto& m = sketch_.sketch();
    w.U64(sketch_.n());
    w.U64(sketch_.k());
    w.U64(m.q());
    w.U64(oracle_.instance_id());
    w.U64(updates_applied_);
    for (size_t i = 0; i < m.size(); ++i) w.U64(m.data()[i]);
    return Status::OK();
  }

  Status DeserializeState(wire::Reader& r) override {
    if (Status s = CheckStateHeader(r); !s.ok()) return s;
    uint64_t n = 0, k = 0, q = 0, oracle_id = 0, updates = 0;
    if (Status s = r.U64(&n); !s.ok()) return s;
    if (Status s = r.U64(&k); !s.ok()) return s;
    if (Status s = r.U64(&q); !s.ok()) return s;
    if (n != sketch_.n() || k != sketch_.k() || q != sketch_.sketch().q()) {
      return Status::InvalidArgument("rank_decision: dimension mismatch");
    }
    if (Status s = r.U64(&oracle_id); !s.ok()) return s;
    if (oracle_id != oracle_.instance_id()) {
      return Status::FailedPrecondition(
          "rank_decision: oracle mismatch (different config seed)");
    }
    if (Status s = r.U64(&updates); !s.ok()) return s;
    std::vector<uint64_t> entries(size_t(n) * size_t(k));
    for (auto& v : entries) {
      if (Status s = r.U64(&v); !s.ok()) return s;
    }
    if (Status s = sketch_.RestoreSketch(entries); !s.ok()) return s;
    updates_applied_ = updates;
    return Status::OK();
  }

  uint64_t SpaceBits() const override { return sketch_.SpaceBits(); }

 private:
  size_t n_;
  crypto::RandomOracle oracle_;
  linalg::RankDecisionSketch sketch_;
};

// -------------------------------------------------- robust_hh / crhf_hh --
//
// Sampling-based heavy hitters: Bernoulli samples are not equivalent to
// weighted adds, so batches are applied update-by-update (the batch still
// amortizes queueing and dispatch). Merging is answer-level and requires a
// fresh target, which the ingestor's merge path always provides.
//
// Shard handoff: sampler internals (tapes, Morris clocks) never cross the
// wire, so a deserialized instance carries its prior substream as a FROZEN
// answer-level accumulator — and keeps ingesting new updates with a fresh
// sampler. Summary() folds the frozen prefix with the live suffix answer,
// which is exactly the paper's mergeable-summary semantics: the retired
// placement's contribution keeps answering forever while new traffic is
// sampled independently. (Engine merge targets and snapshot clones are
// accumulators that simply never receive updates.)

class RobustHhEngineSketch final : public SketchBase {
 public:
  explicit RobustHhEngineSketch(const SketchConfig& cfg)
      : SketchBase("robust_hh"),
        tape_(MixSeed(cfg.shard_seed, kRobustSalt)),
        alg_(cfg.universe, cfg.hh.eps, cfg.hh.delta, &tape_) {
    tape_.set_logging(false);
  }

  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.delta < 0) {
      return Status::InvalidArgument("robust_hh is insertion-only");
    }
    if (u.delta > kMaxSamplingDeltaExpansion) {
      return Status::InvalidArgument(
          "robust_hh: weighted delta exceeds the unit-expansion cap");
    }
    for (int64_t i = 0; i < u.delta; ++i) {
      Status s = alg_.Update({u.item});
      if (!s.ok()) return s;
    }
    if (u.delta != 0) ++updates_applied_;
    return Status::OK();
  }

  SketchSummary Summary() const override {
    return SamplingSummary(name_, merged_, updates_applied_, alg_.Query());
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const RobustHhEngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("robust_hh: merge type mismatch");
    }
    if (updates_applied_ > 0) {
      return Status::FailedPrecondition(
          "robust_hh: answer-level merge requires a fresh target");
    }
    merged_.Fold(o->Summary());
    return Status::OK();
  }

  Status SerializeState(wire::Writer& w) const override {
    PutStateHeader(w);
    SerializeAnswerState(Summary(), w);
    return Status::OK();
  }

  Status DeserializeState(wire::Reader& r) override {
    if (Status s = CheckStateHeader(r); !s.ok()) return s;
    if (updates_applied_ > 0 || merged_.active) {
      return Status::FailedPrecondition(
          "robust_hh: deserialize requires a fresh instance");
    }
    return DeserializeAnswerState(name_, r, &merged_);
  }

  uint64_t SpaceBits() const override { return alg_.SpaceBits(); }

 private:
  wbs::RandomTape tape_;
  hh::RobustL1HeavyHitters alg_;
  AnswerAccumulator merged_;
};

class CrhfHhEngineSketch final : public SketchBase {
 public:
  explicit CrhfHhEngineSketch(const SketchConfig& cfg)
      : SketchBase("crhf_hh"),
        tape_(MixSeed(cfg.shard_seed, kCrhfSalt)),
        alg_(cfg.universe, cfg.hh.phi, cfg.hh.eps, cfg.hh.time_budget_t, &tape_) {
    tape_.set_logging(false);
  }

  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.delta < 0) {
      return Status::InvalidArgument("crhf_hh is insertion-only");
    }
    if (u.delta > kMaxSamplingDeltaExpansion) {
      return Status::InvalidArgument(
          "crhf_hh: weighted delta exceeds the unit-expansion cap");
    }
    for (int64_t i = 0; i < u.delta; ++i) {
      Status s = alg_.Update({u.item});
      if (!s.ok()) return s;
    }
    if (u.delta != 0) ++updates_applied_;
    return Status::OK();
  }

  /// Batches hash 8 distinct entries per multi-lane SHA-256 call and reuse
  /// each entry's single CRHF image across its whole delta expansion —
  /// per-unit re-hashing was the dominant cost of the Update() loop. The
  /// CRHF is pure and stateless, so hashing ahead of the per-entry
  /// validation cannot change observable behavior; entries are still
  /// applied (and can still fail) strictly in order, exactly like the
  /// default Update() loop.
  Status ApplyBatch(const UpdateBatch& batch) override {
    uint64_t items[8];
    uint64_t hashes[8];
    const crypto::Sha256Crhf& crhf = alg_.crhf();
    for (size_t base = 0; base < batch.size; base += 8) {
      const size_t chunk = std::min<size_t>(8, batch.size - base);
      if (chunk == 8) {
        for (size_t k = 0; k < 8; ++k) items[k] = batch.data[base + k].item;
        crhf.HashU64x8(items, hashes);
      } else {
        for (size_t k = 0; k < chunk; ++k) {
          hashes[k] = crhf.HashU64(batch.data[base + k].item);
        }
      }
      for (size_t k = 0; k < chunk; ++k) {
        const stream::TurnstileUpdate& u = batch.data[base + k];
        if (u.delta < 0) {
          return Status::InvalidArgument("crhf_hh is insertion-only");
        }
        if (u.delta > kMaxSamplingDeltaExpansion) {
          return Status::InvalidArgument(
              "crhf_hh: weighted delta exceeds the unit-expansion cap");
        }
        for (int64_t i = 0; i < u.delta; ++i) {
          Status s = alg_.UpdateHashed(u.item, hashes[k]);
          if (!s.ok()) return s;
        }
        if (u.delta != 0) ++updates_applied_;
      }
    }
    return Status::OK();
  }

  SketchSummary Summary() const override {
    return SamplingSummary(name_, merged_, updates_applied_, alg_.Query());
  }

  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const CrhfHhEngineSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("crhf_hh: merge type mismatch");
    }
    if (updates_applied_ > 0) {
      return Status::FailedPrecondition(
          "crhf_hh: answer-level merge requires a fresh target");
    }
    merged_.Fold(o->Summary());
    return Status::OK();
  }

  Status SerializeState(wire::Writer& w) const override {
    PutStateHeader(w);
    SerializeAnswerState(Summary(), w);
    return Status::OK();
  }

  Status DeserializeState(wire::Reader& r) override {
    if (Status s = CheckStateHeader(r); !s.ok()) return s;
    if (updates_applied_ > 0 || merged_.active) {
      return Status::FailedPrecondition(
          "crhf_hh: deserialize requires a fresh instance");
    }
    return DeserializeAnswerState(name_, r, &merged_);
  }

  uint64_t SpaceBits() const override { return alg_.SpaceBits(); }

 private:
  wbs::RandomTape tape_;
  hh::CrhfHeavyHitters alg_;
  AnswerAccumulator merged_;
};

}  // namespace

void RegisterBuiltinSketches(SketchRegistry* registry) {
  auto must = [](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "builtin sketch registration failed: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
  };
  must(registry->Register(
      "misra_gries",
      [](const SketchConfig& cfg) {
        return std::make_unique<MisraGriesSketch>(cfg);
      },
      SketchFamily::kHeavyHitter));
  must(registry->Register(
      "ams_f2",
      [](const SketchConfig& cfg) {
        return std::make_unique<AmsF2EngineSketch>(cfg);
      },
      SketchFamily::kScalarEstimate));
  must(registry->Register(
      "sis_l0",
      [](const SketchConfig& cfg) {
        return std::make_unique<SisL0EngineSketch>(cfg);
      },
      SketchFamily::kScalarEstimate));
  must(registry->Register(
      "rank_decision",
      [](const SketchConfig& cfg) {
        return std::make_unique<RankDecisionEngineSketch>(cfg);
      },
      SketchFamily::kRankVerdict));
  must(registry->Register(
      "robust_hh",
      [](const SketchConfig& cfg) {
        return std::make_unique<RobustHhEngineSketch>(cfg);
      },
      SketchFamily::kHeavyHitter));
  must(registry->Register(
      "crhf_hh",
      [](const SketchConfig& cfg) {
        return std::make_unique<CrhfHhEngineSketch>(cfg);
      },
      SketchFamily::kHeavyHitter));
}

}  // namespace wbs::engine
