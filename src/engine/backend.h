// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// ShardBackend — the pluggable boundary between the engine's ingestion
// pipeline and the place its shards actually live.
//
// ShardedIngestor used to hard-code a private, process-local `Shard` struct;
// everything below the scatter/router/ticket machinery is now behind this
// interface, so shards can live in this process (`InProcessBackend`, the
// former code path, bit-identical, zero-copy), behind a socket speaking the
// wire format (`LoopbackRemoteBackend` in remote_backend.h), or anywhere a
// future transport puts them — without touching the engine core.
//
// Contract (what the ingestor guarantees / expects):
//
//   * ApplyBatch(shard, ...) is called by at most ONE thread at a time per
//     shard (each shard is owned by one worker; inline mode serializes under
//     the submit mutex). Different shards are applied concurrently.
//   * Epoch / Snapshot / SnapshotSerialized may be called from ANY thread at
//     any time, concurrently with ApplyBatch on the same shard — backends
//     synchronize snapshot publication internally. (Snapshot.sketch,
//     Snapshot.epoch) must be a consistent pair: the state really published
//     at that epoch.
//   * Epoch counts snapshot publications and only advances. A backend
//     publishes at the first batch boundary after `snapshot_min_updates`
//     updates since the last publication; Flush(shard) — called only at
//     quiescence — publishes a lagging shard so queries become exact.
//   * A failed publication must surface on the NEXT Snapshot call as its
//     Status (after bumping the epoch so caches notice), never as a stale
//     answer served silently.
//   * LiveSummary and SpaceBits are only called at quiescence (the ingestor
//     checks); they read live, worker-owned state.
//
// The in-process backend applies raw update pointers without a copy — the
// fast path current benches measure. A remote backend encodes the batch
// with wire::EncodeUpdates and ships frames; `capabilities()` tells callers
// which world they are in.

#ifndef WBS_ENGINE_BACKEND_H_
#define WBS_ENGINE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/metrics.h"
#include "engine/sketch.h"
#include "engine/wire.h"
#include "stream/updates.h"

namespace wbs::engine {

/// Everything a backend needs to build its shards. The ingestor fills this
/// from IngestorOptions after validation/clamping.
struct BackendOptions {
  size_t num_shards = 1;
  std::vector<std::string> sketches;  ///< registry names, one group per shard
  SketchConfig config;                ///< base config; see ShardConfigFor()
  size_t snapshot_min_updates = 1024;
  /// When true, `config.shard_seed` is already resolved and must be used
  /// as-is instead of re-deriving per shard — set by the loopback shard
  /// server, whose single shard receives the seed its client derived.
  bool shard_seeds_resolved = false;
};

/// What a backend can and cannot do; callers use this for routing decisions
/// and diagnostics, not correctness (the interface semantics are uniform).
struct BackendCapabilities {
  bool zero_copy = false;  ///< ApplyBatch consumes raw pointers, no encode
  bool crosses_process_boundary = false;  ///< state ships via the wire format
  uint8_t wire_version = wire::kFormatVersion;  ///< format the backend speaks
};

/// A consistent (published state, epoch) pair for one (shard, sketch).
/// `sketch` is null when the shard has not published yet.
struct ShardSnapshot {
  std::shared_ptr<const Sketch> sketch;
  uint64_t epoch = 0;
};

/// Snapshot state in serialized form — what an actual transport ships.
/// `state` is a kSketchState frame, empty when the shard never published.
struct SerializedSnapshot {
  std::string state;
  uint64_t epoch = 0;
};

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Stable backend identifier ("inprocess", "loopback", ...).
  virtual const std::string& name() const = 0;

  virtual BackendCapabilities capabilities() const = 0;

  virtual size_t num_shards() const = 0;

  /// Applies `count` turnstile updates to `shard` (single caller per shard
  /// at a time; see the contract above). The backend aggregates duplicates,
  /// feeds every sketch of the shard's group, and publishes a snapshot when
  /// the throttle allows.
  virtual Status ApplyBatch(size_t shard, const stream::TurnstileUpdate* data,
                            size_t count) = 0;

  /// The shard's snapshot publication count. Monotone; cheap enough to poll
  /// per query (an atomic load in process, one small frame over loopback).
  virtual Result<uint64_t> Epoch(size_t shard) const = 0;

  /// The published snapshot of one sketch, as a live Sketch instance the
  /// merge path can fold (remote backends deserialize the shipped state).
  virtual Result<ShardSnapshot> Snapshot(size_t shard,
                                         size_t sketch_index) const = 0;

  /// The published snapshot in wire form (diagnostics, tooling, benches).
  virtual Result<SerializedSnapshot> SnapshotSerialized(
      size_t shard, size_t sketch_index) const = 0;

  /// Publishes the shard's snapshot if it lags live state. Quiescence only.
  virtual Status Flush(size_t shard) = 0;

  /// Shard handoff import: replaces the shard's live sketch group with the
  /// states decoded from `frames` (one kSketchState frame per configured
  /// sketch, in sketch order — the wire handoff format produced by
  /// SnapshotSerialized on the source), then publishes a snapshot so the
  /// imported history is immediately merge-visible. Called only at a
  /// topology barrier (no concurrent ApplyBatch on the shard). The default
  /// is Unimplemented; both builtin backends support it.
  virtual Status ImportShardState(size_t shard,
                                  const std::vector<std::string>& frames) {
    (void)shard;
    (void)frames;
    return Status::Unimplemented(name() +
                                 " backend: ImportShardState not supported");
  }

  /// Observability: the shard's metric samples, safe from any thread
  /// concurrently with ApplyBatch (backends read relaxed atomics or go
  /// through their own control channel). Names are UNPREFIXED per-shard
  /// identifiers ("epoch", "snapshot_lag_updates", "serialize_us",
  /// "wire.bytes_out_total", ...); the engine prepends
  /// `engine.shard.<global id>.` when assembling its snapshot. The default
  /// reports nothing — a backend without instrumentation is still valid.
  virtual Result<std::vector<MetricSample>> Metrics(size_t shard) const {
    (void)shard;
    return std::vector<MetricSample>{};
  }

  /// Liveness probe for one shard, bounded by `timeout_ms`, safe from any
  /// thread. OK means the shard answered in time; DeadlineExceeded /
  /// Unavailable mean it did not (the supervisor's failure signal). The
  /// default answers OK immediately — an in-process shard cannot die
  /// separately from the engine, so it is always live.
  virtual Status Heartbeat(size_t shard, uint64_t timeout_ms) {
    (void)shard;
    (void)timeout_ms;
    return Status::OK();
  }

  /// Fault injection for tests and drills: kills the shard's serving loop
  /// (see ShardServer crash modes); `torn` first emits a checksum-corrupted
  /// frame. Unimplemented by default — backends whose shards cannot crash
  /// independently (in-process) cannot fake it either.
  virtual Status InjectCrash(size_t shard, bool torn) {
    (void)shard;
    (void)torn;
    return Status::Unimplemented(name() + " backend: InjectCrash not supported");
  }

  /// Transient-partition injection: severs the shard's live connections
  /// WITHOUT killing the peer, so a reconnecting transport can resync with
  /// no state loss and no re-home. Unimplemented by default — only
  /// transports with real connections (TCP) can be partitioned.
  virtual Status InjectPartition(size_t shard) {
    (void)shard;
    return Status::Unimplemented(name() +
                                 " backend: InjectPartition not supported");
  }

  /// The network endpoint ("host:port") serving this shard, or "" for
  /// shards with no endpoint (in-process, socketpair loopback). Placements
  /// record this so supervision can group shards into per-host failure
  /// domains: when one shard on an endpoint misses a heartbeat, every
  /// placement on that endpoint goes kSuspect together.
  virtual std::string Endpoint(size_t shard) const {
    (void)shard;
    return std::string();
  }

  /// Live (not snapshot) summary of one sketch. Quiescence only.
  virtual Result<SketchSummary> LiveSummary(size_t shard,
                                            size_t sketch_index) const = 0;

  /// Total state bits across all shards and sketches. Quiescence only.
  virtual uint64_t SpaceBits() const = 0;
};

/// Builds a backend from options. IngestorOptions carries one of these;
/// a default-constructed (empty) factory means InProcessBackendFactory().
using BackendFactory =
    std::function<Result<std::unique_ptr<ShardBackend>>(const BackendOptions&)>;

/// The process-local backend — the engine's original shard code behind the
/// new interface: zero-copy apply, shared per-shard aggregation, clone-based
/// snapshot slots with atomic epochs. Bit-identical to the pre-backend
/// engine for every workload.
BackendFactory InProcessBackendFactory();

/// Mixed placement: shard i is hosted by a single-shard child backend built
/// from `placements[i % placements.size()]`, so one engine can keep some
/// shards in-process and put others behind the loopback wire (or any other
/// factory) SIMULTANEOUSLY. The composite resolves each child's shard seed
/// from the global shard id before delegating, so a shard samples
/// identically no matter which placement pattern hosts it. Capabilities
/// report the conservative union (not zero-copy, crosses a process
/// boundary) whenever any child does.
BackendFactory CompositeBackendFactory(std::vector<BackendFactory> placements);

/// Derives the per-shard config: `shard_seed` from (config.seed, shard) by
/// the engine's fixed seed schedule. Every backend must use this so a shard
/// samples identically no matter where it lives.
SketchConfig ShardConfigFor(const SketchConfig& base, size_t shard);

/// Seed for the merge-target instances the query path creates (distinct
/// from every shard seed).
uint64_t MergeSeedFor(const SketchConfig& base);

/// Reconstructs a sketch from a kSketchState frame: creates `name` from the
/// global registry with `config` (which must match the serializing side's),
/// then restores the framed state. Checksum, version, name and dimension
/// mismatches all surface as Status errors.
Result<std::unique_ptr<Sketch>> DeserializeSketch(const std::string& name,
                                                  const SketchConfig& config,
                                                  const std::string& frame);

/// Serializes a sketch into a kSketchState frame (the inverse).
Result<std::string> SerializeSketch(const Sketch& sketch);

}  // namespace wbs::engine

#endif  // WBS_ENGINE_BACKEND_H_
