// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/autoscaler.h"

#include <algorithm>
#include <chrono>

#include "engine/metrics.h"
#include "engine/sharded_ingestor.h"
#include "engine/topology.h"
#include "engine/trace.h"

namespace wbs::engine {

namespace {

uint64_t NowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

}  // namespace

Autoscaler::Autoscaler(ShardedIngestor* ingestor, AutoscaleOptions options)
    : ingestor_(ingestor), options_(std::move(options)) {
  EngineMetrics* m = ingestor_->metrics_.get();
  if (m != nullptr) {
    MetricsRegistry& reg = m->registry();
    evaluations_total_ = reg.NewCounter("engine.autoscaler.evaluations_total");
    scaleouts_total_ = reg.NewCounter("engine.autoscaler.scaleouts_total");
    slot_moves_total_ = reg.NewCounter("engine.autoscaler.slot_moves_total");
    cooldown_suppressed_total_ =
        reg.NewCounter("engine.autoscaler.cooldown_suppressed_total");
    shards_added_total_ =
        reg.NewCounter("engine.autoscaler.shards_added_total");
    slots_moved_total_ = reg.NewCounter("engine.autoscaler.slots_moved_total");
    op_failures_total_ = reg.NewCounter("engine.autoscaler.op_failures_total");
    mean_rate_gauge_ =
        reg.NewGauge("engine.autoscaler.mean_updates_per_sec");
    max_rate_gauge_ = reg.NewGauge("engine.autoscaler.max_updates_per_sec");
    max_queue_depth_gauge_ =
        reg.NewGauge("engine.autoscaler.max_queue_depth");
  }
}

Autoscaler::~Autoscaler() { Stop(); }

void Autoscaler::Start() {
  if (options_.evaluation_interval_ms == 0) return;  // manual mode
  if (running_.exchange(true)) return;
  stop_.store(false, std::memory_order_release);
  controller_ = std::thread([this] { ControllerLoop(); });
}

void Autoscaler::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
  if (controller_.joinable()) controller_.join();
  running_.store(false, std::memory_order_release);
}

void Autoscaler::ControllerLoop() {
  const auto period = std::chrono::milliseconds(options_.evaluation_interval_ms);
  while (!stop_.load(std::memory_order_acquire)) {
    EvaluateOnce();
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait_for(lock, period, [this] {
      return stop_.load(std::memory_order_acquire);
    });
  }
}

AutoscaleDecision Autoscaler::EvaluateOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  if (evaluations_total_ != nullptr) evaluations_total_->Inc();
  return DecideLocked();
}

AutoscaleDecision Autoscaler::DecideLocked() {
  AutoscaleDecision decision;
  const uint64_t now = NowUs();
  std::shared_ptr<const TopologyView> view = ingestor_->topology_->View();
  const size_t num_shards = view->num_shards();
  EngineMetrics* metrics = ingestor_->metrics_.get();
  if (metrics == nullptr || num_shards == 0) return decision;

  // ---- sample & EWMA-smooth per-shard ingest rates ----------------------
  // Rates come from counter DELTAS between evaluations, not from lifetime
  // averages: the controller must see the spike, not the history diluting
  // it. The first sight of a shard only records its baseline.
  if (samples_.size() < num_shards) samples_.resize(num_shards);
  const bool first_eval = last_eval_us_ == 0;
  const double elapsed_s =
      double(std::max<uint64_t>(now - last_eval_us_, 1000)) / 1e6;
  last_eval_us_ = now;
  double sum_rate = 0.0;
  double max_rate = 0.0;
  size_t hottest = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const uint64_t updates = metrics->shard(s)->updates_total->Value();
    ShardSample& sample = samples_[s];
    if (sample.seen && !first_eval) {
      const double raw = double(updates - sample.updates_total) / elapsed_s;
      const double a = std::clamp(options_.ewma_alpha, 0.0, 1.0);
      sample.rate = a * raw + (1.0 - a) * sample.rate;
    }
    sample.updates_total = updates;
    sample.seen = true;
    sum_rate += sample.rate;
    if (sample.rate > max_rate) {
      max_rate = sample.rate;
      hottest = s;
    }
  }
  const double mean_rate = sum_rate / double(num_shards);
  decision.mean_rate = mean_rate;
  decision.max_rate = max_rate;
  if (mean_rate_gauge_ != nullptr) {
    mean_rate_gauge_->Set(int64_t(mean_rate));
    max_rate_gauge_->Set(int64_t(max_rate));
  }

  // ---- sample valve pressure & worker queue depth -----------------------
  uint64_t valve_waiters = 0;
  {
    std::lock_guard<std::mutex> tlock(ingestor_->ticket_mu_);
    valve_waiters = ingestor_->valve_next_ - ingestor_->valve_serving_;
  }
  int64_t max_queue_depth = 0;
  for (size_t w = 0; w < ingestor_->workers_.size(); ++w) {
    max_queue_depth =
        std::max(max_queue_depth, metrics->worker(w)->queue_depth->Value());
  }
  if (max_queue_depth_gauge_ != nullptr) {
    max_queue_depth_gauge_->Set(max_queue_depth);
  }
  if (first_eval) return decision;  // baselines only; no rates yet

  // ---- score against the targets ----------------------------------------
  const bool over_high = options_.high_watermark_updates_per_sec > 0.0 &&
                         mean_rate > options_.high_watermark_updates_per_sec;
  const bool valve_pressure =
      options_.scale_on_valve_pressure && valve_waiters > 0;
  const bool want_scaleout =
      (over_high || valve_pressure) && num_shards < options_.max_shards;

  bool want_slot_move = false;
  size_t dest = num_shards;
  std::vector<uint32_t> slots;
  if (!want_scaleout && num_shards >= 2 &&
      mean_rate > options_.low_watermark_updates_per_sec &&
      max_rate > options_.imbalance_ratio * mean_rate &&
      view->SlotsOwnedBy(hottest) >= 2) {
    // Peel the hottest slots off the hottest shard — if slot heat is
    // visible (sampling on) and a healthy destination exists.
    std::vector<uint64_t> heat = ingestor_->SlotHeat();
    if (!heat.empty()) {
      dest = PickDestinationLocked(hottest, num_shards);
      if (dest < num_shards) {
        if (prev_heat_.size() < heat.size()) prev_heat_.resize(heat.size(), 0);
        std::vector<uint32_t> owned = view->OwnedSlotIds(hottest);
        // Hottest slots first (heat delta since the last evaluation; ties
        // to the lower slot id for determinism); the source always keeps
        // at least one slot.
        std::stable_sort(owned.begin(), owned.end(),
                         [&](uint32_t a, uint32_t b) {
                           return heat[a] - prev_heat_[a] >
                                  heat[b] - prev_heat_[b];
                         });
        const size_t movable = std::min(options_.max_slots_per_move,
                                        owned.size() - 1);
        slots.assign(owned.begin(), owned.begin() + movable);
        std::sort(slots.begin(), slots.end());
        want_slot_move = !slots.empty();
      }
    }
    prev_heat_ = std::move(heat);
  }

  if (!want_scaleout && !want_slot_move) return decision;  // kNone

  // ---- anti-flap cooldown ------------------------------------------------
  if (has_acted_ &&
      now - last_action_us_ < options_.cooldown_ms * 1000) {
    decision.kind = AutoscaleDecision::Kind::kCooldown;
    if (cooldown_suppressed_total_ != nullptr) {
      cooldown_suppressed_total_->Inc();
    }
    Tracer::Span span =
        ingestor_->tracer_->StartSpan("autoscale.decision");
    span.Attr("kind", uint64_t(decision.kind))
        .Attr("mean_rate", uint64_t(mean_rate))
        .Attr("max_rate", uint64_t(max_rate))
        .Attr("generation", view->generation);
    return decision;
  }

  // ---- act (one action per cycle) ---------------------------------------
  Tracer::Span span = ingestor_->tracer_->StartSpan("autoscale.decision");
  span.Attr("mean_rate", uint64_t(mean_rate))
      .Attr("max_rate", uint64_t(max_rate))
      .Attr("valve_waiters", valve_waiters)
      .Attr("max_queue_depth", uint64_t(max_queue_depth))
      .Attr("generation", view->generation);
  if (want_scaleout) {
    const size_t adds =
        std::min(options_.scale_step, options_.max_shards - num_shards);
    decision.kind = AutoscaleDecision::Kind::kScaleOut;
    decision.slots.resize(adds);  // size() = shards added
    decision.status = ingestor_->AddShards(adds, options_.backend);
    span.Attr("kind", uint64_t(decision.kind)).Attr("added", adds);
    if (scaleouts_total_ != nullptr && decision.status.ok()) {
      scaleouts_total_->Inc();
      shards_added_total_->Inc(adds);
    }
  } else {
    decision.kind = AutoscaleDecision::Kind::kMoveSlots;
    decision.source = hottest;
    decision.dest = dest;
    decision.slots = slots;
    decision.status = ingestor_->MoveSlots(hottest, slots, dest);
    span.Attr("kind", uint64_t(decision.kind))
        .Attr("source", hottest)
        .Attr("dest", dest)
        .Attr("slots", slots.size());
    if (slot_moves_total_ != nullptr && decision.status.ok()) {
      slot_moves_total_->Inc();
      slots_moved_total_->Inc(slots.size());
    }
  }
  span.Attr("ok", decision.status.ok() ? 1 : 0);
  if (!decision.status.ok() && op_failures_total_ != nullptr) {
    op_failures_total_->Inc();
  }
  // A FAILED op still arms the cooldown: retrying a refused reshard every
  // evaluation tick is exactly the flapping this window exists to stop.
  last_action_us_ = now;
  has_acted_ = true;
  return decision;
}

size_t Autoscaler::PickDestinationLocked(size_t source, size_t num_shards) {
  // Least-loaded (smoothed rate) shard that is NOT the source and answers
  // heartbeats. A kSuspect/kDead shard is never a migration destination —
  // moving a hot slot onto a dying shard converts an imbalance into an
  // outage.
  size_t best = num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    if (s == source) continue;
    if (ingestor_->Health(s).health != ShardHealth::kHealthy) continue;
    if (best == num_shards || samples_[s].rate < samples_[best].rate) {
      best = s;
    }
  }
  return best;
}

}  // namespace wbs::engine
