// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Name -> factory registry for engine sketches. The built-in wrappers
// (Misra-Gries, robust HH, CRHF-HH, AMS F2, SIS-L0, rank decision) register
// themselves on first access to Global(); callers can add their own sketches
// at runtime, which is how a new algorithm joins the serving pipeline
// without touching the ingestor.

#ifndef WBS_ENGINE_REGISTRY_H_
#define WBS_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/sketch.h"

namespace wbs::engine {

/// What kind of answers a sketch family produces — the contract the typed
/// query surface (engine::Client) enforces: asking a heavy-hitter sketch for
/// a scalar estimate, or a moment sketch for a candidate list, is an
/// InvalidArgument at query time instead of a silently empty answer.
enum class SketchFamily {
  kHeavyHitter,      ///< candidate list: PointEstimate / TopK
  kScalarEstimate,   ///< numeric scalar: ScalarEstimate (F2, L0, ...)
  kRankVerdict,      ///< boolean decision: RankVerdict
  kGeneric,          ///< unconstrained (custom sketches); all queries allowed
};

class SketchRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Sketch>(const SketchConfig&)>;

  /// The process-wide registry, with the built-in sketches pre-registered.
  static SketchRegistry& Global();

  /// Registers a factory under `name`; rejects duplicates. `family`
  /// declares which typed queries the sketch answers (kGeneric = all).
  Status Register(const std::string& name, Factory factory,
                  SketchFamily family = SketchFamily::kGeneric);

  /// Instantiates the named sketch with `config`.
  Result<std::unique_ptr<Sketch>> Create(const std::string& name,
                                         const SketchConfig& config) const;

  bool Has(const std::string& name) const;

  /// The declared answer family of `name`.
  Result<SketchFamily> FamilyOf(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    Factory factory;
    SketchFamily family;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> factories_;
};

/// Registers the built-in wrappers (defined in builtin_sketches.cc); called
/// once by SketchRegistry::Global().
void RegisterBuiltinSketches(SketchRegistry* registry);

}  // namespace wbs::engine

#endif  // WBS_ENGINE_REGISTRY_H_
