// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Name -> factory registry for engine sketches. The built-in wrappers
// (Misra-Gries, robust HH, CRHF-HH, AMS F2, SIS-L0, rank decision) register
// themselves on first access to Global(); callers can add their own sketches
// at runtime, which is how a new algorithm joins the serving pipeline
// without touching the ingestor.

#ifndef WBS_ENGINE_REGISTRY_H_
#define WBS_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/sketch.h"

namespace wbs::engine {

class SketchRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Sketch>(const SketchConfig&)>;

  /// The process-wide registry, with the built-in sketches pre-registered.
  static SketchRegistry& Global();

  /// Registers a factory under `name`; rejects duplicates.
  Status Register(const std::string& name, Factory factory);

  /// Instantiates the named sketch with `config`.
  Result<std::unique_ptr<Sketch>> Create(const std::string& name,
                                         const SketchConfig& config) const;

  bool Has(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

/// Registers the built-in wrappers (defined in builtin_sketches.cc); called
/// once by SketchRegistry::Global().
void RegisterBuiltinSketches(SketchRegistry* registry);

}  // namespace wbs::engine

#endif  // WBS_ENGINE_REGISTRY_H_
