// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// engine::Driver — the thin serving facade over ShardedIngestor used by the
// throughput benchmarks and example scenarios: it chops materialized
// workload streams into submission batches (batch_size == 1 reproduces the
// legacy one-update-at-a-time path), runs them through the ingestor, and
// exposes the merged per-sketch summaries. Query() serves epoch-snapshot
// answers while a Replay is still in flight (no Flush needed).

#ifndef WBS_ENGINE_DRIVER_H_
#define WBS_ENGINE_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/sharded_ingestor.h"
#include "engine/sketch.h"
#include "stream/updates.h"

namespace wbs::engine {

struct DriverOptions {
  IngestorOptions ingest;
  size_t batch_size = 8192;  ///< submission granularity; 1 = unbatched
};

class Driver {
 public:
  static Result<std::unique_ptr<Driver>> Create(const DriverOptions& options);

  /// Replays a materialized stream through the ingestor in batches.
  Status Replay(const stream::TurnstileStream& s);
  Status Replay(const stream::ItemStream& s);

  /// Waits for all in-flight work (keeps workers alive for more Replays).
  Status Flush() { return ingestor_->Flush(); }

  /// Drains and joins; the driver stays queryable.
  Status Finish() { return ingestor_->Finish(); }

  /// Non-blocking snapshot query: the merged answer as of the latest
  /// published shard epochs. Never waits for quiescence — safe to call from
  /// any thread while a Replay is in flight on the producer thread; served
  /// from the ingestor's incremental merge cache.
  Result<SketchSummary> Query(const std::string& sketch) const {
    return ingestor_->MergedSummary(sketch);
  }

  /// Merged global answer for one sketch. Same path as Query(); after
  /// Flush()/Finish() the answer covers the full replayed stream exactly.
  Result<SketchSummary> Summary(const std::string& sketch) const {
    return ingestor_->MergedSummary(sketch);
  }

  /// Merged answers for every configured sketch.
  Result<std::vector<SketchSummary>> Summaries() const;

  const ShardedIngestor& ingestor() const { return *ingestor_; }
  uint64_t updates_replayed() const { return ingestor_->updates_submitted(); }
  size_t batch_size() const { return options_.batch_size; }

 private:
  Driver(DriverOptions options, std::unique_ptr<ShardedIngestor> ingestor)
      : options_(std::move(options)), ingestor_(std::move(ingestor)) {}

  DriverOptions options_;
  std::unique_ptr<ShardedIngestor> ingestor_;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_DRIVER_H_
