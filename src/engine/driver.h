// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// engine::Driver — DEPRECATED thin shim over engine::Client, kept so
// seed-era callers (string-keyed queries, materialized-stream replay)
// keep compiling while they migrate. New code should use Client directly:
// handles instead of per-call name lookup, typed query results instead of
// SketchSummary, and ticketed multi-producer Submit instead of a blocking
// replay loop. See src/engine/README.md for the migration table.
//
// The shim adds nothing on the data path: Replay chops a materialized
// stream into Client::Submit batches (batch_size == 1 reproduces the
// legacy one-update-at-a-time path) and Query/Summary forward to the same
// merged-summary cache the typed queries read, so answers are bit-identical
// to both the old Driver and the new Client surface.

#ifndef WBS_ENGINE_DRIVER_H_
#define WBS_ENGINE_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/client.h"
#include "engine/sharded_ingestor.h"
#include "engine/sketch.h"
#include "stream/updates.h"

namespace wbs::engine {

struct DriverOptions {
  IngestorOptions ingest;
  size_t batch_size = 8192;  ///< submission granularity; 1 = unbatched
};

class Driver {
 public:
  static Result<std::unique_ptr<Driver>> Create(const DriverOptions& options);

  /// Replays a materialized stream through the client in batches.
  Status Replay(const stream::TurnstileStream& s);
  Status Replay(const stream::ItemStream& s);

  /// Waits for all in-flight work (keeps workers alive for more Replays).
  Status Flush() { return client_->Flush(); }

  /// Drains and joins; the driver stays queryable.
  Status Finish() { return client_->Finish(); }

  /// Non-blocking snapshot query by sketch name: the merged answer as of
  /// the latest published shard epochs, served from the incremental merge
  /// cache. Safe from any thread while a Replay is in flight. (Client
  /// callers resolve a handle once instead of paying this name lookup per
  /// call.)
  Result<SketchSummary> Query(const std::string& sketch) const {
    auto handle = client_->Handle(sketch);
    if (!handle.ok()) return handle.status();
    return client_->RawSummary(handle.value());
  }

  /// Deprecated alias of Query(), kept for seed-era call sites.
  Result<SketchSummary> Summary(const std::string& sketch) const {
    return Query(sketch);
  }

  /// Merged answers for every configured sketch.
  Result<std::vector<SketchSummary>> Summaries() const;

  /// The underlying typed surface — the migration path out of this shim.
  Client& client() { return *client_; }
  const Client& client() const { return *client_; }

  const ShardedIngestor& ingestor() const { return client_->ingestor(); }
  uint64_t updates_replayed() const { return client_->updates_submitted(); }
  size_t batch_size() const { return options_.batch_size; }

 private:
  Driver(DriverOptions options, std::unique_ptr<Client> client)
      : options_(std::move(options)), client_(std::move(client)) {}

  DriverOptions options_;
  std::unique_ptr<Client> client_;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_DRIVER_H_
