// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// engine::Client — the typed multi-producer facade over ShardedIngestor,
// and the engine's public API. It replaced the three seed-era pain points
// of the (since-deleted) Driver surface:
//
//   * string-keyed queries: a `SketchHandle` is resolved ONCE (name ->
//     sketch index + declared answer family) and then every query is an
//     index load — no per-call map hashing, no linear scan of summary
//     items (point lookups binary-search the summary's by-item index);
//   * the untyped `SketchSummary` grab-bag: per-family request/result
//     types (`PointEstimate`, `TopK`, `ScalarEstimate`, `RankVerdict`)
//     answer exactly what the sketch family can answer, and asking the
//     wrong family is an InvalidArgument instead of a silently empty
//     field;
//   * blocking single-producer ingest: `Submit` is safe from any number
//     of threads and returns a sequence-numbered `IngestTicket`
//     immediately; worker backpressure delays the ticket's completion
//     (observable via `Wait`/`TryWait`), never the submitting thread.
//
// The Client adds no state of its own on the data path — answers are
// bit-identical to the legacy Driver/SketchSummary surface over the same
// submissions (asserted in tests/engine_client_test.cc).
//
// Typical use:
//
//   auto client = Client::Create(opts).value();
//   SketchHandle f2 = client->Handle("ams_f2").value();
//   auto ticket = client->Submit(batch).value();     // returns immediately
//   ...                                              // more producers run
//   client->Wait(ticket);                            // prefix through ticket
//   double est = client->QueryScalar(f2).value().value;

#ifndef WBS_ENGINE_CLIENT_H_
#define WBS_ENGINE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/registry.h"
#include "engine/sharded_ingestor.h"
#include "engine/sketch.h"
#include "stream/updates.h"

namespace wbs::engine {

struct ClientOptions {
  IngestorOptions ingest;
};

/// A pre-resolved reference to one configured sketch: the sketch's index in
/// the engine's sketch group plus its declared answer family. Cheap value
/// type — copy freely, share across query threads. Handles are bound to the
/// Client that issued them; using one against another Client is an
/// InvalidArgument (the indices would silently alias a different sketch).
class SketchHandle {
 public:
  SketchHandle() = default;

  bool valid() const { return owner_ != nullptr; }
  size_t index() const { return index_; }
  SketchFamily family() const { return family_; }

 private:
  friend class Client;
  SketchHandle(const void* owner, size_t index, SketchFamily family)
      : owner_(owner), index_(index), family_(family) {}

  const void* owner_ = nullptr;
  size_t index_ = 0;
  SketchFamily family_ = SketchFamily::kGeneric;
};

/// Result of a point-frequency query against a heavy-hitter family sketch.
struct PointEstimate {
  uint64_t item = 0;
  double estimate = 0;   ///< 0 when the item is not a tracked candidate
  bool tracked = false;  ///< candidate list holds a nonzero estimate for item
  uint64_t updates = 0;  ///< effective updates the answer summarizes
  /// Degraded serve: at least one shard was unreachable and its last folded
  /// snapshot answered in its place (supervision on; see FailoverOptions).
  bool stale = false;
};

/// Result of a top-k query: the k highest-estimate candidates,
/// estimate-descending (ties broken by item id ascending).
struct TopK {
  std::vector<hh::WeightedItem> items;
  uint64_t updates = 0;
  bool stale = false;  ///< degraded serve (see PointEstimate::stale)
};

/// Result of a scalar-estimate query (F2 moment, L0 distinct count, ...).
struct ScalarEstimate {
  double value = 0;
  uint64_t updates = 0;
  bool stale = false;  ///< degraded serve (see PointEstimate::stale)
};

/// Result of a rank-decision query: whether the streamed matrix has rank at
/// least the configured threshold k.
struct RankVerdict {
  bool rank_at_least_k = false;
  uint64_t updates = 0;
  bool stale = false;  ///< degraded serve (see PointEstimate::stale)
};

class Client {
 public:
  static Result<std::unique_ptr<Client>> Create(const ClientOptions& options);

  /// Resolves a configured sketch name to a handle. Do this once at setup;
  /// every per-call string lookup the old surface did is paid here instead.
  Result<SketchHandle> Handle(const std::string& sketch) const;

  // ---- ingest (multi-producer, asynchronous) -----------------------------

  /// Opens a producer session: its own FIFO lane in the submission stage,
  /// drained round-robin against every other session by the router, so one
  /// hot producer cannot starve the rest. Producers that skip this share
  /// the default session (exactly the pre-session engine). Any thread.
  Result<ProducerSession> OpenSession() { return ingestor_->OpenSession(); }

  /// Submits a batch of turnstile updates from ANY thread and returns a
  /// sequence-numbered ticket immediately; backpressure delays the ticket,
  /// not this call. Completion is monotone in sequence order: once
  /// Wait/TryWait report a ticket done, every earlier ticket is done too.
  Result<IngestTicket> Submit(const stream::TurnstileUpdate* updates,
                              size_t count) {
    return ingestor_->SubmitAsync(updates, count);
  }
  Result<IngestTicket> Submit(const stream::TurnstileStream& s) {
    return ingestor_->SubmitAsync(s);
  }
  Result<IngestTicket> Submit(const ProducerSession& session,
                              const stream::TurnstileUpdate* updates,
                              size_t count) {
    return ingestor_->SubmitAsync(session, updates, count);
  }
  Result<IngestTicket> Submit(const ProducerSession& session,
                              const stream::TurnstileStream& s) {
    return ingestor_->SubmitAsync(session, s.data(), s.size());
  }

  /// Non-blocking Submit: where Submit would wait on the engine's inflight
  /// valves (IngestorOptions::max_inflight_tickets / max_inflight_bytes),
  /// TrySubmit returns ResourceExhausted immediately and the caller owns
  /// the retry policy — the fail-fast half of ticket-aware flow control.
  Result<IngestTicket> TrySubmit(const stream::TurnstileUpdate* updates,
                                 size_t count) {
    return ingestor_->TrySubmitAsync(updates, count);
  }
  Result<IngestTicket> TrySubmit(const stream::TurnstileStream& s) {
    return ingestor_->TrySubmitAsync(s);
  }
  Result<IngestTicket> TrySubmit(const ProducerSession& session,
                                 const stream::TurnstileUpdate* updates,
                                 size_t count) {
    return ingestor_->TrySubmitAsync(session, updates, count);
  }
  Result<IngestTicket> TrySubmit(const ProducerSession& session,
                                 const stream::TurnstileStream& s) {
    return ingestor_->TrySubmitAsync(session, s.data(), s.size());
  }

  /// Insertion-only convenience: each item becomes a delta-1 update.
  Result<IngestTicket> SubmitItems(const stream::ItemUpdate* items,
                                   size_t count) {
    return ingestor_->SubmitItemsAsync(items, count);
  }
  Result<IngestTicket> SubmitItems(const stream::ItemStream& s) {
    return ingestor_->SubmitItemsAsync(s);
  }

  /// Blocks until `ticket` (and every earlier ticket) is applied; returns
  /// the pipeline's first error, OK when healthy.
  Status Wait(const IngestTicket& ticket) const {
    return ingestor_->Wait(ticket);
  }

  /// Wait with a deadline: DeadlineExceeded if the ticket has not completed
  /// within `timeout_ms` (the ticket stays valid — callers may re-wait).
  Status WaitFor(const IngestTicket& ticket, uint64_t timeout_ms) const {
    return ingestor_->WaitFor(ticket, timeout_ms);
  }

  /// Non-blocking completion probe for `ticket`.
  Result<bool> TryWait(const IngestTicket& ticket) const {
    return ingestor_->TryWait(ticket);
  }

  /// Waits for all submitted work and publishes lagging snapshots, making
  /// subsequent queries exact for everything submitted before the call.
  Status Flush() { return ingestor_->Flush(); }

  /// Flush + stop and join the pipeline. The client stays queryable;
  /// further Submits fail. Idempotent.
  Status Finish() { return ingestor_->Finish(); }

  // ---- live topology (scale-out, handoff) --------------------------------
  //
  // Both operations are linearized at a batch boundary through the
  // router: batches submitted before the call land under the old table,
  // later ones under the new, and quiescence-free queries keep answering
  // throughout (from the old view until the new one is installed).

  /// Scale-out: adds `n` fresh shards (hosted by cells from `factory`;
  /// empty = in-process) and rebalances hash slots onto them. Existing
  /// shards keep their state and stay merge-visible, so answers remain a
  /// correct merge over all substreams ever ingested.
  Status AddShards(size_t n, BackendFactory factory = {}) {
    return ingestor_->AddShards(n, std::move(factory));
  }

  /// Live handoff: drains shard `shard`, serializes its published state
  /// (the engine wire format is the transfer format), imports it into a
  /// fresh cell built by `factory`, and re-points the shard id. Summaries
  /// immediately after the move are identical to immediately before; the
  /// four state-exact families continue bit-identically, the sampling
  /// heavy hitters continue as frozen-prefix + fresh-sampler mergeable
  /// summaries. On failure the topology is unchanged. Phase timings are
  /// recorded as trace spans ("move_shard" + children; see TraceSpans()).
  Status MoveShard(size_t shard, BackendFactory factory) {
    return ingestor_->MoveShard(shard, std::move(factory));
  }

  /// Slot-level migration: re-points the given hash slots (all owned by
  /// `source`) at shard `dest` without a whole-shard handoff. The source's
  /// frozen prefix stays merge-visible, so answers remain a merge over all
  /// substreams ever (bit-identical for the linear families). Fails
  /// Unavailable when `dest` is not healthy. Emits a "move_slots" span.
  Status MoveSlots(size_t source, std::vector<uint32_t> slots, size_t dest) {
    return ingestor_->MoveSlots(source, std::move(slots), dest);
  }

  /// Estimated per-slot update counts from scatter-path sampling; empty
  /// when IngestorOptions::slot_sample_shift is 0. Any thread.
  std::vector<uint64_t> SlotHeat() const { return ingestor_->SlotHeat(); }

  /// The autoscaling controller (nullptr unless autoscale.enabled). In
  /// manual mode (evaluation_interval_ms == 0) drive it with
  /// Autoscaler::EvaluateOnce().
  Autoscaler* autoscaler() const { return ingestor_->autoscaler(); }

  /// The current routing table, described (generation, shard count, slot
  /// ownership). Any thread.
  TopologyInfo Topology() const { return ingestor_->Topology(); }

  // ---- fault tolerance ----------------------------------------------------
  //
  // See FailoverOptions (sharded_ingestor.h) for the model: heartbeat
  // supervision, barrier checkpoints, and MoveShard-based recovery with
  // exact bounded-loss accounting.

  /// Checkpoints every reachable shard's full state at a batch barrier.
  Status Checkpoint() { return ingestor_->Checkpoint(); }

  /// Re-homes shard `shard` from its last checkpoint into a fresh cell.
  Status RecoverShard(size_t shard, BackendFactory factory = {}) {
    return ingestor_->RecoverShard(shard, std::move(factory));
  }

  /// Checkpoint + crash + recover `shard` at ONE barrier: a provably
  /// loss-free failure exercise. Unimplemented for in-process placements.
  Status FailoverDrill(size_t shard, bool torn = false,
                       BackendFactory factory = {}) {
    return ingestor_->FailoverDrill(shard, torn, std::move(factory));
  }

  /// Crashes shard `shard`'s placement NOW (no barrier — in-flight batches
  /// die mid-stream). Unimplemented for in-process placements.
  Status InjectShardCrash(size_t shard, bool torn = false) {
    return ingestor_->InjectShardCrash(shard, torn);
  }

  /// Severs shard `shard`'s live connections without killing the peer (a
  /// transient partition; the transport resyncs). Unimplemented for
  /// backends without real connections.
  Status InjectShardPartition(size_t shard) {
    return ingestor_->InjectShardPartition(shard);
  }

  /// The supervisor's current verdict and loss accounting for `shard`.
  ShardHealthInfo Health(size_t shard) const {
    return ingestor_->Health(shard);
  }

  // ---- typed queries (quiescence-free, any thread) -----------------------
  //
  // All queries answer as of the latest published shard epochs (exact after
  // Flush/Finish) and return InvalidArgument when the handle's sketch
  // family cannot answer the requested kind.

  /// Estimated frequency of one item (heavy-hitter families).
  Result<PointEstimate> QueryPoint(const SketchHandle& handle,
                                   uint64_t item) const;

  /// The k highest-estimate candidates (heavy-hitter families). k == 0 is
  /// InvalidArgument; k larger than the candidate list returns all of it.
  Result<TopK> QueryTopK(const SketchHandle& handle, size_t k) const;

  /// The scalar estimate (scalar families: ams_f2's F2, sis_l0's L0, ...).
  Result<ScalarEstimate> QueryScalar(const SketchHandle& handle) const;

  /// The rank decision (rank_decision family).
  Result<RankVerdict> QueryRank(const SketchHandle& handle) const;

  /// The legacy untyped answer, unchanged from the Driver surface — the
  /// escape hatch for generic tooling and the bit-identity reference the
  /// typed projections are tested against. Prefer the typed queries.
  Result<SketchSummary> RawSummary(const SketchHandle& handle) const;

  // ---- observability -----------------------------------------------------

  /// A point-in-time read of the engine's full metric surface: every
  /// engine.* instrument, derived health gauges (uptime, inflight
  /// tickets/bytes, valve waiters, topology generation, per-shard
  /// updates/sec), per-shard backend samples (epoch, snapshot lag, wire
  /// traffic), and merge-cache counters. Any thread, no quiescence needed.
  MetricsSnapshot Metrics() const { return ingestor_->Metrics(); }

  /// Renders Metrics() as a human-readable table (default) or JSONL.
  void DumpMetrics(std::ostream& os, MetricsDumpFormat format =
                                         MetricsDumpFormat::kTable) const {
    ingestor_->DumpMetrics(os, format);
  }

  /// The retained control-plane trace spans (AddShards / MoveShard phases),
  /// oldest first.
  std::vector<TraceSpan> TraceSpans() const { return ingestor_->TraceSpans(); }

  // ---- introspection ----------------------------------------------------

  const ShardedIngestor& ingestor() const { return *ingestor_; }
  uint64_t updates_submitted() const { return ingestor_->updates_submitted(); }
  const std::vector<std::string>& sketch_names() const {
    return ingestor_->sketch_names();
  }

 private:
  Client(std::unique_ptr<ShardedIngestor> ingestor,
         std::vector<SketchFamily> families)
      : ingestor_(std::move(ingestor)), families_(std::move(families)) {}

  /// Validates handle ownership and that `family` may answer `kind`-style
  /// queries, then hands back the sketch index.
  Result<size_t> CheckHandle(const SketchHandle& handle,
                             const char* query_kind,
                             bool allowed_for_family) const;

  // Configuration lives in ingestor_->options() (post-clamp and therefore
  // authoritative); the Client adds no state of its own on the data path.
  std::unique_ptr<ShardedIngestor> ingestor_;
  std::vector<SketchFamily> families_;  ///< per configured sketch index
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_CLIENT_H_
