// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// ShardTopology — the engine's epoch-versioned routing layer.
//
// Before this layer existed, ShardedIngestor baked `num_shards` into its
// scatter buffers, merge cache, and a single homogeneous ShardBackend: the
// shard count and placement were frozen at construction. The topology
// refactor makes routing an explicit, generation-stamped table
//
//   item --hash--> slot --slot_to_shard--> shard id --placement--> backend
//
// published as an immutable TopologyView that producers, the router, and
// the query path each read with one cheap shared_ptr copy. Mutations
// (scale-out, shard handoff) build a NEW view and install it at a batch
// barrier; readers holding the old view keep getting consistent answers,
// exactly like the per-shard snapshot epochs one level below.
//
// Slot routing, not modulo routing. The hash space is split into
// `num_slots = initial_shards * slots_per_shard` fixed slots; an item's
// slot never changes, only the slot's owner does. The initial table maps
// slot -> slot % initial_shards, which makes slot routing reproduce the
// legacy `hash % num_shards` partition bit-for-bit ((h mod k*S) mod S ==
// h mod S), so every pre-topology run replays identically.
//
// The two live operations:
//
//   * SCALE-OUT (AddShards): fresh shards join, and slots are stolen
//     evenly from the most-loaded owners. An item whose slot moved has its
//     substream split across the old and new owner — correct because the
//     engine's answers are a MERGE OVER ALL SHARDS EVER: linear sketches
//     (ams_f2, sis_l0, rank_decision) sum state and stay bit-identical to
//     any partitioning; Misra-Gries keeps the mergeable-summaries bound;
//     sampling heavy hitters union per-substream candidate lists (the
//     paper's mergeable-summary semantics — a shard's sketch keeps
//     answering for the substream it saw, forever).
//   * HANDOFF (MoveShard): a shard id is re-pointed at a different
//     backend cell. Its serialized snapshot state is the transfer format,
//     so the id keeps its derived shard seed and its entire history; the
//     old placement's state stays untouched for readers of older views.
//
// Generations are the cache key one level above snapshot epochs: the merge
// cache folds (generation, per-shard epochs), and any generation bump
// invalidates wholesale (shard count or placement changed under it).

#ifndef WBS_ENGINE_TOPOLOGY_H_
#define WBS_ENGINE_TOPOLOGY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace wbs::engine {

class ShardBackend;

/// Where one global shard id lives: a backend cell plus the shard's local
/// index inside it (monolithic backends host many; handoff/scale-out cells
/// host one). Views SHARE ownership of the cell: a retired placement (its
/// shard moved away, or its peer crashed and was re-homed) lives exactly as
/// long as the last TopologyView referencing it, then its destructor
/// reclaims the cell — including a loopback server's threads and fds. A
/// long-lived engine that reshards and recovers continuously therefore
/// holds a bounded set of cells, not one per change ever made.
struct ShardPlacement {
  std::shared_ptr<ShardBackend> backend;
  uint32_t local = 0;
  /// The backend's network endpoint for this shard ("host:port"), empty for
  /// shards with no network home (in-process, loopback socketpairs). This is
  /// the supervision layer's FAILURE DOMAIN key: when one shard on an
  /// endpoint misses a heartbeat, every healthy placement sharing that
  /// endpoint goes suspect together — a dead host takes all its shards, not
  /// one probe victim at a time.
  std::string endpoint;
};

/// An immutable routing table. Shared (never mutated) between every thread
/// that grabbed it; a topology change installs a new instance.
struct TopologyView {
  uint64_t generation = 0;  ///< bumped on every installed change
  /// Bumped only when slot_to_shard changes (scale-out). A handoff bumps
  /// `generation` but not this — producers' pre-scattered batches remain
  /// correctly partitioned, so the router skips the re-scatter.
  uint64_t routing_generation = 0;
  /// slot_to_shard[h % num_slots()] is the owning shard id.
  std::vector<uint32_t> slot_to_shard;
  /// Placement per global shard id; size() is the current shard count.
  std::vector<ShardPlacement> placements;
  /// owned_slots[shard] counts the slots that shard owns — maintained by
  /// every view constructor so SlotsOwnedBy is O(1), not an O(num_slots)
  /// scan (the autoscaler reads it every evaluation cycle).
  std::vector<uint32_t> owned_slots;

  size_t num_slots() const { return slot_to_shard.size(); }
  size_t num_shards() const { return placements.size(); }

  /// The slot an item hashes to. Same splitmix as the legacy ShardOf, so
  /// the initial table reproduces the legacy partition exactly.
  static size_t SlotOf(uint64_t item, size_t num_slots) {
    uint64_t s = item ^ 0x9e3779b97f4a7c15ULL;
    return size_t(SplitMix64(&s) % num_slots);
  }

  size_t ShardFor(uint64_t item) const {
    return slot_to_shard[SlotOf(item, slot_to_shard.size())];
  }

  /// Slots currently owned by `shard` (diagnostics, stealing, tests,
  /// autoscaler decisions). O(1): reads the maintained per-shard count.
  size_t SlotsOwnedBy(size_t shard) const {
    return shard < owned_slots.size() ? owned_slots[shard] : 0;
  }

  /// The slot ids owned by `shard`, ascending (slot-move planning).
  std::vector<uint32_t> OwnedSlotIds(size_t shard) const {
    std::vector<uint32_t> slots;
    if (shard < owned_slots.size()) slots.reserve(owned_slots[shard]);
    for (uint32_t slot = 0; slot < slot_to_shard.size(); ++slot) {
      if (slot_to_shard[slot] == shard) slots.push_back(slot);
    }
    return slots;
  }
};

/// A caller-facing description of the current table (tests, examples,
/// benches); cheap copies, no backend pointers.
struct TopologyInfo {
  uint64_t generation = 0;
  size_t num_shards = 0;
  size_t num_slots = 0;
  std::vector<size_t> slots_per_shard;  ///< indexed by shard id
};

/// The mutable holder: one swappable current view. All mutations go
/// through Install() at a barrier chosen by the owner (the ingestor's
/// router); readers call View() from any thread at any time — a mutex
/// held only for the shared_ptr copy. (Not std::atomic<shared_ptr>:
/// libstdc++'s _Sp_atomic::load releases its spinlock with a relaxed
/// RMW, which is a formal data race against a later store's plain
/// pointer write — TSan rightly flags it. View() runs once per
/// batch/query, so an uncontended lock is noise.)
class ShardTopology {
 public:
  /// The initial table: `num_shards` shards over `num_shards *
  /// slots_per_shard` slots, slot -> slot % num_shards (the legacy
  /// partition), all placed in `primary` with local == global id.
  static std::shared_ptr<const TopologyView> MakeInitial(
      size_t num_shards, size_t slots_per_shard,
      std::shared_ptr<ShardBackend> primary);

  /// A view with `added` new shards appended (placements supplied by the
  /// caller, one cell per new shard) and slots stolen evenly from the
  /// most-loaded owners so each new shard owns ~num_slots/num_shards.
  static std::shared_ptr<const TopologyView> WithAddedShards(
      const TopologyView& base, const std::vector<ShardPlacement>& added);

  /// A view with shard `shard` re-pointed at `target`. Slot table is
  /// unchanged — the id keeps its hash range and its derived seed.
  static Result<std::shared_ptr<const TopologyView>> WithMovedShard(
      const TopologyView& base, size_t shard, ShardPlacement target);

  /// A view with the given slots re-pointed from their current owner to
  /// shard `dest` — SLOT-LEVEL migration (a hot slot peeled off a hot
  /// shard without moving the whole shard). Every slot must currently
  /// belong to ONE source shard, which must differ from `dest`. Bumps
  /// both generations: the slot table changed, so pre-scattered batches
  /// must re-scatter. No sketch state moves — the source shard's state
  /// stays merge-visible, so answers remain a merge over all substreams
  /// ever (the same argument that makes AddShards slot stealing sound).
  static Result<std::shared_ptr<const TopologyView>> WithMovedSlots(
      const TopologyView& base, const std::vector<uint32_t>& slots,
      size_t dest);

  explicit ShardTopology(std::shared_ptr<const TopologyView> initial)
      : view_(std::move(initial)) {}

  /// The current table. A view obtained here is immutable and safe to
  /// route/fold against for as long as it is held.
  std::shared_ptr<const TopologyView> View() const {
    std::lock_guard<std::mutex> lock(mu_);
    return view_;
  }

  uint64_t generation() const { return View()->generation; }

  /// Installs a successor view. Caller is responsible for ordering (the
  /// ingestor installs only at router barriers).
  void Install(std::shared_ptr<const TopologyView> next) {
    // Drop the displaced view OUTSIDE the lock: releasing the last ref
    // can tear down backend cells (threads, fds), which must not run
    // under the routing mutex.
    std::shared_ptr<const TopologyView> old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old = std::exchange(view_, std::move(next));
    }
  }

  TopologyInfo Describe() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const TopologyView> view_;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_TOPOLOGY_H_
