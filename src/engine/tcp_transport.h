// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// TCP shard transport — the listener/dialer pair that turns the engine's
// wire protocol into a real multi-process system.
//
// Everything below shard_server.h's request dispatch is transport-agnostic
// by construction; what this header adds is the transport itself:
//
//   * `TcpShardHost` — a TCP listener (SO_REUSEADDR, TCP_NODELAY) serving
//     the ShardServer data/control protocol to any number of connections.
//     One host can serve MANY shards: each shard is a session keyed by a
//     client-chosen 64-bit token, created on the first kReqHello that
//     carries the shard's spec (sketch names + resolved config). This is
//     the core of the standalone `engine_shardd` daemon, and also runs
//     in-process to self-host the "tcp" backend for tests and CI.
//
//   * the `kReqHello` handshake — the first frame on every connection:
//
//       u32 magic, u8 protocol version, u8 channel (0 data / 1 control),
//       u64 session token, u64 global shard id, u64 last-acked epoch,
//       u8 has_spec [+ shard spec]
//
//     answered with Status + u64 current epoch + u64 last_applied_seq.
//     Wrong magic or version is rejected (and the connection closed); an
//     unknown token WITHOUT a spec is NotFound — a reconnecting client
//     never re-sends its spec, so a daemon that lost the session (restart)
//     is distinguished from a transient partition and surfaces as a dead
//     peer instead of silently serving an empty shard.
//
//   * exactly-once applies across reconnects — the data channel ships
//     updates as `kReqApplySeq` (u64 sequence + batch). The host records
//     the last applied sequence per session and answers a replayed
//     sequence from cache without re-applying, so a dialer that lost the
//     response to an applied batch resyncs on reconnect with zero double
//     counts and zero lost acked updates. The hello reply's
//     last_applied_seq tells the dialer which case it is in.
//
// The dialer half (`TcpRemoteBackend`, remote_backend.h) reconnects with
// bounded retry/backoff inside each call's deadline instead of poisoning
// the channel — only a peer that stays unreachable past the deadline
// surfaces Unavailable, which feeds the PR 7 supervision path unchanged.

#ifndef WBS_ENGINE_TCP_TRANSPORT_H_
#define WBS_ENGINE_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/backend.h"
#include "engine/wire.h"

namespace wbs::engine {

/// Handshake constants. The magic identifies the stream as a wbs shard
/// session before any state is touched; the protocol version covers the
/// HANDSHAKE layout (the frame format has its own wire::kFormatVersion).
inline constexpr uint32_t kTcpMagic = 0x57425354;  // "WBST"
inline constexpr uint8_t kTcpProtocolVersion = 1;

/// Everything a host needs to build a shard cell on first contact: the
/// sketch group and the shard's ALREADY-RESOLVED config (the dialer derives
/// the shard seed via ShardConfigFor, exactly like the loopback client).
struct TcpShardSpec {
  std::vector<std::string> sketches;
  SketchConfig config;
  uint64_t snapshot_min_updates = 1024;
};

void EncodeShardSpec(const TcpShardSpec& spec, wire::Writer* w);
Status DecodeShardSpec(wire::Reader* r, TcpShardSpec* out);

/// The kReqHello payload.
struct TcpHello {
  uint8_t channel = 0;  ///< 0 = data, 1 = control
  uint64_t session_token = 0;
  uint64_t shard_id = 0;         ///< global shard id (diagnostics)
  uint64_t last_acked_epoch = 0; ///< the dialer's last observed epoch
  bool has_spec = false;
  TcpShardSpec spec;  ///< valid only when has_spec
};

void EncodeHello(const TcpHello& hello, wire::Writer* w);
Status DecodeHello(wire::Reader* r, TcpHello* out);

/// The hello response payload after its leading Status (OK only).
struct TcpHelloReply {
  uint64_t epoch = 0;
  uint64_t last_applied_seq = 0;
};

/// Splits "host:port" (InvalidArgument on a missing/garbage port).
Status SplitEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port);

/// Dials host:port with a bounded nonblocking connect, then returns a
/// BLOCKING fd with TCP_NODELAY set. Unavailable when the peer refuses or
/// the timeout passes — the dialer's retry loop classifies from there.
Result<int> TcpConnectFd(const std::string& host, uint16_t port,
                         int timeout_ms);

struct TcpShardHostOptions {
  std::string bind_host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// Operator override (engine_shardd --shard-seed): forces the shard seed
  /// of every session this host creates, 0 = use each spec's seed. Breaks
  /// bit-identity with in-process by design; standalone experiments only.
  uint64_t shard_seed_override = 0;
};

/// The serving half. Start() binds + listens and spawns an accept thread;
/// each accepted connection is served by its own thread against the
/// sessions table. Crash modes mirror ShardServer's (armable at birth via
/// WBS_ENGINE_CRASH="after=N[,torn]") but additionally close the LISTENER,
/// so a crashed host refuses reconnects exactly like a dead process —
/// required for failover drills to re-home instead of resync.
class TcpShardHost {
 public:
  static Result<std::unique_ptr<TcpShardHost>> Start(
      const TcpShardHostOptions& options);

  ~TcpShardHost();

  TcpShardHost(const TcpShardHost&) = delete;
  TcpShardHost& operator=(const TcpShardHost&) = delete;

  uint16_t port() const { return port_; }
  /// "host:port" — what ShardBackend::Endpoint reports for placements here.
  std::string endpoint() const;

  /// Closes the listener and every connection, joins all threads. Sessions
  /// (and their sketch state) are destroyed. Idempotent.
  void Stop();

  /// Transient partition injection: severs every accepted connection but
  /// keeps the listener and ALL session state. Dialers reconnect and
  /// resync; nothing is lost and no re-home is needed.
  void DropConnections();

  /// Crash modes (see ShardServer): the request frame that crosses the
  /// threshold is read but never answered, every connection dies, and the
  /// listener closes so redials are refused. Session state is kept (it is
  /// unreachable — the point), Stop() still reclaims everything.
  void CrashAfter(int64_t n_frames, bool torn = false);
  void CrashNow(bool torn = false);
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Hosted session count (tests, daemon stats).
  size_t sessions() const;

 private:
  /// One hosted shard: a 1-shard in-process cell plus the apply-sequence
  /// cursor that makes reconnect resync exactly-once.
  struct Session {
    std::unique_ptr<ShardBackend> cell;
    size_t num_sketches = 0;
    std::mutex mu;  ///< serializes dispatch across this session's channels
    uint64_t last_applied_seq = 0;
    Status last_apply_status;  ///< answered again on a replayed sequence
  };

  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  TcpShardHost() = default;

  void AcceptLoop();
  void ServeConn(Conn* conn);
  /// Handles a kReqHello; resolves (creating if spec'd) the session.
  /// Returns the response payload; `session` is null on rejection.
  std::string HandleHello(std::string_view payload, Session** session,
                          bool* close_conn);
  /// Kills connections (and with `kill_listener` the listener); used by
  /// DropConnections / crash / Stop.
  void SeverConnections(bool kill_listener, int torn_fd);
  void ReapFinishedConns();

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::string bind_host_;
  std::thread accept_thread_;

  mutable std::mutex mu_;  // guards sessions_, conns_, stopped_
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::list<Conn> conns_;
  bool stopped_ = false;
  uint64_t shard_seed_override_ = 0;

  std::atomic<int64_t> crash_after_{-1};
  std::atomic<int64_t> frames_served_{0};
  std::atomic<bool> crash_torn_{false};
  std::atomic<bool> crashed_{false};
};

/// The engine_shardd entry point (examples/engine_shardd.cpp is a two-line
/// main around this): parses --port=N / --listen=host:port, starts a host,
/// prints "LISTENING <port>" on stdout (the line launchers block on), and
/// serves until SIGTERM/SIGINT. Returns a process exit code.
int ShardDaemonMain(int argc, char** argv);

}  // namespace wbs::engine

#endif  // WBS_ENGINE_TCP_TRANSPORT_H_
