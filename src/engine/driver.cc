// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/driver.h"

#include <algorithm>

namespace wbs::engine {

Result<std::unique_ptr<Driver>> Driver::Create(const DriverOptions& options) {
  if (options.batch_size == 0) {
    return Status::InvalidArgument("Driver: batch_size must be > 0");
  }
  ClientOptions client_opts;
  client_opts.ingest = options.ingest;
  auto client = Client::Create(client_opts);
  if (!client.ok()) return client.status();
  return std::unique_ptr<Driver>(
      new Driver(options, std::move(client).value()));
}

Status Driver::Replay(const stream::TurnstileStream& s) {
  const size_t batch = options_.batch_size;
  for (size_t off = 0; off < s.size(); off += batch) {
    const size_t n = std::min(batch, s.size() - off);
    auto ticket = client_->Submit(s.data() + off, n);
    if (!ticket.ok()) return ticket.status();
  }
  return Status::OK();
}

Status Driver::Replay(const stream::ItemStream& s) {
  const size_t batch = options_.batch_size;
  for (size_t off = 0; off < s.size(); off += batch) {
    const size_t n = std::min(batch, s.size() - off);
    auto ticket = client_->SubmitItems(s.data() + off, n);
    if (!ticket.ok()) return ticket.status();
  }
  return Status::OK();
}

Result<std::vector<SketchSummary>> Driver::Summaries() const {
  std::vector<SketchSummary> out;
  out.reserve(client_->sketch_names().size());
  for (const std::string& name : client_->sketch_names()) {
    auto summary = Query(name);
    if (!summary.ok()) return summary.status();
    out.push_back(std::move(summary).value());
  }
  return out;
}

}  // namespace wbs::engine
