// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/metrics.h"

#include <algorithm>
#include <ostream>

namespace wbs::engine {

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void AppendU64(uint64_t v, std::string* out) { *out += std::to_string(v); }

}  // namespace

uint64_t MetricSample::ApproxQuantile(double q) const {
  if (kind != MetricKind::kHistogram || count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // The snapshot's bucket counts may sum to slightly more than `count` if
  // increments raced the read; rank against the bucket total so the walk
  // always terminates inside the array.
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  const uint64_t rank = uint64_t(q * double(total - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::BucketUpperBound(i);
  }
  return Histogram::BucketUpperBound(buckets.size() - 1);
}

MetricSample CounterSample(std::string name, const Counter& c) {
  MetricSample s;
  s.name = std::move(name);
  s.kind = MetricKind::kCounter;
  s.value = c.Value();
  return s;
}

MetricSample GaugeSample(std::string name, int64_t value) {
  MetricSample s;
  s.name = std::move(name);
  s.kind = MetricKind::kGauge;
  s.value = uint64_t(value);
  return s;
}

MetricSample GaugeSample(std::string name, const Gauge& g) {
  return GaugeSample(std::move(name), g.Value());
}

MetricSample HistogramSample(std::string name, const Histogram& h) {
  MetricSample s;
  s.name = std::move(name);
  s.kind = MetricKind::kHistogram;
  s.count = h.Count();
  s.sum = h.Sum();
  s.buckets.resize(Histogram::kBuckets);
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    s.buckets[i] = h.BucketCount(i);
  }
  return s;
}

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::Value(const std::string& name,
                                uint64_t fallback) const {
  const MetricSample* s = Find(name);
  return s == nullptr ? fallback : s->value;
}

void AppendSampleJson(const MetricSample& sample, std::string* out) {
  *out += "{\"metric\":\"";
  *out += sample.name;  // names are engine-chosen dotted identifiers
  *out += "\",\"type\":\"";
  *out += KindName(sample.kind);
  *out += "\"";
  switch (sample.kind) {
    case MetricKind::kCounter:
      *out += ",\"value\":";
      AppendU64(sample.value, out);
      break;
    case MetricKind::kGauge:
      *out += ",\"value\":";
      *out += std::to_string(sample.gauge_value());
      break;
    case MetricKind::kHistogram: {
      *out += ",\"count\":";
      AppendU64(sample.count, out);
      *out += ",\"sum\":";
      AppendU64(sample.sum, out);
      *out += ",\"p50\":";
      AppendU64(sample.ApproxQuantile(0.50), out);
      *out += ",\"p99\":";
      AppendU64(sample.ApproxQuantile(0.99), out);
      *out += ",\"buckets\":[";
      // Trailing empty buckets are elided (the decoder treats a short
      // array as zero-padded), which keeps idle histograms to a few bytes.
      size_t last = sample.buckets.size();
      while (last > 0 && sample.buckets[last - 1] == 0) --last;
      for (size_t i = 0; i < last; ++i) {
        if (i > 0) *out += ",";
        AppendU64(sample.buckets[i], out);
      }
      *out += "]";
      break;
    }
  }
  *out += "}";
}

void MetricsSnapshot::WriteJsonl(std::ostream& os) const {
  std::string line;
  {
    MetricSample uptime;
    uptime.name = "engine.uptime_us";
    uptime.kind = MetricKind::kGauge;
    uptime.value = uptime_us;
    // Guard against a caller that already put uptime in samples.
    if (Find(uptime.name) == nullptr) {
      AppendSampleJson(uptime, &line);
      os << line << "\n";
    }
  }
  for (const MetricSample& s : samples) {
    line.clear();
    AppendSampleJson(s, &line);
    os << line << "\n";
  }
}

void MetricsSnapshot::WriteTable(std::ostream& os) const {
  size_t width = 24;
  for (const MetricSample& s : samples) {
    width = std::max(width, s.name.size() + 2);
  }
  for (const MetricSample& s : samples) {
    os << s.name;
    for (size_t pad = s.name.size(); pad < width; ++pad) os << ' ';
    switch (s.kind) {
      case MetricKind::kCounter:
        os << s.value;
        break;
      case MetricKind::kGauge:
        os << s.gauge_value();
        break;
      case MetricKind::kHistogram:
        os << "count=" << s.count << " sum=" << s.sum
           << " avg=" << (s.count == 0 ? 0 : s.sum / s.count)
           << " p50<=" << s.ApproxQuantile(0.50)
           << " p99<=" << s.ApproxQuantile(0.99);
        break;
    }
    os << "\n";
  }
}

Counter* MetricsRegistry::NewCounter(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.emplace_back();  // instruments hold atomics: construct in place
  Named<Counter>& n = counters_.back();
  n.name = std::move(name);
  order_.push_back(Slot{MetricKind::kCounter, &n.instrument, &n.name});
  return &n.instrument;
}

Gauge* MetricsRegistry::NewGauge(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.emplace_back();
  Named<Gauge>& n = gauges_.back();
  n.name = std::move(name);
  order_.push_back(Slot{MetricKind::kGauge, &n.instrument, &n.name});
  return &n.instrument;
}

Histogram* MetricsRegistry::NewHistogram(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.emplace_back();
  Named<Histogram>& n = histograms_.back();
  n.name = std::move(name);
  order_.push_back(Slot{MetricKind::kHistogram, &n.instrument, &n.name});
  return &n.instrument;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(order_.size());
  for (const Slot& slot : order_) {
    switch (slot.kind) {
      case MetricKind::kCounter:
        out.push_back(CounterSample(
            *slot.name, *static_cast<const Counter*>(slot.instrument)));
        break;
      case MetricKind::kGauge:
        out.push_back(GaugeSample(
            *slot.name, *static_cast<const Gauge*>(slot.instrument)));
        break;
      case MetricKind::kHistogram:
        out.push_back(HistogramSample(
            *slot.name, *static_cast<const Histogram*>(slot.instrument)));
        break;
    }
  }
  return out;
}

EngineMetrics::EngineMetrics() {
  router_.dispatches_total =
      registry_.NewCounter("engine.router.dispatches_total");
  router_.rescatters_total =
      registry_.NewCounter("engine.router.rescatters_total");
  router_.parked_rounds_total =
      registry_.NewCounter("engine.router.parked_rounds_total");
  router_.barriers_total = registry_.NewCounter("engine.router.barriers_total");
  router_.barrier_us = registry_.NewHistogram("engine.router.barrier_us");
}

ShardIngestMetrics* EngineMetrics::shard(size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  while (shards_.size() <= id) {
    const std::string p = "engine.shard." + std::to_string(shards_.size());
    ShardIngestMetrics m;
    m.updates_total = registry_.NewCounter(p + ".updates_total");
    m.batches_total = registry_.NewCounter(p + ".batches_total");
    m.apply_us = registry_.NewHistogram(p + ".apply_us");
    m.batch_size = registry_.NewHistogram(p + ".batch_size");
    shards_.push_back(m);
  }
  return &shards_[id];
}

SessionMetrics* EngineMetrics::session(size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  while (sessions_.size() <= id) {
    const std::string p = "engine.session." + std::to_string(sessions_.size());
    SessionMetrics m;
    m.submits_total = registry_.NewCounter(p + ".submits_total");
    m.try_rejections_total =
        registry_.NewCounter(p + ".try_rejections_total");
    m.valve_waits_total = registry_.NewCounter(p + ".valve_waits_total");
    m.valve_wait_us = registry_.NewHistogram(p + ".valve_wait_us");
    m.tickets_outstanding = registry_.NewGauge(p + ".tickets_outstanding");
    sessions_.push_back(m);
  }
  return &sessions_[id];
}

WorkerMetrics* EngineMetrics::worker(size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() <= id) {
    const std::string p = "engine.worker." + std::to_string(workers_.size());
    WorkerMetrics m;
    m.queue_depth = registry_.NewGauge(p + ".queue_depth");
    workers_.push_back(m);
  }
  return &workers_[id];
}

size_t EngineMetrics::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

}  // namespace wbs::engine
