// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The engine's serialization wire format — the byte-level contract a shard
// backend speaks when shard state crosses a process boundary.
//
// Primitives are little-endian and fixed-width (u8/u32/u64; i64 as two's
// complement; f64 as the IEEE-754 bit pattern), written by `Writer` and read
// back by the bounds-checked `Reader` — a truncated or overlong buffer is a
// Status error, never a crash or a silent partial read.
//
// Everything that crosses a boundary travels inside a *frame*:
//
//   [u32 body_len][u8 format_version][u8 type][payload...][u32 crc32(body)]
//
// where body = version byte + type byte + payload. DecodeFrame rejects a
// wrong format-version byte (version negotiation: a peer speaking a newer
// format is an InvalidArgument, not garbage reads), a length that disagrees
// with the buffer, and any checksum mismatch (a single corrupted byte
// anywhere in the body fails the CRC). The same frame layout is used for
// update batches, serialized sketch states, query answers, and the
// request/response messages of the loopback shard server.
//
// Compound codecs for the engine's value types (TurnstileUpdate batches,
// SketchSummary, Status) live here too, so every backend and the tests
// share one encoding.

#ifndef WBS_ENGINE_WIRE_H_
#define WBS_ENGINE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "stream/updates.h"

namespace wbs::engine {

struct SketchSummary;  // sketch.h
struct MetricSample;   // metrics.h

namespace wire {

/// The wire format version this build speaks. Bump on any layout change;
/// DecodeFrame rejects frames from a different version.
inline constexpr uint8_t kFormatVersion = 1;

/// Frame types. 1..31 are sketch/engine payloads; 32..63 are shard-server
/// requests; 64+ are shard-server responses.
enum FrameType : uint8_t {
  kSketchState = 1,   ///< one sketch's serialized state
  kUpdateBatch = 2,   ///< a batch of turnstile updates
  kSummary = 3,       ///< a serialized SketchSummary

  kReqApply = 32,     ///< apply an update batch to the shard
  kReqFlush = 33,     ///< publish the shard's snapshot if it lags
  kReqEpoch = 34,     ///< read the shard's snapshot epoch
  kReqSnapshot = 35,  ///< fetch (epoch, serialized state) of one sketch
  kReqSummary = 36,   ///< live summary of one sketch (quiescent callers)
  kReqSpaceBits = 37, ///< total state bits of the shard
  kReqShutdown = 38,  ///< close the connection
  kReqImport = 39,    ///< shard handoff: install serialized sketch states
  kReqMetrics = 40,   ///< read the shard's metric samples (observability)
  kReqHeartbeat = 41, ///< liveness probe: responds OK + current epoch
  kReqHello = 42,     ///< TCP session handshake (tcp_transport.h layout)
  kReqApplySeq = 43,  ///< kReqApply prefixed with a u64 apply sequence number

  kResp = 64,         ///< response: Status followed by request-specific data
};

/// Appends fixed-width little-endian primitives into a growable buffer.
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(char(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern: doubles round-trip bit-identically.
  void F64(double v);
  void Bytes(const void* data, size_t len);
  /// Length-prefixed (u32) byte string.
  void Str(std::string_view s);

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked reads over a non-owned buffer. Every getter fails with
/// InvalidArgument("wire: truncated buffer") instead of reading past the
/// end, so corrupted length fields cannot cause out-of-bounds access.
class Reader {
 public:
  explicit Reader(std::string_view buf) : buf_(buf) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  /// Reads a u32 length prefix, then that many bytes (view into the buffer).
  Status Str(std::string_view* s);
  Status Str(std::string* s);

  size_t remaining() const { return buf_.size() - pos_; }
  /// InvalidArgument unless the buffer is fully consumed — catches payloads
  /// with trailing garbage (e.g. a truncated length field).
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  std::string_view buf_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) of `len` bytes.
uint32_t Crc32(const void* data, size_t len);

/// Wraps `payload` in a checksummed frame of the given type.
std::string EncodeFrame(uint8_t type, std::string_view payload);

/// Validates length, format version, and checksum; hands back the type and
/// a view of the payload (into `frame`). Corruption anywhere in the body is
/// an InvalidArgument mentioning "checksum"; a foreign format-version byte
/// is an InvalidArgument mentioning "version".
Status DecodeFrame(std::string_view frame, uint8_t* type,
                   std::string_view* payload);

// ---- compound codecs -------------------------------------------------------

/// Turnstile update batch: u64 count, then (u64 item, i64 delta) pairs.
void EncodeUpdates(const stream::TurnstileUpdate* data, size_t count,
                   Writer* w);
Status DecodeUpdates(Reader* r, std::vector<stream::TurnstileUpdate>* out);

/// SketchSummary, bit-exact (scalar and estimates as f64 bit patterns).
void EncodeSummary(const SketchSummary& s, Writer* w);
Status DecodeSummary(Reader* r, SketchSummary* out);

/// Status: u8 code + message. Decoding an unknown code is an error.
void EncodeStatus(const Status& s, Writer* w);
Status DecodeStatus(Reader* r, Status* out);

/// Metric samples (metrics.h), the payload of a kReqMetrics response: u32
/// count, then per sample name, kind, and the kind's value fields
/// (histograms ship count/sum plus length-prefixed bucket counts).
void EncodeMetricSamples(const std::vector<MetricSample>& samples, Writer* w);
Status DecodeMetricSamples(Reader* r, std::vector<MetricSample>* out);

// ---- framed I/O over a file descriptor ------------------------------------

/// Writes one frame (EncodeFrame layout) to `fd`, handling short writes,
/// EINTR, and EAGAIN/EWOULDBLOCK (nonblocking fds poll for writability, so
/// the call behaves like a blocking write either way). Internal on failure
/// (peer gone).
Status WriteFrameFd(int fd, uint8_t type, std::string_view payload);

/// Reads one frame from `fd` into `frame_buf` (resized), then decodes it.
/// Short reads, EINTR, and EAGAIN/EWOULDBLOCK are handled (nonblocking fds
/// poll for readability between chunks — a TCP segment boundary mid-frame
/// is invisible to the caller). A cleanly closed peer (EOF before any byte)
/// returns FailedPrecondition with "closed" in the message so servers can
/// exit their loop quietly.
Status ReadFrameFd(int fd, std::string* frame_buf, uint8_t* type,
                   std::string_view* payload);

/// ReadFrameFd with a deadline over the WHOLE frame: the fd is polled
/// before every chunk with the remaining budget, so a half-open peer that
/// sends a partial frame and stalls is caught by this call's deadline, not
/// left to wedge the caller. Returns DeadlineExceeded("wire: read timed
/// out") — the liveness signal heartbeat probes key off.
Status ReadFrameFdTimeout(int fd, int timeout_ms, std::string* frame_buf,
                          uint8_t* type, std::string_view* payload);

}  // namespace wire
}  // namespace wbs::engine

#endif  // WBS_ENGINE_WIRE_H_
