// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// ShardedIngestor: the engine's parallel ingestion core.
//
// The universe is hash-partitioned across shards by the engine's ROUTING
// LAYER (topology.h): item -> hash slot -> shard id -> backend placement,
// published as an immutable, generation-stamped TopologyView. Each shard
// owns one instance of every configured sketch. Submitted update batches
// are scattered by slot into per-shard sub-batches and applied either
// inline (num_threads == 0) or by worker threads, each of which owns a
// fixed subset of shards (shard s -> worker s % num_threads) and drains a
// FIFO queue — so every shard sees its sub-stream in dispatch order no
// matter how many workers run.
//
// WHERE the shards live is behind the pluggable ShardBackend interface
// (backend.h): InProcessBackend keeps them in this process (zero-copy
// apply), LoopbackRemoteBackend (remote_backend.h) runs each shard behind
// a socket speaking the engine wire format, and CompositeBackendFactory
// mixes placements shard-by-shard. On top of that, the topology supports
// two LIVE operations, both linearized at batch boundaries through the
// router:
//
//   * AddShards(n): scale-out. Fresh shards (their own backend cells) join
//     and hash slots are stolen evenly from existing owners. Old shards
//     stay merge-visible forever, so answers remain a correct merge over
//     every substream ever ingested (bit-identical for the linear
//     families, mergeable-summary bounds for the rest).
//   * MoveShard(id, factory): live handoff. The router drains the shard's
//     in-flight batches, serializes its published state (the wire format
//     of PR 4 is the transfer format), imports it into a cell built by
//     `factory` (kReqImport over the wire for remote cells), and
//     re-points the shard id — same slots, same derived shard seed, full
//     history. Queries racing the handoff keep answering from the old
//     placement until the new view is installed.
//
// Submission is multi-producer and asynchronous: SubmitAsync scatters on
// the calling thread, then hands the pre-scattered batch to a per-session
// MPSC submission queue under a short mutex and returns a sequence-
// numbered IngestTicket immediately. A router thread drains the session
// queues ROUND-ROBIN (fairness across producer sessions — a hot producer
// cannot monopolize dispatch) and forwards sub-batches to the per-shard
// worker queues — worker backpressure therefore blocks the *router* (and
// ticket completion), never the producer's thread. Producers that do not
// open a session share session 0, whose queue drains FIFO exactly like the
// pre-session engine. The inflight valves (max_inflight_tickets /
// max_inflight_bytes) admit blocked producers in ARRIVAL ORDER (a FIFO
// turnstile), so a hot producer re-submitting in a loop cannot starve a
// parked one past the global valves. Wait(ticket)/TryWait(ticket) observe
// a monotone completion watermark: a ticket reports done only once every
// ticket with a smaller sequence number has also been fully applied.
//
// Determinism: slot assignment depends only on the item (and the initial
// table reproduces the legacy hash-mod-shards partition bit-for-bit),
// per-shard randomness only on (config seed, shard id), and per-shard
// apply order only on dispatch order. With one producer session, dispatch
// order is submission order, which reproduces the legacy single-producer
// path exactly; topology operations issued from that producer land at
// deterministic batch boundaries. With multiple sessions the round-robin
// interleaving is deterministic given queue contents but arrival timing is
// not; order-insensitive sketches (the linear families) still produce
// bit-identical final state for every interleaving of the same batches.
//
// Snapshots and queries are unchanged from the pre-topology engine except
// for the cache key: MergedSummary folds the published per-shard snapshots
// of the CURRENT topology view, and the per-sketch merge cache is keyed by
// (topology generation, per-shard epochs) — a topology change invalidates
// wholesale, a plain shard write refolds only the dirty shards.

#ifndef WBS_ENGINE_SHARDED_INGESTOR_H_
#define WBS_ENGINE_SHARDED_INGESTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/autoscaler.h"
#include "engine/backend.h"
#include "engine/metrics.h"
#include "engine/sketch.h"
#include "engine/topology.h"
#include "engine/trace.h"
#include "stream/updates.h"

namespace wbs::engine {

/// Failure-handling knobs: heartbeat supervision, periodic checkpoints, and
/// automatic MoveShard-based recovery. Supervision is OFF by default
/// (heartbeat_interval_ms == 0), which preserves the legacy contract: any
/// shard failure poisons the pipeline as the first error. With supervision
/// on, a placement failure (Unavailable) degrades instead: its batches are
/// dropped with explicit loss accounting, queries serve the last folded
/// state with a staleness flag, and the supervisor re-homes the shard from
/// its last checkpoint through the MoveShard machinery.
struct FailoverOptions {
  /// Supervisor probe period. 0 disables the supervisor thread entirely.
  uint64_t heartbeat_interval_ms = 0;
  /// Deadline for one heartbeat probe (time to the response's first byte).
  uint64_t heartbeat_timeout_ms = 50;
  /// Consecutive missed heartbeats before kSuspect becomes kDead.
  size_t dead_after_misses = 3;
  /// Exponential backoff cap between probes of a suspect shard: the probe
  /// interval stretches to interval * min(2^misses, this).
  uint64_t backoff_max_multiplier = 8;
  /// Periodic checkpoint period (supervisor-driven, runs at a router
  /// barrier, so each checkpoint is an exact cut of the acked stream).
  /// 0 = only explicit Checkpoint() calls (and FailoverDrill's).
  uint64_t checkpoint_interval_ms = 0;
  /// Re-home a dead shard automatically from its last checkpoint. When
  /// false the shard stays kDead (degraded) until RecoverShard is called.
  bool auto_recover = true;
  /// Cell factory for recovered shards; empty = in-process.
  BackendFactory recovery_backend;
};

struct IngestorOptions {
  size_t num_shards = 4;
  size_t num_threads = 0;  ///< 0: apply inline on the submitting thread
  size_t max_queue_batches = 64;  ///< per-worker router->worker bound
  /// Soft cap on tickets submitted but not yet fully applied. SubmitAsync
  /// blocks once this many tickets are in flight — a memory safety valve
  /// far above the worker-queue backpressure point, not the steady-state
  /// flow control (that is the router absorbing worker backpressure while
  /// producers run ahead). 0 = unbounded.
  size_t max_inflight_tickets = 256;
  /// Total-bytes valve on the same queue: SubmitAsync blocks (and
  /// TrySubmitAsync fails fast with ResourceExhausted) while the update
  /// bytes of in-flight tickets would exceed this. A batch larger than the
  /// whole valve is still admitted when nothing is in flight, so a single
  /// oversized submission cannot deadlock. Blocked producers are admitted
  /// in arrival order. 0 = unbounded.
  size_t max_inflight_bytes = 0;
  /// Snapshot throttle: a shard republishes its snapshot at the first batch
  /// boundary after this many updates (0 = every batch). Keeps the
  /// unbatched (batch_size == 1) path from cloning per update; Flush()
  /// always catches lagging shards up, so quiescent queries are exact.
  size_t snapshot_min_updates = 1024;
  /// Routing granularity: the topology has num_shards * slots_per_shard
  /// hash slots, so one AddShards step can rebalance in 1/slots_per_shard
  /// fractions of a shard's range. The initial slot table reproduces the
  /// legacy hash-mod-shards partition exactly for any value.
  size_t slots_per_shard = 16;
  std::vector<std::string> sketches;  ///< registry names to instantiate
  SketchConfig config;
  /// Where the initial shards live. Empty = InProcessBackendFactory() (the
  /// process-local zero-copy backend). See backend.h for the contract,
  /// remote_backend.h for the loopback wire-format backend, and
  /// CompositeBackendFactory for mixed placement.
  BackendFactory backend;
  /// Observability: when true (the default) the engine registers and
  /// maintains the engine.* instruments (metrics.h) — relaxed atomic
  /// increments on the hot path, no locks. False skips every
  /// instrumentation site (and its clock reads) via a predicted branch;
  /// Metrics() then reports only derived and backend-sourced samples. The
  /// `engine_metrics_overhead` bench row guards the instrumented cost.
  bool metrics_enabled = true;
  /// Completed control-plane trace spans retained (trace.h ring buffer).
  size_t trace_capacity = 256;
  /// Failure handling: supervision off by default (see FailoverOptions).
  FailoverOptions failover;
  /// Per-slot heat sampling in the scatter path: 0 (default) = off; N >= 1
  /// counts every 2^N-th scattered update against its hash slot (relaxed
  /// atomic, thread-local stride), making slot-level hotness visible to
  /// SlotHeat() and the autoscaler's MoveSlots decisions. Sampled, so the
  /// hot-path cost is one predicted branch per update plus one hash +
  /// fetch_add per 2^N updates — within the metrics ≤2% overhead contract.
  /// Single-shard fast paths skip sampling (nothing to rebalance).
  size_t slot_sample_shift = 0;
  /// Autoscaling control plane: off by default (see AutoscaleOptions).
  /// When enabled, the engine starts an Autoscaler with these targets in
  /// Init and stops it in Finish. Requires metrics_enabled.
  AutoscaleOptions autoscale;
  /// NUMA placement: when true (default) and the machine has more than one
  /// NUMA node, worker threads are pinned round-robin across nodes inside
  /// the thread body — before any sketch state is allocated — so the
  /// first-touch policy lands each worker's arena on its own node (see
  /// common/numa.h). No-op on single-node machines and in inline mode.
  bool numa_pin_workers = true;
};

/// A sequence-numbered receipt for one asynchronous submission. Tickets are
/// totally ordered by `seq`; completion is monotone in that order (see
/// Wait/TryWait). Value type: copy freely, pass to any thread. A
/// default-constructed ticket (seq 0) is always complete — SubmitAsync
/// returns it for empty batches and for inline-mode (num_threads == 0)
/// submissions, which are fully applied before SubmitAsync returns.
struct IngestTicket {
  uint64_t seq = 0;
};

/// A producer session: its own FIFO lane in the submission stage, drained
/// round-robin against every other session by the router. Open one per
/// logical producer when fairness between producers matters; producers
/// that skip it share the default session 0 (exactly the pre-session
/// engine). Value type holding a plain lane id: ids are only meaningful to
/// the engine that issued them (an id unknown to an engine is
/// InvalidArgument; one that happens to exist routes into that engine's
/// lane of the same number).
struct ProducerSession {
  uint64_t id = 0;
};

/// Liveness verdict the supervisor maintains per shard. Healthy shards
/// answer heartbeats; a missed deadline makes a shard suspect; after
/// FailoverOptions::dead_after_misses consecutive misses it is dead and
/// (with auto_recover) re-homed from its last checkpoint.
enum class ShardHealth : uint8_t { kHealthy = 0, kSuspect = 1, kDead = 2 };

/// Point-in-time health and loss accounting for one shard (Health()).
struct ShardHealthInfo {
  ShardHealth health = ShardHealth::kHealthy;
  uint64_t missed_heartbeats = 0;  ///< consecutive misses (resets on success)
  /// Updates acked to producers but not yet covered by a checkpoint — the
  /// exposure window: exactly these are lost if the shard dies right now.
  uint64_t updates_acked_unsnapshotted = 0;
  /// Updates dropped while the shard was unreachable (degraded mode);
  /// folded into updates_lost_total at the next recovery.
  uint64_t dropped_updates = 0;
  uint64_t recoveries = 0;         ///< times this shard id was re-homed
  uint64_t updates_lost_total = 0; ///< cumulative bounded loss across them
};

class ShardedIngestor {
 public:
  static Result<std::unique_ptr<ShardedIngestor>> Create(
      const IngestorOptions& options);

  ~ShardedIngestor();

  ShardedIngestor(const ShardedIngestor&) = delete;
  ShardedIngestor& operator=(const ShardedIngestor&) = delete;

  /// Opens a new producer session (its own round-robin lane). Any thread.
  Result<ProducerSession> OpenSession();

  /// Scatters `count` updates into per-shard sub-batches and enqueues them
  /// on `session`'s lane, returning a ticket that completes once the batch
  /// (and every earlier ticket) has been applied. Multi-producer: safe to
  /// call concurrently from any number of threads (sharing a session is
  /// fine; they interleave FIFO within it). Never blocks on worker
  /// backpressure (the router absorbs it); only the inflight valves can
  /// make it wait, and those admit waiters in arrival order.
  Result<IngestTicket> SubmitAsync(const ProducerSession& session,
                                   const stream::TurnstileUpdate* updates,
                                   size_t count);
  Result<IngestTicket> SubmitAsync(const stream::TurnstileUpdate* updates,
                                   size_t count) {
    return SubmitAsync(ProducerSession{}, updates, count);
  }
  Result<IngestTicket> SubmitAsync(const stream::TurnstileStream& s) {
    return SubmitAsync(s.data(), s.size());
  }

  /// Insertion-only convenience: each item becomes a delta-1 update.
  Result<IngestTicket> SubmitItemsAsync(const ProducerSession& session,
                                        const stream::ItemUpdate* items,
                                        size_t count);
  Result<IngestTicket> SubmitItemsAsync(const stream::ItemUpdate* items,
                                        size_t count) {
    return SubmitItemsAsync(ProducerSession{}, items, count);
  }
  Result<IngestTicket> SubmitItemsAsync(const stream::ItemStream& s) {
    return SubmitItemsAsync(s.data(), s.size());
  }

  /// Non-blocking variant: where SubmitAsync would wait on the
  /// max_inflight_tickets / max_inflight_bytes valves (or behind earlier
  /// valve waiters), TrySubmitAsync returns ResourceExhausted immediately
  /// (the batch is NOT enqueued; the producer owns the retry policy).
  /// Identical to SubmitAsync otherwise.
  Result<IngestTicket> TrySubmitAsync(const ProducerSession& session,
                                      const stream::TurnstileUpdate* updates,
                                      size_t count);
  Result<IngestTicket> TrySubmitAsync(const stream::TurnstileUpdate* updates,
                                      size_t count) {
    return TrySubmitAsync(ProducerSession{}, updates, count);
  }
  Result<IngestTicket> TrySubmitAsync(const stream::TurnstileStream& s) {
    return TrySubmitAsync(s.data(), s.size());
  }

  /// Fire-and-forget wrappers (the pre-ticket surface): submit and discard
  /// the ticket. Errors already recorded by the pipeline surface here.
  Status Submit(const stream::TurnstileUpdate* updates, size_t count) {
    return SubmitAsync(updates, count).status();
  }
  Status Submit(const stream::TurnstileStream& s) {
    return Submit(s.data(), s.size());
  }
  Status SubmitItems(const stream::ItemUpdate* items, size_t count) {
    return SubmitItemsAsync(items, count).status();
  }
  Status SubmitItems(const stream::ItemStream& s) {
    return SubmitItems(s.data(), s.size());
  }

  // ---- live topology operations -----------------------------------------

  /// Scale-out: adds `n` fresh shards, each hosted by a cell built from
  /// `factory` (empty = in-process), and rebalances hash slots onto them.
  /// Linearized at a batch barrier through the router: every batch
  /// submitted before this call completes is applied under the old table,
  /// every later one under the new. Existing shards keep their state and
  /// stay merge-visible, so answers remain a correct merge over all
  /// substreams ever. Blocks until the new table is installed.
  Status AddShards(size_t n, BackendFactory factory = {});

  /// Live handoff: drains shard `shard`'s in-flight batches, serializes
  /// its published state, imports it into a fresh cell built by `factory`,
  /// and re-points the shard id at the new cell. The shard keeps its hash
  /// slots, derived seed, and full history; summaries immediately after
  /// the move are identical to immediately before. Blocks until installed;
  /// on failure the topology is unchanged. Phase timings are recorded as
  /// trace spans ("move_shard" and its flush/serialize/import children —
  /// see TraceSpans()). Custom sketches without a wire format fail with
  /// Unimplemented (and the topology stays as it was).
  Status MoveShard(size_t shard, BackendFactory factory);

  /// SLOT-LEVEL migration: re-points the given hash slots (all currently
  /// owned by `source`) at shard `dest` — a hot slot peeled off a hot
  /// shard without a whole-shard handoff. Linearized at a batch barrier;
  /// the source's snapshot is published (flushed) first, so its frozen
  /// prefix stays merge-visible and answers remain a merge over all
  /// substreams ever — bit-identical for the linear families, exactly the
  /// AddShards slot-stealing argument. No sketch state crosses cells: the
  /// destination accumulates the slots' suffix substreams. Fails
  /// Unavailable when `dest` is dead (a migration must never target a
  /// shard that cannot serve), InvalidArgument/OutOfRange on a bad slot
  /// set; on failure the topology is unchanged. Emits a "move_slots" span
  /// with a "move_slots.flush" child.
  Status MoveSlots(size_t source, std::vector<uint32_t> slots, size_t dest);

  /// Estimated per-slot update counts from scatter-path sampling (counts
  /// scaled by 2^slot_sample_shift). Empty when sampling is off
  /// (slot_sample_shift == 0). Approximate by design: sampling strides are
  /// thread-local. Any thread.
  std::vector<uint64_t> SlotHeat() const;

  /// The autoscaling controller, or nullptr when autoscale.enabled was
  /// false. Tests drive it manually via Autoscaler::EvaluateOnce().
  Autoscaler* autoscaler() const { return autoscaler_.get(); }

  /// The current routing table, described (generation, shard count, slot
  /// ownership). Any thread.
  TopologyInfo Topology() const { return topology_->Describe(); }

  uint64_t topology_generation() const { return topology_->generation(); }

  // ---- fault tolerance ---------------------------------------------------
  //
  // See FailoverOptions for the model. Checkpoints and recoveries are
  // barrier operations through the router (like AddShards/MoveShard), so
  // each is an exact cut of the acked update stream — loss accounting is
  // exact, not estimated.

  /// Snapshots every reachable shard's full sketch state (serialized wire
  /// frames) at a router barrier. A shard's next recovery restores this
  /// cut; updates acked after it are the bounded loss. An unreachable
  /// shard keeps its previous checkpoint (skipped, not an error).
  Status Checkpoint();

  /// Re-homes shard `shard` into a fresh cell built by `factory` (empty =
  /// failover.recovery_backend, then in-process), restoring its last
  /// checkpoint (empty state if none was ever taken). Runs at a router
  /// barrier; installs a new topology view (generation bump), resets the
  /// shard to kHealthy, and folds the exposure window into
  /// updates_lost_total. This is the manual/rescue path — with
  /// auto_recover the supervisor calls it for dead shards.
  Status RecoverShard(size_t shard, BackendFactory factory = {});

  /// One atomic failure exercise at a single barrier: checkpoint `shard`,
  /// crash its placement (optionally leaving a torn frame on the data
  /// channel so the CRC path rejects it), then recover from the checkpoint
  /// just taken — provably zero update loss, even with producers racing.
  /// Unimplemented when the placement cannot crash (in-process cells).
  Status FailoverDrill(size_t shard, bool torn = false,
                       BackendFactory factory = {});

  /// Crashes shard `shard`'s current placement NOW, from any thread, with
  /// no barrier — the realistic failure: in-flight batches die mid-stream.
  /// Unimplemented for in-process placements.
  Status InjectShardCrash(size_t shard, bool torn = false);

  /// Severs shard `shard`'s live connections WITHOUT killing the peer — a
  /// transient partition. A reconnecting transport (TCP) resyncs with no
  /// state loss and no topology change; Unimplemented elsewhere.
  Status InjectShardPartition(size_t shard);

  /// The supervisor's current verdict and loss accounting for `shard`.
  /// Any thread; meaningful (non-default) once supervision or checkpoints
  /// have touched the shard.
  ShardHealthInfo Health(size_t shard) const;

  // ---- completion, flush, queries ---------------------------------------

  /// Blocks until `ticket` and every earlier ticket has been applied, then
  /// returns the pipeline's first error (OK when healthy). Any thread.
  Status Wait(const IngestTicket& ticket) const;

  /// Wait with a deadline: DeadlineExceeded if the ticket has not completed
  /// within `timeout_ms` (the ticket remains valid — callers may re-wait).
  Status WaitFor(const IngestTicket& ticket, uint64_t timeout_ms) const;

  /// Non-blocking completion probe: true once `ticket` (and every earlier
  /// ticket) is applied. Reports the pipeline's first error once the ticket
  /// has drained, so a producer polling TryWait sees failures too.
  Result<bool> TryWait(const IngestTicket& ticket) const;

  /// Blocks until every submitted ticket has been applied, then publishes
  /// any shard whose snapshot lags its live state. Call from a moment when
  /// producers are paused (a continuously racing producer keeps the
  /// in-flight count nonzero and Flush waiting).
  Status Flush();

  /// Flush + stop and join the router and workers. The ingestor stays
  /// queryable; further Submits fail. Idempotent.
  Status Finish();

  /// Merges the published per-shard snapshots of `sketch` into one global
  /// summary, as of the latest published epochs of the current topology.
  /// Quiescence-free: safe to call from any thread while workers ingest
  /// (after Flush()/Finish() the answer is exact for the full stream).
  /// Served from the per-sketch merge cache (hit/incremental/rebuild
  /// counters surface as `engine.sketch.<name>.merge_cache.*` in
  /// Metrics()). With supervision on, an unreachable shard does not fail
  /// the query: its last folded snapshot keeps answering and the returned
  /// summary carries `stale = true` until the shard recovers.
  Result<SketchSummary> MergedSummary(const std::string& sketch) const;

  /// Zero-copy, index-addressed variant for pre-resolved handles: folds (if
  /// needed) and returns a pointer to the cached summary of the sketch at
  /// `sketch_index` (position in options().sketches). The pointer is valid
  /// only while *lock — handed back holding the per-sketch cache mutex —
  /// stays held; drop the lock as soon as the answer is projected.
  Result<const SketchSummary*> MergedSummaryView(
      size_t sketch_index, std::unique_lock<std::mutex>* lock) const;

  // ---- observability -----------------------------------------------------

  /// A point-in-time read of the engine's full metric surface: every
  /// registered engine.* instrument, the derived health gauges (uptime,
  /// inflight tickets/bytes, valve waiters, topology generation, per-shard
  /// updates/sec), per-shard backend samples (epoch, snapshot lag, wire
  /// traffic — prefixed `engine.shard.<id>.`), and the per-sketch merge
  /// cache counters. Safe from any thread, concurrently with ingest and
  /// topology changes — no quiescence required (counters are relaxed
  /// atomics; remote shards report through their control channel).
  MetricsSnapshot Metrics() const;

  /// Renders Metrics() as a human-readable table or JSONL (one JSON object
  /// per metric line).
  void DumpMetrics(std::ostream& os,
                   MetricsDumpFormat format = MetricsDumpFormat::kTable) const;

  /// The retained control-plane trace spans, oldest first: AddShards /
  /// MoveShard operations and their phases (trace.h). Any thread.
  std::vector<TraceSpan> TraceSpans() const { return tracer_->Snapshot(); }

  /// Number of snapshot publications shard `shard`'s CURRENT placement has
  /// performed (restarts when a handoff re-homes the shard).
  uint64_t ShardEpoch(size_t shard) const;

  /// A single shard's live summary (tests and diagnostics), read from its
  /// current placement. Still requires quiescence: it reads worker-owned
  /// state directly.
  Result<SketchSummary> ShardSummary(size_t shard,
                                     const std::string& sketch) const;

  /// Total state bits across the backends hosting the current topology
  /// (quiescent callers). A monolithic backend retains — and counts — the
  /// state of shards that were moved out of it; that state stays
  /// merge-visible to readers of older topology views.
  uint64_t SpaceBits() const;

  /// Index of `sketch` in options().sketches, or sketches.size() if absent.
  size_t SketchIndex(const std::string& sketch) const;

  const std::vector<std::string>& sketch_names() const {
    return options_.sketches;
  }
  uint64_t updates_submitted() const {
    return updates_submitted_.load(std::memory_order_acquire);
  }
  /// CURRENT shard count (grows with AddShards); options().num_shards is
  /// the initial count.
  size_t num_shards() const;
  size_t num_threads() const { return options_.num_threads; }
  const IngestorOptions& options() const { return options_; }

  /// The primary shard backend (hosting the initial shards).
  const ShardBackend& backend() const { return *backend_; }

  /// The legacy fixed partition: hash % num_shards. The initial topology
  /// reproduces it exactly; after AddShards the live table (slot routing)
  /// is authoritative.
  static size_t ShardOf(uint64_t item, size_t num_shards) {
    uint64_t s = item ^ 0x9e3779b97f4a7c15ULL;
    return size_t(SplitMix64(&s) % num_shards);
  }

 private:
  /// The controller samples load (metrics_, valve turnstile state, worker
  /// count) and records spans (tracer_) without widening the public
  /// surface; it acts only through the public topology operations.
  friend class Autoscaler;

  /// Completion state shared between one ticket's scattered sub-batches.
  struct TicketState {
    uint64_t seq = 0;
    uint64_t bytes = 0;  ///< update bytes charged to the inflight valve
    std::atomic<size_t> remaining{0};  ///< sub-batches not yet applied
    /// Issuing session's instruments (null when metrics are disabled or
    /// for barrier tickets): tickets_outstanding drops on completion.
    SessionMetrics* session_metrics = nullptr;
  };

  /// A topology operation riding the submission queue as a barrier ticket.
  struct ControlState {
    std::function<Status()> op;
    Status result;  ///< written by the router before the ticket completes
  };

  /// One pre-scattered submission (or control barrier) parked in a session
  /// queue.
  struct PendingTicket {
    std::shared_ptr<TicketState> state;
    std::vector<std::vector<stream::TurnstileUpdate>> sub;  // per shard
    /// Slot-table (routing) generation the scatter used; a mismatch at
    /// dispatch means slots moved (scale-out) and the batch re-scatters.
    /// Handoffs bump only the placement generation, not this.
    uint64_t routing_generation = 0;
    std::shared_ptr<ControlState> control;  ///< set for barrier tickets
  };

  struct ShardHealthState;  // fwd (private, defined below)

  /// One sub-batch in a worker's queue, placement resolved at dispatch.
  /// Holds shared ownership of the backend cell: a topology view retired
  /// while the job sits queued cannot reclaim the cell under the worker.
  struct Job {
    std::shared_ptr<ShardBackend> backend;
    uint32_t local = 0;
    std::vector<stream::TurnstileUpdate> updates;
    std::shared_ptr<TicketState> ticket;
    /// GLOBAL shard id's ingest instruments (null = metrics disabled),
    /// resolved by the router so the worker's apply loop never locks.
    ShardIngestMetrics* metrics = nullptr;
    /// GLOBAL shard id's health/loss accounting (null = supervision off,
    /// the legacy poison-on-error contract), resolved like `metrics`.
    ShardHealthState* health = nullptr;
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv_work;     // router -> worker: work available
    std::condition_variable cv_space;    // worker -> router: queue has room
    std::condition_variable cv_drained;  // worker -> waiter: pending == 0
    std::deque<Job> queue;
    size_t pending = 0;  // queued + in-flight batches
    bool stop = false;
    WorkerMetrics* metrics = nullptr;  // null = metrics disabled
    std::thread thread;
  };

  /// One producer session's FIFO lane. Guarded by submit_mu_.
  struct Session {
    std::deque<PendingTicket> queue;
    SessionMetrics* metrics = nullptr;  // null = metrics disabled
  };

  // Per-sketch merge cache. `merged` is the fold of `folded` (one snapshot
  // per shard of generation `generation`, null = shard never published);
  // `epochs` records which shard epochs are incorporated. A generation
  // bump (topology change) invalidates wholesale. All fields live under
  // `mu`.
  struct MergeCache {
    std::mutex mu;
    uint64_t generation = 0;
    std::unique_ptr<Sketch> merged;
    std::vector<std::shared_ptr<const Sketch>> folded;
    std::vector<uint64_t> epochs;
    SketchSummary summary;
    bool valid = false;
    bool try_unmerge = true;  // sticky false after the first Unimplemented
    /// Serving counters, exported as engine.sketch.<name>.merge_cache.*.
    uint64_t hits = 0;         // no shard epoch advanced: cached summary
    uint64_t incremental = 0;  // only dirty shards re-folded (UnmergeFrom)
    uint64_t rebuilds = 0;     // full fold across all shards
  };

  /// Per-shard health/loss accounting (indexed by GLOBAL shard id). Lives
  /// in a deque so pointers handed to jobs stay stable as shards grow.
  /// Atomics: workers, the supervisor, queries, and Metrics() all touch it
  /// without the health map lock.
  struct ShardHealthState {
    std::atomic<uint8_t> health{0};  // ShardHealth
    std::atomic<uint64_t> missed{0};
    /// Updates applied+acked since the last recovery baseline. Together
    /// with applied_at_checkpoint this is the exposure window.
    std::atomic<uint64_t> applied{0};
    std::atomic<uint64_t> applied_at_checkpoint{0};
    std::atomic<uint64_t> dropped{0};  // degraded-mode drops since recovery
    std::atomic<uint64_t> recoveries{0};
    std::atomic<uint64_t> lost_total{0};
    std::atomic<uint64_t> metrics_errors{0};  // failed backend Metrics() polls
    /// Supervisor-thread-only backoff state (no atomics needed).
    uint64_t backoff_misses = 0;
    std::chrono::steady_clock::time_point next_probe{};
  };

  /// One shard's checkpoint: the serialized wire frames of its full sketch
  /// group plus the acked-update count the cut covers. Guarded by ckpt_mu_.
  struct ShardCheckpoint {
    bool valid = false;
    std::vector<std::string> frames;
    uint64_t applied = 0;
  };

  explicit ShardedIngestor(IngestorOptions options);

  Status Init();
  void RouterLoop();
  void WorkerLoop(Worker* worker);
  /// Waits until every worker queue is empty and nothing is in flight.
  void DrainWorkers();
  /// Re-scatters a parked ticket whose scatter predates the current table.
  static void ReScatter(PendingTicket* ticket, const TopologyView& view);
  /// Checks producer-side preconditions shared by the Submit variants.
  Status PreSubmit() const;
  /// Inline mode: applies the sub-batches staged in scatter_ synchronously
  /// against `view`. Caller holds submit_mu_. Returns the always-complete
  /// seq-0 ticket.
  Result<IngestTicket> ApplyInline(const TopologyView& view, size_t count);
  /// Shared body of SubmitAsync/TrySubmitAsync.
  Result<IngestTicket> SubmitScattered(const ProducerSession& session,
                                       const stream::TurnstileUpdate* updates,
                                       size_t count, bool blocking);
  /// Threaded mode: assigns a sequence number to `sub` and parks it on
  /// `session`'s lane for the router. When `blocking` is false, a full
  /// inflight valve (or a queue of earlier valve waiters) is
  /// ResourceExhausted instead of a wait.
  Result<IngestTicket> EnqueueScattered(
      const ProducerSession& session,
      std::vector<std::vector<stream::TurnstileUpdate>> sub, size_t count,
      bool blocking, uint64_t routing_generation);
  /// Runs `op` with all earlier tickets applied and workers drained —
  /// inline under submit_mu_ when there is no router, as a control ticket
  /// through it otherwise. Returns the op's status.
  Status RunAtBarrier(std::function<Status()> op);
  /// The barrier bodies (called with workers drained).
  Status DoAddShards(size_t n, const BackendFactory& factory);
  Status DoMoveShard(size_t shard, const BackendFactory& factory);
  Status DoMoveSlots(size_t source, const std::vector<uint32_t>& slots,
                     size_t dest);
  Status DoCheckpoint();
  /// Checkpoints one shard against `view` (caller is at a barrier).
  Status DoCheckpointShard(size_t shard, const TopologyView& view);
  /// `expected` (when non-null) pins the recovery to the placement whose
  /// death was observed: if the shard has since been re-homed (concurrent
  /// drill / manual rescue), the verdict is stale and the recovery is a
  /// benign no-op instead of a rollback to an older checkpoint.
  Status DoRecoverShard(size_t shard, const BackendFactory& factory,
                        const ShardBackend* expected = nullptr);
  /// Supervisor thread: heartbeat probes with timeout+backoff, suspect/dead
  /// transitions, auto-recovery, and periodic checkpoints.
  void SupervisorLoop();
  void StopSupervisor();
  bool supervision_enabled() const {
    return options_.failover.heartbeat_interval_ms > 0;
  }
  /// The health slot for GLOBAL shard id `shard` (grown on demand; the
  /// returned reference is stable for the ingestor's lifetime).
  ShardHealthState& HealthFor(size_t shard) const;
  /// Builds the 1-shard cell options for global shard id `shard`.
  BackendOptions CellOptions(size_t shard) const;
  /// Marks the ticket applied, releases its valve bytes, and advances the
  /// monotone completion watermark.
  void CompleteTicket(const TicketState& state);
  void RecordError(const Status& s);
  Status FirstError() const;
  Status CheckQuiescent() const;

  /// Refreshes the shard-id -> bundle pointer cache `cache` to cover
  /// `num_shards` entries (no-op when metrics are disabled).
  void RefreshShardMetricsCache(std::vector<ShardIngestMetrics*>* cache,
                                size_t num_shards);
  /// Instruments one applied sub-batch (no-op when `m` is null).
  static void RecordApply(ShardIngestMetrics* m, size_t count,
                          uint64_t elapsed_us);

  /// Scatter-path slot-heat sampling site: counts every 2^slot_sample_shift
  /// -th update (per calling thread) against its hash slot. One predicted
  /// branch per update when sampling is off. Takes the slot directly — the
  /// 8-wide scatter kernel already computed it, so the sampled stride no
  /// longer pays a second hash; the cost stays inside the metrics ≤2%
  /// contract.
  void SampleSlotHeat(size_t slot) {
    if (slot_heat_ == nullptr) return;
    thread_local uint64_t stride = 0;
    if (((++stride) & slot_sample_mask_) != 0) return;
    slot_heat_[slot].fetch_add(1, std::memory_order_relaxed);
  }

  /// Hash+bucket scatter of `count` turnstile updates into (*out)[shard]
  /// through the 8-wide SIMD hash kernel: items are hashed 8 per kernel
  /// call and bucketed by mask when num_slots is a power of two (modulo
  /// otherwise). Identical partition to the per-item ShardFor loop
  /// (Debug-asserted per update). `out` must already have
  /// view.num_shards() cleared sub-vectors; feeds SampleSlotHeat with the
  /// computed slot.
  void ScatterUpdates(const TopologyView& view,
                      const stream::TurnstileUpdate* updates, size_t count,
                      std::vector<std::vector<stream::TurnstileUpdate>>* out);
  /// ScatterUpdates for item streams: each item becomes a delta-1
  /// turnstile update directly in its shard's sub-batch (fused conversion,
  /// no intermediate copy).
  void ScatterItems(const TopologyView& view, const stream::ItemUpdate* items,
                    size_t count,
                    std::vector<std::vector<stream::TurnstileUpdate>>* out);

  IngestorOptions options_;
  /// Observability. metrics_ is null when options_.metrics_enabled is
  /// false — every instrumentation site is behind a null check, so the
  /// disabled engine pays one predicted branch per site and skips the
  /// clock reads. The tracer always exists (control-plane rate only).
  std::unique_ptr<EngineMetrics> metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::chrono::steady_clock::time_point start_time_;
  /// Primary backend (hosting the initial shards). Shared with every
  /// topology view's placements; cells created by topology operations are
  /// owned ONLY by the views referencing them (see ShardPlacement), so a
  /// retired cell is reclaimed when the last view drops — not kept forever.
  std::shared_ptr<ShardBackend> backend_;
  std::unique_ptr<ShardTopology> topology_;
  /// Slot-heat sample counters, one per hash slot — null when sampling is
  /// off. num_slots is FIXED for the engine's lifetime (topology ops only
  /// reassign owners), so a flat atomic array needs no resizing or locks.
  std::unique_ptr<std::atomic<uint64_t>[]> slot_heat_;
  size_t slot_heat_slots_ = 0;
  uint64_t slot_sample_mask_ = 0;  ///< (1 << slot_sample_shift) - 1
  /// The autoscaling controller (autoscale.enabled only). Reads load via
  /// friendship (metrics_/tracer_/valve state) and acts through the public
  /// topology ops; started after the supervisor in Init, stopped first in
  /// Finish.
  std::unique_ptr<Autoscaler> autoscaler_;
  mutable std::vector<std::unique_ptr<MergeCache>> caches_;  // per sketch
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Inline-mode scatter scratch, reused across submissions under
  /// submit_mu_ (threaded submissions scatter into per-call buffers that
  /// move through the session queues instead).
  std::vector<std::vector<stream::TurnstileUpdate>> scatter_;
  /// Inline-mode shard-metrics pointer cache (under submit_mu_); the
  /// router thread keeps its own local equivalent.
  std::vector<ShardIngestMetrics*> inline_shard_metrics_;
  std::atomic<uint64_t> updates_submitted_{0};
  std::atomic<bool> finished_{false};

  // MPSC submission stage: producers append to their session's lane under
  // submit_mu_ (which also serializes sequence assignment); the router
  // drains the lanes round-robin, FIFO within each lane, honoring control
  // barriers (no ticket with a later sequence number is dispatched before
  // a control ticket completes, and none with an earlier one after). In
  // inline mode submit_mu_ additionally serializes the apply itself.
  std::mutex submit_mu_;
  std::condition_variable router_cv_;  // producer -> router: work available
  std::vector<std::unique_ptr<Session>> sessions_;
  /// Mirrors sessions_.size() (sessions are never removed) so the hot
  /// submit path can pre-validate a session id without taking submit_mu_.
  std::atomic<size_t> session_count_{0};
  size_t queued_total_ = 0;  // tickets parked across all sessions
  size_t rr_cursor_ = 0;     // next session the router looks at
  /// Sequence numbers of queued control barriers, ascending. The router's
  /// barrier rule fences on the FRONT of this queue, so a barrier parked
  /// behind earlier data in its own lane still blocks every later-seq
  /// ticket in every other lane.
  std::deque<uint64_t> control_seqs_;
  uint64_t next_seq_ = 0;    // last assigned sequence number
  bool router_stop_ = false;
  std::thread router_;

  // Ticket completion: tickets finish physically out of order (their
  // sub-batches land on different workers), so finished seqs park in a
  // min-heap until the watermark reaches them — completed_seq_ advances
  // only in sequence order, giving Wait/TryWait their prefix semantics.
  // valve_next_/valve_serving_ are the FIFO turnstile for valve admission.
  mutable std::mutex ticket_mu_;
  mutable std::condition_variable ticket_cv_;
  uint64_t completed_seq_ = 0;  // all tickets <= this are applied
  uint64_t inflight_tickets_ = 0;
  uint64_t inflight_bytes_ = 0;  // update bytes of physically pending tickets
  uint64_t valve_next_ = 0;      // turnstile numbers handed to blockers
  uint64_t valve_serving_ = 0;   // turnstile number allowed to admit
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>>
      done_out_of_order_;

  std::atomic<bool> has_error_{false};
  mutable std::mutex error_mu_;
  Status first_error_;

  // Fault tolerance. health_ is a deque for pointer stability (jobs and
  // the supervisor hold raw pointers into it); health_mu_ guards only its
  // GROWTH — the states themselves are atomics. checkpoints_ holds the
  // last serialized cut per shard. The supervisor thread exists only when
  // supervision or periodic checkpoints are configured.
  mutable std::mutex health_mu_;
  mutable std::deque<ShardHealthState> health_;
  std::mutex ckpt_mu_;
  std::vector<ShardCheckpoint> checkpoints_;
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  bool supervisor_stop_ = false;
  std::thread supervisor_;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_SHARDED_INGESTOR_H_
