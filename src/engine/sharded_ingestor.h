// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// ShardedIngestor: the engine's parallel ingestion core.
//
// The universe [0, n) is hash-partitioned across `num_shards` shards; each
// shard owns one instance of every configured sketch. Submitted update
// batches are scattered by item hash into per-shard sub-batches and applied
// either inline (num_threads == 0) or by worker threads, each of which owns
// a fixed subset of shards (shard s -> worker s % num_threads) and drains a
// FIFO queue — so every shard sees its sub-stream in submission order no
// matter how many workers run.
//
// Determinism: shard assignment depends only on the item, per-shard
// randomness only on (config seed, shard index), and per-shard apply order
// only on submission order. A run with a fixed seed and fixed num_shards is
// therefore bit-for-bit reproducible for ANY num_threads — the property the
// white-box game semantics need to survive the move to parallel plumbing.
//
// Snapshots: at batch boundaries (throttled by snapshot_min_updates) the
// owning worker clones each shard-local sketch into an epoch-versioned
// snapshot slot — the clone is a fresh registry instance merged from the
// live one, so no new per-sketch API is needed. Flush() publishes any
// lagging shard, making the published state exact at quiescence.
//
// Queries: MergedSummary(name) folds the published per-shard snapshots into
// a per-sketch cached merge target WITHOUT requiring quiescence — it can
// run from any thread while workers ingest, answering as of the latest
// published epochs (each shard contributes a batch-boundary prefix of its
// substream; any such epoch vector is a valid frontier of the global stream
// because shards partition the universe). The cache tracks per-shard
// epochs: an unchanged engine is answered from the cached summary, and
// linear sketches re-fold only the shards whose epoch advanced
// (UnmergeFrom stale + MergeFrom fresh), turning the per-query cost from
// O(shards * state) into O(dirty * state).

#ifndef WBS_ENGINE_SHARDED_INGESTOR_H_
#define WBS_ENGINE_SHARDED_INGESTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/sketch.h"
#include "stream/updates.h"

namespace wbs::engine {

struct IngestorOptions {
  size_t num_shards = 4;
  size_t num_threads = 0;  ///< 0: apply inline on the submitting thread
  size_t max_queue_batches = 64;  ///< per-worker backpressure bound
  /// Snapshot throttle: a shard republishes its snapshot at the first batch
  /// boundary after this many updates (0 = every batch). Keeps the
  /// unbatched (batch_size == 1) path from cloning per update; Flush()
  /// always catches lagging shards up, so quiescent queries are exact.
  size_t snapshot_min_updates = 1024;
  std::vector<std::string> sketches;  ///< registry names to instantiate
  SketchConfig config;
};

/// How the merge cache served MergedSummary calls for one sketch.
struct MergeCacheStats {
  uint64_t hits = 0;         ///< no shard epoch advanced: cached summary
  uint64_t incremental = 0;  ///< only dirty shards re-folded (UnmergeFrom)
  uint64_t rebuilds = 0;     ///< full fold across all shards
};

class ShardedIngestor {
 public:
  static Result<std::unique_ptr<ShardedIngestor>> Create(
      const IngestorOptions& options);

  ~ShardedIngestor();

  ShardedIngestor(const ShardedIngestor&) = delete;
  ShardedIngestor& operator=(const ShardedIngestor&) = delete;

  /// Scatters `count` updates into per-shard sub-batches and dispatches
  /// them. Single-producer: Submit/Flush/Finish must come from one thread.
  Status Submit(const stream::TurnstileUpdate* updates, size_t count);
  Status Submit(const stream::TurnstileStream& s) {
    return Submit(s.data(), s.size());
  }

  /// Insertion-only convenience: each item becomes a delta-1 update.
  Status SubmitItems(const stream::ItemUpdate* items, size_t count);
  Status SubmitItems(const stream::ItemStream& s) {
    return SubmitItems(s.data(), s.size());
  }

  /// Blocks until every dispatched batch has been applied, then publishes
  /// any shard whose snapshot lags its live state.
  Status Flush();

  /// Flush + stop and join the workers. The ingestor stays queryable;
  /// further Submits fail. Idempotent.
  Status Finish();

  /// Merges the published per-shard snapshots of `sketch` into one global
  /// summary, as of the latest published epochs. Quiescence-free: safe to
  /// call from any thread while workers ingest (after Flush()/Finish() the
  /// answer is exact for the full stream). Served from the per-sketch merge
  /// cache; see MergeCacheStats.
  Result<SketchSummary> MergedSummary(const std::string& sketch) const;

  /// Cache counters for `sketch` (tests, diagnostics).
  Result<MergeCacheStats> CacheStats(const std::string& sketch) const;

  /// Number of snapshot publications shard `shard` has performed.
  uint64_t ShardEpoch(size_t shard) const;

  /// A single shard's live summary (tests and diagnostics). Still requires
  /// quiescence: it reads worker-owned state directly.
  Result<SketchSummary> ShardSummary(size_t shard,
                                     const std::string& sketch) const;

  /// Total state bits across all shards and sketches (quiescent callers).
  uint64_t SpaceBits() const;

  const std::vector<std::string>& sketch_names() const {
    return options_.sketches;
  }
  uint64_t updates_submitted() const { return updates_submitted_; }
  size_t num_shards() const { return options_.num_shards; }
  size_t num_threads() const { return options_.num_threads; }
  const IngestorOptions& options() const { return options_; }

  /// The shard an item routes to: a fixed splitmix hash of the item, so the
  /// partition is stable across runs, thread counts and processes.
  static size_t ShardOf(uint64_t item, size_t num_shards) {
    uint64_t s = item ^ 0x9e3779b97f4a7c15ULL;
    return size_t(SplitMix64(&s) % num_shards);
  }

 private:
  struct Shard {
    std::vector<std::unique_ptr<Sketch>> sketches;
    SketchConfig cfg;  ///< per-shard config (shard_seed resolved)
    // Aggregation scratch, computed once per shard batch and shared with
    // every weight-equivalent sketch via UpdateBatch. Touched only by the
    // shard's owning worker (or the producer in inline mode).
    std::vector<stream::TurnstileUpdate> agg;
    std::unordered_map<uint64_t, size_t> agg_index;

    // Snapshot slot. `snaps` are clones published at batch boundaries;
    // `epoch` counts publications and is bumped (release) inside snap_mu,
    // so (snaps, epoch) always read as a consistent pair under the mutex
    // while lock-free epoch loads give cheap dirty checks.
    uint64_t updates_since_publish = 0;  // owner-thread only
    mutable std::mutex snap_mu;
    std::vector<std::shared_ptr<const Sketch>> snaps;  // per sketch index
    Status snap_error;  // first failed publish, under snap_mu
    std::atomic<uint64_t> epoch{0};
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv_work;     // producer -> worker: work available
    std::condition_variable cv_space;    // worker -> producer: queue has room
    std::condition_variable cv_drained;  // worker -> producer: pending == 0
    std::deque<std::pair<size_t, std::vector<stream::TurnstileUpdate>>> queue;
    size_t pending = 0;  // queued + in-flight batches
    bool stop = false;
    std::thread thread;
  };

  // Per-sketch merge cache. `merged` is the fold of `folded` (one snapshot
  // per shard, null = shard never published); `epochs` records which shard
  // epochs are incorporated. All fields live under `mu`.
  struct MergeCache {
    std::mutex mu;
    std::unique_ptr<Sketch> merged;
    std::vector<std::shared_ptr<const Sketch>> folded;
    std::vector<uint64_t> epochs;
    SketchSummary summary;
    bool valid = false;
    bool try_unmerge = true;  // sticky false after the first Unimplemented
    MergeCacheStats stats;
  };

  explicit ShardedIngestor(IngestorOptions options);

  Status Init();
  void WorkerLoop(Worker* worker);
  Status ApplyToShard(size_t shard_index, const stream::TurnstileUpdate* data,
                      size_t count);
  /// Clones every sketch of the shard into its snapshot slot and bumps the
  /// epoch. Called by the shard's owner; failures are stashed in the slot
  /// (they poison snapshot queries, not ingestion).
  void PublishShard(size_t shard_index);
  /// Checks producer-side preconditions shared by the Submit variants.
  Status PreSubmit() const;
  /// Dispatches the scattered sub-batches in scatter_ (inline or queued).
  Status Dispatch(size_t count);
  void RecordError(const Status& s);
  Status FirstError() const;
  Status CheckQuiescent() const;
  /// Index of `sketch` in options_.sketches, or size() if absent.
  size_t SketchIndex(const std::string& sketch) const;

  IngestorOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::vector<std::unique_ptr<MergeCache>> caches_;  // per sketch
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::vector<stream::TurnstileUpdate>> scatter_;  // reused
  uint64_t updates_submitted_ = 0;
  bool finished_ = false;

  std::atomic<bool> has_error_{false};
  mutable std::mutex error_mu_;
  Status first_error_;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_SHARDED_INGESTOR_H_
