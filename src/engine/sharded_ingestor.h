// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// ShardedIngestor: the engine's parallel ingestion core.
//
// The universe [0, n) is hash-partitioned across `num_shards` shards; each
// shard owns one instance of every configured sketch. Submitted update
// batches are scattered by item hash into per-shard sub-batches and applied
// either inline (num_threads == 0) or by worker threads, each of which owns
// a fixed subset of shards (shard s -> worker s % num_threads) and drains a
// FIFO queue — so every shard sees its sub-stream in submission order no
// matter how many workers run.
//
// WHERE the shards live is behind the pluggable ShardBackend interface
// (backend.h): the default InProcessBackend keeps them in this process
// (zero-copy apply, the original code path bit-for-bit); the loopback
// remote backend (remote_backend.h) runs each shard behind a socket
// speaking the engine wire format. The scatter/router/ticket machinery,
// merge cache, and snapshot/epoch protocol below are backend-agnostic.
//
// Submission is multi-producer and asynchronous: SubmitAsync scatters on
// the calling thread, then hands the pre-scattered batch to an MPSC
// submission queue under a short mutex and returns a sequence-numbered
// IngestTicket immediately. A router thread drains the submission queue in
// ticket order and forwards sub-batches to the per-shard worker queues —
// worker backpressure therefore blocks the *router* (and the ticket's
// completion), never the producer's thread. Wait(ticket)/TryWait(ticket)
// observe a monotone completion watermark: a ticket reports done only once
// every ticket with a smaller sequence number has also been fully applied,
// so `Wait(t)` returning means the stream prefix through `t` is ingested.
//
// Determinism: shard assignment depends only on the item, per-shard
// randomness only on (config seed, shard index), and per-shard apply order
// only on ticket order. A run with a fixed seed and fixed num_shards is
// therefore bit-for-bit reproducible for ANY num_threads given the same
// ticket order; with one producer, ticket order is submission order, which
// reproduces the legacy single-producer path exactly. With multiple
// producers the arrival interleaving is scheduling-dependent, but
// order-insensitive sketches (the linear families: ams_f2, sis_l0,
// rank_decision) still produce bit-identical final state for every
// interleaving of the same batches.
//
// Snapshots: at batch boundaries (throttled by snapshot_min_updates) the
// owning worker clones each shard-local sketch into an epoch-versioned
// snapshot slot — the clone is a fresh registry instance merged from the
// live one, so no new per-sketch API is needed. Flush() publishes any
// lagging shard, making the published state exact at quiescence.
//
// Queries: MergedSummary(name) folds the published per-shard snapshots into
// a per-sketch cached merge target WITHOUT requiring quiescence — it can
// run from any thread while workers ingest, answering as of the latest
// published epochs (each shard contributes a batch-boundary prefix of its
// substream; any such epoch vector is a valid frontier of the global stream
// because shards partition the universe). The cache tracks per-shard
// epochs: an unchanged engine is answered from the cached summary, and
// linear sketches re-fold only the shards whose epoch advanced
// (UnmergeFrom stale + MergeFrom fresh), turning the per-query cost from
// O(shards * state) into O(dirty * state). MergedSummaryView is the
// zero-copy variant the typed query surface (engine::Client) uses: it
// resolves by pre-bound sketch index instead of hashing a name per call.

#ifndef WBS_ENGINE_SHARDED_INGESTOR_H_
#define WBS_ENGINE_SHARDED_INGESTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/backend.h"
#include "engine/sketch.h"
#include "stream/updates.h"

namespace wbs::engine {

struct IngestorOptions {
  size_t num_shards = 4;
  size_t num_threads = 0;  ///< 0: apply inline on the submitting thread
  size_t max_queue_batches = 64;  ///< per-worker router->worker bound
  /// Soft cap on tickets submitted but not yet fully applied. SubmitAsync
  /// blocks once this many tickets are in flight — a memory safety valve
  /// far above the worker-queue backpressure point, not the steady-state
  /// flow control (that is the router absorbing worker backpressure while
  /// producers run ahead). 0 = unbounded.
  size_t max_inflight_tickets = 256;
  /// Total-bytes valve on the same queue: SubmitAsync blocks (and
  /// TrySubmitAsync fails fast with ResourceExhausted) while the update
  /// bytes of in-flight tickets would exceed this. A batch larger than the
  /// whole valve is still admitted when nothing is in flight, so a single
  /// oversized submission cannot deadlock. 0 = unbounded.
  size_t max_inflight_bytes = 0;
  /// Snapshot throttle: a shard republishes its snapshot at the first batch
  /// boundary after this many updates (0 = every batch). Keeps the
  /// unbatched (batch_size == 1) path from cloning per update; Flush()
  /// always catches lagging shards up, so quiescent queries are exact.
  size_t snapshot_min_updates = 1024;
  std::vector<std::string> sketches;  ///< registry names to instantiate
  SketchConfig config;
  /// Where the shards live. Empty = InProcessBackendFactory() (the
  /// process-local zero-copy backend). See backend.h for the contract and
  /// remote_backend.h for the loopback wire-format backend.
  BackendFactory backend;
};

/// A sequence-numbered receipt for one asynchronous submission. Tickets are
/// totally ordered by `seq`; completion is monotone in that order (see
/// Wait/TryWait). Value type: copy freely, pass to any thread. A
/// default-constructed ticket (seq 0) is always complete — SubmitAsync
/// returns it for empty batches and for inline-mode (num_threads == 0)
/// submissions, which are fully applied before SubmitAsync returns.
struct IngestTicket {
  uint64_t seq = 0;
};

/// How the merge cache served MergedSummary calls for one sketch.
struct MergeCacheStats {
  uint64_t hits = 0;         ///< no shard epoch advanced: cached summary
  uint64_t incremental = 0;  ///< only dirty shards re-folded (UnmergeFrom)
  uint64_t rebuilds = 0;     ///< full fold across all shards
};

class ShardedIngestor {
 public:
  static Result<std::unique_ptr<ShardedIngestor>> Create(
      const IngestorOptions& options);

  ~ShardedIngestor();

  ShardedIngestor(const ShardedIngestor&) = delete;
  ShardedIngestor& operator=(const ShardedIngestor&) = delete;

  /// Scatters `count` updates into per-shard sub-batches and enqueues them,
  /// returning a ticket that completes once the batch (and every earlier
  /// ticket) has been applied. Multi-producer: safe to call concurrently
  /// from any number of threads. Never blocks on worker backpressure (the
  /// router absorbs it); only the max_inflight_tickets safety valve can
  /// make it wait.
  Result<IngestTicket> SubmitAsync(const stream::TurnstileUpdate* updates,
                                   size_t count);
  Result<IngestTicket> SubmitAsync(const stream::TurnstileStream& s) {
    return SubmitAsync(s.data(), s.size());
  }

  /// Insertion-only convenience: each item becomes a delta-1 update.
  Result<IngestTicket> SubmitItemsAsync(const stream::ItemUpdate* items,
                                        size_t count);
  Result<IngestTicket> SubmitItemsAsync(const stream::ItemStream& s) {
    return SubmitItemsAsync(s.data(), s.size());
  }

  /// Non-blocking variant: where SubmitAsync would wait on the
  /// max_inflight_tickets / max_inflight_bytes valves, TrySubmitAsync
  /// returns ResourceExhausted immediately (the batch is NOT enqueued; the
  /// producer owns the retry policy). Identical to SubmitAsync otherwise.
  Result<IngestTicket> TrySubmitAsync(const stream::TurnstileUpdate* updates,
                                      size_t count);
  Result<IngestTicket> TrySubmitAsync(const stream::TurnstileStream& s) {
    return TrySubmitAsync(s.data(), s.size());
  }

  /// Fire-and-forget wrappers (the pre-ticket surface): submit and discard
  /// the ticket. Errors already recorded by the pipeline surface here.
  Status Submit(const stream::TurnstileUpdate* updates, size_t count) {
    return SubmitAsync(updates, count).status();
  }
  Status Submit(const stream::TurnstileStream& s) {
    return Submit(s.data(), s.size());
  }
  Status SubmitItems(const stream::ItemUpdate* items, size_t count) {
    return SubmitItemsAsync(items, count).status();
  }
  Status SubmitItems(const stream::ItemStream& s) {
    return SubmitItems(s.data(), s.size());
  }

  /// Blocks until `ticket` and every earlier ticket has been applied, then
  /// returns the pipeline's first error (OK when healthy). Any thread.
  Status Wait(const IngestTicket& ticket) const;

  /// Non-blocking completion probe: true once `ticket` (and every earlier
  /// ticket) is applied. Reports the pipeline's first error once the ticket
  /// has drained, so a producer polling TryWait sees failures too.
  Result<bool> TryWait(const IngestTicket& ticket) const;

  /// Blocks until every submitted ticket has been applied, then publishes
  /// any shard whose snapshot lags its live state. Call from a moment when
  /// producers are paused (a continuously racing producer keeps the
  /// in-flight count nonzero and Flush waiting).
  Status Flush();

  /// Flush + stop and join the router and workers. The ingestor stays
  /// queryable; further Submits fail. Idempotent.
  Status Finish();

  /// Merges the published per-shard snapshots of `sketch` into one global
  /// summary, as of the latest published epochs. Quiescence-free: safe to
  /// call from any thread while workers ingest (after Flush()/Finish() the
  /// answer is exact for the full stream). Served from the per-sketch merge
  /// cache; see MergeCacheStats.
  Result<SketchSummary> MergedSummary(const std::string& sketch) const;

  /// Zero-copy, index-addressed variant for pre-resolved handles: folds (if
  /// needed) and returns a pointer to the cached summary of the sketch at
  /// `sketch_index` (position in options().sketches). The pointer is valid
  /// only while *lock — handed back holding the per-sketch cache mutex —
  /// stays held; drop the lock as soon as the answer is projected.
  Result<const SketchSummary*> MergedSummaryView(
      size_t sketch_index, std::unique_lock<std::mutex>* lock) const;

  /// Cache counters for `sketch` (tests, diagnostics).
  Result<MergeCacheStats> CacheStats(const std::string& sketch) const;

  /// Number of snapshot publications shard `shard` has performed.
  uint64_t ShardEpoch(size_t shard) const;

  /// A single shard's live summary (tests and diagnostics). Still requires
  /// quiescence: it reads worker-owned state directly.
  Result<SketchSummary> ShardSummary(size_t shard,
                                     const std::string& sketch) const;

  /// Total state bits across all shards and sketches (quiescent callers).
  uint64_t SpaceBits() const;

  /// Index of `sketch` in options().sketches, or sketches.size() if absent.
  size_t SketchIndex(const std::string& sketch) const;

  const std::vector<std::string>& sketch_names() const {
    return options_.sketches;
  }
  uint64_t updates_submitted() const {
    return updates_submitted_.load(std::memory_order_acquire);
  }
  size_t num_shards() const { return options_.num_shards; }
  size_t num_threads() const { return options_.num_threads; }
  const IngestorOptions& options() const { return options_; }

  /// The shard backend this engine runs on (diagnostics / capabilities).
  const ShardBackend& backend() const { return *backend_; }

  /// The shard an item routes to: a fixed splitmix hash of the item, so the
  /// partition is stable across runs, thread counts and processes.
  static size_t ShardOf(uint64_t item, size_t num_shards) {
    uint64_t s = item ^ 0x9e3779b97f4a7c15ULL;
    return size_t(SplitMix64(&s) % num_shards);
  }

 private:
  /// Completion state shared between one ticket's scattered sub-batches.
  struct TicketState {
    uint64_t seq = 0;
    uint64_t bytes = 0;  ///< update bytes charged to the inflight valve
    std::atomic<size_t> remaining{0};  ///< sub-batches not yet applied
  };

  /// One pre-scattered submission parked in the MPSC queue.
  struct PendingTicket {
    std::shared_ptr<TicketState> state;
    std::vector<std::vector<stream::TurnstileUpdate>> sub;  // per shard
  };

  /// One sub-batch in a worker's queue.
  struct Job {
    size_t shard = 0;
    std::vector<stream::TurnstileUpdate> updates;
    std::shared_ptr<TicketState> ticket;
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv_work;     // router -> worker: work available
    std::condition_variable cv_space;    // worker -> router: queue has room
    std::condition_variable cv_drained;  // worker -> waiter: pending == 0
    std::deque<Job> queue;
    size_t pending = 0;  // queued + in-flight batches
    bool stop = false;
    std::thread thread;
  };

  // Per-sketch merge cache. `merged` is the fold of `folded` (one snapshot
  // per shard, null = shard never published); `epochs` records which shard
  // epochs are incorporated. All fields live under `mu`.
  struct MergeCache {
    std::mutex mu;
    std::unique_ptr<Sketch> merged;
    std::vector<std::shared_ptr<const Sketch>> folded;
    std::vector<uint64_t> epochs;
    SketchSummary summary;
    bool valid = false;
    bool try_unmerge = true;  // sticky false after the first Unimplemented
    MergeCacheStats stats;
  };

  explicit ShardedIngestor(IngestorOptions options);

  Status Init();
  void RouterLoop();
  void WorkerLoop(Worker* worker);
  /// Forwards a sub-batch to the backend (which aggregates, applies to
  /// every sketch of the shard's group, and publishes under its snapshot
  /// throttle).
  Status ApplyToShard(size_t shard_index, const stream::TurnstileUpdate* data,
                      size_t count);
  /// Checks producer-side preconditions shared by the Submit variants.
  Status PreSubmit() const;
  /// Inline mode: applies the sub-batches staged in scatter_ synchronously.
  /// Caller holds submit_mu_. Returns the always-complete seq-0 ticket.
  Result<IngestTicket> ApplyInline(size_t count);
  /// Shared body of SubmitAsync/TrySubmitAsync.
  Result<IngestTicket> SubmitScattered(const stream::TurnstileUpdate* updates,
                                       size_t count, bool blocking);
  /// Threaded mode: assigns a sequence number to `sub` and parks it on the
  /// MPSC queue for the router. When `blocking` is false, a full inflight
  /// valve is ResourceExhausted instead of a wait.
  Result<IngestTicket> EnqueueScattered(
      std::vector<std::vector<stream::TurnstileUpdate>> sub, size_t count,
      bool blocking);
  /// Marks the ticket applied, releases its valve bytes, and advances the
  /// monotone completion watermark.
  void CompleteTicket(const TicketState& state);
  void RecordError(const Status& s);
  Status FirstError() const;
  Status CheckQuiescent() const;

  IngestorOptions options_;
  std::unique_ptr<ShardBackend> backend_;
  mutable std::vector<std::unique_ptr<MergeCache>> caches_;  // per sketch
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Inline-mode scatter scratch, reused across submissions under
  /// submit_mu_ (threaded submissions scatter into per-call buffers that
  /// move through the MPSC queue instead).
  std::vector<std::vector<stream::TurnstileUpdate>> scatter_;
  std::atomic<uint64_t> updates_submitted_{0};
  std::atomic<bool> finished_{false};

  // MPSC submission stage: producers append under submit_mu_ (which also
  // serializes sequence assignment — queue order IS ticket order); the
  // router pops in FIFO order. In inline mode submit_mu_ additionally
  // serializes the apply itself, so ticket order and apply order coincide.
  std::mutex submit_mu_;
  std::condition_variable router_cv_;  // producer -> router: work available
  std::deque<PendingTicket> submit_queue_;
  uint64_t next_seq_ = 0;  // last assigned sequence number
  bool router_stop_ = false;
  std::thread router_;

  // Ticket completion: tickets finish physically out of order (their
  // sub-batches land on different workers), so finished seqs park in a
  // min-heap until the watermark reaches them — completed_seq_ advances
  // only in sequence order, giving Wait/TryWait their prefix semantics.
  mutable std::mutex ticket_mu_;
  mutable std::condition_variable ticket_cv_;
  uint64_t completed_seq_ = 0;  // all tickets <= this are applied
  uint64_t inflight_tickets_ = 0;
  uint64_t inflight_bytes_ = 0;  // update bytes of physically pending tickets
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>>
      done_out_of_order_;

  std::atomic<bool> has_error_{false};
  mutable std::mutex error_mu_;
  Status first_error_;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_SHARDED_INGESTOR_H_
