// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// ShardedIngestor: the engine's parallel ingestion core.
//
// The universe [0, n) is hash-partitioned across `num_shards` shards; each
// shard owns one instance of every configured sketch. Submitted update
// batches are scattered by item hash into per-shard sub-batches and applied
// either inline (num_threads == 0) or by worker threads, each of which owns
// a fixed subset of shards (shard s -> worker s % num_threads) and drains a
// FIFO queue — so every shard sees its sub-stream in submission order no
// matter how many workers run.
//
// Determinism: shard assignment depends only on the item, per-shard
// randomness only on (config seed, shard index), and per-shard apply order
// only on submission order. A run with a fixed seed and fixed num_shards is
// therefore bit-for-bit reproducible for ANY num_threads — the property the
// white-box game semantics need to survive the move to parallel plumbing.
//
// Merging: MergedSummary(name) folds all shard-local instances into a fresh
// merge target. Because shards partition the universe, answer-level merges
// (sampling HH sketches) are exact unions, and state-level merges (linear
// sketches) reproduce the single-instance state bit-for-bit.

#ifndef WBS_ENGINE_SHARDED_INGESTOR_H_
#define WBS_ENGINE_SHARDED_INGESTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/sketch.h"
#include "stream/updates.h"

namespace wbs::engine {

struct IngestorOptions {
  size_t num_shards = 4;
  size_t num_threads = 0;  ///< 0: apply inline on the submitting thread
  size_t max_queue_batches = 64;  ///< per-worker backpressure bound
  std::vector<std::string> sketches;  ///< registry names to instantiate
  SketchConfig config;
};

class ShardedIngestor {
 public:
  static Result<std::unique_ptr<ShardedIngestor>> Create(
      const IngestorOptions& options);

  ~ShardedIngestor();

  ShardedIngestor(const ShardedIngestor&) = delete;
  ShardedIngestor& operator=(const ShardedIngestor&) = delete;

  /// Scatters `count` updates into per-shard sub-batches and dispatches
  /// them. Single-producer: Submit/Flush/Finish must come from one thread.
  Status Submit(const stream::TurnstileUpdate* updates, size_t count);
  Status Submit(const stream::TurnstileStream& s) {
    return Submit(s.data(), s.size());
  }

  /// Insertion-only convenience: each item becomes a delta-1 update.
  Status SubmitItems(const stream::ItemUpdate* items, size_t count);
  Status SubmitItems(const stream::ItemStream& s) {
    return SubmitItems(s.data(), s.size());
  }

  /// Blocks until every dispatched batch has been applied.
  Status Flush();

  /// Flush + stop and join the workers. The ingestor stays queryable;
  /// further Submits fail. Idempotent.
  Status Finish();

  /// Merges all shard-local instances of `sketch` into one global summary.
  /// Requires quiescence: call after Flush() or Finish().
  Result<SketchSummary> MergedSummary(const std::string& sketch) const;

  /// A single shard's summary (tests and diagnostics).
  Result<SketchSummary> ShardSummary(size_t shard,
                                     const std::string& sketch) const;

  /// Total state bits across all shards and sketches.
  uint64_t SpaceBits() const;

  const std::vector<std::string>& sketch_names() const {
    return options_.sketches;
  }
  uint64_t updates_submitted() const { return updates_submitted_; }
  size_t num_shards() const { return options_.num_shards; }
  size_t num_threads() const { return options_.num_threads; }
  const IngestorOptions& options() const { return options_; }

  /// The shard an item routes to: a fixed splitmix hash of the item, so the
  /// partition is stable across runs, thread counts and processes.
  static size_t ShardOf(uint64_t item, size_t num_shards) {
    uint64_t s = item ^ 0x9e3779b97f4a7c15ULL;
    return size_t(SplitMix64(&s) % num_shards);
  }

 private:
  struct Shard {
    std::vector<std::unique_ptr<Sketch>> sketches;
    // Aggregation scratch, computed once per shard batch and shared with
    // every weight-equivalent sketch via UpdateBatch. Touched only by the
    // shard's owning worker (or the producer in inline mode).
    std::vector<stream::TurnstileUpdate> agg;
    std::unordered_map<uint64_t, size_t> agg_index;
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv_work;     // producer -> worker: work available
    std::condition_variable cv_space;    // worker -> producer: queue has room
    std::condition_variable cv_drained;  // worker -> producer: pending == 0
    std::deque<std::pair<size_t, std::vector<stream::TurnstileUpdate>>> queue;
    size_t pending = 0;  // queued + in-flight batches
    bool stop = false;
    std::thread thread;
  };

  explicit ShardedIngestor(IngestorOptions options);

  Status Init();
  void WorkerLoop(Worker* worker);
  Status ApplyToShard(size_t shard_index, const stream::TurnstileUpdate* data,
                      size_t count);
  /// Checks producer-side preconditions shared by the Submit variants.
  Status PreSubmit() const;
  /// Dispatches the scattered sub-batches in scatter_ (inline or queued).
  Status Dispatch(size_t count);
  void RecordError(const Status& s);
  Status FirstError() const;
  Status CheckQuiescent() const;

  IngestorOptions options_;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::vector<stream::TurnstileUpdate>> scatter_;  // reused
  uint64_t updates_submitted_ = 0;
  bool finished_ = false;

  std::atomic<bool> has_error_{false};
  mutable std::mutex error_mu_;
  Status first_error_;
};

}  // namespace wbs::engine

#endif  // WBS_ENGINE_SHARDED_INGESTOR_H_
