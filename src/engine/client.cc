// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "engine/client.h"

#include <algorithm>

namespace wbs::engine {
namespace {

const char* FamilyName(SketchFamily family) {
  switch (family) {
    case SketchFamily::kHeavyHitter:
      return "heavy-hitter";
    case SketchFamily::kScalarEstimate:
      return "scalar-estimate";
    case SketchFamily::kRankVerdict:
      return "rank-verdict";
    case SketchFamily::kGeneric:
      return "generic";
  }
  return "unknown";
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Create(const ClientOptions& options) {
  auto ingestor = ShardedIngestor::Create(options.ingest);
  if (!ingestor.ok()) return ingestor.status();
  // Resolve every configured sketch's declared answer family now, so
  // Handle() and the per-query kind checks never touch the registry lock.
  std::vector<SketchFamily> families;
  families.reserve(options.ingest.sketches.size());
  for (const std::string& name : options.ingest.sketches) {
    auto family = SketchRegistry::Global().FamilyOf(name);
    if (!family.ok()) return family.status();
    families.push_back(family.value());
  }
  return std::unique_ptr<Client>(
      new Client(std::move(ingestor).value(), std::move(families)));
}

Result<SketchHandle> Client::Handle(const std::string& sketch) const {
  const size_t index = ingestor_->SketchIndex(sketch);
  if (index == ingestor_->sketch_names().size()) {
    return Status::NotFound("Client: sketch not configured: " + sketch);
  }
  return SketchHandle(this, index, families_[index]);
}

Result<size_t> Client::CheckHandle(const SketchHandle& handle,
                                   const char* query_kind,
                                   bool allowed_for_family) const {
  if (!handle.valid()) {
    return Status::InvalidArgument("Client: invalid (default) sketch handle");
  }
  if (handle.owner_ != this) {
    return Status::InvalidArgument(
        "Client: handle belongs to a different client");
  }
  if (!allowed_for_family) {
    return Status::InvalidArgument(
        std::string("Client: ") + query_kind + " query not answerable by a " +
        FamilyName(handle.family_) + " sketch (" +
        ingestor_->sketch_names()[handle.index_] + ")");
  }
  return handle.index_;
}

Result<PointEstimate> Client::QueryPoint(const SketchHandle& handle,
                                         uint64_t item) const {
  auto index = CheckHandle(
      handle, "point-estimate",
      handle.family_ == SketchFamily::kHeavyHitter ||
          handle.family_ == SketchFamily::kGeneric);
  if (!index.ok()) return index.status();
  std::unique_lock<std::mutex> lock;
  auto view = ingestor_->MergedSummaryView(index.value(), &lock);
  if (!view.ok()) return view.status();
  const SketchSummary& summary = *view.value();
  PointEstimate out;
  out.item = item;
  out.estimate = summary.Estimate(item);  // O(log n) via the by-item index
  out.tracked = out.estimate != 0;
  out.updates = summary.updates;
  out.stale = summary.stale;
  return out;
}

Result<TopK> Client::QueryTopK(const SketchHandle& handle, size_t k) const {
  auto index = CheckHandle(
      handle, "top-k",
      handle.family_ == SketchFamily::kHeavyHitter ||
          handle.family_ == SketchFamily::kGeneric);
  if (!index.ok()) return index.status();
  if (k == 0) {
    return Status::InvalidArgument("Client: top-k query requires k > 0");
  }
  std::unique_lock<std::mutex> lock;
  auto view = ingestor_->MergedSummaryView(index.value(), &lock);
  if (!view.ok()) return view.status();
  const SketchSummary& summary = *view.value();
  TopK out;
  out.updates = summary.updates;
  out.stale = summary.stale;
  const size_t n = std::min(k, summary.items.size());
  if (summary.item_index.size() == summary.items.size()) {
    // Producer called SortItems(): items are already estimate-descending.
    out.items.assign(summary.items.begin(), summary.items.begin() + n);
    return out;
  }
  // kGeneric sketches may skip SortItems; enforce the TopK contract on a
  // copy (never mutate the shared cached summary).
  out.items = summary.items;
  std::partial_sort(out.items.begin(), out.items.begin() + n,
                    out.items.end(),
                    [](const hh::WeightedItem& a, const hh::WeightedItem& b) {
                      return a.estimate > b.estimate ||
                             (a.estimate == b.estimate && a.item < b.item);
                    });
  out.items.resize(n);
  return out;
}

Result<ScalarEstimate> Client::QueryScalar(const SketchHandle& handle) const {
  auto index = CheckHandle(
      handle, "scalar-estimate",
      handle.family_ == SketchFamily::kScalarEstimate ||
          handle.family_ == SketchFamily::kGeneric);
  if (!index.ok()) return index.status();
  std::unique_lock<std::mutex> lock;
  auto view = ingestor_->MergedSummaryView(index.value(), &lock);
  if (!view.ok()) return view.status();
  const SketchSummary& summary = *view.value();
  if (!summary.has_scalar) {
    return Status::InvalidArgument(
        "Client: sketch " + ingestor_->sketch_names()[handle.index_] +
        " produced no scalar answer");
  }
  return ScalarEstimate{summary.scalar, summary.updates, summary.stale};
}

Result<RankVerdict> Client::QueryRank(const SketchHandle& handle) const {
  auto index = CheckHandle(
      handle, "rank-verdict",
      handle.family_ == SketchFamily::kRankVerdict ||
          handle.family_ == SketchFamily::kGeneric);
  if (!index.ok()) return index.status();
  std::unique_lock<std::mutex> lock;
  auto view = ingestor_->MergedSummaryView(index.value(), &lock);
  if (!view.ok()) return view.status();
  const SketchSummary& summary = *view.value();
  if (!summary.has_scalar) {
    return Status::InvalidArgument(
        "Client: sketch " + ingestor_->sketch_names()[handle.index_] +
        " produced no rank verdict");
  }
  return RankVerdict{summary.scalar != 0, summary.updates, summary.stale};
}

Result<SketchSummary> Client::RawSummary(const SketchHandle& handle) const {
  auto index = CheckHandle(handle, "raw-summary", /*allowed_for_family=*/true);
  if (!index.ok()) return index.status();
  std::unique_lock<std::mutex> lock;
  auto view = ingestor_->MergedSummaryView(index.value(), &lock);
  if (!view.ok()) return view.status();
  return *view.value();  // copy out while the cache lock is held
}

}  // namespace wbs::engine
