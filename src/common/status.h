// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// RocksDB-style Status / Result error handling. Library code never throws
// across module boundaries; fallible operations return Status or Result<T>.

#ifndef WBS_COMMON_STATUS_H_
#define WBS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace wbs {

/// Outcome of a fallible operation. Cheap to copy when OK.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kOutOfRange,
    kNotFound,
    kFailedPrecondition,
    kResourceExhausted,
    kInternal,
    kUnimplemented,
    kUnavailable,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: epsilon must be > 0".
  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  static std::string CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kOutOfRange: return "OutOfRange";
      case Code::kNotFound: return "NotFound";
      case Code::kFailedPrecondition: return "FailedPrecondition";
      case Code::kResourceExhausted: return "ResourceExhausted";
      case Code::kInternal: return "Internal";
      case Code::kUnimplemented: return "Unimplemented";
      case Code::kUnavailable: return "Unavailable";
      case Code::kDeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

/// A value-or-error union. `value()` asserts on error in debug builds;
/// callers are expected to check `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}      // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace wbs

#endif  // WBS_COMMON_STATUS_H_
