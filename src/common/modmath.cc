// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "common/modmath.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace wbs {

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  if (m == 1) return 0;
  uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

int64_t ExtGcd(int64_t a, int64_t b, int64_t* x, int64_t* y) {
  if (b == 0) {
    *x = 1;
    *y = 0;
    return a;
  }
  int64_t x1 = 0, y1 = 0;
  int64_t g = ExtGcd(b, a % b, &x1, &y1);
  *x = y1;
  *y = x1 - (a / b) * y1;
  return g;
}

uint64_t InvMod(uint64_t a, uint64_t m) {
  a %= m;
  if (a == 0) return 0;
  // Use the iterative extended Euclid over unsigned to support m > 2^63.
  uint64_t r0 = m, r1 = a;
  // Track coefficients of a only, mod m, using signed accumulation in 128-bit.
  __int128 t0 = 0, t1 = 1;
  while (r1 != 0) {
    uint64_t q = r0 / r1;
    uint64_t r2 = r0 - q * r1;
    __int128 t2 = t0 - (__int128)q * t1;
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t1 = t2;
  }
  if (r0 != 1) return 0;  // not invertible
  __int128 t = t0 % (__int128)m;
  if (t < 0) t += m;
  return static_cast<uint64_t>(t);
}

namespace {

// Miller-Rabin witness check; returns true if n is definitely composite.
bool IsCompositeWitness(uint64_t n, uint64_t a, uint64_t d, int r) {
  uint64_t x = PowMod(a, d, n);
  if (x == 1 || x == n - 1) return false;
  for (int i = 1; i < r; ++i) {
    x = MulMod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;
}

uint64_t PollardRho(uint64_t n) {
  if (n % 2 == 0) return 2;
  uint64_t x = 2, y = 2, c = 1, d = 1;
  auto f = [&](uint64_t v) { return AddMod(MulMod(v, v, n), c, n); };
  while (true) {
    x = 2;
    y = 2;
    d = 1;
    while (d == 1) {
      x = f(x);
      y = f(f(y));
      uint64_t diff = x > y ? x - y : y - x;
      d = std::gcd(diff, n);
    }
    if (d != n) return d;
    ++c;  // cycle detected without a factor; retry with a new constant
  }
}

void Factor(uint64_t n, std::vector<uint64_t>* out) {
  if (n == 1) return;
  if (IsPrime(n)) {
    out->push_back(n);
    return;
  }
  uint64_t d = PollardRho(n);
  Factor(d, out);
  Factor(n / d, out);
}

}  // namespace

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64.
  for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    if (IsCompositeWitness(n, a, d, r)) return false;
  }
  return true;
}

uint64_t NextPrime(uint64_t n) {
  if (n <= 2) return 2;
  uint64_t c = n | 1;
  while (!IsPrime(c)) {
    assert(c < ~uint64_t{0} - 2);
    c += 2;
  }
  return c;
}

std::vector<uint64_t> DistinctPrimeFactors(uint64_t n) {
  std::vector<uint64_t> all;
  // Strip small factors first to keep Pollard rho fast.
  for (uint64_t p = 2; p < 100 && p * p <= n; p == 2 ? p = 3 : p += 2) {
    while (n % p == 0) {
      all.push_back(p);
      n /= p;
    }
  }
  if (n > 1) Factor(n, &all);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace wbs
