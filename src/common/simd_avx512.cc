// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// AVX-512 kernel table: 8×u64 lanes using F+DQ (native 64-bit mullo and
// mask-register unsigned compares, so none of the AVX2 signed-compare or
// 32-bit-decomposition workarounds are needed except for mulhi, which has
// no 512-bit instruction either). Compiled with -mavx512f -mavx512dq for
// x86 targets only; selected at runtime only when the CPU reports both.
// The SHA-256 entry reuses the AVX2 8-lane implementation — the primitive
// is batched 8 messages at a time, so 16 u32 lanes would run half empty.

#include "common/simd_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "common/modmath.h"

namespace wbs::simd::internal {
namespace {

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kMix1 = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kMix2 = 0x94d049bb133111ebULL;
constexpr uint64_t kAmsRowSalt = 0xd1342543de82ef95ULL;

inline __m512i Load(const uint64_t* p) { return _mm512_loadu_si512(p); }
inline void Store(uint64_t* p, __m512i v) { _mm512_storeu_si512(p, v); }

// r - (r >= q ? q : 0) for r in [0, 2q).
inline __m512i CondSubQ(__m512i r, __m512i vq) {
  const __mmask8 ge = _mm512_cmpge_epu64_mask(r, vq);
  return _mm512_mask_sub_epi64(r, ge, r, vq);
}

// High 64 bits of a*b per lane (no 512-bit mulhi instruction; same 4-way
// 32-bit decomposition as the AVX2 path).
inline __m512i Mulhi64(__m512i a, __m512i b) {
  const __m512i mask32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i ah = _mm512_srli_epi64(a, 32);
  const __m512i bh = _mm512_srli_epi64(b, 32);
  const __m512i ll = _mm512_mul_epu32(a, b);
  const __m512i lh = _mm512_mul_epu32(a, bh);
  const __m512i hl = _mm512_mul_epu32(ah, b);
  const __m512i hh = _mm512_mul_epu32(ah, bh);
  const __m512i mid = _mm512_add_epi64(
      _mm512_add_epi64(_mm512_srli_epi64(ll, 32), _mm512_and_si512(lh, mask32)),
      _mm512_and_si512(hl, mask32));
  return _mm512_add_epi64(
      _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
      _mm512_add_epi64(_mm512_srli_epi64(hl, 32), _mm512_srli_epi64(mid, 32)));
}

inline __m512i SplitMix8(__m512i z) {
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
                         _mm512_set1_epi64(int64_t(kMix1)));
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
                         _mm512_set1_epi64(int64_t(kMix2)));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

void Avx512AccumulateMod(uint64_t* acc, const uint64_t* add, size_t n,
                         uint64_t q) {
  const __m512i vq = _mm512_set1_epi64(int64_t(q));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store(acc + i,
          CondSubQ(_mm512_add_epi64(Load(acc + i), Load(add + i)), vq));
  }
  ScalarAccumulateMod(acc + i, add + i, n - i, q);
}

void Avx512SubtractMod(uint64_t* acc, const uint64_t* sub, size_t n,
                       uint64_t q) {
  const __m512i vq = _mm512_set1_epi64(int64_t(q));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = Load(acc + i);
    const __m512i b = Load(sub + i);
    const __mmask8 lt = _mm512_cmplt_epu64_mask(a, b);
    const __m512i r = _mm512_sub_epi64(a, b);
    Store(acc + i, _mm512_mask_add_epi64(r, lt, r, vq));
  }
  ScalarSubtractMod(acc + i, sub + i, n - i, q);
}

void Avx512SisColumnUpdate(uint64_t* v, const uint64_t* col,
                           const uint64_t* shoup, size_t n, uint64_t d,
                           const wbs::BarrettQ& bq) {
  const __m512i vq = _mm512_set1_epi64(int64_t(bq.q));
  const __m512i vd = _mm512_set1_epi64(int64_t(d));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i w = Load(col + i);
    const __m512i q_est = Mulhi64(Load(shoup + i), vd);
    const __m512i r =
        CondSubQ(_mm512_sub_epi64(_mm512_mullo_epi64(w, vd),
                                  _mm512_mullo_epi64(q_est, vq)),
                 vq);
    Store(v + i, CondSubQ(_mm512_add_epi64(Load(v + i), r), vq));
  }
  ScalarSisColumnUpdate(v + i, col + i, shoup + i, n - i, d, bq);
}

void Avx512AmsRowMix(int64_t* counters, size_t rows, const uint64_t* mix,
                     const int64_t* deltas, size_t count) {
  const __m512i vgolden = _mm512_set1_epi64(int64_t(kGolden));
  const __m512i one = _mm512_set1_epi64(1);
  for (size_t j = 0; j < rows; ++j) {
    const __m512i vsalt = _mm512_set1_epi64(int64_t(uint64_t(j) * kAmsRowSalt));
    __m512i accum = _mm512_setzero_si512();
    size_t t = 0;
    for (; t + 8 <= count; t += 8) {
      const __m512i z = SplitMix8(_mm512_add_epi64(
          _mm512_xor_si512(Load(mix + t), vsalt), vgolden));
      const __mmask8 plus = _mm512_test_epi64_mask(z, one);  // sign bit set
      const __m512i d = Load(reinterpret_cast<const uint64_t*>(deltas) + t);
      accum = _mm512_mask_add_epi64(_mm512_sub_epi64(accum, d), plus,
                                    accum, d);
    }
    // Wrapping horizontal sum; _mm512_reduce_add_epi64 wraps identically.
    uint64_t c = uint64_t(counters[j]) + uint64_t(_mm512_reduce_add_epi64(accum));
    for (; t < count; ++t) {
      uint64_t s = (mix[t] ^ (uint64_t(j) * kAmsRowSalt)) + kGolden;
      s = (s ^ (s >> 30)) * kMix1;
      s = (s ^ (s >> 27)) * kMix2;
      s ^= s >> 31;
      c += (s & 1) ? uint64_t(deltas[t]) : uint64_t(0) - uint64_t(deltas[t]);
    }
    counters[j] = int64_t(c);
  }
}

void Avx512HashItems(const uint64_t* items, size_t n, uint64_t* out) {
  const __m512i vgolden = _mm512_set1_epi64(int64_t(kGolden));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store(out + i, SplitMix8(_mm512_add_epi64(
                       _mm512_xor_si512(Load(items + i), vgolden), vgolden)));
  }
  ScalarHashItems(items + i, n - i, out + i);
}

}  // namespace

const KernelDispatch* Avx512Table() {
  static const KernelDispatch table = {
      "avx512",
      8,
      &Avx512AccumulateMod,
      &Avx512SubtractMod,
      &Avx512SisColumnUpdate,
      &Avx512AmsRowMix,
      &Avx512HashItems,
      &Avx2Sha256Salted8,
  };
  return &table;
}

}  // namespace wbs::simd::internal

#else  // !x86

namespace wbs::simd::internal {
const KernelDispatch* Avx512Table() { return nullptr; }
}  // namespace wbs::simd::internal

#endif
