// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Runtime-dispatched data-parallel kernels for the engine's hot loops.
//
// The scalar Barrett kernels of src/common/modmath.h left vector lanes on
// the table; this layer vectorizes them behind a `KernelDispatch` table
// selected ONCE at startup from the CPU's actual feature set (AVX-512 /
// AVX2 on x86-64, NEON on aarch64, a portable scalar fallback everywhere).
// Every entry is bit-identical to the scalar path — a modular residue in
// [0, q) is unique, so any correct reduction strategy produces the same
// words; 64-bit integer sums commute mod 2^64 — and the kernel fuzz suite
// (tests/kernel_simd_test.cc) plus a Debug-mode paranoia re-check in the
// callers assert exactly that.
//
// Selection: the best table supported by the CPU wins. The environment
// variable WBS_ENGINE_KERNEL=scalar|avx2|avx512|neon forces a level (for
// tests and A/B benches); forcing a level this CPU cannot run falls back to
// scalar rather than crashing. The choice is made on first use and cached.
//
// Alignment contract: NONE. Every vector kernel uses unaligned loads and
// handles arbitrary (including odd and zero) span lengths with a scalar
// tail, so callers never pad or align buffers. All mod-q kernels require
// q < 2^62 (the BarrettQ bound — it also guarantees sums and 2q fit a
// signed 64-bit lane compare) and entries already reduced into [0, q).

#ifndef WBS_COMMON_SIMD_H_
#define WBS_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wbs {
struct BarrettQ;  // modmath.h
}

namespace wbs::simd {

/// One resolved kernel table. All function pointers are always non-null:
/// per-ISA tables fill any entry they do not specialize with the scalar
/// implementation, so callers dispatch unconditionally.
struct KernelDispatch {
  /// Table identifier: "scalar", "avx2", "avx512", "neon".
  const char* name;
  /// 64-bit lanes the mod-q kernels process per vector step (1 = scalar).
  int lanes;

  /// acc[i] = (acc[i] + add[i]) mod q over n entries already in [0, q).
  void (*accumulate_mod)(uint64_t* acc, const uint64_t* add, size_t n,
                         uint64_t q);
  /// acc[i] = (acc[i] - sub[i]) mod q over n entries already in [0, q).
  void (*subtract_mod)(uint64_t* acc, const uint64_t* sub, size_t n,
                       uint64_t q);
  /// v[i] = (v[i] + d * col[i]) mod q — the SIS column update. `shoup` is
  /// the precomputed companion array shoup[i] = floor(col[i] * 2^64 / q)
  /// (see SisMatrix::Materialize); `d` is already reduced into [0, q). The
  /// Shoup product w*d - hi64(w'*d)*q lands in [0, 2q) and one conditional
  /// subtract yields the exact canonical residue, so the result matches
  /// BarrettQ::MulMod word for word. `bq` serves the scalar tail/fallback.
  void (*sis_column_update)(uint64_t* v, const uint64_t* col,
                            const uint64_t* shoup, size_t n, uint64_t d,
                            const wbs::BarrettQ& bq);
  /// counters[j] += sum_t sign(mix[t] ^ j*kAmsRowSalt) * deltas[t] for all
  /// `rows` rows — the batched AMS row mix. sign() is the AmsF2Sketch
  /// SplitMix64 parity; lane sums reassociate freely because 64-bit
  /// addition commutes mod 2^64.
  void (*ams_row_mix)(int64_t* counters, size_t rows, const uint64_t* mix,
                      const int64_t* deltas, size_t count);
  /// out[i] = SplitMix64(items[i] ^ kGolden) — the TopologyView::SlotOf
  /// hash before its modulo, for the scatter path's 8-wide hash+bucket.
  void (*hash_items)(const uint64_t* items, size_t n, uint64_t* out);
  /// Eight independent single-block SHA-256 messages salt||item (8 bytes
  /// big-endian each, one padded compression per message); out[i] is the
  /// first 8 digest bytes as a big-endian uint64 — the Sha256Crhf::HashU64
  /// preimage/truncation layout, exactly.
  void (*sha256_salted8)(uint64_t salt, const uint64_t* items,
                         uint64_t* out);
};

/// The table selected for this process (CPU detection + WBS_ENGINE_KERNEL
/// override, resolved once on first call and cached).
const KernelDispatch& Kernels();

/// The table registered under `name`, or nullptr. Compiled-out ISAs (e.g.
/// "neon" on x86) and levels this CPU cannot execute return nullptr.
const KernelDispatch* KernelByName(const std::string& name);

/// Every table this CPU can actually run, best-first. Always contains at
/// least the scalar table; the kernel fuzz suite iterates this.
std::vector<const KernelDispatch*> AvailableKernels();

/// Human-readable detected ISA summary, e.g. "avx512,avx2" or "neon" or
/// "scalar-only" — the `cpu_features` field of the bench JSONL rows.
std::string DetectedCpuFeatures();

namespace internal {
/// Re-runs kernel selection (re-reading WBS_ENGINE_KERNEL). Test/bench
/// hook only — racing it against live kernel calls is benign (the pointer
/// swap is atomic) but the forced table applies to calls that start after.
void ReselectKernels();
}  // namespace internal

}  // namespace wbs::simd

#endif  // WBS_COMMON_SIMD_H_
