// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// NEON kernel table for aarch64: 2×u64 lanes for the add/sub merge kernels
// (NEON has 64-bit lane add/sub/compare but no 64×64 multiply, so the
// multiply-heavy kernels — Shoup column update, SplitMix, SHA-256 — stay
// on the scalar reference implementations). aarch64 mandates NEON, so no
// runtime feature check is needed beyond the compile-time arch gate.

#include "common/simd_internal.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace wbs::simd::internal {
namespace {

void NeonAccumulateMod(uint64_t* acc, const uint64_t* add, size_t n,
                       uint64_t q) {
  const uint64x2_t vq = vdupq_n_u64(q);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t s = vaddq_u64(vld1q_u64(acc + i), vld1q_u64(add + i));
    const uint64x2_t ge = vcgeq_u64(s, vq);  // all-ones where s >= q
    vst1q_u64(acc + i, vsubq_u64(s, vandq_u64(ge, vq)));
  }
  ScalarAccumulateMod(acc + i, add + i, n - i, q);
}

void NeonSubtractMod(uint64_t* acc, const uint64_t* sub, size_t n,
                     uint64_t q) {
  const uint64x2_t vq = vdupq_n_u64(q);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t a = vld1q_u64(acc + i);
    const uint64x2_t b = vld1q_u64(sub + i);
    const uint64x2_t lt = vcltq_u64(a, b);  // wrap under zero → add q back
    vst1q_u64(acc + i, vaddq_u64(vsubq_u64(a, b), vandq_u64(lt, vq)));
  }
  ScalarSubtractMod(acc + i, sub + i, n - i, q);
}

}  // namespace

const KernelDispatch* NeonTable() {
  static const KernelDispatch table = {
      "neon",
      2,
      &NeonAccumulateMod,
      &NeonSubtractMod,
      &ScalarSisColumnUpdate,
      &ScalarAmsRowMix,
      &ScalarHashItems,
      &ScalarSha256Salted8,
  };
  return &table;
}

}  // namespace wbs::simd::internal

#else  // !aarch64

namespace wbs::simd::internal {
const KernelDispatch* NeonTable() { return nullptr; }
}  // namespace wbs::simd::internal

#endif
