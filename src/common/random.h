// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Randomness with white-box exposure.
//
// In the white-box adversarial model (Section 1 of the paper) the adversary
// observes *all randomness the algorithm has ever drawn*. To make that
// observable in code, algorithms draw random bits only through a RandomTape:
// every word handed out can be recorded on a log that the GameRunner exposes
// to the adversary as part of the StateView. The seed itself is also exposed
// (the algorithm has no secret key in this model).

#ifndef WBS_COMMON_RANDOM_H_
#define WBS_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace wbs {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with an optional consumption log (the white-box tape).
class RandomTape {
 public:
  explicit RandomTape(uint64_t seed) : seed_(seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(&sm);
  }

  /// Next 64 random bits; appended to the log if logging is enabled.
  uint64_t NextWord() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    ++words_consumed_;
    if (logging_) log_.push_back(result);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling so the distribution is exactly uniform.
  uint64_t UniformInt(uint64_t bound) {
    assert(bound > 0);
    if (bound == 1) return 0;
    const uint64_t limit = ~uint64_t{0} - ~uint64_t{0} % bound;
    uint64_t w;
    do {
      w = NextWord();
    } while (w >= limit);
    return w % bound;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    return static_cast<double>(NextWord() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0) {
      NextWord();  // still consume: the tape's draw schedule is data-independent
      return false;
    }
    if (p >= 1) {
      NextWord();
      return true;
    }
    return UniformDouble() < p;
  }

  /// Uniform signed choice in {-1, +1}.
  int SignBit() { return (NextWord() & 1) ? 1 : -1; }

  uint64_t seed() const { return seed_; }
  uint64_t words_consumed() const { return words_consumed_; }

  /// The full log of words handed out while logging was enabled. This is
  /// the "previous randomness used by StreamAlg" the adversary observes.
  const std::vector<uint64_t>& log() const { return log_; }

  /// Enables/disables logging. Disabling is used by space/throughput benches
  /// where the adversary is not consulted; the game runner keeps it on.
  void set_logging(bool on) { logging_ = on; }
  bool logging() const { return logging_; }

  void ClearLog() { log_.clear(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t seed_;
  uint64_t s_[4];
  uint64_t words_consumed_ = 0;
  bool logging_ = true;
  std::vector<uint64_t> log_;
};

}  // namespace wbs

#endif  // WBS_COMMON_RANDOM_H_
