// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "common/simd.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "common/modmath.h"
#include "common/simd_internal.h"

namespace wbs::simd {
namespace internal {
namespace {

// SplitMix64 (common/random.h) — duplicated here so the kernel layer has a
// single self-contained definition to vectorize against. kGolden is both
// the stream increment and the TopologyView::SlotOf pre-xor; kAmsRowSalt
// is the AmsF2Sketch per-row salt multiplier. Constants must stay in lock
// step with random.h / topology.h / moments/ams.cc (asserted by the
// bit-identity fuzz suite).
constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kMix1 = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kMix2 = 0x94d049bb133111ebULL;
constexpr uint64_t kAmsRowSalt = 0xd1342543de82ef95ULL;

inline uint64_t SplitMix(uint64_t z) {
  z = (z ^ (z >> 30)) * kMix1;
  z = (z ^ (z >> 27)) * kMix2;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Single-block SHA-256 (reference compression, FIPS 180-4). Self-contained
// copy of crypto/sha256.cc's ProcessBlock specialized to the 16-byte
// salt||item message Sha256Crhf::HashU64 hashes, so src/common does not
// grow a dependency on src/crypto. The fuzz suite pins this against the
// streaming Sha256 class.

constexpr uint32_t kShaK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

// First 8 digest bytes (big-endian) of SHA-256(salt_be8 || item_be8).
uint64_t Sha256SaltedOne(uint64_t salt, uint64_t item) {
  // The padded single block: 16 message bytes, 0x80, zeros, bit count 128.
  uint32_t w[64];
  w[0] = uint32_t(salt >> 32);
  w[1] = uint32_t(salt);
  w[2] = uint32_t(item >> 32);
  w[3] = uint32_t(item);
  w[4] = 0x80000000u;
  for (int i = 5; i < 15; ++i) w[i] = 0;
  w[15] = 128;
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 =
        Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 =
        Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = 0x6a09e667, b = 0xbb67ae85, c = 0x3c6ef372, d = 0xa54ff53a;
  uint32_t e = 0x510e527f, f = 0x9b05688c, g = 0x1f83d9ab, h = 0x5be0cd19;
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t temp1 = h + s1 + ch + kShaK[i] + w[i];
    const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  const uint32_t s0 = 0x6a09e667 + a;
  const uint32_t s1 = 0xbb67ae85 + b;
  return (uint64_t(s0) << 32) | s1;
}

}  // namespace

void ScalarAccumulateMod(uint64_t* acc, const uint64_t* add, size_t n,
                         uint64_t q) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t s = acc[i] + add[i];
    acc[i] = s >= q ? s - q : s;
  }
}

void ScalarSubtractMod(uint64_t* acc, const uint64_t* sub, size_t n,
                       uint64_t q) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] = acc[i] >= sub[i] ? acc[i] - sub[i] : acc[i] + (q - sub[i]);
  }
}

void ScalarSisColumnUpdate(uint64_t* v, const uint64_t* col,
                           const uint64_t* shoup, size_t n, uint64_t d,
                           const wbs::BarrettQ& bq) {
  (void)shoup;  // the Barrett context alone defines the scalar path
  for (size_t i = 0; i < n; ++i) {
    v[i] = bq.AddMod(v[i], bq.MulMod(d, col[i]));
  }
}

void ScalarAmsRowMix(int64_t* counters, size_t rows, const uint64_t* mix,
                     const int64_t* deltas, size_t count) {
  for (size_t j = 0; j < rows; ++j) {
    const uint64_t row_salt = uint64_t(j) * kAmsRowSalt;
    int64_t c = counters[j];
    for (size_t t = 0; t < count; ++t) {
      const uint64_t z = SplitMix((mix[t] ^ row_salt) + kGolden);
      c += (z & 1) ? deltas[t] : -deltas[t];
    }
    counters[j] = c;
  }
}

void ScalarHashItems(const uint64_t* items, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = SplitMix((items[i] ^ kGolden) + kGolden);
  }
}

void ScalarSha256Salted8(uint64_t salt, const uint64_t* items, uint64_t* out) {
  for (int i = 0; i < 8; ++i) out[i] = Sha256SaltedOne(salt, items[i]);
}

}  // namespace internal

namespace {

const KernelDispatch kScalar = {
    "scalar",
    1,
    &internal::ScalarAccumulateMod,
    &internal::ScalarSubtractMod,
    &internal::ScalarSisColumnUpdate,
    &internal::ScalarAmsRowMix,
    &internal::ScalarHashItems,
    &internal::ScalarSha256Salted8,
};

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

bool CpuHasNeon() {
#if defined(__aarch64__)
  return true;  // NEON is architecturally mandatory on aarch64
#else
  return false;
#endif
}

// Best-supported-first candidate order.
const KernelDispatch* SelectBest() {
  if (CpuHasAvx512()) {
    if (const KernelDispatch* k = internal::Avx512Table()) return k;
  }
  if (CpuHasAvx2()) {
    if (const KernelDispatch* k = internal::Avx2Table()) return k;
  }
  if (CpuHasNeon()) {
    if (const KernelDispatch* k = internal::NeonTable()) return k;
  }
  return &kScalar;
}

const KernelDispatch* Select() {
  if (const char* env = std::getenv("WBS_ENGINE_KERNEL");
      env != nullptr && env[0] != '\0') {
    // An unknown name or a level this CPU cannot run degrades to scalar —
    // a bad env var must never crash or silently mis-execute.
    const KernelDispatch* forced = KernelByName(env);
    return forced != nullptr ? forced : &kScalar;
  }
  return SelectBest();
}

std::atomic<const KernelDispatch*> g_kernels{nullptr};

}  // namespace

const KernelDispatch& Kernels() {
  const KernelDispatch* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = Select();
    g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

const KernelDispatch* KernelByName(const std::string& name) {
  if (name == "scalar") return &kScalar;
  if (name == "avx2" && CpuHasAvx2()) return internal::Avx2Table();
  if (name == "avx512" && CpuHasAvx512()) return internal::Avx512Table();
  if (name == "neon" && CpuHasNeon()) return internal::NeonTable();
  return nullptr;
}

std::vector<const KernelDispatch*> AvailableKernels() {
  std::vector<const KernelDispatch*> out;
  if (CpuHasAvx512()) {
    if (const KernelDispatch* k = internal::Avx512Table()) out.push_back(k);
  }
  if (CpuHasAvx2()) {
    if (const KernelDispatch* k = internal::Avx2Table()) out.push_back(k);
  }
  if (CpuHasNeon()) {
    if (const KernelDispatch* k = internal::NeonTable()) out.push_back(k);
  }
  out.push_back(&kScalar);
  return out;
}

std::string DetectedCpuFeatures() {
  std::string s;
  if (CpuHasAvx512()) s += "avx512,";
  if (CpuHasAvx2()) s += "avx2,";
  if (CpuHasNeon()) s += "neon,";
  if (s.empty()) return "scalar-only";
  s.pop_back();
  return s;
}

void internal::ReselectKernels() {
  g_kernels.store(Select(), std::memory_order_release);
}

}  // namespace wbs::simd

namespace wbs {

// Dispatch-routed definitions of the modmath.h merge kernels. In Debug the
// selected table is re-checked against the scalar reference on every call
// (the paranoia half of the bit-identity contract); Release trusts the fuzz
// suite and pays only the indirect call.
void AccumulateMod(uint64_t* acc, const uint64_t* add, size_t n, uint64_t q) {
#ifndef NDEBUG
  const simd::KernelDispatch& k = simd::Kernels();
  if (k.lanes > 1 && n > 0) {
    std::vector<uint64_t> want(acc, acc + n);
    simd::internal::ScalarAccumulateMod(want.data(), add, n, q);
    k.accumulate_mod(acc, add, n, q);
    assert(std::memcmp(acc, want.data(), n * sizeof(uint64_t)) == 0 &&
           "vector AccumulateMod diverged from scalar");
    return;
  }
#endif
  simd::Kernels().accumulate_mod(acc, add, n, q);
}

void SubtractMod(uint64_t* acc, const uint64_t* sub, size_t n, uint64_t q) {
#ifndef NDEBUG
  const simd::KernelDispatch& k = simd::Kernels();
  if (k.lanes > 1 && n > 0) {
    std::vector<uint64_t> want(acc, acc + n);
    simd::internal::ScalarSubtractMod(want.data(), sub, n, q);
    k.subtract_mod(acc, sub, n, q);
    assert(std::memcmp(acc, want.data(), n * sizeof(uint64_t)) == 0 &&
           "vector SubtractMod diverged from scalar");
    return;
  }
#endif
  simd::Kernels().subtract_mod(acc, sub, n, q);
}

}  // namespace wbs
