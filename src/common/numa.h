// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Minimal NUMA topology discovery and thread placement, with no libnuma
// dependency: node CPU lists are parsed from
// /sys/devices/system/node/node<N>/cpulist and threads are pinned with
// pthread_setaffinity_np. On single-node machines (and on platforms
// without the sysfs tree) every call degrades to a no-op, so callers can
// pin unconditionally.
//
// Memory placement rides on the first-touch policy: Linux backs a page on
// the node of the CPU that first writes it, so pinning a shard worker
// BEFORE it allocates and warms its sketch state lands that state on the
// worker's node — which is why ShardedIngestor pins inside the worker
// thread body rather than after the fact.

#ifndef WBS_COMMON_NUMA_H_
#define WBS_COMMON_NUMA_H_

#include <cstddef>
#include <vector>

namespace wbs::numa {

/// One NUMA node and the CPUs it owns.
struct Node {
  int id = 0;
  std::vector<int> cpus;
};

/// The machine's node list, parsed from sysfs once and cached. Always
/// non-empty: when the sysfs tree is missing (non-Linux, containers with
/// masked /sys) a single synthetic node 0 covering all online CPUs is
/// returned.
const std::vector<Node>& Topology();

/// Number of NUMA nodes (1 on non-NUMA machines).
size_t NodeCount();

/// Pins the calling thread to the CPUs of node `node_index` (an index into
/// Topology(), not a node id). Returns false (leaving affinity unchanged)
/// if the index is out of range, the node has no CPUs, or the syscall is
/// rejected (e.g. a container with a restricted affinity mask).
bool PinSelfToNode(size_t node_index);

}  // namespace wbs::numa

#endif  // WBS_COMMON_NUMA_H_
