// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// AVX2 kernel table: 4×u64 lanes for the mod-q and hash kernels, 8×u32
// message-parallel lanes for SHA-256. Compiled with -mavx2 for x86 targets
// only (see CMakeLists); callers reach it solely through the dispatch
// table after a runtime __builtin_cpu_supports check.
//
// Correctness notes that make the lane code simple:
//   * q < 2^62 (BarrettQ::kMaxModulus), so every compared quantity — sums
//     below 2q, operands below q — fits in 62..63 bits. Signed 64-bit lane
//     compares (_mm256_cmpgt_epi64) are therefore exact without the usual
//     sign-bias XOR.
//   * Wrapping uint64 lane arithmetic is exact mod 2^64, so `a - b + q`
//     computed with wraparound equals the scalar two-branch SubMod.
//   * The Shoup product for the SIS column update lands in [0, 2q); one
//     conditional subtract yields the canonical residue, bit-identical to
//     BarrettQ::MulMod (see DESIGN.md "Barrett lane-split").

#include "common/simd_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "common/modmath.h"

namespace wbs::simd::internal {
namespace {

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kMix1 = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kMix2 = 0x94d049bb133111ebULL;
constexpr uint64_t kAmsRowSalt = 0xd1342543de82ef95ULL;

inline __m256i Load(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void Store(uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// Low 64 bits of a*b per lane (AVX2 has only 32x32→64 multiplies).
inline __m256i Mullo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);  // a_lo * b_lo
  const __m256i mid = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),   // a_hi * b_lo
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));  // a_lo * b_hi
  return _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
}

// High 64 bits of a*b per lane, exact carries via 4-way 32-bit split.
inline __m256i Mulhi64(__m256i a, __m256i b) {
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i ah = _mm256_srli_epi64(a, 32);
  const __m256i bh = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, bh);
  const __m256i hl = _mm256_mul_epu32(ah, b);
  const __m256i hh = _mm256_mul_epu32(ah, bh);
  // carry out of bits [32, 64) of the full product
  const __m256i mid = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(ll, 32), _mm256_and_si256(lh, mask32)),
      _mm256_and_si256(hl, mask32));
  return _mm256_add_epi64(
      _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(hl, 32), _mm256_srli_epi64(mid, 32)));
}

// r - (r >= q ? q : 0) for r in [0, 2q), q < 2^62: signed compare is exact.
inline __m256i CondSubQ(__m256i r, __m256i vq) {
  const __m256i lt = _mm256_cmpgt_epi64(vq, r);  // r < q
  return _mm256_sub_epi64(r, _mm256_andnot_si256(lt, vq));
}

// SplitMix64 finalizer on 4 lanes (input is the already-incremented state).
inline __m256i SplitMix4(__m256i z) {
  z = Mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
              _mm256_set1_epi64x(int64_t(kMix1)));
  z = Mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
              _mm256_set1_epi64x(int64_t(kMix2)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

void Avx2AccumulateMod(uint64_t* acc, const uint64_t* add, size_t n,
                       uint64_t q) {
  const __m256i vq = _mm256_set1_epi64x(int64_t(q));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Store(acc + i, CondSubQ(_mm256_add_epi64(Load(acc + i), Load(add + i)),
                            vq));
  }
  ScalarAccumulateMod(acc + i, add + i, n - i, q);
}

void Avx2SubtractMod(uint64_t* acc, const uint64_t* sub, size_t n,
                     uint64_t q) {
  const __m256i vq = _mm256_set1_epi64x(int64_t(q));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a = Load(acc + i);
    const __m256i b = Load(sub + i);
    const __m256i lt = _mm256_cmpgt_epi64(b, a);  // a < b → wrap, add q back
    const __m256i r = _mm256_add_epi64(_mm256_sub_epi64(a, b),
                                       _mm256_and_si256(lt, vq));
    Store(acc + i, r);
  }
  ScalarSubtractMod(acc + i, sub + i, n - i, q);
}

void Avx2SisColumnUpdate(uint64_t* v, const uint64_t* col,
                         const uint64_t* shoup, size_t n, uint64_t d,
                         const wbs::BarrettQ& bq) {
  const __m256i vq = _mm256_set1_epi64x(int64_t(bq.q));
  const __m256i vd = _mm256_set1_epi64x(int64_t(d));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i w = Load(col + i);
    const __m256i wp = Load(shoup + i);
    // Shoup: q_est = hi64(w' * d); r = w*d - q_est*q  ∈ [0, 2q).
    const __m256i q_est = Mulhi64(wp, vd);
    const __m256i r = CondSubQ(
        _mm256_sub_epi64(Mullo64(w, vd), Mullo64(q_est, vq)), vq);
    Store(v + i, CondSubQ(_mm256_add_epi64(Load(v + i), r), vq));
  }
  ScalarSisColumnUpdate(v + i, col + i, shoup + i, n - i, d, bq);
}

void Avx2AmsRowMix(int64_t* counters, size_t rows, const uint64_t* mix,
                   const int64_t* deltas, size_t count) {
  const __m256i vgolden = _mm256_set1_epi64x(int64_t(kGolden));
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i zero = _mm256_setzero_si256();
  for (size_t j = 0; j < rows; ++j) {
    const __m256i vsalt = _mm256_set1_epi64x(int64_t(uint64_t(j) * kAmsRowSalt));
    __m256i accum = zero;  // wrapping u64 lane sums; order-independent
    size_t t = 0;
    for (; t + 4 <= count; t += 4) {
      const __m256i z = SplitMix4(_mm256_add_epi64(
          _mm256_xor_si256(Load(mix + t), vsalt), vgolden));
      // sign bit set → +delta, clear → -delta (two's complement via mask).
      const __m256i neg =
          _mm256_cmpeq_epi64(_mm256_and_si256(z, one), zero);
      const __m256i d = Load(reinterpret_cast<const uint64_t*>(deltas) + t);
      accum = _mm256_add_epi64(
          accum, _mm256_sub_epi64(_mm256_xor_si256(d, neg), neg));
    }
    alignas(32) uint64_t lanes[4];
    Store(lanes, accum);
    uint64_t c = uint64_t(counters[j]) + lanes[0] + lanes[1] + lanes[2] +
                 lanes[3];
    // Scalar tail inline (ScalarAmsRowMix would re-derive the salt from a
    // row index of 0, not j, so it cannot serve as the tail here).
    for (; t < count; ++t) {
      uint64_t s = (mix[t] ^ (uint64_t(j) * kAmsRowSalt)) + kGolden;
      s = (s ^ (s >> 30)) * kMix1;
      s = (s ^ (s >> 27)) * kMix2;
      s ^= s >> 31;
      c += (s & 1) ? uint64_t(deltas[t]) : uint64_t(0) - uint64_t(deltas[t]);
    }
    counters[j] = int64_t(c);
  }
}

void Avx2HashItems(const uint64_t* items, size_t n, uint64_t* out) {
  const __m256i vgolden = _mm256_set1_epi64x(int64_t(kGolden));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Store(out + i, SplitMix4(_mm256_add_epi64(
                       _mm256_xor_si256(Load(items + i), vgolden), vgolden)));
  }
  ScalarHashItems(items + i, n - i, out + i);
}

// ---------------------------------------------------------------------------
// 8-message-parallel SHA-256: one 16-byte salt||item message per 32-bit
// lane, all eight compressed in lock step. Only w2/w3 differ across lanes.

inline __m256i Rotr32(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

constexpr uint32_t kShaK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

void Avx2Sha256Salted8(uint64_t salt, const uint64_t* items, uint64_t* out) {
  alignas(32) uint32_t hi[8];
  alignas(32) uint32_t lo[8];
  for (int i = 0; i < 8; ++i) {
    hi[i] = uint32_t(items[i] >> 32);
    lo[i] = uint32_t(items[i]);
  }
  __m256i w[64];
  w[0] = _mm256_set1_epi32(int32_t(uint32_t(salt >> 32)));
  w[1] = _mm256_set1_epi32(int32_t(uint32_t(salt)));
  w[2] = _mm256_load_si256(reinterpret_cast<const __m256i*>(hi));
  w[3] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lo));
  w[4] = _mm256_set1_epi32(int32_t(0x80000000u));
  for (int i = 5; i < 15; ++i) w[i] = _mm256_setzero_si256();
  w[15] = _mm256_set1_epi32(128);
  for (int i = 16; i < 64; ++i) {
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(Rotr32(w[i - 15], 7), Rotr32(w[i - 15], 18)),
        _mm256_srli_epi32(w[i - 15], 3));
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(Rotr32(w[i - 2], 17), Rotr32(w[i - 2], 19)),
        _mm256_srli_epi32(w[i - 2], 10));
    w[i] = _mm256_add_epi32(_mm256_add_epi32(w[i - 16], s0),
                            _mm256_add_epi32(w[i - 7], s1));
  }
  const __m256i init0 = _mm256_set1_epi32(int32_t(0x6a09e667u));
  const __m256i init1 = _mm256_set1_epi32(int32_t(0xbb67ae85u));
  __m256i a = init0;
  __m256i b = init1;
  __m256i c = _mm256_set1_epi32(int32_t(0x3c6ef372u));
  __m256i d = _mm256_set1_epi32(int32_t(0xa54ff53au));
  __m256i e = _mm256_set1_epi32(int32_t(0x510e527fu));
  __m256i f = _mm256_set1_epi32(int32_t(0x9b05688cu));
  __m256i g = _mm256_set1_epi32(int32_t(0x1f83d9abu));
  __m256i h = _mm256_set1_epi32(int32_t(0x5be0cd19u));
  for (int i = 0; i < 64; ++i) {
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(Rotr32(e, 6), Rotr32(e, 11)), Rotr32(e, 25));
    const __m256i ch = _mm256_xor_si256(
        _mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
    const __m256i temp1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, s1), _mm256_add_epi32(ch, w[i])),
        _mm256_set1_epi32(int32_t(kShaK[i])));
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(Rotr32(a, 2), Rotr32(a, 13)), Rotr32(a, 22));
    const __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    const __m256i temp2 = _mm256_add_epi32(s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(temp1, temp2);
  }
  alignas(32) uint32_t s0_lanes[8];
  alignas(32) uint32_t s1_lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(s0_lanes),
                     _mm256_add_epi32(init0, a));
  _mm256_store_si256(reinterpret_cast<__m256i*>(s1_lanes),
                     _mm256_add_epi32(init1, b));
  for (int i = 0; i < 8; ++i) {
    out[i] = (uint64_t(s0_lanes[i]) << 32) | s1_lanes[i];
  }
}

const KernelDispatch* Avx2Table() {
  static const KernelDispatch table = {
      "avx2",
      4,
      &Avx2AccumulateMod,
      &Avx2SubtractMod,
      &Avx2SisColumnUpdate,
      &Avx2AmsRowMix,
      &Avx2HashItems,
      &Avx2Sha256Salted8,
  };
  return &table;
}

}  // namespace wbs::simd::internal

#else  // !x86

namespace wbs::simd::internal {
const KernelDispatch* Avx2Table() { return nullptr; }
}  // namespace wbs::simd::internal

#endif
