// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Internal glue between the per-ISA kernel translation units and the
// dispatch core in simd.cc. Not part of the public surface — include
// common/simd.h instead.
//
// Each ISA file (simd_avx2.cc / simd_avx512.cc / simd_neon.cc) is compiled
// with that ISA's flags and exposes exactly one table getter; a getter
// returns nullptr when its ISA is compiled out for the target arch, so the
// selection logic in simd.cc stays arch-agnostic. ISA files fall back to
// the Scalar* reference kernels below for entries they do not specialize
// and for vector-remainder tails — the scalar kernels are the definition
// of correct output, everything else must match them bit for bit.

#ifndef WBS_COMMON_SIMD_INTERNAL_H_
#define WBS_COMMON_SIMD_INTERNAL_H_

#include "common/simd.h"

namespace wbs::simd::internal {

// Per-ISA tables. nullptr when compiled out (wrong target arch); the
// caller additionally checks runtime CPU support before selecting one.
const KernelDispatch* Avx2Table();
const KernelDispatch* Avx512Table();
const KernelDispatch* NeonTable();

// Portable reference kernels (defined in simd.cc). Bit-exact ports of the
// pre-dispatch scalar code paths; see each KernelDispatch field for the
// contract.
void ScalarAccumulateMod(uint64_t* acc, const uint64_t* add, size_t n,
                         uint64_t q);
void ScalarSubtractMod(uint64_t* acc, const uint64_t* sub, size_t n,
                       uint64_t q);
void ScalarSisColumnUpdate(uint64_t* v, const uint64_t* col,
                           const uint64_t* shoup, size_t n, uint64_t d,
                           const wbs::BarrettQ& bq);
void ScalarAmsRowMix(int64_t* counters, size_t rows, const uint64_t* mix,
                     const int64_t* deltas, size_t count);
void ScalarHashItems(const uint64_t* items, size_t n, uint64_t* out);
void ScalarSha256Salted8(uint64_t salt, const uint64_t* items, uint64_t* out);

#if defined(__x86_64__) || defined(__i386__)
// The AVX2 8-lane SHA-256 (one message per 32-bit lane) is the widest
// useful shape for this primitive — the AVX-512 table points at the same
// function rather than duplicating it at 16 lanes nobody batches for.
void Avx2Sha256Salted8(uint64_t salt, const uint64_t* items, uint64_t* out);
#endif

}  // namespace wbs::simd::internal

#endif  // WBS_COMMON_SIMD_INTERNAL_H_
