// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "common/numa.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace wbs::numa {

namespace {

// Parses a sysfs cpulist string like "0-3,8,10-11" into CPU ids.
std::vector<int> ParseCpuList(const char* s) {
  std::vector<int> cpus;
  const char* p = s;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    long lo = std::strtol(p, &end, 10);
    if (end == p) break;
    long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtol(p + 1, &end, 10);
      if (end == p + 1) break;
      p = end;
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(int(c));
    if (*p == ',') ++p;
  }
  return cpus;
}

std::vector<Node> DiscoverTopology() {
  std::vector<Node> nodes;
#if defined(__linux__)
  for (int id = 0;; ++id) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(id) + "/cpulist";
    FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) break;
    char buf[4096];
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    Node node;
    node.id = id;
    node.cpus = ParseCpuList(buf);
    if (!node.cpus.empty()) nodes.push_back(std::move(node));
  }
#endif
  if (nodes.empty()) {
    // No sysfs topology: one synthetic node spanning all online CPUs.
    Node node;
    node.id = 0;
#if defined(__linux__)
    const long ncpu = sysconf(_SC_NPROCESSORS_ONLN);
    for (long c = 0; c < (ncpu > 0 ? ncpu : 1); ++c) node.cpus.push_back(int(c));
#else
    node.cpus.push_back(0);
#endif
    nodes.push_back(std::move(node));
  }
  return nodes;
}

}  // namespace

const std::vector<Node>& Topology() {
  static const std::vector<Node> nodes = DiscoverTopology();
  return nodes;
}

size_t NodeCount() { return Topology().size(); }

bool PinSelfToNode(size_t node_index) {
  const std::vector<Node>& nodes = Topology();
  if (node_index >= nodes.size() || nodes[node_index].cpus.empty()) {
    return false;
  }
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : nodes[node_index].cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace wbs::numa
