// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Modular arithmetic over 64-bit moduli (via unsigned __int128), primality
// testing, prime/safe-prime search, and generator finding. These primitives
// back the discrete-log CRHF (Theorem 2.5 of the paper), Karp-Rabin
// fingerprints, and the Z_q linear algebra used by the SIS sketches.

#ifndef WBS_COMMON_MODMATH_H_
#define WBS_COMMON_MODMATH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace wbs {

using u128 = unsigned __int128;

/// (a * b) mod m without overflow for any 64-bit operands.
inline uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>((u128)a * b % m);
}

/// (a + b) mod m without overflow.
inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t m) {
  a %= m;
  b %= m;
  uint64_t s = a + b;
  if (s < a || s >= m) s -= m;
  return s;
}

/// (a - b) mod m, result in [0, m).
inline uint64_t SubMod(uint64_t a, uint64_t b, uint64_t m) {
  a %= m;
  b %= m;
  return a >= b ? a - b : a + (m - b);
}

/// Canonical Z_m residue of a signed value, in [0, m). The negative branch
/// takes the magnitude via two's complement so INT64_MIN is handled without
/// signed-overflow UB.
inline uint64_t ReduceSigned(int64_t v, uint64_t m) {
  if (v >= 0) return uint64_t(v) % m;
  const uint64_t mag = uint64_t(0) - uint64_t(v);
  const uint64_t r = mag % m;
  return r == 0 ? 0 : m - r;
}

/// Barrett reduction context for a fixed modulus q (2 <= q < 2^62).
///
/// MulMod costs a 128-bit division per call; when the modulus is fixed
/// across a hot loop (the SIS column update, Z_q merges, the rank sketch)
/// the division can be replaced by two multiplications against the
/// precomputed constant mu = floor(2^128 / q). Results are the canonical
/// residue in [0, q) — bit-identical to the `% q` path by definition of
/// division, which tests assert on random operands.
struct BarrettQ {
  /// Largest accepted modulus. Reduce() needs 3q < 2^64 to finish with two
  /// conditional subtractions, and the SIMD kernels additionally rely on
  /// every intermediate (< 2q) fitting a signed 64-bit lane compare — both
  /// hold exactly when q < 2^62.
  static constexpr uint64_t kMaxModulus = (uint64_t{1} << 62) - 1;

  uint64_t q = 1;
  uint64_t mu_hi = 0;  ///< high 64 bits of floor(2^128 / q)
  uint64_t mu_lo = 0;  ///< low 64 bits of floor(2^128 / q)

  BarrettQ() = default;
  explicit BarrettQ(uint64_t modulus) : q(modulus) {
    assert(modulus >= 2 && modulus <= kMaxModulus &&
           "BarrettQ modulus out of range [2, 2^62)");
    // floor(2^128 / q) from floor((2^128 - 1) / q), fixing up the exact-
    // division case. The u128 division only runs once per modulus.
    const u128 all_ones = ~u128{0};
    u128 mu = all_ones / q;
    if (all_ones % q == q - 1) ++mu;
    mu_hi = uint64_t(mu >> 64);
    mu_lo = uint64_t(mu);
  }

  /// Checked construction for moduli that arrive from config or the wire:
  /// rejects q < 2 and q > kMaxModulus instead of asserting.
  static Result<BarrettQ> Make(uint64_t modulus) {
    if (modulus < 2 || modulus > kMaxModulus) {
      return Status::InvalidArgument(
          "BarrettQ modulus must be in [2, 2^62), got " +
          std::to_string(modulus));
    }
    return BarrettQ(modulus);
  }

  /// x mod q for any 128-bit x. The quotient estimate floor(x * mu / 2^128)
  /// undershoots floor(x / q) by at most 2, so the remainder fits in 64 bits
  /// (3q < 2^64 needs q < 2^62) and two conditional subtractions finish.
  uint64_t Reduce(u128 x) const {
    const uint64_t x_lo = uint64_t(x);
    const uint64_t x_hi = uint64_t(x >> 64);
    // High 128 bits of the 256-bit product x * mu, with exact carries.
    const u128 lo_lo = u128(x_lo) * mu_lo;
    const u128 lo_hi = u128(x_lo) * mu_hi;
    const u128 hi_lo = u128(x_hi) * mu_lo;
    const u128 mid =
        u128(uint64_t(lo_hi)) + uint64_t(hi_lo) + uint64_t(lo_lo >> 64);
    const u128 qhat =
        u128(x_hi) * mu_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);
    uint64_t r = uint64_t(x - qhat * q);  // true remainder < 3q < 2^64
    if (r >= q) r -= q;
    if (r >= q) r -= q;
    return r;
  }

  /// (a * b) mod q for any 64-bit a, b. Same value as wbs::MulMod(a, b, q).
  uint64_t MulMod(uint64_t a, uint64_t b) const { return Reduce(u128(a) * b); }

  /// (a + b) mod q for already-reduced a, b < q (skips the `%` preamble of
  /// the general AddMod; q < 2^63 means the sum cannot overflow).
  uint64_t AddMod(uint64_t a, uint64_t b) const {
    const uint64_t s = a + b;
    return s >= q ? s - q : s;
  }

  /// (a - b) mod q for already-reduced a, b < q.
  uint64_t SubMod(uint64_t a, uint64_t b) const {
    return a >= b ? a - b : a + (q - b);
  }
};

/// acc[i] = (acc[i] + add[i]) mod q over n already-reduced entries (< q).
/// Matches AddMod(acc[i], add[i], q) bit-for-bit; it is the shared merge
/// kernel of the Z_q linear sketches (SIS chunk vectors, rank sketch
/// state). Routed through the runtime-dispatched SIMD table
/// (common/simd.h); Debug builds re-check the vector result against the
/// scalar reference on every call.
void AccumulateMod(uint64_t* acc, const uint64_t* add, size_t n, uint64_t q);

/// acc[i] = (acc[i] - sub[i]) mod q over n already-reduced entries (< q).
/// Exact inverse of AccumulateMod — the unmerge kernel behind the engine's
/// incremental merge cache. SIMD-dispatched like AccumulateMod.
void SubtractMod(uint64_t* acc, const uint64_t* sub, size_t n, uint64_t q);

/// (base ^ exp) mod m. PowMod(x, 0, m) == 1 % m.
uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m);

/// Extended GCD: returns g = gcd(a, b) and sets x, y with a*x + b*y = g.
int64_t ExtGcd(int64_t a, int64_t b, int64_t* x, int64_t* y);

/// Multiplicative inverse of a mod m. Requires gcd(a, m) == 1; returns 0 if
/// the inverse does not exist.
uint64_t InvMod(uint64_t a, uint64_t m);

/// Deterministic Miller-Rabin, correct for all 64-bit inputs.
bool IsPrime(uint64_t n);

/// Smallest prime >= n (n >= 2). Saturates near 2^64 (asserts in debug).
uint64_t NextPrime(uint64_t n);

/// A random prime with exactly `bits` bits (2 <= bits <= 62), using the
/// caller-supplied word source for candidates.
template <typename Rng>
uint64_t RandomPrime(int bits, Rng&& rng) {
  const uint64_t lo = bits <= 1 ? 2 : (uint64_t{1} << (bits - 1));
  const uint64_t span = bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << (bits - 1));
  for (;;) {
    uint64_t cand = lo + rng() % span;
    cand |= 1;  // odd
    if (cand >= lo && IsPrime(cand)) return cand;
  }
}

/// A safe prime p = 2q + 1 (q prime) with exactly `bits` bits. Used as the
/// modulus of the discrete-log hash so that the subgroup of quadratic
/// residues has prime order q.
template <typename Rng>
uint64_t RandomSafePrime(int bits, Rng&& rng) {
  const uint64_t lo = uint64_t{1} << (bits - 1);
  const uint64_t span = uint64_t{1} << (bits - 1);
  for (;;) {
    uint64_t q = (lo >> 1) + rng() % (span >> 1);
    q |= 1;
    if (!IsPrime(q)) continue;
    uint64_t p = 2 * q + 1;
    if (p >= lo && p < lo + span && IsPrime(p)) return p;
  }
}

/// Factorizes n by trial division + Pollard rho; returns the distinct prime
/// factors. Intended for the (small) group orders used in generator search.
std::vector<uint64_t> DistinctPrimeFactors(uint64_t n);

/// Finds a generator of the multiplicative group Z_p^* for prime p.
template <typename Rng>
uint64_t FindGenerator(uint64_t p, Rng&& rng) {
  const uint64_t order = p - 1;
  const std::vector<uint64_t> factors = DistinctPrimeFactors(order);
  for (;;) {
    uint64_t g = 2 + rng() % (p - 3);
    bool is_gen = true;
    for (uint64_t f : factors) {
      if (PowMod(g, order / f, p) == 1) {
        is_gen = false;
        break;
      }
    }
    if (is_gen) return g;
  }
}

/// Finds a generator of the order-q subgroup of quadratic residues of Z_p^*
/// where p = 2q + 1 is a safe prime: any square g^2 != 1 works.
template <typename Rng>
uint64_t FindQuadraticResidueGenerator(uint64_t p, Rng&& rng) {
  for (;;) {
    uint64_t h = 2 + rng() % (p - 3);
    uint64_t g = MulMod(h, h, p);
    if (g != 1) return g;
  }
}

}  // namespace wbs

#endif  // WBS_COMMON_MODMATH_H_
