// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Modular arithmetic over 64-bit moduli (via unsigned __int128), primality
// testing, prime/safe-prime search, and generator finding. These primitives
// back the discrete-log CRHF (Theorem 2.5 of the paper), Karp-Rabin
// fingerprints, and the Z_q linear algebra used by the SIS sketches.

#ifndef WBS_COMMON_MODMATH_H_
#define WBS_COMMON_MODMATH_H_

#include <cstdint>
#include <vector>

namespace wbs {

using u128 = unsigned __int128;

/// (a * b) mod m without overflow for any 64-bit operands.
inline uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>((u128)a * b % m);
}

/// (a + b) mod m without overflow.
inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t m) {
  a %= m;
  b %= m;
  uint64_t s = a + b;
  if (s < a || s >= m) s -= m;
  return s;
}

/// (a - b) mod m, result in [0, m).
inline uint64_t SubMod(uint64_t a, uint64_t b, uint64_t m) {
  a %= m;
  b %= m;
  return a >= b ? a - b : a + (m - b);
}

/// (base ^ exp) mod m. PowMod(x, 0, m) == 1 % m.
uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m);

/// Extended GCD: returns g = gcd(a, b) and sets x, y with a*x + b*y = g.
int64_t ExtGcd(int64_t a, int64_t b, int64_t* x, int64_t* y);

/// Multiplicative inverse of a mod m. Requires gcd(a, m) == 1; returns 0 if
/// the inverse does not exist.
uint64_t InvMod(uint64_t a, uint64_t m);

/// Deterministic Miller-Rabin, correct for all 64-bit inputs.
bool IsPrime(uint64_t n);

/// Smallest prime >= n (n >= 2). Saturates near 2^64 (asserts in debug).
uint64_t NextPrime(uint64_t n);

/// A random prime with exactly `bits` bits (2 <= bits <= 62), using the
/// caller-supplied word source for candidates.
template <typename Rng>
uint64_t RandomPrime(int bits, Rng&& rng) {
  const uint64_t lo = bits <= 1 ? 2 : (uint64_t{1} << (bits - 1));
  const uint64_t span = bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << (bits - 1));
  for (;;) {
    uint64_t cand = lo + rng() % span;
    cand |= 1;  // odd
    if (cand >= lo && IsPrime(cand)) return cand;
  }
}

/// A safe prime p = 2q + 1 (q prime) with exactly `bits` bits. Used as the
/// modulus of the discrete-log hash so that the subgroup of quadratic
/// residues has prime order q.
template <typename Rng>
uint64_t RandomSafePrime(int bits, Rng&& rng) {
  const uint64_t lo = uint64_t{1} << (bits - 1);
  const uint64_t span = uint64_t{1} << (bits - 1);
  for (;;) {
    uint64_t q = (lo >> 1) + rng() % (span >> 1);
    q |= 1;
    if (!IsPrime(q)) continue;
    uint64_t p = 2 * q + 1;
    if (p >= lo && p < lo + span && IsPrime(p)) return p;
  }
}

/// Factorizes n by trial division + Pollard rho; returns the distinct prime
/// factors. Intended for the (small) group orders used in generator search.
std::vector<uint64_t> DistinctPrimeFactors(uint64_t n);

/// Finds a generator of the multiplicative group Z_p^* for prime p.
template <typename Rng>
uint64_t FindGenerator(uint64_t p, Rng&& rng) {
  const uint64_t order = p - 1;
  const std::vector<uint64_t> factors = DistinctPrimeFactors(order);
  for (;;) {
    uint64_t g = 2 + rng() % (p - 3);
    bool is_gen = true;
    for (uint64_t f : factors) {
      if (PowMod(g, order / f, p) == 1) {
        is_gen = false;
        break;
      }
    }
    if (is_gen) return g;
  }
}

/// Finds a generator of the order-q subgroup of quadratic residues of Z_p^*
/// where p = 2q + 1 is a safe prime: any square g^2 != 1 works.
template <typename Rng>
uint64_t FindQuadraticResidueGenerator(uint64_t p, Rng&& rng) {
  for (;;) {
    uint64_t h = 2 + rng() % (p - 3);
    uint64_t g = MulMod(h, h, p);
    if (g != 1) return g;
  }
}

}  // namespace wbs

#endif  // WBS_COMMON_MODMATH_H_
