// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Bit-level utilities and information-theoretic space accounting.
//
// The paper's results are statements about *bits of memory*, so every data
// structure in this library reports SpaceBits(): the number of bits a careful
// encoder would need to write down the structure's current state. The helpers
// here define the costing conventions used across modules.

#ifndef WBS_COMMON_BITS_H_
#define WBS_COMMON_BITS_H_

#include <bit>
#include <cstdint>
#include <cstddef>

namespace wbs {

/// Number of bits needed to represent the nonnegative value v (>= 1 bit).
/// BitsForValue(0) == 1 by convention (a register holding 0 still exists).
inline uint64_t BitsForValue(uint64_t v) {
  return v == 0 ? 1 : static_cast<uint64_t>(std::bit_width(v));
}

/// Bits to index into a universe of size n (ceil(log2 n)), >= 1.
inline uint64_t BitsForUniverse(uint64_t n) {
  if (n <= 2) return 1;
  return static_cast<uint64_t>(std::bit_width(n - 1));
}

/// Bits to store a counter that may reach up to max_count.
inline uint64_t BitsForCounter(uint64_t max_count) {
  return BitsForValue(max_count);
}

/// ceil(log2(x)) for x >= 1.
inline uint64_t CeilLog2(uint64_t x) {
  if (x <= 1) return 0;
  return static_cast<uint64_t>(std::bit_width(x - 1));
}

/// floor(log2(x)) for x >= 1.
inline uint64_t FloorLog2(uint64_t x) {
  return static_cast<uint64_t>(std::bit_width(x)) - 1;
}

/// Round up to the next power of two.
inline uint64_t NextPow2(uint64_t x) { return std::bit_ceil(x); }

/// True if x is a power of two (x > 0).
inline bool IsPow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Reverse the low `width` bits of x.
inline uint64_t ReverseBits(uint64_t x, int width) {
  uint64_t r = 0;
  for (int i = 0; i < width; ++i) {
    r = (r << 1) | ((x >> i) & 1);
  }
  return r;
}

/// Accumulates the space cost of a composite structure. Each component adds
/// its contribution; Total() is what SpaceBits() implementations return.
class SpaceMeter {
 public:
  SpaceMeter() = default;

  /// Add the cost of one value register currently holding `v`.
  void AddValue(uint64_t v) { bits_ += BitsForValue(v); }

  /// Add the cost of one identifier drawn from a universe of size `n`.
  void AddUniverseId(uint64_t n) { bits_ += BitsForUniverse(n); }

  /// Add a raw bit count (e.g. a fixed-width field).
  void AddBits(uint64_t bits) { bits_ += bits; }

  uint64_t Total() const { return bits_; }

 private:
  uint64_t bits_ = 0;
};

}  // namespace wbs

#endif  // WBS_COMMON_BITS_H_
