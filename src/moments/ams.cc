// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "moments/ams.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/simd.h"
#include "linalg/matrix_zq.h"

namespace wbs::moments {

AmsF2Sketch::AmsF2Sketch(uint64_t universe, size_t rows,
                         wbs::RandomTape* tape)
    : universe_(universe), tape_(tape), sign_seed_(tape->NextWord()) {
  size_t r = ((rows + 5) / 6) * 6;  // groups of 6
  if (r == 0) r = 6;
  counters_.assign(r, 0);
}

int AmsF2Sketch::Sign(size_t row, uint64_t item) const {
  uint64_t s = sign_seed_ ^ (row * 0xd1342543de82ef95ULL) ^
               (item * 0x9e3779b97f4a7c15ULL);
  return (wbs::SplitMix64(&s) & 1) ? 1 : -1;
}

Status AmsF2Sketch::Update(const stream::TurnstileUpdate& u) {
  if (u.item >= universe_) {
    return Status::OutOfRange("AmsF2Sketch: item out of universe");
  }
  for (size_t j = 0; j < counters_.size(); ++j) {
    counters_[j] += u.delta * Sign(j, u.item);
  }
  return Status::OK();
}

Status AmsF2Sketch::ApplyRun(const stream::TurnstileUpdate* data,
                             size_t count) {
  for (size_t t = 0; t < count; ++t) {
    if (data[t].item >= universe_) {
      return Status::OutOfRange("AmsF2Sketch: item out of universe");
    }
  }
  run_mix_.resize(count);
  run_delta_.resize(count);
  for (size_t t = 0; t < count; ++t) {
    run_mix_[t] = sign_seed_ ^ (data[t].item * 0x9e3779b97f4a7c15ULL);
    run_delta_[t] = data[t].delta;
  }
#ifndef NDEBUG
  // Paranoia half of the bit-identity contract: replay the run with the
  // original row loop and require the kernel to agree counter for counter.
  std::vector<int64_t> want(counters_);
  for (size_t j = 0; j < want.size(); ++j) {
    const uint64_t row_salt = j * 0xd1342543de82ef95ULL;
    int64_t c = want[j];
    for (size_t t = 0; t < count; ++t) {
      uint64_t s = run_mix_[t] ^ row_salt;
      c += (wbs::SplitMix64(&s) & 1) ? data[t].delta : -data[t].delta;
    }
    want[j] = c;
  }
#endif
  simd::Kernels().ams_row_mix(counters_.data(), counters_.size(),
                              run_mix_.data(), run_delta_.data(), count);
  assert(counters_ == want && "SIMD AMS row mix diverged from scalar");
  return Status::OK();
}

Status AmsF2Sketch::MergeFrom(const AmsF2Sketch& other) {
  if (universe_ != other.universe_ || sign_seed_ != other.sign_seed_ ||
      counters_.size() != other.counters_.size()) {
    return Status::FailedPrecondition(
        "AmsF2Sketch::MergeFrom: sketches do not share a sign matrix");
  }
  for (size_t j = 0; j < counters_.size(); ++j) {
    counters_[j] += other.counters_[j];
  }
  return Status::OK();
}

Status AmsF2Sketch::UnmergeFrom(const AmsF2Sketch& other) {
  if (universe_ != other.universe_ || sign_seed_ != other.sign_seed_ ||
      counters_.size() != other.counters_.size()) {
    return Status::FailedPrecondition(
        "AmsF2Sketch::UnmergeFrom: sketches do not share a sign matrix");
  }
  for (size_t j = 0; j < counters_.size(); ++j) {
    counters_[j] -= other.counters_[j];
  }
  return Status::OK();
}

Status AmsF2Sketch::RestoreCounters(const std::vector<int64_t>& counters) {
  if (counters.size() != counters_.size()) {
    return Status::InvalidArgument(
        "AmsF2Sketch::RestoreCounters: row count mismatch");
  }
  counters_ = counters;
  return Status::OK();
}

double AmsF2Sketch::Query() const {
  const size_t group = 6;
  std::vector<double> means;
  means.reserve(counters_.size() / group);
  for (size_t g = 0; g + group <= counters_.size(); g += group) {
    double s = 0;
    for (size_t j = 0; j < group; ++j) {
      double y = double(counters_[g + j]);
      s += y * y;
    }
    means.push_back(s / double(group));
  }
  if (means.empty()) return 0;
  std::nth_element(means.begin(), means.begin() + means.size() / 2,
                   means.end());
  return means[means.size() / 2];
}

void AmsF2Sketch::SerializeState(core::StateWriter* w) const {
  w->PutU64(sign_seed_);  // the adversary sees the sign matrix
  w->PutU64(counters_.size());
  for (int64_t c : counters_) w->PutI64(c);
}

uint64_t AmsF2Sketch::SpaceBits() const {
  uint64_t bits = 64;  // sign seed
  for (int64_t c : counters_) {
    bits += wbs::BitsForValue(uint64_t(c < 0 ? -c : c)) + 1;
  }
  return bits;
}

AmsKernelAdversary::AmsKernelAdversary(const AmsF2Sketch* victim) {
  // White-box step: reconstruct the sign matrix restricted to the first
  // r+1 items (all information is in the exposed seed) and find an exact
  // integer kernel vector.
  const size_t r = victim->rows();
  const size_t cols = r + 1;
  if (cols > victim->universe()) return;
  std::vector<std::vector<int64_t>> signs(r, std::vector<int64_t>(cols));
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      signs[i][j] = victim->Sign(i, uint64_t(j));
    }
  }
  auto kernel = linalg::ExactIntegerKernelVector(signs);
  if (!kernel.has_value()) return;
  for (size_t j = 0; j < cols; ++j) {
    int64_t x = (*kernel)[j];
    if (x == 0) continue;
    script_.push_back({uint64_t(j), x});
    planted_f2_ += double(x) * double(x);
  }
}

std::optional<stream::TurnstileUpdate> AmsKernelAdversary::NextUpdate(
    const core::StateView&, const double&) {
  if (pos_ >= script_.size()) return std::nullopt;
  return script_[pos_++];
}

Status ExactF2Stream::Update(const stream::TurnstileUpdate& u) {
  if (u.item >= universe_) {
    return Status::OutOfRange("ExactF2Stream: item out of universe");
  }
  int64_t& v = f_[u.item];
  v += u.delta;
  if (v == 0) f_.erase(u.item);
  return Status::OK();
}

double ExactF2Stream::Query() const {
  double s = 0;
  for (const auto& [item, v] : f_) s += double(v) * double(v);
  return s;
}

void ExactF2Stream::SerializeState(core::StateWriter* w) const {
  w->PutU64(f_.size());
  for (const auto& [item, v] : f_) {
    w->PutU64(item);
    w->PutI64(v);
  }
}

uint64_t ExactF2Stream::SpaceBits() const {
  uint64_t bits = 0;
  for (const auto& [item, v] : f_) {
    bits += wbs::BitsForUniverse(universe_) +
            wbs::BitsForValue(uint64_t(v < 0 ? -v : v)) + 1;
  }
  return bits;
}

}  // namespace wbs::moments
