// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Fp moment estimation and the white-box impossibility it illustrates.
//
//  * AmsF2Sketch — the classic [AMS99] F2 estimator: r sign projections
//    y_j = <s_j, f>, estimate = median of row-group means of y_j^2. In the
//    *oblivious* model r = O(1/eps^2) rows suffice. In the white-box model
//    the sign matrix is exposed, and
//
//  * AmsKernelAdversary — the generic attack behind Theorem 1.9's Omega(n):
//    the adversary reads the sign matrix, computes an exact nonzero integer
//    kernel vector x of an r x (r+1) column submatrix (always exists:
//    r+1 > r), and streams the turnstile updates f += x. The sketch becomes
//    identically 0 while F2(f) = ||x||^2 > 0 — the estimator answers 0,
//    violating every finite approximation factor. The attack works against
//    EVERY linear sketch with fewer than n rows, which is exactly why
//    sublinear white-box Fp estimation requires cryptographic hardness
//    (contrast: the SIS sketches of Algorithm 5 / Theorem 1.6, where the
//    kernel vectors a bounded adversary can find have entries >> poly(n)).
//
//  * ExactF2Stream — the Omega(n)-space deterministic baseline that matches
//    the lower bound: it stores f exactly.

#ifndef WBS_MOMENTS_AMS_H_
#define WBS_MOMENTS_AMS_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/game.h"
#include "stream/updates.h"

namespace wbs::moments {

/// The [AMS99] F2 sketch over turnstile streams. The sign matrix is derived
/// from a public seed (part of the exposed state).
class AmsF2Sketch final
    : public core::StreamAlg<stream::TurnstileUpdate, double> {
 public:
  /// `rows` sign projections grouped for median-of-means (rows is rounded up
  /// to a multiple of 6: groups of 6 averaged, median across groups).
  AmsF2Sketch(uint64_t universe, size_t rows, wbs::RandomTape* tape);

  Status Update(const stream::TurnstileUpdate& u) override;

  /// Applies a run of updates with the loops interchanged: rows outside,
  /// items inside. The per-item seed mix is computed once and reused by all
  /// rows, and each counter stays in a register across the run — the
  /// engine's batched-ingest kernel. Counter-for-counter identical to
  /// applying the updates through Update() one at a time (same Sign values;
  /// 64-bit integer sums commute).
  Status ApplyRun(const stream::TurnstileUpdate* data, size_t count);

  /// Median-of-means estimate of F2 = sum_i f_i^2.
  double Query() const override;

  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;
  wbs::RandomTape* MutableTape() override { return tape_; }

  /// Linear merge: counters_[j] += other.counters_[j]. Valid only when both
  /// sketches share the sign matrix (same sign seed and row count); then the
  /// merged sketch is bit-identical to one that ingested the concatenated
  /// stream, because each counter is a linear functional of f.
  Status MergeFrom(const AmsF2Sketch& other);

  /// Exact inverse of MergeFrom: counters_[j] -= other.counters_[j]. Same
  /// sign-matrix requirement.
  Status UnmergeFrom(const AmsF2Sketch& other);

  /// Sign s_j(item) in {-1, +1} — recomputable by the white-box adversary
  /// from the exposed seed.
  int Sign(size_t row, uint64_t item) const;

  size_t rows() const { return counters_.size(); }
  uint64_t universe() const { return universe_; }
  uint64_t sign_seed() const { return sign_seed_; }

  /// The raw counter vector — the sketch's entire mutable state (the sign
  /// matrix is implied by sign_seed()).
  const std::vector<int64_t>& counters() const { return counters_; }

  /// Replaces the counter vector with a previously captured one; the row
  /// count must match (the sign matrix is unaffected).
  Status RestoreCounters(const std::vector<int64_t>& counters);

 private:
  uint64_t universe_;
  wbs::RandomTape* tape_;
  uint64_t sign_seed_;
  std::vector<int64_t> counters_;
  std::vector<uint64_t> run_mix_;    // per-item seed mixes, reused by ApplyRun
  std::vector<int64_t> run_delta_;   // contiguous deltas for the SIMD kernel
};

/// The Theorem 1.9 white-box adversary: computes an integer kernel vector of
/// the victim's sign matrix restricted to items [0, rows] and replays it as
/// a turnstile stream. After the scripted updates the victim's counters are
/// all zero while F2 > 0.
class AmsKernelAdversary final
    : public core::Adversary<stream::TurnstileUpdate, double> {
 public:
  explicit AmsKernelAdversary(const AmsF2Sketch* victim);

  std::optional<stream::TurnstileUpdate> NextUpdate(
      const core::StateView& view, const double& last_answer) override;

  /// Whether kernel computation succeeded (fails only on 128-bit overflow,
  /// i.e. for very wide sketches; see ExactIntegerKernelVector).
  bool armed() const { return !script_.empty(); }
  /// F2 of the planted kernel vector (the true answer the sketch misses).
  double planted_f2() const { return planted_f2_; }

 private:
  std::vector<stream::TurnstileUpdate> script_;
  size_t pos_ = 0;
  double planted_f2_ = 0;
};

/// Deterministic exact F2 (and any Fp) in Theta(n log m) bits — the matching
/// upper bound for the Omega(n) lower bound of Theorem 1.9.
class ExactF2Stream final
    : public core::StreamAlg<stream::TurnstileUpdate, double> {
 public:
  explicit ExactF2Stream(uint64_t universe) : universe_(universe) {}

  Status Update(const stream::TurnstileUpdate& u) override;
  double Query() const override;
  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;

 private:
  uint64_t universe_;
  std::unordered_map<uint64_t, int64_t> f_;
};

}  // namespace wbs::moments

#endif  // WBS_MOMENTS_AMS_H_
