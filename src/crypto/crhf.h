// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Collision-resistant hash functions (Definition 2.4 of the paper) and the
// discrete-log streaming fingerprint of Theorem 2.5 / Section 2.6.
//
// Three constructions:
//
//  * DlogFingerprint — the paper's streaming fingerprint h(U) = g^U mod p,
//    computed incrementally as characters of U arrive. It supports the two
//    algebraic identities Algorithm 6 (pattern matching) relies on:
//       concat:        h(U ∘ V) from h(U), h(V), |V|
//       remove-prefix: h(W) from h(P ∘ W), h(P), |W|
//    Collisions require either computing a discrete log or exhibiting two
//    streams whose integer encodings differ by a multiple of the group order
//    q. Since encodings grow by one bit per stream bit, the latter needs
//    streams of length >= log2(q) bits, so instantiating log2(q) ~ security
//    parameter kappa > log(stream length) + margin makes the fingerprint
//    collision-resistant against T-bounded adversaries — this is exactly the
//    O(log min(T, n)) space dependence of Lemma 2.24.
//
//  * PedersenHash — h(x, y) = g^x * h^y mod p. A collision yields
//    log_g(h), so collision-resistance reduces cleanly to discrete log.
//    Used where a strict compressing CRHF on fixed-size inputs is needed.
//
//  * Sha256Crhf — truncated SHA-256, the random-oracle-model CRHF used to
//    compress identities into a universe of size poly(log n, 1/eps, T)
//    (Theorem 1.2) and neighborhoods into poly(n, T) (Theorem 1.3). The
//    output width is chosen as 2*log2(T) + slack so a T-time (birthday)
//    adversary finds a collision with negligible probability.
//
// SECURITY SCALE-DOWN (documented in DESIGN.md): group moduli here are
// <= 62 bits so experiments run quickly; a production deployment would use a
// 2048-bit group. All interfaces are parameterized by the security parameter
// so the scale-down is a constant choice, not a structural one.

#ifndef WBS_CRYPTO_CRHF_H_
#define WBS_CRYPTO_CRHF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/modmath.h"
#include "common/random.h"

namespace wbs::crypto {

/// Public parameters of the discrete-log group: a safe prime p = 2q + 1 and
/// a generator g of the order-q subgroup of quadratic residues.
struct DlogParams {
  uint64_t p = 0;  ///< safe prime modulus
  uint64_t q = 0;  ///< (p - 1) / 2, prime order of the QR subgroup
  uint64_t g = 0;  ///< generator of the QR subgroup

  /// Generates parameters with a `bits`-bit modulus (17 <= bits <= 62) from
  /// the given tape. Parameters are public; in the white-box model the
  /// adversary sees them anyway.
  static DlogParams Generate(int bits, wbs::RandomTape* tape);

  /// Bits to store one group element (= bits of p).
  uint64_t ElementBits() const;
};

/// The paper's incremental streaming fingerprint h(U) = g^U mod p (Section
/// 2.6), where the bit string U is read as a big-endian integer with exponent
/// arithmetic modulo the group order q.
class DlogFingerprint {
 public:
  explicit DlogFingerprint(const DlogParams& params)
      : params_(params), value_(1), length_bits_(0) {}

  /// Appends one bit b: U' = 2U + b, so h' = h^2 * g^b.
  void AppendBit(int b);

  /// Appends a character of `char_bits` bits (0 <= c < 2^char_bits).
  void AppendChar(uint64_t c, int char_bits);

  /// Current fingerprint value g^U mod p.
  uint64_t value() const { return value_; }

  /// Number of bits appended so far.
  uint64_t length_bits() const { return length_bits_; }

  /// Fingerprint of the concatenation U ∘ V given h(U), h(V) and |V| in bits:
  /// g^(U * 2^|V| + V) = h(U)^(2^|V| mod q) * h(V).
  static uint64_t Concat(const DlogParams& params, uint64_t h_u, uint64_t h_v,
                         uint64_t v_bits);

  /// Fingerprint of the suffix W given h(P ∘ W), h(P) and |W| in bits:
  /// g^W = h(P∘W) * (h(P)^(2^|W| mod q))^-1.
  static uint64_t RemovePrefix(const DlogParams& params, uint64_t h_pw,
                               uint64_t h_p, uint64_t w_bits);

  /// Space of the running fingerprint state (one group element + bit length
  /// tracker), in bits.
  uint64_t SpaceBits() const;

  const DlogParams& params() const { return params_; }

 private:
  DlogParams params_;
  uint64_t value_;
  uint64_t length_bits_;
};

/// Pedersen commitment-style CRHF h(x, y) = g^x * h^y mod p with x, y in Z_q.
/// Finding a collision yields log_g(h) (see PedersenHash::CollisionToDlog in
/// the tests), so this is collision-resistant under the discrete-log
/// assumption in the scaled group.
class PedersenHash {
 public:
  PedersenHash(const DlogParams& params, uint64_t h)
      : params_(params), h_(h) {}

  /// Generates the second base h = g^s for random secretless public s.
  static PedersenHash Generate(const DlogParams& params, wbs::RandomTape* tape);

  /// h(x, y) = g^x * h^y mod p (x, y reduced mod q).
  uint64_t Hash(uint64_t x, uint64_t y) const;

  /// Hashes a vector of field elements by Merkle-Damgard chaining of the
  /// two-to-one compression (group elements are mapped back into Z_q via the
  /// bijection x -> min(x, p - x) - 1 available for safe primes).
  uint64_t HashVector(const std::vector<uint64_t>& xs) const;

  const DlogParams& params() const { return params_; }
  uint64_t base_h() const { return h_; }

 private:
  uint64_t CompressToField(uint64_t group_element) const;

  DlogParams params_;
  uint64_t h_;
};

/// Truncated-SHA-256 CRHF: maps arbitrary byte strings into a `output_bits`-
/// bit universe. With output_bits = 2*log2(T) + slack, a T-time adversary's
/// collision probability is negligible (birthday bound) — the instrument of
/// Theorems 1.2 and 1.3.
class Sha256Crhf {
 public:
  /// `salt` is the public function index (Gen(1^kappa) output); output_bits
  /// in [8, 64] for the integer interface.
  Sha256Crhf(uint64_t salt, int output_bits);

  /// Hash of an arbitrary byte string, truncated to output_bits.
  uint64_t Hash(const void* data, size_t len) const;
  uint64_t Hash(const std::string& s) const { return Hash(s.data(), s.size()); }

  /// Hash of a sequence of 64-bit items (e.g. a sampled-identity list or an
  /// adjacency row).
  uint64_t HashU64s(const std::vector<uint64_t>& items) const;

  /// Hash of a single 64-bit item.
  uint64_t HashU64(uint64_t item) const;

  /// Eight independent HashU64 evaluations in one call, routed through the
  /// runtime-dispatched multi-lane SHA-256 kernel (common/simd.h): on AVX2
  /// one message per 32-bit lane, all eight compressions in lock step.
  /// out[i] == HashU64(items[i]) bit for bit (Debug builds assert it).
  void HashU64x8(const uint64_t items[8], uint64_t out[8]) const;

  int output_bits() const { return output_bits_; }
  uint64_t salt() const { return salt_; }

  /// Output-width rule from Theorem 1.2: enough bits that a T-bounded
  /// adversary cannot find a collision among `items` candidates:
  /// 2*log2(T) + log2(items) + slack, clamped to [8, 64].
  static int OutputBitsForBudget(uint64_t time_budget_t, uint64_t items,
                                 int slack_bits = 10);

 private:
  uint64_t salt_;
  int output_bits_;
};

}  // namespace wbs::crypto

#endif  // WBS_CRYPTO_CRHF_H_
