// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "crypto/crhf.h"

#include <cassert>

#include "common/bits.h"
#include "common/simd.h"
#include "crypto/sha256.h"

namespace wbs::crypto {

DlogParams DlogParams::Generate(int bits, wbs::RandomTape* tape) {
  assert(bits >= 17 && bits <= 62);
  DlogParams out;
  auto rng = [tape]() { return tape->NextWord(); };
  out.p = wbs::RandomSafePrime(bits, rng);
  out.q = (out.p - 1) / 2;
  out.g = wbs::FindQuadraticResidueGenerator(out.p, rng);
  return out;
}

uint64_t DlogParams::ElementBits() const { return wbs::BitsForValue(p); }

void DlogFingerprint::AppendBit(int b) {
  value_ = MulMod(value_, value_, params_.p);
  if (b) value_ = MulMod(value_, params_.g, params_.p);
  ++length_bits_;
}

void DlogFingerprint::AppendChar(uint64_t c, int char_bits) {
  assert(char_bits >= 1 && char_bits <= 63);
  assert(char_bits == 63 || c < (uint64_t{1} << char_bits));
  for (int i = char_bits - 1; i >= 0; --i) {
    AppendBit(static_cast<int>((c >> i) & 1));
  }
}

uint64_t DlogFingerprint::Concat(const DlogParams& params, uint64_t h_u,
                                 uint64_t h_v, uint64_t v_bits) {
  // Exponents live in Z_q (g has order exactly q), so 2^|V| is reduced mod q
  // before the outer power.
  uint64_t shift = PowMod(2, v_bits, params.q);
  uint64_t lifted = PowMod(h_u, shift, params.p);
  return MulMod(lifted, h_v, params.p);
}

uint64_t DlogFingerprint::RemovePrefix(const DlogParams& params, uint64_t h_pw,
                                       uint64_t h_p, uint64_t w_bits) {
  uint64_t shift = PowMod(2, w_bits, params.q);
  uint64_t lifted = PowMod(h_p, shift, params.p);
  uint64_t inv = InvMod(lifted, params.p);
  return MulMod(h_pw, inv, params.p);
}

uint64_t DlogFingerprint::SpaceBits() const {
  return params_.ElementBits() + wbs::BitsForValue(length_bits_);
}

PedersenHash PedersenHash::Generate(const DlogParams& params,
                                    wbs::RandomTape* tape) {
  // h = g^s for a uniformly random public exponent s in [1, q). There is no
  // secret: in the white-box model the adversary sees s; collision resistance
  // rests on the *hardness of computing* log_g(h), not on hiding it.
  uint64_t s = 1 + tape->UniformInt(params.q - 1);
  return PedersenHash(params, PowMod(params.g, s, params.p));
}

uint64_t PedersenHash::Hash(uint64_t x, uint64_t y) const {
  uint64_t gx = PowMod(params_.g, x % params_.q, params_.p);
  uint64_t hy = PowMod(h_, y % params_.q, params_.p);
  return MulMod(gx, hy, params_.p);
}

uint64_t PedersenHash::CompressToField(uint64_t group_element) const {
  // For a safe prime p = 2q+1 the map x -> min(x, p-x) sends QR(p) (and any
  // element) into [1, q], a set of size q; subtract 1 to land in [0, q).
  uint64_t folded = std::min(group_element, params_.p - group_element);
  return folded - 1;
}

uint64_t PedersenHash::HashVector(const std::vector<uint64_t>& xs) const {
  // Merkle-Damgard chain over the 2-to-1 Pedersen compression. The initial
  // chaining value encodes the length to prevent extension-style collisions.
  uint64_t state = CompressToField(Hash(0x6c656e, xs.size()));
  for (uint64_t x : xs) {
    state = CompressToField(Hash(state, x));
  }
  return state;
}

Sha256Crhf::Sha256Crhf(uint64_t salt, int output_bits)
    : salt_(salt), output_bits_(output_bits) {
  assert(output_bits >= 8 && output_bits <= 64);
}

uint64_t Sha256Crhf::Hash(const void* data, size_t len) const {
  Sha256 h;
  h.UpdateU64(salt_);
  h.Update(data, len);
  Digest256 d = h.Finalize();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[i];
  return output_bits_ == 64 ? v : (v >> (64 - output_bits_));
}

uint64_t Sha256Crhf::HashU64s(const std::vector<uint64_t>& items) const {
  Sha256 h;
  h.UpdateU64(salt_);
  h.UpdateU64(items.size());
  for (uint64_t x : items) h.UpdateU64(x);
  Digest256 d = h.Finalize();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[i];
  return output_bits_ == 64 ? v : (v >> (64 - output_bits_));
}

uint64_t Sha256Crhf::HashU64(uint64_t item) const {
  uint8_t buf[8];
  uint64_t x = item;
  for (int i = 7; i >= 0; --i) {
    buf[i] = uint8_t(x & 0xff);
    x >>= 8;
  }
  return Hash(buf, 8);
}

void Sha256Crhf::HashU64x8(const uint64_t items[8], uint64_t out[8]) const {
  // The kernel produces the untruncated first-8-digest-bytes word for the
  // single-block salt||item message; truncation to output_bits_ happens
  // here, matching Hash() exactly.
  simd::Kernels().sha256_salted8(salt_, items, out);
  for (int i = 0; i < 8; ++i) {
    if (output_bits_ != 64) out[i] >>= 64 - output_bits_;
    assert(out[i] == HashU64(items[i]) &&
           "SIMD SHA-256 batch diverged from scalar HashU64");
  }
}

int Sha256Crhf::OutputBitsForBudget(uint64_t time_budget_t, uint64_t items,
                                    int slack_bits) {
  int bits = static_cast<int>(2 * wbs::CeilLog2(time_budget_t) +
                              wbs::CeilLog2(items)) +
             slack_bits;
  if (bits < 8) bits = 8;
  if (bits > 64) bits = 64;
  return bits;
}

}  // namespace wbs::crypto
