// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// A from-scratch SHA-256 implementation (FIPS 180-4). The paper's
// random-oracle-model algorithms suggest "in practice, one can use SHA256 as
// the random oracle" (Section 2.3); this is that primitive. No external
// crypto library is used anywhere in wbstream.

#ifndef WBS_CRYPTO_SHA256_H_
#define WBS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace wbs::crypto {

/// 32-byte SHA-256 digest.
using Digest256 = std::array<uint8_t, 32>;

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.Update(data, len);
///   Digest256 d = h.Finalize();
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// Resets to the initial state so the object can be reused.
  void Reset();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(const std::string& s) { Update(s.data(), s.size()); }
  void Update(const std::vector<uint8_t>& v) { Update(v.data(), v.size()); }

  /// Absorbs a 64-bit value in big-endian byte order.
  void UpdateU64(uint64_t v);

  /// Completes the hash. The object must be Reset() before reuse.
  Digest256 Finalize();

  /// One-shot convenience.
  static Digest256 Hash(const void* data, size_t len);
  static Digest256 Hash(const std::string& s) { return Hash(s.data(), s.size()); }

  /// First 8 bytes of the digest as a big-endian uint64 (handy fingerprint).
  static uint64_t Hash64(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Hex rendering of a digest (lowercase), for tests and logging.
std::string DigestToHex(const Digest256& d);

}  // namespace wbs::crypto

#endif  // WBS_CRYPTO_SHA256_H_
