// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "crypto/sis.h"

#include <cassert>
#include <unordered_map>

#include "common/bits.h"
#include "common/modmath.h"
#include "common/simd.h"

namespace wbs::crypto {

uint64_t SisParams::EntryBits() const { return wbs::BitsForUniverse(q); }

uint64_t SisParams::MatrixBits() const {
  return EntryBits() * rows * cols;
}

SisMatrix::SisMatrix(SisParams params, const RandomOracle& oracle,
                     uint64_t domain)
    : params_(params), oracle_(&oracle), domain_(domain), barrett_(params.q) {
  assert(params_.q >= 2);
  assert(params_.rows > 0 && params_.cols > 0);
}

uint64_t SisMatrix::Entry(size_t i, size_t j) const {
  assert(i < params_.rows && j < params_.cols);
  if (!cache_.empty()) return cache_[j * params_.rows + i];
  return oracle_->FieldElement(domain_, i * params_.cols + j, params_.q);
}

void SisMatrix::Materialize() {
  if (!cache_.empty()) return;
  const size_t rows = params_.rows;
  const size_t cols = params_.cols;
  cache_.resize(rows * cols);
  // One pass per row with the oracle index base hoisted out of the inner
  // loop; entries land in the column-major layout Column() serves. The
  // oracle values are identical to the on-demand Entry() path — only the
  // storage order changes.
  for (size_t i = 0; i < rows; ++i) {
    const uint64_t base = uint64_t(i) * cols;
    uint64_t* row_dest = cache_.data() + i;
    for (size_t j = 0; j < cols; ++j) {
      row_dest[j * rows] = oracle_->FieldElement(domain_, base + j, params_.q);
    }
  }
  // Shoup companions: shoup[idx] = floor(entry * 2^64 / q). One u128
  // division per entry, paid once at materialization; the SIMD column
  // update kernel then gets exact mod-q products from two multiplies.
  shoup_.resize(cache_.size());
  for (size_t idx = 0; idx < cache_.size(); ++idx) {
    shoup_[idx] = uint64_t((wbs::u128(cache_[idx]) << 64) / params_.q);
  }
}

SisSketchVector::SisSketchVector(const SisMatrix* matrix)
    : matrix_(matrix), v_(matrix->params().rows, 0) {}

Status SisSketchVector::Update(size_t col, int64_t delta) {
  const SisParams& p = matrix_->params();
  if (col >= p.cols) {
    return Status::OutOfRange("SisSketchVector::Update: column out of range");
  }
  const uint64_t d = ReduceSigned(delta, p.q);
  if (d == 0) return Status::OK();
  const BarrettQ& bq = matrix_->barrett();
  if (matrix_->materialized()) {
    // Hot path: contiguous column of the materialized A through the
    // runtime-dispatched SIMD kernel (Shoup products on vector lanes, or
    // the scalar Barrett loop on the fallback table). Same canonical
    // residues as the generic AddMod/MulMod path below, entry for entry.
    const uint64_t* column = matrix_->Column(col);
    const uint64_t* shoup = matrix_->ShoupColumn(col);
#ifndef NDEBUG
    // Paranoia half of the bit-identity contract: replay the update on a
    // copy with the scalar Barrett path and require an exact match.
    std::vector<uint64_t> want(v_);
    for (size_t i = 0; i < p.rows; ++i) {
      want[i] = bq.AddMod(want[i], bq.MulMod(d, column[i]));
    }
#endif
    simd::Kernels().sis_column_update(v_.data(), column, shoup, p.rows, d, bq);
    assert(v_ == want && "SIMD SIS column update diverged from scalar");
  } else {
    for (size_t i = 0; i < p.rows; ++i) {
      v_[i] = bq.AddMod(v_[i], bq.MulMod(d, matrix_->Entry(i, col)));
    }
  }
  return Status::OK();
}

Status SisSketchVector::MergeFrom(const SisSketchVector& other) {
  const SisParams& p = matrix_->params();
  const SisParams& op = other.matrix_->params();
  if (p.q != op.q || p.rows != op.rows || p.cols != op.cols ||
      v_.size() != other.v_.size()) {
    return Status::FailedPrecondition(
        "SisSketchVector::MergeFrom: parameter mismatch");
  }
  AccumulateMod(v_.data(), other.v_.data(), v_.size(), p.q);
  return Status::OK();
}

Status SisSketchVector::UnmergeFrom(const SisSketchVector& other) {
  const SisParams& p = matrix_->params();
  const SisParams& op = other.matrix_->params();
  if (p.q != op.q || p.rows != op.rows || p.cols != op.cols ||
      v_.size() != other.v_.size()) {
    return Status::FailedPrecondition(
        "SisSketchVector::UnmergeFrom: parameter mismatch");
  }
  SubtractMod(v_.data(), other.v_.data(), v_.size(), p.q);
  return Status::OK();
}

Status SisSketchVector::SetValue(const std::vector<uint64_t>& value) {
  if (value.size() != v_.size()) {
    return Status::InvalidArgument(
        "SisSketchVector::SetValue: row count mismatch");
  }
  const uint64_t q = matrix_->params().q;
  for (uint64_t x : value) {
    if (x >= q) {
      return Status::InvalidArgument(
          "SisSketchVector::SetValue: entry not reduced mod q");
    }
  }
  v_ = value;
  return Status::OK();
}

bool SisSketchVector::IsZero() const {
  for (uint64_t x : v_) {
    if (x != 0) return false;
  }
  return true;
}

uint64_t SisSketchVector::SpaceBits() const {
  return matrix_->params().EntryBits() * v_.size();
}

bool IsValidSisSolution(const SisMatrix& matrix,
                        const std::vector<int64_t>& z) {
  const SisParams& p = matrix.params();
  if (z.size() != p.cols) return false;
  bool nonzero = false;
  for (int64_t zi : z) {
    if (zi != 0) nonzero = true;
    if (zi > int64_t(p.beta_inf) || zi < -int64_t(p.beta_inf)) return false;
  }
  if (!nonzero) return false;
  const BarrettQ& bq = matrix.barrett();
  for (size_t i = 0; i < p.rows; ++i) {
    uint64_t acc = 0;
    for (size_t j = 0; j < p.cols; ++j) {
      acc = bq.AddMod(acc,
                      bq.MulMod(ReduceSigned(z[j], p.q), matrix.Entry(i, j)));
    }
    if (acc != 0) return false;
  }
  return true;
}

namespace {

// Advances z through the box {-B..B}^k in odometer order; returns false after
// the last combination.
bool NextCandidate(std::vector<int64_t>* z, int64_t b) {
  for (size_t i = 0; i < z->size(); ++i) {
    if ((*z)[i] < b) {
      ++(*z)[i];
      return true;
    }
    (*z)[i] = -b;
  }
  return false;
}

}  // namespace

SisAttackResult BruteForceSisAttack(const SisMatrix& matrix,
                                    uint64_t max_operations) {
  const SisParams& p = matrix.params();
  const int64_t b = int64_t(p.beta_inf);
  SisAttackResult result;
  std::vector<int64_t> z(p.cols, -b);
  do {
    ++result.operations_used;
    if (result.operations_used > max_operations) {
      result.budget_exhausted = true;
      return result;
    }
    bool all_zero = true;
    for (int64_t zi : z) {
      if (zi != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) continue;
    if (IsValidSisSolution(matrix, z)) {
      result.found = true;
      result.z = z;
      return result;
    }
  } while (NextCandidate(&z, b));
  return result;
}

SisAttackResult MeetInMiddleSisAttack(const SisMatrix& matrix,
                                      uint64_t max_operations) {
  const SisParams& p = matrix.params();
  const int64_t b = int64_t(p.beta_inf);
  SisAttackResult result;
  const size_t left_cols = p.cols / 2;
  const size_t right_cols = p.cols - left_cols;
  if (left_cols == 0) return BruteForceSisAttack(matrix, max_operations);

  // Key a partial sum vector by hashing its entries into one 64-bit word;
  // collisions are re-verified exactly, so false positives are harmless.
  auto key_of = [&](const std::vector<uint64_t>& v) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t x : v) {
      h ^= x;
      h *= 0x100000001b3ULL;
    }
    return h;
  };

  // Enumerate left half: A_left * z_left.
  std::unordered_multimap<uint64_t, std::vector<int64_t>> table;
  std::vector<int64_t> zl(left_cols, -b);
  const BarrettQ& bq = matrix.barrett();
  auto partial = [&](const std::vector<int64_t>& z, size_t col0,
                     size_t ncols) {
    std::vector<uint64_t> v(p.rows, 0);
    for (size_t j = 0; j < ncols; ++j) {
      const uint64_t zj = ReduceSigned(z[j], p.q);
      for (size_t i = 0; i < p.rows; ++i) {
        v[i] = bq.AddMod(v[i], bq.MulMod(zj, matrix.Entry(i, col0 + j)));
      }
    }
    return v;
  };
  do {
    ++result.operations_used;
    if (result.operations_used > max_operations) {
      result.budget_exhausted = true;
      return result;
    }
    table.emplace(key_of(partial(zl, 0, left_cols)), zl);
  } while (NextCandidate(&zl, b));

  // Enumerate right half and look up -A_right * z_right.
  std::vector<int64_t> zr(right_cols, -b);
  do {
    ++result.operations_used;
    if (result.operations_used > max_operations) {
      result.budget_exhausted = true;
      return result;
    }
    std::vector<uint64_t> v = partial(zr, left_cols, right_cols);
    for (auto& x : v) x = x == 0 ? 0 : p.q - x;  // negate mod q
    auto range = table.equal_range(key_of(v));
    for (auto it = range.first; it != range.second; ++it) {
      std::vector<int64_t> z = it->second;
      z.insert(z.end(), zr.begin(), zr.end());
      if (IsValidSisSolution(matrix, z)) {
        result.found = true;
        result.z = std::move(z);
        return result;
      }
    }
  } while (NextCandidate(&zr, b));
  return result;
}

}  // namespace wbs::crypto
