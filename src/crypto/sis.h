// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The Short Integer Solution (SIS) toolkit (Definition 2.15 of the paper).
//
// A uniformly random matrix A in Z_q^{rows x cols} is hard to find a short
// nonzero integer kernel vector for (Ajtai'96, Micciancio-Peikert'13 —
// Theorem 2.16). The streaming algorithms of the paper (Algorithm 5 for L0,
// Theorem 1.6 for rank decision) maintain A*f for the underlying frequency
// vector f; a white-box adversary who wants to fool the sketch must stream a
// nonzero f with A*f = 0 and small entries, i.e. solve SIS.
//
// In the random-oracle model the columns of A are generated on demand from
// the oracle, so the sketch pays no space for A (this is the "~O(n^{1-eps+c
// eps}) in the random oracle model" clause of Theorem 1.5).
//
// The *bounded adversary* (Assumption 2.17 scaled down) is implemented here
// as exhaustive and meet-in-the-middle short-vector searches with an explicit
// operation budget; experiments show it succeeds at toy dimensions and times
// out as dimensions grow.

#ifndef WBS_CRYPTO_SIS_H_
#define WBS_CRYPTO_SIS_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/modmath.h"
#include "common/status.h"
#include "crypto/random_oracle.h"

namespace wbs::crypto {

/// Public parameters of a SIS instance.
struct SisParams {
  uint64_t q = 0;         ///< modulus (prime in this library, q = poly(n))
  size_t rows = 0;        ///< sketch dimension (paper: n^{c*eps})
  size_t cols = 0;        ///< input dimension  (paper: chunk width n^{eps})
  uint64_t beta_inf = 0;  ///< infinity-norm bound on admissible solutions

  /// Bits to store one Z_q entry.
  uint64_t EntryBits() const;
  /// Bits to store the full matrix explicitly (no random oracle).
  uint64_t MatrixBits() const;
};

/// A uniformly random A in Z_q^{rows x cols} whose entries are derived from
/// a public random oracle; optionally materialized for throughput.
class SisMatrix {
 public:
  /// `domain` separates independent matrices drawn from the same oracle.
  SisMatrix(SisParams params, const RandomOracle& oracle, uint64_t domain);

  /// Entry A[i][j] in [0, q).
  uint64_t Entry(size_t i, size_t j) const;

  /// Precomputes all entries (trades the oracle's O(1) space for speed;
  /// corresponds to the non-random-oracle space bound in Theorem 1.5). The
  /// cache is stored column-major so the sketch's column update walks
  /// contiguous memory.
  void Materialize();
  bool materialized() const { return !cache_.empty(); }

  /// Contiguous column j (rows entries). Requires materialized(); the debug
  /// assertion keeps the fast path honest.
  const uint64_t* Column(size_t j) const {
    assert(materialized());
    assert(j < params_.cols);
    return cache_.data() + j * params_.rows;
  }

  /// Shoup companion of Column(j): shoup[i] = floor(Column(j)[i] * 2^64 / q),
  /// precomputed by Materialize() so the SIMD column-update kernel can form
  /// exact mod-q products with two lane multiplies instead of a 128-bit
  /// Barrett reduction (see common/simd.h). Requires materialized().
  const uint64_t* ShoupColumn(size_t j) const {
    assert(materialized());
    assert(j < params_.cols);
    return shoup_.data() + j * params_.rows;
  }

  /// Barrett context for this matrix's modulus, shared by every sketch
  /// vector drawn against it.
  const wbs::BarrettQ& barrett() const { return barrett_; }

  const SisParams& params() const { return params_; }

  /// Space charged to an algorithm storing this matrix: 0 if entries come
  /// from the public oracle, params().MatrixBits() if materialized storage
  /// is charged (callers decide which model they are in).
  uint64_t SpaceBitsIfStored() const { return params_.MatrixBits(); }

 private:
  SisParams params_;
  const RandomOracle* oracle_;
  uint64_t domain_;
  wbs::BarrettQ barrett_;
  std::vector<uint64_t> cache_;  // column-major, empty until Materialize()
  std::vector<uint64_t> shoup_;  // Shoup constants, same layout as cache_
};

/// The running sketch v = A * f mod q for a turnstile-updated f.
class SisSketchVector {
 public:
  explicit SisSketchVector(const SisMatrix* matrix);

  /// Applies f[col] += delta (turnstile update): v += delta * A_col mod q.
  Status Update(size_t col, int64_t delta);

  /// True iff v == 0 (the sketch cannot distinguish f == 0 from a short SIS
  /// solution — which is exactly what the hardness assumption rules out).
  bool IsZero() const;

  /// Adds another sketch vector: v += other.v (mod q). Because the sketch is
  /// linear in f, the merge of sketches over partial streams equals the
  /// sketch of the combined stream — both vectors must be drawn against the
  /// same A (same params; callers are responsible for oracle/domain
  /// identity, which the engine guarantees by construction).
  Status MergeFrom(const SisSketchVector& other);

  /// Exact inverse of MergeFrom: v -= other.v (mod q). Lets a cached merge
  /// target drop one shard's stale contribution instead of refolding all.
  Status UnmergeFrom(const SisSketchVector& other);

  const std::vector<uint64_t>& value() const { return v_; }

  /// Replaces the sketch vector with a previously captured value() — the
  /// deserialization half of shipping a sketch across a process boundary.
  /// Rejects a size mismatch or any entry outside [0, q).
  Status SetValue(const std::vector<uint64_t>& value);

  /// Bits to store the sketch vector (rows * ceil(log2 q)).
  uint64_t SpaceBits() const;

 private:
  const SisMatrix* matrix_;
  std::vector<uint64_t> v_;
};

/// Outcome of a bounded adversary's attempt to solve SIS.
struct SisAttackResult {
  bool found = false;            ///< a nonzero short kernel vector was found
  std::vector<int64_t> z;        ///< the solution (size cols) if found
  uint64_t operations_used = 0;  ///< work performed before success/give-up
  bool budget_exhausted = false;
};

/// Exhaustive search over z in {-beta_inf..beta_inf}^cols \ {0} with
/// A z = 0 (mod q), stopping after `max_operations` candidate evaluations.
/// This is the T-time-bounded white-box adversary of Assumption 2.17 in
/// miniature: doubling cols multiplies its work by (2*beta_inf+1)^k.
SisAttackResult BruteForceSisAttack(const SisMatrix& matrix,
                                    uint64_t max_operations);

/// Meet-in-the-middle variant: hashes A * z_left over half the coordinates
/// and looks up matching -A * z_right. Quadratically better than brute force
/// but still exponential in cols; used to show the attack frontier moves only
/// marginally with a smarter bounded adversary.
SisAttackResult MeetInMiddleSisAttack(const SisMatrix& matrix,
                                      uint64_t max_operations);

/// Verifies A z == 0 (mod q), z != 0, and |z|_inf <= beta_inf.
bool IsValidSisSolution(const SisMatrix& matrix,
                        const std::vector<int64_t>& z);

}  // namespace wbs::crypto

#endif  // WBS_CRYPTO_SIS_H_
