// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Random oracle (Bellare-Rogaway model), instantiated with SHA-256 in
// counter mode as the paper itself suggests (Section 2.3). The oracle is
// *public*: both the streaming algorithm and the adversary may query it, and
// repeated queries return consistent answers. Algorithms that generate
// sketch entries through the oracle (Algorithm 5, Theorem 1.6) pay no space
// for the sketching matrix.

#ifndef WBS_CRYPTO_RANDOM_ORACLE_H_
#define WBS_CRYPTO_RANDOM_ORACLE_H_

#include <cstdint>
#include <string>

#include "crypto/sha256.h"

namespace wbs::crypto {

/// A stateless, publicly accessible random function H: (domain, index) -> U64.
/// Distinct (domain, index) pairs give independent uniform values; repeated
/// queries are consistent. Domain separation keeps different data structures
/// from sharing randomness.
class RandomOracle {
 public:
  /// `instance_id` distinguishes independent oracle instantiations (it plays
  /// the role of the public common random string).
  explicit RandomOracle(uint64_t instance_id = 0) : instance_id_(instance_id) {}

  /// 64 uniform bits for (domain, index).
  uint64_t Query(uint64_t domain, uint64_t index) const {
    Sha256 h;
    h.UpdateU64(kTag);
    h.UpdateU64(instance_id_);
    h.UpdateU64(domain);
    h.UpdateU64(index);
    Digest256 d = h.Finalize();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | d[i];
    return v;
  }

  /// Uniform element of Z_q for (domain, index). Uses rejection sampling over
  /// the 256-bit digest so the output is (statistically) uniform mod q.
  uint64_t FieldElement(uint64_t domain, uint64_t index, uint64_t q) const {
    // Draw successive 64-bit lanes from counter-extended digests until one
    // lands below the largest multiple of q (rejection sampling).
    const uint64_t limit = ~uint64_t{0} - ~uint64_t{0} % q;
    for (uint64_t ctr = 0;; ++ctr) {
      Sha256 h;
      h.UpdateU64(kTag);
      h.UpdateU64(instance_id_);
      h.UpdateU64(domain);
      h.UpdateU64(index);
      h.UpdateU64(ctr);
      Digest256 d = h.Finalize();
      for (int lane = 0; lane < 4; ++lane) {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v = (v << 8) | d[8 * lane + i];
        if (v < limit) return v % q;
      }
    }
  }

  uint64_t instance_id() const { return instance_id_; }

 private:
  static constexpr uint64_t kTag = 0x77627352414e444fULL;  // "wbsRANDO"

  uint64_t instance_id_;
};

}  // namespace wbs::crypto

#endif  // WBS_CRYPTO_RANDOM_ORACLE_H_
