// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "linalg/matrix_zq.h"

#include <cassert>
#include <numeric>

namespace wbs::linalg {

MatrixZq MatrixZq::Multiply(const MatrixZq& other) const {
  assert(cols_ == other.rows_);
  assert(q_ == other.q_);
  MatrixZq out(rows_, other.cols_, q_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      uint64_t aik = At(i, k);
      if (aik == 0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) =
            AddMod(out.At(i, j), MulMod(aik, other.At(k, j), q_), q_);
      }
    }
  }
  return out;
}

namespace {

// Row echelon elimination (destructive); returns pivot columns in order.
std::vector<size_t> Echelonize(std::vector<std::vector<uint64_t>>* m,
                               uint64_t q) {
  std::vector<size_t> pivot_cols;
  size_t rows = m->size();
  if (rows == 0) return pivot_cols;
  size_t cols = (*m)[0].size();
  size_t row = 0;
  for (size_t col = 0; col < cols && row < rows; ++col) {
    // Find a pivot in this column at or below `row`.
    size_t pr = row;
    while (pr < rows && (*m)[pr][col] == 0) ++pr;
    if (pr == rows) continue;
    std::swap((*m)[row], (*m)[pr]);
    uint64_t inv = InvMod((*m)[row][col], q);
    for (size_t j = col; j < cols; ++j) {
      (*m)[row][j] = MulMod((*m)[row][j], inv, q);
    }
    for (size_t i = 0; i < rows; ++i) {
      if (i == row) continue;
      uint64_t f = (*m)[i][col];
      if (f == 0) continue;
      for (size_t j = col; j < cols; ++j) {
        (*m)[i][j] = SubMod((*m)[i][j], MulMod(f, (*m)[row][j], q), q);
      }
    }
    pivot_cols.push_back(col);
    ++row;
  }
  return pivot_cols;
}

}  // namespace

size_t MatrixZq::Rank() const {
  std::vector<std::vector<uint64_t>> m(rows_, std::vector<uint64_t>(cols_));
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) m[i][j] = At(i, j);
  }
  return Echelonize(&m, q_).size();
}

std::optional<std::vector<uint64_t>> MatrixZq::KernelVector() const {
  std::vector<std::vector<uint64_t>> m(rows_, std::vector<uint64_t>(cols_));
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) m[i][j] = At(i, j);
  }
  std::vector<size_t> pivots = Echelonize(&m, q_);
  if (pivots.size() == cols_) return std::nullopt;  // trivial kernel only
  // First free column.
  size_t free_col = 0;
  {
    std::vector<bool> is_pivot(cols_, false);
    for (size_t c : pivots) is_pivot[c] = true;
    while (free_col < cols_ && is_pivot[free_col]) ++free_col;
  }
  std::vector<uint64_t> x(cols_, 0);
  x[free_col] = 1;
  // Reduced echelon: pivot rows read off directly.
  for (size_t r = 0; r < pivots.size(); ++r) {
    size_t pc = pivots[r];
    // Row r: x[pc] + sum_{j != pc} m[r][j] x[j] = 0.
    uint64_t v = m[r][free_col];  // only the free col is nonzero among x
    x[pc] = v == 0 ? 0 : q_ - v;
  }
  return x;
}

std::vector<uint64_t> MatrixZq::Apply(const std::vector<uint64_t>& x) const {
  assert(x.size() == cols_);
  std::vector<uint64_t> y(rows_, 0);
  for (size_t i = 0; i < rows_; ++i) {
    uint64_t acc = 0;
    for (size_t j = 0; j < cols_; ++j) {
      acc = AddMod(acc, MulMod(At(i, j), x[j] % q_, q_), q_);
    }
    y[i] = acc;
  }
  return y;
}

bool MatrixZq::IsZero() const {
  for (uint64_t v : a_) {
    if (v != 0) return false;
  }
  return true;
}

MatrixZq MatrixZq::Identity(size_t n, uint64_t q) {
  MatrixZq m(n, n, q);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1 % q;
  return m;
}

namespace {

using i128 = __int128;

bool CheckedMul(i128 a, i128 b, i128* out) {
  return !__builtin_mul_overflow(a, b, out);
}
bool CheckedSub(i128 a, i128 b, i128* out) {
  return !__builtin_sub_overflow(a, b, out);
}
bool CheckedAdd(i128 a, i128 b, i128* out) {
  return !__builtin_add_overflow(a, b, out);
}

i128 Gcd128(i128 a, i128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    i128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

std::optional<std::vector<int64_t>> ExactIntegerKernelVector(
    const std::vector<std::vector<int64_t>>& m_in) {
  const size_t rows = m_in.size();
  if (rows == 0) return std::nullopt;
  const size_t cols = m_in[0].size();
  std::vector<std::vector<i128>> m(rows, std::vector<i128>(cols));
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m[i][j] = m_in[i][j];
  }

  // Fraction-free (Bareiss) elimination with column pivot tracking.
  std::vector<size_t> pivot_cols;
  i128 prev_pivot = 1;
  size_t row = 0;
  for (size_t col = 0; col < cols && row < rows; ++col) {
    size_t pr = row;
    while (pr < rows && m[pr][col] == 0) ++pr;
    if (pr == rows) continue;
    std::swap(m[row], m[pr]);
    const i128 pivot = m[row][col];
    for (size_t i = row + 1; i < rows; ++i) {
      for (size_t j = col + 1; j < cols; ++j) {
        i128 t1, t2, num;
        if (!CheckedMul(pivot, m[i][j], &t1)) return std::nullopt;
        if (!CheckedMul(m[i][col], m[row][j], &t2)) return std::nullopt;
        if (!CheckedSub(t1, t2, &num)) return std::nullopt;
        m[i][j] = num / prev_pivot;  // divides exactly (Bareiss identity)
      }
      m[i][col] = 0;
    }
    prev_pivot = pivot;
    pivot_cols.push_back(col);
    ++row;
  }
  if (pivot_cols.size() == cols) return std::nullopt;  // full column rank

  // First free column.
  std::vector<bool> is_pivot(cols, false);
  for (size_t c : pivot_cols) is_pivot[c] = true;
  size_t free_col = 0;
  while (free_col < cols && is_pivot[free_col]) ++free_col;

  // Back substitution with exact rationals x_j = num_j / den_j.
  std::vector<i128> num(cols, 0), den(cols, 1);
  num[free_col] = 1;
  for (size_t r = pivot_cols.size(); r-- > 0;) {
    const size_t pc = pivot_cols[r];
    // Row r of the (upper-triangular) eliminated matrix:
    //   m[r][pc] * x[pc] + sum_{j > pc} m[r][j] * x[j] = 0.
    i128 acc_num = 0, acc_den = 1;
    for (size_t j = pc + 1; j < cols; ++j) {
      if (m[r][j] == 0 || num[j] == 0) continue;
      // acc += m[r][j] * num[j] / den[j]
      i128 term_num, t1, t2, new_num, new_den;
      if (!CheckedMul(m[r][j], num[j], &term_num)) return std::nullopt;
      if (!CheckedMul(acc_num, den[j], &t1)) return std::nullopt;
      if (!CheckedMul(term_num, acc_den, &t2)) return std::nullopt;
      if (!CheckedAdd(t1, t2, &new_num)) return std::nullopt;
      if (!CheckedMul(acc_den, den[j], &new_den)) return std::nullopt;
      i128 g = Gcd128(new_num, new_den);
      if (g > 1) {
        new_num /= g;
        new_den /= g;
      }
      acc_num = new_num;
      acc_den = new_den;
    }
    // x[pc] = -acc / m[r][pc].
    i128 d;
    if (!CheckedMul(acc_den, m[r][pc], &d)) return std::nullopt;
    i128 n = -acc_num;
    i128 g = Gcd128(n, d);
    if (g > 1) {
      n /= g;
      d /= g;
    }
    if (d < 0) {
      d = -d;
      n = -n;
    }
    num[pc] = n;
    den[pc] = d;
  }

  // Clear denominators: multiply through by lcm of den[].
  i128 l = 1;
  for (size_t j = 0; j < cols; ++j) {
    if (num[j] == 0) continue;
    i128 g = Gcd128(l, den[j]);
    i128 t;
    if (!CheckedMul(l / g, den[j], &t)) return std::nullopt;
    l = t;
  }
  std::vector<int64_t> x(cols, 0);
  const i128 kMax = i128(INT64_MAX);
  for (size_t j = 0; j < cols; ++j) {
    if (num[j] == 0) continue;
    i128 v;
    if (!CheckedMul(num[j], l / den[j], &v)) return std::nullopt;
    if (v > kMax || v < -kMax) return std::nullopt;
    x[j] = int64_t(v);
  }
  // Reduce by the gcd of all entries to keep the solution small.
  int64_t g = 0;
  for (int64_t v : x) g = std::gcd(g, v < 0 ? -v : v);
  if (g > 1) {
    for (auto& v : x) v /= g;
  }
  return x;
}

}  // namespace wbs::linalg
