// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Dense linear algebra over the prime field Z_q: rank, row echelon form,
// kernel vectors, and products. q is a prime < 2^62 (MulMod does the 128-bit
// reduction). This underlies the rank-decision sketch of Theorem 1.6 and the
// lower-bound attacks of Section 3.

#ifndef WBS_LINALG_MATRIX_ZQ_H_
#define WBS_LINALG_MATRIX_ZQ_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bits.h"
#include "common/modmath.h"

namespace wbs::linalg {

/// A rows x cols matrix over Z_q, row-major.
class MatrixZq {
 public:
  MatrixZq(size_t rows, size_t cols, uint64_t q)
      : rows_(rows), cols_(cols), q_(q), a_(rows * cols, 0) {}

  uint64_t& At(size_t i, size_t j) { return a_[i * cols_ + j]; }
  uint64_t At(size_t i, size_t j) const { return a_[i * cols_ + j]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  uint64_t q() const { return q_; }

  /// Sets entry with reduction mod q (accepts signed deltas).
  void Set(size_t i, size_t j, int64_t v) { At(i, j) = ReduceSigned(v, q_); }

  /// this[i][j] += v (mod q).
  void AddAt(size_t i, size_t j, int64_t v) {
    At(i, j) = AddMod(At(i, j), ReduceSigned(v, q_), q_);
  }

  /// Matrix product (this * other), dimensions must agree.
  MatrixZq Multiply(const MatrixZq& other) const;

  /// Rank over Z_q via Gaussian elimination (non-destructive).
  size_t Rank() const;

  /// A nonzero x with (this) * x == 0 mod q, if the kernel is nontrivial.
  std::optional<std::vector<uint64_t>> KernelVector() const;

  /// (this) * x mod q.
  std::vector<uint64_t> Apply(const std::vector<uint64_t>& x) const;

  /// True iff every entry is zero.
  bool IsZero() const;

  /// Identity matrix.
  static MatrixZq Identity(size_t n, uint64_t q);

  /// Bits to store the matrix: rows * cols * ceil(log2 q).
  uint64_t SpaceBits() const {
    return rows_ * cols_ * wbs::BitsForUniverse(q_);
  }

  /// Raw row-major storage (rows * cols reduced entries) for bulk mod-q
  /// kernels (AccumulateMod / SubtractMod merges).
  uint64_t* data() { return a_.data(); }
  const uint64_t* data() const { return a_.data(); }
  size_t size() const { return a_.size(); }

 private:
  size_t rows_;
  size_t cols_;
  uint64_t q_;
  std::vector<uint64_t> a_;
};

/// Exact integer kernel: given an r x c integer matrix with c > r, returns a
/// nonzero integer vector x with M x = 0 (over Z), computed by fraction-free
/// (Bareiss) elimination in 128-bit arithmetic on the first r+1 independent
/// columns. Returns nullopt on intermediate overflow (entries grow like
/// r^{r/2}; reliable for r <= ~36 with +-1 inputs) — the caller treats that
/// as "attack failed", which only *under*-states the attack's power.
std::optional<std::vector<int64_t>> ExactIntegerKernelVector(
    const std::vector<std::vector<int64_t>>& m);

}  // namespace wbs::linalg

#endif  // WBS_LINALG_MATRIX_ZQ_H_
