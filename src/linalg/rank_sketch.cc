// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "linalg/rank_sketch.h"

#include <algorithm>
#include <cassert>

namespace wbs::linalg {

RankDecisionSketch::RankDecisionSketch(size_t n, size_t k, uint64_t q,
                                       const crypto::RandomOracle& oracle,
                                       uint64_t oracle_domain)
    : n_(n), k_(k), oracle_(&oracle), domain_(oracle_domain), barrett_(q),
      sketch_(k, n, q) {
  assert(k >= 1 && k <= n);
}

uint64_t RankDecisionSketch::HEntry(size_t i, size_t j) const {
  return oracle_->FieldElement(domain_, i * n_ + j, sketch_.q());
}

Status RankDecisionSketch::Update(const EntryUpdate& u) {
  if (u.row >= n_ || u.col >= n_) {
    return Status::OutOfRange("RankDecisionSketch: index out of range");
  }
  // A[row][col] += delta  =>  S[:, col] += delta * H[:, row]. The modular
  // delta and the Barrett constants are loop-invariant; the oracle call per
  // H entry dominates what remains.
  const uint64_t d = ReduceSigned(u.delta, sketch_.q());
  for (size_t i = 0; i < k_; ++i) {
    uint64_t h = HEntry(i, u.row);
    sketch_.At(i, u.col) =
        barrett_.AddMod(sketch_.At(i, u.col), barrett_.MulMod(h, d));
  }
  return Status::OK();
}

Status RankDecisionSketch::MergeFrom(const RankDecisionSketch& other) {
  if (n_ != other.n_ || k_ != other.k_ || sketch_.q() != other.sketch_.q() ||
      domain_ != other.domain_) {
    return Status::FailedPrecondition(
        "RankDecisionSketch::MergeFrom: sketches do not share H");
  }
  AccumulateMod(sketch_.data(), other.sketch_.data(), sketch_.size(),
                sketch_.q());
  return Status::OK();
}

Status RankDecisionSketch::UnmergeFrom(const RankDecisionSketch& other) {
  if (n_ != other.n_ || k_ != other.k_ || sketch_.q() != other.sketch_.q() ||
      domain_ != other.domain_) {
    return Status::FailedPrecondition(
        "RankDecisionSketch::UnmergeFrom: sketches do not share H");
  }
  SubtractMod(sketch_.data(), other.sketch_.data(), sketch_.size(),
              sketch_.q());
  return Status::OK();
}

Status RankDecisionSketch::RestoreSketch(
    const std::vector<uint64_t>& entries) {
  if (entries.size() != sketch_.size()) {
    return Status::InvalidArgument(
        "RankDecisionSketch::RestoreSketch: dimension mismatch");
  }
  const uint64_t q = sketch_.q();
  for (uint64_t v : entries) {
    if (v >= q) {
      return Status::InvalidArgument(
          "RankDecisionSketch::RestoreSketch: entry not reduced mod q");
    }
  }
  std::copy(entries.begin(), entries.end(), sketch_.data());
  return Status::OK();
}

bool RankDecisionSketch::Query() const { return sketch_.Rank() == k_; }

void RankDecisionSketch::SerializeState(core::StateWriter* w) const {
  w->PutU64(n_);
  w->PutU64(k_);
  w->PutU64(sketch_.q());
  for (size_t i = 0; i < k_; ++i) {
    for (size_t j = 0; j < n_; ++j) w->PutU64(sketch_.At(i, j));
  }
}

StreamingBasisTracker::StreamingBasisTracker(size_t n, size_t max_rank,
                                             uint64_t q,
                                             const crypto::RandomOracle& oracle,
                                             uint64_t oracle_domain)
    : n_(n), d_(2 * max_rank + 2), q_(q), oracle_(&oracle),
      domain_(oracle_domain) {
  if (d_ > n_) d_ = n_;
}

bool StreamingBasisTracker::OfferRow(const std::vector<int64_t>& row) {
  assert(row.size() == n_);
  const size_t index = offered_++;
  // Compress: c = row * G, G[j][t] = oracle(domain, j*d + t).
  std::vector<uint64_t> c(d_, 0);
  for (size_t j = 0; j < n_; ++j) {
    if (row[j] == 0) continue;
    uint64_t rj = row[j] >= 0 ? uint64_t(row[j]) % q_
                              : q_ - (uint64_t(-row[j]) % q_);
    if (rj == q_) rj = 0;
    for (size_t t = 0; t < d_; ++t) {
      uint64_t g = oracle_->FieldElement(domain_, j * d_ + t, q_);
      c[t] = AddMod(c[t], MulMod(rj, g, q_), q_);
    }
  }
  // Reduce c against the retained echelon basis.
  for (size_t r = 0; r < echelon_.size(); ++r) {
    uint64_t f = c[pivot_cols_[r]];
    if (f == 0) continue;
    for (size_t t = 0; t < d_; ++t) {
      c[t] = SubMod(c[t], MulMod(f, echelon_[r][t], q_), q_);
    }
  }
  // Find a pivot; if none, the row is (compressed-)dependent.
  size_t pivot = d_;
  for (size_t t = 0; t < d_; ++t) {
    if (c[t] != 0) {
      pivot = t;
      break;
    }
  }
  if (pivot == d_) return false;
  uint64_t inv = InvMod(c[pivot], q_);
  for (size_t t = 0; t < d_; ++t) c[t] = MulMod(c[t], inv, q_);
  // Back-reduce existing rows to keep the basis reduced.
  for (size_t r = 0; r < echelon_.size(); ++r) {
    uint64_t f = echelon_[r][pivot];
    if (f == 0) continue;
    for (size_t t = 0; t < d_; ++t) {
      echelon_[r][t] = SubMod(echelon_[r][t], MulMod(f, c[t], q_), q_);
    }
  }
  echelon_.push_back(std::move(c));
  pivot_cols_.push_back(pivot);
  kept_.push_back(index);
  return true;
}

uint64_t StreamingBasisTracker::SpaceBits() const {
  // Retained compressed rows + their stream indices.
  uint64_t bits = 0;
  for (size_t r = 0; r < echelon_.size(); ++r) {
    bits += d_ * wbs::BitsForUniverse(q_);
    bits += wbs::BitsForValue(kept_[r]);
  }
  return bits;
}

}  // namespace wbs::linalg
