// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Theorem 1.6: the streaming rank decision problem (Problem 2.22) against
// computationally bounded white-box adversaries, in the random oracle model.
//
// The algorithm draws H in Z_q^{k x n} from the public random oracle (zero
// bits of storage) and maintains the sketch S = H * A mod q across turnstile
// entry updates to A, using ~O(n k^2) bits (q is chosen so log q = ~O(k)).
// After the stream:   rank(A) >= k  is declared iff  rank_q(S) == k.
//
//  * If rank(A) < k then every column of S = H A lies in the image of an
//    (<k)-dimensional space, so rank(S) < k: the "rank < k" answer is
//    always correct.
//  * If rank(A) >= k but rank(S) < k, a kernel combination yields an integer
//    vector y = A x != 0 with H y = 0 mod q and entries poly(n)^k — i.e. the
//    adversary has produced a short(ish) SIS solution for H, contradicting
//    Assumption 2.17 for a computationally bounded adversary.
//
// The paper enumerates small x with H A x = 0 mod q; checking
// rank_q(S) < k is the equivalent decision (such x exists iff S is column
// rank deficient) and is what an implementation would run.

#ifndef WBS_LINALG_RANK_SKETCH_H_
#define WBS_LINALG_RANK_SKETCH_H_

#include <cstdint>
#include <optional>

#include "common/status.h"
#include "core/game.h"
#include "crypto/random_oracle.h"
#include "linalg/matrix_zq.h"

namespace wbs::linalg {

/// Turnstile update to one entry of the streamed matrix A.
struct EntryUpdate {
  size_t row = 0;
  size_t col = 0;
  int64_t delta = 0;
};

/// Streaming rank-decision sketch (Theorem 1.6).
class RankDecisionSketch final : public core::StreamAlg<EntryUpdate, bool> {
 public:
  /// Decides "rank(A) >= k" for an n x n matrix A. `oracle_domain` selects
  /// the public randomness; q should be a prime >= n^Theta(k) in theory —
  /// callers pass a 61-bit prime (the scale-down documented in DESIGN.md).
  RankDecisionSketch(size_t n, size_t k, uint64_t q,
                     const crypto::RandomOracle& oracle,
                     uint64_t oracle_domain);

  Status Update(const EntryUpdate& u) override;

  /// True iff rank(A) >= k (under the SIS assumption).
  bool Query() const override;

  void SerializeState(core::StateWriter* w) const override;

  /// Only the k x n sketch is charged: H comes from the public oracle.
  uint64_t SpaceBits() const override { return sketch_.SpaceBits(); }

  /// Linear merge: S += other.S (mod q). Valid only when both sketches use
  /// the same H (same n, k, q, oracle domain); then S_merged = H * (A1 + A2),
  /// the sketch of the entry-wise summed stream.
  Status MergeFrom(const RankDecisionSketch& other);

  /// Exact inverse of MergeFrom: S -= other.S (mod q). Same H requirement.
  Status UnmergeFrom(const RankDecisionSketch& other);

  /// Entry H[i][j] (derived from the oracle; exposed for tests/attacks —
  /// the white-box adversary can compute these itself anyway).
  uint64_t HEntry(size_t i, size_t j) const;

  size_t n() const { return n_; }
  size_t k() const { return k_; }
  const MatrixZq& sketch() const { return sketch_; }

  /// Restores S from `entries` (row-major, k*n values) previously read off
  /// sketch().data(); validates the length and the mod-q range. The H
  /// matrix is public oracle randomness and is unaffected.
  Status RestoreSketch(const std::vector<uint64_t>& entries);

 private:
  size_t n_;
  size_t k_;
  const crypto::RandomOracle* oracle_;
  uint64_t domain_;
  wbs::BarrettQ barrett_;  // per-q constants for the update hot loop
  MatrixZq sketch_;        // S = H * A, k x n
};

/// Corollary of Theorem 1.6: maintain a maximal linearly independent set of
/// rows in a row-arrival stream, storing only column-compressed rows.
/// Each arriving row r is compressed to r * G with G in Z_q^{n x d} from the
/// oracle (d ~ 2k); the row is retained iff its compression is independent
/// of the retained compressions. Under SIS-style hardness a bounded
/// adversary cannot manufacture a dependent row that looks independent (or
/// vice versa) in the compressed space.
class StreamingBasisTracker {
 public:
  StreamingBasisTracker(size_t n, size_t max_rank, uint64_t q,
                        const crypto::RandomOracle& oracle,
                        uint64_t oracle_domain);

  /// Offers a full row; returns true iff the row was retained (independent).
  bool OfferRow(const std::vector<int64_t>& row);

  /// Indices (arrival order) of retained rows.
  const std::vector<size_t>& basis_indices() const { return kept_; }
  size_t rank() const { return kept_.size(); }

  uint64_t SpaceBits() const;

 private:
  size_t n_;
  size_t d_;  // compressed width
  uint64_t q_;
  const crypto::RandomOracle* oracle_;
  uint64_t domain_;
  size_t offered_ = 0;
  std::vector<size_t> kept_;
  // Compressed retained rows in reduced echelon form + pivot columns.
  std::vector<std::vector<uint64_t>> echelon_;
  std::vector<size_t> pivot_cols_;
};

}  // namespace wbs::linalg

#endif  // WBS_LINALG_RANK_SKETCH_H_
