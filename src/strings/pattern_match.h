// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Streaming pattern matching with a known period (Algorithm 6 /
// Theorem 1.7 / Lemma 2.26).
//
// The matcher fingerprints the prefix of the text with the discrete-log CRHF
// (so each fingerprint costs O(log T) bits and cannot be collided by a
// T-bounded white-box adversary) and uses Lemma 2.25 — matches of a pattern
// with period p are either exactly p apart or more than p apart — to keep
// only an arithmetic chain of candidate anchors.
//
// IMPLEMENTATION NOTE (documented substitution, see DESIGN.md): detecting
// *where* the length-p prefix P[1:p] matches requires a sliding window
// fingerprint; the full Porat-Porat'09 machinery does this with O(log n)
// fingerprints. We keep a circular buffer of the last p prefix fingerprints
// instead (simpler; O(p) group elements). The white-box-robustness claim —
// fingerprint comparisons cannot be fooled by a bounded adversary, unlike
// Karp-Rabin — is carried entirely by the fingerprint arithmetic, which is
// faithful to the paper.

#ifndef WBS_STRINGS_PATTERN_MATCH_H_
#define WBS_STRINGS_PATTERN_MATCH_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/game.h"
#include "crypto/crhf.h"
#include "stream/updates.h"

namespace wbs::strings {

/// Smallest period of s: the least pi >= 1 with s[0 : n-pi] == s[pi : n].
size_t SmallestPeriod(const std::string& s);

/// Offline reference matcher (ground truth for tests and games).
std::vector<size_t> NaiveFindAll(const std::string& text,
                                 const std::string& pattern);

/// Algorithm 6: reports every occurrence (0-based start position) of a
/// pattern with known period p in a streamed text.
class PeriodicPatternMatcher final
    : public core::StreamAlg<stream::CharUpdate, std::vector<uint64_t>> {
 public:
  /// `pattern` with period `p` (validated); fingerprints over the given
  /// public group. `char_bits` is the alphabet width of the text stream.
  PeriodicPatternMatcher(const std::string& pattern, size_t period,
                         const crypto::DlogParams& params, int char_bits);

  /// Feeds one text character.
  Status Update(const stream::CharUpdate& u) override;

  /// All match positions reported so far (sorted).
  std::vector<uint64_t> Query() const override { return matches_; }

  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;

  uint64_t text_length() const { return t_; }
  size_t period() const { return period_; }

 private:
  /// Fingerprint of the text window [from, to) from stored prefix prints.
  uint64_t WindowPrint(uint64_t h_to, uint64_t h_from, uint64_t chars) const;

  crypto::DlogParams params_;
  int char_bits_;
  size_t pattern_len_;
  size_t period_;
  uint64_t psi_;  ///< h(P[0:p))
  uint64_t phi_;  ///< h(P)

  uint64_t t_ = 0;                     ///< characters consumed
  crypto::DlogFingerprint prefix_;     ///< h(T[0:t))
  std::deque<uint64_t> ring_;          ///< prefix prints for t-p .. t

  /// Anchor chain (Lemma 2.25): candidate starts awaiting full verification,
  /// keyed by start position -> prefix print at that position. Entries are
  /// >= p apart, so at most ceil(n/p)+1 are live.
  std::map<uint64_t, uint64_t> pending_;
  /// Last anchor m of the current chain (UINT64_MAX if none).
  uint64_t m_ = ~uint64_t{0};

  std::vector<uint64_t> matches_;
};

}  // namespace wbs::strings

#endif  // WBS_STRINGS_PATTERN_MATCH_H_
