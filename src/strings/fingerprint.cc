// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "strings/fingerprint.h"

#include <cassert>

namespace wbs::strings {

KarpRabinParams KarpRabinParams::Generate(int bits, wbs::RandomTape* tape) {
  KarpRabinParams out;
  auto rng = [tape]() { return tape->NextWord(); };
  out.p = wbs::RandomPrime(bits, rng);
  out.x = 2 + tape->UniformInt(out.p - 3);
  return out;
}

std::pair<std::string, std::string> FermatCollision(
    const KarpRabinParams& params, size_t len, size_t i) {
  // U has a 1-character at position i, V at position i + (p-1); since
  // x^{p-1} = 1 mod p (Fermat), both fingerprints equal x^i mod p.
  const size_t j = i + size_t(params.p - 1);
  assert(j < len && "len must exceed i + p - 1");
  std::string u(len, char(0));
  std::string v(len, char(0));
  u[i] = char(1);
  v[j] = char(1);
  return {u, v};
}

}  // namespace wbs::strings
