// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// String fingerprints in the white-box model (Section 2.6).
//
//  * KarpRabin — the classic oblivious fingerprint sum_i U[i] * x^i mod p.
//    NOT white-box robust: by Fermat's little theorem x^{p-1} = 1 mod p, so
//    a string with a single 1 at position i collides with a single 1 at
//    position i + (p-1). FermatCollision() constructs that attack from the
//    exposed (p, x) — this is the paper's motivating break.
//
//  * StreamingEquality — Lemma 2.24: decide equality of two (possibly
//    adaptively chosen) streams with the discrete-log CRHF fingerprint
//    h(U) = g^U mod p of Theorem 2.5, robust against T-time white-box
//    adversaries in O(log min(T, n)) bits.

#ifndef WBS_STRINGS_FINGERPRINT_H_
#define WBS_STRINGS_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/modmath.h"
#include "common/random.h"
#include "crypto/crhf.h"

namespace wbs::strings {

/// Public parameters of a Karp-Rabin fingerprint: prime modulus and base.
struct KarpRabinParams {
  uint64_t p = 0;  ///< prime modulus (poly(n) in the classic analysis)
  uint64_t x = 0;  ///< base, a generator of Z_p^*

  /// Draws (p, x) with a `bits`-bit prime from the tape.
  static KarpRabinParams Generate(int bits, wbs::RandomTape* tape);
};

/// Incremental Karp-Rabin: after appending characters c_1..c_t the value is
/// sum_i c_i * x^{i-1} mod p.
class KarpRabin {
 public:
  explicit KarpRabin(const KarpRabinParams& params)
      : params_(params), xpow_(1) {}

  void Append(uint64_t c) {
    value_ = AddMod(value_, MulMod(c % params_.p, xpow_, params_.p), params_.p);
    xpow_ = MulMod(xpow_, params_.x, params_.p);
    ++length_;
  }
  void Append(const std::string& s) {
    for (char c : s) Append(uint64_t(uint8_t(c)));
  }

  uint64_t value() const { return value_; }
  uint64_t length() const { return length_; }
  const KarpRabinParams& params() const { return params_; }

 private:
  KarpRabinParams params_;
  uint64_t value_ = 0;
  uint64_t xpow_;
  uint64_t length_ = 0;
};

/// The white-box Fermat attack: two distinct binary strings of length
/// `len` >= p (as 0/1 character strings) with identical Karp-Rabin
/// fingerprints under `params`: a 1 at position i vs a 1 at position
/// i + (p-1). Requires len >= p, i.e. a stream only poly(n) long when p is
/// the classic poly(n)-bit modulus.
std::pair<std::string, std::string> FermatCollision(
    const KarpRabinParams& params, size_t len, size_t i = 0);

/// Lemma 2.24: streaming equality of two adaptively chosen strings via the
/// discrete-log fingerprint. Both fingerprints' parameters are public.
class StreamingEquality {
 public:
  explicit StreamingEquality(const crypto::DlogParams& params)
      : fu_(params), fv_(params) {}

  void AppendU(uint64_t c, int char_bits) { fu_.AppendChar(c, char_bits); }
  void AppendV(uint64_t c, int char_bits) { fv_.AppendChar(c, char_bits); }

  /// True iff the streams so far have equal fingerprints (equal strings
  /// always compare equal; unequal strings collide only if the adversary
  /// broke the CRHF).
  bool Equal() const {
    return fu_.length_bits() == fv_.length_bits() &&
           fu_.value() == fv_.value();
  }

  uint64_t SpaceBits() const { return fu_.SpaceBits() + fv_.SpaceBits(); }

 private:
  crypto::DlogFingerprint fu_;
  crypto::DlogFingerprint fv_;
};

}  // namespace wbs::strings

#endif  // WBS_STRINGS_FINGERPRINT_H_
