// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "strings/pattern_match.h"

#include <cassert>

#include "common/bits.h"

namespace wbs::strings {

size_t SmallestPeriod(const std::string& s) {
  // KMP failure function: period = n - fail[n].
  const size_t n = s.size();
  if (n == 0) return 0;
  std::vector<size_t> fail(n + 1, 0);
  size_t k = 0;
  for (size_t i = 1; i < n; ++i) {
    while (k > 0 && s[i] != s[k]) k = fail[k];
    if (s[i] == s[k]) ++k;
    fail[i + 1] = k;
  }
  return n - fail[n];
}

std::vector<size_t> NaiveFindAll(const std::string& text,
                                 const std::string& pattern) {
  std::vector<size_t> out;
  if (pattern.empty() || text.size() < pattern.size()) return out;
  for (size_t i = 0; i + pattern.size() <= text.size(); ++i) {
    if (text.compare(i, pattern.size(), pattern) == 0) out.push_back(i);
  }
  return out;
}

PeriodicPatternMatcher::PeriodicPatternMatcher(
    const std::string& pattern, size_t period,
    const crypto::DlogParams& params, int char_bits)
    : params_(params),
      char_bits_(char_bits),
      pattern_len_(pattern.size()),
      period_(period),
      prefix_(params) {
  assert(period >= 1 && period <= pattern.size());
  assert(SmallestPeriod(pattern) == period && "given period must be exact");
  crypto::DlogFingerprint fp(params);
  for (size_t i = 0; i < period; ++i) {
    fp.AppendChar(uint64_t(uint8_t(pattern[i])), char_bits);
  }
  psi_ = fp.value();
  for (size_t i = period; i < pattern.size(); ++i) {
    fp.AppendChar(uint64_t(uint8_t(pattern[i])), char_bits);
  }
  phi_ = fp.value();
  ring_.push_back(prefix_.value());  // print of the empty prefix (t = 0)
}

uint64_t PeriodicPatternMatcher::WindowPrint(uint64_t h_to, uint64_t h_from,
                                             uint64_t chars) const {
  return crypto::DlogFingerprint::RemovePrefix(
      params_, h_to, h_from, chars * uint64_t(char_bits_));
}

Status PeriodicPatternMatcher::Update(const stream::CharUpdate& u) {
  if (u.char_bits != char_bits_) {
    return Status::InvalidArgument(
        "PeriodicPatternMatcher: alphabet width mismatch");
  }
  prefix_.AppendChar(u.ch, char_bits_);
  ++t_;
  ring_.push_back(prefix_.value());
  while (ring_.size() > period_ + 1) ring_.pop_front();

  // Detect a prefix-of-pattern match for the window ending at t.
  if (t_ >= period_) {
    const uint64_t s = t_ - period_;  // window start
    const uint64_t h_s = ring_.front();
    if (WindowPrint(prefix_.value(), h_s, period_) == psi_) {
      // Algorithm 6's anchor bookkeeping: start a new chain when s is not
      // aligned with the current anchor chain (Lemma 2.25 guarantees true
      // matches are multiples of p apart within a chain).
      if (m_ == ~uint64_t{0} || s % period_ != m_ % period_) m_ = s;
      pending_.emplace(s, h_s);
    }
  }

  // Verify any anchor whose full window just completed.
  auto it = pending_.begin();
  while (it != pending_.end() && it->first + pattern_len_ <= t_) {
    if (it->first + pattern_len_ == t_) {
      if (WindowPrint(prefix_.value(), it->second, pattern_len_) == phi_) {
        matches_.push_back(it->first);
      }
    }
    it = pending_.erase(it);
  }
  return Status::OK();
}

void PeriodicPatternMatcher::SerializeState(core::StateWriter* w) const {
  w->PutU64(t_);
  w->PutU64(prefix_.value());
  w->PutU64(m_);
  w->PutU64(pending_.size());
  for (const auto& [pos, print] : pending_) {
    w->PutU64(pos);
    w->PutU64(print);
  }
  w->PutU64(matches_.size());
  for (uint64_t m : matches_) w->PutU64(m);
}

uint64_t PeriodicPatternMatcher::SpaceBits() const {
  // Fingerprint state + ring of prefix prints + pending anchors. Each group
  // element costs ElementBits() = O(log T); the ring is the documented O(p)
  // substitution for the Porat-Porat prefix machinery.
  const uint64_t elem = params_.ElementBits();
  uint64_t bits = prefix_.SpaceBits();
  bits += ring_.size() * elem;
  for (const auto& [pos, print] : pending_) {
    bits += wbs::BitsForValue(pos) + elem;
  }
  return bits;
}

}  // namespace wbs::strings
