// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// L0 (distinct elements) estimation on turnstile streams in the white-box
// model — Algorithm 5 / Theorem 1.5 — together with two instructive
// baselines that a white-box adversary *breaks*:
//
//  * SisL0Estimator — partitions [n] into n^{1-eps} chunks of n^eps
//    coordinates; each chunk keeps a SIS sketch A * f_chunk in Z_q^{n^{c
//    eps}} with a shared oracle-derived A. The answer is the number of
//    nonzero chunk sketches, an n^eps-multiplicative approximation unless
//    the adversary streams a short SIS kernel vector (Assumption 2.17).
//    Space ~O(n^{1-eps+c*eps}) in the random oracle model.
//
//  * NaiveSumL0 — same chunking but each chunk keeps only sum(f_i): the
//    cheapest linear sketch. A white-box adversary cancels it with one
//    insert/delete pair across two coordinates, driving the estimate to 0
//    while L0 = 2 (the attack every non-cryptographic linear sketch admits).
//
//  * KmvDistinct — the classic k-minimum-values estimator for insertion
//    streams. Its hash function is part of the exposed state, so a white-box
//    adversary simply inserts items whose hashes all exceed the current
//    k-th minimum: the estimate freezes while L0 grows without bound.

#ifndef WBS_DISTINCT_L0_ESTIMATOR_H_
#define WBS_DISTINCT_L0_ESTIMATOR_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/game.h"
#include "crypto/sis.h"
#include "stream/updates.h"

namespace wbs::distinct {

/// Parameters of Algorithm 5 derived from (n, eps, c).
struct SisL0Params {
  uint64_t universe = 0;   ///< n
  uint64_t chunk_width = 0;///< n^eps coordinates per chunk
  uint64_t num_chunks = 0; ///< ceil(n / chunk_width)
  size_t sketch_rows = 0;  ///< n^{c*eps}
  uint64_t q = 0;          ///< prime modulus, poly(n)
  uint64_t beta_inf = 0;   ///< promised bound on ||f||_inf (poly(n))

  /// Derives parameters per Theorem 1.5. `eps` in (0,1), `c` in (0, 1/2).
  static SisL0Params Derive(uint64_t universe, double eps, double c,
                            uint64_t f_inf_bound);
};

/// Algorithm 5: Estimate-L0(n, m, eps).
class SisL0Estimator final
    : public core::StreamAlg<stream::TurnstileUpdate, double> {
 public:
  SisL0Estimator(const SisL0Params& params, const crypto::RandomOracle& oracle,
                 uint64_t oracle_domain);

  Status Update(const stream::TurnstileUpdate& u) override;

  /// Number of nonzero chunk sketches: L0/n^eps <= answer <= L0 under the
  /// SIS assumption, i.e. an n^eps-multiplicative approximation.
  double Query() const override;

  void SerializeState(core::StateWriter* w) const override;

  /// Random-oracle model: only the chunk sketches are charged.
  uint64_t SpaceBits() const override;

  /// Linear merge: adds the other estimator's chunk sketches (mod q) into
  /// this one. Valid only when both instances were derived from identical
  /// params and the same random oracle instance (then A is identical and
  /// sketch(f) + sketch(g) = sketch(f + g), so the merged estimator is
  /// bit-identical to one that ingested the concatenated stream).
  Status MergeFrom(const SisL0Estimator& other);

  /// Exact inverse of MergeFrom (chunk-wise mod-q subtraction); same
  /// parameter/oracle requirements. Backs the engine's incremental merge
  /// cache: a stale shard contribution is subtracted, the fresh one added.
  Status UnmergeFrom(const SisL0Estimator& other);

  /// Precomputes the shared sketching matrix A (trades the random-oracle
  /// space accounting for per-update speed; used by the serving engine).
  void MaterializeMatrix() { matrix_.Materialize(); }

  const SisL0Params& params() const { return params_; }
  const crypto::SisMatrix& matrix() const { return matrix_; }

  /// The per-chunk sketch vectors — the estimator's entire mutable state.
  const std::vector<crypto::SisSketchVector>& chunks() const {
    return chunks_;
  }

  /// Restores one chunk's sketch vector from a previously captured
  /// value(); validates the chunk index, row count, and mod-q range.
  Status RestoreChunk(size_t chunk, const std::vector<uint64_t>& value);

 private:
  SisL0Params params_;
  crypto::SisMatrix matrix_;
  std::vector<crypto::SisSketchVector> chunks_;
};

/// Chunked sum baseline: one Z counter per chunk. Broken by design.
class NaiveSumL0 final
    : public core::StreamAlg<stream::TurnstileUpdate, double> {
 public:
  NaiveSumL0(uint64_t universe, uint64_t chunk_width);

  Status Update(const stream::TurnstileUpdate& u) override;
  double Query() const override;
  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;

  uint64_t chunk_width() const { return chunk_width_; }

 private:
  uint64_t universe_;
  uint64_t chunk_width_;
  std::vector<int64_t> sums_;
};

/// K-minimum-values distinct counter (insertion streams). The hash seed is
/// exposed state — precisely what the white-box adversary exploits.
class KmvDistinct final : public core::StreamAlg<stream::ItemUpdate, double> {
 public:
  KmvDistinct(size_t k, wbs::RandomTape* tape);

  Status Update(const stream::ItemUpdate& u) override;
  double Query() const override;
  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;
  wbs::RandomTape* MutableTape() override { return tape_; }

  /// The public hash the estimator applies to items.
  uint64_t HashItem(uint64_t item) const;
  uint64_t hash_seed() const { return hash_seed_; }
  size_t k() const { return k_; }
  /// Current k-th minimum (max of the kept set), 2^64-1 if not yet full.
  uint64_t Threshold() const;

 private:
  size_t k_;
  wbs::RandomTape* tape_;
  uint64_t hash_seed_;
  std::set<uint64_t> smallest_;  // at most k smallest hash values seen
};

/// The white-box adversary against KmvDistinct: reads the hash seed and the
/// current threshold from the state view and emits fresh items hashing
/// *above* the threshold, so the sketch never updates while L0 grows.
class KmvBlindingAdversary final
    : public core::Adversary<stream::ItemUpdate, double> {
 public:
  KmvBlindingAdversary(const KmvDistinct* victim, uint64_t universe)
      : victim_(victim), universe_(universe) {}

  std::optional<stream::ItemUpdate> NextUpdate(const core::StateView& view,
                                               const double&) override;

  uint64_t items_emitted() const { return next_probe_; }

 private:
  const KmvDistinct* victim_;
  uint64_t universe_;
  uint64_t next_probe_ = 0;
};

}  // namespace wbs::distinct

#endif  // WBS_DISTINCT_L0_ESTIMATOR_H_
