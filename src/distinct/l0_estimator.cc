// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "distinct/l0_estimator.h"

#include <cassert>
#include <cmath>

#include "common/bits.h"
#include "common/modmath.h"

namespace wbs::distinct {

SisL0Params SisL0Params::Derive(uint64_t universe, double eps, double c,
                                uint64_t f_inf_bound) {
  assert(eps > 0 && eps < 1);
  assert(c > 0 && c < 0.5);
  SisL0Params p;
  p.universe = universe;
  p.chunk_width =
      std::max<uint64_t>(1, uint64_t(std::round(std::pow(double(universe), eps))));
  p.num_chunks = (universe + p.chunk_width - 1) / p.chunk_width;
  p.sketch_rows = std::max<size_t>(
      1, size_t(std::round(std::pow(double(universe), c * eps))));
  // q = poly(n), comfortably above beta_inf * chunk_width so honest chunks
  // cannot wrap to zero by magnitude alone.
  uint64_t base = universe < 16 ? 16 : universe;
  uint64_t q_target = base * base * base;
  if (q_target < f_inf_bound * p.chunk_width * 4) {
    q_target = f_inf_bound * p.chunk_width * 4;
  }
  if (q_target > (uint64_t{1} << 61)) q_target = uint64_t{1} << 61;
  p.q = NextPrime(q_target);
  p.beta_inf = f_inf_bound;
  return p;
}

SisL0Estimator::SisL0Estimator(const SisL0Params& params,
                               const crypto::RandomOracle& oracle,
                               uint64_t oracle_domain)
    : params_(params),
      matrix_(crypto::SisParams{params.q, params.sketch_rows,
                                size_t(params.chunk_width), params.beta_inf},
              oracle, oracle_domain),
      chunks_(params.num_chunks, crypto::SisSketchVector(&matrix_)) {
  // All chunks share the same oracle-derived A (the paper: "we use the same
  // sketching matrix A on each chunk").
}

Status SisL0Estimator::Update(const stream::TurnstileUpdate& u) {
  if (u.item >= params_.universe) {
    return Status::OutOfRange("SisL0Estimator: item out of universe");
  }
  const uint64_t chunk = u.item / params_.chunk_width;
  const size_t col = size_t(u.item % params_.chunk_width);
  return chunks_[size_t(chunk)].Update(col, u.delta);
}

Status SisL0Estimator::MergeFrom(const SisL0Estimator& other) {
  const SisL0Params& o = other.params_;
  if (params_.universe != o.universe || params_.chunk_width != o.chunk_width ||
      params_.num_chunks != o.num_chunks ||
      params_.sketch_rows != o.sketch_rows || params_.q != o.q) {
    return Status::FailedPrecondition(
        "SisL0Estimator::MergeFrom: parameter mismatch");
  }
  for (size_t i = 0; i < chunks_.size(); ++i) {
    Status s = chunks_[i].MergeFrom(other.chunks_[i]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status SisL0Estimator::UnmergeFrom(const SisL0Estimator& other) {
  const SisL0Params& o = other.params_;
  if (params_.universe != o.universe || params_.chunk_width != o.chunk_width ||
      params_.num_chunks != o.num_chunks ||
      params_.sketch_rows != o.sketch_rows || params_.q != o.q) {
    return Status::FailedPrecondition(
        "SisL0Estimator::UnmergeFrom: parameter mismatch");
  }
  for (size_t i = 0; i < chunks_.size(); ++i) {
    Status s = chunks_[i].UnmergeFrom(other.chunks_[i]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status SisL0Estimator::RestoreChunk(size_t chunk,
                                    const std::vector<uint64_t>& value) {
  if (chunk >= chunks_.size()) {
    return Status::OutOfRange("SisL0Estimator::RestoreChunk: chunk index");
  }
  return chunks_[chunk].SetValue(value);
}

double SisL0Estimator::Query() const {
  uint64_t nonzero = 0;
  for (const auto& c : chunks_) {
    if (!c.IsZero()) ++nonzero;
  }
  return double(nonzero);
}

void SisL0Estimator::SerializeState(core::StateWriter* w) const {
  w->PutU64(params_.num_chunks);
  w->PutU64(params_.chunk_width);
  w->PutU64(params_.q);
  for (const auto& c : chunks_) {
    for (uint64_t v : c.value()) w->PutU64(v);
  }
}

uint64_t SisL0Estimator::SpaceBits() const {
  uint64_t bits = 0;
  for (const auto& c : chunks_) bits += c.SpaceBits();
  return bits;
}

NaiveSumL0::NaiveSumL0(uint64_t universe, uint64_t chunk_width)
    : universe_(universe),
      chunk_width_(chunk_width),
      sums_((universe + chunk_width - 1) / chunk_width, 0) {}

Status NaiveSumL0::Update(const stream::TurnstileUpdate& u) {
  if (u.item >= universe_) {
    return Status::OutOfRange("NaiveSumL0: item out of universe");
  }
  sums_[size_t(u.item / chunk_width_)] += u.delta;
  return Status::OK();
}

double NaiveSumL0::Query() const {
  uint64_t nonzero = 0;
  for (int64_t s : sums_) {
    if (s != 0) ++nonzero;
  }
  return double(nonzero);
}

void NaiveSumL0::SerializeState(core::StateWriter* w) const {
  w->PutU64(sums_.size());
  for (int64_t s : sums_) w->PutI64(s);
}

uint64_t NaiveSumL0::SpaceBits() const {
  uint64_t bits = 0;
  for (int64_t s : sums_) {
    bits += wbs::BitsForValue(uint64_t(s < 0 ? -s : s)) + 1;  // sign bit
  }
  return bits;
}

KmvDistinct::KmvDistinct(size_t k, wbs::RandomTape* tape)
    : k_(k), tape_(tape), hash_seed_(tape->NextWord()) {}

uint64_t KmvDistinct::HashItem(uint64_t item) const {
  uint64_t s = hash_seed_ ^ (item * 0x9e3779b97f4a7c15ULL);
  return wbs::SplitMix64(&s);
}

uint64_t KmvDistinct::Threshold() const {
  if (smallest_.size() < k_) return ~uint64_t{0};
  return *smallest_.rbegin();
}

Status KmvDistinct::Update(const stream::ItemUpdate& u) {
  uint64_t h = HashItem(u.item);
  if (smallest_.size() < k_) {
    smallest_.insert(h);
    return Status::OK();
  }
  auto last = std::prev(smallest_.end());
  if (h < *last && smallest_.find(h) == smallest_.end()) {
    smallest_.erase(last);
    smallest_.insert(h);
  }
  return Status::OK();
}

double KmvDistinct::Query() const {
  if (smallest_.size() < k_) return double(smallest_.size());
  // Standard KMV estimate: (k - 1) / normalized k-th minimum.
  double kth = double(*smallest_.rbegin()) / double(~uint64_t{0});
  if (kth <= 0) return double(k_);
  return (double(k_) - 1.0) / kth;
}

void KmvDistinct::SerializeState(core::StateWriter* w) const {
  w->PutU64(hash_seed_);  // the adversary sees the hash function
  w->PutU64(smallest_.size());
  for (uint64_t h : smallest_) w->PutU64(h);
}

uint64_t KmvDistinct::SpaceBits() const {
  return 64 + smallest_.size() * 64;
}

std::optional<stream::ItemUpdate> KmvBlindingAdversary::NextUpdate(
    const core::StateView&, const double&) {
  // White-box attack: the adversary recomputes the victim's hash (seed is in
  // the exposed state; we read it through the victim pointer, which is
  // equivalent) and emits the next fresh item hashing above the current
  // threshold — the sketch never changes while true L0 grows.
  const uint64_t threshold = victim_->Threshold();
  while (next_probe_ < universe_) {
    uint64_t item = next_probe_++;
    if (victim_->HashItem(item) > threshold) {
      return stream::ItemUpdate{item};
    }
  }
  return std::nullopt;
}

}  // namespace wbs::distinct
