// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "heavyhitters/misra_gries.h"

#include <algorithm>
#include <limits>

namespace wbs::hh {

void MisraGries::Add(uint64_t item, uint64_t w) {
  processed_ += w;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    it->second += w;
    return;
  }
  if (counters_.size() < k_) {
    counters_.emplace(item, w);
    return;
  }
  // Decrement-all by the largest amount that keeps every counter >= 0; with
  // weighted updates this is min(w, min_counter) applied repeatedly. The
  // standard amortized form: decrement by d = min(w, min over counters).
  uint64_t remaining = w;
  while (remaining > 0) {
    uint64_t min_c = std::numeric_limits<uint64_t>::max();
    for (const auto& [k, v] : counters_) min_c = std::min(min_c, v);
    uint64_t d = std::min(remaining, min_c);
    if (d == 0) d = remaining;  // defensive; counters are kept > 0 below
    for (auto it2 = counters_.begin(); it2 != counters_.end();) {
      it2->second -= d;
      if (it2->second == 0) {
        it2 = counters_.erase(it2);
      } else {
        ++it2;
      }
    }
    remaining -= d;
    if (counters_.size() < k_) {
      if (remaining > 0) counters_.emplace(item, remaining);
      return;
    }
  }
}

Status MisraGries::MergeFrom(const MisraGries& other) {
  if (k_ != other.k_) {
    return Status::FailedPrecondition(
        "MisraGries::MergeFrom: summaries must have equal capacity");
  }
  // Fold in canonical (item-ascending) order: when the merge overflows k
  // and decrements fire, the result then depends only on the other
  // summary's CONTENTS — not on its hash-map iteration order, which differs
  // between an original and a deserialized copy of the same summary. This
  // is what makes shard merges bit-identical across backends.
  auto entries = other.CounterEntries();
  std::sort(entries.begin(), entries.end());
  uint64_t counter_weight = 0;
  for (const auto& [item, c] : entries) {
    Add(item, c);
    counter_weight += c;
  }
  // Weight the other summary already decremented away never reaches Add();
  // charge it anyway so processed() (and hence ErrorBound()) reflects the
  // full concatenated stream.
  processed_ += other.processed_ - counter_weight;
  return Status::OK();
}

std::vector<std::pair<uint64_t, uint64_t>> MisraGries::CounterEntries()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [item, c] : counters_) out.emplace_back(item, c);
  return out;
}

Status MisraGries::RestoreState(
    uint64_t processed,
    const std::vector<std::pair<uint64_t, uint64_t>>& entries) {
  if (entries.size() > k_) {
    return Status::InvalidArgument(
        "MisraGries::RestoreState: more entries than counters");
  }
  uint64_t weight = 0;
  std::unordered_map<uint64_t, uint64_t> restored;
  restored.reserve(entries.size());
  for (const auto& [item, c] : entries) {
    if (c == 0) {
      return Status::InvalidArgument(
          "MisraGries::RestoreState: zero counter");
    }
    if (!restored.emplace(item, c).second) {
      return Status::InvalidArgument(
          "MisraGries::RestoreState: duplicate item");
    }
    if (__builtin_add_overflow(weight, c, &weight) || weight > processed) {
      return Status::InvalidArgument(
          "MisraGries::RestoreState: counter weight exceeds processed");
    }
  }
  counters_ = std::move(restored);
  processed_ = processed;
  return Status::OK();
}

uint64_t MisraGries::Estimate(uint64_t item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<WeightedItem> MisraGries::List() const {
  std::vector<WeightedItem> out;
  out.reserve(counters_.size());
  for (const auto& [item, c] : counters_) {
    out.push_back({item, double(c)});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.estimate > b.estimate;
  });
  return out;
}

uint64_t MisraGries::SpaceBits(uint64_t universe) const {
  uint64_t bits = 0;
  for (const auto& [item, c] : counters_) {
    bits += wbs::BitsForUniverse(universe) + wbs::BitsForValue(c);
  }
  return bits;
}

uint64_t MisraGries::WorstCaseSpaceBits(size_t k, uint64_t universe,
                                        uint64_t m) {
  return k * (wbs::BitsForUniverse(universe) + wbs::BitsForValue(m));
}

void SpaceSaving::Add(uint64_t item, uint64_t w) {
  processed_ += w;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    it->second += w;
    return;
  }
  if (counters_.size() < k_) {
    counters_.emplace(item, w);
    return;
  }
  // Replace the minimum counter.
  auto min_it = counters_.begin();
  for (auto it2 = counters_.begin(); it2 != counters_.end(); ++it2) {
    if (it2->second < min_it->second) min_it = it2;
  }
  uint64_t new_count = min_it->second + w;
  min_count_ = min_it->second;
  counters_.erase(min_it);
  counters_.emplace(item, new_count);
}

uint64_t SpaceSaving::Estimate(uint64_t item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? min_count_ : it->second;
}

std::vector<WeightedItem> SpaceSaving::List() const {
  std::vector<WeightedItem> out;
  out.reserve(counters_.size());
  for (const auto& [item, c] : counters_) {
    out.push_back({item, double(c)});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.estimate > b.estimate;
  });
  return out;
}

uint64_t SpaceSaving::SpaceBits(uint64_t universe) const {
  uint64_t bits = 0;
  for (const auto& [item, c] : counters_) {
    bits += wbs::BitsForUniverse(universe) + wbs::BitsForValue(c);
  }
  return bits;
}

}  // namespace wbs::hh
