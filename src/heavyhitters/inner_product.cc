// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "heavyhitters/inner_product.h"

#include <algorithm>
#include <cmath>

namespace wbs::hh {

namespace {

double RateFor(uint64_t m, double eps) {
  // Lemma 2.6: p >= s/m with s = 1/eps^2 (a small constant factor for the
  // 0.99 -> 3/4 probability slack).
  if (m == 0) return 1.0;
  double p = 4.0 / (eps * eps * double(m));
  return std::min(p, 1.0);
}

}  // namespace

InnerProductEstimator::InnerProductEstimator(uint64_t universe, uint64_t m_f,
                                             uint64_t m_g, double eps,
                                             wbs::RandomTape* tape)
    : universe_(universe),
      eps_(eps),
      f_(RateFor(m_f, eps), tape),
      g_(RateFor(m_g, eps), tape) {}

double InnerProductEstimator::Estimate() const {
  // <p_f^{-1} f', p_g^{-1} g'> over the (sparse) sampled supports.
  const auto& fs = f_.sampled_counts();
  const auto& gs = g_.sampled_counts();
  const auto& small = fs.size() <= gs.size() ? fs : gs;
  const bool small_is_f = fs.size() <= gs.size();
  double sum = 0;
  for (const auto& [item, cnt] : small) {
    double a = double(cnt);
    const auto& other = small_is_f ? gs : fs;
    auto it = other.find(item);
    if (it == other.end()) continue;
    sum += a * double(it->second);
  }
  return sum * f_.sampler().InverseRate() * g_.sampler().InverseRate();
}

}  // namespace wbs::hh
