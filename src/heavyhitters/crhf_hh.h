// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Theorem 1.2: the (phi, eps)-L1 heavy hitters problem against *T-time
// bounded* white-box adversaries.
//
// Idea (Section 1.2): run the sampled Misra-Gries over CRHF-compressed item
// identities. A counter key then costs O(log log n + log 1/eps + log T) bits
// instead of log n — a T-bounded adversary cannot find two items that
// collide under the CRHF, so compressed identities behave injectively.
// Only the O(1/phi) items that can actually be phi-heavy keep their full
// log n-bit identity (needed to *report* them), giving total space
//   O(1/eps * min(log n, log T) + 1/phi * log n + log log m).

#ifndef WBS_HEAVYHITTERS_CRHF_HH_H_
#define WBS_HEAVYHITTERS_CRHF_HH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/game.h"
#include "crypto/crhf.h"
#include "heavyhitters/robust_hh.h"
#include "stream/updates.h"

namespace wbs::hh {

/// (phi, eps)-heavy hitters with CRHF-compressed counter keys, robust
/// against white-box adversaries with time budget T.
class CrhfHeavyHitters final
    : public core::StreamAlg<stream::ItemUpdate, HhList> {
 public:
  /// `time_budget_t` is the adversary's total runtime T; the CRHF output
  /// width is chosen as 2 log T + log(candidates) + slack so a T-bounded
  /// adversary finds a collision with negligible probability.
  CrhfHeavyHitters(uint64_t universe, double phi, double eps,
                   uint64_t time_budget_t, wbs::RandomTape* tape);

  Status Update(const stream::ItemUpdate& u) override;

  /// Update with the CRHF image already computed — the batched-ingest path:
  /// callers hash 8 items at a time via crhf().HashU64x8 and feed each
  /// result here, so repeated deltas of one item pay for one compression.
  /// `hashed` MUST equal crhf().HashU64(item) (Debug builds assert it);
  /// behavior is otherwise identical to Update().
  Status UpdateHashed(uint64_t item, uint64_t hashed);

  /// The identity-compressing CRHF (public parameters; exposed so batch
  /// callers can precompute hashes with HashU64x8).
  const crypto::Sha256Crhf& crhf() const { return crhf_; }

  /// All items with f_i >= phi * L1 are reported; no item with
  /// f_j <= (phi - eps) * L1 is reported (with probability >= 3/4).
  HhList Query() const override;

  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;
  wbs::RandomTape* MutableTape() override { return tape_; }

  int hash_bits() const { return crhf_.output_bits(); }
  double phi() const { return phi_; }
  double eps() const { return eps_; }

 private:
  void MaybePromote(uint64_t item, uint64_t hashed);

  uint64_t universe_;
  double phi_;
  double eps_;
  wbs::RandomTape* tape_;
  crypto::Sha256Crhf crhf_;

  /// Robust HH machinery over the *hashed* universe (Algorithm 2 applied to
  /// compressed identities).
  RobustL1HeavyHitters inner_;

  /// Identity table: hashed id -> original id, kept only for the heaviest
  /// O(1/phi) candidates (this is the 1/phi * log n term).
  std::unordered_map<uint64_t, uint64_t> identity_;
  size_t identity_capacity_;
};

}  // namespace wbs::hh

#endif  // WBS_HEAVYHITTERS_CRHF_HH_H_
