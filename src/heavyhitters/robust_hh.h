// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The paper's white-box robust eps-L1 heavy hitters (Theorem 1.1):
//
//   BernMG (Algorithm 1): Bernoulli-sample the stream at the Theorem 2.3
//   rate for a *guessed* stream length m, feed the samples to Misra-Gries.
//
//   RobustL1HeavyHitters (Algorithm 2): a Morris counter tracks the stream
//   length within a constant factor in O(log log m) bits; two live BernMG
//   instances with guesses (16/eps)^c and (16/eps)^{c+1} are rotated as the
//   Morris clock crosses successive powers. An instance opened "late" has
//   missed at most an eps/16 prefix of its target length, so every
//   eps-L1-heavy item is still Omega(eps)-heavy on its substream.
//
// Total space: O(1/eps (log n + log 1/eps) + log log m) — strictly better
// than the deterministic Misra-Gries O(1/eps (log m + log n)) once
// log m >> log n (Section 1.1.1).

#ifndef WBS_HEAVYHITTERS_ROBUST_HH_H_
#define WBS_HEAVYHITTERS_ROBUST_HH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/game.h"
#include "counter/morris.h"
#include "heavyhitters/misra_gries.h"
#include "sampling/bernoulli.h"
#include "stream/updates.h"

namespace wbs::hh {

/// Query answer for heavy hitter problems: the candidate list with rescaled
/// frequency estimates.
using HhList = std::vector<WeightedItem>;

/// Algorithm 1: BernMG(n, m, eps, delta) — Bernoulli sampling at rate
/// p = C log(n/delta) / ((eps/2)^2 m) in front of Misra-Gries with
/// threshold eps/2 (k = ceil(4/eps) counters).
class BernMG {
 public:
  BernMG(uint64_t universe, uint64_t m_guess, double eps, double delta,
         wbs::RandomTape* tape);

  void Add(uint64_t item);

  /// Estimated stream frequency of `item` (sampled count / p).
  double Estimate(uint64_t item) const;

  /// Tracked items with estimates rescaled to stream frequencies.
  HhList List() const;

  uint64_t universe() const { return universe_; }
  uint64_t m_guess() const { return m_guess_; }
  double p() const { return sampler_.p(); }
  uint64_t samples_kept() const { return sampler_.kept(); }
  const MisraGries& mg() const { return mg_; }

  uint64_t SpaceBits() const;

 private:
  uint64_t universe_;
  uint64_t m_guess_;
  sampling::BernoulliSampler sampler_;
  MisraGries mg_;
};

/// Algorithm 2: the white-box robust eps-L1 heavy hitters of Theorem 1.1.
class RobustL1HeavyHitters final
    : public core::StreamAlg<stream::ItemUpdate, HhList> {
 public:
  /// `universe` = n, `eps` the heavy hitter threshold, `delta_total` the
  /// overall failure budget (split across instance rotations).
  RobustL1HeavyHitters(uint64_t universe, double eps, double delta_total,
                       wbs::RandomTape* tape);

  Status Update(const stream::ItemUpdate& u) override;

  /// The current candidate list: all eps-L1-heavy items are present with
  /// probability >= 3/4, with additive-eps*L1-accurate estimates.
  HhList Query() const override;

  /// Estimated frequency of a single item from the active instance.
  double Estimate(uint64_t item) const;

  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;
  wbs::RandomTape* MutableTape() override { return tape_; }

  double eps() const { return eps_; }
  uint64_t updates_seen_exact() const { return exact_t_; }  // test-only
  int active_guess_exponent() const { return c_; }

 private:
  /// (16/eps)^e, saturating.
  double GuessFor(int e) const;
  void Rotate();

  uint64_t universe_;
  double eps_;
  double delta_total_;
  wbs::RandomTape* tape_;

  counter::MorrisRegister clock_;   // (1 + O(eps))-approximate timer
  int c_;                           // active guess exponent
  std::unique_ptr<BernMG> active_;  // guess (16/eps)^c
  std::unique_ptr<BernMG> next_;    // guess (16/eps)^{c+1}
  uint64_t exact_t_ = 0;            // ground truth for tests; NOT part of the
                                    // algorithm's state (never serialized,
                                    // never charged to SpaceBits)
};

}  // namespace wbs::hh

#endif  // WBS_HEAVYHITTERS_ROBUST_HH_H_
