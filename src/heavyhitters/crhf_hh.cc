// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "heavyhitters/crhf_hh.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"

namespace wbs::hh {

namespace {

int ChooseHashBits(uint64_t universe, double eps, uint64_t time_budget_t) {
  // Candidates the CRHF must keep collision-free: the O(1/eps) tracked keys
  // plus everything a T-time adversary can try — the birthday rule of
  // Sha256Crhf::OutputBitsForBudget. Never wider than log n (at that point
  // plain identities are cheaper; this realizes the min(log n, log T)).
  int budget_bits = crypto::Sha256Crhf::OutputBitsForBudget(
      time_budget_t, uint64_t(std::ceil(8.0 / eps)));
  int universe_bits = int(wbs::BitsForUniverse(universe));
  return std::max(8, std::min(budget_bits, universe_bits));
}

}  // namespace

CrhfHeavyHitters::CrhfHeavyHitters(uint64_t universe, double phi, double eps,
                                   uint64_t time_budget_t,
                                   wbs::RandomTape* tape)
    : universe_(universe),
      phi_(phi),
      eps_(eps),
      tape_(tape),
      // The CRHF index is drawn from the tape — fully visible to the
      // adversary; collision resistance does not rely on secrecy.
      crhf_(tape->NextWord(), ChooseHashBits(universe, eps, time_budget_t)),
      inner_(uint64_t{1} << ChooseHashBits(universe, eps, time_budget_t),
             eps, /*delta_total=*/0.25, tape),
      identity_capacity_(size_t(std::ceil(2.0 / phi))) {}

Status CrhfHeavyHitters::Update(const stream::ItemUpdate& u) {
  if (u.item >= universe_) {
    return Status::OutOfRange("CrhfHeavyHitters: item out of universe");
  }
  return UpdateHashed(u.item, crhf_.HashU64(u.item));
}

Status CrhfHeavyHitters::UpdateHashed(uint64_t item, uint64_t hashed) {
  if (item >= universe_) {
    return Status::OutOfRange("CrhfHeavyHitters: item out of universe");
  }
  assert(hashed == crhf_.HashU64(item) &&
         "UpdateHashed fed a hash that is not crhf().HashU64(item)");
  Status s = inner_.Update({hashed});
  if (!s.ok()) return s;
  MaybePromote(item, hashed);
  return Status::OK();
}

void CrhfHeavyHitters::MaybePromote(uint64_t item, uint64_t hashed) {
  // Keep full identities only for hashes that could still be phi-heavy.
  auto it = identity_.find(hashed);
  if (it != identity_.end()) return;
  if (identity_.size() < identity_capacity_) {
    identity_.emplace(hashed, item);
    return;
  }
  // Evict the identity with the smallest current estimate if this one is
  // heavier — the phi-heavy hashes always have top-1/phi estimates.
  const double est = inner_.Estimate(hashed);
  auto min_it = identity_.begin();
  double min_est = inner_.Estimate(min_it->first);
  for (auto it2 = identity_.begin(); it2 != identity_.end(); ++it2) {
    double e = inner_.Estimate(it2->first);
    if (e < min_est) {
      min_est = e;
      min_it = it2;
    }
  }
  if (est > min_est) {
    identity_.erase(min_it);
    identity_.emplace(hashed, item);
  }
}

HhList CrhfHeavyHitters::Query() const {
  // Threshold at (phi - eps/2) * L1-estimate: items >= phi*L1 survive, items
  // <= (phi - eps)*L1 are filtered, realizing Definition of (phi, eps)-HH.
  HhList inner_list = inner_.Query();
  double l1_estimate = 0;
  for (const auto& wi : inner_list) l1_estimate += wi.estimate;
  // The tracked mass underestimates L1; use the exact-sampling scale from
  // the active instance instead: estimates are already stream-scaled, and
  // every phi-heavy item is tracked, so sum(tracked) >= phi-heavy mass.
  // For thresholding we need an L1 proxy: use max(tracked sum, largest/phi).
  if (!inner_list.empty()) {
    l1_estimate = std::max(l1_estimate, inner_list.front().estimate / phi_);
  }
  HhList out;
  const double cutoff = (phi_ - eps_ / 2) * l1_estimate;
  for (const auto& wi : inner_list) {
    if (wi.estimate < cutoff) continue;
    auto it = identity_.find(wi.item);
    if (it == identity_.end()) continue;  // lost identity => cannot report
    out.push_back({it->second, wi.estimate});
  }
  return out;
}

void CrhfHeavyHitters::SerializeState(core::StateWriter* w) const {
  w->PutU64(crhf_.salt());
  w->PutU64(uint64_t(crhf_.output_bits()));
  inner_.SerializeState(w);
  w->PutU64(identity_.size());
  for (const auto& [h, id] : identity_) {
    w->PutU64(h);
    w->PutU64(id);
  }
}

uint64_t CrhfHeavyHitters::SpaceBits() const {
  // Inner summary over the hashed universe + identity table + CRHF index.
  uint64_t bits = inner_.SpaceBits();
  bits += identity_.size() *
          (uint64_t(crhf_.output_bits()) + wbs::BitsForUniverse(universe_));
  bits += 64;  // the public CRHF salt
  return bits;
}

}  // namespace wbs::hh
