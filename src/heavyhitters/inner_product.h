// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Corollary 2.8: white-box robust inner-product estimation.
//
// Two streams implicitly define f, g in R^n; unscaled uniform samples f', g'
// taken at rate p >= s/m with s = 1/eps^2 satisfy (Lemma 2.6 [JW18])
//   <f'/p_f, g'/p_g> = <f, g> +- eps ||f||_1 ||g||_1
// with probability 0.99, and the additive-error-to-inner-product transfer of
// Lemma 2.7 [NNW12] bounds the error of any estimates with L_inf error
// eps||.||_1 by 12 eps ||f||_1 ||g||_1. The sampler keeps no private
// randomness, so the estimator is robust in the white-box model.

#ifndef WBS_HEAVYHITTERS_INNER_PRODUCT_H_
#define WBS_HEAVYHITTERS_INNER_PRODUCT_H_

#include <cstdint>

#include "common/random.h"
#include "sampling/bernoulli.h"

namespace wbs::hh {

/// Streams two vectors (interleaved or sequential) and estimates <f, g>.
class InnerProductEstimator {
 public:
  /// `m_f`, `m_g`: (upper bounds on) the two stream lengths; eps the target
  /// accuracy relative to ||f||_1 ||g||_1.
  InnerProductEstimator(uint64_t universe, uint64_t m_f, uint64_t m_g,
                        double eps, wbs::RandomTape* tape);

  void AddF(uint64_t item) { f_.Offer(item); }
  void AddG(uint64_t item) { g_.Offer(item); }

  /// Estimate of <f, g> = sum_i f_i g_i.
  double Estimate() const;

  uint64_t SpaceBits() const {
    return f_.SpaceBits(universe_) + g_.SpaceBits(universe_);
  }

  double eps() const { return eps_; }

 private:
  uint64_t universe_;
  double eps_;
  sampling::SampledFrequencyEstimator f_;
  sampling::SampledFrequencyEstimator g_;
};

}  // namespace wbs::hh

#endif  // WBS_HEAVYHITTERS_INNER_PRODUCT_H_
