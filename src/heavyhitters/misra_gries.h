// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Deterministic counter-based heavy hitter summaries: Misra-Gries (Theorem
// 2.2) and SpaceSaving. Both are deterministic, hence trivially white-box
// robust — they are the baselines the paper's randomized algorithms beat in
// space on long streams.

#ifndef WBS_HEAVYHITTERS_MISRA_GRIES_H_
#define WBS_HEAVYHITTERS_MISRA_GRIES_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/status.h"

namespace wbs::hh {

/// An item together with an estimated frequency.
struct WeightedItem {
  uint64_t item = 0;
  double estimate = 0;
};

/// Misra-Gries summary with k counters (Theorem 2.2 instantiates
/// k = ceil(2/eps)). Guarantees f_i - m/(k+1) <= Estimate(i) <= f_i.
class MisraGries {
 public:
  explicit MisraGries(size_t k) : k_(k) {}

  /// Processes one occurrence of `item` with integer weight `w` (>= 1).
  void Add(uint64_t item, uint64_t w = 1);

  /// Lower-bound estimate of item's frequency (0 if not tracked).
  uint64_t Estimate(uint64_t item) const;

  /// All currently tracked (item, counter) pairs.
  std::vector<WeightedItem> List() const;

  /// Mergeable-summaries merge (ACHPWY12): folds the other summary's
  /// counters in as weighted adds, so the merged summary covers the
  /// concatenated stream. Estimates still never overestimate; the additive
  /// underestimation error is at most ErrorBound() of the merged summary
  /// (processed/(k+1) over the combined weight). Requires equal k so the
  /// error bound stays predictable.
  Status MergeFrom(const MisraGries& other);

  /// Total stream weight processed.
  uint64_t processed() const { return processed_; }

  size_t k() const { return k_; }
  size_t tracked() const { return counters_.size(); }

  /// Guaranteed additive error bound on estimates: processed / (k + 1).
  double ErrorBound() const { return double(processed_) / double(k_ + 1); }

  /// The tracked (item, counter) pairs in internal iteration order — the
  /// exact-state snapshot the engine's wire format ships (List() rounds
  /// counters through double; these stay uint64_t).
  std::vector<std::pair<uint64_t, uint64_t>> CounterEntries() const;

  /// Replaces the summary's state with a previously captured snapshot.
  /// Entries must be distinct items with nonzero counters, at most k of
  /// them, and their weight must not exceed `processed`; violations are a
  /// Status error and leave the summary unchanged.
  Status RestoreState(
      uint64_t processed,
      const std::vector<std::pair<uint64_t, uint64_t>>& entries);

  /// Bits for the current state: per tracked item, an identifier from the
  /// universe plus its counter; plus nothing else (deterministic).
  uint64_t SpaceBits(uint64_t universe) const;

  /// Worst-case bits for a full summary on a length-m stream: the
  /// O((1/eps)(log m + log n)) of Theorem 2.2.
  static uint64_t WorstCaseSpaceBits(size_t k, uint64_t universe, uint64_t m);

 private:
  size_t k_;
  uint64_t processed_ = 0;
  std::unordered_map<uint64_t, uint64_t> counters_;
};

/// SpaceSaving summary with k counters: Estimate(i) >= f_i (overestimate),
/// error <= m/k. Used by the TMS12 hierarchical heavy hitters algorithm.
class SpaceSaving {
 public:
  explicit SpaceSaving(size_t k) : k_(k) {}

  void Add(uint64_t item, uint64_t w = 1);

  /// Upper-bound estimate (0 if never tracked and summary not full).
  uint64_t Estimate(uint64_t item) const;

  /// Maximum possible overestimation of any reported count.
  uint64_t MaxError() const { return min_count_; }

  std::vector<WeightedItem> List() const;

  uint64_t processed() const { return processed_; }
  size_t k() const { return k_; }

  uint64_t SpaceBits(uint64_t universe) const;

 private:
  size_t k_;
  uint64_t processed_ = 0;
  uint64_t min_count_ = 0;  // smallest tracked counter once full
  std::unordered_map<uint64_t, uint64_t> counters_;
};

}  // namespace wbs::hh

#endif  // WBS_HEAVYHITTERS_MISRA_GRIES_H_
