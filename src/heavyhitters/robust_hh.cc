// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "heavyhitters/robust_hh.h"

#include <algorithm>
#include <cmath>

namespace wbs::hh {

namespace {

size_t CountersForEps(double eps) {
  // Misra-Gries with threshold eps/2 needs ceil(4/eps) counters so that the
  // additive error on the sampled substream is at most (eps/4) * samples.
  return size_t(std::ceil(4.0 / eps));
}

}  // namespace

BernMG::BernMG(uint64_t universe, uint64_t m_guess, double eps, double delta,
               wbs::RandomTape* tape)
    : universe_(universe),
      m_guess_(m_guess),
      sampler_(sampling::BernoulliRate(universe, m_guess, eps / 2, delta),
               tape),
      mg_(CountersForEps(eps)) {}

void BernMG::Add(uint64_t item) {
  if (sampler_.Offer()) mg_.Add(item);
}

double BernMG::Estimate(uint64_t item) const {
  return double(mg_.Estimate(item)) * sampler_.InverseRate();
}

HhList BernMG::List() const {
  HhList out = mg_.List();
  for (auto& wi : out) wi.estimate *= sampler_.InverseRate();
  return out;
}

uint64_t BernMG::SpaceBits() const {
  // The sampler's rate is a public parameter (not charged); the state is the
  // Misra-Gries summary over *sampled* counts, whose counters are bounded by
  // the (small) sample size — this is where the log m -> log(samples) saving
  // comes from.
  return mg_.SpaceBits(universe_);
}

RobustL1HeavyHitters::RobustL1HeavyHitters(uint64_t universe, double eps,
                                           double delta_total,
                                           wbs::RandomTape* tape)
    : universe_(universe),
      eps_(eps),
      delta_total_(delta_total),
      tape_(tape),
      // The Morris clock only needs a constant-factor estimate of t; a fixed
      // accuracy well below the 16/eps guess ratio suffices.
      clock_(/*a=*/0.05, tape),
      c_(1) {
  // Per-instance failure budget: the number of rotations over a length-m
  // stream is log_{16/eps}(m); delta/(2 log m) per instance union-bounds to
  // delta_total. Without m we budget for m <= 2^40 conservatively — the
  // delta enters the space bound only as log(1/delta).
  const double per_instance_delta = delta_total_ / 80.0;
  active_ = std::make_unique<BernMG>(universe_, uint64_t(GuessFor(c_)), eps_,
                                     per_instance_delta, tape_);
  next_ = std::make_unique<BernMG>(universe_, uint64_t(GuessFor(c_ + 1)),
                                   eps_, per_instance_delta, tape_);
}

double RobustL1HeavyHitters::GuessFor(int e) const {
  double base = 16.0 / eps_;
  double g = std::pow(base, double(e));
  return std::min(g, 9e18);
}

void RobustL1HeavyHitters::Rotate() {
  const double per_instance_delta = delta_total_ / 80.0;
  ++c_;
  active_ = std::move(next_);
  next_ = std::make_unique<BernMG>(universe_, uint64_t(GuessFor(c_ + 1)),
                                   eps_, per_instance_delta, tape_);
}

Status RobustL1HeavyHitters::Update(const stream::ItemUpdate& u) {
  if (u.item >= universe_) {
    return Status::OutOfRange("RobustL1HeavyHitters: item out of universe");
  }
  ++exact_t_;
  clock_.Increment();
  active_->Add(u.item);
  next_->Add(u.item);
  // Rotate when the approximate clock crosses the active guess.
  if (clock_.Estimate() >= GuessFor(c_)) Rotate();
  return Status::OK();
}

HhList RobustL1HeavyHitters::Query() const { return active_->List(); }

double RobustL1HeavyHitters::Estimate(uint64_t item) const {
  return active_->Estimate(item);
}

void RobustL1HeavyHitters::SerializeState(core::StateWriter* w) const {
  w->PutU64(uint64_t(c_));
  w->PutU64(clock_.register_value());
  for (const BernMG* inst : {active_.get(), next_.get()}) {
    w->PutU64(inst->m_guess());
    w->PutDouble(inst->p());
    auto list = inst->mg().List();
    w->PutU64(list.size());
    for (const auto& wi : list) {
      w->PutU64(wi.item);
      w->PutDouble(wi.estimate);
    }
  }
}

uint64_t RobustL1HeavyHitters::SpaceBits() const {
  // Morris clock + guess exponent + two BernMG instances.
  return clock_.SpaceBits() + wbs::BitsForValue(uint64_t(c_)) +
         active_->SpaceBits() + next_->SpaceBits();
}

}  // namespace wbs::hh
