// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "hhh/hhh.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wbs::hhh {

std::string Hierarchy::ToString(const Prefix& p) const {
  std::ostringstream os;
  os << "L" << p.level << ":" << p.value;
  return os.str();
}

namespace {

// Mass of leaves under `q` that are not under any reported prefix strictly
// below q's level.
double UncoveredMassUnder(const stream::FrequencyOracle& oracle,
                          const Hierarchy& h, const Prefix& q,
                          const HhhList& reported) {
  double mass = 0;
  for (const auto& [item, f] : oracle.frequencies()) {
    Prefix leaf = h.PrefixOf(item, 0);
    if (!h.IsAncestorOrSelf(q, leaf)) continue;
    bool covered = false;
    for (const auto& r : reported) {
      if (r.prefix.level < q.level &&
          h.IsAncestorOrSelf(q, r.prefix) &&
          h.IsAncestorOrSelf(r.prefix, leaf)) {
        covered = true;
        break;
      }
    }
    if (!covered) mass += double(f);
  }
  return mass;
}

}  // namespace

double ExactConditionedCount(const stream::FrequencyOracle& oracle,
                             const Hierarchy& hierarchy, const Prefix& p,
                             const HhhList& reported) {
  return UncoveredMassUnder(oracle, hierarchy, p, reported);
}

HhhList ExactHhh(const stream::FrequencyOracle& oracle,
                 const Hierarchy& hierarchy, double threshold_fraction) {
  const double thresh = threshold_fraction * double(oracle.L1());
  HhhList reported;
  // covered[item] = true once some reported ancestor excludes this leaf.
  std::unordered_map<uint64_t, bool> covered;
  for (const auto& [item, f] : oracle.frequencies()) covered[item] = false;

  for (int level = 0; level <= hierarchy.height(); ++level) {
    // Aggregate uncovered mass by level-`level` prefix.
    std::unordered_map<uint64_t, double> mass;
    std::unordered_map<uint64_t, double> full_mass;
    for (const auto& [item, f] : oracle.frequencies()) {
      Prefix p = hierarchy.PrefixOf(item, level);
      full_mass[p.value] += double(f);
      if (!covered[item]) mass[p.value] += double(f);
    }
    // Report this level, then mark leaves under reported prefixes covered.
    std::vector<uint64_t> newly;
    for (const auto& [value, m] : mass) {
      if (m >= thresh) {
        reported.push_back({{level, value}, full_mass[value]});
        newly.push_back(value);
      }
    }
    for (auto& [item, cov] : covered) {
      if (cov) continue;
      Prefix p = hierarchy.PrefixOf(item, level);
      if (std::find(newly.begin(), newly.end(), p.value) != newly.end()) {
        cov = true;
      }
    }
  }
  return reported;
}

Tms12Hhh::Tms12Hhh(const Hierarchy& hierarchy, double eps)
    : hierarchy_(hierarchy), eps_(eps) {
  const size_t k = size_t(std::ceil(2.0 / eps));
  levels_.reserve(size_t(hierarchy_.height()) + 1);
  for (int l = 0; l <= hierarchy_.height(); ++l) {
    levels_.emplace_back(k);
  }
}

void Tms12Hhh::Add(uint64_t item, uint64_t w) {
  processed_ += w;
  for (int l = 0; l <= hierarchy_.height(); ++l) {
    levels_[size_t(l)].Add(hierarchy_.PrefixOf(item, l).value, w);
  }
}

double Tms12Hhh::Estimate(const Prefix& p) const {
  if (p.level < 0 || p.level >= int(levels_.size())) return 0;
  return double(levels_[size_t(p.level)].Estimate(p.value));
}

HhhList Tms12Hhh::Query(double gamma) const {
  HhhList reported;
  std::vector<double> conditioned_of_reported;
  const double m = double(processed_);
  for (int level = 0; level <= hierarchy_.height(); ++level) {
    const auto& mg = levels_[size_t(level)];
    const double level_err = mg.ErrorBound();
    for (const auto& wi : mg.List()) {
      Prefix p{level, wi.item};
      // Conditioned estimate: unconditioned minus the conditioned masses of
      // reported descendants (those masses are disjoint by construction).
      double cond = wi.estimate;
      for (size_t i = 0; i < reported.size(); ++i) {
        if (reported[i].prefix.level < level &&
            hierarchy_.IsAncestorOrSelf(p, reported[i].prefix)) {
          cond -= conditioned_of_reported[i];
        }
      }
      // Report if the conditioned mass could reach gamma * m given the
      // one-sided MG error (coverage direction of Definition 2.10).
      if (cond + level_err >= gamma * m) {
        reported.push_back({p, wi.estimate});
        conditioned_of_reported.push_back(std::max(cond, 0.0));
      }
    }
  }
  return reported;
}

uint64_t Tms12Hhh::SpaceBits() const {
  uint64_t bits = 0;
  for (int l = 0; l < int(levels_.size()); ++l) {
    // Keys at level l cost PrefixBits(l); counters cost their value width.
    for (const auto& wi : levels_[size_t(l)].List()) {
      bits += hierarchy_.PrefixBits(l) +
              wbs::BitsForValue(uint64_t(wi.estimate));
    }
  }
  return bits;
}

BernHhh::BernHhh(const Hierarchy& hierarchy, uint64_t universe,
                 uint64_t m_guess, double eps, double delta,
                 wbs::RandomTape* tape)
    : m_guess_(m_guess),
      sampler_(sampling::BernoulliRate(universe, m_guess, eps / 2, delta),
               tape),
      inner_(hierarchy, eps / 2) {}

void BernHhh::Add(uint64_t item) {
  if (sampler_.Offer()) inner_.Add(item);
}

HhhList BernHhh::Query(double gamma) const {
  // Thresholds inside `inner_` are relative to its own (sampled) processed
  // count, so gamma passes through; only the reported estimates rescale.
  HhhList out = inner_.Query(gamma);
  for (auto& e : out) e.estimate *= sampler_.InverseRate();
  return out;
}

RobustHhh::RobustHhh(const Hierarchy& hierarchy, uint64_t universe,
                     double eps, double gamma, double delta_total,
                     wbs::RandomTape* tape)
    : hierarchy_(hierarchy),
      universe_(universe),
      eps_(eps),
      gamma_(gamma),
      delta_total_(delta_total),
      tape_(tape),
      clock_(/*a=*/0.05, tape),
      c_(1) {
  const double d = delta_total_ / 80.0;
  active_ = std::make_unique<BernHhh>(hierarchy_, universe_,
                                      uint64_t(GuessFor(c_)), eps_, d, tape_);
  next_ = std::make_unique<BernHhh>(hierarchy_, universe_,
                                    uint64_t(GuessFor(c_ + 1)), eps_, d,
                                    tape_);
}

double RobustHhh::GuessFor(int e) const {
  return std::min(std::pow(16.0 / eps_, double(e)), 9e18);
}

void RobustHhh::Rotate() {
  const double d = delta_total_ / 80.0;
  ++c_;
  active_ = std::move(next_);
  next_ = std::make_unique<BernHhh>(hierarchy_, universe_,
                                    uint64_t(GuessFor(c_ + 1)), eps_, d,
                                    tape_);
}

Status RobustHhh::Update(const stream::ItemUpdate& u) {
  if (u.item >= universe_) {
    return Status::OutOfRange("RobustHhh: item out of universe");
  }
  clock_.Increment();
  active_->Add(u.item);
  next_->Add(u.item);
  if (clock_.Estimate() >= GuessFor(c_)) Rotate();
  return Status::OK();
}

HhhList RobustHhh::Query() const { return active_->Query(gamma_); }

void RobustHhh::SerializeState(core::StateWriter* w) const {
  w->PutU64(uint64_t(c_));
  w->PutU64(clock_.register_value());
  for (const BernHhh* inst : {active_.get(), next_.get()}) {
    w->PutU64(inst->m_guess());
    w->PutDouble(inst->p());
    HhhList l = inst->Query(gamma_);
    w->PutU64(l.size());
    for (const auto& e : l) {
      w->PutU64(uint64_t(e.prefix.level));
      w->PutU64(e.prefix.value);
      w->PutDouble(e.estimate);
    }
  }
}

uint64_t RobustHhh::SpaceBits() const {
  return clock_.SpaceBits() + wbs::BitsForValue(uint64_t(c_)) +
         active_->SpaceBits() + next_->SpaceBits();
}

}  // namespace wbs::hhh
