// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Hierarchical domains over [n] (Definition 2.9). A domain of height h
// organizes items into a prefix tree: level 0 holds the items themselves,
// level i holds prefixes obtained by dropping i * bits_per_level low bits,
// and level h is the root. The two instantiations used by the experiments:
//   * BinaryHierarchy  — one bit per level (height log2 n), and
//   * ByteHierarchy    — eight bits per level (the IPv4-style 4-level
//                        hierarchy of the networking HHH literature).

#ifndef WBS_HHH_DOMAIN_H_
#define WBS_HHH_DOMAIN_H_

#include <cstdint>
#include <string>

#include "common/bits.h"

namespace wbs::hhh {

/// A node of the hierarchy: `value` is the item's high bits after dropping
/// `level * bits_per_level` low bits; level 0 is the item itself.
struct Prefix {
  int level = 0;
  uint64_t value = 0;

  bool operator==(const Prefix& o) const {
    return level == o.level && value == o.value;
  }
};

struct PrefixHash {
  size_t operator()(const Prefix& p) const {
    return std::hash<uint64_t>()(p.value * 1315423911ULL + uint64_t(p.level));
  }
};

/// A uniform-arity prefix hierarchy over a power-of-two-ish universe.
class Hierarchy {
 public:
  /// `universe_bits` total bits per item; `bits_per_level` bits dropped at
  /// each step up the tree. Height = ceil(universe_bits / bits_per_level).
  Hierarchy(int universe_bits, int bits_per_level)
      : universe_bits_(universe_bits), bits_per_level_(bits_per_level) {}

  static Hierarchy Binary(uint64_t universe) {
    return Hierarchy(int(wbs::BitsForUniverse(universe)), 1);
  }
  static Hierarchy Bytes(int universe_bits = 32) {
    return Hierarchy(universe_bits, 8);
  }

  /// Height h: number of levels above the leaves.
  int height() const {
    return (universe_bits_ + bits_per_level_ - 1) / bits_per_level_;
  }

  /// The level-`level` prefix of an item.
  Prefix PrefixOf(uint64_t item, int level) const {
    int shift = level * bits_per_level_;
    uint64_t v = shift >= 64 ? 0 : (item >> shift);
    return {level, v};
  }

  /// Parent of a prefix (one level up).
  Prefix Parent(const Prefix& p) const {
    return {p.level + 1, p.value >> bits_per_level_};
  }

  /// True iff `anc` is an ancestor of (or equal to) `p`.
  bool IsAncestorOrSelf(const Prefix& anc, const Prefix& p) const {
    if (anc.level < p.level) return false;
    int shift = (anc.level - p.level) * bits_per_level_;
    uint64_t lifted = shift >= 64 ? 0 : (p.value >> shift);
    return lifted == anc.value;
  }

  int universe_bits() const { return universe_bits_; }
  int bits_per_level() const { return bits_per_level_; }

  /// Bits to store a prefix at `level` (its value width + level tag).
  uint64_t PrefixBits(int level) const {
    int width = universe_bits_ - level * bits_per_level_;
    if (width < 1) width = 1;
    return uint64_t(width) + wbs::BitsForValue(uint64_t(height()));
  }

  std::string ToString(const Prefix& p) const;

 private:
  int universe_bits_;
  int bits_per_level_;
};

}  // namespace wbs::hhh

#endif  // WBS_HHH_DOMAIN_H_
