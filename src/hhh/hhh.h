// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The hierarchical heavy hitters problem (Definitions 2.9 / 2.10) and three
// solvers:
//   * ExactHhh        — offline ground truth (conditioned counts, Def 2.9);
//   * Tms12Hhh        — the deterministic [TMS12] algorithm (one SpaceSaving
//                       per level), Theorem 2.11: O(h/eps (log m + log n));
//   * BernHhh         — Algorithm 3: Bernoulli sampling in front of TMS12;
//   * RobustHhh       — Algorithm 4 / Theorem 2.14: Morris-clocked guess
//                       rotation, O(h/eps (log n + log 1/eps + ...) +
//                       log log m) bits, robust against white-box
//                       adversaries.

#ifndef WBS_HHH_HHH_H_
#define WBS_HHH_HHH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/game.h"
#include "counter/morris.h"
#include "heavyhitters/misra_gries.h"
#include "hhh/domain.h"
#include "sampling/bernoulli.h"
#include "stream/frequency_oracle.h"
#include "stream/updates.h"

namespace wbs::hhh {

/// One reported hierarchical heavy hitter.
struct HhhEntry {
  Prefix prefix;
  double estimate = 0;  ///< estimated (unconditioned) frequency f_p
};

using HhhList = std::vector<HhhEntry>;

/// Offline exact HHH per Definition 2.9: level-0 HHHs are the eps-L1 heavy
/// items; at level i, a prefix p is an HHH iff its conditioned count F(p) —
/// the mass of its descendants not below an already-reported HHH — is
/// >= threshold_fraction * m.
HhhList ExactHhh(const stream::FrequencyOracle& oracle,
                 const Hierarchy& hierarchy, double threshold_fraction);

/// Exact conditioned count F(p) given a reported set (test utility).
double ExactConditionedCount(const stream::FrequencyOracle& oracle,
                             const Hierarchy& hierarchy, const Prefix& p,
                             const HhhList& reported);

/// Deterministic [TMS12]: one Misra-Gries-style summary per level with
/// k = ceil(2 h / eps) counters each; reporting runs bottom-up with
/// conditioned counts. Deterministic, hence white-box robust (Theorem 2.11).
class Tms12Hhh {
 public:
  Tms12Hhh(const Hierarchy& hierarchy, double eps);

  void Add(uint64_t item, uint64_t w = 1);

  /// Approximate HHH set at threshold `gamma` (>= eps), per Definition 2.10.
  HhhList Query(double gamma) const;

  /// Estimated (unconditioned) frequency of a prefix.
  double Estimate(const Prefix& p) const;

  uint64_t processed() const { return processed_; }
  const Hierarchy& hierarchy() const { return hierarchy_; }
  double eps() const { return eps_; }

  uint64_t SpaceBits() const;

 private:
  Hierarchy hierarchy_;
  double eps_;
  uint64_t processed_ = 0;
  std::vector<hh::MisraGries> levels_;  // index = level
};

/// Algorithm 3: BernHHH(n, m, eps, delta) — sample at the Theorem 2.12 rate
/// for the guessed length, feed a TMS12 instance with threshold eps/2.
class BernHhh {
 public:
  BernHhh(const Hierarchy& hierarchy, uint64_t universe, uint64_t m_guess,
          double eps, double delta, wbs::RandomTape* tape);

  void Add(uint64_t item);
  HhhList Query(double gamma) const;

  uint64_t m_guess() const { return m_guess_; }
  double p() const { return sampler_.p(); }
  uint64_t SpaceBits() const { return inner_.SpaceBits(); }

 private:
  uint64_t m_guess_;
  sampling::BernoulliSampler sampler_;
  Tms12Hhh inner_;
};

/// Algorithm 4 / Theorem 2.14: the white-box robust HHH algorithm.
class RobustHhh final : public core::StreamAlg<stream::ItemUpdate, HhhList> {
 public:
  RobustHhh(const Hierarchy& hierarchy, uint64_t universe, double eps,
            double gamma, double delta_total, wbs::RandomTape* tape);

  Status Update(const stream::ItemUpdate& u) override;
  HhhList Query() const override;
  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;
  wbs::RandomTape* MutableTape() override { return tape_; }

  int active_guess_exponent() const { return c_; }

 private:
  double GuessFor(int e) const;
  void Rotate();

  Hierarchy hierarchy_;
  uint64_t universe_;
  double eps_;
  double gamma_;
  double delta_total_;
  wbs::RandomTape* tape_;

  counter::MorrisRegister clock_;
  int c_;
  std::unique_ptr<BernHhh> active_;
  std::unique_ptr<BernHhh> next_;
};

}  // namespace wbs::hhh

#endif  // WBS_HHH_HHH_H_
