// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The white-box exposure surface. After every round the adversary observes
// (Section 1, step (3)): the response A_t, the internal state D_t, and the
// random bits R_t. StateView packages exactly that. There is no secret key:
// the RNG seed and the full randomness log are part of the view.

#ifndef WBS_CORE_STATE_VIEW_H_
#define WBS_CORE_STATE_VIEW_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wbs::core {

/// Sink an algorithm serializes its *entire* internal state into. The word
/// stream is what the adversary parses; tests assert that two algorithms
/// with equal serialized state behave identically on equal future inputs
/// (the defining property of "internal state").
class StateWriter {
 public:
  void PutU64(uint64_t v) { words_.push_back(v); }
  void PutI64(int64_t v) { words_.push_back(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    words_.push_back(bits);
  }
  void PutBytes(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    words_.push_back(len);
    uint64_t acc = 0;
    for (size_t i = 0; i < len; ++i) {
      acc = (acc << 8) | p[i];
      if (i % 8 == 7) {
        words_.push_back(acc);
        acc = 0;
      }
    }
    if (len % 8 != 0) words_.push_back(acc);
  }

  const std::vector<uint64_t>& words() const { return words_; }
  void Clear() { words_.clear(); }

 private:
  std::vector<uint64_t> words_;
};

/// Everything the adversary sees at the end of round t.
struct StateView {
  uint64_t round = 0;
  /// D_t: the algorithm's complete serialized internal state.
  std::vector<uint64_t> state_words;
  /// Seed of the algorithm's tape (no secret key in this model).
  uint64_t rng_seed = 0;
  /// R_1, ..., R_t: every random word the algorithm has drawn so far.
  /// Null when the algorithm is deterministic.
  const std::vector<uint64_t>* randomness_log = nullptr;
  /// Space the algorithm currently charges itself, in bits.
  uint64_t space_bits = 0;
};

}  // namespace wbs::core

#endif  // WBS_CORE_STATE_VIEW_H_
