// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The two-player white-box adversarial game of Section 1:
//
//   round t:  (1) Adversary computes update u_t from all previous updates,
//                 states, and randomness;
//             (2) StreamAlg applies u_t, draws fresh randomness, answers the
//                 fixed query Q;
//             (3) Adversary observes the answer, the internal state, and the
//                 randomness.
//
// The GameRunner referees: a caller-supplied correctness predicate (backed by
// exact ground truth) is evaluated every round; the adversary wins if any
// round's answer is wrong.

#ifndef WBS_CORE_GAME_H_
#define WBS_CORE_GAME_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/state_view.h"

namespace wbs::core {

/// Interface every white-box-playable streaming algorithm implements.
/// UpdateT is the stream update type; AnswerT the query-response type.
template <typename UpdateT, typename AnswerT>
class StreamAlg {
 public:
  virtual ~StreamAlg() = default;

  /// Applies one stream update.
  virtual Status Update(const UpdateT& u) = 0;

  /// Answers the fixed query Q on the stream so far.
  virtual AnswerT Query() const = 0;

  /// Serializes the complete internal state D_t (everything that influences
  /// future behaviour except the tape, which is exposed separately).
  virtual void SerializeState(StateWriter* w) const = 0;

  /// Information-theoretic size of the current state, in bits.
  virtual uint64_t SpaceBits() const = 0;

  /// The algorithm's randomness source; nullptr for deterministic
  /// algorithms. The game runner exposes its log to the adversary.
  virtual wbs::RandomTape* MutableTape() { return nullptr; }
};

/// Interface of the adversary. It may keep arbitrary state of its own and is
/// handed the full StateView of the algorithm after every round.
template <typename UpdateT, typename AnswerT>
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Chooses update u_{t+1} given the view after round t (for t = 0 the view
  /// is the algorithm's initial state). Returning nullopt ends the stream.
  virtual std::optional<UpdateT> NextUpdate(const StateView& view,
                                            const AnswerT& last_answer) = 0;
};

/// Verdict of one adversarial game.
struct GameResult {
  bool algorithm_survived = true;   ///< correct at every round
  uint64_t rounds_played = 0;
  uint64_t first_failure_round = 0; ///< 1-based; 0 if none
  uint64_t max_space_bits = 0;      ///< peak space the algorithm charged
};

/// Runs the game for at most `max_rounds` rounds.
///
/// `check` is the referee: called after every round with (round, answer);
/// it must consult exact ground truth (the caller updates its own oracle
/// from `on_update`, which fires before the algorithm sees the update).
template <typename UpdateT, typename AnswerT>
GameResult RunGame(StreamAlg<UpdateT, AnswerT>* alg,
                   Adversary<UpdateT, AnswerT>* adversary, uint64_t max_rounds,
                   const std::function<void(const UpdateT&)>& on_update,
                   const std::function<bool(uint64_t round,
                                            const AnswerT&)>& check,
                   bool stop_at_first_failure = true) {
  GameResult result;
  AnswerT last_answer{};
  StateWriter writer;

  auto make_view = [&](uint64_t round) {
    StateView view;
    view.round = round;
    writer.Clear();
    alg->SerializeState(&writer);
    view.state_words = writer.words();
    wbs::RandomTape* tape = alg->MutableTape();
    if (tape != nullptr) {
      view.rng_seed = tape->seed();
      view.randomness_log = &tape->log();
    }
    view.space_bits = alg->SpaceBits();
    return view;
  };

  for (uint64_t t = 1; t <= max_rounds; ++t) {
    // (1) Adversary picks u_t from the white-box view after round t-1.
    StateView view = make_view(t - 1);
    std::optional<UpdateT> u = adversary->NextUpdate(view, last_answer);
    if (!u.has_value()) break;

    // (2) StreamAlg processes the update and answers the query.
    on_update(*u);
    Status s = alg->Update(*u);
    if (!s.ok()) {
      // An update the algorithm cannot process counts as a loss: the model
      // requires correctness at all times.
      result.algorithm_survived = false;
      result.first_failure_round = t;
      result.rounds_played = t;
      return result;
    }
    last_answer = alg->Query();
    result.rounds_played = t;
    result.max_space_bits = std::max(result.max_space_bits, alg->SpaceBits());

    // (3) Referee: the answer must be correct at every time step.
    if (!check(t, last_answer)) {
      result.algorithm_survived = false;
      if (result.first_failure_round == 0) result.first_failure_round = t;
      if (stop_at_first_failure) return result;
    }
  }
  return result;
}

/// Adapter: replays a fixed (oblivious) stream as an "adversary", so the
/// same game harness covers oblivious and adaptive experiments.
template <typename UpdateT, typename AnswerT>
class ScriptedAdversary : public Adversary<UpdateT, AnswerT> {
 public:
  explicit ScriptedAdversary(std::vector<UpdateT> script)
      : script_(std::move(script)) {}

  std::optional<UpdateT> NextUpdate(const StateView&, const AnswerT&) override {
    if (pos_ >= script_.size()) return std::nullopt;
    return script_[pos_++];
  }

 private:
  std::vector<UpdateT> script_;
  size_t pos_ = 0;
};

}  // namespace wbs::core

#endif  // WBS_CORE_GAME_H_
