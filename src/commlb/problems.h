// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Two-player communication problems used by the Section 3 lower bounds:
//   * Equality           — det. complexity Theta(n), randomized Theta(log n);
//   * Gap Equality       — Definition 3.1: promise x = y or HAM(x,y) >= n/10,
//                          deterministic complexity Omega(n) (Theorem 3.2);
//   * OR-Equality        — Definition 2.20: k parallel equalities,
//                          deterministic complexity Omega(nk) (Theorem 2.21).
// Instance generators are deterministic given the tape.

#ifndef WBS_COMMLB_PROBLEMS_H_
#define WBS_COMMLB_PROBLEMS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace wbs::commlb {

using BitString = std::vector<uint8_t>;

/// Hamming distance.
size_t Ham(const BitString& a, const BitString& b);

/// Hamming weight.
size_t Weight(const BitString& a);

/// A balanced string (|x| = n/2) of length n (n even).
BitString RandomBalanced(size_t n, wbs::RandomTape* tape);

/// A Gap Equality instance (Definition 3.1): returns (x, y) with
/// |x| = |y| = n/2 and either y == x (if `equal`) or HAM(x, y) >= n/10.
struct GapEqInstance {
  BitString x;
  BitString y;
  bool equal = false;
};
GapEqInstance MakeGapEqInstance(size_t n, bool equal, wbs::RandomTape* tape);

/// All balanced strings of (small, even) length n — used to *exactly*
/// enumerate Bob's inputs in the Theorem 1.8 derandomization at small n.
std::vector<BitString> AllBalancedStrings(size_t n);

/// An OR-Equality instance (Definition 2.20) with at most one equal index
/// (the hard regime of Theorem 2.21). equal_index = -1 for "none equal".
struct OrEqInstance {
  std::vector<BitString> x;
  std::vector<BitString> y;
  int equal_index = -1;
};
OrEqInstance MakeOrEqInstance(size_t n, size_t k, int equal_index,
                              wbs::RandomTape* tape);

}  // namespace wbs::commlb

#endif  // WBS_COMMLB_PROBLEMS_H_
