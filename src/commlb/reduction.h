// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The Theorem 1.8 reduction engine: a white-box adversarially robust
// streaming algorithm with S(n, eps) bits of state yields a *deterministic*
// one-way protocol with S(n, eps) bits of communication.
//
// The constructive step the paper describes — Alice enumerates random seeds
// and all of Bob's inputs, selects a seed for which the algorithm succeeds
// on every continuation, runs the algorithm deterministically with that
// seed, and ships the state — is executed here *exactly*, at small n where
// the enumeration is feasible. Combined with the deterministic communication
// lower bounds (Theorem 3.2 for GapEquality, Theorem 2.21 for OR-Equality)
// this machinery turns any small-state robust algorithm into a
// contradiction, which is how Theorems 1.9 and 1.10 are obtained.
//
// Requirements on Alg: copyable value type; constructed by the caller's
// factory from a seed; Update(u), Query(), SpaceBits(). Randomness must be
// a deterministic function of the seed (no hidden entropy), which is true of
// every StreamAlg in this library once the tape seed is fixed.

#ifndef WBS_COMMLB_REDUCTION_H_
#define WBS_COMMLB_REDUCTION_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "commlb/problems.h"

namespace wbs::commlb {

/// Outcome of the derandomization search for one Alice input x.
struct DerandomizationOutcome {
  bool found = false;             ///< a seed correct for ALL Bob inputs exists
  uint64_t chosen_seed = 0;
  uint64_t seeds_tried = 0;
  double per_seed_success = 0;    ///< fraction of (seed, y) pairs correct
  uint64_t communication_bits = 0;///< state bits Alice ships with chosen seed
};

/// Runs the Theorem 1.8 derandomization for Alice's input `x` against every
/// Bob input in `all_y`.
///
///  * `make_alg(seed)`       — constructs the streaming algorithm;
///  * `run_alice(alg, x)`    — feeds Alice's stream;
///  * `run_bob(alg, y)`      — feeds Bob's continuation (on a COPY);
///  * `judge(answer, x, y)`  — exact correctness;
///  * `state_bits(alg)`      — S(n, eps) after Alice's stream.
template <typename Alg, typename AnswerT>
DerandomizationOutcome DerandomizeOneWay(
    const BitString& x, const std::vector<BitString>& all_y,
    const std::function<Alg(uint64_t seed)>& make_alg,
    const std::function<void(Alg*, const BitString&)>& run_alice,
    const std::function<void(Alg*, const BitString&)>& run_bob,
    const std::function<AnswerT(const Alg&)>& query,
    const std::function<bool(const AnswerT&, const BitString&,
                             const BitString&)>& judge,
    const std::function<uint64_t(const Alg&)>& state_bits,
    uint64_t max_seeds) {
  DerandomizationOutcome out;
  uint64_t total_checks = 0, total_correct = 0;
  for (uint64_t seed = 0; seed < max_seeds; ++seed) {
    Alg alice = make_alg(seed);
    run_alice(&alice, x);
    bool all_correct = true;
    for (const BitString& y : all_y) {
      Alg bob = alice;  // the shipped state
      run_bob(&bob, y);
      const bool ok = judge(query(bob), x, y);
      ++total_checks;
      total_correct += ok ? 1 : 0;
      if (!ok) all_correct = false;
    }
    ++out.seeds_tried;
    if (all_correct && !out.found) {
      out.found = true;
      out.chosen_seed = seed;
      out.communication_bits = state_bits(alice);
    }
  }
  out.per_seed_success =
      total_checks == 0 ? 0 : double(total_correct) / double(total_checks);
  return out;
}

/// Counts distinct serialized states over a family of Alice inputs with a
/// fixed seed. For a protocol correct on a problem whose communication
/// matrix has `|X|` distinct rows (e.g. Equality), the count must be >= |X|,
/// certifying >= log2(count) bits of communication — the other direction of
/// Theorem 1.8 made measurable.
template <typename Alg>
uint64_t CountDistinctStates(
    const std::vector<BitString>& xs, uint64_t seed,
    const std::function<Alg(uint64_t)>& make_alg,
    const std::function<void(Alg*, const BitString&)>& run_alice,
    const std::function<std::vector<uint64_t>(const Alg&)>& serialize) {
  std::set<std::vector<uint64_t>> states;
  for (const BitString& x : xs) {
    Alg alg = make_alg(seed);
    run_alice(&alg, x);
    states.insert(serialize(alg));
  }
  return states.size();
}

}  // namespace wbs::commlb

#endif  // WBS_COMMLB_REDUCTION_H_
