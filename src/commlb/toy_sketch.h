// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// A miniature seed-indexed linear sketch used by the Theorem 1.8 reduction
// experiments (and their tests): Alice and Bob both stream balanced bit
// strings as coordinate increments; F2 of the combined vector separates
// x == y (F2 = 2n) from HAM(x, y) >= n/10 (F2 <= 2n - n/10) under the Gap
// Equality promise of Definition 3.1. Randomness is a pure function of the
// seed, so the derandomization of Theorem 1.8 applies verbatim.

#ifndef WBS_COMMLB_TOY_SKETCH_H_
#define WBS_COMMLB_TOY_SKETCH_H_

#include <cstdint>
#include <vector>

#include "commlb/problems.h"
#include "common/bits.h"
#include "common/random.h"

namespace wbs::commlb {

/// Copyable value-type sketch for the reduction engine.
struct GapEqF2Sketch {
  uint64_t seed = 0;
  size_t rows = 0;
  size_t n = 0;
  std::vector<int64_t> counters;

  static GapEqF2Sketch Make(uint64_t seed, size_t rows, size_t n) {
    GapEqF2Sketch t;
    t.seed = seed;
    t.rows = rows;
    t.n = n;
    t.counters.assign(rows, 0);
    return t;
  }

  /// Sign of coordinate i in row r — a pure function of the public seed.
  static int Sign(uint64_t seed, size_t row, size_t i) {
    uint64_t s = seed ^ (row * 0xd1342543de82ef95ULL) ^
                 (i * 0x9e3779b97f4a7c15ULL);
    return (wbs::SplitMix64(&s) & 1) ? 1 : -1;
  }

  /// Streams a bit string: +1 to every coordinate with a one-bit.
  void Feed(const BitString& bits) {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (!bits[i]) continue;
      for (size_t r = 0; r < rows; ++r) counters[r] += Sign(seed, r, i);
    }
  }

  /// Mean-of-squares estimate of F2 of the streamed vector.
  double F2Estimate() const {
    double s = 0;
    for (int64_t c : counters) s += double(c) * double(c);
    return rows == 0 ? 0 : s / double(rows);
  }

  /// Decide "x == y" after both halves were fed. Calibrated for the
  /// half-gap promise HAM(x, y) >= n/2 used by the toy experiments (the
  /// Definition 3.1 gap of n/10 is a single count at toy sizes, which no
  /// sketch of any width can resolve): equal -> F2 = 2n, unequal ->
  /// F2 <= 1.5n, threshold at 1.75n.
  bool DecidesEqual() const {
    return F2Estimate() > 1.75 * double(n);
  }

  /// Bits of the shipped state: seed + counters.
  uint64_t StateBits() const {
    uint64_t bits = 64;
    for (int64_t c : counters) {
      bits += wbs::BitsForValue(uint64_t(c < 0 ? -c : c)) + 1;
    }
    return bits;
  }
};

}  // namespace wbs::commlb

#endif  // WBS_COMMLB_TOY_SKETCH_H_
