// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "commlb/problems.h"

#include <algorithm>
#include <cassert>

namespace wbs::commlb {

size_t Ham(const BitString& a, const BitString& b) {
  assert(a.size() == b.size());
  size_t d = 0;
  for (size_t i = 0; i < a.size(); ++i) d += (a[i] != b[i]) ? 1 : 0;
  return d;
}

size_t Weight(const BitString& a) {
  size_t w = 0;
  for (uint8_t b : a) w += b ? 1 : 0;
  return w;
}

BitString RandomBalanced(size_t n, wbs::RandomTape* tape) {
  assert(n % 2 == 0);
  BitString s(n, 0);
  std::fill(s.begin(), s.begin() + n / 2, uint8_t{1});
  for (size_t i = n; i > 1; --i) {
    size_t j = tape->UniformInt(i);
    std::swap(s[i - 1], s[j]);
  }
  return s;
}

GapEqInstance MakeGapEqInstance(size_t n, bool equal, wbs::RandomTape* tape) {
  assert(n % 2 == 0 && n >= 10);
  GapEqInstance inst;
  inst.x = RandomBalanced(n, tape);
  inst.equal = equal;
  if (equal) {
    inst.y = inst.x;
    return inst;
  }
  // Swap >= n/20 one-positions with zero-positions: each swap changes two
  // coordinates, preserving balance, so HAM >= n/10.
  inst.y = inst.x;
  std::vector<size_t> ones, zeros;
  for (size_t i = 0; i < n; ++i) {
    (inst.y[i] ? ones : zeros).push_back(i);
  }
  for (size_t i = ones.size(); i > 1; --i) {
    std::swap(ones[i - 1], ones[tape->UniformInt(i)]);
  }
  for (size_t i = zeros.size(); i > 1; --i) {
    std::swap(zeros[i - 1], zeros[tape->UniformInt(i)]);
  }
  const size_t swaps = std::max<size_t>(1, (n + 19) / 20);
  for (size_t s = 0; s < swaps && s < ones.size() && s < zeros.size(); ++s) {
    inst.y[ones[s]] = 0;
    inst.y[zeros[s]] = 1;
  }
  assert(Ham(inst.x, inst.y) * 10 >= n);
  return inst;
}

namespace {

void EnumerateBalancedRec(size_t n, size_t pos, size_t ones, BitString* cur,
                          std::vector<BitString>* out) {
  if (ones > n / 2) return;                 // too many ones already
  if (n / 2 - ones > n - pos) return;       // cannot reach n/2 ones
  if (pos == n) {
    out->push_back(*cur);
    return;
  }
  (*cur)[pos] = 1;
  EnumerateBalancedRec(n, pos + 1, ones + 1, cur, out);
  (*cur)[pos] = 0;
  EnumerateBalancedRec(n, pos + 1, ones, cur, out);
}

}  // namespace

std::vector<BitString> AllBalancedStrings(size_t n) {
  assert(n % 2 == 0 && n <= 20 && "exponential enumeration; keep n small");
  std::vector<BitString> out;
  BitString cur(n, 0);
  EnumerateBalancedRec(n, 0, 0, &cur, &out);
  return out;
}

OrEqInstance MakeOrEqInstance(size_t n, size_t k, int equal_index,
                              wbs::RandomTape* tape) {
  OrEqInstance inst;
  inst.equal_index = equal_index;
  for (size_t i = 0; i < k; ++i) {
    BitString xi(n);
    for (size_t j = 0; j < n; ++j) xi[j] = uint8_t(tape->NextWord() & 1);
    BitString yi;
    if (int(i) == equal_index) {
      yi = xi;
    } else {
      // Ensure y_i != x_i by flipping a random position.
      yi = xi;
      yi[tape->UniformInt(n)] ^= 1;
    }
    inst.x.push_back(std::move(xi));
    inst.y.push_back(std::move(yi));
  }
  return inst;
}

}  // namespace wbs::commlb
