// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "graph/neighborhood.h"

#include <algorithm>
#include <cassert>

#include "common/bits.h"

namespace wbs::graph {

namespace {

// Canonical form of a neighbor list: sorted, deduplicated.
std::vector<uint64_t> Canonical(std::vector<uint64_t> neighbors) {
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  return neighbors;
}

template <typename MapT, typename KeyFn>
NeighborhoodGroups GroupBy(const MapT& map, KeyFn key_fn) {
  std::unordered_map<uint64_t, std::vector<uint64_t>> groups;
  for (const auto& [vertex, value] : map) {
    groups[key_fn(value)].push_back(vertex);
  }
  NeighborhoodGroups out;
  for (auto& [key, members] : groups) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

CrhfNeighborhoodId::CrhfNeighborhoodId(uint64_t n, uint64_t time_budget_t,
                                       wbs::RandomTape* tape)
    : n_(n),
      tape_(tape),
      // poly(n, T) universe: 2 log T + log(n^2 candidate pairs) + slack.
      crhf_(tape->NextWord(),
            crypto::Sha256Crhf::OutputBitsForBudget(time_budget_t, n * n)) {}

Status CrhfNeighborhoodId::Update(const stream::VertexArrival& u) {
  if (u.vertex >= n_) {
    return Status::OutOfRange("CrhfNeighborhoodId: vertex out of range");
  }
  std::vector<uint64_t> canon = Canonical(u.neighbors);
  for (uint64_t nb : canon) {
    if (nb >= n_) {
      return Status::OutOfRange("CrhfNeighborhoodId: neighbor out of range");
    }
  }
  hash_of_[u.vertex] = crhf_.HashU64s(canon);
  return Status::OK();
}

NeighborhoodGroups CrhfNeighborhoodId::Query() const {
  return GroupBy(hash_of_, [](uint64_t h) { return h; });
}

void CrhfNeighborhoodId::SerializeState(core::StateWriter* w) const {
  w->PutU64(crhf_.salt());
  w->PutU64(hash_of_.size());
  for (const auto& [v, h] : hash_of_) {
    w->PutU64(v);
    w->PutU64(h);
  }
}

uint64_t CrhfNeighborhoodId::SpaceBits() const {
  // n vertex slots, each an id (log n) + a hash (O(log nT)) — Theorem 1.3's
  // O(n log nT) bits — plus the public CRHF salt.
  return hash_of_.size() *
             (wbs::BitsForUniverse(n_) + uint64_t(crhf_.output_bits())) +
         64;
}

ExactNeighborhoodId::ExactNeighborhoodId(uint64_t n) : n_(n) {}

Status ExactNeighborhoodId::Update(const stream::VertexArrival& u) {
  if (u.vertex >= n_) {
    return Status::OutOfRange("ExactNeighborhoodId: vertex out of range");
  }
  std::vector<uint64_t> bits((n_ + 63) / 64, 0);
  for (uint64_t nb : u.neighbors) {
    if (nb >= n_) {
      return Status::OutOfRange("ExactNeighborhoodId: neighbor out of range");
    }
    bits[nb / 64] |= uint64_t{1} << (nb % 64);
  }
  bitset_of_[u.vertex] = std::move(bits);
  return Status::OK();
}

NeighborhoodGroups ExactNeighborhoodId::Query() const {
  // Group by the full bitset content (hash the words only for bucketing;
  // exact equality confirmed by construction of the key).
  std::unordered_map<uint64_t, std::vector<uint64_t>> buckets;
  for (const auto& [v, bits] : bitset_of_) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : bits) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    buckets[h].push_back(v);
  }
  NeighborhoodGroups out;
  for (auto& [key, members] : buckets) {
    if (members.size() < 2) continue;
    // Exact confirmation inside the bucket (FNV collisions split here).
    std::sort(members.begin(), members.end());
    std::vector<std::vector<uint64_t>> exact_groups;
    for (uint64_t v : members) {
      bool placed = false;
      for (auto& g : exact_groups) {
        if (bitset_of_.at(g[0]) == bitset_of_.at(v)) {
          g.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) exact_groups.push_back({v});
    }
    for (auto& g : exact_groups) {
      if (g.size() >= 2) out.push_back(std::move(g));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExactNeighborhoodId::SerializeState(core::StateWriter* w) const {
  w->PutU64(bitset_of_.size());
  for (const auto& [v, bits] : bitset_of_) {
    w->PutU64(v);
    for (uint64_t word : bits) w->PutU64(word);
  }
}

uint64_t ExactNeighborhoodId::SpaceBits() const {
  // Each stored neighborhood costs n bits plus the vertex id.
  return bitset_of_.size() * (n_ + wbs::BitsForUniverse(n_));
}

std::vector<stream::VertexArrival> BuildOrEqualityGraph(
    const std::vector<std::vector<uint8_t>>& x,
    const std::vector<std::vector<uint8_t>>& y, uint64_t n) {
  assert(x.size() == y.size());
  std::vector<stream::VertexArrival> stream_updates;
  const size_t k = x.size();
  for (size_t i = 0; i < k; ++i) {
    assert(x[i].size() == n && y[i].size() == n);
    stream::VertexArrival u;
    u.vertex = uint64_t(i);
    for (uint64_t j = 0; j < n; ++j) {
      if (x[i][j]) u.neighbors.push_back(2 * n + j);
    }
    stream_updates.push_back(std::move(u));
    stream::VertexArrival v;
    v.vertex = n + uint64_t(i);
    for (uint64_t j = 0; j < n; ++j) {
      if (y[i][j]) v.neighbors.push_back(2 * n + j);
    }
    stream_updates.push_back(std::move(v));
  }
  return stream_updates;
}

}  // namespace wbs::graph
