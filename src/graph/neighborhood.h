// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The vertex neighborhood identification problem (Section 2.4): in the
// vertex-arrival model, identify all pairs of vertices with identical
// neighborhoods.
//
//  * CrhfNeighborhoodId — Theorem 1.3: hash each arriving vertex's
//    neighborhood (a length-n Boolean vector) through a CRHF into poly(n, T)
//    values and store n hashes: O(n log n) bits, robust against
//    polynomial-time white-box adversaries (finding two distinct
//    neighborhoods with equal hashes = finding a CRHF collision).
//
//  * ExactNeighborhoodId — the deterministic baseline that stores every
//    neighborhood bitset: Theta(n^2) bits. Theorem 1.4 (via OR-Equality,
//    Theorem 2.21) shows Omega(n^2 / log n) is forced for ANY deterministic
//    algorithm, so this is within log factors of optimal — the separation
//    the experiments measure.
//
//  * BuildOrEqualityGraph — the reduction graph of Theorem 1.4: 3n vertices
//    u_i, v_i, r_j with u_i ~ r_j iff x_i[j] = 1 and v_i ~ r_j iff
//    y_i[j] = 1, so N(u_i) = N(v_i) iff x_i = y_i.

#ifndef WBS_GRAPH_NEIGHBORHOOD_H_
#define WBS_GRAPH_NEIGHBORHOOD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/game.h"
#include "crypto/crhf.h"
#include "stream/updates.h"

namespace wbs::graph {

/// Groups of vertices sharing a neighborhood (only groups of size >= 2).
using NeighborhoodGroups = std::vector<std::vector<uint64_t>>;

/// Theorem 1.3: CRHF-hashed neighborhood identification in O(n log n) bits.
class CrhfNeighborhoodId final
    : public core::StreamAlg<stream::VertexArrival, NeighborhoodGroups> {
 public:
  /// `n` vertices; `time_budget_t` bounds the white-box adversary's runtime
  /// (sets the CRHF output width to poly(n, T) bits).
  CrhfNeighborhoodId(uint64_t n, uint64_t time_budget_t,
                     wbs::RandomTape* tape);

  Status Update(const stream::VertexArrival& u) override;
  NeighborhoodGroups Query() const override;
  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;
  wbs::RandomTape* MutableTape() override { return tape_; }

  int hash_bits() const { return crhf_.output_bits(); }

 private:
  uint64_t n_;
  wbs::RandomTape* tape_;
  crypto::Sha256Crhf crhf_;
  std::unordered_map<uint64_t, uint64_t> hash_of_;  // vertex -> hash
};

/// Deterministic exact baseline: stores each neighborhood as a bitset.
class ExactNeighborhoodId final
    : public core::StreamAlg<stream::VertexArrival, NeighborhoodGroups> {
 public:
  explicit ExactNeighborhoodId(uint64_t n);

  Status Update(const stream::VertexArrival& u) override;
  NeighborhoodGroups Query() const override;
  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;

 private:
  uint64_t n_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> bitset_of_;
};

/// The Theorem 1.4 reduction instance: given k strings x_i and y_i of length
/// n, produces the 3n-vertex arrival stream whose neighborhood-identical
/// pairs are exactly { (u_i, v_i) : x_i = y_i }. Vertex ids: u_i = i,
/// v_i = n + i, r_j = 2n + j.
std::vector<stream::VertexArrival> BuildOrEqualityGraph(
    const std::vector<std::vector<uint8_t>>& x,
    const std::vector<std::vector<uint8_t>>& y, uint64_t n);

}  // namespace wbs::graph

#endif  // WBS_GRAPH_NEIGHBORHOOD_H_
