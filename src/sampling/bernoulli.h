// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Sampling primitives the paper builds on.
//
// Theorem 2.3 ([BY20], extended to white-box adversaries): Bernoulli-sampling
// each stream update with probability p >= C log(n/delta) / (eps^2 m) solves
// eps-L1 heavy hitters. The proof carries over to white-box adversaries
// because the sampler keeps *no private randomness*: each coin is tossed
// after the adversary has already committed to the update, so seeing the
// state reveals nothing about future coins.

#ifndef WBS_SAMPLING_BERNOULLI_H_
#define WBS_SAMPLING_BERNOULLI_H_

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bits.h"
#include "common/random.h"

namespace wbs::sampling {

/// The Theorem 2.3 sampling rate: p = C log(n/delta) / (eps^2 m), capped at 1.
inline double BernoulliRate(uint64_t universe, uint64_t m, double eps,
                            double delta, double c = 4.0) {
  if (m == 0) return 1.0;
  double p = c * std::log(double(universe) / delta) /
             (eps * eps * double(m));
  return p > 1.0 ? 1.0 : p;
}

/// Samples updates with a fixed probability; tracks how many were offered and
/// kept. Downstream structures consume the kept updates.
class BernoulliSampler {
 public:
  BernoulliSampler(double p, wbs::RandomTape* tape) : p_(p), tape_(tape) {}

  /// Returns true iff this update is sampled.
  bool Offer() {
    ++offered_;
    bool keep = tape_->Bernoulli(p_);
    if (keep) ++kept_;
    return keep;
  }

  double p() const { return p_; }
  uint64_t offered() const { return offered_; }
  uint64_t kept() const { return kept_; }

  /// Unbiased scale factor from sampled counts back to stream counts.
  double InverseRate() const { return p_ > 0 ? 1.0 / p_ : 0.0; }

 private:
  double p_;
  wbs::RandomTape* tape_;
  uint64_t offered_ = 0;
  uint64_t kept_ = 0;
};

/// Classic reservoir sampler of k items (kept for the robustness-of-sampling
/// experiments of [BY20] that the paper cites).
class ReservoirSampler {
 public:
  ReservoirSampler(size_t k, wbs::RandomTape* tape) : k_(k), tape_(tape) {}

  void Offer(uint64_t item) {
    ++seen_;
    if (reservoir_.size() < k_) {
      reservoir_.push_back(item);
      return;
    }
    uint64_t j = tape_->UniformInt(seen_);
    if (j < k_) reservoir_[j] = item;
  }

  const std::vector<uint64_t>& reservoir() const { return reservoir_; }
  uint64_t seen() const { return seen_; }

  /// Bits for the stored sample (k identifiers) plus the seen-counter.
  uint64_t SpaceBits(uint64_t universe) const {
    return reservoir_.size() * wbs::BitsForUniverse(universe) +
           wbs::BitsForValue(seen_);
  }

 private:
  size_t k_;
  wbs::RandomTape* tape_;
  uint64_t seen_ = 0;
  std::vector<uint64_t> reservoir_;
};

/// Frequency estimator over a sampled substream: counts kept occurrences and
/// rescales by 1/p (used by the inner-product estimator of Corollary 2.8).
class SampledFrequencyEstimator {
 public:
  SampledFrequencyEstimator(double p, wbs::RandomTape* tape)
      : sampler_(p, tape) {}

  void Offer(uint64_t item) {
    if (sampler_.Offer()) counts_[item] += 1;
  }

  /// Estimated stream frequency of `item` ( = sampled count / p ).
  double Estimate(uint64_t item) const {
    auto it = counts_.find(item);
    return it == counts_.end() ? 0.0
                               : double(it->second) * sampler_.InverseRate();
  }

  const std::unordered_map<uint64_t, uint64_t>& sampled_counts() const {
    return counts_;
  }
  const BernoulliSampler& sampler() const { return sampler_; }

  uint64_t SpaceBits(uint64_t universe) const {
    uint64_t bits = 0;
    for (const auto& [item, cnt] : counts_) {
      bits += wbs::BitsForUniverse(universe) + wbs::BitsForValue(cnt);
    }
    return bits;
  }

 private:
  BernoulliSampler sampler_;
  std::unordered_map<uint64_t, uint64_t> counts_;
};

}  // namespace wbs::sampling

#endif  // WBS_SAMPLING_BERNOULLI_H_
