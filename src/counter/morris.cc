// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "counter/morris.h"

#include <algorithm>
#include <vector>

namespace wbs::counter {

MedianMorrisCounter::MedianMorrisCounter(double eps, double delta,
                                         wbs::RandomTape* tape)
    : tape_(tape) {
  // Means of b registers with a = eps^2/6 give Pr[err > eps n] <= 1/3 per
  // group (Chebyshev); the median over r = ceil(24 ln(1/delta)) groups fails
  // with probability <= delta (Chernoff).
  groups_ = std::max(1, int(std::ceil(24.0 * std::log(1.0 / delta))));
  if (groups_ % 2 == 0) ++groups_;
  per_group_ = 3;
  const double a = eps * eps / 6.0;
  regs_.reserve(size_t(groups_) * per_group_);
  for (int i = 0; i < groups_ * per_group_; ++i) {
    regs_.emplace_back(a, tape);
  }
}

Status MedianMorrisCounter::Update(const stream::BitUpdate& u) {
  if (u.bit != 0) {
    for (auto& r : regs_) r.Increment();
  }
  return Status::OK();
}

double MedianMorrisCounter::Query() const {
  std::vector<double> means;
  means.reserve(groups_);
  for (int g = 0; g < groups_; ++g) {
    double s = 0;
    for (int j = 0; j < per_group_; ++j) {
      s += regs_[size_t(g) * per_group_ + j].Estimate();
    }
    means.push_back(s / per_group_);
  }
  std::nth_element(means.begin(), means.begin() + means.size() / 2,
                   means.end());
  return means[means.size() / 2];
}

void MedianMorrisCounter::SerializeState(core::StateWriter* w) const {
  w->PutU64(uint64_t(groups_));
  w->PutU64(uint64_t(per_group_));
  for (const auto& r : regs_) w->PutU64(r.register_value());
}

uint64_t MedianMorrisCounter::SpaceBits() const {
  uint64_t bits = 0;
  for (const auto& r : regs_) bits += r.SpaceBits();
  return bits;
}

}  // namespace wbs::counter
