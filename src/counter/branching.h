// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The machinery behind Theorem 1.11: any *deterministic* algorithm that
// (1+eps)-approximates the number of 1s in a length-n bit stream needs
// Omega(log n) bits, even with a timer.
//
// A deterministic streaming counter is a read-once branching program (OBDD).
// Section 3.2 associates with every OBDD node u the interval
// J_u = [min C_u, max C_u] of true counts reaching u, and proves (Lemmas
// 3.5-3.7) that the family I(t) of maximal intervals obeys forced-transition
// rules. This header provides:
//
//  * SimulateMinimalIntervalFamily — the *cheapest possible* deterministic
//    program: a greedy family evolution that merges intervals whenever the
//    eps-bound allows. Its peak family size is a lower bound on the number
//    of states of ANY correct deterministic counter (with timer), so
//    ceil(log2(peak)) lower-bounds the bits.
//  * TheoreticalStateLowerBound — the closed-form h from Lemma 3.9/3.10:
//    the largest h with (1 + sum_{k<=h} eps(k)) * h <= n gives >= h+1 states.
//  * TruncatedCounter — a concrete deterministic b-bit "floating point"
//    counter (mantissa+exponent) exhibiting the failure: it stalls once the
//    increment falls below one unit in the last place, so at n >> 2^b it
//    violates any constant-factor approximation. This is the matching
//    upper-bound intuition: to survive length n you need b = Omega(log n).

#ifndef WBS_COUNTER_BRANCHING_H_
#define WBS_COUNTER_BRANCHING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "core/game.h"
#include "stream/updates.h"

namespace wbs::counter {

/// eps(k): permitted deviation of an interval's right endpoint from k when
/// the interval's left endpoint is k (Section 3.2's error function).
using ErrorFn = std::function<uint64_t(uint64_t)>;

/// eps(k) = floor(delta * k): (1 + delta)-multiplicative approximation.
ErrorFn MultiplicativeError(double delta);

/// eps(k) = additive constant c.
ErrorFn AdditiveError(uint64_t c);

/// Result of evolving the minimal interval family for n steps.
struct IntervalFamilyResult {
  /// |I(t)| for t = 1..n+1 (index 0 is t=1).
  std::vector<size_t> family_sizes;
  /// max_t |I(t)| — a lower bound on the states of any correct program.
  size_t peak_states = 0;
  /// ceil(log2(peak_states)) — the bits lower bound.
  uint64_t bits_lower_bound = 0;
};

/// Greedy evolution of I(t) under Lemmas 3.5-3.7 with maximal merging.
/// Every correct deterministic (timer-aware) counter's state count at time t
/// is >= |I(t)| produced here.
IntervalFamilyResult SimulateMinimalIntervalFamily(uint64_t n,
                                                   const ErrorFn& eps);

/// The Lemma 3.9/3.10 closed form: largest h such that
/// (1 + sum_{k=1..h} eps(k)) * h <= n; any correct program has >= h+1 states
/// at some time t0 <= n+1, hence >= ceil(log2(h+1)) bits.
struct TheoreticalBound {
  uint64_t h = 0;
  uint64_t min_states = 0;
  uint64_t min_bits = 0;
};
TheoreticalBound TheoreticalStateLowerBound(uint64_t n, const ErrorFn& eps);

/// Deterministic approximate counter with a b-bit mantissa and an exponent:
/// stores m * 2^e with m < 2^b; increments round down into the
/// representation. Stalls (m * 2^e stops changing on +1) once 2^e > 1 would
/// be needed... i.e. once m hits 2^b - 1 at e chosen so increments round to
/// zero, demonstrating the Omega(log n) necessity concretely.
class TruncatedCounter final
    : public core::StreamAlg<stream::BitUpdate, double> {
 public:
  explicit TruncatedCounter(int mantissa_bits);

  Status Update(const stream::BitUpdate& u) override;
  double Query() const override { return double(mantissa_) * double(uint64_t{1} << exponent_); }
  void SerializeState(core::StateWriter* w) const override {
    w->PutU64(mantissa_);
    w->PutU64(uint64_t(exponent_));
  }
  /// mantissa bits + exponent register bits.
  uint64_t SpaceBits() const override {
    return uint64_t(mantissa_bits_) + wbs::BitsForValue(uint64_t(exponent_));
  }

  int mantissa_bits() const { return mantissa_bits_; }

 private:
  int mantissa_bits_;
  uint64_t mantissa_ = 0;  // < 2^mantissa_bits
  int exponent_ = 0;
};

}  // namespace wbs::counter

#endif  // WBS_COUNTER_BRANCHING_H_
