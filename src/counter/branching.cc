// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "counter/branching.h"

#include <algorithm>
#include <cmath>

namespace wbs::counter {

ErrorFn MultiplicativeError(double delta) {
  return [delta](uint64_t k) { return uint64_t(std::floor(delta * double(k))); };
}

ErrorFn AdditiveError(uint64_t c) {
  return [c](uint64_t) { return c; };
}

namespace {

struct Interval {
  uint64_t lo;
  uint64_t hi;
};

// Merges sorted, possibly-overlapping intervals into the minimal eps-bound
// cover: greedily extend each cover interval as far right as the eps-bound
// for its left endpoint allows.
std::vector<Interval> MinimalCover(const std::vector<Interval>& forced,
                                   const ErrorFn& eps) {
  std::vector<Interval> out;
  size_t i = 0;
  while (i < forced.size()) {
    uint64_t lo = forced[i].lo;
    uint64_t cap = lo + eps(lo);  // largest right endpoint allowed from lo
    uint64_t hi = forced[i].hi;
    // Absorb subsequent forced intervals while they fit under the cap and
    // remain contiguous/overlapping with the running cover.
    size_t j = i + 1;
    while (j < forced.size() && forced[j].lo <= hi + 1 &&
           forced[j].hi <= cap) {
      hi = std::max(hi, forced[j].hi);
      ++j;
    }
    out.push_back({lo, std::min(hi, cap)});
    // If the current forced interval itself exceeded the cap (cannot happen
    // when forced intervals were eps-bound at the previous step and grow by
    // one), we would need a split; assert-level invariant kept by caller.
    i = j;
  }
  return out;
}

}  // namespace

IntervalFamilyResult SimulateMinimalIntervalFamily(uint64_t n,
                                                   const ErrorFn& eps) {
  IntervalFamilyResult result;
  // I(1) = {[1,1]} (Lemma 3.5).
  std::vector<Interval> family = {{1, 1}};
  result.family_sizes.push_back(family.size());
  result.peak_states = 1;

  for (uint64_t t = 1; t <= n; ++t) {
    // Forced intervals at time t+1 (Lemmas 3.6, 3.7): for each [k, l] both
    // [k, l] and [k+1, l+1] must be covered, i.e. the union [k, l+1] must be
    // covered (possibly by several intervals).
    std::vector<Interval> forced;
    forced.reserve(family.size() * 2);
    for (const Interval& iv : family) {
      uint64_t k = iv.lo, l = iv.hi;
      uint64_t cap = k + eps(k);
      if (l + 1 <= cap) {
        forced.push_back({k, l + 1});
      } else {
        // Cannot stretch: keep [k, l] and spawn [k+1, l+1] separately.
        forced.push_back({k, l});
        forced.push_back({k + 1, l + 1});
      }
    }
    std::sort(forced.begin(), forced.end(),
              [](const Interval& a, const Interval& b) {
                return a.lo != b.lo ? a.lo < b.lo : a.hi > b.hi;
              });
    // Deduplicate nested intervals.
    std::vector<Interval> pruned;
    uint64_t covered_hi = 0;
    bool first = true;
    for (const Interval& iv : forced) {
      if (!first && iv.hi <= covered_hi) continue;
      pruned.push_back(iv);
      covered_hi = iv.hi;
      first = false;
    }
    family = MinimalCover(pruned, eps);
    result.family_sizes.push_back(family.size());
    result.peak_states = std::max(result.peak_states, family.size());
  }
  result.bits_lower_bound = wbs::CeilLog2(result.peak_states);
  return result;
}

TheoreticalBound TheoreticalStateLowerBound(uint64_t n, const ErrorFn& eps) {
  TheoreticalBound b;
  // Largest h with (1 + sum_{k=1..h} eps(k)) * h <= n, found by linear scan
  // with a running prefix sum (h <= n so this is at most n steps; callers
  // use it for n up to ~2^24).
  uint64_t prefix = 0;
  uint64_t h = 0;
  for (uint64_t k = 1; k <= n; ++k) {
    prefix += eps(k);
    // Overflow-safe check of (1 + prefix) * k <= n.
    if (prefix + 1 > n / k) break;
    if ((prefix + 1) * k <= n) h = k;
  }
  b.h = h;
  b.min_states = h + 1;
  b.min_bits = wbs::CeilLog2(b.min_states);
  return b;
}

TruncatedCounter::TruncatedCounter(int mantissa_bits)
    : mantissa_bits_(mantissa_bits) {}

Status TruncatedCounter::Update(const stream::BitUpdate& u) {
  if (u.bit == 0) return Status::OK();
  const uint64_t mantissa_cap = uint64_t{1} << mantissa_bits_;
  if (exponent_ == 0) {
    ++mantissa_;
    if (mantissa_ == mantissa_cap) {
      mantissa_ >>= 1;
      ++exponent_;
    }
    return Status::OK();
  }
  // Value is mantissa * 2^exponent; adding 1 and truncating back into the
  // representation floors the sub-ULP part away: the counter stalls. This is
  // precisely the behaviour Theorem 1.11 says *every* deterministic small
  // counter must eventually exhibit.
  return Status::OK();
}

}  // namespace wbs::counter
