// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Morris approximate counters (Morris'78), the workhorse the paper proves
// white-box robust (Lemma 2.1): a (1+eps)-approximation to the number of
// increments with probability 1-delta in
//   O(log log n + log 1/eps + log log m + log 1/delta) bits.
//
// Robustness intuition: the counter consumes its randomness *after* each
// update and its estimate concentrates for every fixed count, so an adversary
// who sees the register cannot make the estimate wrong — it can only decide
// whether to keep incrementing, and the guarantee is count-wise.

#ifndef WBS_COUNTER_MORRIS_H_
#define WBS_COUNTER_MORRIS_H_

#include <cmath>
#include <cstdint>

#include "common/bits.h"
#include "common/random.h"
#include "common/status.h"
#include "core/game.h"
#include "core/state_view.h"
#include "stream/updates.h"

namespace wbs::counter {

/// A single Morris register with growth base (1 + a): on each increment the
/// register X advances with probability (1+a)^-X; the estimate is
/// ((1+a)^X - 1) / a, which is unbiased with Var <= a * n^2 / 2.
class MorrisRegister {
 public:
  /// `a` > 0 is the accuracy knob; see MorrisCounter for the (eps, delta)
  /// parameterization.
  MorrisRegister(double a, wbs::RandomTape* tape) : a_(a), tape_(tape) {}

  /// Processes one increment.
  void Increment() {
    double p = std::pow(1.0 + a_, -double(x_));
    if (tape_->UniformDouble() < p) ++x_;
  }

  /// Current estimate of the number of increments.
  double Estimate() const { return (std::pow(1.0 + a_, double(x_)) - 1.0) / a_; }

  uint64_t register_value() const { return x_; }
  double a() const { return a_; }

  /// Bits to store the register: bit_width(X). X <= log_{1+a}(m) + O(1)
  /// with overwhelming probability, so this is
  /// O(log(log(m)/a)) = O(log log m + log 1/a).
  uint64_t SpaceBits() const { return wbs::BitsForValue(x_); }

 private:
  double a_;
  wbs::RandomTape* tape_;
  uint64_t x_ = 0;
};

/// (eps, delta) Morris counter: a single register with a = eps^2 * delta / 3
/// (Chebyshev: Pr[|est - n| > eps n] <= a/(2 eps^2) <= delta), achieving
/// Lemma 2.1's bound. For tighter tapes use MedianMorrisCounter below.
class MorrisCounter final
    : public core::StreamAlg<stream::BitUpdate, double> {
 public:
  MorrisCounter(double eps, double delta, wbs::RandomTape* tape)
      : eps_(eps),
        delta_(delta),
        reg_(eps * eps * delta / 3.0, tape),
        tape_(tape) {}

  Status Update(const stream::BitUpdate& u) override {
    if (u.bit != 0) reg_.Increment();
    return Status::OK();
  }

  /// Estimate of the number of 1s seen so far.
  double Query() const override { return reg_.Estimate(); }

  void SerializeState(core::StateWriter* w) const override {
    w->PutU64(reg_.register_value());
    w->PutDouble(reg_.a());
  }

  uint64_t SpaceBits() const override { return reg_.SpaceBits(); }

  wbs::RandomTape* MutableTape() override { return tape_; }

  double eps() const { return eps_; }
  double delta() const { return delta_; }

 private:
  double eps_;
  double delta_;
  MorrisRegister reg_;
  wbs::RandomTape* tape_;
};

/// Median-of-means amplification: r = O(log 1/delta) groups of b = O(1/eps^2)
/// registers with constant a. More registers but exponentially better failure
/// probability per register bit; used by tests to cross-check concentration.
class MedianMorrisCounter final
    : public core::StreamAlg<stream::BitUpdate, double> {
 public:
  MedianMorrisCounter(double eps, double delta, wbs::RandomTape* tape);

  Status Update(const stream::BitUpdate& u) override;
  double Query() const override;
  void SerializeState(core::StateWriter* w) const override;
  uint64_t SpaceBits() const override;
  wbs::RandomTape* MutableTape() override { return tape_; }

 private:
  int groups_;
  int per_group_;
  std::vector<MorrisRegister> regs_;
  wbs::RandomTape* tape_;
};

/// Exact counter baseline: Theta(log m) bits, trivially correct.
class ExactCounter final : public core::StreamAlg<stream::BitUpdate, double> {
 public:
  Status Update(const stream::BitUpdate& u) override {
    if (u.bit != 0) ++count_;
    return Status::OK();
  }
  double Query() const override { return double(count_); }
  void SerializeState(core::StateWriter* w) const override {
    w->PutU64(count_);
  }
  uint64_t SpaceBits() const override { return wbs::BitsForValue(count_); }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

}  // namespace wbs::counter

#endif  // WBS_COUNTER_MORRIS_H_
