// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Update types for the streams studied in the paper:
//   * item updates over a universe [n] (insertion-only frequency vectors),
//   * turnstile updates (signed deltas — Algorithm 5, Theorem 1.6),
//   * bit updates (the counting streams of Theorem 1.11),
//   * vertex arrivals (the graph streams of Theorem 1.3/1.4),
//   * string characters (Section 2.6).

#ifndef WBS_STREAM_UPDATES_H_
#define WBS_STREAM_UPDATES_H_

#include <cstdint>
#include <vector>

namespace wbs::stream {

/// One insertion-only update: "item arrived". Items are 0-based in [0, n).
struct ItemUpdate {
  uint64_t item = 0;
};

/// One turnstile update: f[item] += delta (delta may be negative).
struct TurnstileUpdate {
  uint64_t item = 0;
  int64_t delta = 0;
};

/// One bit of a 0/1 counting stream.
struct BitUpdate {
  int bit = 0;
};

/// One vertex arrival: the vertex id and its full neighbor list
/// (the vertex-arrival model of Section 2.4).
struct VertexArrival {
  uint64_t vertex = 0;
  std::vector<uint64_t> neighbors;
};

/// One character of a string stream.
struct CharUpdate {
  uint64_t ch = 0;   ///< character value, < 2^char_bits
  int char_bits = 8; ///< alphabet width in bits
};

/// A whole insertion-only stream (for workloads materialized up front).
using ItemStream = std::vector<ItemUpdate>;
using TurnstileStream = std::vector<TurnstileUpdate>;

}  // namespace wbs::stream

#endif  // WBS_STREAM_UPDATES_H_
